GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: static analysis over the whole module,
# the race detector on the packages with concurrent machinery (lock-free
# counters, mailbox gauges, TCP wire counters, the pack/unpack worker
# pool and staging-buffer arena), and a one-iteration smoke of the
# exchange-engine benchmark so the serial/pooled/parallel/zero-copy
# configurations all stay runnable.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/mpi/... ./internal/trace/... ./internal/core/... ./internal/datatype/...
	$(GO) test -run '^$$' -bench BenchmarkReorganizeEngine -benchtime 1x ./internal/core/

bench:
	$(GO) test -run XXX -bench BenchmarkReorganizeTelemetry -benchmem ./internal/core/
	$(GO) test -run XXX -bench 'BenchmarkReorganizeEngine|BenchmarkPackUnpackPool' -benchmem ./internal/core/
