GO ?= go

.PHONY: build test verify chaos bench bench-json bench-mapping bench-resize bench-shm bench-bounded bench-fft bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# chaos is the short randomized fault-injection suite: the injector's
# determinism properties, the transport-level chaos regressions, and the
# property-based redistribution harness (reduced case count, fixed
# seeds), all under the race detector. See TESTING.md.
chaos:
	$(GO) test -race -short ./internal/chaos/ ./internal/ddrtest/
	$(GO) test -race -short -run 'Chaos|Partial|WaitCtxAbandon' ./internal/mpi/

# verify is the pre-merge gate. The pipelined exchange gate runs by
# name: the core pipelined differential sweep (depths 1/2/4 byte-identical
# across seeded geometries, modes, and budget tiers, incl. composition
# with the bounded step schedule), the pipelined planted-bug self-tests
# (core and harness — a staging buffer recycled one round early must be
# caught; these run WITHOUT -race because the planted bug is a genuine
# data race the detector would fail before the harness's own check
# fires), the budget depth clamp, the per-round Pack/Wire/Unpack timing
# contract, the pipelined zero-alloc steady-state guard, the short
# pipelined chaos property schedule, the distributed-FFT workload suite
# under race, and a one-iteration FFT bench smoke.
#
# The memory-bounded compiler gate runs by
# name: the differential sweep (bounded plans byte-identical to the
# brute oracle across seeded geometries x exchange modes x budget tiers
# down to the one-chunk minimum, with measured peak staging enforced
# against the budget), the meter-enforcement self-test, the planted-bug
# self-tests (core and harness), the golden bounded step fixtures, the
# bounded zero-alloc steady-state guard, the short bounded chaos
# property schedule, and a one-iteration bounded bench smoke.
#
# verify is the pre-merge gate. On top of the long-standing checks
# (described below), the topology-aware data path gate runs by name: the
# shm ring suite under race (concurrent storm, wraparound, chunked
# interleave, sever/stall chaos, scrape-under-load), the 2-node x 4-rank
# hierarchical smoke that asserts O(nodes²) leader flows via the
# endpoint stats, the autotune-cache smoke (at most one probe per plan x
# transport x direction, decision visible in /metrics, topology-keyed
# plan fingerprints), the shm zero-alloc steady-state guard, and a brief
# fuzz of the shm ring-record decoder.
#
# Long-standing checks: static analysis over the whole module,
# the race detector on the packages with concurrent machinery (lock-free
# counters, mailbox gauges, TCP wire counters, the pack/unpack worker
# pool and staging-buffer arena, and the parallel plan compiler — the
# compiler-equivalence differential tests run under race explicitly so a
# data race in the ForkJoin'd construction fails the gate by name), the
# chaos suite, the golden-plan fixtures, a brief fuzz of both TCP wire
# decoders, and one-iteration smokes of the exchange-engine and mapping
# benchmarks so every measured configuration stays runnable. The
# observability gate runs by name: the merged-trace round trip (4-rank
# exchange -> gathered, clock-corrected Perfetto timeline with a track
# per rank), the scrape-while-writing race, and the detached-cost guards
# (no tracer attached => zero allocations, no wire growth). The elastic
# gate runs the resize differential/lifecycle tests under race, a
# one-iteration resize bench smoke, and deprlint — which fails the build
# if internal code reaches a deprecated launcher entry point (Run,
# RunChaos, RunTCP*) or a removed descriptor constructor.
verify: chaos
	$(GO) vet ./...
	$(GO) run ./cmd/deprlint -root .
	$(GO) test -race ./internal/obs/... ./internal/mpi/... ./internal/trace/... ./internal/core/... ./internal/datatype/... ./internal/fft/...
	$(GO) test -race -run 'TestCompilerEquivalence' ./internal/core/
	$(GO) test -race -run 'TestTraceMergeRoundTrip|TestGatherTrace' ./internal/core/ ./internal/mpi/
	$(GO) test -race -run 'TestMetricsScrapeWhileWriting|TestFlightRecHandler' ./internal/obs/
	$(GO) test -run 'TestZeroAllocSteadyState|TestBoundedZeroAllocSteadyState|TestPipelineZeroAllocSteadyState|TestTracingDetachedZeroAlloc|TestFlightRecorderRecordZeroAlloc|TestTCPUntracedWireIdentical' ./internal/core/ ./internal/obs/ ./internal/mpi/
	$(GO) test -race -run 'TestRegridderReconnect' ./internal/transit/
	$(GO) test -race -run 'TestRegridderResize|TestRegridderConnectFailureResetsState' ./internal/transit/
	$(GO) test -race -run 'TestCompileDelta|TestDeltaCompilerCollective|TestDeltaExchange' ./internal/core/
	$(GO) test -race -short -run 'TestResize' ./internal/ddrtest/
	$(GO) test -run TestGoldenPlans ./internal/core/
	$(GO) test -race -run 'TestBoundedDifferentialSweep|TestBoundedMeterHasTeeth|TestBoundedHarnessCatchesPlantedBug|TestBoundedBudgetTooSmall|TestBoundedPlanCacheKeyedByBudget|TestBoundedCachedPlanReplays|TestSingleShotFootprintClassRounded' ./internal/core/
	$(GO) test -run 'TestGoldenBoundedPlans' ./internal/core/
	$(GO) test -race -short -run 'TestBoundedProperty|TestHarnessCatchesBoundedPlantedBug' ./internal/ddrtest/
	$(GO) test -run '^$$' -bench BenchmarkBoundedExchange -benchtime 1x ./internal/core/
	$(GO) test -race -run 'TestPipelineDifferentialSweep|TestPipelineDepthClampedByBudget|TestPipelineTimingsSubDurations|TestWithPipelineDepthValidation' ./internal/core/
	$(GO) test -race -short -run 'TestPipelinedProperty' ./internal/ddrtest/
	$(GO) test -run 'TestPipelineHarnessCatchesPlantedBug' ./internal/core/
	$(GO) test -short -run 'TestHarnessCatchesPipelinePlantedBug' ./internal/ddrtest/
	$(GO) test -run '^$$' -bench BenchmarkFFT2DStep -benchtime 1x ./internal/fft/
	$(GO) test -race -run 'TestShmConcurrentStorm|TestShmRingWraparound|TestShmChunkedInterleave|TestShmChaosSchedules|TestShmScrapeUnderLoad|TestTransportOptionsValidation' ./internal/mpi/
	$(GO) test -race -run 'TestHierSmoke|TestHierLargeChunkedRelay|TestHierCollectivesAndSplit|TestHierErrorPropagation' ./internal/mpi/
	$(GO) test -race -run 'TestAutotuneProbesOnce|TestPackStrategiesByteIdentical|TestTopologyKeyedPlanFingerprint|TestTwoLevelSchedule' ./internal/core/
	$(GO) test -run 'TestShmZeroAllocSteadyState' ./internal/mpi/
	$(GO) test -run '^$$' -fuzz FuzzShmRingHeader -fuzztime 10s ./internal/mpi/
	$(GO) test -run '^$$' -fuzz FuzzTCPFrameDecoder -fuzztime 10s ./internal/mpi/
	$(GO) test -run '^$$' -fuzz FuzzTCPSeqFrameDecoder -fuzztime 10s ./internal/mpi/
	$(GO) test -run '^$$' -bench BenchmarkReorganizeEngine -benchtime 1x ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkTCPExchange -benchtime 1x ./internal/mpi/
	$(GO) test -run '^$$' -bench 'BenchmarkSetupMapping/(schedule|plan)/P=64' -benchtime 1x ./internal/core/
	$(GO) test -run '^$$' -bench BenchmarkRegridderReconnect -benchtime 1x ./internal/transit/
	$(GO) test -run '^$$' -bench BenchmarkRegridderResize -benchtime 1x ./internal/transit/

bench:
	$(GO) test -run XXX -bench BenchmarkReorganizeTelemetry -benchmem ./internal/core/
	$(GO) test -run XXX -bench 'BenchmarkReorganizeEngine|BenchmarkPackUnpackPool' -benchmem ./internal/core/

# bench-json snapshots the transport and exchange-engine benchmarks as a
# JSON artifact (BENCH_tcp.json) for checking in and diffing across
# commits. Pass BASELINE=<file> to embed a prior snapshot for
# before/after ratios.
bench-json:
	{ $(GO) test -run '^$$' -bench BenchmarkTCPExchange -benchmem -benchtime 3s ./internal/mpi/ && \
	  $(GO) test -run '^$$' -bench BenchmarkReorganizeEngine -benchmem ./internal/core/ ; } | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) -o BENCH_tcp.json
	@echo wrote BENCH_tcp.json

# bench-shm snapshots the topology-aware data path: the shm-vs-TCP
# transport pair on the storm and 64 MiB bulk shapes, and the 64-rank /
# 4-node hierarchical storm against flat TCP and flat shm — as
# BENCH_shm.json. Pass BASELINE=<file> to embed a prior snapshot for
# before/after ratios.
bench-shm:
	{ $(GO) test -run '^$$' -bench BenchmarkShmExchange -benchmem -benchtime 2s -count 3 ./internal/mpi/ && \
	  $(GO) test -run '^$$' -bench BenchmarkHierExchange -benchmem -benchtime 3x -count 3 ./internal/mpi/ ; } | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) \
	  -note "shm rings vs TCP loopback vs inproc; 64-rank/4-node two-level leader relay vs flat transports" \
	  -o BENCH_shm.json
	@echo wrote BENCH_shm.json

# bench-compare diffs two benchjson snapshots and fails on regressions
# beyond 10%:  make bench-compare OLD=BENCH_tcp.json NEW=new.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# bench-mapping snapshots the mapping-engine benchmarks — indexed vs
# brute-force plan compilation across process counts, and the plan-cache
# cold/warm reconnect pair — as BENCH_mapping.json. Pass BASELINE=<file>
# to embed a prior snapshot for before/after ratios.
bench-mapping:
	{ $(GO) test -run '^$$' -bench BenchmarkSetupMapping -benchtime 5x ./internal/core/ && \
	  $(GO) test -run '^$$' -bench BenchmarkRegridderReconnect -benchtime 5x ./internal/transit/ ; } | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) \
	  -note "mapping engine: indexed sparse compiler vs brute-force baseline; plan-cache reconnect" \
	  -o BENCH_mapping.json
	@echo wrote BENCH_mapping.json

# bench-resize snapshots the elastic-resize benchmarks — the incremental
# delta compiler vs a from-scratch CompileSchedule of the same grow, the
# back-to-back compile_speedup ratio, the moved_frac share of the new
# need that crosses the wire, and the full collective Resize exchange —
# as BENCH_resize.json. Pass BASELINE=<file> to embed a prior snapshot
# for before/after ratios.
bench-resize:
	$(GO) test -run '^$$' -bench BenchmarkRegridderResize -benchmem -benchtime 20x ./internal/transit/ | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) \
	  -note "elastic 64->65 grow: incremental delta compile vs from-scratch schedule; moved_frac vs a cold full re-exchange" \
	  -o BENCH_resize.json
	@echo wrote BENCH_resize.json

# bench-bounded snapshots the memory-bounded exchange against the
# one-shot backend on the same 16-rank regrid: wall time, peak staging
# bytes (the live meter's high-water mark), bounded step count, and
# process peak RSS — as BENCH_bounded.json. Pass BASELINE=<file> to
# embed a prior snapshot for before/after ratios.
bench-bounded:
	$(GO) test -run '^$$' -bench BenchmarkBoundedExchange -benchmem -benchtime 10x -count 3 ./internal/core/ | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) \
	  -note "memory-bounded step schedule vs one-shot exchange, 16-rank 256x256 regrid; peak-staging-B is the measured arena high-water mark, peak-rss-B the process VmHWM" \
	  -o BENCH_bounded.json
	@echo wrote BENCH_bounded.json

# bench-fft snapshots the distributed 2D FFT workload: the full spectral
# timestep (four FFT passes + two slab<->pencil transposes) and the
# transpose phase alone, on 16 ranks over links slowed by an injected
# per-message transfer delay, with the DDR exchange at depth 1 (serial),
# the default double buffer (depth2), the full-ring pipeline
# (pipelined), and the hand-written one-message-per-peer transpose —
# as BENCH_fft.json. The overlap-ratio column is the share of wire time
# the pipelined schedule hid under pack/unpack. Pass BASELINE=<file> to
# embed a prior snapshot for before/after ratios.
bench-fft:
	$(GO) test -run '^$$' -bench BenchmarkFFT2D -benchtime 5x -count 3 ./internal/fft/ | \
	  $(GO) run ./cmd/benchjson $(if $(BASELINE),-baseline $(BASELINE)) \
	  -note "16-rank 256x256 distributed FFT over a 200us-per-message wire: pipelined DDR transpose vs serial rounds vs hand-written transpose; overlap-ratio = hidden wire share" \
	  -o BENCH_fft.json
	@echo wrote BENCH_fft.json
