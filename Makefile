GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate for the telemetry layer: static analysis
# over the whole module plus the race detector on the packages with
# concurrent instrumentation (lock-free counters, mailbox gauges, TCP
# wire counters).
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/mpi/... ./internal/trace/... ./internal/core/...

bench:
	$(GO) test -run XXX -bench BenchmarkReorganizeTelemetry -benchmem ./internal/core/
