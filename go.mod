module ddr

go 1.23
