// Command bov2vtk converts a bov volume (this repository's shared-file
// format) into a legacy VTK structured-points file loadable by ParaView
// or VisIt — the final hop of the conversion pipeline the paper's
// introduction motivates. Example:
//
//	stackconvert -stack /tmp/stack -out /tmp/volume.bov
//	bov2vtk -in /tmp/volume.bov -out /tmp/volume.vtk -name density
package main

import (
	"flag"
	"fmt"
	"os"

	"ddr/internal/bov"
	"ddr/internal/vtk"
)

func main() {
	var (
		in   = flag.String("in", "volume.bov", "input bov path")
		out  = flag.String("out", "volume.vtk", "output VTK path")
		name = flag.String("name", "density", "scalar array name")
	)
	flag.Parse()
	if err := vtk.ExportBOV(*in, *out, *name); err != nil {
		fmt.Fprintln(os.Stderr, "bov2vtk:", err)
		os.Exit(1)
	}
	v, err := bov.Open(*in)
	if err == nil {
		h := v.Header()
		v.Close()
		fmt.Printf("exported %dx%dx%d (%d-byte elements) -> %s\n",
			h.Dims[0], h.Dims[1], h.Dims[2], h.ElemSize, *out)
	}
}
