// Command tiffgen generates a synthetic CT-like TIFF slice stack, the
// stand-in for the paper's APS scan data. Example:
//
//	tiffgen -dir /tmp/stack -width 512 -height 256 -depth 128 -bits 32
package main

import (
	"flag"
	"fmt"
	"os"

	"ddr/internal/tiff"
)

func main() {
	var (
		dir    = flag.String("dir", "stack", "output directory")
		width  = flag.Int("width", 256, "slice width in pixels")
		height = flag.Int("height", 128, "slice height in pixels")
		depth  = flag.Int("depth", 64, "number of slices")
		bits   = flag.Int("bits", 16, "bits per sample (8, 16, or 32)")
		float_ = flag.Bool("float", false, "write 32-bit float samples instead of unsigned ints")
	)
	flag.Parse()
	format := tiff.FormatUint
	if *float_ {
		format = tiff.FormatFloat
	}
	if err := tiff.WriteStack(*dir, *width, *height, *depth, *bits, format); err != nil {
		fmt.Fprintln(os.Stderr, "tiffgen:", err)
		os.Exit(1)
	}
	perSlice := int64(*width) * int64(*height) * int64(*bits/8)
	fmt.Printf("wrote %d slices of %dx%d %d-bit (%.1f MB total) to %s\n",
		*depth, *width, *height, *bits,
		float64(perSlice*int64(*depth))/1e6, *dir)
}
