// Command volrender loads a TIFF slice stack in parallel with DDR (use
// case A end to end) and renders it with the software direct-volume
// renderer, writing a PNG. Example:
//
//	tiffgen -dir /tmp/stack
//	volrender -stack /tmp/stack -procs 8 -out tooth.png
package main

import (
	"flag"
	"fmt"
	"image"
	"os"
	"sync"

	"ddr/internal/colormap"
	"ddr/internal/experiments"
	"ddr/internal/mpi"
	"ddr/internal/render"
	"ddr/internal/tiff"
)

func main() {
	var (
		stack = flag.String("stack", "stack", "directory holding the TIFF slice stack")
		procs = flag.Int("procs", 8, "number of ranks")
		tech  = flag.String("technique", "consecutive", "slice assignment: round-robin or consecutive")
		out   = flag.String("out", "volume.png", "output PNG path")
		axis  = flag.String("axis", "+z", "viewing axis: +x -x +y -y +z -z")
		mip   = flag.Bool("mip", false, "maximum intensity projection instead of compositing DVR (+z only)")
	)
	flag.Parse()
	if err := run(*stack, *procs, *tech, *out, *axis, *mip); err != nil {
		fmt.Fprintln(os.Stderr, "volrender:", err)
		os.Exit(1)
	}
}

func run(stack string, procs int, tech, out, axis string, mip bool) error {
	info, err := tiff.ProbeStack(stack)
	if err != nil {
		return err
	}
	technique := experiments.Consecutive
	if tech == "round-robin" {
		technique = experiments.RoundRobin
	}
	views := map[string]render.ViewAxis{
		"+x": render.ViewXPlus, "-x": render.ViewXMinus,
		"+y": render.ViewYPlus, "-y": render.ViewYMinus,
		"+z": render.ViewZPlus, "-z": render.ViewZMinus,
	}
	view, ok := views[axis]
	if !ok {
		return fmt.Errorf("unknown axis %q", axis)
	}
	frameW, frameH := view.FrameDims(info.Width, info.Height, info.Depth)
	var (
		mu    sync.Mutex
		frame *image.RGBA
	)
	err = mpi.Launch(procs, func(c *mpi.Comm) error {
		res, err := experiments.LoadStackDDR(c, info, technique)
		if err != nil {
			return err
		}
		var img *image.RGBA
		if mip {
			p, err := render.RenderBrickMIP(res.Brick)
			if err != nil {
				return err
			}
			img, err = render.GatherMIP(c, 0, p, info.Width, info.Height, 0, 1)
			if err != nil {
				return err
			}
		} else {
			partial, err := render.RenderBrickAxis(res.Brick, render.CTTransfer, view)
			if err != nil {
				return err
			}
			img, err = render.GatherComposite(c, 0, partial, frameW, frameH)
			if err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			mu.Lock()
			frame = img
			mu.Unlock()
			fmt.Printf("rank 0: read %d of %d images; %v\n", res.ImagesRead, info.Depth, res.Stats)
		}
		return nil
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := colormap.EncodePNG(f, frame); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("rendered %d-slice volume along %s on %d ranks (%dx%d frame) -> %s\n",
		info.Depth, axis, procs, frameW, frameH, out)
	return nil
}
