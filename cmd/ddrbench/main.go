// Command ddrbench regenerates every table and figure of the paper's
// evaluation section:
//
//	ddrbench -table 1        Table I   (E1 mapping parameters, exact)
//	ddrbench -table 2        Table II  (TIFF load times, modelled at paper scale)
//	ddrbench -table 3        Table III (alltoallw schedules, exact)
//	ddrbench -table 4        Table IV  (raw vs JPEG output size)
//	ddrbench -figure 2       Figure 2  (parallel DVR rendering -> PNG)
//	ddrbench -figure 3       Figure 3  (strong-scaling series)
//	ddrbench -figure 4       Figure 4  (M-to-N in-transit streaming run)
//	ddrbench -figure 5       Figure 5  (slab-to-rectangle regrid mapping)
//	ddrbench -real           laptop-scale real-execution TIFF study
//	ddrbench -all            everything above
//
// The real-execution experiments (-ablation, -figure 4) can emit their
// telemetry: -trace-out writes a Perfetto-loadable timeline, -metrics-out
// a Prometheus text file, and -pprof-addr serves live /metrics and
// /debug/pprof while the run is in flight. -trace-merge gathers every
// rank's spans at rank 0 — clock-corrected by a ping-pong offset
// estimate — and writes one multi-rank Perfetto timeline plus a
// straggler report; -flightrec N arms a per-process postmortem ring of
// the last N transport events, dumped on peer loss, SIGQUIT, and
// /debug/flightrec; -tcp runs the in-transit ranks over the loopback TCP
// transport so the traced frames are real wire frames.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ddr/internal/colormap"
	"ddr/internal/experiments"
	"ddr/internal/grid"
	"ddr/internal/perfmodel"
	"ddr/internal/tiff"
)

func main() {
	var (
		table     = flag.Int("table", 0, "reproduce table N (1-4)")
		figure    = flag.Int("figure", 0, "reproduce figure N (2-5)")
		all       = flag.Bool("all", false, "reproduce every table and figure")
		real      = flag.Bool("real", false, "run the laptop-scale real-execution TIFF study")
		ablation  = flag.Bool("ablation", false, "run the exchange-mode ablation study")
		vol3d     = flag.Bool("volumetric", false, "run the 3D in-transit volume-rendering extension")
		outDir    = flag.String("out", "ddrbench-out", "directory for rendered outputs")
		t4w       = flag.Int("t4width", 648, "grid width for the Table IV JPEG density measurement")
		t4h       = flag.Int("t4height", 260, "grid height for the Table IV JPEG density measurement")
		t4fr      = flag.Int("t4frames", 5, "frames for the Table IV measurement")
		quality   = flag.Int("quality", 75, "JPEG quality")
		traceOut  = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the instrumented runs to this JSON file")
		metrics   = flag.String("metrics-out", "", "write Prometheus text-format metrics of the instrumented runs to this file")
		pprof     = flag.String("pprof-addr", "", "serve /metrics and /debug/pprof on this address while running")
		mergeOut  = flag.String("trace-merge", "", "gather every rank's spans at rank 0, clock-correct them, and write one merged multi-rank Perfetto timeline (plus a straggler report on stderr) to this JSON file")
		flightN   = flag.Int("flightrec", 0, "arm a flight recorder keeping the last N transport events, dumped on peer loss, SIGQUIT, and /debug/flightrec (0 disables)")
		useTCP    = flag.Bool("tcp", false, "run the in-transit pipeline ranks over the loopback TCP transport (shorthand for -transport=tcp)")
		memBudget = flag.Int("mem-budget", 0, "per-rank exchange staging budget in bytes for the in-transit pipeline; frames exceeding it regrid through the bounded step compiler (0 = unbounded)")
	)
	applyTCP := experiments.RegisterTCPFlags(flag.CommandLine)
	resolveTransport := experiments.RegisterTransportFlags(flag.CommandLine)
	applyChaos := experiments.RegisterChaosFlags(flag.CommandLine)
	pipeDepth := experiments.RegisterPipelineFlags(flag.CommandLine)
	flag.Parse()
	applyTCP()
	if err := applyChaos(); err != nil {
		fmt.Fprintln(os.Stderr, "ddrbench:", err)
		os.Exit(2)
	}
	if !*all && *table == 0 && *figure == 0 && !*real && !*ablation && !*vol3d {
		flag.Usage()
		os.Exit(2)
	}
	tel, flush, err := experiments.TelemetryFromFlags(*traceOut, *metrics, *pprof, *mergeOut, *flightN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddrbench:", err)
		os.Exit(1)
	}
	transport, nodes := resolveTransport()
	if *useTCP && transport == "" {
		transport = "tcp"
	}
	if err := run(tel, transport, nodes, *memBudget, pipeDepth(), *table, *figure, *all, *real, *ablation, *vol3d, *outDir, *t4w, *t4h, *t4fr, *quality); err != nil {
		fmt.Fprintln(os.Stderr, "ddrbench:", err)
		os.Exit(1)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "ddrbench: telemetry:", err)
		os.Exit(1)
	}
}

func run(tel *experiments.Telemetry, transport string, nodes, memBudget, pipeDepth int, table, figure int, all, real, ablation, vol3d bool, outDir string, t4w, t4h, t4fr, quality int) error {
	machine := perfmodel.Cooley()
	want := func(t, f int) bool {
		return all || (t != 0 && table == t) || (f != 0 && figure == f)
	}

	if want(1, 0) {
		experiments.WriteTable1(os.Stdout, experiments.Table1())
		fmt.Println()
	}
	if want(2, 0) {
		rows, err := experiments.Table2(machine)
		if err != nil {
			return err
		}
		experiments.WriteTable2(os.Stdout, rows)
		fmt.Println()
	}
	if want(3, 0) {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		experiments.WriteTable3(os.Stdout, rows)
		fmt.Println()
	}
	if want(4, 0) {
		fmt.Printf("Table IV: measuring JPEG density on a real %dx%d LBM run...\n", t4w, t4h)
		bpp, err := experiments.MeasureJPEGBytesPerPixel(t4w, t4h, 400, t4fr, 100, quality)
		if err != nil {
			return err
		}
		experiments.WriteTable4(os.Stdout, experiments.Table4(bpp, 200), bpp)
		// Extension: the error-bounded numerical reduction as an alternative
		// to render-to-JPEG (preserves analyzable values, not just pixels).
		qbpp, err := experiments.MeasureQuantizedBytesPerPixel(t4w, t4h, 400, t4fr, 100, 1e-4)
		if err != nil {
			return err
		}
		fmt.Printf("extension: error-bounded quantizer (|err| <= 1e-4) reduces raw 4 B/px to %.4f B/px (%.2f%% reduction)\n\n",
			qbpp, 100*(1-qbpp/4))
	}
	if want(0, 2) {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		img, err := experiments.RenderFigure2(192, 192, 128, 8)
		if err != nil {
			return err
		}
		// Attach the density color ramp beside the render, mirroring the
		// colormap swatch in the paper's Figure 2.
		withLegend, err := colormap.WithLegend(img, colormap.Heat)
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "figure2_dvr.png")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := colormap.EncodePNG(f, withLegend); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Figure 2: parallel DVR rendering of the synthetic CT volume -> %s\n\n", path)
	}
	if want(0, 3) {
		s, err := experiments.Figure3(machine)
		if err != nil {
			return err
		}
		experiments.WriteFigure3(os.Stdout, s)
		fmt.Println()
	}
	if want(0, 4) {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		fmt.Println("Figure 4: running the M-to-N in-transit pipeline (8 sim ranks -> 2 analysis ranks)...")
		res, err := experiments.RunInTransit(experiments.InTransitConfig{
			M: 8, N: 2,
			GridW: 648, GridH: 260,
			Iterations:    2000,
			OutputEvery:   200,
			JPEGQuality:   quality,
			OutDir:        outDir,
			Telemetry:     tel,
			Transport:     transport,
			Nodes:         nodes,
			MemBudget:     memBudget,
			PipelineDepth: pipeDepth,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  frames=%d raw=%.1f MB jpeg=%.2f MB reduction=%.2f%% (frames in %s)\n\n",
			res.Frames, float64(res.RawBytes)/1e6, float64(res.ProcessedBytes)/1e6,
			res.ReductionPct, outDir)
	}
	if want(0, 5) {
		m, err := experiments.Figure5(10, 4, 640, 400)
		if err != nil {
			return err
		}
		fmt.Println("Figure 5: redistribution of 10 producer slabs onto 4 near-square analysis rectangles")
		for c, need := range m.ConsumerNeeds {
			fmt.Printf("  consumer %d receives %d slab chunks -> needs %v\n",
				c, len(m.ChunksPerCons[c]), need)
		}
		fmt.Printf("  regrid schedule: %v\n\n", m.Stats)
	}
	if ablation || all {
		const reps = 20
		fmt.Println("running the exchange-mode ablation (real execution, 8 ranks)...")
		rows, err := experiments.ExchangeModeAblation(8,
			grid.Box3(0, 0, 0, 64, 64, 128), []int{1, 2, 4, 8, 16}, reps, tel)
		if err != nil {
			return err
		}
		experiments.WriteAblation(os.Stdout, rows, reps)
		fmt.Println()
	}
	if vol3d || all {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		fmt.Println("extension: 3D in-transit volume rendering (6 sim ranks -> 2 analysis ranks)...")
		res, err := experiments.RunInTransit3D(experiments.InTransit3DConfig{
			M: 6, N: 2,
			W: 96, H: 48, D: 48,
			Iterations:  400,
			OutputEvery: 80,
			JPEGQuality: quality,
			OutDir:      outDir,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  frames=%d raw=%.1f MB jpeg=%.3f MB reduction=%.2f%% (volume_*.jpg in %s)\n\n",
			res.Frames, float64(res.RawBytes)/1e6, float64(res.ProcessedBytes)/1e6,
			res.ReductionPct, outDir)
	}
	if real {
		dir := filepath.Join(outDir, "stack")
		if _, err := os.Stat(tiff.SlicePath(dir, 0)); err != nil {
			fmt.Printf("generating synthetic stack (256x128x64, 16-bit) in %s...\n", dir)
			if err := tiff.WriteStack(dir, 256, 128, 64, 16, tiff.FormatUint); err != nil {
				return err
			}
		}
		rows, err := experiments.RunRealTIFFStudy(dir, []int{8, 27, 64})
		if err != nil {
			return err
		}
		experiments.WriteRealStudy(os.Stdout, rows)
	}
	return nil
}
