// Command lbmsim runs the paper's use case B: an M-rank Lattice-Boltzmann
// simulation streams fields in-transit to an N-rank analysis application,
// which regrids the slabs with DDR, renders each frame through a
// colormap, and writes JPEGs.
//
// Single-process (both applications in one world):
//
//	lbmsim -sim 8 -viz 2 -width 648 -height 260 -iters 2000 -every 100 -out frames
//
// Two separate applications connected over TCP (run the viz side first;
// it prints "BRIDGE addr1,addr2,...", which the sim side takes):
//
//	lbmsim -role viz -sim 8 -viz 2 ...            # prints BRIDGE <addrs>
//	lbmsim -role sim -sim 8 -viz 2 -connect <addrs> ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ddr/internal/experiments"
)

func main() {
	var (
		sim       = flag.Int("sim", 8, "simulation ranks (M)")
		viz       = flag.Int("viz", 2, "analysis ranks (N)")
		width     = flag.Int("width", 648, "grid width")
		height    = flag.Int("height", 260, "grid height")
		iters     = flag.Int("iters", 2000, "simulation iterations")
		every     = flag.Int("every", 100, "stream every Nth iteration")
		quality   = flag.Int("quality", 75, "JPEG quality")
		out       = flag.String("out", "frames", "output directory for JPEG frames")
		fields    = flag.String("fields", "vorticity", "comma-separated variables to stream: vorticity,speed,density")
		role      = flag.String("role", "both", "both (one process), sim, or viz (two applications over TCP)")
		connect   = flag.String("connect", "", "comma-separated analysis addresses (role=sim)")
		bind      = flag.String("bind", "127.0.0.1:0", "listener bind address (role=viz)")
		gifOut    = flag.String("gif", "", "also write an animated GIF of the first field to this path")
		stats     = flag.String("stats", "", "write per-frame field statistics (min/max/mean/rms) as CSV to this path")
		trace     = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the pipeline to this JSON file")
		metrics   = flag.String("metrics-out", "", "write Prometheus text-format metrics to this file")
		pprof     = flag.String("pprof-addr", "", "serve /metrics and /debug/pprof on this address while running")
		merge     = flag.String("trace-merge", "", "gather every rank's spans at rank 0, clock-correct them, and write one merged multi-rank Perfetto timeline (role=both only)")
		flightN   = flag.Int("flightrec", 0, "arm a flight recorder keeping the last N transport events, dumped on peer loss, SIGQUIT, and /debug/flightrec (0 disables)")
		useTCP    = flag.Bool("tcp", false, "run the in-process world over the loopback TCP transport (shorthand for -transport=tcp, role=both only)")
		memBudget = flag.Int("mem-budget", 0, "per-rank exchange staging budget in bytes; frames exceeding it regrid through the bounded step compiler (0 = unbounded)")
	)
	applyTCP := experiments.RegisterTCPFlags(flag.CommandLine)
	resolveTransport := experiments.RegisterTransportFlags(flag.CommandLine)
	applyChaos := experiments.RegisterChaosFlags(flag.CommandLine)
	pipeDepth := experiments.RegisterPipelineFlags(flag.CommandLine)
	flag.Parse()
	applyTCP()
	if err := applyChaos(); err != nil {
		fmt.Fprintln(os.Stderr, "lbmsim:", err)
		os.Exit(2)
	}
	tel, flush, err := experiments.TelemetryFromFlags(*trace, *metrics, *pprof, *merge, *flightN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbmsim:", err)
		os.Exit(1)
	}
	transport, nodes := resolveTransport()
	if *useTCP && transport == "" {
		transport = "tcp"
	}
	cfg := experiments.InTransitConfig{
		M: *sim, N: *viz,
		GridW: *width, GridH: *height,
		Iterations:    *iters,
		OutputEvery:   *every,
		JPEGQuality:   *quality,
		Fields:        strings.Split(*fields, ","),
		GIFPath:       *gifOut,
		StatsPath:     *stats,
		Telemetry:     tel,
		Transport:     transport,
		Nodes:         nodes,
		MemBudget:     *memBudget,
		PipelineDepth: pipeDepth(),
	}
	if err := run(cfg, *role, *connect, *bind, *out); err != nil {
		fmt.Fprintln(os.Stderr, "lbmsim:", err)
		os.Exit(1)
	}
	if err := flush(); err != nil {
		fmt.Fprintln(os.Stderr, "lbmsim: telemetry:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.InTransitConfig, role, connect, bind, out string) error {
	report := func(res *experiments.InTransitResult) {
		fmt.Printf("%d sim ranks -> %d analysis ranks, %d frames of %dx%d\n",
			cfg.M, cfg.N, res.Frames, cfg.GridW, cfg.GridH)
		fmt.Printf("raw output would be %.1f MB; rendered JPEG output is %.2f MB (%.2f%% reduction)\n",
			float64(res.RawBytes)/1e6, float64(res.ProcessedBytes)/1e6, res.ReductionPct)
	}
	switch role {
	case "both":
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		cfg.OutDir = out
		res, err := experiments.RunInTransit(cfg)
		if err != nil {
			return err
		}
		report(res)
		return nil
	case "viz":
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		cfg.OutDir = out
		res, err := experiments.RunInTransitBridgeViz(cfg, bind, func(addrs []string) {
			fmt.Printf("BRIDGE %s\n", strings.Join(addrs, ","))
		})
		if err != nil {
			return err
		}
		report(res)
		return nil
	case "sim":
		if connect == "" {
			return fmt.Errorf("role=sim needs -connect with the viz side's BRIDGE addresses")
		}
		return experiments.RunInTransitBridgeSim(cfg, strings.Split(connect, ","))
	default:
		return fmt.Errorf("unknown role %q", role)
	}
}
