// Command deprlint walks the repository's Go source and flags any use of
// APIs this module has deprecated or removed:
//
//   - the legacy launcher entry points mpi.Run, mpi.RunChaos, mpi.RunTCP,
//     mpi.RunTCPOpts, and mpi.RunTCPChaos — internal code must go through
//     mpi.Launch with options (the wrappers survive only for external
//     callers, inside internal/mpi itself);
//   - the removed descriptor constructors NewDataDescriptor and
//     NewDataDescriptorBytes, anywhere, under any package qualifier.
//
// It is wired into `make verify` so a deprecated call cannot land:
//
//	deprlint [-root dir]
//
// exits non-zero and prints file:line for every finding.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// launcherNames are the deprecated mpi entry points; calling them is only
// legal inside internal/mpi, where the wrappers live and are tested.
var launcherNames = map[string]bool{
	"Run":         true,
	"RunChaos":    true,
	"RunTCP":      true,
	"RunTCPOpts":  true,
	"RunTCPChaos": true,
}

// removedNames are identifiers that no longer exist in the API; any
// surviving reference is a finding regardless of package.
var removedNames = map[string]bool{
	"NewDataDescriptor":      true,
	"NewDataDescriptorBytes": true,
}

const mpiImportPath = "ddr/internal/mpi"

type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := flag.String("root", ".", "repository root to lint")
	flag.Parse()

	var findings []finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		found, err := lintFile(fset, path, allowLaunchers(*root, path))
		if err != nil {
			return err
		}
		findings = append(findings, found...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "deprlint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.msg)
		}
		fmt.Fprintf(os.Stderr, "deprlint: %d deprecated API use(s)\n", len(findings))
		os.Exit(1)
	}
}

// allowLaunchers reports whether path may reference the deprecated
// launcher wrappers: only internal/mpi, which defines and tests them.
func allowLaunchers(root, path string) bool {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	return strings.HasPrefix(rel, "internal/mpi/")
}

// lintFile parses one file and reports deprecated references: calls to
// the legacy launchers through any identifier importing internal/mpi,
// and any mention of the removed constructors.
func lintFile(fset *token.FileSet, path string, allowLaunch bool) ([]finding, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}

	// Names the mpi package is imported under in this file.
	mpiNames := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != mpiImportPath {
			continue
		}
		name := "mpi"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		mpiNames[name] = true
	}

	var findings []finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			if id, ok := n.(*ast.Ident); ok && removedNames[id.Name] {
				findings = append(findings, finding{
					pos: fset.Position(id.Pos()),
					msg: fmt.Sprintf("%s was removed; use NewDescriptor (with WithElemSize for raw bytes)", id.Name),
				})
			}
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if removedNames[sel.Sel.Name] {
			findings = append(findings, finding{
				pos: fset.Position(sel.Pos()),
				msg: fmt.Sprintf("%s.%s was removed; use NewDescriptor (with WithElemSize for raw bytes)", id.Name, sel.Sel.Name),
			})
			return false
		}
		if !allowLaunch && mpiNames[id.Name] && launcherNames[sel.Sel.Name] {
			findings = append(findings, finding{
				pos: fset.Position(sel.Pos()),
				msg: fmt.Sprintf("%s.%s is deprecated; use %s.Launch with WithTransport/WithTCPOptions/WithFaultInjector", id.Name, sel.Sel.Name, id.Name),
			})
			return false
		}
		return true
	})
	return findings, nil
}
