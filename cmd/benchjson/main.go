// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be checked
// in and diffed across commits:
//
//	go test -run '^$' -bench BenchmarkTCPExchange -benchmem ./internal/mpi/ |
//	    benchjson -o BENCH_tcp.json
//
// Repeated runs of the same benchmark (-count N) are aggregated: the
// reported ns/op is the fastest run, MB/s the highest, and the run count
// is recorded. An optional -baseline file (a prior benchjson document)
// is embedded verbatim under "baseline" so before/after ratios live in
// one artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`

	// Extras holds custom b.ReportMetric units (e.g. moved_frac,
	// compile_speedup) keyed by unit name; the value kept across -count
	// repeats is the last one reported.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// Document is the JSON artifact benchjson writes.
type Document struct {
	Note       string          `json:"note,omitempty"`
	Goos       string          `json:"goos,omitempty"`
	Goarch     string          `json:"goarch,omitempty"`
	Pkg        string          `json:"pkg,omitempty"`
	Benchmarks []Result        `json:"benchmarks"`
	Baseline   json.RawMessage `json:"baseline,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the document")
	baseline := flag.String("baseline", "", "embed this prior benchjson document under \"baseline\"")
	flag.Parse()

	doc := Document{Note: *note}
	order := []string{}
	byName := map[string]*Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			if doc.Pkg == "" {
				doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			} else if p := strings.TrimPrefix(line, "pkg: "); !strings.Contains(doc.Pkg, p) {
				doc.Pkg += "," + p
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r, ok := byName[m[1]]
		if !ok {
			r = &Result{Name: m[1], Iterations: iters, NsPerOp: ns}
			byName[m[1]] = r
			order = append(order, m[1])
		}
		r.Runs++
		if ns < r.NsPerOp || r.Runs == 1 {
			r.NsPerOp = ns
			r.Iterations = iters
		}
		for _, extra := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			extra = strings.TrimSpace(extra)
			switch {
			case strings.HasSuffix(extra, " MB/s"):
				if v, err := strconv.ParseFloat(strings.TrimSuffix(extra, " MB/s"), 64); err == nil && v > r.MBPerS {
					r.MBPerS = v
				}
			case strings.HasSuffix(extra, " B/op"):
				if v, err := strconv.ParseInt(strings.TrimSuffix(extra, " B/op"), 10, 64); err == nil {
					r.BytesPerOp = v
				}
			case strings.HasSuffix(extra, " allocs/op"):
				if v, err := strconv.ParseInt(strings.TrimSuffix(extra, " allocs/op"), 10, 64); err == nil {
					r.AllocsPerOp = v
				}
			default:
				// Any remaining "<value> <unit>" pair is a custom metric
				// from b.ReportMetric; keep it under its unit name.
				fields := strings.Fields(extra)
				if len(fields) != 2 {
					continue
				}
				v, err := strconv.ParseFloat(fields[0], 64)
				if err != nil {
					continue
				}
				if r.Extras == nil {
					r.Extras = map[string]float64{}
				}
				r.Extras[fields[1]] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	for _, name := range order {
		doc.Benchmarks = append(doc.Benchmarks, *byName[name])
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("baseline %s is not valid JSON", *baseline))
		}
		doc.Baseline = json.RawMessage(raw)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
