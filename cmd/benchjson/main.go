// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be checked
// in and diffed across commits:
//
//	go test -run '^$' -bench BenchmarkTCPExchange -benchmem ./internal/mpi/ |
//	    benchjson -o BENCH_tcp.json
//
// Repeated runs of the same benchmark (-count N) are aggregated: the
// reported ns/op is the fastest run, MB/s the highest, and the run count
// is recorded. An optional -baseline file (a prior benchjson document)
// is embedded verbatim under "baseline" so before/after ratios live in
// one artifact.
//
// A second mode diffs two snapshots:
//
//	benchjson -compare old.json new.json
//
// prints a speedup/regression table over the benchmarks the two
// documents share, and exits 1 when any shared benchmark regressed by
// more than the -tolerance fraction (default 0.10).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`

	// Extras holds custom b.ReportMetric units (e.g. moved_frac,
	// compile_speedup) keyed by unit name; the value kept across -count
	// repeats is the last one reported.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// Document is the JSON artifact benchjson writes.
type Document struct {
	Note       string          `json:"note,omitempty"`
	Goos       string          `json:"goos,omitempty"`
	Goarch     string          `json:"goarch,omitempty"`
	Pkg        string          `json:"pkg,omitempty"`
	Benchmarks []Result        `json:"benchmarks"`
	Baseline   json.RawMessage `json:"baseline,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// Benchmarks that log mid-run split their output line: go test prints
// the padded name, the log line lands after it, and the measurements
// arrive on a line of their own. benchName recovers the name from such
// a broken line and orphanLine matches the detached measurement line.
var benchName = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?(?:\s|$)`)
var orphanLine = regexp.MustCompile(`^\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write the JSON document to this file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the document")
	baseline := flag.String("baseline", "", "embed this prior benchjson document under \"baseline\"")
	compare := flag.Bool("compare", false, "compare two snapshots: benchjson -compare old.json new.json")
	tolerance := flag.Float64("tolerance", 0.10, "regression fraction tolerated in -compare mode before exiting 1")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		if err := compareDocs(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	doc := Document{Note: *note}
	order := []string{}
	byName := map[string]*Result{}
	pending := "" // name from a log-split benchmark line awaiting its numbers
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			if doc.Pkg == "" {
				doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			} else if p := strings.TrimPrefix(line, "pkg: "); !strings.Contains(doc.Pkg, p) {
				doc.Pkg += "," + p
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			// A log line interleaved with the benchmark output splits the
			// name and the measurements across lines; stitch them back.
			if nm := benchName.FindStringSubmatch(line); nm != nil {
				pending = nm[1]
				continue
			}
			om := orphanLine.FindStringSubmatch(line)
			if om == nil || pending == "" {
				continue
			}
			m = []string{line, pending, om[1], om[2], om[3]}
			pending = ""
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r, ok := byName[m[1]]
		if !ok {
			r = &Result{Name: m[1], Iterations: iters, NsPerOp: ns}
			byName[m[1]] = r
			order = append(order, m[1])
		}
		r.Runs++
		if ns < r.NsPerOp || r.Runs == 1 {
			r.NsPerOp = ns
			r.Iterations = iters
		}
		for _, extra := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			extra = strings.TrimSpace(extra)
			switch {
			case strings.HasSuffix(extra, " MB/s"):
				if v, err := strconv.ParseFloat(strings.TrimSuffix(extra, " MB/s"), 64); err == nil && v > r.MBPerS {
					r.MBPerS = v
				}
			case strings.HasSuffix(extra, " B/op"):
				if v, err := strconv.ParseInt(strings.TrimSuffix(extra, " B/op"), 10, 64); err == nil {
					r.BytesPerOp = v
				}
			case strings.HasSuffix(extra, " allocs/op"):
				if v, err := strconv.ParseInt(strings.TrimSuffix(extra, " allocs/op"), 10, 64); err == nil {
					r.AllocsPerOp = v
				}
			default:
				// Any remaining "<value> <unit>" pair is a custom metric
				// from b.ReportMetric; keep it under its unit name.
				fields := strings.Fields(extra)
				if len(fields) != 2 {
					continue
				}
				v, err := strconv.ParseFloat(fields[0], 64)
				if err != nil {
					continue
				}
				if r.Extras == nil {
					r.Extras = map[string]float64{}
				}
				r.Extras[fields[1]] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	for _, name := range order {
		doc.Benchmarks = append(doc.Benchmarks, *byName[name])
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("baseline %s is not valid JSON", *baseline))
		}
		doc.Baseline = json.RawMessage(raw)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc) //nolint:errcheck
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// loadDoc reads a benchjson document from disk.
func loadDoc(path string) (Document, error) {
	var doc Document
	raw, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compareDocs prints a speedup/regression table over the benchmarks two
// snapshots share, then benchmarks unique to either side. A positive
// speedup means new is faster (old ns/op ÷ new ns/op > 1). Returns an
// error when any shared benchmark regressed by more than tol.
func compareDocs(oldPath, newPath string, tol float64) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	oldBy := map[string]Result{}
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-60s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup")
	var regressed []string
	seen := map[string]bool{}
	for _, nr := range newDoc.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		seen[nr.Name] = true
		ratio := or.NsPerOp / nr.NsPerOp
		mark := ""
		switch {
		case ratio < 1-tol:
			mark = "  REGRESSION"
			regressed = append(regressed, nr.Name)
		case ratio > 1+tol:
			mark = "  improved"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %8.2fx%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, ratio, mark)
	}
	for _, nr := range newDoc.Benchmarks {
		if _, ok := oldBy[nr.Name]; !ok {
			fmt.Fprintf(w, "%-60s %14s %14.0f      new\n", nr.Name, "-", nr.NsPerOp)
		}
	}
	for _, or := range oldDoc.Benchmarks {
		if !seen[or.Name] {
			fmt.Fprintf(w, "%-60s %14.0f %14s  removed\n", or.Name, or.NsPerOp, "-")
		}
	}
	if len(regressed) > 0 {
		w.Flush()
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), tol*100, strings.Join(regressed, ", "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
