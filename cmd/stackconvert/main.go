// Command stackconvert converts a TIFF slice stack into a single bov
// volume in parallel — the on-the-fly format conversion the paper's
// introduction motivates for distributed rendering packages. Every image
// is decoded exactly once (by one rank), DDR rearranges pixels into
// contiguous per-rank write slabs, and each rank performs one sequential
// write into the shared output file. Example:
//
//	tiffgen -dir /tmp/stack -width 256 -height 128 -depth 64
//	stackconvert -stack /tmp/stack -out /tmp/volume.bov -procs 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ddr/internal/experiments"
	"ddr/internal/mpi"
	"ddr/internal/tiff"
)

func main() {
	var (
		stack = flag.String("stack", "stack", "input TIFF slice stack directory")
		out   = flag.String("out", "volume.bov", "output bov path")
		procs = flag.Int("procs", 8, "number of ranks")
	)
	flag.Parse()
	info, err := tiff.ProbeStack(*stack)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stackconvert:", err)
		os.Exit(1)
	}
	var (
		mu  sync.Mutex
		res *experiments.ConvertResult
	)
	err = mpi.Launch(*procs, func(c *mpi.Comm) error {
		r, err := experiments.ConvertStackToBOV(c, info, *out)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stackconvert:", err)
		os.Exit(1)
	}
	fmt.Printf("converted %d slices (%.1f MB) on %d ranks -> %s\n",
		res.Slices, float64(res.Bytes)/1e6, *procs, *out)
	fmt.Printf("read %v  redistribute %v  write %v (max across ranks)\n",
		res.ReadTime.Round(time.Millisecond),
		res.CommTime.Round(time.Millisecond),
		res.WriteTime.Round(time.Millisecond))
}
