// Command ddrplan is an offline schedule analyzer: it compiles the exact
// DDR communication plan for a described geometry — no data, no ranks —
// and prints the Table-III-style statistics, letting users size workloads
// before running them. Two geometry families cover the paper's use cases:
//
//	ddrplan -mode stack -width 4096 -height 2048 -depth 4096 -elem 4 \
//	        -procs 216 -technique consecutive
//	ddrplan -mode regrid -width 25904 -height 10360 -elem 4 -producers 128 -consumers 32
//
// The per-round table shows each rank's wire bytes per round (max/avg),
// exposing imbalance the aggregate stats can hide.
//
// With -sweep, ddrplan instead profiles compile-time scaling across a
// list of process counts, printing the per-phase cost of establishing the
// mapping at each scale — geometry allgather payload, cache-key
// fingerprint, spatial-index build, and plan compile:
//
//	ddrplan -mode stack -sweep 64,256,1024 -par 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ddr/internal/core"
	"ddr/internal/experiments"
	"ddr/internal/grid"
)

func main() {
	var (
		mode      = flag.String("mode", "stack", "geometry family: stack or regrid")
		width     = flag.Int("width", 4096, "domain width")
		height    = flag.Int("height", 2048, "domain height")
		depth     = flag.Int("depth", 4096, "domain depth / image count (stack mode)")
		elem      = flag.Int("elem", 4, "element size in bytes")
		procs     = flag.Int("procs", 64, "process count (stack mode)")
		technique = flag.String("technique", "consecutive", "stack chunking: consecutive or round-robin")
		producers = flag.Int("producers", 128, "producer ranks (regrid mode)")
		consumers = flag.Int("consumers", 32, "consumer ranks (regrid mode)")
		perRound  = flag.Bool("rounds", false, "print the per-round traffic table")
		save      = flag.String("save", "", "write the geometry as JSON to this path")
		load      = flag.String("load", "", "analyze a geometry JSON instead of -mode")
		sweep     = flag.String("sweep", "", "comma-separated process counts: profile compile-time scaling with per-phase timings")
		par       = flag.Int("par", 0, "compile parallelism for -sweep (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *sweep != "" {
		if err := runSweep(*mode, *width, *height, *depth, *elem, *technique, *producers, *consumers, *sweep, *par); err != nil {
			fmt.Fprintln(os.Stderr, "ddrplan:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*mode, *width, *height, *depth, *elem, *procs, *technique, *producers, *consumers, *perRound, *save, *load); err != nil {
		fmt.Fprintln(os.Stderr, "ddrplan:", err)
		os.Exit(1)
	}
}

// buildGeometry constructs the selected geometry family at a given
// process count.
func buildGeometry(mode string, width, height, depth, procs int, technique string, producers, consumers int) ([][]grid.Box, []grid.Box, error) {
	switch mode {
	case "stack":
		tech := experiments.Consecutive
		if technique == "round-robin" {
			tech = experiments.RoundRobin
		} else if technique != "consecutive" {
			return nil, nil, fmt.Errorf("unknown technique %q", technique)
		}
		domain := grid.Box3(0, 0, 0, width, height, depth)
		chunks, needs := experiments.StackGeometry(domain, procs, tech)
		return chunks, needs, nil
	case "regrid":
		// Scale the flags' producer:consumer ratio to the requested size.
		cons := max(1, procs*consumers/max(1, producers))
		m, err := experiments.Figure5(procs, cons, width, height)
		if err != nil {
			return nil, nil, err
		}
		return m.ChunksPerCons, m.ConsumerNeeds, nil
	default:
		return nil, nil, fmt.Errorf("unknown mode %q", mode)
	}
}

// runSweep profiles the offline compile across a list of process counts.
func runSweep(mode string, width, height, depth, elem int, technique string, producers, consumers int, sweep string, par int) error {
	var counts []int
	for _, f := range strings.Split(sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -sweep entry %q", f)
		}
		counts = append(counts, n)
	}
	fmt.Printf("compile-time scaling, %s geometry, par=%d\n", mode, par)
	fmt.Printf("%-8s %8s %12s %12s %10s %10s %10s  %s\n",
		"procs", "chunks", "gather KiB", "max enc B", "encode", "index", "compile", "cache key")
	for _, p := range counts {
		chunks, needs, err := buildGeometry(mode, width, height, depth, p, technique, producers, consumers)
		if err != nil {
			return err
		}
		_, prof, err := core.ProfileMapping(0, elem, chunks, needs, par)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %8d %12.1f %12d %10s %10s %10s  %016x (%s)\n",
			prof.Procs, prof.TotalChunks,
			float64(prof.AllgatherBytes)/1024, prof.MaxEncodedBytes,
			prof.EncodeTime.Round(10e3), prof.IndexTime.Round(10e3), prof.CompileTime.Round(10e3),
			prof.Fingerprint, prof.FingerprintTime.Round(1e3))
	}
	return nil
}

func run(mode string, width, height, depth, elem, procs int, technique string, producers, consumers int, perRound bool, save, load string) error {
	var (
		allChunks [][]grid.Box
		allNeeds  []grid.Box
		label     string
	)
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		g, err := core.LoadGeometry(f)
		f.Close()
		if err != nil {
			return err
		}
		plan, err := g.Plan(0)
		if err != nil {
			return err
		}
		return report(plan, fmt.Sprintf("geometry file %s", load), g.ElemSize, perRound, save)
	}
	switch mode {
	case "stack":
		label = fmt.Sprintf("stack %dx%dx%d, %d procs, %s chunking", width, height, depth, procs, technique)
	case "regrid":
		procs = producers
		label = fmt.Sprintf("regrid %dx%d, %d producers -> %d consumers", width, height, producers, consumers)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	var err error
	allChunks, allNeeds, err = buildGeometry(mode, width, height, depth, procs, technique, producers, consumers)
	if err != nil {
		return err
	}

	plan, err := core.NewPlanFromGeometry(0, elem, allChunks, allNeeds)
	if err != nil {
		return err
	}
	return report(plan, label, elem, perRound, save)
}

// report prints the analysis and optionally saves the geometry.
func report(plan *core.Plan, label string, elem int, perRound bool, save string) error {
	stats := plan.Stats()
	fmt.Printf("plan for %s (%d-byte elements)\n", label, elem)
	fmt.Printf("  rounds:             %d\n", stats.Rounds)
	fmt.Printf("  total wire:         %.2f MiB\n", float64(stats.TotalWireBytes)/(1<<20))
	fmt.Printf("  kept local:         %.2f MiB (%.1f%% of all data)\n",
		float64(stats.SelfBytes)/(1<<20),
		100*float64(stats.SelfBytes)/float64(stats.SelfBytes+stats.TotalWireBytes))
	fmt.Printf("  per rank per round: %.2f MiB avg, %.2f MiB max\n",
		stats.PerRankRoundAvg/(1<<20), float64(stats.PerRankRoundMax)/(1<<20))
	fmt.Printf("  peers per round:    %d max of %d ranks (sparsity %.1f%%)\n",
		stats.MaxPeersPerRound, stats.Ranks,
		100*float64(stats.MaxPeersPerRound)/float64(stats.Ranks-min(stats.Ranks-1, 1)))

	if perRound {
		fmt.Printf("\n%-7s %14s %14s\n", "round", "max MiB/rank", "avg MiB/rank")
		for r := 0; r < stats.Rounds; r++ {
			var sum, mx int64
			active := 0
			for rank := 0; rank < stats.Ranks; rank++ {
				b := plan.RankRoundSendBytes(rank, r)
				if b > 0 {
					active++
					sum += b
				}
				if b > mx {
					mx = b
				}
			}
			avg := 0.0
			if active > 0 {
				avg = float64(sum) / float64(active)
			}
			fmt.Printf("%-7d %14.2f %14.2f\n", r, float64(mx)/(1<<20), avg/(1<<20))
		}
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := plan.Geometry().Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("geometry saved to %s\n", save)
	}
	return nil
}
