// Command ddrplan is an offline schedule analyzer: it compiles the exact
// DDR communication plan for a described geometry — no data, no ranks —
// and prints the Table-III-style statistics, letting users size workloads
// before running them. Two geometry families cover the paper's use cases:
//
//	ddrplan -mode stack -width 4096 -height 2048 -depth 4096 -elem 4 \
//	        -procs 216 -technique consecutive
//	ddrplan -mode regrid -width 25904 -height 10360 -elem 4 -producers 128 -consumers 32
//
// The per-round table shows each rank's wire bytes per round (max/avg),
// exposing imbalance the aggregate stats can hide.
package main

import (
	"flag"
	"fmt"
	"os"

	"ddr/internal/core"
	"ddr/internal/experiments"
	"ddr/internal/grid"
)

func main() {
	var (
		mode      = flag.String("mode", "stack", "geometry family: stack or regrid")
		width     = flag.Int("width", 4096, "domain width")
		height    = flag.Int("height", 2048, "domain height")
		depth     = flag.Int("depth", 4096, "domain depth / image count (stack mode)")
		elem      = flag.Int("elem", 4, "element size in bytes")
		procs     = flag.Int("procs", 64, "process count (stack mode)")
		technique = flag.String("technique", "consecutive", "stack chunking: consecutive or round-robin")
		producers = flag.Int("producers", 128, "producer ranks (regrid mode)")
		consumers = flag.Int("consumers", 32, "consumer ranks (regrid mode)")
		perRound  = flag.Bool("rounds", false, "print the per-round traffic table")
		save      = flag.String("save", "", "write the geometry as JSON to this path")
		load      = flag.String("load", "", "analyze a geometry JSON instead of -mode")
	)
	flag.Parse()
	if err := run(*mode, *width, *height, *depth, *elem, *procs, *technique, *producers, *consumers, *perRound, *save, *load); err != nil {
		fmt.Fprintln(os.Stderr, "ddrplan:", err)
		os.Exit(1)
	}
}

func run(mode string, width, height, depth, elem, procs int, technique string, producers, consumers int, perRound bool, save, load string) error {
	var (
		allChunks [][]grid.Box
		allNeeds  []grid.Box
		label     string
	)
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		g, err := core.LoadGeometry(f)
		f.Close()
		if err != nil {
			return err
		}
		plan, err := g.Plan(0)
		if err != nil {
			return err
		}
		return report(plan, fmt.Sprintf("geometry file %s", load), g.ElemSize, perRound, save)
	}
	switch mode {
	case "stack":
		tech := experiments.Consecutive
		if technique == "round-robin" {
			tech = experiments.RoundRobin
		} else if technique != "consecutive" {
			return fmt.Errorf("unknown technique %q", technique)
		}
		domain := grid.Box3(0, 0, 0, width, height, depth)
		allChunks, allNeeds = experiments.StackGeometry(domain, procs, tech)
		label = fmt.Sprintf("stack %dx%dx%d, %d procs, %v chunking", width, height, depth, procs, tech)
	case "regrid":
		m, err := experiments.Figure5(producers, consumers, width, height)
		if err != nil {
			return err
		}
		allChunks = m.ChunksPerCons
		allNeeds = m.ConsumerNeeds
		label = fmt.Sprintf("regrid %dx%d, %d producers -> %d consumers", width, height, producers, consumers)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	plan, err := core.NewPlanFromGeometry(0, elem, allChunks, allNeeds)
	if err != nil {
		return err
	}
	return report(plan, label, elem, perRound, save)
}

// report prints the analysis and optionally saves the geometry.
func report(plan *core.Plan, label string, elem int, perRound bool, save string) error {
	stats := plan.Stats()
	fmt.Printf("plan for %s (%d-byte elements)\n", label, elem)
	fmt.Printf("  rounds:             %d\n", stats.Rounds)
	fmt.Printf("  total wire:         %.2f MiB\n", float64(stats.TotalWireBytes)/(1<<20))
	fmt.Printf("  kept local:         %.2f MiB (%.1f%% of all data)\n",
		float64(stats.SelfBytes)/(1<<20),
		100*float64(stats.SelfBytes)/float64(stats.SelfBytes+stats.TotalWireBytes))
	fmt.Printf("  per rank per round: %.2f MiB avg, %.2f MiB max\n",
		stats.PerRankRoundAvg/(1<<20), float64(stats.PerRankRoundMax)/(1<<20))
	fmt.Printf("  peers per round:    %d max of %d ranks (sparsity %.1f%%)\n",
		stats.MaxPeersPerRound, stats.Ranks,
		100*float64(stats.MaxPeersPerRound)/float64(stats.Ranks-min(stats.Ranks-1, 1)))

	if perRound {
		fmt.Printf("\n%-7s %14s %14s\n", "round", "max MiB/rank", "avg MiB/rank")
		for r := 0; r < stats.Rounds; r++ {
			var sum, mx int64
			active := 0
			for rank := 0; rank < stats.Ranks; rank++ {
				b := plan.RankRoundSendBytes(rank, r)
				if b > 0 {
					active++
					sum += b
				}
				if b > mx {
					mx = b
				}
			}
			avg := 0.0
			if active > 0 {
				avg = float64(sum) / float64(active)
			}
			fmt.Printf("%-7d %14.2f %14.2f\n", r, float64(mx)/(1<<20), avg/(1<<20))
		}
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := plan.Geometry().Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("geometry saved to %s\n", save)
	}
	return nil
}
