package fft

import (
	"fmt"
	"unsafe"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Dist2D is a distributed 2D FFT over an n×n complex grid on P ranks.
//
// The grid lives in two decompositions at once:
//
//   - row slabs: rank r owns rows [r·H, (r+1)·H), H = n/P, stored
//     row-major in rowBuf (x fastest) — the layout row FFTs want;
//   - column pencils: rank r owns columns [r·W, (r+1)·W), W = n/P,
//     stored row-major in colBuf (W wide × n tall) — every column of
//     the global grid is complete on exactly one rank.
//
// Forward runs row FFTs in the slab decomposition, redistributes to
// pencils, and runs column FFTs; Inverse is the mirror image. The
// slab↔pencil redistribution is the classic distributed-FFT transpose
// and is exactly a DDR exchange: each direction is one descriptor whose
// own side is the current decomposition and whose need box is the
// other. To give the pipelined exchange engine rounds to overlap, each
// rank registers its slab as nb equal chunks (nb = Blocks()); the plan
// then runs nb rounds per direction, and at pipeline depth k ≥ 2 round
// r+1's pack and round r−1's unpack hide behind round r's wire time.
//
// The forward own chunks are horizontal row bands — strided against the
// column-pencil need, so packs do real gather work — while the inverse
// own chunks are full-width bands of colBuf, contiguous spans that take
// the zero-copy send path. One workload exercises both extremes.
type Dist2D struct {
	n     int // grid edge (power of two)
	nb    int // chunks (= exchange rounds) per transpose direction
	rank  int
	procs int

	rowBuf []complex128 // H×n row slab, row-major
	colBuf []complex128 // n×W column pencil slab, row-major

	rowChunkBytes [][]byte // nb views into rowBuf, one per forward own chunk
	colChunkBytes [][]byte // nb views into colBuf, one per inverse own chunk
	rowBytes      []byte   // whole rowBuf (inverse need buffer)
	colBytes      []byte   // whole colBuf (forward need buffer)

	fwd, inv *core.Descriptor
	plan     *Plan        // length-n transform shared by rows and columns
	colTmp   []complex128 // stride-gather scratch for column transforms

	handWire [][]complex128 // per-peer pack buffers for the hand baseline
}

// Hand-baseline tags: below core.ExchangeTagBase so they cannot collide
// with DDR's exchange tag range, far above anything the mapping
// collectives use. Exported so benchmarks can aim fault injectors at
// both engines' data traffic with one tag floor.
const (
	// HandTagFloor is the first tag the hand-written transpose uses;
	// delaying every tag ≥ HandTagFloor slows DDR and hand traffic alike.
	HandTagFloor = 1 << 19
	handTagFwd   = HandTagFloor
	handTagInv   = HandTagFloor + 1
)

// complexBytes reinterprets a complex128 slice as its backing bytes.
func complexBytes(x []complex128) []byte {
	if len(x) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&x[0])), len(x)*16)
}

// NewDist2D builds the distributed transform state on one rank and runs
// the two collective SetupDataMapping calls. n must be a power of two
// divisible by c.Size()·nb, so every rank holds whole row and column
// bands and every band splits into nb equal chunks. Extra descriptor
// options (core.WithPipelineDepth, core.WithMemoryBudget, ...) are
// appended to both directions' descriptors.
func NewDist2D(c *mpi.Comm, n, nb int, opts ...core.Option) (*Dist2D, error) {
	p := c.Size()
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: grid edge %d is not a power of two", n)
	}
	if nb < 1 {
		return nil, fmt.Errorf("fft: block count %d must be positive", nb)
	}
	if n%(p*nb) != 0 {
		return nil, fmt.Errorf("fft: grid edge %d not divisible by ranks×blocks = %d×%d", n, p, nb)
	}
	plan, err := PlanFor(n)
	if err != nil {
		return nil, err
	}
	d := &Dist2D{
		n:      n,
		nb:     nb,
		rank:   c.Rank(),
		procs:  p,
		rowBuf: make([]complex128, n / p * n),
		colBuf: make([]complex128, n * (n / p)),
		plan:   plan,
		colTmp: make([]complex128, n),
	}
	h := d.rowsPerRank() / nb // rows per forward chunk
	g := n / nb              // rows per inverse chunk
	w := d.colsPerRank()
	rowChunks := make([]grid.Box, nb)
	colChunks := make([]grid.Box, nb)
	d.rowChunkBytes = make([][]byte, nb)
	d.colChunkBytes = make([][]byte, nb)
	for j := 0; j < nb; j++ {
		rowChunks[j] = grid.Box2(0, d.rank*d.rowsPerRank()+j*h, n, h)
		colChunks[j] = grid.Box2(d.rank*w, j*g, w, g)
		d.rowChunkBytes[j] = complexBytes(d.rowBuf[j*h*n : (j+1)*h*n])
		d.colChunkBytes[j] = complexBytes(d.colBuf[j*g*w : (j+1)*g*w])
	}
	d.rowBytes = complexBytes(d.rowBuf)
	d.colBytes = complexBytes(d.colBuf)

	base := []core.Option{
		core.WithElemSize(16),
		core.WithExchangeMode(core.ModePointToPoint),
	}
	dopts := append(base, opts...)
	if d.fwd, err = core.NewDescriptor(p, core.Layout2D, core.Uint8, dopts...); err != nil {
		return nil, err
	}
	if d.inv, err = core.NewDescriptor(p, core.Layout2D, core.Uint8, dopts...); err != nil {
		return nil, err
	}
	if err = d.fwd.SetupDataMapping(c, rowChunks, grid.Box2(d.rank*w, 0, w, n)); err != nil {
		return nil, fmt.Errorf("fft: forward transpose mapping: %w", err)
	}
	if err = d.inv.SetupDataMapping(c, colChunks, grid.Box2(0, d.rank*d.rowsPerRank(), n, d.rowsPerRank())); err != nil {
		return nil, fmt.Errorf("fft: inverse transpose mapping: %w", err)
	}

	d.handWire = make([][]complex128, p)
	for peer := 0; peer < p; peer++ {
		if peer != d.rank {
			d.handWire[peer] = make([]complex128, d.rowsPerRank()*w)
		}
	}
	return d, nil
}

// N returns the grid edge length.
func (d *Dist2D) N() int { return d.n }

// Blocks returns the chunk (= exchange round) count per transpose.
func (d *Dist2D) Blocks() int { return d.nb }

func (d *Dist2D) rowsPerRank() int { return d.n / d.procs }
func (d *Dist2D) colsPerRank() int { return d.n / d.procs }

// Rows exposes this rank's row slab: rowsPerRank rows of n elements,
// row-major. Fill it before Forward; Inverse restores it.
func (d *Dist2D) Rows() []complex128 { return d.rowBuf }

// Pencils exposes this rank's column-pencil slab after Forward: n rows
// of colsPerRank elements, row-major, holding the 2D spectrum columns
// [rank·W, (rank+1)·W). Pointwise spectral operators apply here.
func (d *Dist2D) Pencils() []complex128 { return d.colBuf }

// Descriptors returns the forward and inverse transpose descriptors, so
// callers can read LastTimings, LastOverlapRatio, or staging telemetry.
func (d *Dist2D) Descriptors() (fwd, inv *core.Descriptor) { return d.fwd, d.inv }

// TransposeForward redistributes the row slab into the column-pencil
// slab via the DDR exchange (nb rounds, pipelined per the descriptor's
// depth).
func (d *Dist2D) TransposeForward(c *mpi.Comm) error {
	return d.fwd.ReorganizeData(c, d.rowChunkBytes, d.colBytes)
}

// TransposeInverse redistributes the column-pencil slab back into the
// row slab.
func (d *Dist2D) TransposeInverse(c *mpi.Comm) error {
	return d.inv.ReorganizeData(c, d.colChunkBytes, d.rowBytes)
}

// rowPass transforms every local row in place (inverse=false forward,
// true inverse).
func (d *Dist2D) rowPass(inverse bool) {
	for i := 0; i < d.rowsPerRank(); i++ {
		row := d.rowBuf[i*d.n : (i+1)*d.n]
		if inverse {
			d.plan.Inverse(row)
		} else {
			d.plan.Forward(row)
		}
	}
}

// colPass transforms every local column of the pencil slab in place,
// gathering each stride-W column through colTmp.
func (d *Dist2D) colPass(inverse bool) {
	w := d.colsPerRank()
	for x := 0; x < w; x++ {
		for y := 0; y < d.n; y++ {
			d.colTmp[y] = d.colBuf[y*w+x]
		}
		if inverse {
			d.plan.Inverse(d.colTmp)
		} else {
			d.plan.Forward(d.colTmp)
		}
		for y := 0; y < d.n; y++ {
			d.colBuf[y*w+x] = d.colTmp[y]
		}
	}
}

// Forward computes the 2D forward transform: row FFTs on the slab,
// slab→pencil transpose, column FFTs on the pencils. On return Pencils
// holds this rank's columns of the spectrum.
func (d *Dist2D) Forward(c *mpi.Comm) error {
	d.rowPass(false)
	if err := d.TransposeForward(c); err != nil {
		return err
	}
	d.colPass(false)
	return nil
}

// Inverse undoes Forward: column inverse FFTs, pencil→slab transpose,
// row inverse FFTs. After Forward+Inverse the row slab is restored up
// to rounding.
func (d *Dist2D) Inverse(c *mpi.Comm) error {
	d.colPass(true)
	if err := d.TransposeInverse(c); err != nil {
		return err
	}
	d.rowPass(true)
	return nil
}

// Step is one spectral timestep: forward transform, then inverse. Real
// solvers would apply a pointwise operator between the two; for the
// benchmark the identity keeps the round trip checkable.
func (d *Dist2D) Step(c *mpi.Comm) error {
	if err := d.Forward(c); err != nil {
		return err
	}
	return d.Inverse(c)
}

// HandTransposeForward is the hand-written slab→pencil transpose every
// distributed FFT ships before it grows a redistribution library: one
// eagerly-sent message per peer, manual strided pack on the send side,
// contiguous unpack on the receive side. It is the baseline the DDR
// path must stay within ~1.2× of.
func (d *Dist2D) HandTransposeForward(c *mpi.Comm) error {
	hh, w := d.rowsPerRank(), d.colsPerRank()
	for peer := 0; peer < d.procs; peer++ {
		if peer == d.rank {
			continue
		}
		wire := d.handWire[peer]
		for i := 0; i < hh; i++ {
			copy(wire[i*w:(i+1)*w], d.rowBuf[i*d.n+peer*w:i*d.n+(peer+1)*w])
		}
		if err := c.Send(peer, handTagFwd, complexBytes(wire)); err != nil {
			return err
		}
	}
	for i := 0; i < hh; i++ {
		copy(d.colBuf[(d.rank*hh+i)*w:(d.rank*hh+i+1)*w], d.rowBuf[i*d.n+d.rank*w:i*d.n+(d.rank+1)*w])
	}
	for peers := d.procs - 1; peers > 0; peers-- {
		data, from, _, err := c.Recv(mpi.AnySource, handTagFwd)
		if err != nil {
			return err
		}
		// Peer from's rows are globally contiguous in the pencil slab.
		copy(d.colBytes[from*hh*w*16:(from+1)*hh*w*16], data)
	}
	return nil
}

// HandTransposeInverse is the mirror baseline: full-width bands of the
// pencil slab are contiguous, so sends are zero-copy slices and the
// receive side pays the strided scatter.
func (d *Dist2D) HandTransposeInverse(c *mpi.Comm) error {
	hh, w := d.rowsPerRank(), d.colsPerRank()
	for peer := 0; peer < d.procs; peer++ {
		if peer == d.rank {
			continue
		}
		if err := c.Send(peer, handTagInv, complexBytes(d.colBuf[peer*hh*w:(peer+1)*hh*w])); err != nil {
			return err
		}
	}
	for i := 0; i < hh; i++ {
		copy(d.rowBuf[i*d.n+d.rank*w:i*d.n+(d.rank+1)*w], d.colBuf[(d.rank*hh+i)*w:(d.rank*hh+i+1)*w])
	}
	for peers := d.procs - 1; peers > 0; peers-- {
		data, from, _, err := c.Recv(mpi.AnySource, handTagInv)
		if err != nil {
			return err
		}
		// Byte-wise scatter: the transport owns data's alignment, so no
		// complex128 reinterpretation of the wire buffer.
		for i := 0; i < hh; i++ {
			copy(d.rowBytes[(i*d.n+from*w)*16:(i*d.n+(from+1)*w)*16], data[i*w*16:(i+1)*w*16])
		}
	}
	return nil
}

// HandStep is Step with both transposes replaced by the hand-written
// baseline; FFT compute is identical, so any timing difference is the
// redistribution engines'.
func (d *Dist2D) HandStep(c *mpi.Comm) error {
	d.rowPass(false)
	if err := d.HandTransposeForward(c); err != nil {
		return err
	}
	d.colPass(false)
	d.colPass(true)
	if err := d.HandTransposeInverse(c); err != nil {
		return err
	}
	d.rowPass(true)
	return nil
}
