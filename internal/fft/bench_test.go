package fft

import (
	"testing"
	"time"

	"ddr/internal/core"
	"ddr/internal/mpi"
)

// The benchmark world: a 16-rank 2D FFT whose transposes move data over
// links slowed by an injected per-message transfer delay. The delay
// engine serializes deliveries per link (FIFO), so it models a
// bandwidth-limited wire: a rank's nb round messages to one peer cost
// nb·delay of wire time, and the only way to go faster is to overlap
// CPU (pack, unpack, other ranks' compute) with the sleeps — exactly
// what the pipelined exchange engine does. "serial" is the DDR path at
// depth 1, "pipelined" at the default depth 2, "hand" the hand-written
// one-message-per-peer transpose with identical FFT compute.
const (
	benchProcs = 16
	benchN     = 256
	benchNB    = 4
	// benchDelay is tuned against the per-round aggregate CPU of this
	// configuration on one core: large enough that the wire dominates a
	// serial round, small enough that pipelined rounds can hide it.
	benchDelay = 200 * time.Microsecond
	// benchDepth is the depth of the headline "pipelined" series: the
	// full round count, so every round's pack and unpack can slide under
	// some round's wire time. "depth2" shows the default double buffer.
	benchDepth = 4
)

// wireDelay slows every data-path message — DDR exchange tags and the
// hand baseline's tags alike — leaving mapping collectives untouched.
type wireDelay struct{ d time.Duration }

func (w wireDelay) FaultFor(src, dst, tag int, seq uint64, attempt int) mpi.Fault {
	if tag >= HandTagFloor {
		return mpi.Fault{Delay: w.d}
	}
	return mpi.Fault{}
}

// benchWorld runs body on the benchmark world with the wire delay armed.
func benchWorld(b *testing.B, body func(c *mpi.Comm) error) {
	b.Helper()
	if err := mpi.Launch(benchProcs, body, mpi.WithFaultInjector(wireDelay{benchDelay})); err != nil {
		b.Fatal(err)
	}
}

// benchDist builds the transform state and fills the rows.
func benchDist(c *mpi.Comm, depth int) (*Dist2D, error) {
	d, err := NewDist2D(c, benchN, benchNB, core.WithPipelineDepth(depth))
	if err != nil {
		return nil, err
	}
	fill(d.Rows(), uint64(c.Rank())+1)
	return d, nil
}

// stepBench times one full spectral timestep (forward + inverse 2D
// transform, four FFT passes and two transposes) per op.
func stepBench(b *testing.B, depth int, hand bool) {
	var overlap float64
	var gotDepth int
	b.SetBytes(int64(benchN) * benchN / benchProcs * 16)
	benchWorld(b, func(c *mpi.Comm) error {
		d, err := benchDist(c, depth)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if hand {
				err = d.HandStep(c)
			} else {
				err = d.Step(c)
			}
			if err != nil {
				return err
			}
		}
		if c.Rank() == 0 && !hand {
			fwd, _ := d.Descriptors()
			overlap = fwd.LastOverlapRatio()
			gotDepth = fwd.LastPipelineDepth()
		}
		return nil
	})
	if !hand {
		b.ReportMetric(overlap, "overlap-ratio")
		b.ReportMetric(float64(gotDepth), "depth")
	}
}

// transposeBench times the redistribution phase alone (slab→pencil and
// back, no FFT compute) — the wire-bound portion of the timestep where
// the schedule is the whole story.
func transposeBench(b *testing.B, depth int, hand bool) {
	var overlap float64
	b.SetBytes(int64(benchN) * benchN / benchProcs * 16)
	benchWorld(b, func(c *mpi.Comm) error {
		d, err := benchDist(c, depth)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if hand {
				if err := d.HandTransposeForward(c); err != nil {
					return err
				}
				if err := d.HandTransposeInverse(c); err != nil {
					return err
				}
			} else {
				if err := d.TransposeForward(c); err != nil {
					return err
				}
				if err := d.TransposeInverse(c); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 0 && !hand {
			fwd, _ := d.Descriptors()
			overlap = fwd.LastOverlapRatio()
		}
		return nil
	})
	if !hand {
		b.ReportMetric(overlap, "overlap-ratio")
	}
}

func BenchmarkFFT2DStep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { stepBench(b, 1, false) })
	b.Run("depth2", func(b *testing.B) { stepBench(b, 2, false) })
	b.Run("pipelined", func(b *testing.B) { stepBench(b, benchDepth, false) })
	b.Run("hand", func(b *testing.B) { stepBench(b, 1, true) })
}

func BenchmarkFFT2DTranspose(b *testing.B) {
	b.Run("serial", func(b *testing.B) { transposeBench(b, 1, false) })
	b.Run("depth2", func(b *testing.B) { transposeBench(b, 2, false) })
	b.Run("pipelined", func(b *testing.B) { transposeBench(b, benchDepth, false) })
	b.Run("hand", func(b *testing.B) { transposeBench(b, 1, true) })
}
