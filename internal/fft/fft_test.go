package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"ddr/internal/core"
	"ddr/internal/mpi"
)

// naiveDFT is the O(n²) definition the kernel is checked against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = sum
	}
	return out
}

// fill produces a deterministic, structure-free test signal.
func fill(x []complex128, seed uint64) {
	s := seed*0x9e3779b97f4a7c15 + 1
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		re := float64(int64(s%2000)-1000) / 500
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		im := float64(int64(s%2000)-1000) / 500
		x[i] = complex(re, im)
	}
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestKernelMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := make([]complex128, n)
		fill(x, uint64(n))
		want := naiveDFT(x)
		p.Forward(x)
		if d := maxDiff(x, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: forward deviates from naive DFT by %g", n, d)
		}
	}
}

func TestKernelRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32, 256, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		x := make([]complex128, n)
		fill(x, uint64(n)+7)
		orig := append([]complex128(nil), x...)
		p.Forward(x)
		p.Inverse(x)
		if d := maxDiff(x, orig); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip deviates by %g", n, d)
		}
	}
}

func TestNewPlanRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted a non-power-of-two length", n)
		}
	}
}

func TestPlanForCaches(t *testing.T) {
	a, err := PlanFor(128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(128)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PlanFor(128) built two plans for one length")
	}
}

// ref2D computes the full n×n forward 2D transform locally: row FFTs
// then column FFTs, same kernel, no distribution.
func ref2D(src []complex128, n int) []complex128 {
	out := append([]complex128(nil), src...)
	p, _ := PlanFor(n)
	for y := 0; y < n; y++ {
		p.Forward(out[y*n : (y+1)*n])
	}
	col := make([]complex128, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			col[y] = out[y*n+x]
		}
		p.Forward(col)
		for y := 0; y < n; y++ {
			out[y*n+x] = col[y]
		}
	}
	return out
}

// globalInput builds the deterministic n×n input every rank agrees on.
func globalInput(n int) []complex128 {
	g := make([]complex128, n*n)
	fill(g, 42)
	return g
}

// runWorld runs body on nProcs inproc ranks and fails the test on any
// rank error.
func runWorld(t *testing.T, nProcs int, body func(c *mpi.Comm) error) {
	t.Helper()
	if err := mpi.Launch(nProcs, body); err != nil {
		t.Fatal(err)
	}
}

func TestDist2DForwardMatchesLocal(t *testing.T) {
	const n, nProcs, nb = 32, 4, 2
	global := globalInput(n)
	want := ref2D(global, n)
	runWorld(t, nProcs, func(c *mpi.Comm) error {
		d, err := NewDist2D(c, n, nb)
		if err != nil {
			return err
		}
		h := n / nProcs
		copy(d.Rows(), global[c.Rank()*h*n:(c.Rank()+1)*h*n])
		if err := d.Forward(c); err != nil {
			return err
		}
		// Pencils holds columns [rank·W, (rank+1)·W) of the spectrum.
		w := n / nProcs
		for y := 0; y < n; y++ {
			for x := 0; x < w; x++ {
				got := d.Pencils()[y*w+x]
				exp := want[y*n+c.Rank()*w+x]
				if cmplx.Abs(got-exp) > 1e-8 {
					return fmt.Errorf("rank %d spectrum[%d,%d] = %v, want %v", c.Rank(), y, c.Rank()*w+x, got, exp)
				}
			}
		}
		return nil
	})
}

func TestDist2DStepRoundTrip(t *testing.T) {
	const n, nProcs, nb = 32, 4, 4
	global := globalInput(n)
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			runWorld(t, nProcs, func(c *mpi.Comm) error {
				d, err := NewDist2D(c, n, nb, core.WithPipelineDepth(depth))
				if err != nil {
					return err
				}
				h := n / nProcs
				copy(d.Rows(), global[c.Rank()*h*n:(c.Rank()+1)*h*n])
				if err := d.Step(c); err != nil {
					return err
				}
				for i, got := range d.Rows() {
					if cmplx.Abs(got-global[c.Rank()*h*n+i]) > 1e-9 {
						return fmt.Errorf("rank %d cell %d not restored: %v vs %v", c.Rank(), i, got, global[c.Rank()*h*n+i])
					}
				}
				fwd, _ := d.Descriptors()
				if ts := fwd.LastTimings(); len(ts) != nb {
					return fmt.Errorf("rank %d: forward transpose recorded %d round timings, want %d", c.Rank(), len(ts), nb)
				}
				if fwd.LastPipelineDepth() != depth {
					return fmt.Errorf("rank %d: effective depth %d, want %d", c.Rank(), fwd.LastPipelineDepth(), depth)
				}
				return nil
			})
		})
	}
}

// TestDDRTransposeMatchesHand proves the DDR transpose and the
// hand-written baseline are byte-identical in both directions, serial
// and pipelined — the differential that lets the benchmark claim any
// timing gap is schedule, not semantics.
func TestDDRTransposeMatchesHand(t *testing.T) {
	const n, nProcs, nb = 32, 4, 4
	global := globalInput(n)
	for _, depth := range []int{1, 2} {
		depth := depth
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			runWorld(t, nProcs, func(c *mpi.Comm) error {
				d, err := NewDist2D(c, n, nb, core.WithPipelineDepth(depth))
				if err != nil {
					return err
				}
				h := n / nProcs
				copy(d.Rows(), global[c.Rank()*h*n:(c.Rank()+1)*h*n])
				if err := d.TransposeForward(c); err != nil {
					return err
				}
				ddrCols := append([]complex128(nil), d.Pencils()...)
				for i := range d.Pencils() {
					d.Pencils()[i] = 0
				}
				if err := d.HandTransposeForward(c); err != nil {
					return err
				}
				for i := range ddrCols {
					if ddrCols[i] != d.Pencils()[i] {
						return fmt.Errorf("rank %d: forward transpose cell %d: ddr %v vs hand %v", c.Rank(), i, ddrCols[i], d.Pencils()[i])
					}
				}
				// Now invert both ways from the same pencil state.
				if err := d.TransposeInverse(c); err != nil {
					return err
				}
				ddrRows := append([]complex128(nil), d.Rows()...)
				for i := range d.Rows() {
					d.Rows()[i] = 0
				}
				if err := d.HandTransposeInverse(c); err != nil {
					return err
				}
				for i := range ddrRows {
					if ddrRows[i] != d.Rows()[i] {
						return fmt.Errorf("rank %d: inverse transpose cell %d: ddr %v vs hand %v", c.Rank(), i, ddrRows[i], d.Rows()[i])
					}
				}
				return nil
			})
		})
	}
}

func TestNewDist2DValidation(t *testing.T) {
	runWorld(t, 2, func(c *mpi.Comm) error {
		if _, err := NewDist2D(c, 24, 2); err == nil {
			return fmt.Errorf("accepted non-power-of-two edge")
		}
		if _, err := NewDist2D(c, 16, 0); err == nil {
			return fmt.Errorf("accepted zero blocks")
		}
		if _, err := NewDist2D(c, 16, 16); err == nil {
			return fmt.Errorf("accepted edge not divisible by ranks×blocks")
		}
		return nil
	})
}

// TestDist2DConcurrentPlans exercises the plan cache under concurrent
// first use from several transform sizes at once.
func TestDist2DConcurrentPlans(t *testing.T) {
	var wg sync.WaitGroup
	for _, n := range []int{2048, 4096, 8192} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				if _, err := PlanFor(n); err != nil {
					t.Error(err)
				}
			}(n)
		}
	}
	wg.Wait()
}
