// Package fft implements use case C: a distributed multidimensional FFT
// whose slab↔pencil transposes are DDR redistributions. The serial
// kernel is a power-of-two radix-2 Cooley–Tukey transform over
// complex128; Dist2D (dist2d.go) composes it with two point-to-point
// DDR descriptors into a 2D transform over row slabs and column
// pencils. The package exists both as a real workload — the transpose
// is the canonical all-to-all that data redistribution papers benchmark
// — and as the perf harness for the pipelined exchange engine: each
// transpose runs as nb rounds whose pack and unpack hide behind the
// wire at pipeline depth k.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state of a size-n transform: the
// bit-reversal permutation and the twiddle table. Plans are immutable
// after construction and safe for concurrent use.
type Plan struct {
	n   int
	rev []int32       // bit-reversal permutation
	tw  []complex128  // tw[k] = exp(-2πik/n), k < n/2
}

// NewPlan builds a transform plan for length n, which must be a power
// of two.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n, rev: make([]int32, n), tw: make([]complex128, n/2)}
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		shift = 64
	}
	for i := range p.rev {
		p.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := range p.tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	return p, nil
}

// Len returns the transform length the plan was built for.
func (p *Plan) Len() int { return p.n }

// planCache memoizes plans by length: a distributed transform builds
// the same row/column plan on every rank and every size-churn step, and
// the table is tiny next to the data.
var planCache sync.Map // int -> *Plan

// PlanFor returns the cached plan for length n, building it on first
// use.
func PlanFor(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*Plan), nil
}

// Forward transforms x in place (DFT with the e^{-2πi} sign
// convention). len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) {
	p.transform(x)
}

// Inverse applies the inverse transform in place, including the 1/n
// scale, so Inverse(Forward(x)) == x up to rounding.
func (p *Plan) Inverse(x []complex128) {
	// Conjugate–transform–conjugate: reuses the forward twiddles.
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	p.transform(x)
	inv := 1 / float64(p.n)
	for i, v := range x {
		x[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

// transform is the iterative radix-2 butterfly ladder over the
// bit-reversed input.
func (p *Plan) transform(x []complex128) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: buffer length %d does not match plan length %d", len(x), n))
	}
	for i, r := range p.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	for span := 1; span < n; span <<= 1 {
		step := n / (2 * span) // twiddle stride for this stage
		for base := 0; base < n; base += 2 * span {
			k := 0
			for off := base; off < base+span; off++ {
				w := p.tw[k]
				k += step
				a, b := x[off], x[off+span]
				t := complex(real(w)*real(b)-imag(w)*imag(b), real(w)*imag(b)+imag(w)*real(b))
				x[off], x[off+span] = a+t, a-t
			}
		}
	}
}
