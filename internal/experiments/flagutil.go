package experiments

import (
	"flag"
	"strconv"
	"time"
)

// Lookup-or-define flag helpers. The experiment binaries compose several
// registrars (transport, TCP tuning, chaos) on one FlagSet, and embedding
// tools may install the same registrar more than once; flag.FlagSet
// panics on a redefined name. Each helper defines the flag only when the
// FlagSet does not already carry it and returns a getter that reads the
// live definition after Parse, so repeated registration resolves to the
// single shared flag instead of panicking. The getters parse
// Value.String() rather than type-asserting the concrete flag value, so
// they also tolerate a binary that pre-defined the name with its own
// flag type; unparsable text falls back to the registrar's default.

func flagGetInt(fs *flag.FlagSet, name string, def int, usage string) func() int {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.Int(name, def, usage)
		return func() int { return *p }
	}
	return func() int {
		v, err := strconv.Atoi(f.Value.String())
		if err != nil {
			return def
		}
		return v
	}
}

func flagGetUint64(fs *flag.FlagSet, name string, def uint64, usage string) func() uint64 {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.Uint64(name, def, usage)
		return func() uint64 { return *p }
	}
	return func() uint64 {
		v, err := strconv.ParseUint(f.Value.String(), 10, 64)
		if err != nil {
			return def
		}
		return v
	}
}

func flagGetFloat64(fs *flag.FlagSet, name string, def float64, usage string) func() float64 {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.Float64(name, def, usage)
		return func() float64 { return *p }
	}
	return func() float64 {
		v, err := strconv.ParseFloat(f.Value.String(), 64)
		if err != nil {
			return def
		}
		return v
	}
}

func flagGetBool(fs *flag.FlagSet, name string, def bool, usage string) func() bool {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.Bool(name, def, usage)
		return func() bool { return *p }
	}
	return func() bool {
		v, err := strconv.ParseBool(f.Value.String())
		if err != nil {
			return def
		}
		return v
	}
}

func flagGetString(fs *flag.FlagSet, name, def, usage string) func() string {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.String(name, def, usage)
		return func() string { return *p }
	}
	return func() string { return f.Value.String() }
}

func flagGetDuration(fs *flag.FlagSet, name string, def time.Duration, usage string) func() time.Duration {
	f := fs.Lookup(name)
	if f == nil {
		p := fs.Duration(name, def, usage)
		return func() time.Duration { return *p }
	}
	return func() time.Duration {
		v, err := time.ParseDuration(f.Value.String())
		if err != nil {
			return def
		}
		return v
	}
}
