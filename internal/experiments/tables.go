package experiments

import (
	"bytes"
	"fmt"

	"ddr/internal/colormap"
	"ddr/internal/core"
	"ddr/internal/fieldcompress"
	"ddr/internal/grid"
	"ddr/internal/lbm"
	"ddr/internal/perfmodel"
)

// MiB is the unit the paper's Table III reports ("MB" = 2^20 bytes there;
// the consecutive-technique values only reproduce exactly in MiB).
const MiB = 1 << 20

// PaperScales are the process counts of the paper's TIFF study
// (3^3, 4^3, 5^3, 6^3).
var PaperScales = []int{27, 64, 125, 216}

// PaperDomain returns the artificial benchmark stack of §IV-A: 4096
// images of 4096×2048 32-bit grayscale pixels (128 GiB total).
func PaperDomain() grid.Box { return grid.Box3(0, 0, 0, 4096, 2048, 4096) }

// PaperTIFFWorkload returns the same stack as a perfmodel workload.
func PaperTIFFWorkload() perfmodel.TIFFWorkload {
	d := PaperDomain()
	return perfmodel.TIFFWorkload{
		NumImages:  d.Dims[2],
		ImageBytes: int64(d.Dims[0]) * int64(d.Dims[1]) * 4,
	}
}

// ScheduleFor computes the exact DDR communication schedule (rounds and
// per-rank-per-round wire bytes) for loading the given stack domain on p
// ranks with the given technique. This is pure geometry — the quantities
// of Table III — and involves no model.
func ScheduleFor(domain grid.Box, p int, tech Technique, elemSize int) (core.ScheduleStats, error) {
	allChunks, allNeeds := StackGeometry(domain, p, tech)
	plan, err := core.NewPlanFromGeometry(0, elemSize, allChunks, allNeeds)
	if err != nil {
		return core.ScheduleStats{}, err
	}
	return plan.Stats(), nil
}

// Table2Row holds one scale of Table II: modelled load seconds per
// technique alongside the paper's measurements.
type Table2Row struct {
	Procs                          int
	NoDDR, RoundRobin, Consec      float64 // modelled seconds
	PaperNoDDR, PaperRR, PaperCons float64 // measured on Cooley (paper)
}

// paperTable2 is Table II of the paper (mean seconds).
var paperTable2 = map[int][3]float64{
	27:  {283.0, 39.3, 49.2},
	64:  {204.6, 18.9, 18.9},
	125: {188.2, 11.1, 10.4},
	216: {165.3, 9.7, 6.6},
}

// Table2 reproduces Table II: for each paper scale it computes the exact
// communication schedule and projects load times through the machine
// model.
func Table2(m perfmodel.Machine) ([]Table2Row, error) {
	w := PaperTIFFWorkload()
	domain := PaperDomain()
	rows := make([]Table2Row, 0, len(PaperScales))
	for _, p := range PaperScales {
		rr, err := ScheduleFor(domain, p, RoundRobin, 4)
		if err != nil {
			return nil, err
		}
		cons, err := ScheduleFor(domain, p, Consecutive, 4)
		if err != nil {
			return nil, err
		}
		paper := paperTable2[p]
		rows = append(rows, Table2Row{
			Procs:      p,
			NoDDR:      m.LoadNoDDR(w, p, BrickDepthSplits(p)),
			RoundRobin: m.LoadDDR(w, p, rr.Rounds, rr.PerRankRoundAvg),
			Consec:     m.LoadDDR(w, p, cons.Rounds, cons.PerRankRoundAvg),
			PaperNoDDR: paper[0],
			PaperRR:    paper[1],
			PaperCons:  paper[2],
		})
	}
	return rows, nil
}

// Table3Row holds one scale of Table III: alltoallw rounds and MiB per
// rank per round for each technique, with the paper's values.
type Table3Row struct {
	Procs                int
	ConsRounds, RRRounds int
	ConsMiB, RRMiB       float64
	PaperConsRounds      int
	PaperConsMiB         float64
	PaperRRRounds        int
	PaperRRMiB           float64
}

// paperTable3 is Table III of the paper.
var paperTable3 = map[int][4]float64{
	27:  {1, 4315.12, 152, 30.81},
	64:  {1, 1920.00, 64, 31.50},
	125: {1, 1006.63, 33, 31.74},
	216: {1, 589.95, 19, 31.85},
}

// Table3 reproduces Table III exactly from the compiled plans.
func Table3() ([]Table3Row, error) {
	domain := PaperDomain()
	rows := make([]Table3Row, 0, len(PaperScales))
	for _, p := range PaperScales {
		rr, err := ScheduleFor(domain, p, RoundRobin, 4)
		if err != nil {
			return nil, err
		}
		cons, err := ScheduleFor(domain, p, Consecutive, 4)
		if err != nil {
			return nil, err
		}
		paper := paperTable3[p]
		rows = append(rows, Table3Row{
			Procs:           p,
			ConsRounds:      cons.Rounds,
			ConsMiB:         cons.PerRankRoundAvg / MiB,
			RRRounds:        rr.Rounds,
			RRMiB:           rr.PerRankRoundAvg / MiB,
			PaperConsRounds: int(paper[0]),
			PaperConsMiB:    paper[1],
			PaperRRRounds:   int(paper[2]),
			PaperRRMiB:      paper[3],
		})
	}
	return rows, nil
}

// Figure3Series returns the strong-scaling series of Figure 3 (seconds vs
// process count for the three techniques), which plots the Table II data.
type Figure3Series struct {
	Procs                     []int
	NoDDR, RoundRobin, Consec []float64
}

// Figure3 computes the Figure 3 series from the Table II model.
func Figure3(m perfmodel.Machine) (*Figure3Series, error) {
	rows, err := Table2(m)
	if err != nil {
		return nil, err
	}
	s := &Figure3Series{}
	for _, r := range rows {
		s.Procs = append(s.Procs, r.Procs)
		s.NoDDR = append(s.NoDDR, r.NoDDR)
		s.RoundRobin = append(s.RoundRobin, r.RoundRobin)
		s.Consec = append(s.Consec, r.Consec)
	}
	return s, nil
}

// PaperTable4Grids are the LBM grid sizes of Table IV.
var PaperTable4Grids = [][2]int{
	{3238, 1295},
	{6476, 2590},
	{12952, 5180},
	{25904, 10360},
}

// paperTable4 maps grid width to (raw GB, processed MB, reduction %).
var paperTable4 = map[int][3]float64{
	3238:  {3.2, 19.9, 99.38},
	6476:  {12.8, 61.0, 99.52},
	12952: {51.2, 217.8, 99.57},
	25904: {204.7, 830.9, 99.59},
}

// Table4Row holds one grid size of Table IV: raw float32 output versus
// rendered-JPEG output over the simulation's 200 saved steps.
type Table4Row struct {
	W, H           int
	Steps          int
	RawBytes       int64
	ProcessedBytes int64
	ReductionPct   float64

	PaperRawGB        float64
	PaperProcessedMB  float64
	PaperReductionPct float64
}

// measureFrames runs a real serial LBM at the given grid and feeds the
// vorticity field of every output frame to reduce, which returns the
// reduced byte size. It returns the average reduced bytes per pixel.
func measureFrames(w, h, warmup, frames, every int, reduce func(vort []float32) (int, error)) (float64, error) {
	if frames <= 0 {
		return 0, fmt.Errorf("experiments: no frames measured")
	}
	p := lbm.Params{
		Width:         w,
		Height:        h,
		Viscosity:     0.02,
		InletVelocity: 0.1,
		Barrier:       lbm.CylinderBarrier(w/4, h/2, h/9),
	}
	s, err := lbm.NewSlab(p, 0, h)
	if err != nil {
		return 0, err
	}
	for i := 0; i < warmup; i++ {
		s.Step()
	}
	var totalBytes int64
	for f := 0; f < frames; f++ {
		for i := 0; i < every; i++ {
			s.Step()
		}
		n, err := reduce(s.VorticityInterior(nil, nil, nil, nil))
		if err != nil {
			return 0, err
		}
		totalBytes += int64(n)
	}
	return float64(totalBytes) / (float64(frames) * float64(w) * float64(h)), nil
}

// MeasureJPEGBytesPerPixel runs a real serial LBM at the given grid,
// renders the vorticity field through the blue-white-red map every
// `every` iterations, JPEG-encodes each frame in memory, and returns the
// measured average JPEG bytes per pixel. This is the empirical compression
// density used to project Table IV to the paper's grids.
func MeasureJPEGBytesPerPixel(w, h, warmup, frames, every, quality int) (float64, error) {
	return measureFrames(w, h, warmup, frames, every, func(vort []float32) (int, error) {
		lo, hi := colormap.SymmetricRange(vort)
		img, err := colormap.FieldToImage(vort, w, h, lo, hi, colormap.BlueWhiteRed)
		if err != nil {
			return 0, err
		}
		var buf bytes.Buffer
		if err := colormap.EncodeJPEG(&buf, img, quality); err != nil {
			return 0, err
		}
		return buf.Len(), nil
	})
}

// MeasureQuantizedBytesPerPixel is the numerical-reduction twin of
// MeasureJPEGBytesPerPixel: instead of rendering, each vorticity frame is
// compressed with the error-bounded quantizer at the given absolute error
// bound, preserving analyzable values rather than pixels.
func MeasureQuantizedBytesPerPixel(w, h, warmup, frames, every int, maxError float64) (float64, error) {
	return measureFrames(w, h, warmup, frames, every, func(vort []float32) (int, error) {
		buf, err := fieldcompress.Compress(vort, maxError)
		if err != nil {
			return 0, err
		}
		// Sanity: the stream must stay decodable.
		if _, err := fieldcompress.Decompress(buf); err != nil {
			return 0, err
		}
		return len(buf), nil
	})
}

// Table4 projects Table IV: raw sizes are exact (w*h*4 bytes per saved
// step), processed sizes extrapolate the measured JPEG bytes-per-pixel to
// the paper's grids. steps is the number of saved time steps (200 in the
// paper).
func Table4(bytesPerPixel float64, steps int) []Table4Row {
	rows := make([]Table4Row, 0, len(PaperTable4Grids))
	for _, g := range PaperTable4Grids {
		w, h := g[0], g[1]
		pixels := int64(w) * int64(h)
		raw := pixels * 4 * int64(steps)
		processed := int64(bytesPerPixel * float64(pixels) * float64(steps))
		paper := paperTable4[w]
		rows = append(rows, Table4Row{
			W: w, H: h, Steps: steps,
			RawBytes:          raw,
			ProcessedBytes:    processed,
			ReductionPct:      100 * (1 - float64(processed)/float64(raw)),
			PaperRawGB:        paper[0],
			PaperProcessedMB:  paper[1],
			PaperReductionPct: paper[2],
		})
	}
	return rows
}
