package experiments

import (
	"flag"

	"ddr/internal/mpi"
)

// RegisterTCPFlags installs the socket-transport tuning flags shared by
// the command-line binaries (-tcp-chunk-threshold, -tcp-chunk-size,
// -tcp-sndbuf, -tcp-rcvbuf, -tcp-nagle, -tcp-queue) on fs and returns a
// function that, called after fs.Parse, publishes the selected values as
// the process-wide defaults used by every TCP endpoint the binary opens.
func RegisterTCPFlags(fs *flag.FlagSet) (apply func()) {
	var o mpi.TCPOptions
	fs.IntVar(&o.ChunkThreshold, "tcp-chunk-threshold", 0,
		"payload bytes above which TCP messages stream as chunked sub-frames (0 = 1 MiB default, negative disables chunking)")
	fs.IntVar(&o.ChunkSize, "tcp-chunk-size", 0,
		"payload bytes per TCP chunk sub-frame (0 = 8 MiB default)")
	fs.IntVar(&o.SendBufSize, "tcp-sndbuf", 0,
		"SO_SNDBUF in bytes for TCP transport connections (0 = OS default)")
	fs.IntVar(&o.RecvBufSize, "tcp-rcvbuf", 0,
		"SO_RCVBUF in bytes for TCP transport connections (0 = OS default)")
	fs.BoolVar(&o.Nagle, "tcp-nagle", false,
		"re-enable Nagle's algorithm on TCP transport connections (default sets TCP_NODELAY)")
	fs.IntVar(&o.SendQueueLen, "tcp-queue", 0,
		"per-peer TCP send queue capacity in frames; a full queue blocks the sender (0 = 256 default)")
	return func() { mpi.SetDefaultTCPOptions(o) }
}
