package experiments

import (
	"flag"

	"ddr/internal/mpi"
)

// RegisterTCPFlags installs the socket-transport tuning flags shared by
// the command-line binaries (-tcp-chunk-threshold, -tcp-chunk-size,
// -tcp-sndbuf, -tcp-rcvbuf, -tcp-nagle, -tcp-queue) on fs and returns a
// function that, called after fs.Parse, publishes the selected values as
// the process-wide defaults used by every TCP endpoint the binary opens.
// Registration is idempotent: a name fs already carries (from an earlier
// registrar call or the binary itself) is reused, never redefined.
func RegisterTCPFlags(fs *flag.FlagSet) (apply func()) {
	chunkThreshold := flagGetInt(fs, "tcp-chunk-threshold", 0,
		"payload bytes above which TCP messages stream as chunked sub-frames (0 = 1 MiB default, negative disables chunking)")
	chunkSize := flagGetInt(fs, "tcp-chunk-size", 0,
		"payload bytes per TCP chunk sub-frame (0 = 8 MiB default)")
	sndbuf := flagGetInt(fs, "tcp-sndbuf", 0,
		"SO_SNDBUF in bytes for TCP transport connections (0 = OS default)")
	rcvbuf := flagGetInt(fs, "tcp-rcvbuf", 0,
		"SO_RCVBUF in bytes for TCP transport connections (0 = OS default)")
	nagle := flagGetBool(fs, "tcp-nagle", false,
		"re-enable Nagle's algorithm on TCP transport connections (default sets TCP_NODELAY)")
	queue := flagGetInt(fs, "tcp-queue", 0,
		"per-peer TCP send queue capacity in frames; a full queue blocks the sender (0 = 256 default)")
	return func() {
		mpi.SetDefaultTCPOptions(mpi.TCPOptions{
			ChunkThreshold: chunkThreshold(),
			ChunkSize:      chunkSize(),
			SendBufSize:    sndbuf(),
			RecvBufSize:    rcvbuf(),
			Nagle:          nagle(),
			SendQueueLen:   queue(),
		})
	}
}
