package experiments

import (
	"fmt"
	"os"
	"time"

	"ddr/internal/core"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// Telemetry bundles the observation sinks an experiment run can feed: a
// trace recorder for Perfetto timelines and a metrics registry for
// Prometheus export. Either field may be nil; a nil *Telemetry disables
// observation entirely and costs nothing on the hot paths.
type Telemetry struct {
	Trace   *trace.Recorder
	Metrics *obs.Registry

	// Flight, when non-nil, records transport and exchange events into a
	// postmortem ring dumped on peer loss, SIGQUIT, and /debug/flightrec.
	Flight *obs.FlightRecorder

	// MergeOut, when non-empty, makes MergeAndWrite assemble the world's
	// clock-corrected timeline at rank 0 and write it there as one
	// Perfetto file with a process track per rank.
	MergeOut string
}

// enabled reports whether any sink is attached.
func (t *Telemetry) enabled() bool {
	return t != nil && (t.Trace != nil || t.Metrics != nil || t.Flight != nil)
}

// coreOpts returns the descriptor options that wire DDR's plan-compile
// and exchange instrumentation into the sinks.
func (t *Telemetry) coreOpts() []core.Option {
	if !t.enabled() {
		return nil
	}
	var opts []core.Option
	if t.Trace != nil {
		opts = append(opts, core.WithTracer(t.Trace))
	}
	if t.Metrics != nil {
		opts = append(opts, core.WithMetrics(t.Metrics))
	}
	if t.Flight != nil {
		opts = append(opts, core.WithFlightRecorder(t.Flight))
	}
	return opts
}

// attach hooks a world communicator's send/recv/collective paths into
// the sinks. Communicators derived with Split inherit the attachment, so
// one call at world setup covers the whole run.
func (t *Telemetry) attach(world *mpi.Comm) {
	if !t.enabled() {
		return
	}
	world.AttachTelemetry(mpi.NewTelemetry(t.Metrics, t.Trace, world.Rank()).
		WithFlightRecorder(t.Flight, world.Rank()))
}

// MergeAndWrite assembles the world's merged timeline and writes it to
// MergeOut. Collective over world whenever a trace recorder and MergeOut
// are both set — every rank must call it (typically at the end of the
// world body); rank 0 performs the write and prints the straggler
// summary to stderr. A nil receiver, missing recorder, or empty MergeOut
// is a collective no-op.
func (t *Telemetry) MergeAndWrite(world *mpi.Comm) error {
	if t == nil || t.Trace == nil || t.MergeOut == "" {
		return nil
	}
	merged, err := mpi.GatherTrace(world, t.Trace)
	if err != nil {
		return fmt.Errorf("telemetry: trace merge: %w", err)
	}
	if merged == nil { // not rank 0
		return nil
	}
	f, err := os.Create(t.MergeOut)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(f, merged.Events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "telemetry: wrote merged %d-rank Perfetto trace to %s (load at ui.perfetto.dev)\n",
		world.Size(), t.MergeOut)
	for r := 1; r < world.Size(); r++ {
		fmt.Fprintf(os.Stderr, "telemetry: rank %d clock offset %v (rtt %v)\n",
			r, merged.Offsets[r], merged.RTTs[r])
	}
	if report := trace.StragglerReport(merged.Events); len(report) > 0 {
		fmt.Fprintln(os.Stderr, "telemetry: straggler report (per exchange round):")
		trace.WriteStragglerReport(os.Stderr, report)
	}
	return nil
}

// phase starts timing one named pipeline phase on a trace lane (world
// rank); the returned func ends it, recording a span and a phase-labeled
// latency observation.
func (t *Telemetry) phase(rank int, name string) func() {
	if !t.enabled() {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		if t.Trace != nil {
			t.Trace.AddSpan(rank, name, start, end, 0)
		}
		if t.Metrics != nil {
			t.Metrics.Histogram("pipeline_phase_seconds",
				"Wall time of in-transit pipeline phases.",
				obs.LatencyBuckets, obs.RankLabel(rank),
				obs.Label{Key: "phase", Value: name}).Observe(end.Sub(start).Seconds())
		}
	}
}

// TelemetryFromFlags builds the sinks selected by CLI flags: a trace
// recorder when traceOut or mergeOut is set (mergeOut additionally makes
// MergeAndWrite emit the clock-corrected multi-rank timeline), a metrics
// registry when metricsOut or pprofAddr is set (the pprof server also
// exposes /metrics), and a flight recorder of flightRec events when
// flightRec > 0 (installed process-wide, so /debug/flightrec and SIGQUIT
// dump it). It returns nil when no flag is set. The flush func writes
// the output files and shuts the server down; call it once after the
// experiment finishes.
func TelemetryFromFlags(traceOut, metricsOut, pprofAddr, mergeOut string, flightRec int) (*Telemetry, func() error, error) {
	if traceOut == "" && metricsOut == "" && pprofAddr == "" && mergeOut == "" && flightRec <= 0 {
		return nil, func() error { return nil }, nil
	}
	tel := &Telemetry{MergeOut: mergeOut}
	if traceOut != "" || mergeOut != "" {
		tel.Trace = trace.NewRecorder()
	}
	if metricsOut != "" || pprofAddr != "" {
		tel.Metrics = obs.NewRegistry()
	}
	if flightRec > 0 {
		tel.Flight = obs.NewFlightRecorder(flightRec)
		obs.SetGlobalFlightRecorder(tel.Flight)
		obs.DumpFlightOnSignal()
	}
	var srv *obs.Server
	if pprofAddr != "" {
		s, err := obs.Serve(pprofAddr, tel.Metrics)
		if err != nil {
			return nil, nil, fmt.Errorf("telemetry: pprof server: %w", err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
	}
	flush := func() error {
		if srv != nil {
			if err := srv.Close(); err != nil {
				return err
			}
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := obs.WriteTrace(f, tel.Trace); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", traceOut)
		}
		if metricsOut != "" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			if err := tel.Metrics.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote Prometheus metrics to %s\n", metricsOut)
		}
		return nil
	}
	return tel, flush, nil
}
