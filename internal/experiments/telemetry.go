package experiments

import (
	"fmt"
	"os"
	"time"

	"ddr/internal/core"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// Telemetry bundles the observation sinks an experiment run can feed: a
// trace recorder for Perfetto timelines and a metrics registry for
// Prometheus export. Either field may be nil; a nil *Telemetry disables
// observation entirely and costs nothing on the hot paths.
type Telemetry struct {
	Trace   *trace.Recorder
	Metrics *obs.Registry
}

// enabled reports whether any sink is attached.
func (t *Telemetry) enabled() bool {
	return t != nil && (t.Trace != nil || t.Metrics != nil)
}

// coreOpts returns the descriptor options that wire DDR's plan-compile
// and exchange instrumentation into the sinks.
func (t *Telemetry) coreOpts() []core.Option {
	if !t.enabled() {
		return nil
	}
	var opts []core.Option
	if t.Trace != nil {
		opts = append(opts, core.WithTracer(t.Trace))
	}
	if t.Metrics != nil {
		opts = append(opts, core.WithMetrics(t.Metrics))
	}
	return opts
}

// attach hooks a world communicator's send/recv/collective paths into
// the sinks. Communicators derived with Split inherit the attachment, so
// one call at world setup covers the whole run.
func (t *Telemetry) attach(world *mpi.Comm) {
	if !t.enabled() {
		return
	}
	world.AttachTelemetry(mpi.NewTelemetry(t.Metrics, t.Trace, world.Rank()))
}

// phase starts timing one named pipeline phase on a trace lane (world
// rank); the returned func ends it, recording a span and a phase-labeled
// latency observation.
func (t *Telemetry) phase(rank int, name string) func() {
	if !t.enabled() {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		if t.Trace != nil {
			t.Trace.AddSpan(rank, name, start, end, 0)
		}
		if t.Metrics != nil {
			t.Metrics.Histogram("pipeline_phase_seconds",
				"Wall time of in-transit pipeline phases.",
				obs.LatencyBuckets, obs.RankLabel(rank),
				obs.Label{Key: "phase", Value: name}).Observe(end.Sub(start).Seconds())
		}
	}
}

// TelemetryFromFlags builds the sinks selected by CLI flags: a trace
// recorder when traceOut is set, a metrics registry when metricsOut or
// pprofAddr is set (the pprof server also exposes /metrics). It returns
// nil when no flag is set. The flush func writes the output files and
// shuts the server down; call it once after the experiment finishes.
func TelemetryFromFlags(traceOut, metricsOut, pprofAddr string) (*Telemetry, func() error, error) {
	if traceOut == "" && metricsOut == "" && pprofAddr == "" {
		return nil, func() error { return nil }, nil
	}
	tel := &Telemetry{}
	if traceOut != "" {
		tel.Trace = trace.NewRecorder()
	}
	if metricsOut != "" || pprofAddr != "" {
		tel.Metrics = obs.NewRegistry()
	}
	var srv *obs.Server
	if pprofAddr != "" {
		s, err := obs.Serve(pprofAddr, tel.Metrics)
		if err != nil {
			return nil, nil, fmt.Errorf("telemetry: pprof server: %w", err)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", srv.Addr)
	}
	flush := func() error {
		if srv != nil {
			if err := srv.Close(); err != nil {
				return err
			}
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := obs.WriteTrace(f, tel.Trace); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", traceOut)
		}
		if metricsOut != "" {
			f, err := os.Create(metricsOut)
			if err != nil {
				return err
			}
			if err := tel.Metrics.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "telemetry: wrote Prometheus metrics to %s\n", metricsOut)
		}
		return nil
	}
	return tel, flush, nil
}
