package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// AblationRow is one chunk-count configuration of the exchange-mode
// study: the same redistribution executed with the paper's alltoallw
// mechanism, the future-work point-to-point mode, and this repository's
// fused variant.
type AblationRow struct {
	ChunksPerRank int
	Rounds        int
	MaxPeers      int // of Ranks-1 possible destinations per round
	Ranks         int

	Alltoallw time.Duration // total wall time for `reps` redistributions
	P2P       time.Duration
	Fused     time.Duration
}

// ExchangeModeAblation measures all three exchange modes on round-robin
// slice ownership with the given chunks-per-rank counts, redistributing
// into near-cube bricks on `procs` in-process ranks, `reps` times per
// mode. The sparsity column (MaxPeers) explains when point-to-point wins:
// alltoallw's cost scales with the full rank count while p2p touches only
// actual communication partners.
//
// An optional Telemetry argument attaches every run to its sinks: wire
// counters on the communicators and per-mode exchange spans/histograms
// on the descriptors, one series per (rank, mode) pair.
func ExchangeModeAblation(procs int, domain grid.Box, chunkCounts []int, reps int, telemetry ...*Telemetry) ([]AblationRow, error) {
	var tel *Telemetry
	if len(telemetry) > 0 {
		tel = telemetry[0]
	}
	if domain.NDims != 3 {
		return nil, fmt.Errorf("experiments: ablation needs a 3D domain")
	}
	nx, ny, nz := grid.Factor3(procs)
	needs := grid.Bricks3D(domain, nx, ny, nz)
	rows := make([]AblationRow, 0, len(chunkCounts))
	for _, k := range chunkCounts {
		slabs := procs * k
		if domain.Dims[2] < slabs {
			return nil, fmt.Errorf("experiments: %d slabs exceed depth %d", slabs, domain.Dims[2])
		}
		// procs*k z-slabs dealt round-robin: every rank owns exactly k
		// separate chunks, so the plan has k rounds.
		chunksAll := make([][]grid.Box, procs)
		for i, slab := range grid.Slabs(domain, 2, slabs) {
			r := i % procs
			chunksAll[r] = append(chunksAll[r], slab)
		}

		row := AblationRow{ChunksPerRank: k, Ranks: procs}
		stats, err := core.NewPlanFromGeometry(0, 4, chunksAll, needs)
		if err != nil {
			return nil, err
		}
		s := stats.Stats()
		row.Rounds = s.Rounds
		row.MaxPeers = s.MaxPeersPerRound

		for _, mode := range []core.ExchangeMode{core.ModeAlltoallw, core.ModePointToPoint, core.ModePointToPointFused} {
			var (
				mu  sync.Mutex
				dur time.Duration
			)
			err := mpi.Launch(procs, func(c *mpi.Comm) error {
				tel.attach(c)
				desc, err := core.NewDescriptor(procs, core.Layout3D, core.Float32,
					append([]core.Option{core.WithExchangeMode(mode)}, tel.coreOpts()...)...)
				if err != nil {
					return err
				}
				mine := chunksAll[c.Rank()]
				if err := desc.SetupDataMapping(c, mine, needs[c.Rank()]); err != nil {
					return err
				}
				bufs := make([][]byte, len(mine))
				for i, b := range mine {
					bufs[i] = make([]byte, b.Volume()*4)
				}
				needBuf := make([]byte, needs[c.Rank()].Volume()*4)
				if err := c.Barrier(); err != nil {
					return err
				}
				start := time.Now()
				for r := 0; r < reps; r++ {
					if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
						return err
					}
				}
				elapsed := time.Since(start)
				maxD, err := maxDuration(c, elapsed)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					mu.Lock()
					dur = maxD
					mu.Unlock()
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			switch mode {
			case core.ModeAlltoallw:
				row.Alltoallw = dur
			case core.ModePointToPoint:
				row.P2P = dur
			default:
				row.Fused = dur
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblation renders the exchange-mode study.
func WriteAblation(w io.Writer, rows []AblationRow, reps int) {
	fmt.Fprintf(w, "Exchange-mode ablation (%d redistributions per cell, %d ranks; alltoallw = paper, p2p = paper future work, fused = extension)\n",
		reps, rows[0].Ranks)
	fmt.Fprintf(w, "%-14s %7s %10s %12s %12s %12s\n",
		"chunks/rank", "rounds", "peers", "alltoallw", "p2p", "p2p-fused")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %7d %6d/%-3d %12s %12s %12s\n",
			r.ChunksPerRank, r.Rounds, r.MaxPeers, r.Ranks-1,
			r.Alltoallw.Round(time.Microsecond),
			r.P2P.Round(time.Microsecond),
			r.Fused.Round(time.Microsecond))
	}
}
