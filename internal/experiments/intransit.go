package experiments

import (
	"bytes"
	"fmt"
	"image"
	"os"
	"path/filepath"
	"sync"

	"ddr/internal/colormap"
	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/lbm"
	"ddr/internal/mpi"
	"ddr/internal/transit"
)

// FieldNames that the in-transit pipeline can stream per step. The paper
// visualizes vorticity and notes that velocity, density, and other
// variables can be streamed the same way with similar compression.
var FieldNames = []string{"vorticity", "speed", "density"}

// InTransitConfig parameterizes the use-case-B pipeline: M simulation
// ranks run the LBM and stream field slabs to N analysis ranks, which
// regrid them with DDR, render, and JPEG-encode each frame (the paper ran
// M=128, N=32, 20000 iterations with output every 100).
type InTransitConfig struct {
	M, N          int
	GridW, GridH  int
	Iterations    int
	OutputEvery   int
	JPEGQuality   int
	OutDir        string   // when non-empty, frames are written there
	GIFPath       string   // when non-empty, an animated GIF of the first field is written
	StatsPath     string   // when non-empty, per-frame field statistics are written as CSV
	Fields        []string // streamed variables; default ["vorticity"]
	Viscosity     float64
	InletVelocity float64

	// Telemetry, when non-nil, attaches the run to a trace recorder
	// and/or metrics registry: message-layer counters on the world
	// communicator, DDR plan/exchange instrumentation on the consumer
	// descriptor, and per-phase pipeline spans on both roles. When its
	// MergeOut is set, the run ends with a collective trace merge and
	// rank 0 writes the clock-corrected multi-rank timeline.
	Telemetry *Telemetry

	// Transport selects how the M+N in-process ranks talk: "" or
	// "inproc" uses the shared mailbox, "tcp" runs every rank on the
	// loopback TCP transport (frames, chunking, real wire behaviour),
	// "shm" on mmap-backed shared-memory rings, and "hier" on the
	// two-level data path — ranks split across Nodes emulated nodes,
	// shm rings inside a node, leader-relayed TCP between nodes.
	Transport string

	// Nodes is the emulated node count for Transport "hier" (ranks are
	// split contiguously). 0 means 2.
	Nodes int

	// MemBudget, when positive, caps each consumer rank's exchange
	// staging footprint in bytes (core.WithMemoryBudget): frames whose
	// one-shot footprint would exceed it are regridded through the
	// bounded step compiler instead.
	MemBudget int

	// PipelineDepth, when positive, sets how many exchange rounds the
	// consumer descriptor keeps in flight (core.WithPipelineDepth):
	// 1 forces serial rounds, k ≥ 2 overlaps pack and unpack with wire
	// time through k staging-buffer sets. 0 keeps the library default.
	// Under MemBudget the effective depth is clamped so the deeper
	// staging ring still fits the budget.
	PipelineDepth int
}

func (cfg *InTransitConfig) fillDefaults() {
	if cfg.JPEGQuality == 0 {
		cfg.JPEGQuality = 75
	}
	if cfg.Viscosity == 0 {
		cfg.Viscosity = 0.02
	}
	if cfg.InletVelocity == 0 {
		cfg.InletVelocity = 0.1
	}
	if len(cfg.Fields) == 0 {
		cfg.Fields = []string{"vorticity"}
	}
}

func (cfg *InTransitConfig) validateFields() error {
	for _, f := range cfg.Fields {
		ok := false
		for _, known := range FieldNames {
			if f == known {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("experiments: unknown field %q (have %v)", f, FieldNames)
		}
	}
	return nil
}

// InTransitResult summarizes a pipeline run.
type InTransitResult struct {
	Frames         int   // steps × fields rendered
	RawBytes       int64 // float32 field bytes that would have been written
	ProcessedBytes int64 // JPEG bytes actually produced
	ReductionPct   float64
	LastFrame      *image.RGBA  // final rendered frame (for inspection)
	Stats          []FrameStats // per-frame reductions (when StatsPath set)
}

// RunInTransit executes the full in-transit pipeline on M+N in-process
// ranks and returns the consumer-side accounting.
func RunInTransit(cfg InTransitConfig) (*InTransitResult, error) {
	cfg.fillDefaults()
	if cfg.OutputEvery <= 0 || cfg.Iterations < cfg.OutputEvery {
		return nil, fmt.Errorf("experiments: need OutputEvery in (0, Iterations]")
	}
	if err := cfg.validateFields(); err != nil {
		return nil, err
	}
	var (
		mu  sync.Mutex
		res *InTransitResult
	)
	params := lbm.Params{
		Width:         cfg.GridW,
		Height:        cfg.GridH,
		Viscosity:     cfg.Viscosity,
		InletVelocity: cfg.InletVelocity,
		Barrier:       lbm.CylinderBarrier(cfg.GridW/4, cfg.GridH/2, cfg.GridH/9),
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 2
	}
	launchOpts, err := transportLaunchOpts(cfg.Transport, nodes, cfg.M+cfg.N)
	if err != nil {
		return nil, err
	}
	err = mpi.Launch(cfg.M+cfg.N, func(world *mpi.Comm) error {
		cfg.Telemetry.attach(world)
		cp, err := transit.NewCoupling(world, cfg.M, cfg.N)
		if err != nil {
			return err
		}
		if cp.Role == transit.Producer {
			if err := runProducer(cp.Local, params, cfg, cp.Send); err != nil {
				return err
			}
			return cfg.Telemetry.MergeAndWrite(world)
		}
		r, err := runConsumer(consumerEnv{
			local:       cp.Local,
			producersOf: cp.ProducersOf,
			recvStep:    func(step int) ([]transit.Message, error) { return cp.Recv(step) },
		}, cfg)
		if err != nil {
			return err
		}
		if r != nil {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return cfg.Telemetry.MergeAndWrite(world)
	}, launchOpts...)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: consumer root produced no result")
	}
	return res, nil
}

// producerField extracts one named field from the simulation slab.
func producerField(sim *lbm.Parallel, name string) ([]float32, error) {
	switch name {
	case "vorticity":
		return sim.Vorticity()
	case "speed":
		return sim.Slab.SpeedField(), nil
	case "density":
		return sim.Slab.DensityField(), nil
	}
	return nil, fmt.Errorf("experiments: unknown field %q", name)
}

// runProducer advances the slab-decomposed LBM on the producer group and
// streams the selected field slabs every OutputEvery iterations through
// the injected send function (in-world coupling or network bridge).
func runProducer(local *mpi.Comm, params lbm.Params, cfg InTransitConfig, send func(step int, payload []byte) error) error {
	sim, err := lbm.NewParallel(local, params)
	if err != nil {
		return err
	}
	tel := cfg.Telemetry
	lane := local.WorldRank(local.Rank())
	step := 0
	endSim := tel.phase(lane, "sim")
	for it := 1; it <= cfg.Iterations; it++ {
		if err := sim.Step(); err != nil {
			return err
		}
		if it%cfg.OutputEvery != 0 {
			continue
		}
		endSim()
		endSend := tel.phase(lane, "extract+send")
		fields := make([][]float32, len(cfg.Fields))
		for i, name := range cfg.Fields {
			if fields[i], err = producerField(sim, name); err != nil {
				return err
			}
		}
		payload, err := transit.EncodeFields(cfg.Fields, fields)
		if err != nil {
			return err
		}
		if err := send(step, payload); err != nil {
			return err
		}
		endSend()
		step++
		endSim = tel.phase(lane, "sim")
	}
	return nil
}

// consumerEnv abstracts how a consumer obtains its producers' payloads:
// through the in-world coupling or through bridge listeners.
type consumerEnv struct {
	local       *mpi.Comm
	producersOf func(rank int) (lo, hi int)
	// recvStep returns all payloads of a step (coupled mode); when nil,
	// recv is called per producer (bridge mode).
	recvStep func(step int) ([]transit.Message, error)
	recv     func(step, producer int) ([]byte, error)
}

// recvAll collects the step's payloads for the consumer, in ascending
// producer order.
func (env consumerEnv) recvAll(step, lo, hi int) ([]transit.Message, error) {
	if env.recvStep != nil {
		return env.recvStep(step)
	}
	out := make([]transit.Message, 0, hi-lo)
	for p := lo; p < hi; p++ {
		data, err := env.recv(step, p)
		if err != nil {
			return nil, err
		}
		out = append(out, transit.Message{ProducerRank: p, Data: data})
	}
	return out, nil
}

// runConsumer receives field slabs, regrids each with DDR into this
// consumer's near-square rectangle (Figure 5), and assembles/encodes each
// frame at consumer rank 0. Only rank 0 returns a result.
func runConsumer(env consumerEnv, cfg InTransitConfig) (*InTransitResult, error) {
	local := env.local
	tel := cfg.Telemetry
	lane := local.WorldRank(local.Rank())
	domain := grid.Box2(0, 0, cfg.GridW, cfg.GridH)
	// Producer slabs follow the LBM row split across M producers.
	starts := grid.SplitEven(cfg.GridH, cfg.M)
	slabBox := func(p int) grid.Box {
		return grid.Box2(0, starts[p], cfg.GridW, starts[p+1]-starts[p])
	}
	rows, cols := grid.Factor2(cfg.N)
	squares := grid.Grid2D(domain, rows, cols)
	need := squares[local.Rank()]

	// The mapping is constant across frames and fields (the paper's key
	// point): set it up once and replay ReorganizeData per arrival.
	lo, hi := env.producersOf(local.Rank())
	myChunks := make([]grid.Box, 0, hi-lo)
	for p := lo; p < hi; p++ {
		myChunks = append(myChunks, slabBox(p))
	}
	dopts := tel.coreOpts()
	if cfg.MemBudget > 0 {
		dopts = append(dopts, core.WithMemoryBudget(cfg.MemBudget))
	}
	if cfg.PipelineDepth > 0 {
		dopts = append(dopts, core.WithPipelineDepth(cfg.PipelineDepth))
	}
	desc, err := core.NewDescriptor(local.Size(), core.Layout2D, core.Float32, dopts...)
	if err != nil {
		return nil, err
	}
	if err := desc.SetupDataMapping(local, myChunks, need); err != nil {
		return nil, err
	}

	res := &InTransitResult{}
	needBuf := make([]byte, need.Volume()*4)
	var gifFrames []*image.RGBA
	steps := cfg.Iterations / cfg.OutputEvery
	for step := 0; step < steps; step++ {
		endRecv := tel.phase(lane, "recv")
		msgs, err := env.recvAll(step, lo, hi)
		if err != nil {
			return nil, err
		}
		endRecv()
		// Decode every producer's frame once; index per field below.
		endDecode := tel.phase(lane, "decode")
		perProducer := make([][][]float32, len(msgs))
		for i, msg := range msgs {
			names, fields, err := transit.DecodeFields(msg.Data)
			if err != nil {
				return nil, fmt.Errorf("experiments: producer %d step %d: %w", msg.ProducerRank, step, err)
			}
			if len(names) != len(cfg.Fields) {
				return nil, fmt.Errorf("experiments: producer %d sent %d fields, want %d",
					msg.ProducerRank, len(names), len(cfg.Fields))
			}
			for fi, name := range names {
				if name != cfg.Fields[fi] {
					return nil, fmt.Errorf("experiments: field order mismatch: %q vs %q", name, cfg.Fields[fi])
				}
				if len(fields[fi]) != myChunks[i].Volume() {
					return nil, fmt.Errorf("experiments: field %q from producer %d has %d values, want %d",
						name, msg.ProducerRank, len(fields[fi]), myChunks[i].Volume())
				}
			}
			perProducer[i] = fields
		}
		endDecode()

		for fi, name := range cfg.Fields {
			bufs := make([][]byte, len(msgs))
			for i := range msgs {
				bufs[i] = lbm.Float32sToBytes(perProducer[i][fi])
			}
			endRegrid := tel.phase(lane, "regrid")
			if err := desc.ReorganizeData(local, bufs, needBuf); err != nil {
				return nil, err
			}
			endRegrid()
			if cfg.StatsPath != "" {
				fs, err := computeFrameStats(local, step, name, lbm.BytesToFloat32s(needBuf))
				if err != nil {
					return nil, err
				}
				if local.Rank() == 0 {
					res.Stats = append(res.Stats, fs)
				}
			}

			// Assemble the full frame at consumer rank 0 and encode it.
			endGather := tel.phase(lane, "gather")
			parts, err := local.Gather(0, needBuf)
			endGather()
			if err != nil {
				return nil, err
			}
			if local.Rank() != 0 {
				continue
			}
			endRender := tel.phase(lane, "render+encode")
			field := make([]float32, cfg.GridW*cfg.GridH)
			for r, part := range parts {
				vals := lbm.BytesToFloat32s(part)
				box := squares[r]
				for y := 0; y < box.Dims[1]; y++ {
					copy(field[(box.Offset[1]+y)*cfg.GridW+box.Offset[0]:],
						vals[y*box.Dims[0]:(y+1)*box.Dims[0]])
				}
			}
			var img *image.RGBA
			if name == "vorticity" {
				loV, hiV := colormap.SymmetricRange(field)
				img, err = colormap.FieldToImage(field, cfg.GridW, cfg.GridH, loV, hiV, colormap.BlueWhiteRed)
			} else {
				loV, hiV := fieldRange(field)
				img, err = colormap.FieldToImage(field, cfg.GridW, cfg.GridH, loV, hiV, colormap.Heat)
			}
			if err != nil {
				return nil, err
			}
			var jbuf bytes.Buffer
			if err := colormap.EncodeJPEG(&jbuf, img, cfg.JPEGQuality); err != nil {
				return nil, err
			}
			endRender()
			if cfg.OutDir != "" {
				path := filepath.Join(cfg.OutDir, fmt.Sprintf("frame_%04d_%s.jpg", step, name))
				if err := os.WriteFile(path, jbuf.Bytes(), 0o644); err != nil {
					return nil, err
				}
			}
			res.Frames++
			res.RawBytes += int64(cfg.GridW) * int64(cfg.GridH) * 4
			res.ProcessedBytes += int64(jbuf.Len())
			res.LastFrame = img
			if cfg.GIFPath != "" && fi == 0 {
				gifFrames = append(gifFrames, img)
			}
		}
	}
	if cfg.StatsPath != "" && local.Rank() == 0 {
		f, err := os.Create(cfg.StatsPath)
		if err != nil {
			return nil, err
		}
		if err := WriteFrameStatsCSV(f, res.Stats); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if cfg.GIFPath != "" && local.Rank() == 0 {
		f, err := os.Create(cfg.GIFPath)
		if err != nil {
			return nil, err
		}
		if err := colormap.EncodeAnimation(f, gifFrames, 8); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if local.Rank() != 0 {
		return nil, nil
	}
	if res.RawBytes > 0 {
		res.ReductionPct = 100 * (1 - float64(res.ProcessedBytes)/float64(res.RawBytes))
	}
	return res, nil
}

// fieldRange returns the min/max of a field, padding degenerate ranges.
func fieldRange(vals []float32) (lo, hi float64) {
	lo, hi = float64(vals[0]), float64(vals[0])
	for _, v := range vals {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}
