// Package experiments contains the drivers that reproduce the paper's
// tables and figures: the parallel TIFF-loading study (use case A, Tables
// II/III and Figure 3), the volume rendering of Figure 2, and the
// in-transit LBM streaming study (use case B, Figures 4/5 and Table IV).
// cmd/ddrbench and the top-level benchmarks are thin wrappers around this
// package.
package experiments

import (
	"fmt"
	"time"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/render"
	"ddr/internal/tiff"
)

// Technique selects how slices are assigned to reading processes, the two
// DDR configurations of the paper's §IV-A.
type Technique int

// Slice assignment techniques.
const (
	// RoundRobin assigns slice i to rank i%p; every slice is its own chunk.
	RoundRobin Technique = iota
	// Consecutive assigns each rank one contiguous run of slices, a single
	// chunk per rank.
	Consecutive
)

func (t Technique) String() string {
	if t == RoundRobin {
		return "round-robin"
	}
	return "consecutive"
}

// StackGeometry builds the global DDR geometry for loading a stack that
// fills `domain` (width × height × numImages) on p ranks: ownership
// follows the slice-assignment technique, and every rank needs the
// near-cube brick of the domain it will render.
func StackGeometry(domain grid.Box, p int, tech Technique) (allChunks [][]grid.Box, allNeeds []grid.Box) {
	switch tech {
	case RoundRobin:
		allChunks = grid.RoundRobinSlices(domain, 2, p)
	default:
		allChunks = grid.ConsecutiveSlices(domain, 2, p)
	}
	nx, ny, nz := grid.Factor3(p)
	allNeeds = grid.Bricks3D(domain, nx, ny, nz)
	return allChunks, allNeeds
}

// BrickDepthSplits returns nz, the number of brick layers along the slice
// axis for p ranks — the divisor of per-process image reads in the
// baseline loader.
func BrickDepthSplits(p int) int {
	_, _, nz := grid.Factor3(p)
	return nz
}

// LoadResult is the outcome of a parallel stack load on one rank.
type LoadResult struct {
	Brick      render.Brick
	ImagesRead int
	ReadTime   time.Duration
	CommTime   time.Duration
	Stats      core.ScheduleStats // zero for the baseline loader
}

// readSlices reads global slices [z0, z0+d) of the stack into one buffer
// (x fastest, then y, then z), returning the raw sample bytes.
func readSlices(info tiff.StackInfo, z0, d int) ([]byte, error) {
	bps := info.BytesPerSample()
	sliceBytes := info.Width * info.Height * bps
	buf := make([]byte, sliceBytes*d)
	for i := 0; i < d; i++ {
		img, err := tiff.ReadFile(tiff.SlicePath(info.Dir, z0+i))
		if err != nil {
			return nil, err
		}
		if img.Width != info.Width || img.Height != info.Height || img.BytesPerSample() != bps {
			return nil, fmt.Errorf("experiments: slice %d geometry differs from stack", z0+i)
		}
		copy(buf[i*sliceBytes:], img.Pixels)
	}
	return buf, nil
}

// LoadStackDDR performs the paper's DDR-assisted load: this rank reads
// only the slices the technique assigns to it, then one DDR
// redistribution delivers every rank its brick. Collective over c.
func LoadStackDDR(c *mpi.Comm, info tiff.StackInfo, tech Technique) (*LoadResult, error) {
	domain := grid.Box3(0, 0, 0, info.Width, info.Height, info.Depth)
	allChunks, allNeeds := StackGeometry(domain, c.Size(), tech)
	myChunks := allChunks[c.Rank()]
	need := allNeeds[c.Rank()]
	bps := info.BytesPerSample()

	res := &LoadResult{}
	start := time.Now()
	bufs := make([][]byte, len(myChunks))
	for i, chunk := range myChunks {
		var err error
		if bufs[i], err = readSlices(info, chunk.Offset[2], chunk.Dims[2]); err != nil {
			return nil, err
		}
		res.ImagesRead += chunk.Dims[2]
	}
	res.ReadTime = time.Since(start)

	elem := core.Uint8
	desc, err := core.NewDescriptor(c.Size(), core.Layout3D, elem, core.WithElemSize(bps))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := desc.SetupDataMapping(c, myChunks, need); err != nil {
		return nil, err
	}
	needBuf := make([]byte, need.Volume()*bps)
	if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
		return nil, err
	}
	res.CommTime = time.Since(start)
	res.Stats = desc.Plan().Stats()

	values, err := render.NormalizeSamples(needBuf, info.BitsPerSample, info.SampleFormat)
	if err != nil {
		return nil, err
	}
	res.Brick = render.Brick{Box: need, Values: values}
	return res, nil
}

// LoadStackNoDDR performs the baseline load the paper compares against:
// every rank independently reads and decodes every image intersecting its
// brick and throws away the pixels outside it.
func LoadStackNoDDR(c *mpi.Comm, info tiff.StackInfo) (*LoadResult, error) {
	domain := grid.Box3(0, 0, 0, info.Width, info.Height, info.Depth)
	nx, ny, nz := grid.Factor3(c.Size())
	need := grid.Bricks3D(domain, nx, ny, nz)[c.Rank()]
	bps := info.BytesPerSample()

	res := &LoadResult{}
	needBuf := make([]byte, need.Volume()*bps)
	rowBytes := need.Dims[0] * bps
	start := time.Now()
	for zi := 0; zi < need.Dims[2]; zi++ {
		gz := need.Offset[2] + zi
		img, err := tiff.ReadFile(tiff.SlicePath(info.Dir, gz))
		if err != nil {
			return nil, err
		}
		res.ImagesRead++
		// Extract just the brick's window from the fully decoded image.
		for yi := 0; yi < need.Dims[1]; yi++ {
			gy := need.Offset[1] + yi
			srcOff := (gy*info.Width + need.Offset[0]) * bps
			dstOff := ((zi*need.Dims[1] + yi) * need.Dims[0]) * bps
			copy(needBuf[dstOff:dstOff+rowBytes], img.Pixels[srcOff:srcOff+rowBytes])
		}
	}
	res.ReadTime = time.Since(start)

	values, err := render.NormalizeSamples(needBuf, info.BitsPerSample, info.SampleFormat)
	if err != nil {
		return nil, err
	}
	res.Brick = render.Brick{Box: need, Values: values}
	return res, nil
}
