package experiments

import (
	"flag"
	"time"

	"ddr/internal/chaos"
	"ddr/internal/core"
	"ddr/internal/mpi"
)

// RegisterChaosFlags installs the fault-injection flags shared by the
// command-line binaries (-chaos-seed, -chaos-drop, -chaos-delay,
// -chaos-dup, -chaos-reorder, -chaos-stall, -chaos-sever, ...) on fs and
// returns a function that, called after fs.Parse, builds the deterministic
// injector and installs it process-wide so every world the binary runs —
// in-process or TCP — carries the schedule. With no chaos flags set the
// apply function installs nothing and the transports stay on their
// fault-free fast path.
func RegisterChaosFlags(fs *flag.FlagSet) (apply func() error) {
	var (
		seed     uint64
		drop     float64
		delayP   float64
		delayMax time.Duration
		dup      float64
		reorder  float64
		stallP   float64
		stallFor time.Duration
		severs   string
		tagFloor int
	)
	fs.Uint64Var(&seed, "chaos-seed", 1,
		"seed of the deterministic fault schedule; equal seeds reproduce identical faults")
	fs.Float64Var(&drop, "chaos-drop", 0,
		"probability per delivery attempt of dropping the message (the transport retries with backoff)")
	fs.Float64Var(&delayP, "chaos-delay", 0,
		"probability per message of delaying its delivery")
	fs.DurationVar(&delayMax, "chaos-delay-max", 0,
		"upper bound of injected delivery delays (0 = 2ms default)")
	fs.Float64Var(&dup, "chaos-dup", 0,
		"probability per message of delivering it twice (deduplicated by the receiver)")
	fs.Float64Var(&reorder, "chaos-reorder", 0,
		"probability per message of letting the next queued message overtake it")
	fs.Float64Var(&stallP, "chaos-stall", 0,
		"probability per message of stalling its link for -chaos-stall-for")
	fs.DurationVar(&stallFor, "chaos-stall-for", 0,
		"duration of injected link stalls (0 = 20ms default)")
	fs.StringVar(&severs, "chaos-sever", "",
		"comma-separated link cuts of the form from>to@after, e.g. 0>1@5")
	fs.IntVar(&tagFloor, "chaos-tag-floor", core.ExchangeTagBase,
		"restrict faults to messages with tag >= this value (default spares the mapping collectives; 0 faults everything)")
	return func() error {
		sv, err := chaos.ParseSevers(severs)
		if err != nil {
			return err
		}
		inj := chaos.New(chaos.Options{
			Seed:        seed,
			DropProb:    drop,
			DelayProb:   delayP,
			DelayMax:    delayMax,
			DupProb:     dup,
			ReorderProb: reorder,
			StallProb:   stallP,
			StallFor:    stallFor,
			TagFloor:    tagFloor,
			Severs:      sv,
		})
		if inj.Enabled() {
			mpi.SetDefaultFaultInjector(inj)
		}
		return nil
	}
}
