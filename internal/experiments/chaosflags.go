package experiments

import (
	"flag"

	"ddr/internal/chaos"
	"ddr/internal/core"
	"ddr/internal/mpi"
)

// RegisterChaosFlags installs the fault-injection flags shared by the
// command-line binaries (-chaos-seed, -chaos-drop, -chaos-delay,
// -chaos-dup, -chaos-reorder, -chaos-stall, -chaos-sever, ...) on fs and
// returns a function that, called after fs.Parse, builds the deterministic
// injector and installs it process-wide so every world the binary runs —
// in-process or TCP — carries the schedule. With no chaos flags set the
// apply function installs nothing and the transports stay on their
// fault-free fast path. Registration is idempotent: a name fs already
// carries (from an earlier registrar call or the binary itself) is
// reused, never redefined.
func RegisterChaosFlags(fs *flag.FlagSet) (apply func() error) {
	seed := flagGetUint64(fs, "chaos-seed", 1,
		"seed of the deterministic fault schedule; equal seeds reproduce identical faults")
	drop := flagGetFloat64(fs, "chaos-drop", 0,
		"probability per delivery attempt of dropping the message (the transport retries with backoff)")
	delayP := flagGetFloat64(fs, "chaos-delay", 0,
		"probability per message of delaying its delivery")
	delayMax := flagGetDuration(fs, "chaos-delay-max", 0,
		"upper bound of injected delivery delays (0 = 2ms default)")
	dup := flagGetFloat64(fs, "chaos-dup", 0,
		"probability per message of delivering it twice (deduplicated by the receiver)")
	reorder := flagGetFloat64(fs, "chaos-reorder", 0,
		"probability per message of letting the next queued message overtake it")
	stallP := flagGetFloat64(fs, "chaos-stall", 0,
		"probability per message of stalling its link for -chaos-stall-for")
	stallFor := flagGetDuration(fs, "chaos-stall-for", 0,
		"duration of injected link stalls (0 = 20ms default)")
	severs := flagGetString(fs, "chaos-sever", "",
		"comma-separated link cuts of the form from>to@after, e.g. 0>1@5")
	tagFloor := flagGetInt(fs, "chaos-tag-floor", core.ExchangeTagBase,
		"restrict faults to messages with tag >= this value (default spares the mapping collectives; 0 faults everything)")
	return func() error {
		sv, err := chaos.ParseSevers(severs())
		if err != nil {
			return err
		}
		inj := chaos.New(chaos.Options{
			Seed:        seed(),
			DropProb:    drop(),
			DelayProb:   delayP(),
			DelayMax:    delayMax(),
			DupProb:     dup(),
			ReorderProb: reorder(),
			StallProb:   stallP(),
			StallFor:    stallFor(),
			TagFloor:    tagFloor(),
			Severs:      sv,
		})
		if inj.Enabled() {
			mpi.SetDefaultFaultInjector(inj)
		}
		return nil
	}
}
