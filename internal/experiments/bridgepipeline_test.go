package experiments

import (
	"sync"
	"testing"
)

// TestBridgePipelineMatchesCoupled runs the identical workload through
// the in-world coupling and through the two-application bridge; the
// consumer-side accounting must agree exactly (same frames, same JPEG
// bytes — the pipelines are deterministic).
func TestBridgePipelineMatchesCoupled(t *testing.T) {
	cfg := InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  20,
		OutputEvery: 10,
	}
	coupled, err := RunInTransit(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg     sync.WaitGroup
		simErr error
	)
	addrs := make(chan []string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		simErr = RunInTransitBridgeSim(cfg, <-addrs)
	}()
	bridged, err := RunInTransitBridgeViz(cfg, "", func(a []string) { addrs <- a })
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if simErr != nil {
		t.Fatal(simErr)
	}
	if bridged.Frames != coupled.Frames {
		t.Errorf("frames %d vs %d", bridged.Frames, coupled.Frames)
	}
	if bridged.RawBytes != coupled.RawBytes {
		t.Errorf("raw bytes %d vs %d", bridged.RawBytes, coupled.RawBytes)
	}
	if bridged.ProcessedBytes != coupled.ProcessedBytes {
		t.Errorf("processed bytes %d vs %d (pipelines should be deterministic)",
			bridged.ProcessedBytes, coupled.ProcessedBytes)
	}
}

func TestBridgePipelineValidation(t *testing.T) {
	cfg := InTransitConfig{M: 2, N: 1, GridW: 32, GridH: 16, Iterations: 10, OutputEvery: 5}
	if err := RunInTransitBridgeSim(cfg, nil); err == nil {
		t.Error("missing addresses accepted")
	}
	bad := cfg
	bad.OutputEvery = 0
	if _, err := RunInTransitBridgeViz(bad, "", nil); err == nil {
		t.Error("zero OutputEvery accepted")
	}
	if err := RunInTransitBridgeSim(bad, []string{"x"}); err == nil {
		t.Error("zero OutputEvery accepted by sim side")
	}
}
