package experiments

import "testing"

// TestRunInTransit3DSmall drives the full volumetric pipeline — 3D LBM,
// in-transit streaming, DDR slab→brick regrid, parallel DVR — at
// miniature scale.
func TestRunInTransit3DSmall(t *testing.T) {
	res, err := RunInTransit3D(InTransit3DConfig{
		M: 4, N: 2,
		W: 20, H: 12, D: 12,
		Iterations:  30,
		OutputEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 {
		t.Errorf("frames = %d, want 3", res.Frames)
	}
	if res.RawBytes != int64(3)*20*12*12*4 {
		t.Errorf("raw bytes %d", res.RawBytes)
	}
	if res.ProcessedBytes <= 0 || res.ProcessedBytes >= res.RawBytes {
		t.Errorf("processed %d vs raw %d", res.ProcessedBytes, res.RawBytes)
	}
	if res.LastFrame == nil || res.LastFrame.Bounds().Dx() != 20 || res.LastFrame.Bounds().Dy() != 12 {
		t.Error("missing or mis-sized final frame")
	}
	// The wake must be visible: some pixel must differ from the black
	// background.
	nonBlack := 0
	for i := 0; i < len(res.LastFrame.Pix); i += 4 {
		if res.LastFrame.Pix[i] != 0 || res.LastFrame.Pix[i+1] != 0 || res.LastFrame.Pix[i+2] != 0 {
			nonBlack++
		}
	}
	if nonBlack == 0 {
		t.Error("rendered frame entirely black; wake invisible")
	}
}

func TestRunInTransit3DValidation(t *testing.T) {
	if _, err := RunInTransit3D(InTransit3DConfig{M: 2, N: 1, W: 8, H: 8, D: 8,
		Iterations: 5, OutputEvery: 0}); err == nil {
		t.Error("zero OutputEvery accepted")
	}
	if _, err := RunInTransit3D(InTransit3DConfig{M: 1, N: 2, W: 8, H: 8, D: 8,
		Iterations: 10, OutputEvery: 5}); err == nil {
		t.Error("more consumers than producers accepted")
	}
}

func TestSpeedTransferShape(t *testing.T) {
	tf := speedTransfer(0.1)
	_, _, _, aFree := tf(0.1)
	if aFree != 0 {
		t.Errorf("free stream opacity %g, want 0", aFree)
	}
	_, _, bWake, aWake := tf(0.02)
	if aWake <= 0 || bWake < 0.8 {
		t.Errorf("wake not cool/visible: b=%g a=%g", bWake, aWake)
	}
	rFast, _, _, aFast := tf(0.19)
	if aFast <= 0 || rFast < 0.8 {
		t.Errorf("fast flow not warm/visible: r=%g a=%g", rFast, aFast)
	}
}
