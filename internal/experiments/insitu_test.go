package experiments

import (
	"os"
	"strings"
	"testing"

	"ddr/internal/grid"
)

func TestRunInSitu(t *testing.T) {
	res, err := RunInSitu(InTransitConfig{
		M: 4, N: 0, // N unused in-situ
		GridW: 48, GridH: 36,
		Iterations:  30,
		OutputEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 {
		t.Errorf("frames = %d, want 3", res.Frames)
	}
	if res.ProcessedBytes <= 0 {
		t.Errorf("processed bytes %d", res.ProcessedBytes)
	}
	if res.SimTime <= 0 || res.RenderTime <= 0 || res.WallTime <= 0 {
		t.Errorf("timings %v/%v/%v", res.SimTime, res.RenderTime, res.WallTime)
	}
	if _, err := RunInSitu(InTransitConfig{M: 2, GridW: 32, GridH: 16, Iterations: 5, OutputEvery: 0}); err == nil {
		t.Error("zero OutputEvery accepted")
	}
}

func TestExchangeModeAblation(t *testing.T) {
	rows, err := ExchangeModeAblation(4, grid.Box3(0, 0, 0, 16, 16, 32), []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Rounds != 1 || rows[1].Rounds != 4 {
		t.Errorf("rounds %d/%d, want 1/4", rows[0].Rounds, rows[1].Rounds)
	}
	for _, r := range rows {
		if r.Alltoallw <= 0 || r.P2P <= 0 || r.Fused <= 0 {
			t.Errorf("chunks=%d: missing timings %+v", r.ChunksPerRank, r)
		}
		if r.MaxPeers < 1 || r.MaxPeers > r.Ranks-1 {
			t.Errorf("chunks=%d: peers %d", r.ChunksPerRank, r.MaxPeers)
		}
	}
	var sb strings.Builder
	WriteAblation(&sb, rows, 2)
	if !strings.Contains(sb.String(), "chunks/rank") {
		t.Error("ablation table missing header")
	}
	// Validation paths.
	if _, err := ExchangeModeAblation(4, grid.Box2(0, 0, 8, 8), []int{1}, 1); err == nil {
		t.Error("2D domain accepted")
	}
	if _, err := ExchangeModeAblation(4, grid.Box3(0, 0, 0, 4, 4, 4), []int{9}, 1); err == nil {
		t.Error("too many slabs accepted")
	}
}

func TestInTransitFrameStats(t *testing.T) {
	dir := t.TempDir()
	csvPath := dir + "/stats.csv"
	res, err := RunInTransit(InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  20,
		OutputEvery: 10,
		Fields:      []string{"vorticity", "density"},
		StatsPath:   csvPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 { // 2 steps x 2 fields
		t.Fatalf("%d stats rows", len(res.Stats))
	}
	for _, s := range res.Stats {
		if s.Cells != 48*36 {
			t.Errorf("step %d %s: %d cells", s.Step, s.Field, s.Cells)
		}
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("step %d %s: min/mean/max out of order: %g %g %g", s.Step, s.Field, s.Min, s.Mean, s.Max)
		}
		if s.RMS < 0 {
			t.Errorf("negative RMS")
		}
		if s.Field == "density" && (s.Mean < 0.5 || s.Mean > 1.5) {
			t.Errorf("density mean %g implausible", s.Mean)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "step,field") {
		t.Errorf("CSV shape: %d lines, header %q", len(lines), lines[0])
	}
}

func TestCompareCouplings(t *testing.T) {
	cmp, err := CompareCouplings(InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  20,
		OutputEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.InSitu.Frames != cmp.InTransit.Frames {
		t.Errorf("frame counts differ: %d vs %d", cmp.InSitu.Frames, cmp.InTransit.Frames)
	}
	if cmp.InTransitWall <= 0 {
		t.Error("missing in-transit wall time")
	}
}
