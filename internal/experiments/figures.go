package experiments

import (
	"fmt"
	"image"
	"io"
	"sync"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/render"
	"ddr/internal/tiff"
)

// Table1Row is one rank's DDR_SetupDataMapping parameters for the paper's
// running example E1 (Table I).
type Table1Row struct {
	Rank, NProcs, NChunks int
	OwnDims, OwnOffsets   string
	NeedDims, NeedOffsets string
}

// E1Geometry returns the paper's E1 layout for one rank of four: two 8x1
// rows owned, one 4x4 quadrant needed (Figure 1 / Algorithm 1).
func E1Geometry(rank int) (own []grid.Box, need grid.Box) {
	own = []grid.Box{
		grid.Box2(0, rank, 8, 1),
		grid.Box2(0, rank+4, 8, 1),
	}
	right := rank % 2
	bottom := rank / 2
	return own, grid.Box2(4*right, 4*bottom, 4, 4)
}

// Table1 reproduces Table I: the parameter values each rank passes to
// DDR_SetupDataMapping in example E1.
func Table1() []Table1Row {
	rows := make([]Table1Row, 4)
	for rank := range rows {
		own, need := E1Geometry(rank)
		rows[rank] = Table1Row{
			Rank:        rank,
			NProcs:      4,
			NChunks:     len(own),
			OwnDims:     fmt.Sprintf("{[%d,%d],[%d,%d]}", own[0].Dims[0], own[0].Dims[1], own[1].Dims[0], own[1].Dims[1]),
			OwnOffsets:  fmt.Sprintf("{[%d,%d],[%d,%d]}", own[0].Offset[0], own[0].Offset[1], own[1].Offset[0], own[1].Offset[1]),
			NeedDims:    fmt.Sprintf("[%d,%d]", need.Dims[0], need.Dims[1]),
			NeedOffsets: fmt.Sprintf("[%d,%d]", need.Offset[0], need.Offset[1]),
		}
	}
	return rows
}

// WriteTable1 renders Table I.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I: DDR_SetupDataMapping parameter values for E1")
	fmt.Fprintf(w, "%-7s %3s %3s %3s %-17s %-17s %-7s %-7s %s\n",
		"", "P1", "P2", "P3", "P4 (dims)", "P5 (offsets)", "P6", "P7", "P8")
	for _, r := range rows {
		fmt.Fprintf(w, "Rank %-2d %3d %3d %3d %-17s %-17s %-7s %-7s desc\n",
			r.Rank, r.Rank, r.NProcs, r.NChunks, r.OwnDims, r.OwnOffsets, r.NeedDims, r.NeedOffsets)
	}
}

// RenderFigure2 reproduces Figure 2's volume rendering: a synthetic CT
// volume is generated as a slice stack, bricked over `procs` ranks,
// rendered in parallel, and composited into one frame at rank 0.
func RenderFigure2(vw, vh, vd, procs int) (*image.RGBA, error) {
	var (
		mu  sync.Mutex
		out *image.RGBA
	)
	nx, ny, nz := grid.Factor3(procs)
	domain := grid.Box3(0, 0, 0, vw, vh, vd)
	bricks := grid.Bricks3D(domain, nx, ny, nz)
	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		box := bricks[c.Rank()]
		vals := make([]float32, box.Volume())
		i := 0
		for z := 0; z < box.Dims[2]; z++ {
			img, err := tiff.GenerateSlice(vw, vh, vd, box.Offset[2]+z, 8, tiff.FormatUint)
			if err != nil {
				return err
			}
			for y := 0; y < box.Dims[1]; y++ {
				gy := box.Offset[1] + y
				for x := 0; x < box.Dims[0]; x++ {
					vals[i] = float32(img.Pixels[gy*vw+box.Offset[0]+x]) / 255
					i++
				}
			}
		}
		p, err := render.RenderBrick(render.Brick{Box: box, Values: vals}, render.CTTransfer)
		if err != nil {
			return err
		}
		img, err := render.GatherComposite(c, 0, p, vw, vh)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			out = img
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("experiments: figure 2 produced no image")
	}
	return out, nil
}

// Figure5Mapping describes the slab-to-rectangle regrid of Figure 5 for
// an M-producer, N-consumer coupling over a w×h field: the chunks each
// consumer receives and the schedule of the DDR plan that regrids them.
type Figure5Mapping struct {
	ConsumerNeeds []grid.Box
	ChunksPerCons [][]grid.Box
	Stats         core.ScheduleStats
}

// Figure5 computes the regrid mapping without running a simulation.
func Figure5(m, n, w, h int) (*Figure5Mapping, error) {
	domain := grid.Box2(0, 0, w, h)
	starts := grid.SplitEven(h, m)
	consBlocks := grid.SplitEven(m, n)
	out := &Figure5Mapping{}
	rows, cols := grid.Factor2(n)
	out.ConsumerNeeds = grid.Grid2D(domain, rows, cols)
	allChunks := make([][]grid.Box, n)
	for c := 0; c < n; c++ {
		for p := consBlocks[c]; p < consBlocks[c+1]; p++ {
			allChunks[c] = append(allChunks[c],
				grid.Box2(0, starts[p], w, starts[p+1]-starts[p]))
		}
	}
	out.ChunksPerCons = allChunks
	plan, err := core.NewPlanFromGeometry(0, 4, allChunks, out.ConsumerNeeds)
	if err != nil {
		return nil, err
	}
	out.Stats = plan.Stats()
	return out, nil
}
