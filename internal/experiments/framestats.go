package experiments

import (
	"fmt"
	"io"
	"math"

	"ddr/internal/mpi"
)

// FrameStats are the per-frame scalar reductions the analysis side
// computes in parallel — the non-visual kind of in-transit analysis the
// paper's §II-C motivates (each consumer reduces its own rectangle, then
// one Allreduce merges the moments).
type FrameStats struct {
	Step     int
	Field    string
	Min, Max float64
	Mean     float64
	RMS      float64
	Cells    int64
}

// computeFrameStats reduces this rank's field values and merges across
// the communicator; every rank returns the global stats.
func computeFrameStats(c *mpi.Comm, step int, field string, vals []float32) (FrameStats, error) {
	localMin, localMax := math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for _, v := range vals {
		f := float64(v)
		localMin = math.Min(localMin, f)
		localMax = math.Max(localMax, f)
		sum += f
		sumSq += f * f
	}
	mins, err := c.AllreduceFloat64([]float64{localMin}, mpi.OpMin)
	if err != nil {
		return FrameStats{}, err
	}
	maxs, err := c.AllreduceFloat64([]float64{localMax}, mpi.OpMax)
	if err != nil {
		return FrameStats{}, err
	}
	sums, err := c.AllreduceFloat64([]float64{sum, sumSq, float64(len(vals))}, mpi.OpSum)
	if err != nil {
		return FrameStats{}, err
	}
	cells := sums[2]
	if cells == 0 {
		return FrameStats{}, fmt.Errorf("experiments: empty frame for stats")
	}
	return FrameStats{
		Step:  step,
		Field: field,
		Min:   mins[0],
		Max:   maxs[0],
		Mean:  sums[0] / cells,
		RMS:   math.Sqrt(sums[1] / cells),
		Cells: int64(cells),
	}, nil
}

// WriteFrameStatsCSV renders collected frame statistics as CSV.
func WriteFrameStatsCSV(w io.Writer, stats []FrameStats) error {
	if _, err := fmt.Fprintln(w, "step,field,min,max,mean,rms,cells"); err != nil {
		return err
	}
	for _, s := range stats {
		if _, err := fmt.Fprintf(w, "%d,%s,%g,%g,%g,%g,%d\n",
			s.Step, s.Field, s.Min, s.Max, s.Mean, s.RMS, s.Cells); err != nil {
			return err
		}
	}
	return nil
}
