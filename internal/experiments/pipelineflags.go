package experiments

import "flag"

// RegisterPipelineFlags installs the exchange-pipelining flag shared by
// the experiment binaries (-pipeline-depth) on fs and returns a getter
// that, called after fs.Parse, yields the requested depth: 0 keeps the
// library default (core.DefaultPipelineDepth), 1 forces strictly serial
// rounds, k ≥ 2 runs up to k exchange rounds in flight so pack and
// unpack hide behind wire time. Like the other registrars, registration
// is idempotent: a name fs already carries is reused, never redefined.
func RegisterPipelineFlags(fs *flag.FlagSet) (depth func() int) {
	return flagGetInt(fs, "pipeline-depth", 0,
		"exchange rounds in flight per redistribution: 0 = library default, 1 = serial, k>=2 = pipelined (clamped by -mem-budget)")
}
