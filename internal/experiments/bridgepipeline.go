package experiments

import (
	"fmt"
	"sync"

	"ddr/internal/grid"
	"ddr/internal/lbm"
	"ddr/internal/mpi"
	"ddr/internal/transit"
)

// Bridge-mode pipeline: the simulation and the analysis run as two
// separate applications (separate worlds, possibly separate processes or
// machines) connected only by transit's TCP bridge — the deployment shape
// the paper's in-transit frameworks (GLEAN, ADIOS) serve.

// RunInTransitBridgeViz runs the analysis application standalone: cfg.N
// analysis ranks, each with a bridge listener bound on bindHost. Once all
// listeners are up, ready is called with the addresses (in analysis rank
// order) so they can be handed to the simulation side. Blocks until all
// steps have been received and rendered.
func RunInTransitBridgeViz(cfg InTransitConfig, bindHost string, ready func(addrs []string)) (*InTransitResult, error) {
	cfg.fillDefaults()
	if cfg.OutputEvery <= 0 || cfg.Iterations < cfg.OutputEvery {
		return nil, fmt.Errorf("experiments: need OutputEvery in (0, Iterations]")
	}
	if err := cfg.validateFields(); err != nil {
		return nil, err
	}
	if bindHost == "" {
		bindHost = "127.0.0.1:0"
	}
	listeners := make([]*transit.BridgeListener, cfg.N)
	addrs := make([]string, cfg.N)
	for i := range listeners {
		l, err := transit.ListenBridge(bindHost)
		if err != nil {
			for _, prev := range listeners[:i] {
				prev.Close()
			}
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr()
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	if ready != nil {
		ready(addrs)
	}

	blocks := grid.SplitEven(cfg.M, cfg.N)
	var (
		mu  sync.Mutex
		res *InTransitResult
	)
	err := mpi.Launch(cfg.N, func(c *mpi.Comm) error {
		me := c.Rank()
		r, err := runConsumer(consumerEnv{
			local: c,
			producersOf: func(rank int) (int, int) {
				return blocks[rank], blocks[rank+1]
			},
			recv: func(step, producer int) ([]byte, error) {
				return listeners[me].Recv(step, producer)
			},
		}, cfg)
		if err != nil {
			return err
		}
		if r != nil {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: bridge consumer produced no result")
	}
	return res, nil
}

// RunInTransitBridgeSim runs the simulation application standalone: cfg.M
// LBM ranks, each dialing its assigned analysis address (addrs in
// analysis rank order, as published by RunInTransitBridgeViz).
func RunInTransitBridgeSim(cfg InTransitConfig, addrs []string) error {
	cfg.fillDefaults()
	if cfg.OutputEvery <= 0 || cfg.Iterations < cfg.OutputEvery {
		return fmt.Errorf("experiments: need OutputEvery in (0, Iterations]")
	}
	if err := cfg.validateFields(); err != nil {
		return err
	}
	if len(addrs) != cfg.N {
		return fmt.Errorf("experiments: %d bridge addresses for %d analysis ranks", len(addrs), cfg.N)
	}
	blocks := grid.SplitEven(cfg.M, cfg.N)
	consumerOf := func(p int) int {
		for c := 0; c < cfg.N; c++ {
			if p >= blocks[c] && p < blocks[c+1] {
				return c
			}
		}
		return -1
	}
	params := lbm.Params{
		Width:         cfg.GridW,
		Height:        cfg.GridH,
		Viscosity:     cfg.Viscosity,
		InletVelocity: cfg.InletVelocity,
		Barrier:       lbm.CylinderBarrier(cfg.GridW/4, cfg.GridH/2, cfg.GridH/9),
	}
	return mpi.Launch(cfg.M, func(c *mpi.Comm) error {
		sender, err := transit.DialBridge(addrs[consumerOf(c.Rank())], c.Rank())
		if err != nil {
			return err
		}
		defer sender.Close()
		return runProducer(c, params, cfg, sender.Send)
	})
}
