package experiments

import (
	"fmt"
	"math"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/perfmodel"
	"ddr/internal/tiff"
)

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// TestTable3MatchesPaper verifies the exact reproduction of Table III:
// the schedule statistics computed from DDR's plans must match the
// paper's rounds exactly and its per-rank-per-round sizes within 1%.
func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ConsRounds != r.PaperConsRounds {
			t.Errorf("p=%d: consecutive rounds %d, paper %d", r.Procs, r.ConsRounds, r.PaperConsRounds)
		}
		if r.RRRounds != r.PaperRRRounds {
			t.Errorf("p=%d: round-robin rounds %d, paper %d", r.Procs, r.RRRounds, r.PaperRRRounds)
		}
		if e := relErr(r.ConsMiB, r.PaperConsMiB); e > 0.01 {
			t.Errorf("p=%d: consecutive %.2f MiB vs paper %.2f (err %.1f%%)",
				r.Procs, r.ConsMiB, r.PaperConsMiB, 100*e)
		}
		if e := relErr(r.RRMiB, r.PaperRRMiB); e > 0.01 {
			t.Errorf("p=%d: round-robin %.2f MiB vs paper %.2f (err %.1f%%)",
				r.Procs, r.RRMiB, r.PaperRRMiB, 100*e)
		}
	}
}

// TestTable2Shape verifies the modelled Table II reproduces the paper's
// qualitative structure: the ~25x headline speedup, the small-scale win
// for round-robin, the large-scale win for consecutive, strong scaling of
// the DDR techniques, and quantitative agreement within 35%.
func TestTable2Shape(t *testing.T) {
	rows, err := Table2(perfmodel.Cooley())
	if err != nil {
		t.Fatal(err)
	}
	byProcs := map[int]Table2Row{}
	for _, r := range rows {
		byProcs[r.Procs] = r
	}
	r27, r216 := byProcs[27], byProcs[216]

	if speedup := r216.NoDDR / r216.Consec; speedup < 15 || speedup > 40 {
		t.Errorf("216-proc speedup %.1fx outside [15,40] (paper: 24.9x)", speedup)
	}
	if r27.RoundRobin >= r27.Consec {
		t.Errorf("at 27 procs round-robin (%.1fs) should beat consecutive (%.1fs)",
			r27.RoundRobin, r27.Consec)
	}
	if r216.Consec >= r216.RoundRobin {
		t.Errorf("at 216 procs consecutive (%.1fs) should beat round-robin (%.1fs)",
			r216.Consec, r216.RoundRobin)
	}
	prevRR, prevCons := math.Inf(1), math.Inf(1)
	for _, p := range PaperScales {
		r := byProcs[p]
		if r.RoundRobin >= prevRR || r.Consec >= prevCons {
			t.Errorf("p=%d: DDR times not strong-scaling", p)
		}
		prevRR, prevCons = r.RoundRobin, r.Consec
		for _, pair := range [][2]float64{
			{r.NoDDR, r.PaperNoDDR},
			{r.RoundRobin, r.PaperRR},
			{r.Consec, r.PaperCons},
		} {
			if e := relErr(pair[0], pair[1]); e > 0.35 {
				t.Errorf("p=%d: modelled %.1fs vs paper %.1fs (err %.0f%%)",
					p, pair[0], pair[1], 100*e)
			}
		}
	}
}

func TestFigure3Consistent(t *testing.T) {
	s, err := Figure3(perfmodel.Cooley())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Procs) != 4 || len(s.NoDDR) != 4 || len(s.RoundRobin) != 4 || len(s.Consec) != 4 {
		t.Fatalf("series lengths %d/%d/%d/%d", len(s.Procs), len(s.NoDDR), len(s.RoundRobin), len(s.Consec))
	}
	rows, err := Table2(perfmodel.Cooley())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if s.Procs[i] != r.Procs || s.NoDDR[i] != r.NoDDR {
			t.Errorf("figure 3 diverges from table 2 at index %d", i)
		}
	}
}

func TestScheduleForSelfConsistency(t *testing.T) {
	// The consecutive schedule at paper scale must move (1 - 1/(nx*ny)) of
	// each rank's data across the wire.
	domain := PaperDomain()
	s, err := ScheduleFor(domain, 64, Consecutive, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(domain.Volume()) * 4
	ownedPerRank := total / 64
	wantWire := ownedPerRank * (1 - 1.0/16) // 4x4 bricks in x-y
	if e := relErr(s.PerRankRoundAvg, wantWire); e > 0.01 {
		t.Errorf("wire bytes/rank %.0f, want %.0f", s.PerRankRoundAvg, wantWire)
	}
	if s.Rounds != 1 {
		t.Errorf("rounds %d", s.Rounds)
	}
}

// TestStackGeometryTiles checks both techniques produce valid DDR inputs.
func TestStackGeometryTiles(t *testing.T) {
	domain := grid.Box3(0, 0, 0, 16, 8, 20)
	for _, tech := range []Technique{RoundRobin, Consecutive} {
		chunks, needs := StackGeometry(domain, 6, tech)
		var flat []grid.Box
		for _, c := range chunks {
			flat = append(flat, c...)
		}
		if err := grid.VerifyTiling(domain, flat); err != nil {
			t.Errorf("%v ownership: %v", tech, err)
		}
		if err := grid.VerifyTiling(domain, needs); err != nil {
			t.Errorf("%v needs: %v", tech, err)
		}
	}
	if BrickDepthSplits(27) != 3 || BrickDepthSplits(64) != 4 {
		t.Error("brick depth splits wrong")
	}
}

// TestLoadStackEndToEnd is the use-case-A integration test: a real TIFF
// stack on disk, loaded in parallel with and without DDR, must produce
// identical bricks that match the synthetic ground truth.
func TestLoadStackEndToEnd(t *testing.T) {
	const w, h, d, procs = 20, 12, 16, 8
	dir := t.TempDir()
	if err := tiff.WriteStack(dir, w, h, d, 16, tiff.FormatUint); err != nil {
		t.Fatal(err)
	}
	info, err := tiff.ProbeStack(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{RoundRobin, Consecutive} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			err := mpi.Launch(procs, func(c *mpi.Comm) error {
				ddrRes, err := LoadStackDDR(c, info, tech)
				if err != nil {
					return err
				}
				baseRes, err := LoadStackNoDDR(c, info)
				if err != nil {
					return err
				}
				if !ddrRes.Brick.Box.Equal(baseRes.Brick.Box) {
					return fmt.Errorf("rank %d: brick boxes differ: %v vs %v",
						c.Rank(), ddrRes.Brick.Box, baseRes.Brick.Box)
				}
				for i := range ddrRes.Brick.Values {
					if ddrRes.Brick.Values[i] != baseRes.Brick.Values[i] {
						return fmt.Errorf("rank %d sample %d: DDR %f vs baseline %f",
							c.Rank(), i, ddrRes.Brick.Values[i], baseRes.Brick.Values[i])
					}
				}
				// DDR must read fewer or equal images per rank vs baseline
				// (d/p vs d/nz with nz <= p).
				if ddrRes.ImagesRead > baseRes.ImagesRead {
					return fmt.Errorf("rank %d: DDR read %d images, baseline %d",
						c.Rank(), ddrRes.ImagesRead, baseRes.ImagesRead)
				}
				// Aggregate DDR reads must equal the stack depth exactly:
				// each image read exactly once.
				total, err := c.AllreduceInt64([]int64{int64(ddrRes.ImagesRead)}, mpi.OpSum)
				if err != nil {
					return err
				}
				if total[0] != d {
					return fmt.Errorf("stack read %d times, want each of %d images once", total[0], d)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMeasureJPEGBytesPerPixel(t *testing.T) {
	bpp, err := MeasureJPEGBytesPerPixel(96, 48, 50, 2, 10, 75)
	if err != nil {
		t.Fatal(err)
	}
	if bpp <= 0 || bpp >= 4 {
		t.Errorf("bytes per pixel %.3f not in (0,4)", bpp)
	}
	if _, err := MeasureJPEGBytesPerPixel(96, 48, 0, 0, 10, 75); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestMeasureQuantizedBytesPerPixel(t *testing.T) {
	bpp, err := MeasureQuantizedBytesPerPixel(96, 48, 50, 2, 10, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if bpp <= 0 || bpp >= 4 {
		t.Errorf("quantized bytes per pixel %.3f not in (0,4)", bpp)
	}
	if _, err := MeasureQuantizedBytesPerPixel(96, 48, 0, 0, 10, 1e-4); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := MeasureQuantizedBytesPerPixel(96, 48, 0, 1, 10, 0); err == nil {
		t.Error("zero error bound accepted")
	}
}

func TestTable4Projection(t *testing.T) {
	rows := Table4(0.025, 200)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Raw sizes are exact: 3238*1295*4*200.
	if rows[0].RawBytes != int64(3238)*1295*4*200 {
		t.Errorf("raw bytes %d", rows[0].RawBytes)
	}
	for _, r := range rows {
		if r.ReductionPct < 99 || r.ReductionPct > 100 {
			t.Errorf("%dx%d: reduction %.2f%% out of the paper's regime", r.W, r.H, r.ReductionPct)
		}
		if r.ProcessedBytes <= 0 || r.ProcessedBytes >= r.RawBytes {
			t.Errorf("%dx%d: processed %d vs raw %d", r.W, r.H, r.ProcessedBytes, r.RawBytes)
		}
	}
}

// TestRunInTransitSmall drives the full use-case-B pipeline end to end at
// miniature scale.
func TestRunInTransitSmall(t *testing.T) {
	res, err := RunInTransit(InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  30,
		OutputEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 {
		t.Errorf("frames = %d, want 3", res.Frames)
	}
	if res.RawBytes != int64(3)*48*36*4 {
		t.Errorf("raw bytes %d", res.RawBytes)
	}
	if res.ProcessedBytes <= 0 || res.ProcessedBytes >= res.RawBytes {
		t.Errorf("processed bytes %d vs raw %d", res.ProcessedBytes, res.RawBytes)
	}
	if res.ReductionPct <= 0 {
		t.Errorf("reduction %.2f%%", res.ReductionPct)
	}
	if res.LastFrame == nil || res.LastFrame.Bounds().Dx() != 48 {
		t.Error("missing final frame")
	}
}

// TestRunInTransitMultiField streams all three variables of interest and
// checks the accounting scales with field count.
func TestRunInTransitMultiField(t *testing.T) {
	res, err := RunInTransit(InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  20,
		OutputEvery: 10,
		Fields:      []string{"vorticity", "speed", "density"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 2*3 {
		t.Errorf("frames = %d, want 6", res.Frames)
	}
	if res.RawBytes != int64(6)*48*36*4 {
		t.Errorf("raw bytes %d", res.RawBytes)
	}
	if res.ProcessedBytes <= 0 || res.ProcessedBytes >= res.RawBytes {
		t.Errorf("processed %d vs raw %d", res.ProcessedBytes, res.RawBytes)
	}
}

// TestRunInTransitMemBudget runs the pipeline under a staging budget
// tight enough that every frame regrids through the bounded step
// compiler; the rendered output accounting must be unchanged.
func TestRunInTransitMemBudget(t *testing.T) {
	res, err := RunInTransit(InTransitConfig{
		M: 4, N: 2,
		GridW: 48, GridH: 36,
		Iterations:  30,
		OutputEvery: 10,
		MemBudget:   1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 {
		t.Errorf("frames = %d, want 3", res.Frames)
	}
	if res.ProcessedBytes <= 0 || res.ProcessedBytes >= res.RawBytes {
		t.Errorf("processed bytes %d vs raw %d", res.ProcessedBytes, res.RawBytes)
	}
}

// TestRunInTransitPipelineDepth runs the pipeline with an explicit
// exchange pipeline depth — rounds in flight through the consumer
// descriptor's staging ring — and, composed with a tight budget, with
// the depth clamped so the ring still fits. Output accounting must be
// unchanged in both.
func TestRunInTransitPipelineDepth(t *testing.T) {
	for _, cfg := range []InTransitConfig{
		{M: 4, N: 2, GridW: 48, GridH: 36, Iterations: 30, OutputEvery: 10, PipelineDepth: 3},
		{M: 4, N: 2, GridW: 48, GridH: 36, Iterations: 30, OutputEvery: 10, PipelineDepth: 4, MemBudget: 1 << 10},
	} {
		res, err := RunInTransit(cfg)
		if err != nil {
			t.Fatalf("depth %d budget %d: %v", cfg.PipelineDepth, cfg.MemBudget, err)
		}
		if res.Frames != 3 {
			t.Errorf("depth %d budget %d: frames = %d, want 3", cfg.PipelineDepth, cfg.MemBudget, res.Frames)
		}
		if res.ProcessedBytes <= 0 || res.ProcessedBytes >= res.RawBytes {
			t.Errorf("depth %d budget %d: processed bytes %d vs raw %d", cfg.PipelineDepth, cfg.MemBudget, res.ProcessedBytes, res.RawBytes)
		}
	}
}

func TestRunInTransitValidation(t *testing.T) {
	if _, err := RunInTransit(InTransitConfig{M: 2, N: 1, GridW: 32, GridH: 16, Iterations: 5, OutputEvery: 0}); err == nil {
		t.Error("zero OutputEvery accepted")
	}
	if _, err := RunInTransit(InTransitConfig{M: 1, N: 2, GridW: 32, GridH: 16, Iterations: 10, OutputEvery: 5}); err == nil {
		t.Error("more consumers than producers accepted")
	}
	if _, err := RunInTransit(InTransitConfig{M: 2, N: 1, GridW: 32, GridH: 16, Iterations: 10, OutputEvery: 5,
		Fields: []string{"nonsense"}}); err == nil {
		t.Error("unknown field accepted")
	}
}
