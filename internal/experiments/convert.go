package experiments

import (
	"fmt"
	"time"

	"ddr/internal/bov"
	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/tiff"
)

// ConvertResult summarizes a parallel stack conversion.
type ConvertResult struct {
	Slices    int
	Bytes     int64
	ReadTime  time.Duration // max across ranks
	CommTime  time.Duration
	WriteTime time.Duration
}

// ConvertStackToBOV converts a TIFF slice stack into a single bov volume
// in parallel: each rank reads an equal share of the images (every image
// decoded exactly once), DDR redistributes pixels into contiguous write
// slabs, and each rank issues one large sequential write — the on-the-fly
// format conversion the paper's introduction motivates for tools like
// ParaView. Collective over c.
func ConvertStackToBOV(c *mpi.Comm, info tiff.StackInfo, outPath string) (*ConvertResult, error) {
	domain := grid.Box3(0, 0, 0, info.Width, info.Height, info.Depth)
	bps := info.BytesPerSample()

	// Readers own consecutive runs of slices; writers own z-slabs too, but
	// re-balanced so each rank's write region is contiguous in the output
	// file. (With consecutive read chunks these coincide, which makes the
	// redistribution mostly local — DDR detects that automatically and
	// moves only what differs.)
	readChunks := grid.ConsecutiveSlices(domain, 2, c.Size())[c.Rank()]
	writeSlab := grid.Slabs(domain, 2, c.Size())[c.Rank()]

	out := &ConvertResult{Slices: info.Depth, Bytes: int64(domain.Volume()) * int64(bps)}

	if c.Rank() == 0 {
		v, err := bov.Create(outPath, bov.Header{
			Dims:     [3]int{info.Width, info.Height, info.Depth},
			ElemSize: bps,
			Kind:     fmt.Sprintf("%d-bit %v from TIFF stack", info.BitsPerSample, info.SampleFormat),
		})
		if err != nil {
			return nil, err
		}
		if err := v.Close(); err != nil {
			return nil, err
		}
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}

	start := time.Now()
	bufs := make([][]byte, len(readChunks))
	for i, chunk := range readChunks {
		var err error
		if bufs[i], err = readSlices(info, chunk.Offset[2], chunk.Dims[2]); err != nil {
			return nil, err
		}
	}
	readTime := time.Since(start)

	start = time.Now()
	desc, err := core.NewDescriptor(c.Size(), core.Layout3D, core.Uint8, core.WithElemSize(bps))
	if err != nil {
		return nil, err
	}
	if err := desc.SetupDataMapping(c, readChunks, writeSlab); err != nil {
		return nil, err
	}
	slabBuf := make([]byte, writeSlab.Volume()*bps)
	if err := desc.ReorganizeData(c, bufs, slabBuf); err != nil {
		return nil, err
	}
	commTime := time.Since(start)

	start = time.Now()
	v, err := bov.Open(outPath)
	if err != nil {
		return nil, err
	}
	if err := v.WriteBox(writeSlab, slabBuf); err != nil {
		v.Close()
		return nil, err
	}
	if err := v.Close(); err != nil {
		return nil, err
	}
	writeTime := time.Since(start)
	if err := c.Barrier(); err != nil {
		return nil, err
	}

	if out.ReadTime, err = maxDuration(c, readTime); err != nil {
		return nil, err
	}
	if out.CommTime, err = maxDuration(c, commTime); err != nil {
		return nil, err
	}
	if out.WriteTime, err = maxDuration(c, writeTime); err != nil {
		return nil, err
	}
	return out, nil
}
