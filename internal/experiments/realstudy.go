package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ddr/internal/mpi"
	"ddr/internal/tiff"
)

// RealStudyRow is one measured configuration of the laptop-scale TIFF
// loading study (the real-execution analogue of Table II).
type RealStudyRow struct {
	Procs      int
	Technique  string
	ReadTime   time.Duration // max across ranks
	CommTime   time.Duration // max across ranks
	TotalTime  time.Duration
	ImagesRead int // total across ranks
}

// maxDuration reduces a duration to its maximum across all ranks.
func maxDuration(c *mpi.Comm, d time.Duration) (time.Duration, error) {
	v, err := c.AllreduceInt64([]int64{int64(d)}, mpi.OpMax)
	if err != nil {
		return 0, err
	}
	return time.Duration(v[0]), nil
}

// RunRealTIFFStudy loads the stack at dir on each process count with the
// baseline and both DDR techniques, measuring real wall-clock time. The
// study runs ranks as goroutines, so these numbers demonstrate behaviour
// (every image read once, redistribution correctness, relative costs) at
// laptop scale rather than cluster timings.
func RunRealTIFFStudy(dir string, procs []int) ([]RealStudyRow, error) {
	info, err := tiff.ProbeStack(dir)
	if err != nil {
		return nil, err
	}
	var rows []RealStudyRow
	for _, p := range procs {
		if p > info.Depth {
			return nil, fmt.Errorf("experiments: %d procs exceed stack depth %d", p, info.Depth)
		}
		configs := []struct {
			name string
			run  func(c *mpi.Comm) (*LoadResult, error)
		}{
			{"no-ddr", func(c *mpi.Comm) (*LoadResult, error) { return LoadStackNoDDR(c, info) }},
			{"ddr-round-robin", func(c *mpi.Comm) (*LoadResult, error) { return LoadStackDDR(c, info, RoundRobin) }},
			{"ddr-consecutive", func(c *mpi.Comm) (*LoadResult, error) { return LoadStackDDR(c, info, Consecutive) }},
		}
		for _, cfg := range configs {
			var (
				mu  sync.Mutex
				row RealStudyRow
			)
			start := time.Now()
			err := mpi.Launch(p, func(c *mpi.Comm) error {
				res, err := cfg.run(c)
				if err != nil {
					return err
				}
				readMax, err := maxDuration(c, res.ReadTime)
				if err != nil {
					return err
				}
				commMax, err := maxDuration(c, res.CommTime)
				if err != nil {
					return err
				}
				imgs, err := c.AllreduceInt64([]int64{int64(res.ImagesRead)}, mpi.OpSum)
				if err != nil {
					return err
				}
				if c.Rank() == 0 {
					mu.Lock()
					row = RealStudyRow{
						Procs:      p,
						Technique:  cfg.name,
						ReadTime:   readMax,
						CommTime:   commMax,
						ImagesRead: int(imgs[0]),
					}
					mu.Unlock()
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			row.TotalTime = time.Since(start)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteRealStudy renders the real-study rows.
func WriteRealStudy(w io.Writer, rows []RealStudyRow) {
	fmt.Fprintln(w, "Laptop-scale TIFF loading study (real execution, ranks as goroutines)")
	fmt.Fprintf(w, "%-7s %-17s %12s %12s %12s %12s\n",
		"procs", "technique", "read(max)", "comm(max)", "total", "images read")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %-17s %12s %12s %12s %12d\n",
			r.Procs, r.Technique,
			r.ReadTime.Round(time.Millisecond),
			r.CommTime.Round(time.Millisecond),
			r.TotalTime.Round(time.Millisecond),
			r.ImagesRead)
	}
}
