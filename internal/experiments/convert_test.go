package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"ddr/internal/bov"
	"ddr/internal/mpi"
	"ddr/internal/tiff"
)

// TestConvertStackToBOV verifies the parallel format conversion: the bov
// volume must contain exactly the stack's pixels, slice by slice.
func TestConvertStackToBOV(t *testing.T) {
	const w, h, d, procs = 24, 16, 20, 6
	dir := t.TempDir()
	if err := tiff.WriteStack(dir, w, h, d, 16, tiff.FormatUint); err != nil {
		t.Fatal(err)
	}
	info, err := tiff.ProbeStack(dir)
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(t.TempDir(), "vol.bov")
	err = mpi.Launch(procs, func(c *mpi.Comm) error {
		res, err := ConvertStackToBOV(c, info, outPath)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && res.Bytes != int64(w*h*d*2) {
			t.Errorf("converted bytes %d", res.Bytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	v, err := bov.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	hdr := v.Header()
	if hdr.Dims != [3]int{w, h, d} || hdr.ElemSize != 2 {
		t.Fatalf("header %+v", hdr)
	}
	full, err := v.ReadBox(hdr.Domain())
	if err != nil {
		t.Fatal(err)
	}
	sliceBytes := w * h * 2
	for z := 0; z < d; z++ {
		img, err := tiff.ReadFile(tiff.SlicePath(dir, z))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full[z*sliceBytes:(z+1)*sliceBytes], img.Pixels) {
			t.Fatalf("slice %d differs in converted volume", z)
		}
	}
}
