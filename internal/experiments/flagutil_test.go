package experiments

import (
	"flag"
	"testing"
	"time"

	"ddr/internal/mpi"
)

// binaryFlagSet builds a FlagSet shaped like one of the command-line
// binaries: the binary's own flags first (both define -tcp themselves),
// then all three shared registrars — twice, which used to panic with
// "flag redefined" because the registrars defined their names
// unconditionally.
func binaryFlagSet(t *testing.T, name string, define func(fs *flag.FlagSet)) (*flag.FlagSet, func() (string, int), func(), func() error) {
	t.Helper()
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	define(fs)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: registrar composition panicked: %v", name, r)
		}
	}()
	applyTCP := RegisterTCPFlags(fs)
	resolve := RegisterTransportFlags(fs)
	applyChaos := RegisterChaosFlags(fs)
	// Second round: embedding tools (or a future shared config helper)
	// may install the same registrars again on the same set.
	RegisterTCPFlags(fs)
	resolve2 := RegisterTransportFlags(fs)
	RegisterChaosFlags(fs)
	_ = resolve2
	return fs, resolve, applyTCP, applyChaos
}

// TestFlagRegistrarsCompose is the regression test for the
// duplicate-flag panic: both binaries' flag shapes must accept all
// three registrars twice, parse, and resolve the values through
// whichever registration ran first.
func TestFlagRegistrarsCompose(t *testing.T) {
	// The apply funcs install process-wide defaults; restore the
	// fault-free, untuned state so later tests in this package are
	// unaffected.
	t.Cleanup(func() {
		mpi.SetDefaultFaultInjector(nil)
		mpi.SetDefaultTCPOptions(mpi.TCPOptions{})
	})
	t.Run("ddrbench", func(t *testing.T) {
		fs, resolve, applyTCP, applyChaos := binaryFlagSet(t, "ddrbench", func(fs *flag.FlagSet) {
			fs.Int("table", 0, "")
			fs.Bool("all", false, "")
			fs.String("out", "ddrbench-out", "")
			fs.Bool("tcp", false, "")
		})
		depth := RegisterPipelineFlags(fs)
		if again := RegisterPipelineFlags(fs); again == nil {
			t.Fatal("re-registering the pipeline flags returned no getter")
		}
		args := []string{
			"-transport=hier", "-nodes=3",
			"-tcp-queue=64", "-tcp-nagle",
			"-chaos-seed=7", "-chaos-drop=0.25", "-chaos-sever=0>1@5",
			"-pipeline-depth=4",
		}
		if err := fs.Parse(args); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if depth() != 4 {
			t.Fatalf("pipeline depth = %d, want 4", depth())
		}
		transport, nodes := resolve()
		if transport != "hier" || nodes != 3 {
			t.Fatalf("resolve() = (%q, %d), want (hier, 3)", transport, nodes)
		}
		applyTCP()
		if err := applyChaos(); err != nil {
			t.Fatalf("apply chaos: %v", err)
		}
	})
	t.Run("lbmsim", func(t *testing.T) {
		fs, resolve, applyTCP, applyChaos := binaryFlagSet(t, "lbmsim", func(fs *flag.FlagSet) {
			fs.Int("sim", 8, "")
			fs.Int("viz", 2, "")
			fs.String("role", "both", "")
			fs.String("fields", "vorticity", "")
			fs.Bool("tcp", false, "")
		})
		if err := fs.Parse([]string{"-sim=4", "-transport=shm", "-chaos-delay=0.1", "-chaos-delay-max=3ms"}); err != nil {
			t.Fatalf("parse: %v", err)
		}
		if transport, _ := resolve(); transport != "shm" {
			t.Fatalf("transport = %q, want shm", transport)
		}
		applyTCP()
		if err := applyChaos(); err != nil {
			t.Fatalf("apply chaos: %v", err)
		}
	})
}

// TestFlagRegistrarsAdoptExistingDefinition pins the reuse semantics:
// when the binary itself already defines a name a registrar wants, the
// registrar adopts that definition instead of panicking, and its getter
// reads the adopted flag's parsed value (falling back to the
// registrar's default when the foreign value does not parse).
func TestFlagRegistrarsAdoptExistingDefinition(t *testing.T) {
	fs := flag.NewFlagSet("adopt", flag.ContinueOnError)
	fs.String("nodes", "4", "binary-local spelling with a string type")
	resolve := RegisterTransportFlags(fs)
	if err := fs.Parse([]string{"-transport=tcp"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	transport, nodes := resolve()
	if transport != "tcp" || nodes != 4 {
		t.Fatalf("resolve() = (%q, %d), want (tcp, 4)", transport, nodes)
	}

	fs2 := flag.NewFlagSet("adopt2", flag.ContinueOnError)
	fs2.String("chaos-delay-max", "not-a-duration", "unparsable foreign value")
	apply := RegisterChaosFlags(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := apply(); err != nil {
		t.Fatalf("apply must fall back to the default on unparsable text: %v", err)
	}
}

// TestFlagGetterTypes covers each lookup-or-define helper round-trip.
func TestFlagGetterTypes(t *testing.T) {
	fs := flag.NewFlagSet("types", flag.ContinueOnError)
	i := flagGetInt(fs, "i", 3, "")
	u := flagGetUint64(fs, "u", 5, "")
	f := flagGetFloat64(fs, "f", 0.5, "")
	b := flagGetBool(fs, "b", false, "")
	s := flagGetString(fs, "s", "x", "")
	d := flagGetDuration(fs, "d", time.Second, "")
	if err := fs.Parse([]string{"-i=7", "-u=9", "-f=0.25", "-b", "-s=y", "-d=2ms"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if i() != 7 || u() != 9 || f() != 0.25 || !b() || s() != "y" || d() != 2*time.Millisecond {
		t.Fatalf("parsed getters: i=%d u=%d f=%v b=%v s=%q d=%v", i(), u(), f(), b(), s(), d())
	}
	// Defaults without parse-time overrides.
	fs2 := flag.NewFlagSet("defaults", flag.ContinueOnError)
	i2 := flagGetInt(fs2, "i", 3, "")
	d2 := flagGetDuration(fs2, "d", time.Second, "")
	if err := fs2.Parse(nil); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if i2() != 3 || d2() != time.Second {
		t.Fatalf("default getters: i=%d d=%v", i2(), d2())
	}
}
