package experiments

import (
	"bytes"
	"fmt"
	"image"
	"os"
	"path/filepath"
	"sync"

	"ddr/internal/colormap"
	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/lbm3d"
	"ddr/internal/mpi"
	"ddr/internal/render"
	"ddr/internal/transit"
)

// The 3D pipeline joins the paper's two use cases: an M-rank D3Q19
// simulation streams its speed volume in-transit to N analysis ranks,
// which use DDR to regrid the arriving z-slabs into near-cube rendering
// bricks (use case A's layout) and volume-render each frame (Figure 2's
// DVR) — live volumetric monitoring of a running 3D simulation.

// InTransit3DConfig parameterizes the volumetric pipeline.
type InTransit3DConfig struct {
	M, N          int
	W, H, D       int // simulation volume extents
	Iterations    int
	OutputEvery   int
	JPEGQuality   int
	OutDir        string // when non-empty, frames are written there
	Viscosity     float64
	InletVelocity float64
}

func (cfg *InTransit3DConfig) fillDefaults() {
	if cfg.JPEGQuality == 0 {
		cfg.JPEGQuality = 80
	}
	if cfg.Viscosity == 0 {
		cfg.Viscosity = 0.03
	}
	if cfg.InletVelocity == 0 {
		cfg.InletVelocity = 0.08
	}
}

// InTransit3DResult summarizes a volumetric pipeline run.
type InTransit3DResult struct {
	Frames         int
	RawBytes       int64 // float32 volume bytes that would have been written
	ProcessedBytes int64 // JPEG bytes produced
	ReductionPct   float64
	LastFrame      *image.RGBA
}

// speedTransfer builds a DVR transfer function for a speed field
// normalized around the inlet velocity u0: quiet flow is transparent,
// the slow wake renders cool and translucent, accelerated flow renders
// warm and denser.
func speedTransfer(u0 float64) render.TransferFunc {
	return func(v float64) (r, g, b, a float64) {
		dev := (v - u0) / u0 // relative deviation from free stream
		switch {
		case dev < -0.15: // wake / stagnation
			t := minF(1, (-dev-0.15)/0.85)
			return 0.2 + 0.3*t, 0.4 + 0.4*t, 0.9, 0.02 + 0.2*t
		case dev > 0.15: // accelerated flow around the obstacle
			t := minF(1, (dev-0.15)/0.85)
			return 0.9, 0.5 - 0.3*t, 0.2, 0.02 + 0.25*t
		default: // free stream: nearly invisible
			return 0, 0, 0, 0
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RunInTransit3D executes the volumetric pipeline on M+N in-process ranks.
func RunInTransit3D(cfg InTransit3DConfig) (*InTransit3DResult, error) {
	cfg.fillDefaults()
	if cfg.OutputEvery <= 0 || cfg.Iterations < cfg.OutputEvery {
		return nil, fmt.Errorf("experiments: need OutputEvery in (0, Iterations]")
	}
	params := lbm3d.Params{
		Width: cfg.W, Height: cfg.H, Depth: cfg.D,
		Viscosity:     cfg.Viscosity,
		InletVelocity: cfg.InletVelocity,
		Barrier:       lbm3d.SphereBarrier(cfg.W/4, cfg.H/2, cfg.D/2, cfg.H/6),
	}
	var (
		mu  sync.Mutex
		res *InTransit3DResult
	)
	err := mpi.Launch(cfg.M+cfg.N, func(world *mpi.Comm) error {
		cp, err := transit.NewCoupling(world, cfg.M, cfg.N)
		if err != nil {
			return err
		}
		if cp.Role == transit.Producer {
			return runProducer3D(cp, params, cfg)
		}
		r, err := runConsumer3D(cp, cfg)
		if err != nil {
			return err
		}
		if r != nil {
			mu.Lock()
			res = r
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: 3D consumer produced no result")
	}
	return res, nil
}

func runProducer3D(cp *transit.Coupling, params lbm3d.Params, cfg InTransit3DConfig) error {
	sim, err := lbm3d.NewParallel(cp.Local, params)
	if err != nil {
		return err
	}
	step := 0
	for it := 1; it <= cfg.Iterations; it++ {
		if err := sim.Step(); err != nil {
			return err
		}
		if it%cfg.OutputEvery != 0 {
			continue
		}
		payload, err := transit.EncodeFields([]string{"speed"}, [][]float32{sim.Slab.SpeedField()})
		if err != nil {
			return err
		}
		if err := cp.Send(step, payload); err != nil {
			return err
		}
		step++
	}
	return nil
}

func runConsumer3D(cp *transit.Coupling, cfg InTransit3DConfig) (*InTransit3DResult, error) {
	local := cp.Local
	domain := grid.Box3(0, 0, 0, cfg.W, cfg.H, cfg.D)
	starts := grid.SplitEven(cfg.D, cfg.M)
	slabBox := func(p int) grid.Box {
		return grid.Box3(0, 0, starts[p], cfg.W, cfg.H, starts[p+1]-starts[p])
	}
	nx, ny, nz := grid.Factor3(cfg.N)
	bricks := grid.Bricks3D(domain, nx, ny, nz)
	need := bricks[local.Rank()]

	lo, hi := cp.ProducersOf(local.Rank())
	myChunks := make([]grid.Box, 0, hi-lo)
	for p := lo; p < hi; p++ {
		myChunks = append(myChunks, slabBox(p))
	}
	desc, err := core.NewDescriptor(local.Size(), core.Layout3D, core.Float32)
	if err != nil {
		return nil, err
	}
	if err := desc.SetupDataMapping(local, myChunks, need); err != nil {
		return nil, err
	}

	tf := speedTransfer(cfg.InletVelocity)
	res := &InTransit3DResult{}
	needBuf := make([]float32, need.Volume())
	steps := cfg.Iterations / cfg.OutputEvery
	for step := 0; step < steps; step++ {
		msgs, err := cp.Recv(step)
		if err != nil {
			return nil, err
		}
		bufs := make([][]float32, len(msgs))
		for i, msg := range msgs {
			names, fields, err := transit.DecodeFields(msg.Data)
			if err != nil || len(names) != 1 || names[0] != "speed" {
				return nil, fmt.Errorf("experiments: bad 3D frame from producer %d: %v", msg.ProducerRank, err)
			}
			if len(fields[0]) != myChunks[i].Volume() {
				return nil, fmt.Errorf("experiments: slab from producer %d has %d values, want %d",
					msg.ProducerRank, len(fields[0]), myChunks[i].Volume())
			}
			bufs[i] = fields[0]
		}
		if err := desc.ReorganizeFloat32(local, bufs, needBuf); err != nil {
			return nil, err
		}

		partial, err := render.RenderBrick(render.Brick{Box: need, Values: needBuf}, tf)
		if err != nil {
			return nil, err
		}
		img, err := render.GatherComposite(local, 0, partial, cfg.W, cfg.H)
		if err != nil {
			return nil, err
		}
		if local.Rank() != 0 {
			continue
		}
		var jbuf bytes.Buffer
		if err := colormap.EncodeJPEG(&jbuf, img, cfg.JPEGQuality); err != nil {
			return nil, err
		}
		if cfg.OutDir != "" {
			path := filepath.Join(cfg.OutDir, fmt.Sprintf("volume_%04d.jpg", step))
			if err := os.WriteFile(path, jbuf.Bytes(), 0o644); err != nil {
				return nil, err
			}
		}
		res.Frames++
		res.RawBytes += int64(domain.Volume()) * 4
		res.ProcessedBytes += int64(jbuf.Len())
		res.LastFrame = img
	}
	if local.Rank() != 0 {
		return nil, nil
	}
	if res.RawBytes > 0 {
		res.ReductionPct = 100 * (1 - float64(res.ProcessedBytes)/float64(res.RawBytes))
	}
	return res, nil
}
