package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// A telemetry-attached in-transit run must leave behind the pipeline
// phase histograms for both roles, the DDR exchange series on the
// consumer ranks, message-layer counters on every rank, and a Perfetto
// export with one lane per world rank.
func TestInTransitTelemetry(t *testing.T) {
	const m, n = 4, 2
	tel := &Telemetry{Trace: trace.NewRecorder(), Metrics: obs.NewRegistry()}
	res, err := RunInTransit(InTransitConfig{
		M: m, N: n,
		GridW: 48, GridH: 36,
		Iterations:  30,
		OutputEvery: 10,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 {
		t.Fatalf("frames = %d, want 3", res.Frames)
	}

	phase := func(rank int, name string) int64 {
		return tel.Metrics.Histogram("pipeline_phase_seconds", "", nil,
			obs.RankLabel(rank), obs.Label{Key: "phase", Value: name}).Count()
	}
	// Producers are world ranks 0..m-1: one sim + one extract+send phase
	// per streamed step.
	for r := 0; r < m; r++ {
		if got := phase(r, "sim"); got != 3 {
			t.Errorf("producer %d sim phases = %d, want 3", r, got)
		}
		if got := phase(r, "extract+send"); got != 3 {
			t.Errorf("producer %d send phases = %d, want 3", r, got)
		}
	}
	// Consumers are world ranks m..m+n-1: recv/decode/regrid/gather per
	// step and field, plus one DDR exchange series each.
	for r := m; r < m+n; r++ {
		for _, name := range []string{"recv", "decode", "regrid", "gather"} {
			if got := phase(r, name); got != 3 {
				t.Errorf("consumer %d %s phases = %d, want 3", r, name, got)
			}
		}
		exch := tel.Metrics.Histogram("ddr_exchange_seconds", "", nil,
			obs.RankLabel(r), obs.Label{Key: "mode", Value: "alltoallw"})
		if exch.Count() != 3 {
			t.Errorf("consumer %d exchanges = %d, want 3", r, exch.Count())
		}
		if c := tel.Metrics.Histogram("ddr_plan_compile_seconds", "", nil, obs.RankLabel(r)); c.Count() != 1 {
			t.Errorf("consumer %d plan compiles = %d, want 1", r, c.Count())
		}
	}
	// Only consumer rank m renders (consumer-local rank 0).
	if got := phase(m, "render+encode"); got != 3 {
		t.Errorf("render phases = %d, want 3", got)
	}
	if got := phase(m+1, "render+encode"); got != 0 {
		t.Errorf("non-root consumer rendered %d frames", got)
	}
	// Every world rank moved bytes through the instrumented send path.
	for r := 0; r < m+n; r++ {
		if sent := tel.Metrics.Counter("mpi_wire_bytes_sent_total", "", obs.RankLabel(r)).Value(); sent <= 0 {
			t.Errorf("rank %d counted no sent bytes", r)
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, tel.Trace); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	lanes := map[int]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			lanes[e.Tid] = true
		}
	}
	for r := 0; r < m+n; r++ {
		if !lanes[r] {
			t.Errorf("no spans on world rank %d's lane", r)
		}
	}

	var prom bytes.Buffer
	if err := tel.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "# TYPE pipeline_phase_seconds histogram") {
		t.Error("Prometheus export missing pipeline_phase_seconds")
	}
}

// The ablation accepts an optional telemetry bundle and records one
// exchange series per (rank, mode) pair.
func TestAblationTelemetry(t *testing.T) {
	tel := &Telemetry{Metrics: obs.NewRegistry()}
	if _, err := ExchangeModeAblation(4, grid.Box3(0, 0, 0, 16, 16, 32), []int{1, 2}, 2, tel); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"alltoallw", "point-to-point", "point-to-point-fused"} {
		for r := 0; r < 4; r++ {
			h := tel.Metrics.Histogram("ddr_exchange_seconds", "", nil,
				obs.RankLabel(r), obs.Label{Key: "mode", Value: mode})
			// Two chunk counts x two reps each.
			if h.Count() != 4 {
				t.Errorf("mode %s rank %d exchanges = %d, want 4", mode, r, h.Count())
			}
		}
	}
}

// A nil telemetry bundle must be inert everywhere it can be passed.
func TestTelemetryNil(t *testing.T) {
	var tel *Telemetry
	if tel.enabled() {
		t.Error("nil telemetry reports enabled")
	}
	if opts := tel.coreOpts(); opts != nil {
		t.Errorf("nil telemetry produced options %v", opts)
	}
	tel.phase(0, "x")() // must not panic
	if _, err := ExchangeModeAblation(4, grid.Box3(0, 0, 0, 8, 8, 16), []int{1}, 1, nil); err != nil {
		t.Fatal(err)
	}
	_, flush, err := TelemetryFromFlags("", "", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}
