package experiments

import (
	"path/filepath"
	"testing"

	"ddr/internal/bov"
)

// TestRestartStudy runs the checkpoint/restart comparison at small scale:
// both strategies must agree with each other and the ground truth, and
// the slab strategy must need far fewer positional I/O operations.
func TestRestartStudy(t *testing.T) {
	h := bov.Header{Dims: [3]int{48, 24, 27}, ElemSize: 1}
	res, err := RunRestartStudy(filepath.Join(t.TempDir(), "ckpt.bov"), 8, 27, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatal("strategies disagree")
	}
	if res.SlabRuns != 27 {
		t.Errorf("slab runs = %d, want 27 (one per rank)", res.SlabRuns)
	}
	if res.DirectRuns <= 10*res.SlabRuns {
		t.Errorf("direct runs %d not much larger than slab runs %d", res.DirectRuns, res.SlabRuns)
	}
	if res.DirectTime <= 0 || res.SlabTime <= 0 {
		t.Error("missing timings")
	}
}

func TestRestartStudyRejectsWideElems(t *testing.T) {
	h := bov.Header{Dims: [3]int{8, 8, 8}, ElemSize: 4}
	if _, err := RunRestartStudy(filepath.Join(t.TempDir(), "x.bov"), 2, 2, h); err == nil {
		t.Error("4-byte elements accepted by 1-byte study")
	}
}
