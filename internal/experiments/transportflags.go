package experiments

import (
	"flag"
	"fmt"

	"ddr/internal/mpi"
)

// RegisterTransportFlags installs the transport-selection flags shared
// by the command-line binaries (-transport, -nodes) on fs and returns a
// function that, called after fs.Parse, resolves the selected transport
// name and node count. The empty transport means the in-process
// mailbox; "hier" emulates a multi-node placement: ranks are split
// across -nodes nodes, intra-node traffic rides shared-memory rings and
// each node's leader relays inter-node traffic over TCP. Registration is
// idempotent: a name fs already carries (from an earlier registrar call
// or the binary itself) is reused, never redefined.
func RegisterTransportFlags(fs *flag.FlagSet) (resolve func() (transport string, nodes int)) {
	transport := flagGetString(fs, "transport", "",
		"rank transport: inproc (default), tcp, shm, or hier (two-level leader relay)")
	nodes := flagGetInt(fs, "nodes", 2,
		"emulated node count for -transport=hier (ranks are split contiguously)")
	return func() (string, int) { return transport(), nodes() }
}

// transportLaunchOpts maps a transport name and node count to the
// launch options the experiment worlds pass to mpi.Launch. ranks is the
// world size, needed to build the hier placement.
func transportLaunchOpts(transport string, nodes, ranks int) ([]mpi.LaunchOption, error) {
	switch transport {
	case "", "inproc":
		return nil, nil
	case "tcp":
		return []mpi.LaunchOption{mpi.WithTransport(mpi.TransportTCP)}, nil
	case "shm":
		return []mpi.LaunchOption{mpi.WithTransport(mpi.TransportShm)}, nil
	case "hier":
		if nodes < 1 {
			return nil, fmt.Errorf("experiments: -transport=hier needs nodes >= 1, have %d", nodes)
		}
		return []mpi.LaunchOption{
			mpi.WithTransport(mpi.TransportShm),
			mpi.WithTopology(mpi.NodesOf(ranks, nodes)),
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown transport %q (have inproc, tcp, shm, hier)", transport)
	}
}
