package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"ddr/internal/bov"
	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// RestartResult summarizes a checkpoint/restart study: a volume written
// as bricks by one world is re-read by a differently-sized world that
// needs bricks, either directly (strided reads) or as slabs followed by a
// DDR redistribution — the paper's producer-layout vs consumer-layout
// story on a file substrate.
type RestartResult struct {
	WriteProcs, ReadProcs int

	DirectRuns int           // total positional I/O ops, direct brick reads
	SlabRuns   int           // total positional I/O ops, slab reads
	DirectTime time.Duration // max across ranks
	SlabTime   time.Duration // max across ranks (read + redistribute)
	Match      bool          // both strategies produced identical bricks
}

// RunRestartStudy writes a synthetic volume checkpoint with writeProcs
// ranks (brick layout), then restarts it on readProcs ranks comparing the
// direct strided brick read against the slab-read + DDR approach.
func RunRestartStudy(path string, writeProcs, readProcs int, h bov.Header) (*RestartResult, error) {
	if h.ElemSize != 1 {
		return nil, fmt.Errorf("experiments: restart study uses 1-byte elements, got %d", h.ElemSize)
	}
	f, err := bov.Create(path, h)
	if err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	domain := h.Domain()
	value := func(x, y, z int) byte { return byte(x + 5*y + 11*z) }
	fill := func(box grid.Box) []byte {
		out := make([]byte, box.Volume())
		i := 0
		for z := 0; z < box.Dims[2]; z++ {
			for y := 0; y < box.Dims[1]; y++ {
				for x := 0; x < box.Dims[0]; x++ {
					out[i] = value(box.Offset[0]+x, box.Offset[1]+y, box.Offset[2]+z)
					i++
				}
			}
		}
		return out
	}

	// Phase 1: checkpoint written as bricks by writeProcs ranks.
	wx, wy, wz := grid.Factor3(writeProcs)
	writeBricks := grid.Bricks3D(domain, wx, wy, wz)
	err = mpi.Launch(writeProcs, func(c *mpi.Comm) error {
		v, err := bov.Open(path)
		if err != nil {
			return err
		}
		defer v.Close()
		return v.WriteBox(writeBricks[c.Rank()], fill(writeBricks[c.Rank()]))
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: restart on readProcs ranks needing bricks.
	rx, ry, rz := grid.Factor3(readProcs)
	readBricks := grid.Bricks3D(domain, rx, ry, rz)
	slabs := grid.Slabs(domain, 2, readProcs)

	res := &RestartResult{WriteProcs: writeProcs, ReadProcs: readProcs, Match: true}
	var mu sync.Mutex
	err = mpi.Launch(readProcs, func(c *mpi.Comm) error {
		v, err := bov.Open(path)
		if err != nil {
			return err
		}
		defer v.Close()
		brick := readBricks[c.Rank()]
		slab := slabs[c.Rank()]

		// Strategy A: direct strided brick read.
		start := time.Now()
		direct, err := v.ReadBox(brick)
		if err != nil {
			return err
		}
		directTime := time.Since(start)

		// Strategy B: one sequential slab read, then DDR to bricks.
		start = time.Now()
		slabData, err := v.ReadBox(slab)
		if err != nil {
			return err
		}
		desc, err := core.NewDescriptor(c.Size(), core.Layout3D, core.Uint8, core.WithElemSize(1))
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, []grid.Box{slab}, brick); err != nil {
			return err
		}
		viaDDR := make([]byte, brick.Volume())
		if err := desc.ReorganizeData(c, [][]byte{slabData}, viaDDR); err != nil {
			return err
		}
		slabTime := time.Since(start)

		match := bytes.Equal(direct, viaDDR) && bytes.Equal(direct, fill(brick))
		dMax, err := maxDuration(c, directTime)
		if err != nil {
			return err
		}
		sMax, err := maxDuration(c, slabTime)
		if err != nil {
			return err
		}
		runs, err := c.AllreduceInt64([]int64{int64(v.RunCount(brick)), int64(v.RunCount(slab))}, mpi.OpSum)
		if err != nil {
			return err
		}
		mu.Lock()
		if !match {
			res.Match = false
		}
		if c.Rank() == 0 {
			res.DirectTime = dMax
			res.SlabTime = sMax
			res.DirectRuns = int(runs[0])
			res.SlabRuns = int(runs[1])
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
