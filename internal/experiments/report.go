package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable2 renders Table II (modelled vs paper) as aligned text.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II: TIFF load time (seconds) — model vs paper measurement")
	fmt.Fprintf(w, "%-8s %22s %22s %22s\n", "procs", "No DDR", "DDR (round-robin)", "DDR (consecutive)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %10.1f /%9.1f %10.1f /%9.1f %10.1f /%9.1f\n",
			r.Procs, r.NoDDR, r.PaperNoDDR, r.RoundRobin, r.PaperRR, r.Consec, r.PaperCons)
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(w, "headline speedup at %d procs: %.1fx (paper: 24.9x)\n",
		last.Procs, last.NoDDR/last.Consec)
}

// WriteTable3 renders Table III (exact schedules vs paper).
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: MPI_Alltoallw scheduling — exact plan vs paper")
	fmt.Fprintf(w, "%-8s %28s %28s\n", "procs", "consecutive rounds/MiB", "round-robin rounds/MiB")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %6d %8.2f /%8.2f %8d %8.2f /%8.2f\n",
			r.Procs, r.ConsRounds, r.ConsMiB, r.PaperConsMiB,
			r.RRRounds, r.RRMiB, r.PaperRRMiB)
	}
}

// WriteFigure3 renders the Figure 3 strong-scaling series, including a
// simple log-scale ASCII plot.
func WriteFigure3(w io.Writer, s *Figure3Series) {
	fmt.Fprintln(w, "Figure 3: strong scaling of parallel TIFF loading (seconds, log3 process axis)")
	fmt.Fprintf(w, "%-8s %12s %14s %14s\n", "procs", "No DDR", "round-robin", "consecutive")
	for i := range s.Procs {
		fmt.Fprintf(w, "%-8d %12.1f %14.1f %14.1f\n", s.Procs[i], s.NoDDR[i], s.RoundRobin[i], s.Consec[i])
	}
	// ASCII sparkline per series on a log10 axis from 1s to 1000s.
	plot := func(name string, vals []float64) {
		var sb strings.Builder
		for _, v := range vals {
			const width = 40
			pos := 0
			if v > 1 {
				pos = int(width / 3 * log10(v))
			}
			if pos > width {
				pos = width
			}
			sb.WriteString(fmt.Sprintf("|%s*%s| %7.1fs  ", strings.Repeat("-", pos), strings.Repeat(" ", width-pos), v))
		}
		fmt.Fprintf(w, "%-14s %s\n", name, sb.String())
	}
	plot("No DDR", s.NoDDR)
	plot("round-robin", s.RoundRobin)
	plot("consecutive", s.Consec)
}

func log10(v float64) float64 {
	// Tiny local helper to avoid importing math for one call site chain.
	l := 0.0
	for v >= 10 {
		v /= 10
		l++
	}
	// Linear interpolation within the decade is plenty for an ASCII plot.
	return l + (v-1)/9
}

// WriteTable4 renders Table IV (projected vs paper).
func WriteTable4(w io.Writer, rows []Table4Row, bytesPerPixel float64) {
	fmt.Fprintf(w, "Table IV: data size on disk, %d saved steps (measured JPEG density %.4f B/px)\n",
		rows[0].Steps, bytesPerPixel)
	fmt.Fprintf(w, "%-16s %16s %18s %24s\n", "grid", "raw size", "processed size", "reduction (ours/paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d x %-7d %13.1f GB %15.1f MB %10.2f%% / %6.2f%%\n",
			r.W, r.H,
			float64(r.RawBytes)/1e9,
			float64(r.ProcessedBytes)/1e6,
			r.ReductionPct, r.PaperReductionPct)
	}
}
