package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"ddr/internal/colormap"
	"ddr/internal/grid"
	"ddr/internal/lbm"
	"ddr/internal/mpi"
)

// The paper's §II-C distinguishes two couplings for live analysis:
// in-situ (analysis runs on the simulation's own ranks, stealing cycles
// from it) and in-transit (analysis runs on separate ranks fed over the
// network, where DDR regrids the arriving data). RunInSitu implements the
// former so the two can be compared on identical workloads.

// InSituResult summarizes an in-situ run.
type InSituResult struct {
	Frames         int
	SimTime        time.Duration // max across ranks, time inside Step
	RenderTime     time.Duration // max across ranks, time in render+encode
	WallTime       time.Duration
	ProcessedBytes int64
}

// RunInSitu runs the LBM on M ranks that also render: every OutputEvery
// iterations the simulation pauses, each rank colors its own slab of the
// vorticity field, rank 0 gathers the strips and JPEG-encodes the frame.
// No redistribution is needed — the render consumes the simulation's own
// slab layout — but the simulation stalls for every frame.
func RunInSitu(cfg InTransitConfig) (*InSituResult, error) {
	cfg.fillDefaults()
	if cfg.OutputEvery <= 0 || cfg.Iterations < cfg.OutputEvery {
		return nil, fmt.Errorf("experiments: need OutputEvery in (0, Iterations]")
	}
	params := lbm.Params{
		Width:         cfg.GridW,
		Height:        cfg.GridH,
		Viscosity:     cfg.Viscosity,
		InletVelocity: cfg.InletVelocity,
		Barrier:       lbm.CylinderBarrier(cfg.GridW/4, cfg.GridH/2, cfg.GridH/9),
	}
	var (
		mu  sync.Mutex
		res *InSituResult
	)
	wallStart := time.Now()
	err := mpi.Launch(cfg.M, func(c *mpi.Comm) error {
		sim, err := lbm.NewParallel(c, params)
		if err != nil {
			return err
		}
		starts := grid.SplitEven(cfg.GridH, cfg.M)
		local := &InSituResult{}
		var simTime, renderTime time.Duration
		for it := 1; it <= cfg.Iterations; it++ {
			t0 := time.Now()
			if err := sim.Step(); err != nil {
				return err
			}
			simTime += time.Since(t0)
			if it%cfg.OutputEvery != 0 {
				continue
			}
			t0 = time.Now()
			vort, err := sim.Vorticity()
			if err != nil {
				return err
			}
			// Gather slab fields at rank 0 and encode.
			parts, err := c.Gather(0, lbm.Float32sToBytes(vort))
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				field := make([]float32, cfg.GridW*cfg.GridH)
				for r, part := range parts {
					copy(field[starts[r]*cfg.GridW:], lbm.BytesToFloat32s(part))
				}
				lo, hi := colormap.SymmetricRange(field)
				img, err := colormap.FieldToImage(field, cfg.GridW, cfg.GridH, lo, hi, colormap.BlueWhiteRed)
				if err != nil {
					return err
				}
				var jbuf bytes.Buffer
				if err := colormap.EncodeJPEG(&jbuf, img, cfg.JPEGQuality); err != nil {
					return err
				}
				local.Frames++
				local.ProcessedBytes += int64(jbuf.Len())
			}
			renderTime += time.Since(t0)
		}
		simMax, err := maxDuration(c, simTime)
		if err != nil {
			return err
		}
		renderMax, err := maxDuration(c, renderTime)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			local.SimTime = simMax
			local.RenderTime = renderMax
			res = local
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("experiments: in-situ run produced no result")
	}
	res.WallTime = time.Since(wallStart)
	return res, nil
}

// CouplingComparison pairs the two modes on the same workload.
type CouplingComparison struct {
	InSitu    *InSituResult
	InTransit *InTransitResult
	// InTransitWall is the wall time of the in-transit run (its sim ranks
	// overlap with rendering on the analysis ranks).
	InTransitWall time.Duration
}

// CompareCouplings runs the identical simulation workload in-situ (M
// ranks) and in-transit (M sim + N analysis ranks) and reports both.
func CompareCouplings(cfg InTransitConfig) (*CouplingComparison, error) {
	insitu, err := RunInSitu(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	intransit, err := RunInTransit(cfg)
	if err != nil {
		return nil, err
	}
	return &CouplingComparison{
		InSitu:        insitu,
		InTransit:     intransit,
		InTransitWall: time.Since(start),
	}, nil
}
