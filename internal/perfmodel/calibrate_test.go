package perfmodel

import (
	"math"
	"testing"
)

// paperObservations encodes the paper's Table II measurements with the
// Table III schedules (MiB converted to bytes).
func paperObservations() []Observation {
	const mib = 1 << 20
	return []Observation{
		{Procs: 27, NZ: 3, RRRounds: 152, RRBytes: 30.81 * mib, ConsRounds: 1, ConsBytes: 4315.12 * mib,
			NoDDRSec: 283.0, RRSec: 39.3, ConsSec: 49.2},
		{Procs: 64, NZ: 4, RRRounds: 64, RRBytes: 31.50 * mib, ConsRounds: 1, ConsBytes: 1920.00 * mib,
			NoDDRSec: 204.6, RRSec: 18.9, ConsSec: 18.9},
		{Procs: 125, NZ: 5, RRRounds: 33, RRBytes: 31.74 * mib, ConsRounds: 1, ConsBytes: 1006.63 * mib,
			NoDDRSec: 188.2, RRSec: 11.1, ConsSec: 10.4},
		{Procs: 216, NZ: 6, RRRounds: 19, RRBytes: 31.85 * mib, ConsRounds: 1, ConsBytes: 589.95 * mib,
			NoDDRSec: 165.3, RRSec: 9.7, ConsSec: 6.6},
	}
}

func paperWorkload() TIFFWorkload {
	return TIFFWorkload{NumImages: 4096, ImageBytes: 4096 * 2048 * 4}
}

func TestCooleyLossIsSmall(t *testing.T) {
	l := Loss(Cooley(), paperWorkload(), paperObservations())
	// Mean squared relative error under 0.05 means a typical row is within
	// ~22% of the paper.
	if l > 0.05 {
		t.Errorf("Cooley loss %.4f exceeds 0.05", l)
	}
}

func TestLossDegenerateCases(t *testing.T) {
	m := Cooley()
	m.A2ABandwidthMax = -1
	if !math.IsInf(Loss(m, paperWorkload(), paperObservations()), 1) {
		t.Error("invalid machine did not yield infinite loss")
	}
	if !math.IsInf(Loss(Cooley(), paperWorkload(), nil), 1) {
		t.Error("no observations did not yield infinite loss")
	}
	// Zero-time observations are skipped, not divided by.
	obs := []Observation{{Procs: 8, NZ: 2, RRRounds: 1, ConsRounds: 1}}
	if !math.IsInf(Loss(Cooley(), paperWorkload(), obs), 1) {
		t.Error("all-zero observation should contribute nothing")
	}
}

// TestCalibrateRecoversFromPerturbation starts from a badly perturbed
// machine and must descend back to a fit at least as good as the shipped
// calibration (within slack).
func TestCalibrateRecoversFromPerturbation(t *testing.T) {
	w := paperWorkload()
	obs := paperObservations()
	start := Cooley()
	start.FSProcBandwidth *= 4
	start.A2ABandwidthMax /= 5
	start.A2ALatencyPerRank *= 10
	startLoss := Loss(start, w, obs)

	fitted := Calibrate(w, obs, start, 200)
	fittedLoss := Loss(fitted, w, obs)
	if fittedLoss >= startLoss {
		t.Fatalf("calibration did not improve: %.4f -> %.4f", startLoss, fittedLoss)
	}
	cooleyLoss := Loss(Cooley(), w, obs)
	if fittedLoss > cooleyLoss*1.5 {
		t.Errorf("fitted loss %.4f much worse than shipped calibration %.4f", fittedLoss, cooleyLoss)
	}
	if err := fitted.Validate(); err != nil {
		t.Errorf("fitted machine invalid: %v", err)
	}
}

func TestCalibrateIsDeterministic(t *testing.T) {
	w := paperWorkload()
	obs := paperObservations()
	a := Calibrate(w, obs, Cooley(), 50)
	b := Calibrate(w, obs, Cooley(), 50)
	if a != b {
		t.Error("calibration is not deterministic")
	}
}
