package perfmodel

import "math"

// Observation is one measured row of a TIFF-loading study (the shape of
// the paper's Table II): wall-clock seconds for the baseline and both DDR
// techniques at one scale, together with the exact schedule quantities the
// library computes for that scale.
type Observation struct {
	Procs int
	NZ    int // brick layers along the slice axis (baseline read divisor)

	RRRounds   int
	RRBytes    float64 // wire bytes per rank per round, round-robin
	ConsRounds int
	ConsBytes  float64 // wire bytes per rank per round, consecutive

	NoDDRSec, RRSec, ConsSec float64 // measured seconds
}

// Loss returns the mean squared relative error of the model against the
// observations (lower is better; 0 is a perfect fit).
func Loss(m Machine, w TIFFWorkload, obs []Observation) float64 {
	if m.Validate() != nil {
		return math.Inf(1)
	}
	var sum float64
	var n int
	for _, o := range obs {
		pairs := [][2]float64{
			{m.LoadNoDDR(w, o.Procs, o.NZ), o.NoDDRSec},
			{m.LoadDDR(w, o.Procs, o.RRRounds, o.RRBytes), o.RRSec},
			{m.LoadDDR(w, o.Procs, o.ConsRounds, o.ConsBytes), o.ConsSec},
		}
		for _, p := range pairs {
			if p[1] <= 0 {
				continue
			}
			e := (p[0] - p[1]) / p[1]
			sum += e * e
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// Calibrate fits the machine parameters to the observations by
// multiplicative coordinate descent from start: each sweep tries scaling
// every parameter up and down by a factor that shrinks over the sweeps,
// keeping any change that lowers the loss. It is deterministic and needs
// no gradients; the model is smooth and low-dimensional enough that this
// converges in a few dozen sweeps.
func Calibrate(w TIFFWorkload, obs []Observation, start Machine, sweeps int) Machine {
	best := start
	bestLoss := Loss(best, w, obs)
	params := []*float64{
		&best.FileOpenLatency,
		&best.FSProcBandwidth,
		&best.FSContentionProcs,
		&best.A2ALatencyBase,
		&best.A2ALatencyPerRank,
		&best.A2ABandwidthMax,
		&best.A2AVolumeHalf,
	}
	step := 1.5
	for s := 0; s < sweeps; s++ {
		improved := false
		for _, p := range params {
			orig := *p
			for _, factor := range [2]float64{step, 1 / step} {
				*p = orig * factor
				if l := Loss(best, w, obs); l < bestLoss {
					bestLoss = l
					improved = true
					orig = *p
				} else {
					*p = orig
				}
			}
		}
		if !improved {
			step = math.Sqrt(step)
			if step < 1.001 {
				break
			}
		}
	}
	return best
}
