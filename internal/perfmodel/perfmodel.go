// Package perfmodel is a calibrated analytic performance model of the
// machine the paper evaluated on (Argonne's Cooley visualization cluster:
// 126 nodes, FDR InfiniBand with one 56 Gbps link per node, GPFS shared
// storage). The experiments in this repository run the real DDR algorithm
// at laptop scale; this model projects the paper-scale timings of Table II
// and Figure 3 from the *exact* communication schedules the library
// computes (rounds and bytes per rank per round — the quantities of
// Table III, which need no model at all).
//
// The model has two parts:
//
//   - File ingest: reading + decoding one TIFF costs an open latency plus
//     bytes over a per-process effective filesystem bandwidth that
//     degrades mildly as more processes hammer the shared filesystem.
//
//   - Alltoallw rounds: each call costs a latency that grows with the
//     number of ranks (collective software overhead) plus the per-rank
//     payload over an effective bandwidth that saturates as per-rank
//     volume grows (incast/link contention — the effect the paper uses to
//     explain why consecutive single-round exchanges underperform at
//     small scale while many small round-robin rounds pay per-call
//     overhead at large scale).
//
// Constants were calibrated once against the twelve (technique, scale)
// measurements of the paper's Table II; EXPERIMENTS.md records the fit.
package perfmodel

import (
	"fmt"
	"math"
)

// Machine holds the model parameters. All rates are bytes/second and all
// latencies seconds.
type Machine struct {
	Name string

	// File ingest.
	FileOpenLatency   float64 // per-file open+stat cost
	FSProcBandwidth   float64 // per-process read+decode bandwidth, uncontended
	FSContentionProcs float64 // process count at which bandwidth is halved... doubled degradation scale

	// Alltoallw.
	A2ALatencyBase    float64 // fixed software cost per collective call
	A2ALatencyPerRank float64 // additional cost per participating rank
	A2ABandwidthMax   float64 // per-rank effective bandwidth at small volume
	A2AVolumeHalf     float64 // per-rank volume at which bandwidth halves
}

// Cooley returns the model calibrated against the paper's Table II.
func Cooley() Machine {
	return Machine{
		Name:              "cooley",
		FileOpenLatency:   5e-3,
		FSProcBandwidth:   168e6,
		FSContentionProcs: 900,
		A2ALatencyBase:    2e-3,
		A2ALatencyPerRank: 7e-4,
		A2ABandwidthMax:   620e6,
		A2AVolumeHalf:     1.5e9,
	}
}

// Validate reports whether all parameters are physical.
func (m Machine) Validate() error {
	for name, v := range map[string]float64{
		"FileOpenLatency":   m.FileOpenLatency,
		"FSProcBandwidth":   m.FSProcBandwidth,
		"FSContentionProcs": m.FSContentionProcs,
		"A2ALatencyBase":    m.A2ALatencyBase,
		"A2ALatencyPerRank": m.A2ALatencyPerRank,
		"A2ABandwidthMax":   m.A2ABandwidthMax,
		"A2AVolumeHalf":     m.A2AVolumeHalf,
	} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("perfmodel: %s = %g must be positive and finite", name, v)
		}
	}
	return nil
}

// PerImageTime returns the modelled seconds to open, read, and decode one
// image of imageBytes when p processes are loading concurrently.
func (m Machine) PerImageTime(p int, imageBytes int64) float64 {
	eff := m.FSProcBandwidth / (1 + float64(p)/m.FSContentionProcs)
	return m.FileOpenLatency + float64(imageBytes)/eff
}

// AlltoallwTime returns the modelled seconds for one alltoallw round in
// which each of p ranks sends and receives bytesPerRank.
func (m Machine) AlltoallwTime(p int, bytesPerRank float64) float64 {
	if bytesPerRank <= 0 {
		return m.A2ALatencyBase + m.A2ALatencyPerRank*float64(p)
	}
	bw := m.A2ABandwidthMax / (1 + bytesPerRank/m.A2AVolumeHalf)
	return m.A2ALatencyBase + m.A2ALatencyPerRank*float64(p) + bytesPerRank/bw
}

// TIFFWorkload describes a slice-stack loading experiment.
type TIFFWorkload struct {
	NumImages  int
	ImageBytes int64
}

// TotalBytes returns the full stack size.
func (w TIFFWorkload) TotalBytes() int64 { return int64(w.NumImages) * w.ImageBytes }

// LoadNoDDR models the baseline: the volume is split into near-cube bricks
// over p processes (nz slabs deep), and every process reads and decodes
// every image its brick intersects — numImages/nz of them, with whole
// images decoded regardless of how few pixels are needed (the cost the
// paper's §IV-A describes).
func (m Machine) LoadNoDDR(w TIFFWorkload, p, nz int) float64 {
	imagesPerProc := math.Ceil(float64(w.NumImages) / float64(nz))
	return imagesPerProc * m.PerImageTime(p, w.ImageBytes)
}

// LoadDDR models a DDR-assisted load: each process reads numImages/p
// images once, then the redistribution runs `rounds` alltoallw calls
// moving bytesPerRankRound per rank per round (taken from the exact plan
// statistics, core.Plan.Stats).
func (m Machine) LoadDDR(w TIFFWorkload, p, rounds int, bytesPerRankRound float64) float64 {
	imagesPerProc := math.Ceil(float64(w.NumImages) / float64(p))
	read := imagesPerProc * m.PerImageTime(p, w.ImageBytes)
	comm := 0.0
	for r := 0; r < rounds; r++ {
		comm += m.AlltoallwTime(p, bytesPerRankRound)
	}
	return read + comm
}
