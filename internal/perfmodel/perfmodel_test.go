package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCooleyValid(t *testing.T) {
	if err := Cooley().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	m := Cooley()
	m.A2ABandwidthMax = 0
	if err := m.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	m = Cooley()
	m.FSProcBandwidth = math.NaN()
	if err := m.Validate(); err == nil {
		t.Error("NaN bandwidth accepted")
	}
}

func TestPerImageTimeMonotoneInProcs(t *testing.T) {
	m := Cooley()
	const img = 32 << 20
	prev := 0.0
	for _, p := range []int{1, 27, 64, 125, 216} {
		v := m.PerImageTime(p, img)
		if v <= prev {
			t.Errorf("per-image time not increasing with contention at p=%d", p)
		}
		prev = v
	}
}

func TestAlltoallwTimeProperties(t *testing.T) {
	m := Cooley()
	// Zero payload still costs the call latency.
	if got := m.AlltoallwTime(64, 0); got <= 0 {
		t.Errorf("zero-payload time %f", got)
	}
	// More data can never be faster.
	f := func(a, b uint32) bool {
		va, vb := float64(a), float64(b)
		if va > vb {
			va, vb = vb, va
		}
		return m.AlltoallwTime(27, va) <= m.AlltoallwTime(27, vb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Effective bandwidth degrades with volume: time for 2V exceeds twice
	// the transfer-only time of V is not required, but the per-byte cost
	// must grow.
	v1, v2 := 32.0e6, 4.0e9
	perByte1 := (m.AlltoallwTime(27, v1) - m.AlltoallwTime(27, 0)) / v1
	perByte2 := (m.AlltoallwTime(27, v2) - m.AlltoallwTime(27, 0)) / v2
	if perByte2 <= perByte1 {
		t.Errorf("no contention penalty: %g vs %g s/B", perByte1, perByte2)
	}
	// Latency grows with rank count.
	if m.AlltoallwTime(216, 0) <= m.AlltoallwTime(27, 0) {
		t.Error("call latency does not grow with ranks")
	}
}

func TestLoadNoDDRVsDDR(t *testing.T) {
	m := Cooley()
	w := TIFFWorkload{NumImages: 4096, ImageBytes: 4096 * 2048 * 4}
	if w.TotalBytes() != 137438953472 {
		t.Fatalf("total bytes %d", w.TotalBytes())
	}
	// The headline claim: at 216 processes DDR must beat the baseline by
	// an order of magnitude.
	noDDR := m.LoadNoDDR(w, 216, 6)
	ddr := m.LoadDDR(w, 216, 1, 589.95*(1<<20))
	if noDDR/ddr < 10 {
		t.Errorf("speedup %0.1fx, expected >10x", noDDR/ddr)
	}
	// DDR load time must strong-scale (decrease with more processes).
	prev := math.Inf(1)
	for _, pc := range []struct{ p, nz, rounds int }{
		{27, 3, 1}, {64, 4, 1}, {125, 5, 1}, {216, 6, 1},
	} {
		bytesPer := float64(w.TotalBytes()) / float64(pc.p) * 0.9
		v := m.LoadDDR(w, pc.p, pc.rounds, bytesPer)
		if v >= prev {
			t.Errorf("DDR time not strong-scaling at p=%d: %f >= %f", pc.p, v, prev)
		}
		prev = v
	}
}
