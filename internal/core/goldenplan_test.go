package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden plan fixtures under testdata/")

// Golden-plan fixtures pin the full compiled exchange schedule — rounds,
// per-round peer lists, per-entry packed sizes and contiguity spans, and
// the fused schedule — for one representative geometry per layout
// dimensionality, in the shape of the paper's mapping cases. Any change
// to the geometry/mapping math shows up as a fixture diff instead of
// silently reshaping the traffic. Regenerate with: go test ./internal/core
// -run TestGoldenPlans -update.

// goldenDTO is the whole fixture: per-rank plan summaries (the canonical
// JSON shape from planjson.go) plus the global schedule stats (identical
// on every rank, recorded once).
type goldenDTO struct {
	Stats ScheduleStats `json:"stats"`
	Plans []PlanSummary `json:"plans"`
}

// goldenCase is one named geometry in the shape of the paper's cases.
type goldenCase struct {
	name     string
	layout   Layout
	elemSize int
	chunks   [][]grid.Box
	needs    []grid.Box
}

func goldenCases() []goldenCase {
	cases := []goldenCase{}

	// 1D block redistribution: four ranks each own a 16-cell block of a
	// 64-cell line (rank 0's split in two, forcing a second round) and
	// need the reversed block assignment.
	c1 := goldenCase{name: "1d_blocks", layout: Layout1D, elemSize: 8}
	c1.chunks = [][]grid.Box{
		{grid.MustBox([]int{0}, []int{8}), grid.MustBox([]int{8}, []int{8})},
		{grid.MustBox([]int{16}, []int{16})},
		{grid.MustBox([]int{32}, []int{16})},
		{grid.MustBox([]int{48}, []int{16})},
	}
	for r := 0; r < 4; r++ {
		c1.needs = append(c1.needs, grid.MustBox([]int{16 * (3 - r)}, []int{16}))
	}
	cases = append(cases, c1)

	// 2D slab-to-rectangle regrid in the shape of the paper's Figure 5:
	// ten horizontal 640x40 simulation slabs regridded onto ten vertical
	// 64x400 analysis strips.
	c2 := goldenCase{name: "2d_regrid", layout: Layout2D, elemSize: 4}
	for r := 0; r < 10; r++ {
		c2.chunks = append(c2.chunks, []grid.Box{
			grid.MustBox([]int{0, 40 * r}, []int{640, 40}),
		})
		c2.needs = append(c2.needs, grid.MustBox([]int{64 * r, 0}, []int{64, 400}))
	}
	cases = append(cases, c2)

	// 3D block-to-slab: eight ranks own the 2x2x2 block decomposition of
	// a 64^3 volume (the paper's E1 shape) and need z-slabs.
	c3 := goldenCase{name: "3d_blocks", layout: Layout3D, elemSize: 2}
	for r := 0; r < 8; r++ {
		c3.chunks = append(c3.chunks, []grid.Box{
			grid.MustBox([]int{32 * (r & 1), 32 * ((r >> 1) & 1), 32 * ((r >> 2) & 1)}, []int{32, 32, 32}),
		})
		c3.needs = append(c3.needs, grid.MustBox([]int{0, 0, 8 * r}, []int{64, 64, 8}))
	}
	cases = append(cases, c3)

	return cases
}

func TestGoldenPlans(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			n := len(gc.chunks)
			plans := make([]PlanSummary, n)
			var stats ScheduleStats
			var mu sync.Mutex
			err := mpi.Launch(n, func(c *mpi.Comm) error {
				d, err := NewDescriptor(n, gc.layout, Uint8, WithElemSize(gc.elemSize))
				if err != nil {
					return err
				}
				if err := d.SetupDataMapping(c, gc.chunks[c.Rank()], gc.needs[c.Rank()]); err != nil {
					return err
				}
				mu.Lock()
				plans[c.Rank()] = d.Plan().Summary()
				if c.Rank() == 0 {
					stats = d.Plan().Stats()
				}
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(goldenDTO{Stats: stats, Plans: plans}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_plan_"+gc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("compiled plan diverges from %s;\nif the mapping change is intentional, regenerate with -update\ngot:\n%s", path, got)
			}
		})
	}
}
