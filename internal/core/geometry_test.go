package core

import (
	"bytes"
	"strings"
	"testing"

	"ddr/internal/grid"
)

func e1GlobalGeometry() ([][]grid.Box, []grid.Box) {
	allChunks := make([][]grid.Box, 4)
	allNeeds := make([]grid.Box, 4)
	for r := 0; r < 4; r++ {
		allChunks[r], allNeeds[r] = e1Geometry(r)
	}
	return allChunks, allNeeds
}

func TestGeometrySaveLoadRoundTrip(t *testing.T) {
	allChunks, allNeeds := e1GlobalGeometry()
	plan, err := NewPlanFromGeometry(0, 4, allChunks, allNeeds)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.Geometry().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "elem_size") {
		t.Error("JSON missing elem_size")
	}
	g, err := LoadGeometry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replan, err := g.Plan(0)
	if err != nil {
		t.Fatal(err)
	}
	orig := plan.Stats()
	got := replan.Stats()
	if orig != got {
		t.Errorf("stats changed across save/load: %+v vs %+v", orig, got)
	}
	if replan.Rounds() != 2 {
		t.Errorf("rounds %d", replan.Rounds())
	}
}

func TestLoadGeometryValidation(t *testing.T) {
	cases := []string{
		"not json",
		`{"elem_size":0,"chunks":[],"needs":[]}`,
		`{"elem_size":4,"chunks":[[]],"needs":[]}`,
		`{"elem_size":4,"chunks":[],"needs":[]}`,
	}
	for i, c := range cases {
		if _, err := LoadGeometry(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Malformed box inside an otherwise valid geometry.
	bad := `{"elem_size":4,"chunks":[[{"offset":[0],"dims":[1,2]}]],"needs":[{"offset":[0],"dims":[4]}]}`
	g, err := LoadGeometry(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Plan(0); err == nil {
		t.Error("mismatched box dims accepted")
	}
	// Out-of-range rank.
	good := `{"elem_size":4,"chunks":[[{"offset":[0],"dims":[4]}]],"needs":[{"offset":[0],"dims":[4]}]}`
	g, err = LoadGeometry(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Plan(5); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := g.Plan(0); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}
