package core

import (
	"fmt"

	"ddr/internal/fielddata"
	"ddr/internal/mpi"
)

// ReorganizeFloat32 is ReorganizeData for float32 fields: owned chunk
// slices in, redistributed values written into need. The descriptor's
// element size must be 4. Conversion copies; performance-critical callers
// should keep their data as []byte and use ReorganizeData directly.
func (d *Descriptor) ReorganizeFloat32(c *mpi.Comm, own [][]float32, need []float32) error {
	if d.elemSize != 4 {
		return fmt.Errorf("core: ReorganizeFloat32 on a descriptor with %d-byte elements", d.elemSize)
	}
	ownBytes := make([][]byte, len(own))
	for i, chunk := range own {
		ownBytes[i] = fielddata.Float32Bytes(chunk)
	}
	needBytes := fielddata.Float32Bytes(need)
	if err := d.ReorganizeData(c, ownBytes, needBytes); err != nil {
		return err
	}
	copy(need, fielddata.BytesFloat32(needBytes))
	return nil
}

// ReorganizeFloat64 is ReorganizeData for float64 fields. The
// descriptor's element size must be 8.
func (d *Descriptor) ReorganizeFloat64(c *mpi.Comm, own [][]float64, need []float64) error {
	if d.elemSize != 8 {
		return fmt.Errorf("core: ReorganizeFloat64 on a descriptor with %d-byte elements", d.elemSize)
	}
	ownBytes := make([][]byte, len(own))
	for i, chunk := range own {
		ownBytes[i] = fielddata.Float64Bytes(chunk)
	}
	needBytes := fielddata.Float64Bytes(need)
	if err := d.ReorganizeData(c, ownBytes, needBytes); err != nil {
		return err
	}
	copy(need, fielddata.BytesFloat64(needBytes))
	return nil
}

// ReorganizeUint16 is ReorganizeData for uint16 fields (16-bit CT data).
// The descriptor's element size must be 2.
func (d *Descriptor) ReorganizeUint16(c *mpi.Comm, own [][]uint16, need []uint16) error {
	if d.elemSize != 2 {
		return fmt.Errorf("core: ReorganizeUint16 on a descriptor with %d-byte elements", d.elemSize)
	}
	ownBytes := make([][]byte, len(own))
	for i, chunk := range own {
		ownBytes[i] = fielddata.Uint16Bytes(chunk)
	}
	needBytes := fielddata.Uint16Bytes(need)
	if err := d.ReorganizeData(c, ownBytes, needBytes); err != nil {
		return err
	}
	copy(need, fielddata.BytesUint16(needBytes))
	return nil
}
