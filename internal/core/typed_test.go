package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/trace"
)

// TestReorganizeFloat32Slabs regrids a float32 slab field into squares
// using the typed wrapper and verifies values.
func TestReorganizeFloat32Slabs(t *testing.T) {
	const n = 4
	domain := grid.Box2(0, 0, 16, 8)
	slabs := grid.Slabs(domain, 1, n)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)
	value := func(x, y int) float32 { return float32(100*y + x) }

	err := mpi.Launch(n, func(c *mpi.Comm) error {
		slab := slabs[c.Rank()]
		vals := make([]float32, slab.Volume())
		i := 0
		for y := 0; y < slab.Dims[1]; y++ {
			for x := 0; x < slab.Dims[0]; x++ {
				vals[i] = value(slab.Offset[0]+x, slab.Offset[1]+y)
				i++
			}
		}
		desc, err := NewDescriptor(n, Layout2D, Float32)
		if err != nil {
			return err
		}
		need := squares[c.Rank()]
		if err := desc.SetupDataMapping(c, []grid.Box{slab}, need); err != nil {
			return err
		}
		out := make([]float32, need.Volume())
		if err := desc.ReorganizeFloat32(c, [][]float32{vals}, out); err != nil {
			return err
		}
		i = 0
		for y := 0; y < need.Dims[1]; y++ {
			for x := 0; x < need.Dims[0]; x++ {
				if want := value(need.Offset[0]+x, need.Offset[1]+y); out[i] != want {
					return fmt.Errorf("rank %d (%d,%d): %f != %f", c.Rank(), x, y, out[i], want)
				}
				i++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReorganizeFloat64AndUint16(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		domain := grid.Box1(0, 10)
		halves := grid.Slabs(domain, 0, 2)
		mine := halves[c.Rank()]

		d64, err := NewDescriptor(2, Layout1D, Float64)
		if err != nil {
			return err
		}
		if err := d64.SetupDataMapping(c, []grid.Box{mine}, domain); err != nil {
			return err
		}
		in64 := make([]float64, mine.Volume())
		for i := range in64 {
			in64[i] = float64(mine.Offset[0]+i) * 1.5
		}
		out64 := make([]float64, 10)
		if err := d64.ReorganizeFloat64(c, [][]float64{in64}, out64); err != nil {
			return err
		}
		for x := 0; x < 10; x++ {
			if out64[x] != float64(x)*1.5 {
				return fmt.Errorf("float64[%d] = %f", x, out64[x])
			}
		}

		d16, err := NewDescriptor(2, Layout1D, Int16)
		if err != nil {
			return err
		}
		if err := d16.SetupDataMapping(c, []grid.Box{mine}, domain); err != nil {
			return err
		}
		in16 := make([]uint16, mine.Volume())
		for i := range in16 {
			in16[i] = uint16(1000 + mine.Offset[0] + i)
		}
		out16 := make([]uint16, 10)
		if err := d16.ReorganizeUint16(c, [][]uint16{in16}, out16); err != nil {
			return err
		}
		for x := 0; x < 10; x++ {
			if out16[x] != uint16(1000+x) {
				return fmt.Errorf("uint16[%d] = %d", x, out16[x])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedWrapperElemSizeChecks(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(1, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, []grid.Box{grid.Box1(0, 4)}, grid.Box1(0, 4)); err != nil {
			return err
		}
		if err := desc.ReorganizeFloat32(c, nil, nil); err == nil {
			return errors.New("float32 on 1-byte elements accepted")
		}
		if err := desc.ReorganizeFloat64(c, nil, nil); err == nil {
			return errors.New("float64 on 1-byte elements accepted")
		}
		if err := desc.ReorganizeUint16(c, nil, nil); err == nil {
			return errors.New("uint16 on 1-byte elements accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFusedModeManyChunks stresses ModePointToPointFused on the layout it
// was designed for: round-robin ownership with many chunks per rank,
// where the per-round modes pay one exchange per chunk.
func TestFusedModeManyChunks(t *testing.T) {
	const n = 4
	domain := grid.Box3(0, 0, 0, 8, 4, 20)
	chunksAll := grid.RoundRobinSlices(domain, 2, n)
	nx, ny, nz := grid.Factor3(n)
	needs := grid.Bricks3D(domain, nx, ny, nz)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		mine := chunksAll[c.Rank()]
		desc, err := NewDescriptor(n, Layout3D, Uint8,
			WithExchangeMode(ModePointToPointFused), WithValidation())
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, mine, needs[c.Rank()]); err != nil {
			return err
		}
		if got := desc.Plan().Rounds(); got != 5 {
			return fmt.Errorf("rounds = %d, want 5", got)
		}
		bufs := make([][]byte, len(mine))
		for i, b := range mine {
			bufs[i] = fillBox(b, 1)
		}
		needBuf := make([]byte, needs[c.Rank()].Volume())
		if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
			return err
		}
		return checkBox(needBuf, needs[c.Rank()], 1, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTracerRecordsSpans verifies the WithTracer integration: mapping and
// per-round spans appear for every rank.
func TestTracerRecordsSpans(t *testing.T) {
	rec := trace.NewRecorder()
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		own, need := e1Geometry(c.Rank())
		desc, err := NewDescriptor(4, Layout2D, Float32, WithTracer(rec))
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		bufs := [][]byte{fillBox(own[0], 4), fillBox(own[1], 4)}
		if err := desc.ReorganizeData(c, bufs, make([]byte, need.Volume()*4)); err != nil {
			return err
		}
		if len(desc.LastTimings()) != 2 {
			return fmt.Errorf("timings %d, want 2", len(desc.LastTimings()))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range rec.Events() {
		counts[e.Name]++
	}
	for _, name := range []string{"mapping", "exchange", "round-0", "round-1"} {
		if counts[name] != 4 {
			t.Errorf("span %q recorded %d times, want 4", name, counts[name])
		}
	}
	var sb strings.Builder
	rec.WriteTimeline(&sb, 60)
	if !strings.Contains(sb.String(), "rank 3") {
		t.Error("timeline missing rank 3")
	}
}

// TestHaloExchangePattern demonstrates DDR's overlapping-receive
// semantics implementing ghost-zone filling: every rank owns a tile and
// needs its tile plus a one-cell halo, which overlaps the neighbors'
// tiles. After redistribution each rank holds correct ghost values.
func TestHaloExchangePattern(t *testing.T) {
	const n = 6
	domain := grid.Box2(0, 0, 18, 12)
	rows, cols := grid.Factor2(n)
	tiles := grid.Grid2D(domain, rows, cols)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		tile := tiles[c.Rank()]
		// Need = tile grown by 1 in every direction, clamped to the domain.
		need := tile.Grow(1, domain)
		desc, err := NewDescriptor(n, Layout2D, Uint8, WithValidation())
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, []grid.Box{tile}, need); err != nil {
			return err
		}
		needBuf := make([]byte, need.Volume())
		if err := desc.ReorganizeData(c, [][]byte{fillBox(tile, 1)}, needBuf); err != nil {
			return err
		}
		// Every cell of the halo'd region must be correct, including ghost
		// cells sourced from neighbor tiles.
		return checkBox(needBuf, need, 1, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}
