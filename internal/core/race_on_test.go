//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Alloc-
// count assertions skip under it: the detector's own sync-event shadow
// allocations are not the code under test.
const raceEnabled = true
