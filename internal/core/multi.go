package core

import (
	"fmt"
	"sync/atomic"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// The paper limits each rank to a single contiguous receive chunk and
// names "support for more data patterns" as future work (§V). The
// MultiDescriptor implements that extension: every rank may both own and
// need any number of box-shaped chunks. The exchange always runs fused —
// one message per communicating pair, carrying all chunk×need overlaps in
// a deterministic order — because the round structure alltoallw relies on
// has no analogue when receives are fragmented.

// MultiDescriptor describes a many-to-many chunked redistribution.
type MultiDescriptor struct {
	nProcs   int
	layout   Layout
	elemSize int

	plan                   *multiPlan
	cache                  *planCache[*multiPlan]
	cacheHits, cacheMisses atomic.Int64
}

// multiXfer is one packed region within a pair's fused message.
type multiXfer struct {
	buf int // chunk index (send side) or need index (receive side)
	t   *datatype.Subarray
}

// multiPlan is the compiled schedule: per peer, the ordered transfers.
type multiPlan struct {
	rank     int
	myChunks []grid.Box
	myNeeds  []grid.Box

	sendTo   [][]multiXfer // [peer] ordered (chunk, need) overlaps
	recvFrom [][]multiXfer // [peer] same order from the peer's perspective
	selfs    []struct{ src, dst multiXfer }

	wireBytes int64 // bytes this rank sends to other ranks
	selfBytes int64
}

// NewMultiDescriptor creates a descriptor for redistributions where both
// sides may be fragmented. nProcs, layout, and elem follow
// NewDescriptor.
func NewMultiDescriptor(nProcs int, layout Layout, elem ElemType) (*MultiDescriptor, error) {
	if elem.Size() == 0 {
		return nil, fmt.Errorf("core: unknown element type %v", elem)
	}
	if nProcs <= 0 {
		return nil, fmt.Errorf("core: descriptor needs a positive process count, got %d", nProcs)
	}
	if layout < Layout1D || layout > Layout3D {
		return nil, fmt.Errorf("core: unsupported layout %v", layout)
	}
	return &MultiDescriptor{
		nProcs:   nProcs,
		layout:   layout,
		elemSize: elem.Size(),
		cache:    newPlanCache[*multiPlan](8),
	}, nil
}

// PlanCacheStats reports how many SetupDataMapping calls were satisfied
// by a cached plan and how many compiled a new one.
func (d *MultiDescriptor) PlanCacheStats() (hits, misses int64) {
	return d.cacheHits.Load(), d.cacheMisses.Load()
}

// encodeBoxLists packs two box lists for the geometry allgather, in the
// same canonical varint/delta stream encodeGeometry uses.
func encodeBoxLists(a, b []grid.Box) []byte {
	out := append(make([]byte, 0, 16+8*(len(a)+len(b))), geomVersion)
	var prev grid.Box
	out = appendUvarint(out, uint64(len(a)))
	for _, box := range a {
		out = appendBox(out, box, &prev)
	}
	out = appendUvarint(out, uint64(len(b)))
	for _, box := range b {
		out = appendBox(out, box, &prev)
	}
	return out
}

// decodeBoxLists reverses encodeBoxLists.
func decodeBoxLists(buf []byte) (a, b []grid.Box, err error) {
	if len(buf) < 1 || buf[0] != geomVersion {
		return nil, nil, fmt.Errorf("core: unsupported geometry encoding version")
	}
	buf = buf[1:]
	var prev grid.Box
	readList := func() ([]grid.Box, error) {
		u, rest, err := readUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("core: box count: %w", err)
		}
		buf = rest
		n := int(u)
		if n < 0 || n > len(buf)+1 {
			return nil, fmt.Errorf("core: implausible box count %d", n)
		}
		out := make([]grid.Box, n)
		for i := range out {
			var e error
			out[i], buf, e = readBox(buf, &prev)
			if e != nil {
				return nil, e
			}
		}
		return out, nil
	}
	if a, err = readList(); err != nil {
		return nil, nil, err
	}
	if b, err = readList(); err != nil {
		return nil, nil, err
	}
	if len(buf) != 0 {
		return nil, nil, fmt.Errorf("core: %d trailing bytes after box lists", len(buf))
	}
	return a, b, nil
}

// SetupDataMapping exchanges the global geometry and compiles the fused
// transfer lists. Owned chunks must be mutually exclusive across ranks
// (validated collectively, as in the single-need API); need chunks may
// overlap freely, including within one rank.
func (d *MultiDescriptor) SetupDataMapping(c *mpi.Comm, own, needs []grid.Box) error {
	if c.Size() != d.nProcs {
		return fmt.Errorf("core: descriptor is for %d processes but communicator has %d: %w",
			d.nProcs, c.Size(), ErrCommMismatch)
	}
	for i, b := range own {
		if b.NDims != d.layout.NDims() {
			return fmt.Errorf("core: owned chunk %d is %dD but descriptor is %v", i, b.NDims, d.layout)
		}
	}
	for i, b := range needs {
		if b.NDims != d.layout.NDims() {
			return fmt.Errorf("core: need chunk %d is %dD but descriptor is %v", i, b.NDims, d.layout)
		}
	}
	enc := encodeBoxLists(own, needs)
	cached, ok, err := d.cache.lookup(c, enc, 0, func(p *multiPlan) bool {
		return multiPlanMatchesLocal(p, c.Rank(), own, needs)
	})
	if err != nil {
		return fmt.Errorf("core: plan cache agreement: %w", err)
	}
	if ok {
		d.plan = cached
		d.cacheHits.Add(1)
		return nil
	}
	d.cacheMisses.Add(1)

	packed, err := c.Allgather(enc)
	if err != nil {
		return fmt.Errorf("core: geometry exchange: %w", err)
	}
	allChunks := make([][]grid.Box, c.Size())
	allNeeds := make([][]grid.Box, c.Size())
	for r, buf := range packed {
		if allChunks[r], allNeeds[r], err = decodeBoxLists(buf); err != nil {
			return fmt.Errorf("core: geometry from rank %d: %w", r, err)
		}
	}
	if err := validateOwnership(allChunks); err != nil {
		return err
	}

	rank := c.Rank()
	p := &multiPlan{
		rank:     rank,
		myChunks: allChunks[rank],
		myNeeds:  allNeeds[rank],
		sendTo:   make([][]multiXfer, c.Size()),
		recvFrom: make([][]multiXfer, c.Size()),
	}
	// Transfers from src to dst, ordered (src chunk, dst need): both sides
	// enumerate identically, so the fused payload needs no framing.
	pair := func(src, dst int, fn func(ci, ni int, chunk, need, ov grid.Box) error) error {
		for ci, chunk := range allChunks[src] {
			for ni, need := range allNeeds[dst] {
				if ov, ok := chunk.Intersect(need); ok {
					if err := fn(ci, ni, chunk, need, ov); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for peer := 0; peer < c.Size(); peer++ {
		if peer == rank {
			continue
		}
		err := pair(rank, peer, func(ci, _ int, chunk, _, ov grid.Box) error {
			st, err := datatype.NewSubarray(d.elemSize, chunk, ov)
			if err != nil {
				return err
			}
			p.sendTo[peer] = append(p.sendTo[peer], multiXfer{buf: ci, t: st})
			p.wireBytes += int64(ov.Volume()) * int64(d.elemSize)
			return nil
		})
		if err != nil {
			return err
		}
		err = pair(peer, rank, func(_, ni int, _, need, ov grid.Box) error {
			rt, err := datatype.NewSubarray(d.elemSize, need, ov)
			if err != nil {
				return err
			}
			p.recvFrom[peer] = append(p.recvFrom[peer], multiXfer{buf: ni, t: rt})
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Local overlaps.
	err = pair(rank, rank, func(ci, ni int, chunk, need, ov grid.Box) error {
		st, err := datatype.NewSubarray(d.elemSize, chunk, ov)
		if err != nil {
			return err
		}
		rt, err := datatype.NewSubarray(d.elemSize, need, ov)
		if err != nil {
			return err
		}
		p.selfs = append(p.selfs, struct{ src, dst multiXfer }{
			multiXfer{buf: ci, t: st}, multiXfer{buf: ni, t: rt}})
		p.selfBytes += int64(ov.Volume()) * int64(d.elemSize)
		return nil
	})
	if err != nil {
		return err
	}
	d.cache.store(p)
	d.plan = p
	return nil
}

// multiPlanMatchesLocal is the fingerprint-collision defense for the
// multi-chunk cache: a cached plan counts as a hit only when it was
// compiled for this rank from exactly these owned and needed chunks.
func multiPlanMatchesLocal(p *multiPlan, rank int, own, needs []grid.Box) bool {
	if p.rank != rank || len(p.myChunks) != len(own) || len(p.myNeeds) != len(needs) {
		return false
	}
	for i, b := range own {
		if !p.myChunks[i].Equal(b) {
			return false
		}
	}
	for i, b := range needs {
		if !p.myNeeds[i].Equal(b) {
			return false
		}
	}
	return true
}

// WireBytes returns the bytes this rank transmits per ReorganizeData call;
// SelfBytes the bytes satisfied locally.
func (d *MultiDescriptor) WireBytes() int64 { return d.planOrZero().wireBytes }

// SelfBytes returns the bytes this rank keeps local per call.
func (d *MultiDescriptor) SelfBytes() int64 { return d.planOrZero().selfBytes }

func (d *MultiDescriptor) planOrZero() *multiPlan {
	if d.plan == nil {
		return &multiPlan{}
	}
	return d.plan
}

// ReorganizeData exchanges the data: own holds one buffer per owned
// chunk, needs one buffer per need chunk, both in SetupDataMapping order.
// Repeatable for dynamic data.
func (d *MultiDescriptor) ReorganizeData(c *mpi.Comm, own, needs [][]byte) error {
	p := d.plan
	if p == nil {
		return fmt.Errorf("core: ReorganizeData before SetupDataMapping: %w", ErrNoMapping)
	}
	if c.Size() != d.nProcs || c.Rank() != p.rank {
		return fmt.Errorf("core: communicator does not match the one used for SetupDataMapping: %w", ErrCommMismatch)
	}
	if len(own) != len(p.myChunks) {
		return fmt.Errorf("core: %d owned buffers for %d chunks: %w", len(own), len(p.myChunks), ErrBufferSize)
	}
	if len(needs) != len(p.myNeeds) {
		return fmt.Errorf("core: %d need buffers for %d need chunks: %w", len(needs), len(p.myNeeds), ErrBufferSize)
	}
	for i, buf := range own {
		if want := p.myChunks[i].Volume() * d.elemSize; len(buf) != want {
			return fmt.Errorf("core: owned buffer %d has %d bytes, want %d: %w", i, len(buf), want, ErrBufferSize)
		}
	}
	for i, buf := range needs {
		if want := p.myNeeds[i].Volume() * d.elemSize; len(buf) != want {
			return fmt.Errorf("core: need buffer %d has %d bytes, want %d: %w", i, len(buf), want, ErrBufferSize)
		}
	}

	for _, sf := range p.selfs {
		wire := mpi.GetBuffer(sf.src.t.PackedSize())
		sf.src.t.Pack(own[sf.src.buf], wire)
		sf.dst.t.Unpack(wire, needs[sf.dst.buf])
		mpi.PutBuffer(wire)
	}
	const tag = ddrTagBase + 1<<10 // distinct from the single-need modes
	var sends []*mpi.Request
	expect := map[int]int{}
	for peer := range p.sendTo {
		total := 0
		for _, x := range p.sendTo[peer] {
			total += x.t.PackedSize()
		}
		if total > 0 {
			wire := mpi.GetBuffer(total)
			off := 0
			for _, x := range p.sendTo[peer] {
				off += x.t.Pack(own[x.buf], wire[off:])
			}
			sends = append(sends, c.Isend(peer, tag, wire))
			mpi.PutBuffer(wire) // Isend copies eagerly
		}
		recvTotal := 0
		for _, x := range p.recvFrom[peer] {
			recvTotal += x.t.PackedSize()
		}
		if recvTotal > 0 {
			expect[peer] = recvTotal
		}
	}
	recvs := map[int]*mpi.Request{}
	for peer := range expect {
		recvs[peer] = c.Irecv(peer, tag)
	}
	if err := mpi.WaitAll(sends...); err != nil {
		return err
	}
	for peer, req := range recvs {
		data, _, _, err := req.Wait()
		if err != nil {
			return err
		}
		if len(data) != expect[peer] {
			return fmt.Errorf("core: expected %d bytes from rank %d, got %d", expect[peer], peer, len(data))
		}
		off := 0
		for _, x := range p.recvFrom[peer] {
			off += x.t.Unpack(data[off:], needs[x.buf])
		}
		mpi.PutBuffer(data)
	}
	return nil
}
