// Elastic repartitioning: the incremental (delta) plan compiler.
//
// A consumer group that resizes from N to N′ ranks does not need a full
// re-exchange of its data: most of each surviving rank's new need box is
// usually already resident locally (its old need box), and only the cells
// whose ownership changed have to cross the wire. CompileDelta diffs the
// old and new need geometries — grid.Subtract for the local retention,
// grid.Index overlap queries for the remote holders — and emits one
// DeltaPlan per rank that moves exactly the changed bytes. The result of
// executing a delta plan is byte-identical to a full re-exchange that
// treats the old need boxes as owned chunks (the differential-testing
// oracle in delta_test.go).
//
// Ownership of a cell that several old ranks hold is assigned to the
// lowest-ranked holder, so every rank derives the same assignment from
// the same global geometry without communicating.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// DeltaRegion is one unit of changed ownership: a box (global
// coordinates) this rank exchanges with Peer during the resize.
type DeltaRegion struct {
	Peer   int
	Region grid.Box
}

// DeltaPlan is one rank's compiled schedule for an elastic resize. Like
// *Plan it is immutable after compilation, replayable, and cacheable.
// A rank leaving the group has an empty new need (it only sends); a rank
// joining has an empty old need (it only receives).
type DeltaPlan struct {
	elemSize int
	rank     int
	nRanks   int // size of the resize collective (old ∪ new participants)
	newSize  int // ranks with a non-empty new need
	fp       uint64

	oldNeed grid.Box
	newNeed grid.Box

	// keeps are the locally retained regions (newNeed ∩ oldNeed), copied
	// from the old buffer into the new one without touching the wire.
	keeps   []grid.Box
	keepSrc []datatype.Type // base oldNeed
	keepDst []datatype.Type // base newNeed
	uncov   []grid.Box      // new-need regions no old rank held; left untouched

	// sends/recvs hold the changed-ownership regions grouped per peer:
	// peer i's regions are sends[sendOff[i]:sendOff[i+1]], concatenated in
	// that order into one wire message. The grouping order is identical on
	// both sides of every pair, so the receiver unpacks segments in the
	// order the sender packed them.
	sends     []DeltaRegion
	sendTypes []datatype.Type // base oldNeed
	sendPeers []int
	sendOff   []int
	recvs     []DeltaRegion
	recvTypes []datatype.Type // base newNeed
	recvPeers []int
	recvOff   []int
}

// Rank returns the rank the plan was compiled for.
func (p *DeltaPlan) Rank() int { return p.rank }

// OldNeed and NewNeed return the rank's need boxes on the two sides of
// the resize (empty for joiners and leavers respectively).
func (p *DeltaPlan) OldNeed() grid.Box { return p.oldNeed }
func (p *DeltaPlan) NewNeed() grid.Box { return p.newNeed }

// NewGroupSize returns the number of ranks with a non-empty need after
// the resize — the N′ the surviving consumer communicator must have.
func (p *DeltaPlan) NewGroupSize() int { return p.newSize }

// Fingerprint returns the collectively agreed fingerprint of the
// (old geometry, new geometry) pair (0 for offline-compiled plans).
func (p *DeltaPlan) Fingerprint() uint64 { return p.fp }

// MovedBytes returns the bytes this rank puts on the wire during the
// resize — the cost an incremental plan is minimizing.
func (p *DeltaPlan) MovedBytes() int64 {
	var n int64
	for _, s := range p.sends {
		n += int64(s.Region.Volume()) * int64(p.elemSize)
	}
	return n
}

// ReceivedBytes returns the bytes this rank receives over the wire.
func (p *DeltaPlan) ReceivedBytes() int64 {
	var n int64
	for _, r := range p.recvs {
		n += int64(r.Region.Volume()) * int64(p.elemSize)
	}
	return n
}

// RetainedBytes returns the bytes satisfied by the local old→new copy.
func (p *DeltaPlan) RetainedBytes() int64 {
	var n int64
	for _, k := range p.keeps {
		n += int64(k.Volume()) * int64(p.elemSize)
	}
	return n
}

// NeedBytes returns the total byte size of the new need box — what a
// cold full re-fetch of this rank's data would have to move.
func (p *DeltaPlan) NeedBytes() int64 {
	if boxEmpty(p.newNeed) {
		return 0
	}
	return int64(p.newNeed.Volume()) * int64(p.elemSize)
}

// Uncovered returns the new-need regions no old rank held; the exchange
// leaves their cells untouched (the paper's incomplete-receive contract).
func (p *DeltaPlan) Uncovered() []grid.Box { return p.uncov }

// boxEmpty treats the zero Box (NDims 0) and zero-extent boxes alike —
// both mean "this rank holds / wants nothing".
func boxEmpty(b grid.Box) bool { return b.NDims == 0 || b.Empty() }

// CompileDelta compiles the full set of per-rank delta plans for a
// resize, offline from the global geometry alone: oldNeeds[r] is the box
// rank r held before the resize and newNeeds[r] the box it needs after
// (empty boxes mark joiners and leavers; the slices share one indexing,
// the resize collective's ranks). It is the offline twin of
// DeltaCompiler.Compile, used by the property harness and for capacity
// analysis; every rank of a collective derives the identical plans from
// the identical geometry.
func CompileDelta(elemSize int, oldNeeds, newNeeds []grid.Box) ([]*DeltaPlan, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", elemSize)
	}
	if len(oldNeeds) != len(newNeeds) {
		return nil, fmt.Errorf("core: %d old need boxes for %d new need boxes", len(oldNeeds), len(newNeeds))
	}
	n := len(oldNeeds)
	newSize := 0
	for _, b := range newNeeds {
		if !boxEmpty(b) {
			newSize++
		}
	}
	plans := make([]*DeltaPlan, n)
	for r := range plans {
		plans[r] = &DeltaPlan{
			elemSize: elemSize, rank: r, nRanks: n, newSize: newSize,
			oldNeed: oldNeeds[r], newNeed: newNeeds[r],
		}
	}

	// Old holders, spatially indexed: the delta overlap query for one new
	// need box returns its candidate holders in ascending rank order,
	// which is exactly the deterministic assignment priority.
	ix := grid.NewIndex(oldNeeds)

	var hits []int
	var work, rest []grid.Box
	for r, nn := range newNeeds {
		if boxEmpty(nn) {
			continue
		}
		p := plans[r]
		work = work[:0]
		if on := oldNeeds[r]; !boxEmpty(on) {
			if keep, ok := nn.Intersect(on); ok {
				p.keeps = append(p.keeps, keep)
				work = grid.SubtractAppend(work, nn, keep)
			} else {
				work = append(work, nn)
			}
		} else {
			work = append(work, nn)
		}
		if len(work) == 0 {
			continue
		}
		hits = ix.QueryAppend(hits[:0], nn)
		for _, s := range hits {
			if s == r || len(work) == 0 {
				continue
			}
			holder := oldNeeds[s]
			rest = rest[:0]
			for _, u := range work {
				iv, ok := u.Intersect(holder)
				if !ok {
					rest = append(rest, u)
					continue
				}
				p.recvs = append(p.recvs, DeltaRegion{Peer: s, Region: iv})
				plans[s].sends = append(plans[s].sends, DeltaRegion{Peer: r, Region: iv})
				rest = grid.SubtractAppend(rest, u, iv)
			}
			work = append(work[:0], rest...)
		}
		p.uncov = append(p.uncov, work...)
	}

	for _, p := range plans {
		if err := p.finalize(); err != nil {
			return nil, err
		}
	}
	return plans, nil
}

// finalize groups a plan's regions per peer and compiles the subarray
// types the exchange packs and unpacks with, so execution pays no
// per-call geometry analysis.
func (p *DeltaPlan) finalize() error {
	var err error
	groupRegions(p.sends, &p.sendPeers, &p.sendOff)
	groupRegions(p.recvs, &p.recvPeers, &p.recvOff)
	if p.sendTypes, err = regionTypes(p.elemSize, p.oldNeed, p.sends, "send"); err != nil {
		return err
	}
	if p.recvTypes, err = regionTypes(p.elemSize, p.newNeed, p.recvs, "recv"); err != nil {
		return err
	}
	for _, k := range p.keeps {
		src, err := datatype.NewSubarray(p.elemSize, p.oldNeed, k)
		if err != nil {
			return fmt.Errorf("core: delta keep source %v: %w", k, err)
		}
		dst, err := datatype.NewSubarray(p.elemSize, p.newNeed, k)
		if err != nil {
			return fmt.Errorf("core: delta keep destination %v: %w", k, err)
		}
		p.keepSrc = append(p.keepSrc, src)
		p.keepDst = append(p.keepDst, dst)
	}
	return nil
}

// groupRegions stably sorts regions by peer (preserving the deterministic
// discovery order within each peer — the wire segment order both sides
// agree on) and builds the CSR peer grouping.
func groupRegions(regions []DeltaRegion, peers *[]int, off *[]int) {
	sort.SliceStable(regions, func(a, b int) bool { return regions[a].Peer < regions[b].Peer })
	*peers = (*peers)[:0]
	*off = append((*off)[:0], 0)
	for i := 0; i < len(regions); {
		j := i
		for j < len(regions) && regions[j].Peer == regions[i].Peer {
			j++
		}
		*peers = append(*peers, regions[i].Peer)
		*off = append(*off, j)
		i = j
	}
}

// regionTypes builds the subarray type of every region against base.
func regionTypes(elemSize int, base grid.Box, regions []DeltaRegion, dir string) ([]datatype.Type, error) {
	if len(regions) == 0 {
		return nil, nil
	}
	out := make([]datatype.Type, len(regions))
	for i, reg := range regions {
		t, err := datatype.NewSubarray(elemSize, base, reg.Region)
		if err != nil {
			return nil, fmt.Errorf("core: delta %s type for rank %d region %v: %w", dir, reg.Peer, reg.Region, err)
		}
		out[i] = t
	}
	return out, nil
}

// DeltaCompiler is the collective front end of CompileDelta: ranks agree
// on the (old geometry, new geometry) pair, replay a cached delta plan
// when the pair was compiled before — consumer groups that oscillate
// between two scales resize at two-small-collectives cost — and
// otherwise allgather the need boxes and compile. Like Descriptor it is
// not safe for concurrent use; construct one per Regridder/session.
type DeltaCompiler struct {
	elemSize int
	cache    *planCache[*DeltaPlan]

	hits, misses atomic.Int64
}

// NewDeltaCompiler creates a delta compiler for elements of the given
// byte size with a delta-plan cache of cacheCap entries (cacheCap <= 0
// disables caching).
func NewDeltaCompiler(elemSize, cacheCap int) (*DeltaCompiler, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", elemSize)
	}
	dc := &DeltaCompiler{elemSize: elemSize}
	if cacheCap > 0 {
		dc.cache = newPlanCache[*DeltaPlan](cacheCap)
	}
	return dc, nil
}

// CacheStats reports delta-plan cache hits and misses.
func (dc *DeltaCompiler) CacheStats() (hits, misses int64) {
	return dc.hits.Load(), dc.misses.Load()
}

// Compile is the collective compile: every rank of c passes the need box
// it held before the resize and the one it wants after (zero-extent for
// leavers/joiners; both boxes must share the data's dimensionality so the
// geometry encoding stays canonical). All ranks receive their own plan
// for the same globally agreed assignment. A previously seen
// (old, new) geometry pair is replayed from the cache without the
// allgather or compile.
func (dc *DeltaCompiler) Compile(c *mpi.Comm, oldNeed, newNeed grid.Box) (*DeltaPlan, error) {
	if oldNeed.NDims == 0 || newNeed.NDims == 0 {
		return nil, fmt.Errorf("core: delta compile needs explicit box dimensionality (use a zero-extent box for an empty side)")
	}
	// The pair encodes as one canonical geometry stream — the old box in
	// the need slot, the new box as the single chunk — so the plan cache's
	// collective fingerprint agreement applies unchanged.
	enc := encodeGeometry(oldNeed, []grid.Box{newNeed})
	if dc.cache != nil {
		cached, ok, err := dc.cache.lookup(c, enc, 0, func(p *DeltaPlan) bool {
			return p.rank == c.Rank() && p.nRanks == c.Size() &&
				p.oldNeed.Equal(oldNeed) && p.newNeed.Equal(newNeed)
		})
		if err != nil {
			return nil, fmt.Errorf("core: delta plan cache agreement: %w", err)
		}
		if ok {
			dc.hits.Add(1)
			return cached, nil
		}
		dc.misses.Add(1)
	}
	packed, err := c.Allgather(enc)
	if err != nil {
		return nil, fmt.Errorf("core: delta geometry exchange: %w", err)
	}
	oldNeeds := make([]grid.Box, c.Size())
	newNeeds := make([]grid.Box, c.Size())
	for r, buf := range packed {
		on, chunks, err := decodeGeometry(buf)
		if err != nil || len(chunks) != 1 {
			return nil, fmt.Errorf("core: delta geometry from rank %d: %w", r, err)
		}
		oldNeeds[r], newNeeds[r] = on, chunks[0]
	}
	plans, err := CompileDelta(dc.elemSize, oldNeeds, newNeeds)
	if err != nil {
		return nil, err
	}
	plan := plans[c.Rank()]
	if dc.cache != nil {
		plan.fp = dc.cache.lastKey.fp
		dc.cache.store(plan)
	} else {
		plan.fp = geometryFingerprint(packed)
	}
	return plan, nil
}

// PerturbDeltaForTest shifts one of the plan's receive regions by one
// cell along the first axis where the shifted box stays inside the new
// need, simulating an off-by-one in the delta overlap math. It exists so
// the resize property harness can prove it detects delta-compilation
// bugs. Returns false when no region can be shifted. Never call outside
// tests.
func (p *DeltaPlan) PerturbDeltaForTest() bool {
	for i := range p.recvs {
		reg := p.recvs[i].Region
		for axis := 0; axis < reg.NDims; axis++ {
			shifted := reg
			shifted.Offset[axis]++
			if !p.newNeed.Contains(shifted) {
				shifted.Offset[axis] -= 2
				if !p.newNeed.Contains(shifted) {
					continue
				}
			}
			t, err := datatype.NewSubarray(p.elemSize, p.newNeed, shifted)
			if err != nil {
				continue
			}
			p.recvs[i].Region = shifted
			p.recvTypes[i] = t
			return true
		}
	}
	return false
}
