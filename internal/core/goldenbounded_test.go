package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Golden bounded-plan fixtures pin the bounded compiler's step
// decomposition — the full global slice list with step assignments, tags,
// and per-slice regions — on the same 1D/2D/3D geometries the one-shot
// golden plans use, each at a budget small enough to force real slicing.
// The schedule is a pure function of the geometry, element size, and
// budget (identical on every rank), so the fixture is compiled offline
// from rank 0's plan with no world. Any change to the slicing or packing
// math shows up as a reviewable fixture diff. Regenerate with:
// go test ./internal/core -run TestGoldenBoundedPlans -update.

// goldenBoundedBudget picks the fixture budget per geometry: small
// enough that overlaps split into many slices across many steps, large
// enough that the fixture stays reviewable.
var goldenBoundedBudgets = map[string]int{
	"1d_blocks": 256,     // one-chunk minimum: every 16-cell block at elem 8 splits
	"2d_regrid": 4 << 10, // 64x40 float32 overlaps (10 KiB) split into row slabs
	"3d_blocks": 8 << 10, // 32x32x8 int16 overlaps (16 KiB) split into z-slabs
}

func TestGoldenBoundedPlans(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			budget := goldenBoundedBudgets[gc.name]
			if budget == 0 {
				t.Fatalf("no fixture budget for %q", gc.name)
			}
			p, err := NewPlanFromGeometry(0, gc.elemSize, gc.chunks, gc.needs)
			if err != nil {
				t.Fatal(err)
			}
			if fp := p.SingleShotFootprint(ModePointToPoint); fp <= budget {
				t.Fatalf("fixture budget %d does not force the bounded backend (footprint %d)", budget, fp)
			}
			if err := CompileBoundedForTest(p, budget); err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(p.BoundedSummary(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden_bounded_"+gc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("bounded step schedule diverges from %s;\nif the decomposition change is intentional, regenerate with -update", path)
			}
		})
	}
}
