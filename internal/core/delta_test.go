package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

const deltaSentinel = 0xA5

// genResizeNeeds draws a seeded resize geometry for a world of n ranks
// in a 64×64 2D domain: most ranks survive with a new need box perturbed
// from (and usually overlapping) their old one, some leave (zero-extent
// new need) and some join (zero-extent old need). Old needs may overlap
// across ranks, as consumer needs do.
func genResizeNeeds(rng *rand.Rand, n int) (oldNeeds, newNeeds []grid.Box) {
	empty := grid.Box2(0, 0, 0, 0)
	randBox := func() grid.Box {
		w := 4 + rng.Intn(24)
		h := 4 + rng.Intn(24)
		return grid.Box2(rng.Intn(64-w), rng.Intn(64-h), w, h)
	}
	oldNeeds = make([]grid.Box, n)
	newNeeds = make([]grid.Box, n)
	for r := 0; r < n; r++ {
		switch role := rng.Intn(8); {
		case role == 0: // joiner
			oldNeeds[r] = empty
			newNeeds[r] = randBox()
		case role == 1: // leaver
			oldNeeds[r] = randBox()
			newNeeds[r] = empty
		case role == 2: // survivor with an unrelated new need
			oldNeeds[r] = randBox()
			newNeeds[r] = randBox()
		default: // survivor whose need shifted and resized a little
			oldNeeds[r] = randBox()
			nb := oldNeeds[r]
			for a := 0; a < 2; a++ {
				nb.Offset[a] += rng.Intn(9) - 4
				nb.Dims[a] += rng.Intn(7) - 3
				if nb.Dims[a] < 1 {
					nb.Dims[a] = 1
				}
				if nb.Offset[a] < 0 {
					nb.Offset[a] = 0
				}
				if nb.Offset[a]+nb.Dims[a] > 64 {
					nb.Offset[a] = 64 - nb.Dims[a]
				}
			}
			newNeeds[r] = nb
		}
	}
	return oldNeeds, newNeeds
}

// runDeltaExchange executes the compiled delta plans on an in-process
// world: every rank fills its old need with the canonical pattern and a
// sentinel-filled new buffer, exchanges, and returns the gathered new
// buffers.
func runDeltaExchange(t *testing.T, plans []*DeltaPlan, oldNeeds, newNeeds []grid.Box, elemSize int, perturbRank int) [][]byte {
	t.Helper()
	n := len(plans)
	out := make([][]byte, n)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		r := c.Rank()
		p := plans[r]
		if r == perturbRank && !p.PerturbDeltaForTest() {
			return fmt.Errorf("rank %d: no perturbable recv region", r)
		}
		var oldBuf, newBuf []byte
		if !oldNeeds[r].Empty() {
			oldBuf = fillBox(oldNeeds[r], elemSize)
		}
		if !newNeeds[r].Empty() {
			newBuf = bytes.Repeat([]byte{deltaSentinel}, newNeeds[r].Volume()*elemSize)
		}
		if err := p.Exchange(c, oldBuf, newBuf); err != nil {
			return err
		}
		out[r] = newBuf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runFullOracle redistributes the same data through the production full
// compiler and exchange — each rank owns exactly its old need box as one
// chunk — returning the gathered need buffers. Old needs may overlap, so
// validation stays off; overlapping owners carry identical canonical
// bytes, making the result well defined.
func runFullOracle(t *testing.T, oldNeeds, newNeeds []grid.Box, elemSize int) [][]byte {
	t.Helper()
	n := len(oldNeeds)
	out := make([][]byte, n)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		r := c.Rank()
		desc, err := NewDescriptor(n, Layout2D, Uint8, WithElemSize(elemSize))
		if err != nil {
			return err
		}
		var own []grid.Box
		var ownBufs [][]byte
		if !oldNeeds[r].Empty() {
			own = []grid.Box{oldNeeds[r]}
			ownBufs = [][]byte{fillBox(oldNeeds[r], elemSize)}
		}
		if err := desc.SetupDataMapping(c, own, newNeeds[r]); err != nil {
			return err
		}
		var needBuf []byte
		if !newNeeds[r].Empty() {
			needBuf = bytes.Repeat([]byte{deltaSentinel}, newNeeds[r].Volume()*elemSize)
		}
		if err := desc.ReorganizeData(c, ownBufs, needBuf); err != nil {
			return err
		}
		out[r] = needBuf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCompileDeltaDifferential sweeps seeded resize geometries and
// checks the tentpole's oracle property: executing the incremental delta
// plans yields buffers byte-identical to a full re-exchange that treats
// the old needs as owned chunks, and both match the closed-form
// prediction (canonical value where any old rank held the cell, sentinel
// elsewhere).
func TestCompileDeltaDifferential(t *testing.T) {
	const elemSize = 4
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		oldNeeds, newNeeds := genResizeNeeds(rng, n)
		plans, err := CompileDelta(elemSize, oldNeeds, newNeeds)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := runDeltaExchange(t, plans, oldNeeds, newNeeds, elemSize, -1)
		want := runFullOracle(t, oldNeeds, newNeeds, elemSize)
		covered := func(x, y, z int) bool {
			for _, b := range oldNeeds {
				if !b.Empty() && b.ContainsPoint([grid.MaxDims]int{x, y, z}) {
					return true
				}
			}
			return false
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(got[r], want[r]) {
				t.Fatalf("seed %d rank %d: delta result differs from full-recompile oracle", seed, r)
			}
			if newNeeds[r].Empty() {
				continue
			}
			if err := checkBox(got[r], newNeeds[r], elemSize, covered, deltaSentinel); err != nil {
				t.Fatalf("seed %d rank %d: %v", seed, r, err)
			}
			// The plan's byte accounting must cover exactly the covered
			// cells: retained + received + uncovered = need volume.
			p := plans[r]
			var uncov int64
			for _, b := range p.Uncovered() {
				uncov += int64(b.Volume()) * elemSize
			}
			if p.RetainedBytes()+p.ReceivedBytes()+uncov != p.NeedBytes() {
				t.Fatalf("seed %d rank %d: retained %d + received %d + uncovered %d != need %d",
					seed, r, p.RetainedBytes(), p.ReceivedBytes(), uncov, p.NeedBytes())
			}
		}
	}
}

// TestCompileDeltaPlantedBug proves the differential harness detects a
// delta-compilation bug: shifting one receive region off by one cell
// must surface as a fill-invariant violation on the perturbed rank.
func TestCompileDeltaPlantedBug(t *testing.T) {
	const elemSize = 4
	// Four slabs shifting right by 8: every rank receives something.
	oldNeeds := []grid.Box{
		grid.Box2(0, 0, 16, 16), grid.Box2(16, 0, 16, 16),
		grid.Box2(32, 0, 16, 16), grid.Box2(48, 0, 16, 16),
	}
	newNeeds := []grid.Box{
		grid.Box2(8, 0, 16, 16), grid.Box2(24, 0, 16, 16),
		grid.Box2(40, 0, 16, 16), grid.Box2(48, 0, 16, 16),
	}
	plans, err := CompileDelta(elemSize, oldNeeds, newNeeds)
	if err != nil {
		t.Fatal(err)
	}
	got := runDeltaExchange(t, plans, oldNeeds, newNeeds, elemSize, 0)
	covered := func(x, y, z int) bool { return x < 64 && y < 16 }
	if err := checkBox(got[0], newNeeds[0], elemSize, covered, deltaSentinel); err == nil {
		t.Fatal("planted off-by-one in the delta plan went undetected")
	}
	// The unperturbed ranks must still verify.
	for r := 1; r < 4; r++ {
		if err := checkBox(got[r], newNeeds[r], elemSize, covered, deltaSentinel); err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestDeltaCompilerCollective runs the cached collective front end: the
// first compile allgathers and compiles, a repeat of the same (old, new)
// pair replays from the cache, and the replayed plan exchanges
// identically.
func TestDeltaCompilerCollective(t *testing.T) {
	const elemSize = 4
	rng := rand.New(rand.NewSource(99))
	n := 6
	oldNeeds, newNeeds := genResizeNeeds(rng, n)
	offline, err := CompileDelta(elemSize, oldNeeds, newNeeds)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Launch(n, func(c *mpi.Comm) error {
		r := c.Rank()
		dc, err := NewDeltaCompiler(elemSize, 4)
		if err != nil {
			return err
		}
		for round := 0; round < 3; round++ {
			p, err := dc.Compile(c, oldNeeds[r], newNeeds[r])
			if err != nil {
				return fmt.Errorf("rank %d round %d: %w", r, round, err)
			}
			if p.MovedBytes() != offline[r].MovedBytes() || p.RetainedBytes() != offline[r].RetainedBytes() {
				return fmt.Errorf("rank %d: collective plan accounting diverges from offline compile", r)
			}
			if p.Fingerprint() == 0 {
				return fmt.Errorf("rank %d: cached plan has no fingerprint", r)
			}
			var oldBuf, newBuf []byte
			if !oldNeeds[r].Empty() {
				oldBuf = fillBox(oldNeeds[r], elemSize)
			}
			if !newNeeds[r].Empty() {
				newBuf = bytes.Repeat([]byte{deltaSentinel}, newNeeds[r].Volume()*elemSize)
			}
			if err := p.Exchange(c, oldBuf, newBuf); err != nil {
				return err
			}
		}
		hits, misses := dc.CacheStats()
		if hits != 2 || misses != 1 {
			return fmt.Errorf("rank %d: cache stats hits=%d misses=%d, want 2/1", r, hits, misses)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompileDeltaValidation pins the compile-time error surface.
func TestCompileDeltaValidation(t *testing.T) {
	if _, err := CompileDelta(0, nil, nil); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := CompileDelta(4, make([]grid.Box, 2), make([]grid.Box, 3)); err == nil {
		t.Error("mismatched geometry lengths accepted")
	}
	if _, err := NewDeltaCompiler(0, 4); err == nil {
		t.Error("zero element size accepted by NewDeltaCompiler")
	}
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		dc, err := NewDeltaCompiler(4, 0)
		if err != nil {
			return err
		}
		if _, err := dc.Compile(c, grid.Box{}, grid.Box1(0, 4)); err == nil {
			return fmt.Errorf("zero-value box accepted (dimensionality is required)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaExchangeBufferValidation pins the execution error surface.
func TestDeltaExchangeBufferValidation(t *testing.T) {
	oldNeeds := []grid.Box{grid.Box1(0, 8), grid.Box1(8, 8)}
	newNeeds := []grid.Box{grid.Box1(0, 12), grid.Box1(12, 4)}
	plans, err := CompileDelta(1, oldNeeds, newNeeds)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Launch(2, func(c *mpi.Comm) error {
		p := plans[c.Rank()]
		short := make([]byte, 1)
		if err := p.Exchange(c, short, nil); err == nil {
			return fmt.Errorf("bad old buffer size accepted")
		}
		oldBuf := make([]byte, 8)
		if err := p.Exchange(c, oldBuf, short); err == nil {
			return fmt.Errorf("bad new buffer size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
