package core

// The plan summary is the canonical JSON shape of a compiled plan: rounds,
// per-round peer lists with packed sizes and contiguity spans, and the
// fused schedule. It is what the golden-plan fixtures under testdata/ pin
// and what the compiler-equivalence tests compare, so its field set and
// JSON tags are part of the fixture format — changing either invalidates
// checked-in fixtures.

// SpanSummary serializes a contiguity span.
type SpanSummary struct {
	Off int  `json:"off"`
	N   int  `json:"n"`
	OK  bool `json:"ok"`
}

// EntrySummary is one (round, peer) plan entry.
type EntrySummary struct {
	Peer int         `json:"peer"`
	Size int         `json:"size"`
	Span SpanSummary `json:"span"`
}

// RoundSummary is one exchange round of one rank's plan.
type RoundSummary struct {
	Sends []EntrySummary `json:"sends"`
	Recvs []EntrySummary `json:"recvs"`
}

// FusedSummary is one peer of the fused schedule.
type FusedSummary struct {
	Peer  int `json:"peer"`
	Bytes int `json:"bytes"`
	One   int `json:"one_round"`
}

// PlanSummary is the serialized summary of one rank's compiled plan.
type PlanSummary struct {
	Rank       int            `json:"rank"`
	Rounds     int            `json:"rounds"`
	RoundPlans []RoundSummary `json:"round_plans"`
	FusedSends []FusedSummary `json:"fused_sends"`
	FusedRecvs []FusedSummary `json:"fused_recvs"`
}

// summarizeRound serializes one round of one direction's sparse table,
// excluding the self entry (which moves no wire bytes) — the same peer
// set, in the same ascending order, as the round's peer list.
func summarizeRound(e *planEntries, r, rank int) []EntrySummary {
	out := []EntrySummary{}
	for i := e.off[r]; i < e.off[r+1]; i++ {
		if e.peers[i] == rank {
			continue
		}
		out = append(out, EntrySummary{
			Peer: e.peers[i],
			Size: e.types[i].PackedSize(),
			Span: SpanSummary{Off: e.spans[i].off, N: e.spans[i].n, OK: e.spans[i].ok},
		})
	}
	return out
}

// Summary flattens the plan into its canonical JSON shape. Two plans with
// equal summaries exchange exactly the same bytes between the same peers
// in the same rounds with the same fast-path decisions.
func (p *Plan) Summary() PlanSummary {
	out := PlanSummary{Rank: p.rank, Rounds: p.rounds}
	for r := 0; r < p.rounds; r++ {
		rd := RoundSummary{Sends: summarizeRound(&p.sendE, r, p.rank), Recvs: summarizeRound(&p.recvE, r, p.rank)}
		out.RoundPlans = append(out.RoundPlans, rd)
	}
	out.FusedSends = []FusedSummary{}
	for i, peer := range p.fusedSendPeers {
		out.FusedSends = append(out.FusedSends, FusedSummary{
			Peer: peer, Bytes: p.fusedSendBytes[i], One: p.fusedSendOne[i],
		})
	}
	out.FusedRecvs = []FusedSummary{}
	for i, peer := range p.fusedRecvPeers {
		out.FusedRecvs = append(out.FusedRecvs, FusedSummary{
			Peer: peer, Bytes: p.fusedRecvBytes[i], One: p.fusedRecvOne[i],
		})
	}
	return out
}
