package core

// PerturbPlanForTest shifts one compiled contiguous receive span by one
// element, simulating an off-by-one in the overlap math. It exists so the
// property-based harness can prove it detects plan-compilation bugs: a
// perturbed rank scatters one peer's payload one element away from where
// it belongs, which must surface as an invariant violation. It returns
// false when the plan has no entry that can be shifted while staying in
// bounds of the need buffer. Never call outside tests.
func (p *Plan) PerturbPlanForTest() bool {
	if p == nil {
		return false
	}
	total := p.need.Volume() * p.elemSize
	for r := range p.recvSpan {
		for peer := range p.recvSpan[r] {
			sp := &p.recvSpan[r][peer]
			if !sp.ok || sp.n == 0 || sp.n >= total {
				continue
			}
			if sp.off+sp.n+p.elemSize <= total {
				sp.off += p.elemSize
				return true
			}
			if sp.off >= p.elemSize {
				sp.off -= p.elemSize
				return true
			}
		}
	}
	return false
}
