package core

import "ddr/internal/grid"

// CompileForTest compiles a plan through the production indexed compiler
// at an explicit parallelism, bypassing the communicator. It exists for
// the compiler-equivalence tests. Never call outside tests.
func CompileForTest(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box, par int) (*Plan, error) {
	return compilePlan(rank, elemSize, allChunks, allNeeds, par)
}

// CompileBruteForTest compiles a plan through the brute-force reference
// compiler (mapping_brute.go), the differential-testing oracle for
// CompileForTest. Never call outside tests.
func CompileBruteForTest(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	return compilePlanBrute(rank, elemSize, allChunks, allNeeds)
}

// CompileBoundedForTest attaches a bounded step schedule compiled for an
// explicit budget to the plan, bypassing the descriptor's auto-selection
// (which only compiles one when the single-shot footprint exceeds the
// budget). It exists for the golden bounded fixtures and the
// meter-enforcement self-tests. Never call outside tests.
func CompileBoundedForTest(p *Plan, budget int) error {
	b, err := compileBounded(p, budget)
	if err != nil {
		return err
	}
	p.bounded = b
	return nil
}

// PerturbBoundedForTest translates one of the bounded schedule's receive
// slices by one cell along an axis (staying inside the need box),
// rebuilding its receive type and span — a step-boundary off-by-one: the
// payload still carries the right bytes, but they land one cell away
// from where they belong. The send half is untouched, so the wire
// lengths still match and only the differential byte comparison (or the
// harness's fill invariant) can catch it. Returns false when no receive
// slice can be shifted while staying in bounds. Never call outside
// tests.
func (p *Plan) PerturbBoundedForTest() bool {
	if p == nil || p.bounded == nil {
		return false
	}
	b := p.bounded
	for _, idx := range b.recvIdx {
		sl := &b.slices[idx]
		for ax := 0; ax < sl.region.NDims; ax++ {
			for _, delta := range [2]int{1, -1} {
				moved := sl.region
				moved.Offset[ax] += delta
				if !p.need.Contains(moved) {
					continue
				}
				t, span, err := boundedType(p.elemSize, p.need, moved, sl.src, true)
				if err != nil {
					continue
				}
				sl.region = moved
				sl.recvT, sl.recvSpan = t, span
				return true
			}
		}
	}
	return false
}

// PerturbPipelineForTest arms a pipelined-schedule bug in this
// descriptor: every pipelined round (or bounded step) recycles its held
// receive payloads to the staging arena one iteration early — right
// after the wait brings them in hand, instead of after the retire has
// scattered them. Because the next round's issue stages its pack
// buffers between those two points, the arena hands the just-freed
// payloads back out and the pack overwrites them before the unpack batch
// reads them — the classic double-buffer lifetime bug a depth-k ring
// must not have. Exchanges at depth 1 (or whose payloads all take the
// contiguous fast path) are unaffected. It exists so both the
// differential sweep and the property harness can prove they detect
// pipelined buffer-lifetime bugs. Never call outside tests.
func (d *Descriptor) PerturbPipelineForTest() {
	d.pipePerturb = true
}

// PerturbPlanForTest shifts one compiled contiguous receive span by one
// element, simulating an off-by-one in the overlap math. It exists so the
// property-based harness can prove it detects plan-compilation bugs: a
// perturbed rank scatters one peer's payload one element away from where
// it belongs, which must surface as an invariant violation. It returns
// false when the plan has no entry that can be shifted while staying in
// bounds of the need buffer. Never call outside tests.
func (p *Plan) PerturbPlanForTest() bool {
	if p == nil {
		return false
	}
	total := p.need.Volume() * p.elemSize
	for i := range p.recvE.spans {
		sp := &p.recvE.spans[i]
		if !sp.ok || sp.n == 0 || sp.n >= total {
			continue
		}
		if sp.off+sp.n+p.elemSize <= total {
			sp.off += p.elemSize
			return true
		}
		if sp.off >= p.elemSize {
			sp.off -= p.elemSize
			return true
		}
	}
	return false
}
