package core

import "ddr/internal/grid"

// CompileForTest compiles a plan through the production indexed compiler
// at an explicit parallelism, bypassing the communicator. It exists for
// the compiler-equivalence tests. Never call outside tests.
func CompileForTest(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box, par int) (*Plan, error) {
	return compilePlan(rank, elemSize, allChunks, allNeeds, par)
}

// CompileBruteForTest compiles a plan through the brute-force reference
// compiler (mapping_brute.go), the differential-testing oracle for
// CompileForTest. Never call outside tests.
func CompileBruteForTest(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	return compilePlanBrute(rank, elemSize, allChunks, allNeeds)
}

// PerturbPlanForTest shifts one compiled contiguous receive span by one
// element, simulating an off-by-one in the overlap math. It exists so the
// property-based harness can prove it detects plan-compilation bugs: a
// perturbed rank scatters one peer's payload one element away from where
// it belongs, which must surface as an invariant violation. It returns
// false when the plan has no entry that can be shifted while staying in
// bounds of the need buffer. Never call outside tests.
func (p *Plan) PerturbPlanForTest() bool {
	if p == nil {
		return false
	}
	total := p.need.Volume() * p.elemSize
	for i := range p.recvE.spans {
		sp := &p.recvE.spans[i]
		if !sp.ok || sp.n == 0 || sp.n >= total {
			continue
		}
		if sp.off+sp.n+p.elemSize <= total {
			sp.off += p.elemSize
			return true
		}
		if sp.off >= p.elemSize {
			sp.off -= p.elemSize
			return true
		}
	}
	return false
}
