package core

import (
	"container/list"
	"encoding/binary"

	"ddr/internal/mpi"
)

// Plan caching. SetupDataMapping is a collective whose cost — a geometry
// allgather plus an O(chunks·overlaps) compile — is pure waste when the
// layout it describes was already mapped: in-transit couplings reconnect
// with the producer and consumer grids unchanged, and simulations cycle
// through a small set of decompositions (compute layout ↔ I/O layout).
// The cache keys compiled plans by a fingerprint of the canonical
// geometry encoding, so re-establishing a known mapping costs two small
// collectives instead of a full compile.
//
// Correctness hinges on the decision being collectively consistent: a
// rank that replays a cached plan while another compiles would leave the
// compiler's allgather short one participant and deadlock the world. The
// lookup therefore agrees collectively — an allgather of per-rank
// geometry hashes (from which every rank derives the same global
// fingerprint) followed by one min-allreduce that simultaneously checks
// the fingerprint is unanimous and that every rank holds a matching
// entry. Only a unanimous yes replays the cache; any dissent routes all
// ranks through the compile path together.
//
// A fingerprint collision (two geometries, one hash) is defended locally:
// the hit callback compares the cached plan's own geometry against the
// rank's current contribution, and any mismatch votes miss.

// FNV-1a, the 64-bit variant — stable across processes and runs, unlike
// maphash, so fingerprints can be compared between ranks.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// hash64 folds b into the running FNV-1a state h.
func hash64(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// geometryFingerprint derives the global-geometry fingerprint from the
// allgathered per-rank canonical encodings — the same fold the cache
// lookup performs over gathered per-rank hashes, for the cache-disabled
// path that has the full encodings in hand. Every rank holds the same
// gathered set, so every rank derives the same value.
func geometryFingerprint(packed [][]byte) uint64 {
	fp := uint64(fnvOffset64)
	var h [8]byte
	for _, enc := range packed {
		binary.LittleEndian.PutUint64(h[:], hash64(fnvOffset64, enc))
		fp = hash64(fp, h[:])
	}
	return fp
}

// topoHash folds the communicator's topology fingerprint into the
// running hash state h, so the effective cache key is (geometry ×
// topology): a plan compiled for one node placement never replays on a
// flat world or a different placement that happens to share the
// geometry. Flat worlds (nil topology) contribute nothing, keeping
// their fingerprints identical to the pre-topology format.
func topoHash(h uint64, c *mpi.Comm) uint64 {
	tf := c.Topology().Fingerprint()
	if tf == 0 {
		return h
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], tf)
	return hash64(h, b[:])
}

// saltHash folds a descriptor-level salt into the running hash state h.
// The bounded backend salts fingerprints with its memory budget so plans
// compiled for different budgets — whose step schedules, autotune
// entries, and exchange identities all differ — never replay for each
// other. Salt 0 (no budget) contributes nothing, keeping unbudgeted
// fingerprints byte-identical to the historical format.
func saltHash(h, salt uint64) uint64 {
	if salt == 0 {
		return h
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	return hash64(h, b[:])
}

// mixExchangeID mints an exchange ID from the plan fingerprint and the
// descriptor's lockstep exchange counter. The splitmix64 finalizer
// scatters consecutive counters across the keyspace so IDs from
// different plans or runs do not collide on low bits; zero is reserved
// for "no trace context" and remapped.
func mixExchangeID(fp, seq uint64) uint64 {
	z := (fp ^ seq) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// cacheKey identifies a cached plan: the global-geometry fingerprint plus
// the rank the plan was compiled for (plans are rank-specific — each holds
// only its own rank's schedule).
type cacheKey struct {
	fp   uint64
	rank int
}

// planCache is a small LRU of compiled plans, generic over the plan type
// so the single-need Descriptor (*Plan) and the MultiDescriptor
// (*multiPlan) share one implementation. Like the descriptors that embed
// it, it is not safe for concurrent use.
type planCache[T any] struct {
	limit int
	ll    *list.List // front = most recently used
	byKey map[cacheKey]*list.Element

	// lastKey carries the fingerprint computed by the latest lookup to the
	// store call that follows a miss.
	lastKey cacheKey
}

type cacheEntry[T any] struct {
	key cacheKey
	val T
}

func newPlanCache[T any](limit int) *planCache[T] {
	return &planCache[T]{limit: limit, ll: list.New(), byKey: make(map[cacheKey]*list.Element)}
}

// lookup fingerprints the global geometry from this rank's canonical
// encoding enc and collectively decides whether every rank can replay a
// cached plan. salt is folded into every rank's local hash (see
// saltHash); it must be uniform across ranks, like the geometry itself —
// a disagreement surfaces as a fingerprint mismatch, which routes all
// ranks through the compile path together. match confirms a candidate
// was compiled from exactly this rank's current geometry (the collision
// defense). Returns the plan and true only on a unanimous hit; otherwise
// the caller must compile and then call store, on every rank.
func (pc *planCache[T]) lookup(c *mpi.Comm, enc []byte, salt uint64, match func(T) bool) (T, bool, error) {
	var zero T

	// Every rank contributes the hash of its own geometry; the global
	// fingerprint folds the gathered hashes in rank order, so all ranks
	// derive the same 64-bit value for the same global geometry.
	var local [8]byte
	binary.LittleEndian.PutUint64(local[:], saltHash(topoHash(hash64(fnvOffset64, enc), c), salt))
	gathered, err := c.Allgather(local[:])
	if err != nil {
		return zero, false, err
	}
	fp := uint64(fnvOffset64)
	for _, h := range gathered {
		fp = hash64(fp, h)
	}
	key := cacheKey{fp: fp, rank: c.Rank()}
	pc.lastKey = key

	have := int64(0)
	var hit T
	if el, ok := pc.byKey[key]; ok {
		ent := el.Value.(*cacheEntry[T])
		if match(ent.val) {
			have = 1
			hit = ent.val
		}
	}

	// One allreduce settles both questions. min(x) == x and min(-x) == -x
	// together mean x is unanimous, so the fingerprint halves (split to
	// stay inside AllreduceInt64's exact float64 range) verify every rank
	// fingerprinted the same geometry, and min(have) == 1 means every rank
	// holds a matching plan. Anything less is a collective miss.
	hi, lo := int64(fp>>32), int64(fp&0xffffffff)
	votes, err := c.AllreduceInt64([]int64{hi, lo, -hi, -lo, have}, mpi.OpMin)
	if err != nil {
		return zero, false, err
	}
	if votes[0] != hi || votes[1] != lo || votes[2] != -hi || votes[3] != -lo || votes[4] != 1 {
		return zero, false, nil
	}
	pc.ll.MoveToFront(pc.byKey[key])
	return hit, true, nil
}

// store records the plan compiled after a miss under the fingerprint that
// lookup computed, evicting the least recently used entry beyond the
// cache's capacity.
func (pc *planCache[T]) store(val T) {
	if el, ok := pc.byKey[pc.lastKey]; ok {
		el.Value.(*cacheEntry[T]).val = val
		pc.ll.MoveToFront(el)
		return
	}
	pc.byKey[pc.lastKey] = pc.ll.PushFront(&cacheEntry[T]{key: pc.lastKey, val: val})
	for pc.ll.Len() > pc.limit {
		back := pc.ll.Back()
		pc.ll.Remove(back)
		delete(pc.byKey, back.Value.(*cacheEntry[T]).key)
	}
}

// len reports the number of cached plans.
func (pc *planCache[T]) len() int { return pc.ll.Len() }
