package core

import (
	"fmt"

	"ddr/internal/datatype"
	"ddr/internal/grid"
)

// compilePlanBrute is the reference compiler: it intersects every chunk
// against every peer's need linearly over dense (round, peer) tables,
// exactly as the original implementation of the paper's
// DDR_SetupDataMapping did. It is retained solely as the
// differential-testing oracle for the indexed parallel compiler in
// compilePlan — the two must produce byte-identical plans for every
// geometry (see TestCompilerEquivalence and the ddrtest sweep) — and as
// the baseline the mapping benchmarks measure the indexed compiler
// against. Production paths never call it. The trailing conversion packs
// the dense tables into the Plan's sparse representation without
// changing any entry.
func compilePlanBrute(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	nProcs := len(allNeeds)
	rounds := 0
	for _, chunks := range allChunks {
		rounds = max(rounds, len(chunks))
	}
	p := &Plan{
		elemSize:  elemSize,
		rank:      rank,
		nProcs:    nProcs,
		rounds:    rounds,
		myChunks:  allChunks[rank],
		need:      allNeeds[rank],
		allChunks: allChunks,
		allNeeds:  allNeeds,
		sendPeers: make([][]int, rounds),
		recvPeers: make([][]int, rounds),
	}
	send := make([][]datatype.Type, rounds)
	recv := make([][]datatype.Type, rounds)
	sendSpan := make([][]contigSpan, rounds)
	recvSpan := make([][]contigSpan, rounds)
	for r := 0; r < rounds; r++ {
		send[r] = make([]datatype.Type, nProcs)
		recv[r] = make([]datatype.Type, nProcs)
		sendSpan[r] = make([]contigSpan, nProcs)
		recvSpan[r] = make([]contigSpan, nProcs)
		for peer := 0; peer < nProcs; peer++ {
			send[r][peer] = datatype.Empty{}
			recv[r][peer] = datatype.Empty{}
		}
		// Sends: the overlap of my round-r chunk with each peer's need.
		if r < len(p.myChunks) {
			chunk := p.myChunks[r]
			for peer := 0; peer < nProcs; peer++ {
				ov, ok := chunk.Intersect(allNeeds[peer])
				if !ok {
					continue
				}
				st, err := datatype.NewSubarray(elemSize, chunk, ov)
				if err != nil {
					return nil, fmt.Errorf("core: send type to rank %d: %w", peer, err)
				}
				send[r][peer] = st
				if peer != rank {
					p.sendPeers[r] = append(p.sendPeers[r], peer)
				}
			}
		}
		// Receives: the overlap of each peer's round-r chunk with my need.
		for peer := 0; peer < nProcs; peer++ {
			if r >= len(allChunks[peer]) {
				continue
			}
			ov, ok := allChunks[peer][r].Intersect(p.need)
			if !ok {
				continue
			}
			rt, err := datatype.NewSubarray(elemSize, p.need, ov)
			if err != nil {
				return nil, fmt.Errorf("core: recv type from rank %d: %w", peer, err)
			}
			recv[r][peer] = rt
			if peer != rank {
				p.recvPeers[r] = append(p.recvPeers[r], peer)
			}
		}
	}
	// Contiguity detection.
	for r := 0; r < rounds; r++ {
		for peer := 0; peer < nProcs; peer++ {
			if send[r][peer].PackedSize() > 0 {
				off, n, ok := send[r][peer].ContiguousSpan()
				sendSpan[r][peer] = contigSpan{off: off, n: n, ok: ok}
			}
			if recv[r][peer].PackedSize() > 0 {
				off, n, ok := recv[r][peer].ContiguousSpan()
				recvSpan[r][peer] = contigSpan{off: off, n: n, ok: ok}
			}
		}
	}
	// Fused-mode precomputation: the pre-PR O(R·P) sweep over the dense
	// tables.
	bruteFused(p, send, recv)
	// Pack the dense tables into the sparse plan representation.
	p.sendE = denseToEntries(send, sendSpan)
	p.recvE = denseToEntries(recv, recvSpan)
	return p, nil
}

// bruteFused derives the fused-mode schedule by sweeping the dense
// tables, the reference for precomputeFusedFromJobs.
func bruteFused(p *Plan, send, recv [][]datatype.Type) {
	for peer := 0; peer < p.nProcs; peer++ {
		sendBytes, recvBytes := 0, 0
		sendOne, recvOne := -1, -1
		sendRounds, recvRounds := 0, 0
		for r := 0; r < p.rounds; r++ {
			if n := send[r][peer].PackedSize(); n > 0 {
				sendBytes += n
				sendOne = r
				sendRounds++
			}
			if n := recv[r][peer].PackedSize(); n > 0 {
				recvBytes += n
				recvOne = r
				recvRounds++
			}
		}
		if sendRounds != 1 {
			sendOne = -1
		}
		if recvRounds != 1 {
			recvOne = -1
		}
		if peer == p.rank {
			continue
		}
		if sendBytes > 0 {
			p.fusedSendPeers = append(p.fusedSendPeers, peer)
			p.fusedSendBytes = append(p.fusedSendBytes, sendBytes)
			p.fusedSendOne = append(p.fusedSendOne, sendOne)
		}
		if recvBytes > 0 {
			p.fusedRecvPeers = append(p.fusedRecvPeers, peer)
			p.fusedRecvBytes = append(p.fusedRecvBytes, recvBytes)
			p.fusedRecvOne = append(p.fusedRecvOne, recvOne)
		}
	}
}

// denseToEntries packs one direction's dense tables into the sparse
// entry layout: non-empty slots in (round, peer) order.
func denseToEntries(types [][]datatype.Type, spans [][]contigSpan) planEntries {
	e := planEntries{off: make([]int, len(types)+1)}
	for r := range types {
		e.off[r] = len(e.peers)
		for peer, t := range types[r] {
			if t.PackedSize() == 0 {
				continue
			}
			e.peers = append(e.peers, peer)
			e.types = append(e.types, t)
			e.spans = append(e.spans, spans[r][peer])
		}
	}
	e.off[len(types)] = len(e.peers)
	return e
}
