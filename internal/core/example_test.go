package core_test

import (
	"fmt"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Example reproduces the paper's E1 on four ranks: two separate rows
// owned per rank redistribute into one quadrant per rank. Only rank 0
// prints, so the output is deterministic.
func Example() {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		rank := c.Rank()
		own := []grid.Box{
			grid.Box2(0, rank, 8, 1),
			grid.Box2(0, rank+4, 8, 1),
		}
		need := grid.Box2(4*(rank%2), 4*(rank/2), 4, 4)

		// Owned data: each byte holds 10*y + x (fits for this domain).
		bufs := make([][]byte, len(own))
		for i, b := range own {
			row := make([]byte, 8)
			for x := range row {
				row[x] = byte(10*b.Offset[1] + x)
			}
			bufs[i] = row
		}

		desc, err := core.NewDescriptor(4, core.Layout2D, core.Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		out := make([]byte, need.Volume())
		if err := desc.ReorganizeData(c, bufs, out); err != nil {
			return err
		}
		if rank == 0 {
			fmt.Printf("rounds: %d\n", desc.Plan().Rounds())
			for y := 0; y < 4; y++ {
				fmt.Println(out[4*y : 4*y+4])
			}
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// rounds: 2
	// [0 1 2 3]
	// [10 11 12 13]
	// [20 21 22 23]
	// [30 31 32 33]
}

// ExampleNewPlanFromGeometry analyzes a redistribution offline — no
// ranks, no data — to size its communication (the paper's Table III
// quantities).
func ExampleNewPlanFromGeometry() {
	domain := grid.Box3(0, 0, 0, 64, 64, 64)
	chunks := [][]grid.Box{
		{grid.Slabs(domain, 2, 2)[0]},
		{grid.Slabs(domain, 2, 2)[1]},
	}
	needs := grid.Slabs(domain, 0, 2) // x-pencils
	plan, err := core.NewPlanFromGeometry(0, 4, chunks, needs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := plan.Stats()
	fmt.Printf("rounds=%d wireMiB=%.1f selfMiB=%.1f\n",
		s.Rounds, float64(s.TotalWireBytes)/(1<<20), float64(s.SelfBytes)/(1<<20))
	// Output:
	// rounds=1 wireMiB=0.5 selfMiB=0.5
}
