package core

import "ddr/internal/mpi"

// Two-level schedule emission. On a hierarchical world the transport
// aggregates every cross-node message onto its node-leader TCP flows, so
// the traffic that actually crosses the network is described not by the
// plan's rank-to-rank entries but by their node-level aggregation:
// per round, one flow per (source node, destination node) pair that
// exchanges any data — O(nodes²) flows where the flat schedule has up to
// O(ranks²) point-to-point messages. TwoLevelSchedule computes that
// aggregation from the plan's gathered global geometry; like Stats it is
// local and deterministic, so every rank derives the identical schedule.

// NodeFlow is one inter-node flow of a two-level schedule round: all the
// rank-to-rank messages from ranks on SrcNode to ranks on DstNode,
// aggregated onto the single leader-to-leader connection that carries
// them.
type NodeFlow struct {
	SrcNode, DstNode int
	Bytes            int64 // payload bytes aggregated onto the flow
	Msgs             int   // rank-pair messages the flow carries
}

// TwoLevelRound describes one exchange round at node granularity.
type TwoLevelRound struct {
	// Flows lists the round's cross-node flows, source-node major. Its
	// length is bounded by nodes·(nodes-1) regardless of world size.
	Flows []NodeFlow
	// IntraNodeBytes counts bytes between distinct ranks that share a
	// node — traffic that stays on the shared-memory transport.
	IntraNodeBytes int64
}

// TwoLevelSchedule is the node-level aggregation of a plan's traffic.
type TwoLevelSchedule struct {
	Nodes  int
	Rounds []TwoLevelRound

	CrossNodeBytes int64 // total bytes on inter-node flows
	IntraNodeBytes int64 // total bytes between distinct same-node ranks
	CrossPairs     int   // distinct cross-node rank pairs aggregated
	CrossFlows     int   // total flows over all rounds
}

// MaxFlowsPerRound returns the largest number of simultaneous inter-node
// flows in any round — the quantity the hierarchy bounds by
// nodes·(nodes-1).
func (s TwoLevelSchedule) MaxFlowsPerRound() int {
	m := 0
	for _, r := range s.Rounds {
		if len(r.Flows) > m {
			m = len(r.Flows)
		}
	}
	return m
}

// TwoLevelSchedule aggregates the plan's rank-to-rank traffic into the
// node-level flows a hierarchical world carries, given the node
// placement. A nil topology describes a flat (single-node) world: every
// byte is intra-node and no flows are emitted. Self traffic (a rank's
// owned chunk overlapping its own need) never reaches a transport and is
// excluded, matching Stats.
func (p *Plan) TwoLevelSchedule(topo *mpi.Topology) TwoLevelSchedule {
	nodes := 1
	if topo != nil {
		nodes = topo.NumNodes()
	}
	s := TwoLevelSchedule{Nodes: nodes, Rounds: make([]TwoLevelRound, p.rounds)}
	// Dense per-round accumulators, reused across rounds: nodes is small
	// by construction (that is the point of the hierarchy).
	bytesAt := make([]int64, nodes*nodes)
	msgsAt := make([]int, nodes*nodes)
	pairSeen := make(map[[2]int]struct{})
	for r := 0; r < p.rounds; r++ {
		round := &s.Rounds[r]
		for i := range bytesAt {
			bytesAt[i], msgsAt[i] = 0, 0
		}
		for rank := 0; rank < p.nProcs; rank++ {
			if r >= len(p.allChunks[rank]) {
				continue
			}
			chunk := p.allChunks[rank][r]
			srcNode := 0
			if topo != nil {
				srcNode = topo.NodeOf(rank)
			}
			for peer := 0; peer < p.nProcs; peer++ {
				if peer == rank {
					continue
				}
				ov, ok := chunk.Intersect(p.allNeeds[peer])
				if !ok || ov.Empty() {
					continue
				}
				bytes := int64(ov.Volume()) * int64(p.elemSize)
				dstNode := 0
				if topo != nil {
					dstNode = topo.NodeOf(peer)
				}
				if srcNode == dstNode {
					round.IntraNodeBytes += bytes
					continue
				}
				slot := srcNode*nodes + dstNode
				bytesAt[slot] += bytes
				msgsAt[slot]++
				pairSeen[[2]int{rank, peer}] = struct{}{}
			}
		}
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				slot := src*nodes + dst
				if msgsAt[slot] == 0 {
					continue
				}
				round.Flows = append(round.Flows, NodeFlow{
					SrcNode: src, DstNode: dst, Bytes: bytesAt[slot], Msgs: msgsAt[slot],
				})
				s.CrossNodeBytes += bytesAt[slot]
			}
		}
		s.IntraNodeBytes += round.IntraNodeBytes
		s.CrossFlows += len(round.Flows)
	}
	s.CrossPairs = len(pairSeen)
	return s
}
