package core

import (
	"errors"
	"fmt"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// The memory-bounded plan backend. The one-shot exchange paths stage, per
// rank, every send and receive region of a round (or, fused, of the whole
// exchange) at once, so their peak staging footprint is proportional to
// the data moved — exactly where the paper's in-transit coupling hurts at
// scale. Following the decomposition of "Memory-efficient array
// redistribution through portable collective communication" (Rink et
// al.), CompileBounded rewrites the same transfer as a sequence of
// bounded-footprint steps: every overlap region is sliced into pieces
// whose class-rounded wire size fits the configured budget, the slices
// are packed greedily into steps such that no rank's modeled staging
// (sends charged to the source, payloads to the destination, both at the
// arena's class granularity) exceeds the budget within a step, and the
// exchange executes the steps in order — slice, exchange, place — through
// the same staging arena and chunked wire lanes as the one-shot paths.
//
// The schedule is a pure function of the global geometry, the element
// size, and the budget, so every rank derives the identical slice list
// and step boundaries from the allgathered geometry with no extra
// communication. The budget is folded into the plan fingerprint
// (plancache.go), so cached plans, autotune keys, and exchange IDs all
// key on it; it must be uniform across ranks, like the exchange mode.
//
// Budget semantics: WithMemoryBudget bounds the bytes of exchange-layer
// staging a rank holds at once — pack buffers plus received payloads
// between delivery and placement — rounded up to the staging arena's
// class sizes (mpi.BufferClassSize). Transport-internal transit copies
// (mailbox deliveries not yet received, TCP socket buffers) are outside
// the bound; they are themselves bounded by the transports' chunk lanes.
// A live mpi.StagingMeter on the descriptor measures the real high-water
// mark of every bounded exchange, and the test harness asserts measured
// peak <= budget at every tier down to the one-chunk minimum.

// ErrBudgetTooSmall reports a WithMemoryBudget value below the smallest
// staging-arena class needed to move even a single element.
var ErrBudgetTooSmall = errors.New("core: memory budget below the minimum staging class")

// boundedTagBase is the first tag of the bounded exchange's range. Every
// slice gets its own tag (base + global slice index), so duplicated or
// reordered deliveries can never satisfy the wrong receive. The range
// sits above the round tags (ddrTagBase+round) and below the delta
// exchange's deltaTag.
const boundedTagBase = ddrTagBase + (1 << 18)

// boundedSlice is one slice of one overlap region: the piece of src's
// chunk that lands in dst's need box during one step.
type boundedSlice struct {
	src, dst int
	chunk    int      // index into allChunks[src]
	region   grid.Box // global coordinates; region ⊆ chunk ∩ need
	bytes    int      // region volume × element size
	tag      int
	step     int

	// Local halves, built only on the ranks that execute the slice.
	sendT    datatype.Type // non-nil when src is the local rank
	recvT    datatype.Type // non-nil when dst is the local rank
	sendSpan contigSpan
	recvSpan contigSpan
}

// boundedPlan is the compiled step sequence plus this rank's flattened
// execution schedule, precomputed so the exchange walks plain index
// ranges with no per-call filtering or allocation.
type boundedPlan struct {
	budget   int // configured ceiling, bytes
	maxSlice int // per-slice payload cap, bytes
	steps    int
	slices   []boundedSlice

	// This rank's slice indices in execution order, with [steps+1]
	// offset tables delimiting each step's range.
	sendIdx []int // src == rank (self included), global order
	recvIdx []int // dst == rank && src != rank
	sendOff []int
	recvOff []int

	wireBytes int64 // bytes this rank sends to other ranks
	peak      int   // modeled worst per-step footprint of this rank
}

// WithMemoryBudget bounds the exchange-layer staging of every
// ReorganizeData call to at most n bytes per rank (class-rounded, see the
// package comment above). When the single-shot footprint of the mapped
// geometry would exceed the budget on any rank, SetupDataMapping
// compiles the bounded step backend and ReorganizeData executes it; when
// the geometry fits, the one-shot paths run unchanged. The budget must
// be uniform across ranks and is part of the plan-cache key. n <= 0 (the
// default) disables the bound.
func WithMemoryBudget(n int) Option {
	return func(d *Descriptor) { d.budget = n }
}

// MemoryBudget returns the ceiling set with WithMemoryBudget (0 when
// unset).
func (d *Descriptor) MemoryBudget() int { return d.budget }

// fpSalt is the descriptor's fingerprint salt: the memory budget when
// one is set, 0 (a no-op, see saltHash) otherwise. Folding it into the
// plan fingerprint keys the plan cache, the autotune cache, and minted
// exchange IDs on the budget alongside the geometry and topology.
func (d *Descriptor) fpSalt() uint64 { return uint64(max(d.budget, 0)) }

// BoundedSteps reports the number of bounded steps the current plan
// executes per exchange, or 0 when the one-shot path is selected.
func (d *Descriptor) BoundedSteps() int {
	if d.plan == nil || d.plan.bounded == nil {
		return 0
	}
	return d.plan.bounded.steps
}

// LastPeakStaging reports the measured high-water mark of exchange-layer
// staging bytes during the most recent bounded ReorganizeData call (0
// before the first, and 0 when the one-shot path ran — the meter only
// arms on the bounded backend).
func (d *Descriptor) LastPeakStaging() int64 { return d.lastPeakStaging }

// maxSliceBytes returns the largest slice payload whose class-rounded
// staging charge fits the budget, or 0 when no class does.
func maxSliceBytes(budget int) int {
	if budget < 1<<minStagingShift {
		return 0
	}
	if budget >= 1<<maxStagingShift {
		// Beyond the largest class the arena charges exact sizes.
		return budget
	}
	// Largest power of two <= budget is the largest class that fits.
	n := 1
	for n<<1 <= budget {
		n <<= 1
	}
	return n
}

// The arena's class range, mirrored from internal/mpi (asserted against
// mpi.BufferClassSize in the tests so drift is caught).
const (
	minStagingShift = 8  // 256 B
	maxStagingShift = 26 // 64 MiB
)

// appendSlices splits box b into deterministic pieces of at most maxElems
// cells, slicing along the outermost axis first (z, then y, then x) so
// pieces stay as row-contiguous as the bound allows. A single cell is the
// floor; maxElems >= 1 is required.
func appendSlices(dst []grid.Box, b grid.Box, maxElems int) []grid.Box {
	if b.Volume() <= maxElems {
		return append(dst, b)
	}
	ax := -1
	for i := b.NDims - 1; i >= 0; i-- {
		if b.Dims[i] > 1 {
			ax = i
			break
		}
	}
	if ax < 0 {
		return append(dst, b)
	}
	unit := b.Volume() / b.Dims[ax] // cells per unit-thick slab along ax
	per := maxElems / unit
	if per < 1 {
		per = 1
	}
	for o := 0; o < b.Dims[ax]; o += per {
		sub := b
		sub.Offset[ax] = b.Offset[ax] + o
		sub.Dims[ax] = min(per, b.Dims[ax]-o)
		if sub.Volume() <= maxElems {
			dst = append(dst, sub)
		} else {
			dst = appendSlices(dst, sub, maxElems)
		}
	}
	return dst
}

// SingleShotFootprint returns the worst per-rank staging footprint, in
// class-rounded bytes, that the one-shot exchange paths would reach for
// this plan's geometry under the given mode: per rank, the largest
// round's send+receive staging (round modes) or the whole fused
// schedule's (fused mode). The value is derived from the global geometry
// alone, so every rank computes the same number — it is the quantity the
// bounded backend's auto-selection compares against the budget, keeping
// the selection collectively consistent.
func (p *Plan) SingleShotFootprint(mode ExchangeMode) int {
	nProcs, rounds := p.nProcs, p.rounds
	if rounds == 0 {
		return 0
	}
	cls := mpi.BufferClassSize
	if mode == ModePointToPointFused {
		// Fused concatenates each peer pair's rounds into one message:
		// per rank, every outgoing and incoming pair total is staged at
		// once. pair[src*nProcs+dst] accumulates the pair's bytes.
		pair := make([]int, nProcs*nProcs)
		forEachOverlap(p.allChunks, p.allNeeds, func(src, _, dst int, ov grid.Box) {
			pair[src*nProcs+dst] += ov.Volume() * p.elemSize
		})
		worst := 0
		for r := 0; r < nProcs; r++ {
			total := 0
			for peer := 0; peer < nProcs; peer++ {
				total += cls(pair[r*nProcs+peer]) + cls(pair[peer*nProcs+r])
			}
			worst = max(worst, total)
		}
		return worst
	}
	// Round modes stage one round's sends and receives at a time; round
	// r moves each rank's r-th chunk.
	send := make([]int, nProcs*rounds)
	recv := make([]int, nProcs*rounds)
	forEachOverlap(p.allChunks, p.allNeeds, func(src, chunk, dst int, ov grid.Box) {
		n := cls(ov.Volume() * p.elemSize)
		send[src*rounds+chunk] += n
		recv[dst*rounds+chunk] += n
	})
	worst := 0
	for r := 0; r < nProcs; r++ {
		for rr := 0; rr < rounds; rr++ {
			worst = max(worst, send[r*rounds+rr]+recv[r*rounds+rr])
		}
	}
	return worst
}

// forEachOverlap visits every (source chunk × destination need) overlap
// of the global geometry in the canonical order — source rank, then that
// rank's chunk index, then destination rank ascending. The bounded slice
// enumeration, the footprint model, and the step packer all iterate this
// order, which is what makes the schedule identical on every rank.
func forEachOverlap(allChunks [][]grid.Box, allNeeds []grid.Box, f func(src, chunk, dst int, ov grid.Box)) {
	ix := grid.NewIndex(allNeeds)
	var hits []int
	for src, chunks := range allChunks {
		for ci, chunk := range chunks {
			hits = ix.QueryAppend(hits[:0], chunk)
			for _, dst := range hits {
				if ov, ok := chunk.Intersect(allNeeds[dst]); ok && !ov.Empty() {
					f(src, ci, dst, ov)
				}
			}
		}
	}
}

// compileBounded builds the bounded step schedule for plan p under the
// given budget. The slice list and step boundaries depend only on the
// global geometry, elemSize, and budget; the local send/recv types are
// built only for p.rank's slices.
func compileBounded(p *Plan, budget int) (*boundedPlan, error) {
	maxSlice := maxSliceBytes(budget)
	if maxSlice < p.elemSize {
		return nil, fmt.Errorf("core: budget %d cannot stage one %d-byte element: %w",
			budget, p.elemSize, ErrBudgetTooSmall)
	}
	maxElems := maxSlice / p.elemSize

	b := &boundedPlan{budget: budget, maxSlice: maxSlice}

	// Enumerate slices in the canonical global order, packing them
	// greedily into steps: a slice whose class-rounded charge would push
	// its source's or destination's running step load past the budget
	// closes the step. Every slice fits an empty step by construction,
	// so the packer always terminates.
	load := make([]int, p.nProcs)
	step := 0
	var boxes []grid.Box
	var err error
	forEachOverlap(p.allChunks, p.allNeeds, func(src, ci, dst int, ov grid.Box) {
		if err != nil {
			return
		}
		boxes = appendSlices(boxes[:0], ov, maxElems)
		for _, region := range boxes {
			bytes := region.Volume() * p.elemSize
			l := mpi.BufferClassSize(bytes)
			if load[src]+l > budget || (dst != src && load[dst]+l > budget) {
				step++
				clear(load)
			}
			load[src] += l
			if dst != src {
				load[dst] += l
			}
			sl := boundedSlice{
				src: src, dst: dst, chunk: ci, region: region,
				bytes: bytes, tag: boundedTagBase + len(b.slices), step: step,
			}
			if src == p.rank {
				sl.sendT, sl.sendSpan, err = boundedType(p.elemSize, p.allChunks[src][ci], region, dst, false)
				if err != nil {
					return
				}
			}
			if dst == p.rank {
				sl.recvT, sl.recvSpan, err = boundedType(p.elemSize, p.need, region, src, true)
				if err != nil {
					return
				}
			}
			b.slices = append(b.slices, sl)
		}
	})
	if err != nil {
		return nil, err
	}
	if len(b.slices) > 0 {
		b.steps = step + 1
	}

	// Flatten this rank's schedule with per-step offsets. Slice order is
	// step-monotone, so one pass fills both lists and their offsets.
	b.sendOff = make([]int, b.steps+1)
	b.recvOff = make([]int, b.steps+1)
	peakStep, peakLoad := -1, 0
	for i := range b.slices {
		sl := &b.slices[i]
		if sl.src == p.rank {
			b.sendIdx = append(b.sendIdx, i)
			if sl.dst != p.rank {
				b.wireBytes += int64(sl.bytes)
			}
		}
		if sl.dst == p.rank && sl.src != p.rank {
			b.recvIdx = append(b.recvIdx, i)
		}
		if sl.src == p.rank || sl.dst == p.rank {
			l := mpi.BufferClassSize(sl.bytes)
			if sl.step != peakStep {
				peakStep, peakLoad = sl.step, 0
			}
			peakLoad += l
			b.peak = max(b.peak, peakLoad)
		}
		b.sendOff[sl.step+1] = len(b.sendIdx)
		b.recvOff[sl.step+1] = len(b.recvIdx)
	}
	for s := 1; s <= b.steps; s++ {
		b.sendOff[s] = max(b.sendOff[s], b.sendOff[s-1])
		b.recvOff[s] = max(b.recvOff[s], b.recvOff[s-1])
	}
	return b, nil
}

// boundedType builds one local half of a slice: the subarray addressing
// region inside base (the owned chunk for sends, the need box for
// receives) plus its contiguity span.
func boundedType(elemSize int, base, region grid.Box, peer int, recv bool) (datatype.Type, contigSpan, error) {
	t, err := datatype.NewSubarray(elemSize, base, region)
	if err != nil {
		dir := "bounded send type to"
		if recv {
			dir = "bounded recv type from"
		}
		return nil, contigSpan{}, fmt.Errorf("core: %s rank %d: %w", dir, peer, err)
	}
	off, n, ok := t.ContiguousSpan()
	return t, contigSpan{off: off, n: n, ok: ok}, nil
}

// ensureBounded attaches (or clears) the plan's bounded schedule
// according to the descriptor's budget: compiled when the geometry's
// worst single-shot footprint exceeds the budget, absent otherwise. The
// decision derives from collectively shared inputs only, so every rank
// takes the same branch. Plans are cached per descriptor and the budget
// and mode are descriptor constants, so attaching once is stable across
// cache replays.
func (d *Descriptor) ensureBounded(p *Plan) error {
	if d.budget <= 0 {
		return nil
	}
	if p.SingleShotFootprint(d.mode) <= d.budget {
		p.bounded = nil
		return nil
	}
	if p.bounded != nil && p.bounded.budget == d.budget {
		return nil
	}
	b, err := compileBounded(p, d.budget)
	if err != nil {
		return err
	}
	p.bounded = b
	return nil
}

// BoundedSliceSummary serializes one slice of the bounded schedule.
type BoundedSliceSummary struct {
	Step   int   `json:"step"`
	Src    int   `json:"src"`
	Dst    int   `json:"dst"`
	Chunk  int   `json:"chunk"`
	Offset []int `json:"offset"`
	Dims   []int `json:"dims"`
	Bytes  int   `json:"bytes"`
	Tag    int   `json:"tag"`
}

// BoundedSummary is the canonical JSON shape of a bounded step schedule.
// The schedule is global — identical on every rank — so one summary pins
// the whole world's step decomposition. It is what the golden bounded
// fixtures under testdata/ record.
type BoundedSummary struct {
	Budget   int                   `json:"budget"`
	MaxSlice int                   `json:"max_slice"`
	Steps    int                   `json:"steps"`
	Slices   []BoundedSliceSummary `json:"slices"`
}

// BoundedSummary flattens the plan's bounded schedule, or returns a zero
// summary when no bounded schedule is attached.
func (p *Plan) BoundedSummary() BoundedSummary {
	b := p.bounded
	if b == nil {
		return BoundedSummary{Slices: []BoundedSliceSummary{}}
	}
	out := BoundedSummary{
		Budget: b.budget, MaxSlice: b.maxSlice, Steps: b.steps,
		Slices: make([]BoundedSliceSummary, 0, len(b.slices)),
	}
	for i := range b.slices {
		sl := &b.slices[i]
		out.Slices = append(out.Slices, BoundedSliceSummary{
			Step: sl.step, Src: sl.src, Dst: sl.dst, Chunk: sl.chunk,
			Offset: sl.region.OffsetSlice(), Dims: sl.region.DimsSlice(),
			Bytes: sl.bytes, Tag: sl.tag,
		})
	}
	return out
}
