package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"ddr/internal/chaos"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// TestTraceMergeRoundTrip is the end-to-end tentpole check: a 4-rank
// exchange with per-rank recorders, gathered and clock-corrected onto
// rank 0, must render as one Perfetto file with a track per rank, a
// shared exchange ID across ranks, and a non-empty straggler report.
func TestTraceMergeRoundTrip(t *testing.T) {
	const n, side = 4, 64
	var merged *mpi.MergedTrace
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		rec := trace.NewRecorder()
		d, err := NewDescriptor(n, Layout2D, Float32,
			WithExchangeMode(ModePointToPoint), WithTracer(rec))
		if err != nil {
			return err
		}
		strip := side / n
		own := grid.Box2(0, c.Rank()*strip, side, strip)
		need := grid.Box2(c.Rank()*strip, 0, strip, side)
		if err := d.SetupDataMapping(c, []grid.Box{own}, need); err != nil {
			return err
		}
		ownBuf := fillBox(own, d.ElemSize())
		needBuf := make([]byte, need.Volume()*d.ElemSize())
		if err := d.ReorganizeData(c, [][]byte{ownBuf}, needBuf); err != nil {
			return err
		}
		m, err := mpi.GatherTrace(c, rec)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			merged = m
		}
		return checkBox(needBuf, need, d.ElemSize(), nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged == nil {
		t.Fatal("rank 0 got no merged trace")
	}

	var buf bytes.Buffer
	if err := obs.WriteTraceEvents(&buf, merged.Events); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	spansPerRank := map[int]int{}
	exchangeIDs := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spansPerRank[e.Pid]++
		if strings.HasPrefix(e.Name, "round-") || e.Name == "exchange" {
			id, ok := e.Args["exchange"].(string)
			if !ok || id == "" || id == strings.Repeat("0", 16) {
				t.Errorf("span %q on pid %d missing exchange arg: %v", e.Name, e.Pid, e.Args)
			}
			exchangeIDs[id] = true
		}
	}
	for r := 0; r < n; r++ {
		if spansPerRank[r] == 0 {
			t.Errorf("rank %d contributed no spans: %v", r, spansPerRank)
		}
	}
	if len(spansPerRank) != n {
		t.Errorf("merged trace has %d rank tracks, want %d: %v", len(spansPerRank), n, spansPerRank)
	}
	// One exchange ran, collectively minted: every rank must carry the
	// same ID.
	if len(exchangeIDs) != 1 {
		t.Errorf("spans carry %d distinct exchange IDs, want 1: %v", len(exchangeIDs), exchangeIDs)
	}

	report := trace.StragglerReport(merged.Events)
	if len(report) == 0 {
		t.Fatal("straggler report is empty for a traced multi-round exchange")
	}
	var rbuf bytes.Buffer
	trace.WriteStragglerReport(&rbuf, report)
	if !strings.Contains(rbuf.String(), "round 0") || !strings.Contains(rbuf.String(), "critical rank") {
		t.Errorf("rendered straggler report missing round rows:\n%s", rbuf.String())
	}
}

// syncWriter serializes flight dumps from concurrently degrading ranks.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestFlightDumpOnSeveredPeer drives the postmortem path: a chaos-severed
// link under an exchange deadline must surface as a PartialError and
// trigger exactly one flight dump naming the lost peer, with the
// exchange's start marker still in the ring.
func TestFlightDumpOnSeveredPeer(t *testing.T) {
	const n, side = 4, 64
	var out syncWriter
	prev := obs.SetFlightDumpOutput(&out)
	defer obs.SetFlightDumpOutput(prev)

	inj := chaos.New(chaos.Options{
		Seed:     1,
		TagFloor: ExchangeTagBase,
		Severs:   []chaos.Sever{{From: 0, To: 1, After: 0}},
	})
	partials := make([]*PartialError, n)
	flights := make([]*obs.FlightRecorder, n)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		rank := c.Rank()
		f := obs.NewFlightRecorder(256)
		flights[rank] = f
		d, err := NewDescriptor(n, Layout2D, Float32,
			WithExchangeMode(ModePointToPoint),
			WithExchangeDeadline(3*time.Second),
			WithFlightRecorder(f))
		if err != nil {
			return err
		}
		strip := side / n
		own := grid.Box2(0, rank*strip, side, strip)
		need := grid.Box2(rank*strip, 0, strip, side)
		if err := d.SetupDataMapping(c, []grid.Box{own}, need); err != nil {
			return err
		}
		ownBuf := fillBox(own, d.ElemSize())
		needBuf := make([]byte, need.Volume()*d.ElemSize())
		err = d.ReorganizeData(c, [][]byte{ownBuf}, needBuf)
		var pe *PartialError
		if errors.As(err, &pe) {
			partials[rank] = pe
			return nil
		}
		return err
	}, mpi.WithFaultInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	degraded := -1
	for r, pe := range partials {
		if pe != nil {
			degraded = r
		}
	}
	if degraded < 0 {
		t.Fatal("no rank degraded despite the severed link")
	}
	pe := partials[degraded]
	if len(pe.LostPeers) == 0 {
		t.Fatalf("rank %d degraded without lost peers: %v", degraded, pe)
	}

	dump := out.String()
	if !strings.Contains(dump, fmt.Sprintf("lost peers %v", pe.LostPeers)) {
		t.Errorf("flight dump does not name lost peers %v:\n%s", pe.LostPeers, dump)
	}
	if !strings.Contains(dump, "degraded") {
		t.Errorf("flight dump missing degradation reason:\n%s", dump)
	}
	// The ring preserved the exchange markers leading up to the failure.
	var sawStart, sawEnd bool
	for _, ev := range flights[degraded].Snapshot() {
		switch ev.Kind {
		case obs.FlightExchangeStart:
			sawStart = true
		case obs.FlightExchangeEnd:
			sawEnd = true
		}
	}
	if !sawStart || !sawEnd {
		t.Errorf("degraded rank's ring missing exchange markers (start=%v end=%v)", sawStart, sawEnd)
	}
}

// TestTracingDetachedZeroAlloc is the observability cost guard: with no
// tracer, metrics, or flight recorder attached, steady-state
// ReorganizeData must not allocate — exchange-ID minting stays, but the
// context push and span stamping are gated off entirely.
func TestTracingDetachedZeroAlloc(t *testing.T) {
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		t.Run(mode.String(), func(t *testing.T) {
			array := grid.Box2(0, 0, 8, 8)
			need := grid.Box2(1, 1, 6, 6)
			err := mpi.Launch(1, func(c *mpi.Comm) error {
				desc, err := NewDescriptor(1, Layout2D, Float32, WithExchangeMode(mode))
				if err != nil {
					return err
				}
				if err := desc.SetupDataMapping(c, []grid.Box{array}, need); err != nil {
					return err
				}
				src := fillBox(array, 4)
				dst := make([]byte, need.Volume()*4)
				for i := 0; i < 3; i++ { // reach steady state
					if err := desc.ReorganizeData(c, [][]byte{src}, dst); err != nil {
						return err
					}
				}
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				allocs := testing.AllocsPerRun(50, func() {
					if err := desc.ReorganizeData(c, [][]byte{src}, dst); err != nil {
						t.Error(err)
					}
				})
				if allocs != 0 {
					t.Errorf("mode %v: %.1f allocs per detached ReorganizeData, want 0", mode, allocs)
				}
				// Exchange IDs are minted even when detached, so a later
				// postmortem attach can correlate with peers.
				if desc.LastExchangeID() == 0 {
					t.Error("detached exchange minted no exchange ID")
				}
				return checkBox(dst, need, 4, nil, 0)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
