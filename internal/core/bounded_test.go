package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// procRSSPeak reports the process's peak resident set in bytes (VmHWM
// from /proc/self/status), or 0 where the proc filesystem is absent —
// the benchmark's peak-RSS column is best-effort by nature.
func procRSSPeak() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// Differential tests of the memory-bounded plan backend. The ground
// truth is the brute-force compiler (mapping_brute.go) simulated locally
// — every (round, src, dst) transfer packed with the source's brute
// plan and unpacked with the destination's — which shares no code with
// the bounded compiler's slice enumeration or the step executor. The
// sweep runs seeded random geometries × the three exchange modes ×
// budget tiers from "generous" (single-shot fits, bounded backend must
// stand down) through "one chunk" (the arena's minimum class), asserting
// byte-identical output at every point and, wherever the bounded path
// ran, that the measured peak staging stayed under the ceiling.

const boundedSentinel = 0xA5

// boundedCase is one randomly generated redistribution geometry.
type boundedCase struct {
	nProcs   int
	layout   Layout
	elemSize int
	chunks   [][]grid.Box
	needs    []grid.Box
}

// genBoundedCase derives a geometry deterministically from seed:
// 2–4 ranks, 1D/2D/3D, uneven chunk deals (some ranks several chunks,
// some none beyond the first deal), independent random needs.
func genBoundedCase(seed int64) boundedCase {
	rng := rand.New(rand.NewSource(seed))
	bc := boundedCase{
		nProcs:   2 + rng.Intn(3),
		layout:   Layout(1 + rng.Intn(3)),
		elemSize: []int{1, 2, 4, 8}[rng.Intn(4)],
	}
	nd := bc.layout.NDims()
	offs := make([]int, nd)
	dims := make([]int, nd)
	for i := range dims {
		dims[i] = 4 + rng.Intn(13)
	}
	domain := grid.MustBox(offs, dims)

	parts := bc.nProcs + rng.Intn(bc.nProcs+1)
	tiles := grid.RandomTiling(rng, domain, parts)
	bc.chunks = make([][]grid.Box, bc.nProcs)
	for i, tile := range tiles {
		r := i % bc.nProcs
		if i >= bc.nProcs {
			r = rng.Intn(bc.nProcs)
		}
		bc.chunks[r] = append(bc.chunks[r], tile)
	}
	bc.needs = make([]grid.Box, bc.nProcs)
	for r := range bc.needs {
		bc.needs[r] = grid.RandomBoxIn(rng, domain)
	}
	return bc
}

// ownData fills every rank's chunk buffers with the canonical pattern.
func (bc *boundedCase) ownData() [][][]byte {
	all := make([][][]byte, bc.nProcs)
	for r, chunks := range bc.chunks {
		all[r] = make([][]byte, len(chunks))
		for i, box := range chunks {
			all[r][i] = fillBox(box, bc.elemSize)
		}
	}
	return all
}

// oracleNeed computes rank dst's expected need buffer through the
// brute-force plans: sentinel-prefilled, then every transfer of every
// round simulated with the oracle compiler's pack and unpack types.
func (bc *boundedCase) oracleNeed(t *testing.T, dst int, own [][][]byte) []byte {
	t.Helper()
	out := make([]byte, bc.needs[dst].Volume()*bc.elemSize)
	for i := range out {
		out[i] = boundedSentinel
	}
	dstPlan, err := compilePlanBrute(dst, bc.elemSize, bc.chunks, bc.needs)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < bc.nProcs; src++ {
		srcPlan, err := compilePlanBrute(src, bc.elemSize, bc.chunks, bc.needs)
		if err != nil {
			t.Fatal(err)
		}
		for r := range bc.chunks[src] {
			st, _ := srcPlan.sendE.at(r, dst)
			n := st.PackedSize()
			if n == 0 {
				continue
			}
			wire := make([]byte, n)
			st.Pack(own[src][r], wire)
			rt, _ := dstPlan.recvE.at(r, src)
			rt.Unpack(wire, out)
		}
	}
	return out
}

// footprint computes the reference single-shot footprint of the case for
// a mode, from an offline-compiled plan.
func (bc *boundedCase) footprint(t *testing.T, mode ExchangeMode) int {
	t.Helper()
	p, err := NewPlanFromGeometry(0, bc.elemSize, bc.chunks, bc.needs)
	if err != nil {
		t.Fatal(err)
	}
	return p.SingleShotFootprint(mode)
}

// budgetTiers derives the sweep's ceilings from a case's footprint:
// generous (bounded must stand down), half, an eighth, and the arena's
// one-chunk minimum — deduplicated, all clamped to the minimum class.
func budgetTiers(fp int) []int {
	raw := []int{2 * fp, fp / 2, fp / 8, 1 << minStagingShift}
	var tiers []int
	for _, b := range raw {
		b = max(b, 1<<minStagingShift)
		dup := false
		for _, have := range tiers {
			if have == b {
				dup = true
			}
		}
		if !dup {
			tiers = append(tiers, b)
		}
	}
	return tiers
}

// runBoundedWorld runs one (case, mode, budget) configuration and checks
// every rank's output byte-identical to the brute oracle. mutate, when
// non-nil, runs on rank 0 after mapping setup; checkRank receives each
// rank's descriptor after the exchange for extra assertions. Returns the
// number of ranks whose output diverged from the oracle (0 for a healthy
// run; mutation tests expect > 0).
func (bc *boundedCase) runBoundedWorld(t *testing.T, mode ExchangeMode, budget int,
	mutate func(*Plan) bool, checkRank func(rank int, d *Descriptor) error) int {
	t.Helper()
	own := bc.ownData()
	oracle := make([][]byte, bc.nProcs)
	for r := 0; r < bc.nProcs; r++ {
		oracle[r] = bc.oracleNeed(t, r, own)
	}
	diverged := make([]bool, bc.nProcs)
	err := mpi.Launch(bc.nProcs, func(c *mpi.Comm) error {
		rank := c.Rank()
		d, err := NewDescriptor(bc.nProcs, bc.layout, Uint8,
			WithExchangeMode(mode), WithElemSize(bc.elemSize), WithMemoryBudget(budget))
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, bc.chunks[rank], bc.needs[rank]); err != nil {
			return err
		}
		if rank == 0 && mutate != nil && !mutate(d.plan) {
			return fmt.Errorf("rank 0: mutation hook found nothing to perturb")
		}
		out := make([]byte, bc.needs[rank].Volume()*bc.elemSize)
		for i := range out {
			out[i] = boundedSentinel
		}
		bufs := make([][]byte, len(bc.chunks[rank]))
		for i := range bufs {
			bufs[i] = append([]byte(nil), own[rank][i]...)
		}
		if err := d.ReorganizeData(c, bufs, out); err != nil {
			return err
		}
		if !bytes.Equal(out, oracle[rank]) {
			diverged[rank] = true
		}
		if checkRank != nil {
			return checkRank(rank, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, bad := range diverged {
		if bad {
			n++
		}
	}
	return n
}

// TestBoundedDifferentialSweep is the tentpole's acceptance sweep:
// seeded geometries × all three exchange modes × budget tiers down to
// the one-chunk minimum, every output byte-compared against the brute
// oracle, the measured peak staging asserted under the ceiling whenever
// the bounded backend ran, and the backend required to stand down when
// the single-shot footprint fits the budget.
func TestBoundedDifferentialSweep(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	modes := []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused}
	for seed := int64(0); seed < int64(seeds); seed++ {
		bc := genBoundedCase(seed)
		for _, mode := range modes {
			fp := bc.footprint(t, mode)
			if fp == 0 {
				continue
			}
			for _, budget := range budgetTiers(fp) {
				name := fmt.Sprintf("seed%d/%v/budget%d", seed, mode, budget)
				t.Run(name, func(t *testing.T) {
					wantBounded := fp > budget
					bad := bc.runBoundedWorld(t, mode, budget, nil, func(rank int, d *Descriptor) error {
						steps := d.BoundedSteps()
						if wantBounded && steps == 0 {
							return fmt.Errorf("rank %d: footprint %d > budget %d but the one-shot path ran", rank, fp, budget)
						}
						if !wantBounded && steps != 0 {
							return fmt.Errorf("rank %d: footprint %d <= budget %d but bounded ran %d steps", rank, fp, budget, steps)
						}
						if peak := d.LastPeakStaging(); peak > int64(budget) {
							return fmt.Errorf("rank %d: measured peak staging %d exceeds budget %d", rank, peak, budget)
						}
						return nil
					})
					if bad != 0 {
						t.Errorf("%s: %d ranks diverged from the brute oracle", name, bad)
					}
				})
			}
		}
	}
}

// TestBoundedHarnessCatchesPlantedBug proves the differential harness
// has teeth: a one-cell translation of a single receive slice
// (PerturbBoundedForTest — the payload lands one cell from where it
// belongs, wire lengths unchanged) must surface as a byte divergence
// from the oracle on the perturbed rank.
func TestBoundedHarnessCatchesPlantedBug(t *testing.T) {
	planted := 0
	for seed := int64(0); seed < 20 && planted < 3; seed++ {
		bc := genBoundedCase(seed)
		fp := bc.footprint(t, ModePointToPoint)
		if fp < 2*(1<<minStagingShift) {
			continue
		}
		budget := max(fp/4, 1<<minStagingShift)
		bad := bc.runBoundedWorld(t, ModePointToPoint, budget, (*Plan).PerturbBoundedForTest, nil)
		if bad == 0 {
			t.Errorf("seed %d: perturbed bounded plan produced oracle-identical output — the harness is blind", seed)
		}
		planted++
	}
	if planted == 0 {
		t.Fatal("no seed produced a perturbable bounded plan")
	}
}

// TestBoundedMeterHasTeeth proves the peak-staging assertion measures
// reality rather than echoing the configuration: swapping in a schedule
// compiled for a budget far above the descriptor's ceiling — one slice
// covering the whole strided overlap, staged in a single arena class —
// must drive the measured peak past that ceiling. A single-rank world
// keeps the mismatched schedule off the transport (mixed step schedules
// are not a supported configuration; this hook exists only to prove the
// meter measures).
func TestBoundedMeterHasTeeth(t *testing.T) {
	// Split ownership so every overlap is a strict sub-box of both its
	// chunk and the need — strided on both sides, so a whole-overlap
	// slice must stage through the metered arena.
	left := grid.Box2(0, 0, 32, 64)
	right := grid.Box2(32, 0, 32, 64)
	need := grid.Box2(1, 1, 62, 62)
	const budget = 1 << minStagingShift
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		d, err := NewDescriptor(1, Layout2D, Float64, WithMemoryBudget(budget))
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, []grid.Box{left, right}, need); err != nil {
			return err
		}
		src := [][]byte{fillBox(left, 8), fillBox(right, 8)}
		dst := make([]byte, need.Volume()*8)
		if err := d.ReorganizeData(c, src, dst); err != nil {
			return err
		}
		// Tight slicing degrades the overlap to row segments, which are
		// contiguous and bypass staging entirely — the measured peak may
		// legitimately be 0, but never above the ceiling.
		if peak := d.LastPeakStaging(); peak > budget {
			return fmt.Errorf("tight schedule: peak %d exceeds the %d ceiling", peak, budget)
		}
		// Same descriptor, same ceiling — but a loose schedule that
		// stages the whole overlap at once. The meter must report the
		// violation, not the configured budget.
		if err := CompileBoundedForTest(d.plan, need.Volume()*8*2); err != nil {
			return err
		}
		if err := d.ReorganizeData(c, src, dst); err != nil {
			return err
		}
		if peak := d.LastPeakStaging(); peak <= budget {
			return fmt.Errorf("loose schedule measured peak %d under the %d ceiling — the meter is not measuring", peak, budget)
		}
		return checkBox(dst, need, 8, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBoundedBudgetTooSmall verifies a ceiling below the arena's minimum
// class is rejected at mapping time with the typed error.
func TestBoundedBudgetTooSmall(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		d, err := NewDescriptor(1, Layout2D, Float32, WithMemoryBudget(64))
		if err != nil {
			return err
		}
		array := grid.Box2(0, 0, 64, 64)
		err = d.SetupDataMapping(c, []grid.Box{array}, array)
		if !errors.Is(err, ErrBudgetTooSmall) {
			return fmt.Errorf("got %v, want ErrBudgetTooSmall", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBoundedPlanCacheKeyedByBudget verifies two descriptors mapping the
// same geometry under different budgets never share a fingerprint — the
// budget is part of the plan identity (salted into the hash), so plans,
// autotune entries, and exchange IDs stay distinct.
func TestBoundedPlanCacheKeyedByBudget(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		array := grid.Box2(c.Rank()*32, 0, 32, 64)
		need := grid.Box2(0, c.Rank()*32, 64, 32)
		var fps [3]uint64
		for i, budget := range []int{0, 4096, 8192} {
			d, err := NewDescriptor(2, Layout2D, Float32, WithMemoryBudget(budget))
			if err != nil {
				return err
			}
			if err := d.SetupDataMapping(c, []grid.Box{array}, need); err != nil {
				return err
			}
			fps[i] = d.plan.fp
		}
		for i := 0; i < len(fps); i++ {
			for j := i + 1; j < len(fps); j++ {
				if fps[i] == fps[j] {
					return fmt.Errorf("budgets %d and %d share plan fingerprint %016x", i, j, fps[i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBoundedCachedPlanReplays verifies a cached bounded plan replays on
// a repeat mapping (collective cache hit) with the schedule attached and
// the exchange still oracle-identical and under budget.
func TestBoundedCachedPlanReplays(t *testing.T) {
	bc := genBoundedCase(3)
	fp := bc.footprint(t, ModePointToPoint)
	budget := max(fp/4, 1<<minStagingShift)
	own := bc.ownData()
	oracle := make([][]byte, bc.nProcs)
	for r := 0; r < bc.nProcs; r++ {
		oracle[r] = bc.oracleNeed(t, r, own)
	}
	err := mpi.Launch(bc.nProcs, func(c *mpi.Comm) error {
		rank := c.Rank()
		d, err := NewDescriptor(bc.nProcs, bc.layout, Uint8,
			WithExchangeMode(ModePointToPoint), WithElemSize(bc.elemSize), WithMemoryBudget(budget))
		if err != nil {
			return err
		}
		for iter := 0; iter < 2; iter++ {
			if err := d.SetupDataMapping(c, bc.chunks[rank], bc.needs[rank]); err != nil {
				return err
			}
			out := make([]byte, bc.needs[rank].Volume()*bc.elemSize)
			for i := range out {
				out[i] = boundedSentinel
			}
			if err := d.ReorganizeData(c, own[rank], out); err != nil {
				return err
			}
			if !bytes.Equal(out, oracle[rank]) {
				return fmt.Errorf("rank %d iter %d: output diverges from oracle", rank, iter)
			}
			if peak := d.LastPeakStaging(); peak > int64(budget) {
				return fmt.Errorf("rank %d iter %d: peak %d > budget %d", rank, iter, peak, budget)
			}
		}
		hits, misses := d.PlanCacheStats()
		if hits != 1 || misses != 1 {
			return fmt.Errorf("rank %d: cache stats hits=%d misses=%d, want 1/1", rank, hits, misses)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBoundedZeroAllocSteadyState mirrors TestZeroAllocSteadyState for
// the bounded backend: once the step schedule has been exercised,
// replaying a bounded ReorganizeData allocates nothing — staging cycles
// through the metered arena and all bookkeeping reuses descriptor
// scratch — and the measured peak staging is stable, positive, and under
// the ceiling on every replay.
func TestBoundedZeroAllocSteadyState(t *testing.T) {
	// Two owned chunks whose overlaps with the interior need are strided
	// on both sides, so every step stages through the metered arena; at
	// elem size 8 the round footprint (2×256-byte classes) exceeds the
	// 256-byte budget and the bounded backend self-selects.
	left := grid.Box2(0, 0, 4, 8)
	right := grid.Box2(4, 0, 4, 8)
	need := grid.Box2(1, 1, 6, 6)
	const budget = 256
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		d, err := NewDescriptor(1, Layout2D, Float64, WithMemoryBudget(budget))
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, []grid.Box{left, right}, need); err != nil {
			return err
		}
		if d.BoundedSteps() == 0 {
			return fmt.Errorf("geometry fits the budget; the test exercises nothing")
		}
		src := [][]byte{fillBox(left, 8), fillBox(right, 8)}
		dst := make([]byte, need.Volume()*8)
		for i := 0; i < 3; i++ { // reach steady state
			if err := d.ReorganizeData(c, src, dst); err != nil {
				return err
			}
		}
		peak := d.LastPeakStaging()
		if peak <= 0 || peak > budget {
			return fmt.Errorf("steady-state peak staging %d, want in (0, %d]", peak, budget)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		allocs := testing.AllocsPerRun(50, func() {
			if err := d.ReorganizeData(c, src, dst); err != nil {
				t.Error(err)
			}
			if p := d.LastPeakStaging(); p != peak {
				t.Errorf("peak staging drifted: %d then %d", peak, p)
			}
		})
		if allocs != 0 {
			t.Errorf("%.1f allocs per steady-state bounded ReorganizeData, want 0", allocs)
		}
		return checkBox(dst, need, 8, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSingleShotFootprintClassRounded pins the footprint model to the
// arena's actual class sizes, so drift between the mirrored constants in
// bounded.go and the arena is caught here rather than as a silently
// wrong auto-selection threshold.
func TestSingleShotFootprintClassRounded(t *testing.T) {
	if got, want := 1<<minStagingShift, mpi.BufferClassSize(1); got != want {
		t.Fatalf("minimum class drifted: bounded.go says %d, arena says %d", got, want)
	}
	if got, want := 1<<maxStagingShift, mpi.BufferClassSize(1<<maxStagingShift); got != want {
		t.Fatalf("maximum class drifted: bounded.go says %d, arena says %d", got, want)
	}
	// One 6×6 float32 self-overlap: 144 bytes staged as a 256-byte class
	// on each side of the round.
	p, err := NewPlanFromGeometry(0, 4, [][]grid.Box{{grid.Box2(0, 0, 8, 8)}}, []grid.Box{grid.Box2(1, 1, 6, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SingleShotFootprint(ModeAlltoallw); got != 512 {
		t.Fatalf("footprint = %d, want 512 (two 256-byte classes)", got)
	}
}

// BenchmarkBoundedExchange measures the bounded backend against the
// one-shot path on a 16-rank strip regrid, reporting the measured peak
// staging and step count alongside throughput.
func BenchmarkBoundedExchange(b *testing.B) {
	const (
		procs    = 16
		side     = 256
		elemSize = 4
	)
	// Column needs against row-strip ownership: every slice is strided,
	// so the exchange must stage through pack buffers and the budget has
	// something real to bound (row needs would be served zero-copy with a
	// zero footprint, and the bounded backend would never engage).
	ownAll, needAll := stripWorld(procs, side, 4, true)
	for _, cfg := range []struct {
		name   string
		budget int
	}{
		// The strided 16-rank regrid has an 8 KiB single-shot footprint
		// per rank, so 4 KiB forces a bounded schedule and 512 B drives
		// it down to near the one-class-per-step floor.
		{"oneshot", 0},
		{"budget4KiB", 1 << 12},
		{"budget512B", 512},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var peak int64
			var steps int
			b.SetBytes(int64(side) * int64(side) * elemSize)
			err := mpi.Launch(procs, func(c *mpi.Comm) error {
				rank := c.Rank()
				opts := []Option{WithExchangeMode(ModePointToPoint)}
				if cfg.budget > 0 {
					opts = append(opts, WithMemoryBudget(cfg.budget))
				}
				d, err := NewDescriptor(procs, Layout2D, Float32, opts...)
				if err != nil {
					return err
				}
				if err := d.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
					return err
				}
				bufs := make([][]byte, len(ownAll[rank]))
				for i, box := range ownAll[rank] {
					bufs[i] = make([]byte, box.Volume()*elemSize)
				}
				dst := make([]byte, needAll[rank].Volume()*elemSize)
				if rank == 0 {
					b.ResetTimer()
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				for i := 0; i < b.N; i++ {
					if err := d.ReorganizeData(c, bufs, dst); err != nil {
						return err
					}
				}
				if rank == 0 {
					peak = d.LastPeakStaging()
					steps = d.BoundedSteps()
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(peak), "peak-staging-B")
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(procRSSPeak(), "peak-rss-B")
		})
	}
}
