package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// valueAt returns the canonical byte pattern for the element at global
// coordinates (x,y,z) with the given element size; every rank can compute
// the expected content of any region with it.
func valueAt(x, y, z, elemSize int) []byte {
	v := uint64(x) + 1009*uint64(y) + 1000003*uint64(z) + 7
	out := make([]byte, elemSize)
	for b := range out {
		out[b] = byte(v >> (8 * (b % 8)))
	}
	return out
}

// fillBox writes the canonical pattern into a buffer holding box.
func fillBox(box grid.Box, elemSize int) []byte {
	buf := make([]byte, box.Volume()*elemSize)
	i := 0
	for z := 0; z < box.Dims[2]; z++ {
		for y := 0; y < box.Dims[1]; y++ {
			for x := 0; x < box.Dims[0]; x++ {
				copy(buf[i:], valueAt(box.Offset[0]+x, box.Offset[1]+y, box.Offset[2]+z, elemSize))
				i += elemSize
			}
		}
	}
	return buf
}

// checkBox verifies that buf holds the canonical pattern for box wherever
// covered reports true, and holds fill bytes elsewhere.
func checkBox(buf []byte, box grid.Box, elemSize int, covered func(x, y, z int) bool, fill byte) error {
	i := 0
	for z := 0; z < box.Dims[2]; z++ {
		for y := 0; y < box.Dims[1]; y++ {
			for x := 0; x < box.Dims[0]; x++ {
				gx, gy, gz := box.Offset[0]+x, box.Offset[1]+y, box.Offset[2]+z
				cell := buf[i : i+elemSize]
				if covered == nil || covered(gx, gy, gz) {
					want := valueAt(gx, gy, gz, elemSize)
					for b := range cell {
						if cell[b] != want[b] {
							return fmt.Errorf("element (%d,%d,%d) byte %d = %d, want %d", gx, gy, gz, b, cell[b], want[b])
						}
					}
				} else {
					for b := range cell {
						if cell[b] != fill {
							return fmt.Errorf("uncovered element (%d,%d,%d) was overwritten", gx, gy, gz)
						}
					}
				}
				i += elemSize
			}
		}
	}
	return nil
}

func TestNewDescriptorValidation(t *testing.T) {
	if _, err := NewDescriptor(0, Layout2D, Float32); err == nil {
		t.Error("zero process count accepted")
	}
	if _, err := NewDescriptor(4, Layout(9), Float32); err == nil {
		t.Error("bad layout accepted")
	}
	if _, err := NewDescriptor(4, Layout2D, Float32, WithElemSize(0)); err == nil {
		t.Error("zero element size accepted")
	}
	d, err := NewDescriptor(4, Layout2D, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if d.NProcs() != 4 || d.Layout() != Layout2D || d.ElemSize() != 4 {
		t.Errorf("descriptor fields: %d %v %d", d.NProcs(), d.Layout(), d.ElemSize())
	}
	if d.Plan() != nil {
		t.Error("plan non-nil before SetupDataMapping")
	}
}

func TestElemTypeSizes(t *testing.T) {
	want := map[ElemType]int{Uint8: 1, Int16: 2, Int32: 4, Float32: 4, Float64: 8}
	for e, n := range want {
		if e.Size() != n {
			t.Errorf("%v.Size() = %d, want %d", e, e.Size(), n)
		}
	}
	if ElemType(99).Size() != 0 {
		t.Error("unknown element type has a size")
	}
	if _, err := NewDescriptor(2, Layout1D, ElemType(99)); err == nil {
		t.Error("unknown element type accepted")
	}
}

// e1Geometry returns the paper's E1 layout for the given rank: two 8x1
// rows owned (y = rank and y = rank+4) and one 4x4 quadrant needed.
func e1Geometry(rank int) (own []grid.Box, need grid.Box) {
	own = []grid.Box{
		grid.Box2(0, rank, 8, 1),
		grid.Box2(0, rank+4, 8, 1),
	}
	right := rank % 2
	bottom := rank / 2
	need = grid.Box2(4*right, 4*bottom, 4, 4)
	return own, need
}

// TestE1Redistribution runs the paper's running example end to end on
// every transport and exchange mode, checking every received element.
func TestE1Redistribution(t *testing.T) {
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		for _, tr := range []struct {
			name string
			run  func(int, func(*mpi.Comm) error) error
		}{
			{"inproc", func(n int, body func(*mpi.Comm) error) error {
				return mpi.Launch(n, body)
			}},
			{"tcp", func(n int, body func(*mpi.Comm) error) error {
				return mpi.Launch(n, body, mpi.WithTransport(mpi.TransportTCP))
			}},
		} {
			t.Run(fmt.Sprintf("%v/%s", mode, tr.name), func(t *testing.T) {
				err := tr.run(4, func(c *mpi.Comm) error {
					own, need := e1Geometry(c.Rank())
					desc, err := NewDescriptor(4, Layout2D, Float32,
						WithExchangeMode(mode), WithValidation())
					if err != nil {
						return err
					}
					if err := desc.SetupDataMapping(c, own, need); err != nil {
						return err
					}
					ownBufs := [][]byte{fillBox(own[0], 4), fillBox(own[1], 4)}
					needBuf := make([]byte, need.Volume()*4)
					if err := desc.ReorganizeData(c, ownBufs, needBuf); err != nil {
						return err
					}
					return checkBox(needBuf, need, 4, nil, 0)
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestE1PlanShape checks the structural facts the paper states for E1:
// two rounds (max chunks per rank) and the Figure 1B mapping for rank 0.
func TestE1PlanShape(t *testing.T) {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		own, need := e1Geometry(c.Rank())
		desc, err := NewDescriptor(4, Layout2D, Float32)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		p := desc.Plan()
		if p.Rounds() != 2 {
			return fmt.Errorf("rounds = %d, want 2", p.Rounds())
		}
		if c.Rank() != 0 {
			return nil
		}
		// Rank 0 owns rows y=0 and y=4. Row 0 feeds needs of ranks 0 and 1;
		// row 4 feeds needs of ranks 2 and 3 (Figure 1B).
		// Each overlap is a 4x1 sub-row of float32s: 16 bytes.
		wantSend := map[int][2]int{ // peer -> bytes in rounds 0,1
			0: {16, 0},
			1: {16, 0},
			2: {0, 16},
			3: {0, 16},
		}
		for peer, w := range wantSend {
			for r := 0; r < 2; r++ {
				if st, _ := p.sendE.at(r, peer); st.PackedSize() != w[r] {
				got := st.PackedSize()
					return fmt.Errorf("send round %d to rank %d: %d bytes, want %d", r, peer, got, w[r])
				}
			}
		}
		// Rank 0 needs quadrant (0,0)+(4,4): rows y=0..3, owned as chunk 0
		// of ranks 0..3 respectively.
		for peer := 0; peer < 4; peer++ {
			if rt, _ := p.recvE.at(0, peer); rt.PackedSize() != 16 {
			got := rt.PackedSize()
				return fmt.Errorf("recv round 0 from rank %d: %d bytes, want 16", peer, got)
			}
			if rt, _ := p.recvE.at(1, peer); rt.PackedSize() != 0 {
			got := rt.PackedSize()
				return fmt.Errorf("recv round 1 from rank %d: %d bytes, want 0", peer, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestE1Stats(t *testing.T) {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		own, need := e1Geometry(c.Rank())
		desc, err := NewDescriptor(4, Layout2D, Float32)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		s := desc.Plan().Stats()
		// 64 elements total; each rank keeps one 4-element sub-row locally.
		if s.Rounds != 2 || s.Ranks != 4 {
			return fmt.Errorf("rounds/ranks = %d/%d", s.Rounds, s.Ranks)
		}
		if s.SelfBytes != 4*4*4 {
			return fmt.Errorf("self bytes = %d, want 64", s.SelfBytes)
		}
		if s.TotalWireBytes != 64*4-64 {
			return fmt.Errorf("wire bytes = %d, want 192", s.TotalWireBytes)
		}
		if s.PerRankRoundAvg != 192.0/8 {
			return fmt.Errorf("avg = %f, want 24", s.PerRankRoundAvg)
		}
		if s.PerRankRoundMax != 32 {
			return fmt.Errorf("max = %d, want 32", s.PerRankRoundMax)
		}
		if s.MaxPeersPerRound != 2 {
			return fmt.Errorf("max peers = %d, want 2", s.MaxPeersPerRound)
		}
		if !strings.Contains(s.String(), "rounds=2") {
			return fmt.Errorf("stats string %q", s.String())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomRedistribution is the library's central property test: for
// random domains, random disjoint-complete ownerships, and random need
// boxes, every rank must receive exactly the canonical data for its need
// box, under both exchange modes.
func TestRandomRedistribution(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(8)
		layout := Layout(1 + rng.Intn(3))
		elemSizes := []int{1, 2, 4, 8}
		elemSize := elemSizes[rng.Intn(len(elemSizes))]
		dims := make([]int, layout.NDims())
		offset := make([]int, layout.NDims())
		for i := range dims {
			dims[i] = 2 + rng.Intn(10)
			offset[i] = rng.Intn(4)
		}
		domain := grid.MustBox(offset, dims)
		tiles := grid.RandomTiling(rng, domain, 1+rng.Intn(3*n))
		// Distribute tiles to ranks round-robin; some ranks may get none.
		ownAll := make([][]grid.Box, n)
		for i, b := range tiles {
			r := i % n
			ownAll[r] = append(ownAll[r], b)
		}
		needAll := make([]grid.Box, n)
		for r := range needAll {
			needAll[r] = grid.RandomBoxIn(rng, domain)
		}
		mode := []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused}[trial%3]
		err := mpi.Launch(n, func(c *mpi.Comm) error {
			rank := c.Rank()
			desc, err := NewDescriptor(n, layout, Uint8, WithElemSize(elemSize),
				WithExchangeMode(mode), WithValidation())
			if err != nil {
				return err
			}
			if err := desc.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
				return err
			}
			bufs := make([][]byte, len(ownAll[rank]))
			for i, b := range ownAll[rank] {
				bufs[i] = fillBox(b, elemSize)
			}
			needBuf := make([]byte, needAll[rank].Volume()*elemSize)
			if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
				return err
			}
			// Ownership is complete over the domain and needs are within the
			// domain, so every element must be covered.
			if err := checkBox(needBuf, needAll[rank], elemSize, nil, 0); err != nil {
				return fmt.Errorf("trial %d rank %d: %w", trial, rank, err)
			}
			// Dynamic-data property: reorganize again with refreshed buffers
			// without re-running SetupDataMapping.
			for i := range needBuf {
				needBuf[i] = 0
			}
			if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
				return err
			}
			return checkBox(needBuf, needAll[rank], elemSize, nil, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestIncompleteReceive verifies the paper's receiving-side semantics:
// regions of the need box owned by nobody stay untouched, and overlapping
// needs are delivered to every requester.
func TestIncompleteReceive(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		// Ownership covers only x in [0,6) of a 10-wide 1D domain.
		ownAll := [][]grid.Box{{grid.Box1(0, 3)}, {grid.Box1(3, 3)}}
		// Both ranks want the whole [0,10) — overlapping and extending past
		// the owned region.
		need := grid.Box1(0, 10)
		desc, err := NewDescriptor(2, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, ownAll[c.Rank()], need); err != nil {
			return err
		}
		bufs := [][]byte{fillBox(ownAll[c.Rank()][0], 1)}
		needBuf := make([]byte, 10)
		for i := range needBuf {
			needBuf[i] = 0xEE
		}
		if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
			return err
		}
		return checkBox(needBuf, need, 1, func(x, y, z int) bool { return x < 6 }, 0xEE)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationRejectsOverlap(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		own := []grid.Box{grid.Box1(0, 6)} // both ranks claim overlapping data
		if c.Rank() == 1 {
			own = []grid.Box{grid.Box1(4, 6)}
		}
		desc, err := NewDescriptor(2, Layout1D, Uint8, WithValidation())
		if err != nil {
			return err
		}
		err = desc.SetupDataMapping(c, own, grid.Box1(0, 10))
		if err == nil {
			return errors.New("overlapping ownership accepted")
		}
		if !strings.Contains(err.Error(), "mutually exclusive") {
			return fmt.Errorf("unexpected error: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationRejectsGaps(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		own := []grid.Box{grid.Box1(0, 3)}
		if c.Rank() == 1 {
			own = []grid.Box{grid.Box1(5, 3)} // gap at [3,5)
		}
		desc, err := NewDescriptor(2, Layout1D, Uint8, WithValidation())
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, grid.Box1(0, 8)); err == nil {
			return errors.New("gapped ownership accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReorganizeValidation(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(2, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.ReorganizeData(c, nil, nil); err == nil {
			return errors.New("reorganize before mapping accepted")
		}
		own := []grid.Box{grid.Box1(5*c.Rank(), 5)}
		need := grid.Box1(0, 10)
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		needBuf := make([]byte, 10)
		if err := desc.ReorganizeData(c, nil, needBuf); err == nil {
			return errors.New("missing owned buffers accepted")
		}
		if err := desc.ReorganizeData(c, [][]byte{make([]byte, 3)}, needBuf); err == nil {
			return errors.New("short owned buffer accepted")
		}
		if err := desc.ReorganizeData(c, [][]byte{make([]byte, 5)}, make([]byte, 7)); err == nil {
			return errors.New("short need buffer accepted")
		}
		return desc.ReorganizeData(c, [][]byte{make([]byte, 5)}, needBuf)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorCommSizeMismatch(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(3, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, nil, grid.Box1(0, 4)); err == nil {
			return errors.New("size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDimensionalityMismatch(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(1, Layout2D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, []grid.Box{grid.Box1(0, 4)}, grid.Box2(0, 0, 2, 2)); err == nil {
			return errors.New("1D chunk accepted by 2D descriptor")
		}
		if err := desc.SetupDataMapping(c, []grid.Box{grid.Box2(0, 0, 2, 2)}, grid.Box1(0, 4)); err == nil {
			return errors.New("1D need accepted by 2D descriptor")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRedistributeHelper exercises the one-shot wrapper on the paper's
// Figure 5 scenario: slab-decomposed data regridded into near-square
// rectangles.
func TestRedistributeHelper(t *testing.T) {
	const n = 4
	domain := grid.Box2(0, 0, 20, 12)
	slabs := grid.Slabs(domain, 1, n)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		own := []Chunk{{Box: slabs[c.Rank()], Data: fillBox(slabs[c.Rank()], 4)}}
		out, err := Redistribute(c, Layout2D, Float32, own, squares[c.Rank()])
		if err != nil {
			return err
		}
		return checkBox(out, squares[c.Rank()], 4, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPaperScale216Ranks runs the paper's largest configuration for real:
// 216 in-process ranks load a (miniature) stack domain with the
// consecutive technique and redistribute into 6x6x6 bricks. This
// validates the library at the paper's actual rank counts, not just toy
// worlds.
func TestPaperScale216Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("216-rank world skipped in -short mode")
	}
	const n = 216
	domain := grid.Box3(0, 0, 0, 24, 12, 432) // 432 slices over 216 ranks
	chunksAll := make([][]grid.Box, n)
	for i, slab := range grid.Slabs(domain, 2, n) {
		chunksAll[i] = []grid.Box{slab}
	}
	needs := grid.Bricks3D(domain, 6, 6, 6)
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPointFused} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			err := mpi.Launch(n, func(c *mpi.Comm) error {
				desc, err := NewDescriptor(n, Layout3D, Uint8, WithElemSize(1),
					WithExchangeMode(mode), WithValidation())
				if err != nil {
					return err
				}
				mine := chunksAll[c.Rank()]
				if err := desc.SetupDataMapping(c, mine, needs[c.Rank()]); err != nil {
					return err
				}
				needBuf := make([]byte, needs[c.Rank()].Volume())
				if err := desc.ReorganizeData(c, [][]byte{fillBox(mine[0], 1)}, needBuf); err != nil {
					return err
				}
				return checkBox(needBuf, needs[c.Rank()], 1, nil, 0)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRankWithNoChunks covers producers that exist only as consumers.
func TestRankWithNoChunks(t *testing.T) {
	err := mpi.Launch(3, func(c *mpi.Comm) error {
		var own []grid.Box
		if c.Rank() == 0 {
			own = []grid.Box{grid.Box1(0, 9)} // rank 0 owns everything
		}
		need := grid.Box1(3*c.Rank(), 3)
		desc, err := NewDescriptor(3, Layout1D, Uint8, WithValidation())
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		if got := desc.Plan().Rounds(); got != 1 {
			return fmt.Errorf("rounds = %d, want 1", got)
		}
		var bufs [][]byte
		if c.Rank() == 0 {
			bufs = [][]byte{fillBox(own[0], 1)}
		}
		needBuf := make([]byte, 3)
		if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
			return err
		}
		return checkBox(needBuf, need, 1, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}
