// Package core implements the paper's contribution: the Dynamic Data
// Redistribution (DDR) library. DDR moves 1D/2D/3D array data from the
// layout a producer used — any number of box-shaped chunks per rank,
// collectively tiling the domain — to the layout a consumer needs — one
// contiguous box per rank, possibly overlapping between ranks and possibly
// not covering the whole domain.
//
// The public surface mirrors the paper's three calls:
//
//	desc, _ := core.NewDescriptor(nProcs, core.Layout2D, core.Float32)
//	desc.SetupDataMapping(comm, ownedChunks, neededBox)   // once per layout
//	desc.ReorganizeData(comm, ownedBuffers, neededBuffer) // per data arrival
//
// SetupDataMapping computes, from the geometry alone, which sub-boxes every
// rank must exchange with every other rank and compiles them into rounds of
// alltoallw exchanges (one round per owned chunk, as in the paper). The
// mapping is reusable: when new data arrives in the same layout — the
// "dynamic data" case — only ReorganizeData needs to run again.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// Layout identifies the dimensionality of the data being redistributed,
// the analogue of the paper's DATA_TYPE_1D/2D/3D descriptor argument.
type Layout int

// Supported array layouts.
const (
	Layout1D Layout = 1
	Layout2D Layout = 2
	Layout3D Layout = 3
)

// NDims returns the number of spatial dimensions of the layout.
func (l Layout) NDims() int { return int(l) }

func (l Layout) String() string {
	switch l {
	case Layout1D:
		return "1D"
	case Layout2D:
		return "2D"
	case Layout3D:
		return "3D"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// ElemType identifies the element type stored in the array, standing in
// for the MPI datatype + byte size pair the C API takes.
type ElemType int

// Supported element types.
const (
	Uint8 ElemType = iota
	Int16
	Int32
	Float32
	Float64
)

// Size returns the element's byte size.
func (t ElemType) Size() int {
	switch t {
	case Uint8:
		return 1
	case Int16:
		return 2
	case Int32, Float32:
		return 4
	case Float64:
		return 8
	}
	return 0
}

func (t ElemType) String() string {
	switch t {
	case Uint8:
		return "uint8"
	case Int16:
		return "int16"
	case Int32:
		return "int32"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("ElemType(%d)", int(t))
}

// ExchangeMode selects how ReorganizeData moves bytes between ranks.
type ExchangeMode int

const (
	// ModeAlltoallw drives one alltoallw collective per round, the
	// mechanism the paper implements.
	ModeAlltoallw ExchangeMode = iota
	// ModePointToPoint replaces each collective with direct non-blocking
	// sends and receives between the ranks that actually share data — the
	// optimization the paper proposes as future work for sparse mappings.
	ModePointToPoint
	// ModePointToPointFused goes one step further: all rounds are fused
	// into a single message per peer pair, trading the per-round latency
	// of many-chunk layouts (the paper's round-robin case pays one
	// collective per chunk) for one exchange phase.
	ModePointToPointFused
)

func (m ExchangeMode) String() string {
	switch m {
	case ModePointToPoint:
		return "point-to-point"
	case ModePointToPointFused:
		return "point-to-point-fused"
	default:
		return "alltoallw"
	}
}

// Descriptor describes the data being redistributed and, after
// SetupDataMapping, carries the compiled communication plan. It
// corresponds to the object returned by DDR_NewDataDescriptor.
//
// A Descriptor is not safe for concurrent use: ReorganizeData reuses
// per-call scratch state so repeated exchanges on one plan stay
// allocation-free.
type Descriptor struct {
	nProcs      int
	layout      Layout
	elem        ElemType
	elemSize    int
	elemSizeSet bool // WithElemSize was given (even an invalid value)
	mode        ExchangeMode
	validate    bool
	pooled      bool          // stage wire buffers through the shared arena
	zeroCopy    bool          // skip staging for contiguous regions
	autotune    bool          // measured pack-strategy selection at first use
	forcedStrat PackStrategy  // WithPackStrategy override; StrategyAuto probes
	deadline    time.Duration // per-exchange bound; > 0 enables degradation
	budget      int           // WithMemoryBudget ceiling; <= 0 disables
	depth       int           // WithPipelineDepth; rounds in flight at once
	tracer      *trace.Recorder
	metrics     *obs.Registry
	flight      *obs.FlightRecorder // nil unless WithFlightRecorder
	cacheCap    int                 // plan-cache capacity; <= 0 disables

	plan                   *Plan             // nil until SetupDataMapping
	cache                  *planCache[*Plan] // nil when caching is disabled
	cacheHits, cacheMisses atomic.Int64
	timings                []RoundTiming
	obsv                   *exchObs // nil unless a tracer or registry is attached

	// exchSeq counts ReorganizeData calls on this descriptor. The call is
	// collective, so the counter advances in lockstep on every rank;
	// combined with the plan's collectively agreed geometry fingerprint it
	// mints exchange IDs that match across ranks without a message.
	exchSeq    uint64
	lastExchID uint64 // ID minted by the most recent exchange

	// Resolved pack strategies and the per-direction fast-path gates the
	// exchange paths read. ensureTuned refreshes them whenever the plan
	// fingerprint or the transport underneath changes.
	sendStrat, recvStrat PackStrategy
	zcSend, zcRecv       bool
	tunedFP              uint64
	tunedTransport       string

	eng     engine // pack/unpack worker pool + reusable job batch
	scratch exchScratch

	// meter is the live staging accountant of the bounded exchange: every
	// pack buffer and held receive payload of a bounded step is charged
	// against it, so the measured high-water mark (lastPeakStaging) is the
	// ground truth the budget-enforcement tests assert against.
	meter           mpi.StagingMeter
	lastPeakStaging int64

	// Pipeline state: the depth the most recent exchange actually ran at
	// (after geometry and budget clamping), its overlap ratio, the cached
	// single-shot footprint the budget clamp divides by (recomputed when
	// the plan fingerprint changes), and the test-only early-recycle
	// perturbation (see PerturbPipelineForTest).
	lastDepth   int
	lastOverlap float64
	pipeShotFP  uint64
	pipeShot    int
	pipePerturb bool
}

// exchObs is the observation context threaded through the exchange
// helpers: the trace recorder plus the registry handles for this
// descriptor's rank and mode. It is nil when neither a tracer nor a
// metrics registry is attached, which keeps the hot paths free of
// timestamping and formatting.
type exchObs struct {
	rec  *trace.Recorder
	rank int // world rank, so all comms of a process share one lane

	planCompile   *obs.Histogram
	compilePar    *obs.Histogram
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	exchangeLat   *obs.Histogram
	roundLat      *obs.Histogram
	exchangeBytes *obs.Counter
	packLat       *obs.Histogram
	unpackLat     *obs.Histogram
	boundedSteps  *obs.Counter
	boundedPeak   *obs.Gauge
	pipeDepth     *obs.Gauge
	pipeOverlap   *obs.FloatGauge
}

// parallelismBuckets covers worker-pool widths from serial through large
// SMP nodes for the compile-parallelism histogram.
var parallelismBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// on reports whether observation is attached; helpers gate every
// time.Now and name formatting behind it.
func (o *exchObs) on() bool { return o != nil }

// tracing reports whether a trace recorder is attached; per-peer span
// formatting is gated behind it so metrics-only observation stays
// allocation-free.
func (o *exchObs) tracing() bool { return o != nil && o.rec != nil }

// buildObs derives the observation context for the communicator the
// mapping is being set up on. Ranks are labeled with the world rank so
// spans and series line up across sub-communicators of one process.
func (d *Descriptor) buildObs(rank int) {
	if d.tracer == nil && d.metrics == nil {
		d.obsv = nil
		return
	}
	rl := obs.RankLabel(rank)
	ml := obs.Label{Key: "mode", Value: d.mode.String()}
	d.obsv = &exchObs{
		rec:  d.tracer,
		rank: rank,
		planCompile: d.metrics.Histogram("ddr_plan_compile_seconds",
			"Time to gather geometry and compile the communication plan.", obs.LatencyBuckets, rl),
		compilePar: d.metrics.Histogram("ddr_plan_compile_parallelism",
			"Worker-pool width used for each plan compilation.", parallelismBuckets, rl),
		cacheHits: d.metrics.Counter("ddr_plan_cache_hits_total",
			"SetupDataMapping calls satisfied by a cached plan.", rl),
		cacheMisses: d.metrics.Counter("ddr_plan_cache_misses_total",
			"SetupDataMapping calls that compiled a new plan with caching enabled.", rl),
		exchangeLat: d.metrics.Histogram("ddr_exchange_seconds",
			"Wall time of one complete ReorganizeData exchange.", obs.LatencyBuckets, rl, ml),
		roundLat: d.metrics.Histogram("ddr_exchange_round_seconds",
			"Wall time of one exchange round.", obs.LatencyBuckets, rl, ml),
		exchangeBytes: d.metrics.Counter("ddr_exchange_bytes_total",
			"Bytes this rank sent across ranks during exchanges.", rl, ml),
		packLat: d.metrics.Histogram("ddr_pack_seconds",
			"Time spent packing sub-arrays into wire buffers.", obs.LatencyBuckets, rl),
		unpackLat: d.metrics.Histogram("ddr_unpack_seconds",
			"Time spent scattering wire buffers into the need box.", obs.LatencyBuckets, rl),
		boundedSteps: d.metrics.Counter("ddr_bounded_steps_total",
			"Bounded-footprint exchange steps executed by memory-bounded ReorganizeData calls.", rl, ml),
		boundedPeak: d.metrics.Gauge("ddr_bounded_peak_staging_bytes",
			"High-water mark of measured exchange-layer staging bytes across bounded exchanges.", rl, ml),
		pipeDepth: d.metrics.Gauge("ddr_pipeline_depth",
			"Pipeline depth the most recent exchange ran at, after geometry and budget clamping (1 = serial).", rl, ml),
		pipeOverlap: d.metrics.FloatGauge("ddr_pipeline_overlap_ratio",
			"Fraction of the most recent exchange's wire time hidden behind pack/unpack work (0 = fully serial).", rl, ml),
	}
}

// Option configures a Descriptor.
type Option func(*Descriptor)

// WithExchangeMode selects the wire mechanism (default ModeAlltoallw).
func WithExchangeMode(m ExchangeMode) Option {
	return func(d *Descriptor) { d.mode = m }
}

// WithTracer attaches a trace recorder: SetupDataMapping and every
// exchange round of ReorganizeData record spans into it (down to
// per-peer pack/unpack), enabling per-rank timeline inspection of where
// redistribution time goes. Export with obs.WriteTrace for Perfetto.
func WithTracer(r *trace.Recorder) Option {
	return func(d *Descriptor) { d.tracer = r }
}

// WithMetrics attaches a metrics registry: plan-compile and exchange
// latencies, per-round timings, and exchanged bytes are recorded as
// per-rank, per-mode series exportable in Prometheus text format.
func WithMetrics(reg *obs.Registry) Option {
	return func(d *Descriptor) { d.metrics = reg }
}

// WithFlightRecorder attaches a flight recorder: plan-cache verdicts and
// exchange start/end marks are recorded into the ring, every exchange
// stamps a trace context onto its wire traffic so transport-level flight
// events carry the exchange ID, and a degraded exchange (PartialError)
// triggers an automatic postmortem dump of the ring. Detached (the
// default) the hot paths pay a single nil check.
func WithFlightRecorder(f *obs.FlightRecorder) Option {
	return func(d *Descriptor) { d.flight = f }
}

// WithValidation makes SetupDataMapping verify collectively that the owned
// chunks are mutually exclusive and complete over their bounding domain,
// the precondition the paper states for the sending side.
func WithValidation() Option {
	return func(d *Descriptor) { d.validate = true }
}

// WithExchangeDeadline bounds every ReorganizeData exchange to at most d
// of wall time and switches peer failures from fail-fast to graceful
// degradation: a peer that is severed, crashed, or silent past the bound
// is given up on, the exchange finishes with the remaining peers, and the
// call returns a *PartialError naming the lost peers and the need-box
// regions their data would have filled. Zero (the default) keeps the
// historical behaviour — the exchange waits indefinitely and aborts on
// the first transport error.
func WithExchangeDeadline(dl time.Duration) Option {
	return func(d *Descriptor) { d.deadline = dl }
}

// DefaultPipelineDepth is the pipeline depth descriptors run at unless
// WithPipelineDepth overrides it: double buffering, the smallest depth
// that overlaps round r+1's pack with round r's wire time.
const DefaultPipelineDepth = 2

// WithPipelineDepth sets how many exchange rounds (or bounded steps) may
// be in flight at once (default DefaultPipelineDepth). Depth k > 1
// software-pipelines the multi-round exchange paths: round r+1's pack and
// send posting overlap round r's wire time, and round r's unpack runs
// behind round r+1's sends, through a ring of k staging-buffer sets.
// Depth 1 restores strictly serial rounds. The effective depth of an
// exchange is additionally clamped by the plan's round (or step) count
// and — when WithMemoryBudget is set — by the budget, so k-deep staging
// never exceeds it; single-round geometries and the alltoallw and fused
// modes always run serially. Results are byte-identical at every depth.
func WithPipelineDepth(k int) Option {
	return func(d *Descriptor) { d.depth = k }
}

// WithElemSize overrides the element byte size derived from the ElemType,
// for element types not covered by the enum (the C API takes the size
// separately for the same reason).
func WithElemSize(n int) Option {
	return func(d *Descriptor) {
		d.elemSize = n
		d.elemSizeSet = true
	}
}

// WithParallelism sets the number of worker goroutines the descriptor's
// pack/unpack engine uses per exchange phase (default GOMAXPROCS; n <= 0
// restores the default). Workers pack distinct peers' regions
// concurrently; 1 packs serially on the calling goroutine.
func WithParallelism(n int) Option {
	return func(d *Descriptor) { d.eng.par = n }
}

// WithPlanCache sets the capacity of the descriptor's plan cache
// (default 8). Cached plans let SetupDataMapping skip the geometry
// exchange and compilation entirely when a previously mapped layout
// recurs — the collective agreement costs two small collectives. n <= 0
// disables caching, forcing every setup through the full compile path.
func WithPlanCache(n int) Option {
	return func(d *Descriptor) { d.cacheCap = n }
}

// WithBufferPooling toggles staging-buffer pooling (default on). When on,
// wire buffers cycle through a process-wide arena so repeated exchanges
// on one plan allocate nothing in steady state; turn it off to isolate
// allocator effects in measurements.
func WithBufferPooling(enabled bool) Option {
	return func(d *Descriptor) { d.pooled = enabled }
}

// WithZeroCopy toggles the contiguous fast path (default on). When on,
// regions detected as contiguous at plan-compile time skip wire staging:
// sends hand the owned buffer's sub-slice directly to the transport and
// receives copy payloads straight into the need buffer.
func WithZeroCopy(enabled bool) Option {
	return func(d *Descriptor) {
		d.zeroCopy = enabled
		d.zcSend, d.zcRecv = enabled, enabled
	}
}

// NewDescriptor creates a descriptor for redistributing arrays of the
// given layout and element type across nProcs ranks. It corresponds to
// DDR_NewDataDescriptor(nProcs, DATA_TYPE_*, mpiType, elemSize); the
// element byte size follows from elem unless WithElemSize overrides it.
func NewDescriptor(nProcs int, layout Layout, elem ElemType, opts ...Option) (*Descriptor, error) {
	if nProcs <= 0 {
		return nil, fmt.Errorf("core: descriptor needs a positive process count, got %d", nProcs)
	}
	if layout < Layout1D || layout > Layout3D {
		return nil, fmt.Errorf("core: unsupported layout %v", layout)
	}
	d := &Descriptor{
		nProcs:   nProcs,
		layout:   layout,
		elem:     elem,
		elemSize: elem.Size(),
		pooled:   true,
		zeroCopy: true,
		autotune: true,
		cacheCap: 8,
		depth:    DefaultPipelineDepth,
	}
	d.zcSend, d.zcRecv = true, true
	for _, opt := range opts {
		opt(d)
	}
	if d.depth < 1 {
		return nil, fmt.Errorf("core: pipeline depth %d must be at least 1", d.depth)
	}
	if d.cacheCap > 0 {
		d.cache = newPlanCache[*Plan](d.cacheCap)
	}
	if !d.elemSizeSet && elem.Size() == 0 {
		return nil, fmt.Errorf("core: unknown element type %v", elem)
	}
	if d.elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", d.elemSize)
	}
	return d, nil
}

// NProcs returns the process count the descriptor was created for.
func (d *Descriptor) NProcs() int { return d.nProcs }

// Layout returns the data layout.
func (d *Descriptor) Layout() Layout { return d.layout }

// ElemSize returns the element byte size.
func (d *Descriptor) ElemSize() int { return d.elemSize }

// Plan returns the compiled communication plan, or nil before
// SetupDataMapping has run.
func (d *Descriptor) Plan() *Plan { return d.plan }

// LastExchangeID returns the trace exchange ID minted by the most recent
// ReorganizeData call (0 before the first). Every rank of the collective
// derives the same ID — the plan fingerprint is collectively agreed and
// the per-descriptor exchange counter runs in lockstep — so the value
// keys this exchange's spans and flight events across the whole world.
func (d *Descriptor) LastExchangeID() uint64 { return d.lastExchID }

// PlanCacheStats reports how many SetupDataMapping calls were satisfied
// by a cached plan and how many compiled a new one while caching was
// enabled. Both are zero when the cache is disabled.
func (d *Descriptor) PlanCacheStats() (hits, misses int64) {
	return d.cacheHits.Load(), d.cacheMisses.Load()
}

// PlanCacheLen reports the number of plans currently held by the cache
// (0 when caching is disabled).
func (d *Descriptor) PlanCacheLen() int {
	if d.cache == nil {
		return 0
	}
	return d.cache.len()
}

// PipelineDepth returns the configured pipeline depth (the
// WithPipelineDepth value, DefaultPipelineDepth when unset).
func (d *Descriptor) PipelineDepth() int { return d.depth }

// LastPipelineDepth returns the depth the most recent ReorganizeData
// call actually ran at, after clamping by the plan's round count and the
// memory budget — 1 when the exchange ran serially (0 before the first
// call).
func (d *Descriptor) LastPipelineDepth() int { return d.lastDepth }

// LastOverlapRatio returns the fraction of the most recent exchange's
// wire time that was hidden behind pack/unpack work: 0 for a serial
// exchange (every wire interval was spent blocked), approaching 1 when
// the pipeline kept the rounds' wire time fully covered. It equals
// OverlapRatio(d.LastTimings()).
func (d *Descriptor) LastOverlapRatio() float64 { return d.lastOverlap }

// MetricsRegistry returns the registry attached with WithMetrics, or nil.
func (d *Descriptor) MetricsRegistry() *obs.Registry { return d.metrics }

// ExchangeDeadline returns the per-exchange bound set with
// WithExchangeDeadline (0 when unset).
func (d *Descriptor) ExchangeDeadline() time.Duration { return d.deadline }

// ResetMapping discards the compiled plan, returning the descriptor to
// its pre-SetupDataMapping state. Cached plans survive — a later setup
// of a known geometry still replays — but ReorganizeData fails with
// ErrNoMapping until SetupDataMapping runs again. Sessions use it to
// poison a descriptor whose mapping can no longer be trusted (a failed
// collective setup may leave ranks disagreeing about the current plan).
func (d *Descriptor) ResetMapping() { d.plan = nil }

// Reshape discards the compiled plan and re-targets the descriptor at a
// new process count, the descriptor-level half of an elastic resize: the
// layout, element type, options, metrics, and plan cache all carry over,
// so a resized session keeps its identity (and its cached plans for any
// geometry that recurs at the same scale). The next SetupDataMapping
// must run on a communicator of the new size.
func (d *Descriptor) Reshape(nProcs int) error {
	if nProcs <= 0 {
		return fmt.Errorf("core: descriptor needs a positive process count, got %d", nProcs)
	}
	d.nProcs = nProcs
	d.plan = nil
	return nil
}

// checkBoxDims verifies a box matches the descriptor's dimensionality.
func (d *Descriptor) checkBoxDims(b grid.Box, what string) error {
	if b.NDims != d.layout.NDims() {
		return fmt.Errorf("core: %s box %v is %dD but descriptor is %v", what, b, b.NDims, d.layout)
	}
	return nil
}
