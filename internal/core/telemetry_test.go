package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// telemetryWorld runs a 4-rank row-strip -> column-strip redistribution
// of a 64x64 float32 field with the given descriptor options, calling
// ReorganizeData iters times on the reusable mapping.
func telemetryWorld(iters int, opts ...Option) error {
	const n, side = 4, 64
	return mpi.Launch(n, func(c *mpi.Comm) error {
		d, err := NewDescriptor(n, Layout2D, Float32, opts...)
		if err != nil {
			return err
		}
		strip := side / n
		own := grid.Box2(0, c.Rank()*strip, side, strip)
		need := grid.Box2(c.Rank()*strip, 0, strip, side)
		if err := d.SetupDataMapping(c, []grid.Box{own}, need); err != nil {
			return err
		}
		ownBuf := fillBox(own, d.ElemSize())
		needBuf := make([]byte, need.Volume()*d.ElemSize())
		for i := 0; i < iters; i++ {
			if err := d.ReorganizeData(c, [][]byte{ownBuf}, needBuf); err != nil {
				return err
			}
		}
		return checkBox(needBuf, need, d.ElemSize(), nil, 0)
	})
}

// Every exchange mode must leave behind the plan-compile histogram, the
// per-mode exchange latency histogram, exchanged-bytes counters, and the
// per-rank mapping/exchange spans the acceptance criteria call for.
func TestTelemetryPopulatedAllModes(t *testing.T) {
	const n = 4
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			rec := trace.NewRecorder()
			if err := telemetryWorld(2, WithExchangeMode(mode), WithMetrics(reg), WithTracer(rec)); err != nil {
				t.Fatal(err)
			}
			ml := obs.Label{Key: "mode", Value: mode.String()}
			for r := 0; r < n; r++ {
				rl := obs.RankLabel(r)
				if h := reg.Histogram("ddr_plan_compile_seconds", "", nil, rl); h.Count() != 1 {
					t.Errorf("rank %d plan-compile observations = %d, want 1", r, h.Count())
				}
				if h := reg.Histogram("ddr_exchange_seconds", "", nil, rl, ml); h.Count() != 2 {
					t.Errorf("rank %d exchange observations = %d, want 2", r, h.Count())
				}
				if h := reg.Histogram("ddr_exchange_round_seconds", "", nil, rl, ml); h.Count() == 0 {
					t.Errorf("rank %d recorded no rounds", r)
				}
				// Each rank's strip overlaps 3 peers' need columns with
				// strip*strip cells each, twice: 2*3*16*16*4 bytes.
				if got := reg.Counter("ddr_exchange_bytes_total", "", rl, ml).Value(); got != 2*3*16*16*4 {
					t.Errorf("rank %d exchanged %d bytes, want %d", r, got, 2*3*16*16*4)
				}
			}
			perRank := map[int]map[string]int{}
			for _, e := range rec.Events() {
				if perRank[e.Rank] == nil {
					perRank[e.Rank] = map[string]int{}
				}
				switch {
				case e.Name == "mapping":
					perRank[e.Rank]["mapping"]++
				case e.Name == "exchange":
					perRank[e.Rank]["exchange"]++
				case strings.HasPrefix(e.Name, "round-"):
					perRank[e.Rank]["round"]++
				}
			}
			for r := 0; r < n; r++ {
				got := perRank[r]
				if got["mapping"] != 1 || got["exchange"] != 2 {
					t.Errorf("rank %d spans %v, want mapping=1 exchange=2", r, got)
				}
				if mode != ModePointToPointFused && got["round"] != 2 {
					t.Errorf("rank %d round spans = %d, want 2", r, got["round"])
				}
			}
			// The Prometheus export must carry all the families.
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			text := buf.String()
			for _, family := range []string{
				"ddr_plan_compile_seconds", "ddr_exchange_seconds",
				"ddr_exchange_round_seconds", "ddr_exchange_bytes_total",
			} {
				if !strings.Contains(text, "# TYPE "+family) {
					t.Errorf("Prometheus export missing family %s", family)
				}
			}
		})
	}
}

// The pack/unpack histograms only exist for the modes that pack on the
// application side (the alltoallw mode packs inside the collective).
func TestTelemetryPackUnpackObserved(t *testing.T) {
	for _, mode := range []ExchangeMode{ModePointToPoint, ModePointToPointFused} {
		reg := obs.NewRegistry()
		if err := telemetryWorld(1, WithExchangeMode(mode), WithMetrics(reg)); err != nil {
			t.Fatal(err)
		}
		var total int64
		for r := 0; r < 4; r++ {
			total += reg.Histogram("ddr_pack_seconds", "", nil, obs.RankLabel(r)).Count()
			total += reg.Histogram("ddr_unpack_seconds", "", nil, obs.RankLabel(r)).Count()
		}
		// Every rank packs for 3 peers and unpacks from 3 peers.
		if want := int64(4 * (3 + 3)); total != want {
			t.Errorf("%v: pack+unpack observations = %d, want %d", mode, total, want)
		}
	}
}

// benchmarkReorganize times the steady-state ReorganizeData replay under
// the given options. The world is held open across iterations so only the
// exchange itself is measured.
func benchmarkReorganize(b *testing.B, opts ...Option) {
	const n, side = 4, 64
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		d, err := NewDescriptor(n, Layout2D, Float32, opts...)
		if err != nil {
			return err
		}
		strip := side / n
		own := grid.Box2(0, c.Rank()*strip, side, strip)
		need := grid.Box2(c.Rank()*strip, 0, strip, side)
		if err := d.SetupDataMapping(c, []grid.Box{own}, need); err != nil {
			return err
		}
		ownBuf := make([]byte, own.Volume()*d.ElemSize())
		needBuf := make([]byte, need.Volume()*d.ElemSize())
		if c.Rank() == 0 {
			b.ResetTimer()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if err := d.ReorganizeData(c, [][]byte{ownBuf}, needBuf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReorganizeTelemetry compares the un-instrumented exchange
// against the same exchange with tracing and metrics attached, per mode.
// The "off" variants are the regression guard: detached descriptors must
// not pay for the telemetry layer.
func BenchmarkReorganizeTelemetry(b *testing.B) {
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		b.Run(fmt.Sprintf("%v/off", mode), func(b *testing.B) {
			benchmarkReorganize(b, WithExchangeMode(mode))
		})
		b.Run(fmt.Sprintf("%v/on", mode), func(b *testing.B) {
			benchmarkReorganize(b, WithExchangeMode(mode),
				WithTracer(trace.NewRecorder()), WithMetrics(obs.NewRegistry()))
		})
	}
}
