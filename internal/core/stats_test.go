package core

import (
	"math/rand"
	"sync"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// bruteForceTraffic computes wire and self bytes by sampling every
// element of every need box and finding its owner.
func bruteForceTraffic(elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (wire, self int64) {
	owner := func(p [grid.MaxDims]int) int {
		for r, chunks := range allChunks {
			for _, b := range chunks {
				if b.ContainsPoint(p) {
					return r
				}
			}
		}
		return -1
	}
	for r, need := range allNeeds {
		for z := 0; z < need.Dims[2]; z++ {
			for y := 0; y < need.Dims[1]; y++ {
				for x := 0; x < need.Dims[0]; x++ {
					p := [grid.MaxDims]int{need.Offset[0] + x, need.Offset[1] + y, need.Offset[2] + z}
					o := owner(p)
					if o == -1 {
						continue
					}
					if o == r {
						self += int64(elemSize)
					} else {
						wire += int64(elemSize)
					}
				}
			}
		}
	}
	return wire, self
}

// TestStatsMatchBruteForce verifies Plan.Stats against element-by-element
// accounting for random geometries.
func TestStatsMatchBruteForce(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		n := 1 + rng.Intn(6)
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		offset := make([]int, nd)
		for i := range dims {
			dims[i] = 2 + rng.Intn(8)
		}
		domain := grid.MustBox(offset, dims)
		tiles := grid.RandomTiling(rng, domain, 1+rng.Intn(2*n))
		allChunks := make([][]grid.Box, n)
		for i, b := range tiles {
			allChunks[i%n] = append(allChunks[i%n], b)
		}
		allNeeds := make([]grid.Box, n)
		for r := range allNeeds {
			allNeeds[r] = grid.RandomBoxIn(rng, domain)
		}
		elemSize := 1 + rng.Intn(8)
		plan, err := NewPlanFromGeometry(0, elemSize, allChunks, allNeeds)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s := plan.Stats()
		wire, self := bruteForceTraffic(elemSize, allChunks, allNeeds)
		if s.TotalWireBytes != wire {
			t.Errorf("trial %d: wire %d, brute force %d", trial, s.TotalWireBytes, wire)
		}
		if s.SelfBytes != self {
			t.Errorf("trial %d: self %d, brute force %d", trial, s.SelfBytes, self)
		}
		// Per-rank send bytes must sum to the wire total.
		var sum int64
		for rank := 0; rank < n; rank++ {
			for r := 0; r < s.Rounds; r++ {
				sum += plan.RankRoundSendBytes(rank, r)
			}
		}
		if sum != wire {
			t.Errorf("trial %d: per-rank sum %d, wire %d", trial, sum, wire)
		}
	}
}

// TestExchangeModesAgree verifies all three exchange modes produce
// identical results for the same random geometry, across engine
// configurations: the default (pooled, zero-copy, GOMAXPROCS workers),
// the fully disabled legacy path, and an explicit multi-worker pool.
func TestExchangeModesAgree(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"legacy", []Option{WithParallelism(1), WithBufferPooling(false), WithZeroCopy(false)}},
		{"par2", []Option{WithParallelism(2)}},
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		const n = 5
		domain := grid.Box2(0, 0, 2+rng.Intn(12), 2+rng.Intn(12))
		tiles := grid.RandomTiling(rng, domain, 1+rng.Intn(2*n))
		ownAll := make([][]grid.Box, n)
		for i, b := range tiles {
			ownAll[i%n] = append(ownAll[i%n], b)
		}
		needAll := make([]grid.Box, n)
		for r := range needAll {
			needAll[r] = grid.RandomBoxIn(rng, domain)
		}
		var base [][]byte
		for _, cfg := range configs {
			for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
				outs := make([][]byte, n)
				err := runWorld(n, mode, ownAll, needAll, outs, cfg.opts...)
				if err != nil {
					t.Fatalf("trial %d config %s mode %v: %v", trial, cfg.name, mode, err)
				}
				if base == nil {
					base = outs
					continue
				}
				for r := range outs {
					if string(outs[r]) != string(base[r]) {
						t.Fatalf("trial %d: config %s mode %v rank %d differs from baseline",
							trial, cfg.name, mode, r)
					}
				}
			}
		}
	}
}

// runWorld executes one redistribution with the given mode, capturing
// every rank's need buffer into outs (indexed by rank).
func runWorld(n int, mode ExchangeMode, ownAll [][]grid.Box, needAll []grid.Box, outs [][]byte, opts ...Option) error {
	var mu sync.Mutex
	return mpi.Launch(n, func(c *mpi.Comm) error {
		rank := c.Rank()
		desc, err := NewDescriptor(n, Layout2D, Uint8,
			append([]Option{WithElemSize(1), WithExchangeMode(mode)}, opts...)...)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, b := range ownAll[rank] {
			bufs[i] = fillBox(b, 1)
		}
		needBuf := make([]byte, needAll[rank].Volume())
		if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
			return err
		}
		mu.Lock()
		outs[rank] = needBuf
		mu.Unlock()
		return nil
	})
}
