package core

import (
	"encoding/binary"
	"fmt"

	"ddr/internal/grid"
)

// Geometry exchange wire format: every rank contributes its need box
// followed by its owned chunk list. All integers are little-endian int32;
// coordinates in DDR's use cases are raster indices, far below 2^31.

func appendBox(buf []byte, b grid.Box) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(int32(b.NDims)))
	buf = append(buf, tmp[:]...)
	for i := 0; i < b.NDims; i++ {
		binary.LittleEndian.PutUint32(tmp[:], uint32(int32(b.Offset[i])))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(int32(b.Dims[i])))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func readBox(buf []byte) (grid.Box, []byte, error) {
	if len(buf) < 4 {
		return grid.Box{}, nil, fmt.Errorf("core: truncated box header")
	}
	nd := int(int32(binary.LittleEndian.Uint32(buf)))
	buf = buf[4:]
	if nd < 1 || nd > grid.MaxDims {
		return grid.Box{}, nil, fmt.Errorf("core: box dimensionality %d out of range", nd)
	}
	if len(buf) < 8*nd {
		return grid.Box{}, nil, fmt.Errorf("core: truncated box body")
	}
	offset := make([]int, nd)
	dims := make([]int, nd)
	for i := 0; i < nd; i++ {
		offset[i] = int(int32(binary.LittleEndian.Uint32(buf)))
		dims[i] = int(int32(binary.LittleEndian.Uint32(buf[4:])))
		buf = buf[8:]
	}
	b, err := grid.NewBox(offset, dims)
	return b, buf, err
}

// encodeGeometry packs a rank's need box and owned chunks for the
// allgather in SetupDataMapping.
func encodeGeometry(need grid.Box, own []grid.Box) []byte {
	buf := appendBox(nil, need)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(int32(len(own))))
	buf = append(buf, tmp[:]...)
	for _, b := range own {
		buf = appendBox(buf, b)
	}
	return buf
}

// decodeGeometry reverses encodeGeometry.
func decodeGeometry(buf []byte) (need grid.Box, own []grid.Box, err error) {
	need, buf, err = readBox(buf)
	if err != nil {
		return grid.Box{}, nil, err
	}
	if len(buf) < 4 {
		return grid.Box{}, nil, fmt.Errorf("core: truncated chunk count")
	}
	n := int(int32(binary.LittleEndian.Uint32(buf)))
	buf = buf[4:]
	if n < 0 {
		return grid.Box{}, nil, fmt.Errorf("core: negative chunk count %d", n)
	}
	own = make([]grid.Box, n)
	for i := range own {
		own[i], buf, err = readBox(buf)
		if err != nil {
			return grid.Box{}, nil, err
		}
	}
	if len(buf) != 0 {
		return grid.Box{}, nil, fmt.Errorf("core: %d trailing bytes after geometry", len(buf))
	}
	return need, own, nil
}
