package core

import (
	"encoding/binary"
	"fmt"

	"ddr/internal/grid"
)

// Geometry exchange wire format v2: every rank contributes its need box
// followed by its owned chunk list, encoded compactly — the allgather
// payload is O(P·chunks) per rank and O(P²·chunks) in flight, so its size
// is what bounds SetupDataMapping's communication at scale.
//
// All integers are varints. Box coordinates are delta-encoded against the
// previous box in the same stream (zigzag for the signed deltas): chunk
// lists are typically adjacent slabs or slices of one another, so deltas
// are tiny and a box costs a few bytes instead of the fixed 28 of the v1
// fixed-width encoding. The encoding is canonical — one byte stream per
// geometry — which lets the same bytes double as the input of the plan
// cache's geometry fingerprint (see plancache.go).

// geomVersion guards against mixed-build worlds decoding each other's
// geometry streams.
const geomVersion = 2

// zigzag maps a signed delta onto the unsigned varint space.
func zigzag(v int) uint64 { return uint64((int64(v) << 1) ^ (int64(v) >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int { return int(int64(u>>1) ^ -int64(u&1)) }

// appendUvarint appends u as a varint.
func appendUvarint(buf []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return append(buf, tmp[:n]...)
}

// readUvarint consumes one varint from buf.
func readUvarint(buf []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("core: truncated or malformed varint")
	}
	return u, buf[n:], nil
}

// appendBox appends b delta-encoded against prev and advances prev.
func appendBox(buf []byte, b grid.Box, prev *grid.Box) []byte {
	buf = appendUvarint(buf, uint64(b.NDims))
	for i := 0; i < b.NDims; i++ {
		buf = appendUvarint(buf, zigzag(b.Offset[i]-prev.Offset[i]))
		buf = appendUvarint(buf, zigzag(b.Dims[i]-prev.Dims[i]))
	}
	*prev = b
	return buf
}

// readBox consumes one delta-encoded box and advances prev.
func readBox(buf []byte, prev *grid.Box) (grid.Box, []byte, error) {
	u, buf, err := readUvarint(buf)
	if err != nil {
		return grid.Box{}, nil, fmt.Errorf("core: box header: %w", err)
	}
	nd := int(u)
	if nd < 1 || nd > grid.MaxDims {
		return grid.Box{}, nil, fmt.Errorf("core: box dimensionality %d out of range", nd)
	}
	offset := make([]int, nd)
	dims := make([]int, nd)
	for i := 0; i < nd; i++ {
		if u, buf, err = readUvarint(buf); err != nil {
			return grid.Box{}, nil, fmt.Errorf("core: box offset axis %d: %w", i, err)
		}
		offset[i] = prev.Offset[i] + unzigzag(u)
		if u, buf, err = readUvarint(buf); err != nil {
			return grid.Box{}, nil, fmt.Errorf("core: box extent axis %d: %w", i, err)
		}
		dims[i] = prev.Dims[i] + unzigzag(u)
	}
	b, err := grid.NewBox(offset, dims)
	if err != nil {
		return grid.Box{}, nil, err
	}
	*prev = b
	return b, buf, nil
}

// encodeGeometry packs a rank's need box and owned chunks for the
// allgather in SetupDataMapping. The output is canonical: equal
// geometries encode to equal bytes.
func encodeGeometry(need grid.Box, own []grid.Box) []byte {
	buf := append(make([]byte, 0, 16+8*len(own)), geomVersion)
	var prev grid.Box
	buf = appendBox(buf, need, &prev)
	buf = appendUvarint(buf, uint64(len(own)))
	for _, b := range own {
		buf = appendBox(buf, b, &prev)
	}
	return buf
}

// decodeGeometry reverses encodeGeometry.
func decodeGeometry(buf []byte) (need grid.Box, own []grid.Box, err error) {
	if len(buf) < 1 || buf[0] != geomVersion {
		return grid.Box{}, nil, fmt.Errorf("core: unsupported geometry encoding version")
	}
	buf = buf[1:]
	var prev grid.Box
	need, buf, err = readBox(buf, &prev)
	if err != nil {
		return grid.Box{}, nil, err
	}
	u, buf, err := readUvarint(buf)
	if err != nil {
		return grid.Box{}, nil, fmt.Errorf("core: chunk count: %w", err)
	}
	n := int(u)
	if n < 0 || n > len(buf)+1 { // every box costs at least one byte
		return grid.Box{}, nil, fmt.Errorf("core: implausible chunk count %d", n)
	}
	own = make([]grid.Box, n)
	for i := range own {
		own[i], buf, err = readBox(buf, &prev)
		if err != nil {
			return grid.Box{}, nil, err
		}
	}
	if len(buf) != 0 {
		return grid.Box{}, nil, fmt.Errorf("core: %d trailing bytes after geometry", len(buf))
	}
	return need, own, nil
}
