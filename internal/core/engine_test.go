package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// engineWorld runs one redistribution of the given geometry and verifies
// every rank's need buffer holds the canonical pattern.
func engineWorld(t *testing.T, n int, mode ExchangeMode, elemSize int, ownAll [][]grid.Box, needAll []grid.Box, opts ...Option) {
	t.Helper()
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		rank := c.Rank()
		desc, err := NewDescriptor(n, Layout2D, Uint8,
			append([]Option{WithElemSize(elemSize), WithExchangeMode(mode)}, opts...)...)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, b := range ownAll[rank] {
			bufs[i] = fillBox(b, elemSize)
		}
		needBuf := make([]byte, needAll[rank].Volume()*elemSize)
		// Two calls on one plan: the second exercises the pooled steady
		// state where every staging buffer is recycled.
		for iter := 0; iter < 2; iter++ {
			if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
				return err
			}
		}
		return checkBox(needBuf, needAll[rank], elemSize, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// stripWorld builds the multi-chunk test geometry: full-width row strips
// assigned round-robin (strided or contiguous depending on the need
// orientation).
func stripWorld(n, side, chunksPerRank int, columnNeeds bool) (ownAll [][]grid.Box, needAll []grid.Box) {
	domain := grid.Box2(0, 0, side, side)
	strips := grid.Slabs(domain, 1, n*chunksPerRank)
	ownAll = make([][]grid.Box, n)
	for i, b := range strips {
		ownAll[i%n] = append(ownAll[i%n], b)
	}
	if columnNeeds {
		needAll = grid.Slabs(domain, 0, n)
	} else {
		needAll = grid.Slabs(domain, 1, n)
	}
	return ownAll, needAll
}

// TestWorkerPoolSizes verifies the pack/unpack engine at pool sizes 1, 2,
// GOMAXPROCS, and an oversubscribed 4, for every exchange mode, on both
// strided (column needs) and contiguous (row needs) geometries. Run under
// -race this also proves jobs for distinct peers are data-race free.
func TestWorkerPoolSizes(t *testing.T) {
	sizes := []int{1, 2, runtime.GOMAXPROCS(0), 4}
	for _, par := range sizes {
		for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
			for _, columns := range []bool{false, true} {
				name := fmt.Sprintf("par%d/%v/columns=%v", par, mode, columns)
				t.Run(name, func(t *testing.T) {
					ownAll, needAll := stripWorld(4, 32, 2, columns)
					engineWorld(t, 4, mode, 4, ownAll, needAll, WithParallelism(par))
				})
			}
		}
	}
}

// TestZeroCopyMatchesStaged verifies the contiguous fast path against the
// fully staged path on a geometry where every region is contiguous
// (row strips to row slabs), including partially contiguous fused
// messages (two rounds contribute to one peer).
func TestZeroCopyMatchesStaged(t *testing.T) {
	ownAll, needAll := stripWorld(4, 32, 2, false)
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		engineWorld(t, 4, mode, 4, ownAll, needAll)
		engineWorld(t, 4, mode, 4, ownAll, needAll, WithZeroCopy(false))
	}
}

// TestZeroAllocSteadyState asserts that once a plan has been exercised,
// replaying ReorganizeData allocates nothing: staging buffers come from
// the arena and all bookkeeping reuses descriptor scratch. The geometry
// forces a strided self-exchange, the pooled staging path.
func TestZeroAllocSteadyState(t *testing.T) {
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		t.Run(mode.String(), func(t *testing.T) {
			array := grid.Box2(0, 0, 8, 8)
			need := grid.Box2(1, 1, 6, 6) // interior: strided in the 8x8 array
			err := mpi.Launch(1, func(c *mpi.Comm) error {
				desc, err := NewDescriptor(1, Layout2D, Float32, WithExchangeMode(mode))
				if err != nil {
					return err
				}
				if err := desc.SetupDataMapping(c, []grid.Box{array}, need); err != nil {
					return err
				}
				src := fillBox(array, 4)
				dst := make([]byte, need.Volume()*4)
				for i := 0; i < 3; i++ { // reach steady state
					if err := desc.ReorganizeData(c, [][]byte{src}, dst); err != nil {
						return err
					}
				}
				defer debug.SetGCPercent(debug.SetGCPercent(-1))
				allocs := testing.AllocsPerRun(50, func() {
					if err := desc.ReorganizeData(c, [][]byte{src}, dst); err != nil {
						t.Error(err)
					}
				})
				if allocs != 0 {
					t.Errorf("mode %v: %.1f allocs per steady-state ReorganizeData, want 0", mode, allocs)
				}
				return checkBox(dst, need, 4, nil, 0)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSentinelErrors verifies the typed error classification of the
// validation paths via errors.Is.
func TestSentinelErrors(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(2, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.ReorganizeData(c, nil, nil); !errors.Is(err, ErrNoMapping) {
			return fmt.Errorf("pre-mapping exchange: got %v, want ErrNoMapping", err)
		}
		wrong, err := NewDescriptor(3, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := wrong.SetupDataMapping(c, nil, grid.Box1(0, 4)); !errors.Is(err, ErrCommMismatch) {
			return fmt.Errorf("size-mismatched mapping: got %v, want ErrCommMismatch", err)
		}
		own := grid.Box1(c.Rank()*4, 4)
		if err := desc.SetupDataMapping(c, []grid.Box{own}, grid.Box1(0, 8)); err != nil {
			return err
		}
		if err := desc.ReorganizeData(c, nil, make([]byte, 8)); !errors.Is(err, ErrBufferSize) {
			return fmt.Errorf("missing owned buffer: got %v, want ErrBufferSize", err)
		}
		if err := desc.ReorganizeData(c, [][]byte{make([]byte, 3)}, make([]byte, 8)); !errors.Is(err, ErrBufferSize) {
			return fmt.Errorf("short owned buffer: got %v, want ErrBufferSize", err)
		}
		if err := desc.ReorganizeData(c, [][]byte{make([]byte, 4)}, make([]byte, 7)); !errors.Is(err, ErrBufferSize) {
			return fmt.Errorf("short need buffer: got %v, want ErrBufferSize", err)
		}
		return desc.ReorganizeData(c, [][]byte{make([]byte, 4)}, make([]byte, 8))
	})
	if err != nil {
		t.Fatal(err)
	}

	// MultiDescriptor shares the classification.
	err = mpi.Launch(1, func(c *mpi.Comm) error {
		md, err := NewMultiDescriptor(1, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := md.ReorganizeData(c, nil, nil); !errors.Is(err, ErrNoMapping) {
			return fmt.Errorf("multi pre-mapping exchange: got %v, want ErrNoMapping", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLastTimingsDefensiveCopy verifies the returned timings are the
// caller's to keep: mutating them must not corrupt the descriptor's
// record, and a later exchange must not mutate an earlier return.
func TestLastTimingsDefensiveCopy(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		desc, err := NewDescriptor(1, Layout1D, Uint8)
		if err != nil {
			return err
		}
		own := grid.Box1(0, 8)
		if err := desc.SetupDataMapping(c, []grid.Box{own}, own); err != nil {
			return err
		}
		buf := fillBox(own, 1)
		dst := make([]byte, 8)
		if desc.LastTimings() != nil {
			return fmt.Errorf("timings non-nil before first exchange")
		}
		if err := desc.ReorganizeData(c, [][]byte{buf}, dst); err != nil {
			return err
		}
		first := desc.LastTimings()
		if len(first) != 1 {
			return fmt.Errorf("got %d timing entries, want 1", len(first))
		}
		first[0].Round = 99 // must not write through to the descriptor
		if got := desc.LastTimings(); got[0].Round != 0 {
			return fmt.Errorf("mutating the returned slice corrupted the descriptor")
		}
		saved := desc.LastTimings()
		if err := desc.ReorganizeData(c, [][]byte{buf}, dst); err != nil {
			return err
		}
		if saved[0] != first[0] && saved[0].Round != 0 {
			return fmt.Errorf("later exchange mutated an earlier LastTimings result")
		}
		appended := desc.AppendTimings(saved)
		if len(appended) != 2 {
			return fmt.Errorf("AppendTimings returned %d entries, want 2", len(appended))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReorganizeDataCtxCancel verifies a blocked receive wait is
// abandoned when the context expires, while the peer — whose inputs were
// already sent eagerly — still completes its own exchange.
func TestReorganizeDataCtxCancel(t *testing.T) {
	for _, mode := range []ExchangeMode{ModePointToPoint, ModePointToPointFused} {
		t.Run(mode.String(), func(t *testing.T) {
			domain := grid.Box1(0, 8)
			halves := grid.Slabs(domain, 0, 2)
			err := mpi.Launch(2, func(c *mpi.Comm) error {
				desc, err := NewDescriptor(2, Layout1D, Uint8, WithExchangeMode(mode))
				if err != nil {
					return err
				}
				own := halves[c.Rank()]
				if err := desc.SetupDataMapping(c, []grid.Box{own}, domain); err != nil {
					return err
				}
				buf := fillBox(own, 1)
				dst := make([]byte, domain.Volume())
				if c.Rank() == 1 {
					// Withhold rank 1's contribution long enough for rank 0's
					// deadline to expire, then exchange normally: rank 0's send
					// phase ran before its cancelled wait, so the data is there.
					time.Sleep(200 * time.Millisecond)
					return desc.ReorganizeData(c, [][]byte{buf}, dst)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				defer cancel()
				if err := desc.ReorganizeDataCtx(ctx, c, [][]byte{buf}, dst); !errors.Is(err, context.DeadlineExceeded) {
					return fmt.Errorf("rank 0: got %v, want context.DeadlineExceeded", err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReorganizeDataCtxComplete verifies an ample deadline leaves the
// exchange untouched and an already-cancelled context fails fast.
func TestReorganizeDataCtxComplete(t *testing.T) {
	ownAll, needAll := stripWorld(4, 32, 2, true)
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		rank := c.Rank()
		desc, err := NewDescriptor(4, Layout2D, Float32, WithExchangeMode(ModePointToPoint))
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, b := range ownAll[rank] {
			bufs[i] = fillBox(b, 4)
		}
		dst := make([]byte, needAll[rank].Volume()*4)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := desc.ReorganizeDataCtx(ctx, c, bufs, dst); err != nil {
			return err
		}
		if err := checkBox(dst, needAll[rank], 4, nil, 0); err != nil {
			return err
		}
		done, cancelNow := context.WithCancel(context.Background())
		cancelNow()
		if err := desc.ReorganizeDataCtx(done, c, bufs, dst); !errors.Is(err, context.Canceled) {
			return fmt.Errorf("pre-cancelled ctx: got %v, want context.Canceled", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// benchEngineConfig runs the 16-rank, 256x256, multi-chunk layout of the
// acceptance benchmark with the given engine options, reporting the mean
// per-exchange wall time observed by the rank-0 metrics registry.
func benchEngineConfig(b *testing.B, mode ExchangeMode, opts ...Option) {
	const (
		procs         = 16
		side          = 256
		elemSize      = 4
		chunksPerRank = 4
	)
	ownAll, needAll := stripWorld(procs, side, chunksPerRank, false)
	reg := obs.NewRegistry()
	b.SetBytes(int64(side) * int64(side) * elemSize)
	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		rank := c.Rank()
		desc, err := NewDescriptor(procs, Layout2D, Float32,
			append([]Option{WithExchangeMode(mode), WithMetrics(reg)}, opts...)...)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, box := range ownAll[rank] {
			bufs[i] = make([]byte, box.Volume()*elemSize)
		}
		dst := make([]byte, needAll[rank].Volume()*elemSize)
		if rank == 0 {
			b.ResetTimer()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < b.N; i++ {
			if err := desc.ReorganizeData(c, bufs, dst); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	h := reg.Histogram("ddr_exchange_seconds",
		"Wall time of one complete ReorganizeData exchange.", obs.LatencyBuckets,
		obs.RankLabel(0), obs.Label{Key: "mode", Value: mode.String()})
	if n := h.Count(); n > 0 {
		b.ReportMetric(h.Sum()/float64(n)*1e9, "exch-ns/op")
	}
}

// BenchmarkReorganizeEngine compares the staging strategies on the same
// exchange: fully serial unpooled staging, pooled staging, the parallel
// engine, and the pooled zero-copy fast path (the default).
func BenchmarkReorganizeEngine(b *testing.B) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"serial", []Option{WithParallelism(1), WithBufferPooling(false), WithZeroCopy(false)}},
		{"pooled", []Option{WithParallelism(1), WithBufferPooling(true), WithZeroCopy(false)}},
		{"parallel", []Option{WithBufferPooling(true), WithZeroCopy(false)}},
		{"zerocopy", nil},
	}
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("%v/%s", mode, cfg.name), func(b *testing.B) {
				benchEngineConfig(b, mode, cfg.opts...)
			})
		}
	}
}

// BenchmarkPackUnpackPool isolates the engine itself: pack+unpack of one
// rank's strided regions at different pool sizes, no communication.
func BenchmarkPackUnpackPool(b *testing.B) {
	const side = 512
	array := grid.Box2(0, 0, side, side)
	local := make([]byte, array.Volume()*4)
	// 16 column strips: every region strided, evenly sized.
	cols := grid.Slabs(array, 0, 16)
	var jobs []exchJob
	var wires [][]byte
	for _, box := range cols {
		st, err := datatype.NewSubarray(4, array, box)
		if err != nil {
			b.Fatal(err)
		}
		w := make([]byte, st.PackedSize())
		wires = append(wires, w)
		jobs = append(jobs, exchJob{t: st, local: local, wire: w})
	}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			eng := engine{par: par}
			b.SetBytes(int64(len(local)))
			for i := 0; i < b.N; i++ {
				eng.jobs = append(eng.jobs[:0], jobs...)
				eng.run(nil)
			}
		})
	}
	_ = wires
}
