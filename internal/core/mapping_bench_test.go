package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"ddr/internal/grid"
)

// benchMappingGeometry builds the mapping benchmark's geometry: a 3-D
// stack of procs bricks along z, each rank's brick split into chunksPer
// z-slabs, with every rank needing its brick shifted by half a brick —
// the halo-style regrid where each rank exchanges with a handful of
// neighbours regardless of scale, so discovery cost is what separates
// the compilers.
func benchMappingGeometry(procs, chunksPer int) ([][]grid.Box, []grid.Box) {
	const w, h, slab = 64, 64, 8
	bd := slab * chunksPer
	chunks := make([][]grid.Box, procs)
	needs := make([]grid.Box, procs)
	for r := 0; r < procs; r++ {
		z0 := r * bd
		for c := 0; c < chunksPer; c++ {
			chunks[r] = append(chunks[r], grid.Box3(0, 0, z0+c*slab, w, h, slab))
		}
		needs[r] = grid.Box3(0, 0, z0+bd/2, w, h, bd)
	}
	return chunks, needs
}

// gcQuiesce disables the collector for a benchmark that retains a whole
// schedule per iteration; the caller forces a collection between
// iterations with the timer stopped, so both compilers are measured on
// raw compile cost rather than GC pacing noise.
func gcQuiesce() func() {
	old := debug.SetGCPercent(-1)
	return func() { debug.SetGCPercent(old) }
}

// BenchmarkSetupMapping sweeps offline plan compilation across process
// counts, comparing the indexed sparse compiler against the brute-force
// reference (the pre-PR path, retained in mapping_brute.go):
//
//	plan/*:           one rank's plan via NewPlanFromGeometry
//	plan-brute/*:     one rank's plan via the brute-force compiler
//	schedule/*:       all P plans via CompileSchedule (shared indexes)
//	schedule-brute/*: all P plans by looping the brute-force compiler
//
// The schedule pair is the paper's offline-analysis scenario (ddrplan,
// capacity planning): the acceptance target is the schedule ratio at
// P=1024 with 4 chunks per rank.
func BenchmarkSetupMapping(b *testing.B) {
	const chunksPer = 4
	for _, procs := range []int{64, 256, 1024} {
		chunks, needs := benchMappingGeometry(procs, chunksPer)
		rank := procs / 2

		b.Run(fmt.Sprintf("plan/P=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewPlanFromGeometry(rank, 4, chunks, needs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("plan-brute/P=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compilePlanBrute(rank, 4, chunks, needs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("schedule/P=%d", procs), func(b *testing.B) {
			defer gcQuiesce()()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runtime.GC()
				b.StartTimer()
				if _, err := CompileSchedule(4, chunks, needs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("schedule-brute/P=%d", procs), func(b *testing.B) {
			defer gcQuiesce()()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runtime.GC()
				b.StartTimer()
				plans := make([]*Plan, procs)
				for r := range plans {
					p, err := compilePlanBrute(r, 4, chunks, needs)
					if err != nil {
						b.Fatal(err)
					}
					plans[r] = p
				}
				runtime.KeepAlive(plans)
			}
		})
	}
}
