package core

import (
	"errors"
	"fmt"

	"ddr/internal/grid"
)

// Sentinel errors reported by the redistribution API. They are wrapped
// with call-site context, so match with errors.Is rather than equality.
var (
	// ErrNoMapping reports a data exchange attempted before
	// SetupDataMapping compiled a plan.
	ErrNoMapping = errors.New("no data mapping")
	// ErrCommMismatch reports a communicator whose size or rank does not
	// match the one the descriptor or plan was built for.
	ErrCommMismatch = errors.New("communicator mismatch")
	// ErrBufferSize reports owned or need buffers whose count or byte
	// length disagrees with the registered geometry.
	ErrBufferSize = errors.New("buffer size mismatch")
)

// PartialError reports a ReorganizeData exchange that completed for every
// reachable peer but gave up on the listed ones — peers that became
// unreachable or failed to respond within the WithExchangeDeadline bound.
// Regions of the need buffer fed only by healthy peers hold correct data;
// Missing enumerates the need-box regions (in global coordinates) whose
// producing peer was lost, which therefore still hold their pre-exchange
// contents. Cause preserves a representative underlying error, so
// errors.Is(err, mpi.ErrPeerLost) and errors.Is(err, mpi.ErrExchangeTimeout)
// keep working through the wrap.
//
// After a partial completion the communicator must not be reused for DDR
// traffic: abandoned receives and unconsumed messages from the lost peers
// may still be in flight (the same poisoning contract as cancellation,
// see DESIGN.md). Degrade to tear down and rebuild, not to retry in place.
type PartialError struct {
	LostPeers []int      // world ranks given up on, sorted, deduplicated
	Missing   []grid.Box // need-box regions whose data never arrived
	Cause     error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("core: redistribution completed partially; lost peers %v (%d regions missing): %v",
		e.LostPeers, len(e.Missing), e.Cause)
}

func (e *PartialError) Unwrap() error { return e.Cause }
