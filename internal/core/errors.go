package core

import "errors"

// Sentinel errors reported by the redistribution API. They are wrapped
// with call-site context, so match with errors.Is rather than equality.
var (
	// ErrNoMapping reports a data exchange attempted before
	// SetupDataMapping compiled a plan.
	ErrNoMapping = errors.New("no data mapping")
	// ErrCommMismatch reports a communicator whose size or rank does not
	// match the one the descriptor or plan was built for.
	ErrCommMismatch = errors.New("communicator mismatch")
	// ErrBufferSize reports owned or need buffers whose count or byte
	// length disagrees with the registered geometry.
	ErrBufferSize = errors.New("buffer size mismatch")
)
