package core

import "fmt"

// ScheduleStats summarizes the communication schedule of a Plan. All byte
// counts refer to data crossing between distinct ranks; data a rank keeps
// for itself (its owned chunk overlapping its own need) is reported
// separately as SelfBytes. These are the quantities behind the paper's
// Table III ("number of rounds" and "data size sent and received per
// process per round").
type ScheduleStats struct {
	Rounds int
	Ranks  int

	// TotalWireBytes is the sum over all rounds and rank pairs of data
	// actually transmitted.
	TotalWireBytes int64
	// SelfBytes is the total data satisfied locally without transmission.
	SelfBytes int64

	// PerRankRoundAvg is TotalWireBytes averaged over every (rank, round)
	// slot in which the rank owns a chunk — the per-process-per-round data
	// size of Table III.
	PerRankRoundAvg float64
	// PerRankRoundMax is the largest number of bytes any single rank sends
	// in any single round.
	PerRankRoundMax int64

	// MaxPeersPerRound is the largest number of distinct destinations any
	// rank addresses in one round — the sparsity measure motivating the
	// paper's point-to-point future work.
	MaxPeersPerRound int
}

// String renders the stats in the shape of a Table III row.
func (s ScheduleStats) String() string {
	return fmt.Sprintf("rounds=%d avg=%.2f MB/rank/round max=%.2f MB self=%.2f MB",
		s.Rounds, float64(s.PerRankRoundAvg)/1e6, float64(s.PerRankRoundMax)/1e6, float64(s.SelfBytes)/1e6)
}

// Stats computes the schedule statistics of the plan. Because every rank
// holds the full gathered geometry, the computation is local and
// deterministic — all ranks obtain identical values.
func (p *Plan) Stats() ScheduleStats {
	s := ScheduleStats{Rounds: p.rounds, Ranks: p.nProcs}
	activeSlots := 0
	for rank := 0; rank < p.nProcs; rank++ {
		for r, chunk := range p.allChunks[rank] {
			_ = r
			activeSlots++
			var sentThisRound int64
			peers := 0
			for peer := 0; peer < p.nProcs; peer++ {
				ov, ok := chunk.Intersect(p.allNeeds[peer])
				if !ok {
					continue
				}
				bytes := int64(ov.Volume()) * int64(p.elemSize)
				if peer == rank {
					s.SelfBytes += bytes
					continue
				}
				peers++
				sentThisRound += bytes
				s.TotalWireBytes += bytes
			}
			s.PerRankRoundMax = max64(s.PerRankRoundMax, sentThisRound)
			s.MaxPeersPerRound = max(s.MaxPeersPerRound, peers)
		}
	}
	if activeSlots > 0 {
		s.PerRankRoundAvg = float64(s.TotalWireBytes) / float64(activeSlots)
	}
	return s
}

// RankRoundSendBytes returns the bytes the given rank transmits to other
// ranks in the given round (zero when the rank owns no chunk that round).
func (p *Plan) RankRoundSendBytes(rank, round int) int64 {
	if round >= len(p.allChunks[rank]) {
		return 0
	}
	chunk := p.allChunks[rank][round]
	var total int64
	for peer := 0; peer < p.nProcs; peer++ {
		if peer == rank {
			continue
		}
		if ov, ok := chunk.Intersect(p.allNeeds[peer]); ok {
			total += int64(ov.Volume()) * int64(p.elemSize)
		}
	}
	return total
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
