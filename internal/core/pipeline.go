package core

import (
	"context"
	"fmt"
	"time"

	"ddr/internal/mpi"
	"ddr/internal/trace"
)

// Pipelined execution of multi-round exchanges. The serial paths run
// each round as pack → wire → unpack, strictly in that order, so the
// wire time of every round is pure blocking. With pipeline depth k the
// loop becomes a software pipeline over a ring of k staging-buffer
// slots:
//
//	for r := 0; r < rounds; r++ {
//	        if r >= k  { wait(r-k) }   // round r-k's payloads in hand
//	        issue(r)                   // pack + post sends (+ receives)
//	        if r >= k  { retire(r-k) } // scatter r-k behind r's wire
//	}
//	// drain the last min(k, rounds) rounds in order
//
// so round r's pack and send posting happen while rounds r-k..r-1 are on
// the wire, and round r-k's unpack runs after round r's sends are posted
// — the unpack itself is hidden behind the youngest round's wire time.
// Because round r-k's state must survive across issue(r) — its waited
// payloads retire only after r's sends are posted — the ring holds k+1
// slots: k rounds in flight plus the one retiring behind the current
// issue. Rounds r and r-k land in distinct slots (k and 0 differ mod
// k+1), so issue(r) can reset its slot without touching the batch
// wait(r-k) just brought in hand.
// Rounds retire strictly in order, which keeps the timings slice, the
// engine's job batches, and partial-failure bookkeeping identical in
// shape to the serial path.
//
// Deadlock freedom at any depth mix: a rank only blocks in wait(j) after
// it has issued rounds 0..j+k-1 — in particular its own round-j sends
// are already posted — and delivery on every transport is eager (inproc
// copies into the destination mailbox, TCP and shm drain their links
// with background goroutines), so by induction over rounds every posted
// send is eventually deliverable and every wait satisfiable, even when
// peers run at different effective depths. Round tags (and the bounded
// backend's per-slice tags) are distinct across the in-flight window, so
// payloads of different rounds cannot be cross-matched.
//
// Partial failure with multiple rounds in flight follows the serial
// semantics: a peer lost at round j is skipped for every subsequent send
// and receive, in-flight receives from it degrade as their waits fail,
// and when the exchange deadline expires mid-pipeline the not-yet-issued
// rounds' sources are marked lost while the issued window drains.
//
// Buffer lease lifecycle (the memory-budget interaction): when a budget
// is set, round r's receive payload classes are leased against the
// staging meter at issue time and the lease is closed when the round
// retires, so the meter's high-water mark bounds the whole in-flight
// window — k receive leases plus the current round's send staging while
// packing, or k+1 leases (and no pack staging) in the instant between
// issue(r) and retire(r-k). Both are at most k+1 per-round footprints,
// which is exactly what pipelineDepth clamps to the budget.

// pipeSlot is one ring slot: the in-flight state of one issued round,
// alive from issue until retire k iterations later. The ring is sized
// k+1 so the retiring round and the round being issued never share a
// slot. All slices are reused across rounds and exchanges, so steady
// state allocates nothing.
type pipeSlot struct {
	round int
	bytes int64 // wire bytes this rank sent in the round

	packT   time.Duration // issue: pack through posting sends
	blocked time.Duration // wait: time spent blocked on the transport
	wire    time.Duration // sends posted → last payload in hand
	issued  time.Time

	lease mpi.StagingLease // receive-class reservation (budgeted runs)
	datas [][]byte         // held payloads pending the unpack batch
	jobs  []exchJob        // slot-local unpack batch
	reqs  []*mpi.Request   // cancellable-path receive requests
	early bool             // payloads recycled early by PerturbPipelineForTest
}

// ensureSlots sizes the descriptor's slot ring for depth k.
func (d *Descriptor) ensureSlots(k int) []pipeSlot {
	if cap(d.scratch.slots) < k {
		d.scratch.slots = make([]pipeSlot, k)
	}
	d.scratch.slots = d.scratch.slots[:k]
	return d.scratch.slots
}

// pipelineDepth resolves the depth an exchange may run at: the
// configured depth clamped by the round (or step) count and — when a
// memory budget is set — by the lease model: the in-flight window holds
// at most k+1 per-round staging footprints (k receive leases plus the
// round being packed), so k is lowered until (k+1)·footprint fits the
// budget. perStep is the bounded schedule's modeled per-step footprint;
// 0 selects the one-shot footprint of the plan's geometry, cached per
// plan fingerprint. Depth 1 (or a single round) means the caller should
// take the serial path, whose tighter phase ordering is already proven
// against the budget.
func (d *Descriptor) pipelineDepth(p *Plan, rounds, perStep int) int {
	k := d.depth
	if k > rounds {
		k = rounds
	}
	if k <= 1 {
		return 1
	}
	if d.budget <= 0 {
		return k
	}
	per := perStep
	if per == 0 {
		if d.pipeShotFP != p.fp || d.pipeShot == 0 {
			d.pipeShot = p.SingleShotFootprint(d.mode)
			d.pipeShotFP = p.fp
		}
		per = d.pipeShot
	}
	if per <= 0 {
		return k
	}
	kmax := d.budget/per - 1
	if kmax < 1 {
		kmax = 1
	}
	if k > kmax {
		k = kmax
	}
	return k
}

// exchangePipelined runs the point-to-point rounds at depth k ≥ 2.
// Byte-identical to the serial round loop: the same overlaps move on the
// same tags in the same per-round order, only the schedule changes.
func (d *Descriptor) exchangePipelined(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState, k int, exch uint64, traced bool) error {
	metered := d.budget > 0
	if metered {
		d.meter.ResetPeak()
	}
	slots := d.ensureSlots(k + 1)
	if err := d.pipeRun(ctx, o, c, own, need, ps, k, exch, traced, metered, slots); err != nil {
		// A hard error abandons the in-flight window; release whatever
		// the ring still holds. (An explicit call rather than a defer —
		// a deferred closure over the ring escapes and would cost the
		// steady state two allocations per exchange.)
		d.pipeAbort(slots)
		return err
	}
	if metered {
		d.lastPeakStaging = d.meter.Peak()
	}
	return nil
}

// pipeRun is exchangePipelined's loop body: issue/wait/retire across the
// slot ring, then drain the in-flight window in round order.
func (d *Descriptor) pipeRun(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState, k int, exch uint64, traced, metered bool, slots []pipeSlot) error {
	p := d.plan
	ring := k + 1
	issued := 0
	for r := 0; r < p.rounds; r++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if ps == nil || (ps.uctx != nil && ps.uctx.Err() != nil) {
					return err
				}
				// The exchange deadline is spent: give up on every source
				// of the not-yet-issued rounds; the issued window drains
				// below, degrading peer by peer as its waits fail.
				for rr := r; rr < p.rounds; rr++ {
					for _, peer := range p.recvPeers[rr] {
						ps.markLost(peer, rr)
					}
				}
				if ps.cause == nil {
					ps.cause = fmt.Errorf("core: exchange deadline %v exhausted after round %d: %w",
						d.deadline, r, mpi.ErrExchangeTimeout)
				}
				break
			}
		}
		if r >= k {
			if err := d.pipeWait(ctx, o, c, &slots[(r-k)%ring], need, ps); err != nil {
				return err
			}
		}
		if err := d.pipeIssue(ctx, o, c, r, own, need, ps, &slots[r%ring], metered, traced, exch); err != nil {
			return err
		}
		issued = r + 1
		if r >= k {
			d.pipeRetire(o, &slots[(r-k)%ring])
		}
	}
	lo := issued - k
	if lo < 0 {
		lo = 0
	}
	for r := lo; r < issued; r++ {
		s := &slots[r%ring]
		if err := d.pipeWait(ctx, o, c, s, need, ps); err != nil {
			return err
		}
		d.pipeRetire(o, s)
	}
	return nil
}

// pipeIssue packs and posts round r into slot s: local contribution,
// staging copies, sends, the receive-class lease, and — on the
// cancellable path — the round's receive requests.
func (d *Descriptor) pipeIssue(ctx context.Context, o *exchObs, c *mpi.Comm, r int, own [][]byte, need []byte, ps *partialState, s *pipeSlot, metered, traced bool, exch uint64) error {
	p := d.plan
	tag := ddrTagBase + r
	packStart := time.Now()
	if traced {
		c.SetTraceContext(mpi.TraceContext{Exchange: exch, Round: uint32(r)})
	}
	var sendBuf []byte
	if r < len(own) {
		sendBuf = own[r]
	}
	d.selfExchange(r, sendBuf, need)

	sc := &d.scratch
	sc.wires = sc.wires[:0]
	sc.staged = sc.staged[:0]
	for _, peer := range p.sendPeers[r] {
		st, sp := p.sendE.at(r, peer)
		n := st.PackedSize()
		if d.zcSend && sp.ok {
			sc.wires = append(sc.wires, sendBuf[sp.off:sp.off+n])
			continue
		}
		var wire []byte
		if metered {
			wire = mpi.GetBufferMetered(n, &d.meter)
		} else {
			wire = d.stage(n)
		}
		d.eng.add(exchJob{t: st, local: sendBuf, wire: wire, peer: peer})
		sc.wires = append(sc.wires, wire)
		sc.staged = append(sc.staged, wire)
	}
	d.eng.run(o)
	for i, peer := range p.sendPeers[r] {
		if ps.isLost(peer) {
			continue
		}
		var err error
		if ctx == nil {
			err = c.Send(peer, tag, sc.wires[i])
		} else {
			err = c.SendCtx(ctx, peer, tag, sc.wires[i])
		}
		if err != nil {
			if ps.degrade(peer, r, err) {
				continue
			}
			return err
		}
	}
	// Sends copy eagerly, so pack staging recycles before the round's
	// wire time even starts — only receive payloads ride the window.
	for _, w := range sc.staged {
		if metered {
			mpi.PutBufferMetered(w, &d.meter)
		} else {
			d.unstage(w)
		}
	}
	sc.staged = sc.staged[:0]

	s.round = r
	s.bytes = p.RankRoundSendBytes(p.rank, r)
	s.datas = s.datas[:0]
	s.jobs = s.jobs[:0]
	s.reqs = s.reqs[:0]
	s.early = false
	if metered {
		total := 0
		for _, peer := range p.recvPeers[r] {
			rt, _ := p.recvE.at(r, peer)
			total += mpi.BufferClassSize(rt.PackedSize())
		}
		s.lease = d.meter.Lease(total)
	}
	if ctx != nil {
		for _, peer := range p.recvPeers[r] {
			if ps.isLost(peer) {
				s.reqs = append(s.reqs, nil)
				continue
			}
			s.reqs = append(s.reqs, c.Irecv(peer, tag))
		}
	}
	s.issued = time.Now()
	s.packT = s.issued.Sub(packStart)
	return nil
}

// pipeWait brings slot s's round's payloads in hand, placing contiguous
// ones immediately and batching strided ones into the slot's unpack
// jobs. It is the only blocking point of the pipeline; the time spent
// here is the round's unhidden wire time.
func (d *Descriptor) pipeWait(ctx context.Context, o *exchObs, c *mpi.Comm, s *pipeSlot, need []byte, ps *partialState) error {
	p := d.plan
	r := s.round
	tag := ddrTagBase + r
	waitStart := time.Now()
	if ctx == nil {
		for _, peer := range p.recvPeers[r] {
			var peerStart time.Time
			if o.tracing() {
				peerStart = time.Now()
			}
			data, _, _, err := c.Recv(peer, tag)
			if err != nil {
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(r), Peer: int32(peer)},
					peerStart, time.Now())
			}
			if err := d.pipeAccept(o, r, peer, data, need, s); err != nil {
				return err
			}
		}
	} else {
		for i, peer := range p.recvPeers[r] {
			if s.reqs[i] == nil {
				continue
			}
			var peerStart time.Time
			if o.tracing() {
				peerStart = time.Now()
			}
			data, _, _, err := s.reqs[i].WaitCtx(ctx)
			if err != nil {
				if ps.degrade(peer, r, err) {
					continue
				}
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(r), Peer: int32(peer)},
					peerStart, time.Now())
			}
			if err := d.pipeAccept(o, r, peer, data, need, s); err != nil {
				return err
			}
		}
	}
	now := time.Now()
	s.blocked = now.Sub(waitStart)
	s.wire = now.Sub(s.issued)
	if d.pipePerturb {
		// Planted bug (PerturbPipelineForTest): recycle the round's held
		// payloads one iteration early. The next issue's staging draws
		// the same arena buffers back out and packs over them before
		// this round's unpack batch has scattered them.
		for _, data := range s.datas {
			d.releaseRecv(data)
		}
		s.early = true
	}
	return nil
}

// pipeAccept consumes one received round payload into slot s.
func (d *Descriptor) pipeAccept(o *exchObs, round, peer int, data, need []byte, s *pipeSlot) error {
	p := d.plan
	rt, sp := p.recvE.at(round, peer)
	if len(data) != rt.PackedSize() {
		return fmt.Errorf("core: expected %d bytes from rank %d, got %d", rt.PackedSize(), peer, len(data))
	}
	if d.zcRecv && sp.ok {
		directUnpack(o, need[sp.off:sp.off+sp.n], data, peer)
		d.releaseRecv(data)
		return nil
	}
	s.jobs = append(s.jobs, exchJob{t: rt, local: need, wire: data, unpack: true, peer: peer})
	s.datas = append(s.datas, data)
	return nil
}

// pipeRetire scatters slot s's batched payloads, releases them and the
// slot's lease, and records the round's timing. Retires happen in round
// order, so the timings slice reads exactly like the serial one.
func (d *Descriptor) pipeRetire(o *exchObs, s *pipeSlot) {
	unpackStart := time.Now()
	d.eng.runJobs(o, s.jobs)
	if !s.early {
		for _, data := range s.datas {
			d.releaseRecv(data)
		}
	}
	s.jobs = s.jobs[:0]
	s.datas = s.datas[:0]
	s.lease.Close()
	unpackT := time.Since(unpackStart)
	dur := s.packT + s.blocked + unpackT
	d.timings = append(d.timings, RoundTiming{
		Round:     s.round,
		Duration:  dur,
		Pack:      s.packT,
		Wire:      s.wire,
		Unpack:    unpackT,
		WireBytes: s.bytes,
	})
	if o.on() {
		o.roundLat.Observe(dur.Seconds())
		o.exchangeBytes.Add(s.bytes)
	}
}

// pipeAbort releases whatever the ring still holds after a hard error:
// held payloads and open leases. Outstanding receive requests are left
// to the transport, matching the serial error paths — a hard error ends
// the communicator's DDR use.
func (d *Descriptor) pipeAbort(slots []pipeSlot) {
	for i := range slots {
		s := &slots[i]
		if !s.early {
			for _, data := range s.datas {
				d.releaseRecv(data)
			}
		}
		s.datas = s.datas[:0]
		s.jobs = s.jobs[:0]
		s.reqs = s.reqs[:0]
		s.lease.Close()
	}
}

// exchangeBoundedPipelined runs the bounded step schedule at depth k ≥ 2
// — the same slices on the same tags in the same per-step order as
// exchangeBounded, software-pipelined across steps. All staging stays on
// the meter: pack buffers while held, receive payload classes leased per
// step from issue to retire.
func (d *Descriptor) exchangeBoundedPipelined(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState, k int, exch uint64, traced bool) error {
	d.meter.ResetPeak()
	slots := d.ensureSlots(k + 1)
	if err := d.pipeRunBounded(ctx, o, c, own, need, ps, k, exch, traced, slots); err != nil {
		d.pipeAbort(slots)
		return err
	}
	d.lastPeakStaging = d.meter.Peak()
	return nil
}

// pipeRunBounded is exchangeBoundedPipelined's loop body.
func (d *Descriptor) pipeRunBounded(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState, k int, exch uint64, traced bool, slots []pipeSlot) error {
	p := d.plan
	b := p.bounded
	ring := k + 1
	issued := 0
	for step := 0; step < b.steps; step++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if ps == nil || (ps.uctx != nil && ps.uctx.Err() != nil) {
					return err
				}
				for _, idx := range b.recvIdx[b.recvOff[step]:] {
					sl := &b.slices[idx]
					ps.markLost(sl.src, sl.step)
				}
				if ps.cause == nil {
					ps.cause = fmt.Errorf("core: exchange deadline %v exhausted after step %d: %w",
						d.deadline, step, mpi.ErrExchangeTimeout)
				}
				break
			}
		}
		if step >= k {
			if err := d.pipeWaitBounded(ctx, o, c, &slots[(step-k)%ring], need, ps); err != nil {
				return err
			}
		}
		if err := d.pipeIssueBounded(ctx, o, c, step, own, need, ps, &slots[step%ring], traced, exch); err != nil {
			return err
		}
		issued = step + 1
		if step >= k {
			d.pipeRetire(o, &slots[(step-k)%ring])
		}
	}
	lo := issued - k
	if lo < 0 {
		lo = 0
	}
	for step := lo; step < issued; step++ {
		s := &slots[step%ring]
		if err := d.pipeWaitBounded(ctx, o, c, s, need, ps); err != nil {
			return err
		}
		d.pipeRetire(o, s)
	}
	return nil
}

// pipeIssueBounded packs and posts one bounded step into slot s.
func (d *Descriptor) pipeIssueBounded(ctx context.Context, o *exchObs, c *mpi.Comm, step int, own [][]byte, need []byte, ps *partialState, s *pipeSlot, traced bool, exch uint64) error {
	p := d.plan
	b := p.bounded
	packStart := time.Now()
	if traced {
		c.SetTraceContext(mpi.TraceContext{Exchange: exch, Round: uint32(step)})
	}
	sc := &d.scratch
	sc.wires = sc.wires[:0]
	sc.staged = sc.staged[:0]
	sends := b.sendIdx[b.sendOff[step]:b.sendOff[step+1]]
	for _, idx := range sends {
		sl := &b.slices[idx]
		if sl.dst == p.rank {
			d.selfSlice(sl, own[sl.chunk], need)
			continue
		}
		if d.zcSend && sl.sendSpan.ok {
			sc.wires = append(sc.wires, own[sl.chunk][sl.sendSpan.off:sl.sendSpan.off+sl.bytes])
			continue
		}
		wire := d.stageBounded(sl.bytes)
		d.eng.add(exchJob{t: sl.sendT, local: own[sl.chunk], wire: wire, peer: sl.dst})
		sc.wires = append(sc.wires, wire)
		sc.staged = append(sc.staged, wire)
	}
	d.eng.run(o)
	w := 0
	var stepWire int64
	for _, idx := range sends {
		sl := &b.slices[idx]
		if sl.dst == p.rank {
			continue
		}
		wire := sc.wires[w]
		w++
		stepWire += int64(sl.bytes)
		if ps.isLost(sl.dst) {
			continue
		}
		var err error
		if ctx == nil {
			err = c.Send(sl.dst, sl.tag, wire)
		} else {
			err = c.SendCtx(ctx, sl.dst, sl.tag, wire)
		}
		if err != nil {
			if ps.degrade(sl.dst, sl.step, err) {
				continue
			}
			return err
		}
	}
	for _, wire := range sc.staged {
		d.unstageBounded(wire)
	}
	sc.staged = sc.staged[:0]

	s.round = step
	s.bytes = stepWire
	s.datas = s.datas[:0]
	s.jobs = s.jobs[:0]
	s.reqs = s.reqs[:0]
	s.early = false
	recvs := b.recvIdx[b.recvOff[step]:b.recvOff[step+1]]
	total := 0
	for _, idx := range recvs {
		total += mpi.BufferClassSize(b.slices[idx].bytes)
	}
	s.lease = d.meter.Lease(total)
	if ctx != nil {
		for _, idx := range recvs {
			sl := &b.slices[idx]
			if ps.isLost(sl.src) {
				s.reqs = append(s.reqs, nil)
				continue
			}
			s.reqs = append(s.reqs, c.Irecv(sl.src, sl.tag))
		}
	}
	s.issued = time.Now()
	s.packT = s.issued.Sub(packStart)
	return nil
}

// pipeWaitBounded brings one bounded step's payloads in hand.
func (d *Descriptor) pipeWaitBounded(ctx context.Context, o *exchObs, c *mpi.Comm, s *pipeSlot, need []byte, ps *partialState) error {
	p := d.plan
	b := p.bounded
	step := s.round
	recvs := b.recvIdx[b.recvOff[step]:b.recvOff[step+1]]
	waitStart := time.Now()
	if ctx == nil {
		for _, idx := range recvs {
			sl := &b.slices[idx]
			var peerStart time.Time
			if o.tracing() {
				peerStart = time.Now()
			}
			data, _, _, err := c.Recv(sl.src, sl.tag)
			if err != nil {
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", sl.src),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(step), Peer: int32(sl.src)},
					peerStart, time.Now())
			}
			if err := d.pipeAcceptSlice(o, sl, data, need, s); err != nil {
				return err
			}
		}
	} else {
		for i, idx := range recvs {
			if s.reqs[i] == nil {
				continue
			}
			sl := &b.slices[idx]
			var peerStart time.Time
			if o.tracing() {
				peerStart = time.Now()
			}
			data, _, _, err := s.reqs[i].WaitCtx(ctx)
			if err != nil {
				if ps.degrade(sl.src, sl.step, err) {
					continue
				}
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", sl.src),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(step), Peer: int32(sl.src)},
					peerStart, time.Now())
			}
			if err := d.pipeAcceptSlice(o, sl, data, need, s); err != nil {
				return err
			}
		}
	}
	now := time.Now()
	s.blocked = now.Sub(waitStart)
	s.wire = now.Sub(s.issued)
	if d.pipePerturb {
		for _, data := range s.datas {
			d.releaseRecv(data)
		}
		s.early = true
	}
	return nil
}

// pipeAcceptSlice consumes one received bounded-slice payload into slot
// s. The payload's bytes are covered by the step's lease, so no per-
// payload charge is taken.
func (d *Descriptor) pipeAcceptSlice(o *exchObs, sl *boundedSlice, data, need []byte, s *pipeSlot) error {
	if len(data) != sl.bytes {
		d.releaseRecv(data)
		return fmt.Errorf("core: expected %d bytes from rank %d (slice tag %d), got %d",
			sl.bytes, sl.src, sl.tag, len(data))
	}
	if d.zcRecv && sl.recvSpan.ok {
		directUnpack(o, need[sl.recvSpan.off:sl.recvSpan.off+sl.recvSpan.n], data, sl.src)
		d.releaseRecv(data)
		return nil
	}
	s.jobs = append(s.jobs, exchJob{t: sl.recvT, local: need, wire: data, unpack: true, peer: sl.src})
	s.datas = append(s.datas, data)
	return nil
}

