package core

import (
	"math/rand"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// buildPlanFor compiles a plan for the given geometry on a flat inproc
// world and hands rank 0's plan to the caller (all ranks hold the full
// gathered geometry, so any rank's plan suffices for schedule analysis).
func buildPlanFor(t *testing.T, n int, geom func(rank int) ([]grid.Box, grid.Box)) *Plan {
	t.Helper()
	var plan *Plan
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		own, need := geom(c.Rank())
		desc, err := NewDescriptor(n, Layout2D, Uint8)
		if err != nil {
			return err
		}
		if err := desc.SetupDataMapping(c, own, need); err != nil {
			return err
		}
		if c.Rank() == 0 {
			plan = desc.Plan()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// transposeGeom produces dense all-to-all traffic: every rank's owned
// horizontal strip overlaps every rank's needed vertical strip, so the
// flat schedule has O(P²) point-to-point messages.
func transposeGeom(n int) func(int) ([]grid.Box, grid.Box) {
	return func(rank int) ([]grid.Box, grid.Box) {
		return []grid.Box{grid.Box2(0, n*rank, n*n, n)}, grid.Box2(n*rank, 0, n, n*n)
	}
}

// TestTwoLevelScheduleBounds proves the hierarchy's headline property on
// a dense all-to-all plan: rank pairs grow as O(P²) while the emitted
// node flows stay bounded by nodes·(nodes-1) per round.
func TestTwoLevelScheduleBounds(t *testing.T) {
	const n, nodes = 16, 4
	plan := buildPlanFor(t, n, transposeGeom(n))
	topo, err := mpi.NewTopology(n, func(rank int) int { return rank * nodes / n })
	if err != nil {
		t.Fatal(err)
	}
	s := plan.TwoLevelSchedule(topo)
	if s.Nodes != nodes {
		t.Fatalf("schedule sees %d nodes, want %d", s.Nodes, nodes)
	}
	// Dense transpose: every cross-node rank pair exchanges data.
	perNode := n / nodes
	wantPairs := n*(n-1) - nodes*perNode*(perNode-1)
	if s.CrossPairs != wantPairs {
		t.Fatalf("cross-node rank pairs = %d, want %d", s.CrossPairs, wantPairs)
	}
	if got, limit := s.MaxFlowsPerRound(), nodes*(nodes-1); got == 0 || got > limit {
		t.Fatalf("max flows per round = %d, want in (0, %d]", got, limit)
	}
	// Byte conservation against the rank-level schedule.
	stats := plan.Stats()
	if s.CrossNodeBytes+s.IntraNodeBytes != stats.TotalWireBytes {
		t.Fatalf("flow bytes %d + intra %d != wire bytes %d",
			s.CrossNodeBytes, s.IntraNodeBytes, stats.TotalWireBytes)
	}
	// Every flow is cross-node and carries data.
	for r, round := range s.Rounds {
		for _, f := range round.Flows {
			if f.SrcNode == f.DstNode {
				t.Fatalf("round %d emitted an intra-node flow %+v", r, f)
			}
			if f.Bytes <= 0 || f.Msgs <= 0 {
				t.Fatalf("round %d emitted an empty flow %+v", r, f)
			}
		}
	}
}

// TestTwoLevelScheduleFlat checks the degenerate placements: a nil
// topology and a one-node topology both emit no flows and classify all
// cross-rank traffic as intra-node.
func TestTwoLevelScheduleFlat(t *testing.T) {
	const n = 8
	plan := buildPlanFor(t, n, transposeGeom(n))
	one, err := mpi.NewTopology(n, func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []*mpi.Topology{nil, one} {
		s := plan.TwoLevelSchedule(topo)
		if s.CrossFlows != 0 || s.CrossNodeBytes != 0 || s.CrossPairs != 0 {
			t.Fatalf("flat placement emitted flows: %+v", s)
		}
		if s.IntraNodeBytes != plan.Stats().TotalWireBytes {
			t.Fatalf("intra bytes %d != wire bytes %d", s.IntraNodeBytes, plan.Stats().TotalWireBytes)
		}
	}
}

// TestTwoLevelScheduleRandom cross-checks flow aggregation against a
// brute-force per-pair recount on random geometries and placements.
func TestTwoLevelScheduleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(9)
		domain := grid.Box2(0, 0, 8+rng.Intn(24), 8+rng.Intn(24))
		boxes, err := grid.RCB(domain, n)
		if err != nil {
			t.Fatal(err)
		}
		needs, err := grid.RCB(domain, n)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		plan := buildPlanFor(t, n, func(rank int) ([]grid.Box, grid.Box) {
			return []grid.Box{boxes[rank]}, needs[perm[rank]]
		})
		nodes := 1 + rng.Intn(4)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(nodes)
		}
		topo, err := mpi.NewTopology(n, func(rank int) int { return assign[rank] })
		if err != nil {
			t.Fatal(err)
		}
		s := plan.TwoLevelSchedule(topo)
		var cross, intra int64
		for rank := 0; rank < n; rank++ {
			for peer := 0; peer < n; peer++ {
				if peer == rank {
					continue
				}
				ov, ok := boxes[rank].Intersect(needs[perm[peer]])
				if !ok || ov.Empty() {
					continue
				}
				b := int64(ov.Volume())
				if topo.NodeOf(rank) == topo.NodeOf(peer) {
					intra += b
				} else {
					cross += b
				}
			}
		}
		if s.CrossNodeBytes != cross || s.IntraNodeBytes != intra {
			t.Fatalf("trial %d: schedule (%d,%d) != brute force (%d,%d)",
				trial, s.CrossNodeBytes, s.IntraNodeBytes, cross, intra)
		}
		if limit := topo.NumNodes() * (topo.NumNodes() - 1); s.MaxFlowsPerRound() > limit {
			t.Fatalf("trial %d: %d flows exceed %d", trial, s.MaxFlowsPerRound(), limit)
		}
	}
}
