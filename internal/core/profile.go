package core

import (
	"encoding/binary"
	"time"

	"ddr/internal/grid"
)

// MappingProfile is the per-phase cost breakdown of one offline plan
// compilation, the measurement behind cmd/ddrplan -sweep. It separates
// what a live SetupDataMapping would spend on the wire (the geometry
// allgather payload), on the cache key (canonical encoding + fingerprint),
// and on the compile itself (spatial-index construction plus plan
// assembly), so compile-time scaling can be reproduced at process counts
// far beyond the running world.
type MappingProfile struct {
	Procs       int
	TotalChunks int

	// MaxEncodedBytes is the largest single rank's canonical geometry
	// encoding; AllgatherBytes is the sum over ranks — the payload each
	// rank holds after the geometry allgather completes.
	MaxEncodedBytes int
	AllgatherBytes  int64

	// Fingerprint is the plan-cache key for this global geometry.
	Fingerprint uint64

	EncodeTime      time.Duration // canonical encoding of every rank's geometry
	FingerprintTime time.Duration // folding the per-rank hashes into the cache key
	IndexTime       time.Duration // building the need and chunk spatial indexes
	CompileTime     time.Duration // full plan compilation (includes its own indexing)
}

// ProfileMapping compiles rank's plan offline from a full global geometry
// (as NewPlanFromGeometry does) and returns it together with the
// per-phase timing breakdown. par sets the compile parallelism; <= 0
// means GOMAXPROCS.
func ProfileMapping(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box, par int) (*Plan, MappingProfile, error) {
	prof := MappingProfile{Procs: len(allNeeds)}
	for _, chunks := range allChunks {
		prof.TotalChunks += len(chunks)
	}

	// Phase 1: the canonical encoding every rank would contribute to the
	// geometry allgather — its total size bounds the setup's wire cost.
	start := time.Now()
	encodings := make([][]byte, len(allNeeds))
	for r := range allNeeds {
		enc := encodeGeometry(allNeeds[r], allChunks[r])
		encodings[r] = enc
		prof.AllgatherBytes += int64(len(enc))
		prof.MaxEncodedBytes = max(prof.MaxEncodedBytes, len(enc))
	}
	prof.EncodeTime = time.Since(start)

	// Phase 2: the cache key, exactly as planCache.lookup derives it —
	// per-rank FNV-1a hashes folded in rank order.
	start = time.Now()
	fp := uint64(fnvOffset64)
	var h [8]byte
	for _, enc := range encodings {
		binary.LittleEndian.PutUint64(h[:], hash64(fnvOffset64, enc))
		fp = hash64(fp, h[:])
	}
	prof.Fingerprint = fp
	prof.FingerprintTime = time.Since(start)

	// Phase 3: spatial-index construction alone, isolated from the plan
	// assembly it accelerates.
	start = time.Now()
	_ = grid.NewIndex(allNeeds)
	flat := make([]grid.Box, 0, prof.TotalChunks)
	for _, chunks := range allChunks {
		flat = append(flat, chunks...)
	}
	_ = grid.NewIndex(flat)
	prof.IndexTime = time.Since(start)

	// Phase 4: the compile proper.
	start = time.Now()
	plan, err := compilePlan(rank, elemSize, allChunks, allNeeds, par)
	if err != nil {
		return nil, prof, err
	}
	prof.CompileTime = time.Since(start)
	return plan, prof, nil
}
