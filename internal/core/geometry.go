package core

import (
	"encoding/json"
	"fmt"
	"io"

	"ddr/internal/grid"
)

// Geometry is the JSON-serializable description of a global
// redistribution problem: which boxes every rank owns and needs, plus the
// element size. Saved geometries let schedule analysis (cmd/ddrplan) and
// capacity planning run far from the application that defined the layout.
type Geometry struct {
	ElemSize int        `json:"elem_size"`
	Chunks   [][]boxDTO `json:"chunks"` // [rank][chunk]
	Needs    []boxDTO   `json:"needs"`  // [rank]
}

// boxDTO is the wire form of a grid.Box.
type boxDTO struct {
	Offset []int `json:"offset"`
	Dims   []int `json:"dims"`
}

func toDTO(b grid.Box) boxDTO {
	return boxDTO{Offset: b.OffsetSlice(), Dims: b.DimsSlice()}
}

func fromDTO(d boxDTO) (grid.Box, error) {
	return grid.NewBox(d.Offset, d.Dims)
}

// Geometry returns the plan's global geometry in serializable form.
func (p *Plan) Geometry() Geometry {
	g := Geometry{
		ElemSize: p.elemSize,
		Chunks:   make([][]boxDTO, p.nProcs),
		Needs:    make([]boxDTO, p.nProcs),
	}
	for r, chunks := range p.allChunks {
		g.Chunks[r] = make([]boxDTO, len(chunks))
		for i, b := range chunks {
			g.Chunks[r][i] = toDTO(b)
		}
		g.Needs[r] = toDTO(p.allNeeds[r])
	}
	return g
}

// Save writes the geometry as indented JSON.
func (g Geometry) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// LoadGeometry parses a geometry saved with Save, validating structure.
func LoadGeometry(r io.Reader) (Geometry, error) {
	var g Geometry
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return Geometry{}, fmt.Errorf("core: parsing geometry: %w", err)
	}
	if g.ElemSize <= 0 {
		return Geometry{}, fmt.Errorf("core: geometry element size %d invalid", g.ElemSize)
	}
	if len(g.Chunks) != len(g.Needs) {
		return Geometry{}, fmt.Errorf("core: geometry has %d chunk lists for %d needs",
			len(g.Chunks), len(g.Needs))
	}
	if len(g.Needs) == 0 {
		return Geometry{}, fmt.Errorf("core: geometry has no ranks")
	}
	return g, nil
}

// Plan compiles the communication plan of the loaded geometry for the
// given rank.
func (g Geometry) Plan(rank int) (*Plan, error) {
	allChunks := make([][]grid.Box, len(g.Chunks))
	allNeeds := make([]grid.Box, len(g.Needs))
	for r := range g.Chunks {
		allChunks[r] = make([]grid.Box, len(g.Chunks[r]))
		for i, d := range g.Chunks[r] {
			b, err := fromDTO(d)
			if err != nil {
				return nil, fmt.Errorf("core: rank %d chunk %d: %w", r, i, err)
			}
			allChunks[r][i] = b
		}
		b, err := fromDTO(g.Needs[r])
		if err != nil {
			return nil, fmt.Errorf("core: rank %d need: %w", r, err)
		}
		allNeeds[r] = b
	}
	return NewPlanFromGeometry(rank, g.ElemSize, allChunks, allNeeds)
}
