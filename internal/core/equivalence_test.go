package core

import (
	"encoding/json"
	"runtime"
	"testing"

	"ddr/internal/grid"
)

// plansIdentical compares two compiled plans entry by entry — summaries
// (peers, sizes, spans, fused schedule), schedule stats, and the
// self-transfer entries the summary's peer lists exclude.
func plansIdentical(t *testing.T, label string, want, got *Plan) {
	t.Helper()
	wj, err := json.Marshal(want.Summary())
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Errorf("%s: plan summary diverges from brute force\nbrute:   %s\nindexed: %s", label, wj, gj)
		return
	}
	if want.Stats() != got.Stats() {
		t.Errorf("%s: schedule stats diverge: brute %+v, indexed %+v", label, want.Stats(), got.Stats())
	}
	for r := 0; r < want.rounds; r++ {
		rank := want.rank
		wst, wss := want.sendE.at(r, rank)
		gst, gss := got.sendE.at(r, rank)
		wrt, wrs := want.recvE.at(r, rank)
		grt, grs := got.recvE.at(r, rank)
		if w, g := wst.PackedSize(), gst.PackedSize(); w != g {
			t.Errorf("%s: round %d self-send size %d != brute %d", label, r, g, w)
		}
		if w, g := wrt.PackedSize(), grt.PackedSize(); w != g {
			t.Errorf("%s: round %d self-recv size %d != brute %d", label, r, g, w)
		}
		if w, g := wss, gss; w != g {
			t.Errorf("%s: round %d self-send span %+v != brute %+v", label, r, g, w)
		}
		if w, g := wrs, grs; w != g {
			t.Errorf("%s: round %d self-recv span %+v != brute %+v", label, r, g, w)
		}
	}
}

// TestCompilerEquivalenceGolden proves the indexed compiler is
// plan-preserving on the golden geometries: for every rank of every
// golden case, serial and parallel indexed compiles must match the
// brute-force reference exactly.
func TestCompilerEquivalenceGolden(t *testing.T) {
	pars := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			for rank := range gc.chunks {
				brute, err := compilePlanBrute(rank, gc.elemSize, gc.chunks, gc.needs)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range pars {
					indexed, err := compilePlan(rank, gc.elemSize, gc.chunks, gc.needs, par)
					if err != nil {
						t.Fatal(err)
					}
					plansIdentical(t, gc.name, brute, indexed)
				}
			}
		})
	}
}

// TestCompilerEquivalenceDegenerate exercises the shapes the index must
// not mishandle: ranks owning nothing, empty chunks, and needs entirely
// outside the owned domain.
func TestCompilerEquivalenceDegenerate(t *testing.T) {
	gc := goldenCases()[0]
	chunks := append([][]grid.Box{}, gc.chunks...)
	chunks[1] = nil // a rank with no data
	needs := append([]grid.Box{}, gc.needs...)
	needs[2] = grid.MustBox([]int{1000}, []int{16}) // a need nothing covers
	for rank := range chunks {
		brute, err := compilePlanBrute(rank, gc.elemSize, chunks, needs)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := compilePlan(rank, gc.elemSize, chunks, needs, 2)
		if err != nil {
			t.Fatal(err)
		}
		plansIdentical(t, "degenerate", brute, indexed)
	}
}
