package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// TestMultiNeedBasic: two ranks each own one half and each need TWO
// separate sub-boxes — the pattern the single-need API rejects by design.
func TestMultiNeedBasic(t *testing.T) {
	ownAll := [][]grid.Box{
		{grid.Box2(0, 0, 4, 4)},
		{grid.Box2(4, 0, 4, 4)},
	}
	// Rank 0 needs the two vertical edge strips; rank 1 two middle strips.
	needAll := [][]grid.Box{
		{grid.Box2(0, 0, 1, 4), grid.Box2(7, 0, 1, 4)},
		{grid.Box2(2, 0, 2, 4), grid.Box2(4, 0, 2, 4)},
	}
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		d, err := NewMultiDescriptor(2, Layout2D, Uint8)
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, ownAll[c.Rank()], needAll[c.Rank()]); err != nil {
			return err
		}
		own := [][]byte{fillBox(ownAll[c.Rank()][0], 1)}
		needs := make([][]byte, len(needAll[c.Rank()]))
		for i, b := range needAll[c.Rank()] {
			needs[i] = make([]byte, b.Volume())
		}
		if err := d.ReorganizeData(c, own, needs); err != nil {
			return err
		}
		for i, b := range needAll[c.Rank()] {
			if err := checkBox(needs[i], b, 1, nil, 0); err != nil {
				return fmt.Errorf("rank %d need %d: %w", c.Rank(), i, err)
			}
		}
		if d.WireBytes() < 0 || d.SelfBytes() < 0 {
			return errors.New("negative byte accounting")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiNeedRandom is the property test: random disjoint ownership,
// random multiple overlapping needs per rank, repeated reorganizes.
func TestMultiNeedRandom(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 900))
		n := 1 + rng.Intn(6)
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		offset := make([]int, nd)
		for i := range dims {
			dims[i] = 2 + rng.Intn(9)
		}
		domain := grid.MustBox(offset, dims)
		tiles := grid.RandomTiling(rng, domain, 1+rng.Intn(2*n))
		ownAll := make([][]grid.Box, n)
		for i, b := range tiles {
			ownAll[i%n] = append(ownAll[i%n], b)
		}
		needAll := make([][]grid.Box, n)
		for r := range needAll {
			for k := 0; k < 1+rng.Intn(3); k++ {
				needAll[r] = append(needAll[r], grid.RandomBoxIn(rng, domain))
			}
		}
		err := mpi.Launch(n, func(c *mpi.Comm) error {
			rank := c.Rank()
			d, err := NewMultiDescriptor(n, Layout(nd), Uint8)
			if err != nil {
				return err
			}
			if err := d.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
				return err
			}
			own := make([][]byte, len(ownAll[rank]))
			for i, b := range ownAll[rank] {
				own[i] = fillBox(b, 1)
			}
			needs := make([][]byte, len(needAll[rank]))
			for i, b := range needAll[rank] {
				needs[i] = make([]byte, b.Volume())
			}
			for pass := 0; pass < 2; pass++ { // dynamic-data replay
				for i := range needs {
					for j := range needs[i] {
						needs[i][j] = 0
					}
				}
				if err := d.ReorganizeData(c, own, needs); err != nil {
					return err
				}
				for i, b := range needAll[rank] {
					if err := checkBox(needs[i], b, 1, nil, 0); err != nil {
						return fmt.Errorf("trial %d rank %d need %d pass %d: %w", trial, rank, i, pass, err)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiDescriptorValidation(t *testing.T) {
	if _, err := NewMultiDescriptor(0, Layout2D, Uint8); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := NewMultiDescriptor(2, Layout(7), Uint8); err == nil {
		t.Error("bad layout accepted")
	}
	if _, err := NewMultiDescriptor(2, Layout2D, ElemType(42)); err == nil {
		t.Error("bad elem accepted")
	}
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		d, err := NewMultiDescriptor(2, Layout1D, Uint8)
		if err != nil {
			return err
		}
		if err := d.ReorganizeData(c, nil, nil); err == nil {
			return errors.New("reorganize before mapping accepted")
		}
		if err := d.SetupDataMapping(c, []grid.Box{grid.Box2(0, 0, 2, 2)}, nil); err == nil {
			return errors.New("2D chunk accepted by 1D descriptor")
		}
		own := []grid.Box{grid.Box1(5*c.Rank(), 5)}
		needs := []grid.Box{grid.Box1(0, 3), grid.Box1(6, 3)}
		if err := d.SetupDataMapping(c, own, needs); err != nil {
			return err
		}
		if err := d.ReorganizeData(c, [][]byte{make([]byte, 5)}, [][]byte{make([]byte, 3)}); err == nil {
			return errors.New("missing need buffer accepted")
		}
		if err := d.ReorganizeData(c, [][]byte{make([]byte, 4)},
			[][]byte{make([]byte, 3), make([]byte, 3)}); err == nil {
			return errors.New("short owned buffer accepted")
		}
		return d.ReorganizeData(c, [][]byte{make([]byte, 5)},
			[][]byte{make([]byte, 3), make([]byte, 3)})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiMatchesSingleNeed: when every rank has exactly one need box,
// the multi-need API must produce the same result as the classic API.
func TestMultiMatchesSingleNeed(t *testing.T) {
	const n = 4
	domain := grid.Box2(0, 0, 12, 8)
	slabs := grid.Slabs(domain, 1, n)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)
	err := mpi.Launch(n, func(c *mpi.Comm) error {
		own := []grid.Box{slabs[c.Rank()]}
		ownBuf := [][]byte{fillBox(own[0], 1)}

		single, err := NewDescriptor(n, Layout2D, Uint8)
		if err != nil {
			return err
		}
		if err := single.SetupDataMapping(c, own, squares[c.Rank()]); err != nil {
			return err
		}
		a := make([]byte, squares[c.Rank()].Volume())
		if err := single.ReorganizeData(c, ownBuf, a); err != nil {
			return err
		}

		multi, err := NewMultiDescriptor(n, Layout2D, Uint8)
		if err != nil {
			return err
		}
		if err := multi.SetupDataMapping(c, own, []grid.Box{squares[c.Rank()]}); err != nil {
			return err
		}
		b := make([]byte, squares[c.Rank()].Volume())
		if err := multi.ReorganizeData(c, ownBuf, [][]byte{b}); err != nil {
			return err
		}
		if string(a) != string(b) {
			return fmt.Errorf("rank %d: multi differs from single", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
