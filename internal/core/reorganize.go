package core

import (
	"fmt"
	"time"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// RoundTiming records the wall-clock cost of one exchange round of the
// most recent ReorganizeData call, along with the bytes this rank sent to
// other ranks in that round. Fused mode reports a single entry covering
// the whole exchange.
type RoundTiming struct {
	Round     int
	Duration  time.Duration
	WireBytes int64
}

// LastTimings returns the per-round timings of the most recent
// ReorganizeData call (nil before the first call). The slice is reused
// across calls; copy it to retain.
func (d *Descriptor) LastTimings() []RoundTiming { return d.timings }

// ddrTagBase is the first of the user-visible tags DDR reserves for its
// point-to-point exchange mode (one tag per round). Applications sharing a
// communicator with DDR should stay below this range.
const ddrTagBase = 1 << 20

// ReorganizeData exchanges the data between ranks according to the plan
// compiled by SetupDataMapping. own holds one buffer per owned chunk, in
// the order the chunks were passed to SetupDataMapping; need receives the
// redistributed data and must be sized for the need box. Elements of the
// need box covered by no rank's owned data are left untouched (the paper
// allows incomplete receives).
//
// It corresponds to DDR_ReorganizeData(nProcs, dataOwn, dataNeed, desc)
// and may be called repeatedly as new data arrives in the same layout.
func (d *Descriptor) ReorganizeData(c *mpi.Comm, own [][]byte, need []byte) error {
	p := d.plan
	if p == nil {
		return fmt.Errorf("core: ReorganizeData before SetupDataMapping")
	}
	if c.Size() != d.nProcs || c.Rank() != p.rank {
		return fmt.Errorf("core: communicator does not match the one used for SetupDataMapping")
	}
	if len(own) != len(p.myChunks) {
		return fmt.Errorf("core: %d owned buffers for %d chunks", len(own), len(p.myChunks))
	}
	for i, buf := range own {
		if want := p.myChunks[i].Volume() * d.elemSize; len(buf) != want {
			return fmt.Errorf("core: owned buffer %d has %d bytes, chunk %v needs %d",
				i, len(buf), p.myChunks[i], want)
		}
	}
	if want := p.need.Volume() * d.elemSize; len(need) != want {
		return fmt.Errorf("core: need buffer has %d bytes, box %v needs %d", len(need), p.need, want)
	}

	d.timings = d.timings[:0]
	o := d.obsv
	endAll := d.tracer.Span(o.Rank(c), "exchange", 0)
	defer endAll()
	if d.mode == ModePointToPointFused {
		start := time.Now()
		if err := p.exchangeFused(o, c, own, need); err != nil {
			return fmt.Errorf("core: fused exchange: %w", err)
		}
		elapsed := time.Since(start)
		var wire int64
		for r := 0; r < p.rounds; r++ {
			wire += p.RankRoundSendBytes(p.rank, r)
		}
		d.timings = append(d.timings, RoundTiming{Round: 0, Duration: elapsed, WireBytes: wire})
		if o.on() {
			o.exchangeLat.Observe(elapsed.Seconds())
			o.roundLat.Observe(elapsed.Seconds())
			o.exchangeBytes.Add(wire)
		}
		return nil
	}
	var exchangeStart time.Time
	if o.on() {
		exchangeStart = time.Now()
	}
	for r := 0; r < p.rounds; r++ {
		var sendBuf []byte
		if r < len(own) {
			sendBuf = own[r]
		}
		roundBytes := p.RankRoundSendBytes(p.rank, r)
		start := time.Now()
		endRound := d.tracer.Span(o.Rank(c), fmt.Sprintf("round-%d", r), roundBytes)
		var err error
		switch d.mode {
		case ModePointToPoint:
			err = p.exchangeP2P(o, c, r, sendBuf, need)
		default:
			err = c.Alltoallw(sendBuf, p.send[r], need, p.recv[r])
		}
		endRound()
		if err != nil {
			return fmt.Errorf("core: exchange round %d: %w", r, err)
		}
		elapsed := time.Since(start)
		if o.on() {
			o.roundLat.Observe(elapsed.Seconds())
			o.exchangeBytes.Add(roundBytes)
		}
		d.timings = append(d.timings, RoundTiming{
			Round:     r,
			Duration:  elapsed,
			WireBytes: roundBytes,
		})
	}
	if o.on() {
		o.exchangeLat.Observe(time.Since(exchangeStart).Seconds())
	}
	return nil
}

// exchangeFused performs the whole redistribution in one message per peer
// pair: each peer's per-round overlaps are concatenated in round order on
// the sending side and unpacked in the same order on the receiving side.
func (p *Plan) exchangeFused(o *exchObs, c *mpi.Comm, own [][]byte, need []byte) error {
	const tag = ddrTagBase

	// Local contribution.
	for r := 0; r < len(p.myChunks); r++ {
		if st := p.send[r][p.rank]; st.PackedSize() > 0 {
			wire := make([]byte, st.PackedSize())
			st.Pack(own[r], wire)
			p.recv[r][p.rank].Unpack(wire, need)
		}
	}

	var sends []*mpi.Request
	recvPeers := map[int]int{} // peer -> expected fused byte count
	for peer := 0; peer < p.nProcs; peer++ {
		if peer == p.rank {
			continue
		}
		sendTotal := 0
		for r := 0; r < len(p.myChunks); r++ {
			sendTotal += p.send[r][peer].PackedSize()
		}
		if sendTotal > 0 {
			var packStart time.Time
			if o.on() {
				packStart = time.Now()
			}
			wire := make([]byte, sendTotal)
			off := 0
			for r := 0; r < len(p.myChunks); r++ {
				off += p.send[r][peer].Pack(own[r], wire[off:])
			}
			if o.on() {
				now := time.Now()
				o.rec.AddSpan(o.rank, fmt.Sprintf("pack->%d", peer), packStart, now, int64(sendTotal))
				o.packLat.Observe(now.Sub(packStart).Seconds())
			}
			sends = append(sends, c.Isend(peer, tag, wire))
		}
		recvTotal := 0
		for r := 0; r < p.rounds; r++ {
			recvTotal += p.recv[r][peer].PackedSize()
		}
		if recvTotal > 0 {
			recvPeers[peer] = recvTotal
		}
	}
	recvs := make(map[int]*mpi.Request, len(recvPeers))
	for peer := range recvPeers {
		recvs[peer] = c.Irecv(peer, tag)
	}
	if err := mpi.WaitAll(sends...); err != nil {
		return err
	}
	for peer, req := range recvs {
		var waitStart time.Time
		if o.on() {
			waitStart = time.Now()
		}
		data, _, _, err := req.Wait()
		if err != nil {
			return err
		}
		if len(data) != recvPeers[peer] {
			return fmt.Errorf("core: expected %d fused bytes from rank %d, got %d",
				recvPeers[peer], peer, len(data))
		}
		var unpackStart time.Time
		if o.on() {
			unpackStart = time.Now()
			o.rec.AddSpan(o.rank, fmt.Sprintf("wait<-%d", peer), waitStart, unpackStart, int64(len(data)))
		}
		off := 0
		for r := 0; r < p.rounds; r++ {
			off += p.recv[r][peer].Unpack(data[off:], need)
		}
		if o.on() {
			now := time.Now()
			o.rec.AddSpan(o.rank, fmt.Sprintf("unpack<-%d", peer), unpackStart, now, int64(len(data)))
			o.unpackLat.Observe(now.Sub(unpackStart).Seconds())
		}
	}
	return nil
}

// exchangeP2P performs one round using direct sends and receives between
// only the ranks that share data — the sparse-communication optimization
// the paper lists as future work. Semantically identical to the alltoallw
// round.
func (p *Plan) exchangeP2P(o *exchObs, c *mpi.Comm, round int, sendBuf, need []byte) error {
	tag := ddrTagBase + round

	// Local contribution first (no message needed).
	if st := p.send[round][p.rank]; st.PackedSize() > 0 {
		wire := make([]byte, st.PackedSize())
		st.Pack(sendBuf, wire)
		p.recv[round][p.rank].Unpack(wire, need)
	}

	reqs := make([]*mpi.Request, 0, len(p.sendPeers[round]))
	for _, peer := range p.sendPeers[round] {
		st := p.send[round][peer]
		var packStart time.Time
		if o.on() {
			packStart = time.Now()
		}
		wire := make([]byte, st.PackedSize())
		st.Pack(sendBuf, wire)
		if o.on() {
			now := time.Now()
			o.rec.AddSpan(o.rank, fmt.Sprintf("pack->%d", peer), packStart, now, int64(len(wire)))
			o.packLat.Observe(now.Sub(packStart).Seconds())
		}
		reqs = append(reqs, c.Isend(peer, tag, wire))
	}
	recvs := make([]*mpi.Request, 0, len(p.recvPeers[round]))
	for _, peer := range p.recvPeers[round] {
		recvs = append(recvs, c.Irecv(peer, tag))
	}
	if err := mpi.WaitAll(reqs...); err != nil {
		return err
	}
	for i, peer := range p.recvPeers[round] {
		var waitStart time.Time
		if o.on() {
			waitStart = time.Now()
		}
		data, _, _, err := recvs[i].Wait()
		if err != nil {
			return err
		}
		rt := p.recv[round][peer]
		if len(data) != rt.PackedSize() {
			return fmt.Errorf("core: expected %d bytes from rank %d, got %d", rt.PackedSize(), peer, len(data))
		}
		var unpackStart time.Time
		if o.on() {
			unpackStart = time.Now()
			o.rec.AddSpan(o.rank, fmt.Sprintf("wait<-%d", peer), waitStart, unpackStart, int64(len(data)))
		}
		rt.Unpack(data, need)
		if o.on() {
			now := time.Now()
			o.rec.AddSpan(o.rank, fmt.Sprintf("unpack<-%d", peer), unpackStart, now, int64(len(data)))
			o.unpackLat.Observe(now.Sub(unpackStart).Seconds())
		}
	}
	return nil
}

// Chunk pairs an owned box with its data buffer, for the one-shot
// Redistribute helper.
type Chunk struct {
	Box  grid.Box
	Data []byte
}

// Redistribute is a convenience wrapper that performs descriptor creation,
// mapping setup, and a single data exchange in one call, returning the
// freshly allocated need buffer. Applications redistributing repeatedly
// should keep the Descriptor and call ReorganizeData themselves.
func Redistribute(c *mpi.Comm, layout Layout, elem ElemType, own []Chunk, need grid.Box, opts ...Option) ([]byte, error) {
	d, err := NewDataDescriptor(c.Size(), layout, elem, opts...)
	if err != nil {
		return nil, err
	}
	boxes := make([]grid.Box, len(own))
	bufs := make([][]byte, len(own))
	for i, ch := range own {
		boxes[i] = ch.Box
		bufs[i] = ch.Data
	}
	if err := d.SetupDataMapping(c, boxes, need); err != nil {
		return nil, err
	}
	out := make([]byte, need.Volume()*d.ElemSize())
	if err := d.ReorganizeData(c, bufs, out); err != nil {
		return nil, err
	}
	return out, nil
}
