package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// RoundTiming records the wall-clock cost of one exchange round of the
// most recent ReorganizeData call, along with the bytes this rank sent to
// other ranks in that round. Fused mode reports a single entry covering
// the whole exchange; bounded exchanges report one entry per step.
//
// Duration is the round's contribution to the exchange's wall time. The
// sub-durations decompose it against the wire: Pack covers staging the
// round's sends (through handing them to the transport), Unpack covers
// the batched scatter of its strided payloads, and Wire spans from the
// sends being posted until the round's last payload was in hand —
// including, in that span, the inline placement of contiguous payloads.
// A serial round blocks for the whole wire span, so Duration ≈ Pack +
// Wire + Unpack; a pipelined round only pays the part of the wire span
// it actually blocked on (Duration = Pack + blocked + Unpack), which is
// what makes overlap efficiency computable from timings alone — see
// OverlapRatio. Alltoallw rounds delegate the whole phase to the
// collective and leave the sub-durations zero.
type RoundTiming struct {
	Round     int
	Duration  time.Duration
	Pack      time.Duration
	Wire      time.Duration
	Unpack    time.Duration
	WireBytes int64
}

// OverlapRatio reports, over a set of round timings, the fraction of
// wire time that was hidden behind pack/unpack work instead of being
// blocked on: 0 when every round waited out its whole wire span (serial
// execution), approaching 1 when the pipeline kept the wire fully
// covered by useful work. Rounds that report no wire span (alltoallw
// delegation, pure-local rounds) are excluded.
func OverlapRatio(ts []RoundTiming) float64 {
	var wire, hidden time.Duration
	for _, t := range ts {
		if t.Wire <= 0 {
			continue
		}
		blocked := t.Duration - t.Pack - t.Unpack
		if blocked < 0 {
			blocked = 0
		}
		if blocked > t.Wire {
			blocked = t.Wire
		}
		wire += t.Wire
		hidden += t.Wire - blocked
	}
	if wire == 0 {
		return 0
	}
	return float64(hidden) / float64(wire)
}

// LastTimings returns a copy of the per-round timings of the most recent
// ReorganizeData call (nil before the first call). The copy is the
// caller's to keep; use AppendTimings to avoid the allocation.
func (d *Descriptor) LastTimings() []RoundTiming {
	if d.timings == nil {
		return nil
	}
	out := make([]RoundTiming, len(d.timings))
	copy(out, d.timings)
	return out
}

// AppendTimings appends the most recent call's per-round timings to dst
// and returns the extended slice, the allocation-conscious variant of
// LastTimings.
func (d *Descriptor) AppendTimings(dst []RoundTiming) []RoundTiming {
	return append(dst, d.timings...)
}

// ddrTagBase is the first of the user-visible tags DDR reserves for its
// point-to-point exchange mode (one tag per round). Applications sharing a
// communicator with DDR should stay below this range.
const ddrTagBase = 1 << 20

// ExchangeTagBase is the first tag of the range DDR reserves for its
// exchange traffic, exported so fault-injection schedules can target the
// data exchange (tags >= ExchangeTagBase) while sparing the mapping
// collectives and application control traffic.
const ExchangeTagBase = ddrTagBase

// partialState tracks graceful degradation during one deadline-bounded
// exchange: which peers have been given up on, from which round onward,
// and why. It is nil when WithExchangeDeadline is unset, keeping the
// fail-fast paths untouched.
type partialState struct {
	uctx  context.Context // caller's context; its cancellation still aborts
	lost  map[int]int     // peer → earliest round whose data is compromised
	cause error
}

// markLost records that peer's data is missing from round onward.
func (ps *partialState) markLost(peer, round int) {
	if r0, ok := ps.lost[peer]; !ok || round < r0 {
		ps.lost[peer] = round
	}
}

// isLost reports whether peer has already been given up on.
func (ps *partialState) isLost(peer int) bool {
	if ps == nil {
		return false
	}
	_, ok := ps.lost[peer]
	return ok
}

// degrade decides whether err from a round-r operation against peer is a
// peer-loss condition the exchange should absorb (recording the peer as
// lost) rather than abort on. A cancellation of the caller's own context
// always aborts.
func (ps *partialState) degrade(peer, round int, err error) bool {
	if ps == nil {
		return false
	}
	if ps.uctx != nil && ps.uctx.Err() != nil {
		return false
	}
	if !mpi.IsPeerLoss(err) && !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	ps.markLost(peer, round)
	if ps.cause == nil {
		ps.cause = err
	}
	return true
}

// absorb folds a round-level error into the partial state: a
// *mpi.PartialExchangeError (alltoallw mode's degraded result) merges its
// lost-peer set and the round is considered survived.
func (ps *partialState) absorb(round int, err error) bool {
	if ps == nil {
		return false
	}
	var pe *mpi.PartialExchangeError
	if !errors.As(err, &pe) {
		return false
	}
	for _, r := range pe.LostPeers {
		ps.markLost(r, round)
	}
	if ps.cause == nil {
		ps.cause = pe.Cause
	}
	return true
}

// partialError builds the caller-facing completion report: the sorted
// lost-peer set plus the need-box regions whose producing peer was lost.
// Round r moves each rank's r-th chunk, so a peer lost at round r0 is
// missing the intersections of its chunks r0..end with this rank's need
// (its earlier rounds landed before the loss).
func (d *Descriptor) partialError(ps *partialState) error {
	if ps == nil || len(ps.lost) == 0 {
		return nil
	}
	p := d.plan
	lost := make([]int, 0, len(ps.lost))
	for r := range ps.lost {
		lost = append(lost, r)
	}
	sort.Ints(lost)
	var missing []grid.Box
	if b := p.bounded; b != nil {
		// Bounded exchanges lose peers at step granularity: a source lost
		// at step s0 is missing exactly its receive slices scheduled at
		// s0 or later (its earlier steps landed before the loss).
		for _, peer := range lost {
			s0 := ps.lost[peer]
			for _, idx := range b.recvIdx {
				sl := &b.slices[idx]
				if sl.src == peer && sl.step >= s0 {
					missing = append(missing, sl.region)
				}
			}
		}
		return &PartialError{LostPeers: lost, Missing: missing, Cause: ps.cause}
	}
	for _, peer := range lost {
		if peer < 0 || peer >= len(p.allChunks) {
			continue
		}
		chunks := p.allChunks[peer]
		for r := ps.lost[peer]; r < len(chunks); r++ {
			if iv, ok := chunks[r].Intersect(p.need); ok && !iv.Empty() {
				missing = append(missing, iv)
			}
		}
	}
	return &PartialError{LostPeers: lost, Missing: missing, Cause: ps.cause}
}

// ReorganizeData exchanges the data between ranks according to the plan
// compiled by SetupDataMapping. own holds one buffer per owned chunk, in
// the order the chunks were passed to SetupDataMapping; need receives the
// redistributed data and must be sized for the need box. Elements of the
// need box covered by no rank's owned data are left untouched (the paper
// allows incomplete receives).
//
// It corresponds to DDR_ReorganizeData(nProcs, dataOwn, dataNeed, desc)
// and may be called repeatedly as new data arrives in the same layout.
// Repeated calls on one plan reuse the descriptor's staging state and the
// shared buffer arena, so the steady state allocates nothing.
func (d *Descriptor) ReorganizeData(c *mpi.Comm, own [][]byte, need []byte) error {
	return d.ReorganizeDataCtx(nil, c, own, need)
}

// ReorganizeDataCtx is ReorganizeData with cancellation: when ctx is
// cancelled the exchange stops between rounds and abandons in-flight
// point-to-point waits, returning ctx.Err(). An abandoned wait may still
// consume its matching message later, so after a cancellation the
// communicator must not be reused for DDR traffic (see the cancellation
// contract in DESIGN.md); cancel to tear down, not to retry. A nil ctx —
// or one that can never be cancelled — selects the uncancellable fast
// path and is exactly ReorganizeData.
func (d *Descriptor) ReorganizeDataCtx(ctx context.Context, c *mpi.Comm, own [][]byte, need []byte) error {
	if ctx != nil {
		if ctx.Done() == nil {
			ctx = nil
		} else if err := ctx.Err(); err != nil {
			return err
		}
	}
	p := d.plan
	if p == nil {
		return fmt.Errorf("core: ReorganizeData before SetupDataMapping: %w", ErrNoMapping)
	}
	if c.Size() != d.nProcs || c.Rank() != p.rank {
		return fmt.Errorf("core: communicator does not match the one used for SetupDataMapping: %w", ErrCommMismatch)
	}
	if len(own) != len(p.myChunks) {
		return fmt.Errorf("core: %d owned buffers for %d chunks: %w", len(own), len(p.myChunks), ErrBufferSize)
	}
	for i, buf := range own {
		if want := p.myChunks[i].Volume() * d.elemSize; len(buf) != want {
			return fmt.Errorf("core: owned buffer %d has %d bytes, chunk %v needs %d: %w",
				i, len(buf), p.myChunks[i], want, ErrBufferSize)
		}
	}
	if want := p.need.Volume() * d.elemSize; len(need) != want {
		return fmt.Errorf("core: need buffer has %d bytes, box %v needs %d: %w",
			len(need), p.need, want, ErrBufferSize)
	}

	// WithExchangeDeadline bounds the whole exchange and arms graceful
	// degradation: peer-loss and deadline failures park the peer on the
	// lost list instead of aborting, and the call ends with a
	// *PartialError describing what is missing.
	var ps *partialState
	if d.deadline > 0 {
		ps = &partialState{uctx: ctx, lost: make(map[int]int)}
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, d.deadline)
		defer cancel()
	}

	// Resolve the pack strategies this exchange will use — a measured
	// probe on the first exchange of a (plan, transport) pair, two
	// comparisons afterwards.
	d.ensureTuned(c, p)

	d.timings = d.timings[:0]
	o := d.obsv
	rankL := o.Rank(c)

	// Mint this exchange's trace identity. ReorganizeData is collective,
	// so the counter advances in lockstep on every rank; combined with the
	// collectively agreed plan fingerprint, every rank derives the same
	// 64-bit ID without communicating. Minting is two integer ops, so it
	// runs unconditionally; the context push and span stamps are gated so
	// a detached descriptor pays nothing.
	d.exchSeq++
	exch := mixExchangeID(p.fp, d.exchSeq)
	d.lastExchID = exch
	traced := o.tracing() || d.flight != nil
	if traced {
		// Stamp the context onto every message of this exchange: the
		// transports propagate it in-band, so the receiving side's flight
		// events name the exchange and round they served.
		c.SetTraceContext(mpi.TraceContext{Exchange: exch})
		defer c.ClearTraceContext()
		d.flight.Record(obs.FlightEvent{Kind: obs.FlightExchangeStart, Rank: int32(rankL), Peer: -1, Exchange: exch})
	}
	if o.tracing() {
		allStart := time.Now()
		defer func() {
			o.rec.StampSpan(trace.Event{Rank: rankL, Name: "exchange",
				Exchange: exch, Round: -1, Peer: -1}, allStart, time.Now())
		}()
	}
	if b := p.bounded; b != nil {
		// The memory-bounded backend replaces the mode dispatch entirely:
		// the step schedule was compiled for this descriptor's budget and
		// every rank selected it from the same collectively shared
		// geometry, so the worlds agree on the path taken. Depth permitting
		// (the budget clamp divides by the schedule's modeled per-step
		// footprint), the steps run software-pipelined.
		start := time.Now()
		k := d.pipelineDepth(p, b.steps, b.peak)
		d.lastDepth = k
		var err error
		if k >= 2 {
			err = d.exchangeBoundedPipelined(ctx, o, c, own, need, ps, k, exch, traced)
		} else {
			err = d.exchangeBounded(ctx, o, c, own, need, ps)
		}
		if err != nil {
			return fmt.Errorf("core: bounded exchange: %w", err)
		}
		elapsed := time.Since(start)
		if o.on() {
			o.exchangeLat.Observe(elapsed.Seconds())
			o.exchangeBytes.Add(b.wireBytes)
			o.boundedSteps.Add(int64(b.steps))
			o.boundedPeak.SetMax(d.lastPeakStaging)
		}
		return d.finishExchange(rankL, exch, ps)
	}
	if d.mode == ModePointToPointFused {
		d.lastDepth = 1
		start := time.Now()
		var rt RoundTiming
		if err := d.exchangeFused(ctx, o, c, own, need, ps, &rt); err != nil {
			return fmt.Errorf("core: fused exchange: %w", err)
		}
		elapsed := time.Since(start)
		var wire int64
		for r := 0; r < p.rounds; r++ {
			wire += p.RankRoundSendBytes(p.rank, r)
		}
		rt.Duration, rt.WireBytes = elapsed, wire
		d.timings = append(d.timings, rt)
		if o.on() {
			o.exchangeLat.Observe(elapsed.Seconds())
			o.roundLat.Observe(elapsed.Seconds())
			o.exchangeBytes.Add(wire)
		}
		return d.finishExchange(rankL, exch, ps)
	}
	if d.mode == ModePointToPoint {
		if k := d.pipelineDepth(p, p.rounds, 0); k >= 2 {
			d.lastDepth = k
			start := time.Now()
			if err := d.exchangePipelined(ctx, o, c, own, need, ps, k, exch, traced); err != nil {
				return fmt.Errorf("core: pipelined exchange: %w", err)
			}
			if o.on() {
				o.exchangeLat.Observe(time.Since(start).Seconds())
			}
			return d.finishExchange(rankL, exch, ps)
		}
	}
	d.lastDepth = 1
	var exchangeStart time.Time
	if o.on() {
		exchangeStart = time.Now()
	}
	for r := 0; r < p.rounds; r++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if ps == nil || (ps.uctx != nil && ps.uctx.Err() != nil) {
					return err
				}
				// The exchange deadline is spent: give up on every peer
				// still owed data in the remaining rounds and report what
				// landed rather than abort with the buffer state unknown.
				for rr := r; rr < p.rounds; rr++ {
					for _, peer := range p.recvPeers[rr] {
						ps.markLost(peer, rr)
					}
				}
				if ps.cause == nil {
					ps.cause = fmt.Errorf("core: exchange deadline %v exhausted after round %d: %w",
						d.deadline, r, mpi.ErrExchangeTimeout)
				}
				break
			}
		}
		var sendBuf []byte
		if r < len(own) {
			sendBuf = own[r]
		}
		roundBytes := p.RankRoundSendBytes(p.rank, r)
		if traced {
			c.SetTraceContext(mpi.TraceContext{Exchange: exch, Round: uint32(r)})
		}
		start := time.Now()
		var err error
		rt := RoundTiming{Round: r, WireBytes: roundBytes}
		switch d.mode {
		case ModePointToPoint:
			err = d.exchangeP2P(ctx, o, c, r, sendBuf, need, ps, &rt)
		default:
			rowSend, rowRecv := d.alltoallwRows(p, r)
			err = c.AlltoallwOpt(sendBuf, rowSend, need, rowRecv, mpi.AlltoallwOptions{
				Parallelism: d.parallelism(),
				Pooled:      d.pooled,
				ZeroCopy:    d.zcSend && d.zcRecv,
				Deadline:    d.deadline,
			})
			d.resetAlltoallwRows(p, r)
		}
		if o.tracing() {
			o.rec.StampSpan(trace.Event{Rank: rankL, Name: fmt.Sprintf("round-%d", r),
				Bytes: roundBytes, Exchange: exch, Round: int32(r), Peer: -1}, start, time.Now())
		}
		if err != nil && !ps.absorb(r, err) {
			return fmt.Errorf("core: exchange round %d: %w", r, err)
		}
		elapsed := time.Since(start)
		if o.on() {
			o.roundLat.Observe(elapsed.Seconds())
			o.exchangeBytes.Add(roundBytes)
		}
		rt.Duration = elapsed
		d.timings = append(d.timings, rt)
	}
	if o.on() {
		o.exchangeLat.Observe(time.Since(exchangeStart).Seconds())
	}
	return d.finishExchange(rankL, exch, ps)
}

// finishExchange builds the caller-facing completion report and, when a
// flight recorder is attached, marks the exchange end in the ring — and,
// if the exchange degraded, emits the one-shot postmortem dump naming
// the lost peers while the ring still holds the frames leading up to the
// loss.
func (d *Descriptor) finishExchange(rankL int, exch uint64, ps *partialState) error {
	d.lastOverlap = OverlapRatio(d.timings)
	if o := d.obsv; o.on() {
		o.pipeDepth.Set(int64(d.lastDepth))
		o.pipeOverlap.Set(d.lastOverlap)
	}
	err := d.partialError(ps)
	if d.flight != nil {
		d.flight.Record(obs.FlightEvent{Kind: obs.FlightExchangeEnd, Rank: int32(rankL), Peer: -1, Exchange: exch})
		var pe *PartialError
		if errors.As(err, &pe) {
			d.flight.DumpOnce(fmt.Sprintf("rank %d exchange %016x degraded: lost peers %v: %v",
				rankL, exch, pe.LostPeers, pe.Cause))
		}
	}
	return err
}

// selfExchange moves round r's local contribution (this rank's owned
// chunk overlapping its own need) without touching the transport. One
// contiguous side is enough to drop the staging buffer; two reduce the
// move to a single memmove.
func (d *Descriptor) selfExchange(round int, src, need []byte) {
	p := d.plan
	st, ss := p.sendE.at(round, p.rank)
	n := st.PackedSize()
	if n == 0 {
		return
	}
	rt, rs := p.recvE.at(round, p.rank)
	switch {
	case d.zcSend && d.zcRecv && ss.ok && rs.ok:
		copy(need[rs.off:rs.off+n], src[ss.off:ss.off+n])
	case d.zcSend && ss.ok:
		rt.Unpack(src[ss.off:ss.off+n], need)
	case d.zcRecv && rs.ok:
		st.Pack(src, need[rs.off:rs.off+n])
	default:
		wire := d.stage(n)
		st.Pack(src, wire)
		rt.Unpack(wire, need)
		d.unstage(wire)
	}
}

// acceptRound consumes one received round-mode payload: contiguous
// destinations are copied straight into the need buffer and the payload
// recycled; strided ones are batched for the unpack phase (the payload is
// recycled after the batch runs).
func (d *Descriptor) acceptRound(o *exchObs, round, peer int, data, need []byte) error {
	p := d.plan
	rt, sp := p.recvE.at(round, peer)
	if len(data) != rt.PackedSize() {
		return fmt.Errorf("core: expected %d bytes from rank %d, got %d", rt.PackedSize(), peer, len(data))
	}
	if d.zcRecv && sp.ok {
		directUnpack(o, need[sp.off:sp.off+sp.n], data, peer)
		d.releaseRecv(data)
		return nil
	}
	d.eng.add(exchJob{t: rt, local: need, wire: data, unpack: true, peer: peer})
	d.scratch.datas = append(d.scratch.datas, data)
	return nil
}

// exchangeP2P performs one round using direct sends and receives between
// only the ranks that share data — the sparse-communication optimization
// the paper lists as future work. Semantically identical to the alltoallw
// round. rt receives the round's pack/wire/unpack sub-durations.
func (d *Descriptor) exchangeP2P(ctx context.Context, o *exchObs, c *mpi.Comm, round int, sendBuf, need []byte, ps *partialState, rt *RoundTiming) error {
	p := d.plan
	tag := ddrTagBase + round
	packStart := time.Now()

	// Local contribution first (no message needed).
	d.selfExchange(round, sendBuf, need)

	// Pack phase: contiguous regions skip staging entirely — the owned
	// buffer's sub-slice goes straight to Send, whose delivery copy is the
	// only copy. Strided regions stage through the engine.
	s := &d.scratch
	s.wires = s.wires[:0]
	s.staged = s.staged[:0]
	for _, peer := range p.sendPeers[round] {
		st, sp := p.sendE.at(round, peer)
		n := st.PackedSize()
		if d.zcSend && sp.ok {
			s.wires = append(s.wires, sendBuf[sp.off:sp.off+n])
			continue
		}
		wire := d.stage(n)
		d.eng.add(exchJob{t: st, local: sendBuf, wire: wire, peer: peer})
		s.wires = append(s.wires, wire)
		s.staged = append(s.staged, wire)
	}
	d.eng.run(o)
	for i, peer := range p.sendPeers[round] {
		if ps.isLost(peer) {
			continue
		}
		var err error
		if ctx == nil {
			err = c.Send(peer, tag, s.wires[i])
		} else {
			// Context-bound sends always copy eagerly, so the staging
			// recycle below stays unconditional.
			err = c.SendCtx(ctx, peer, tag, s.wires[i])
		}
		if err != nil {
			if ps.degrade(peer, round, err) {
				continue
			}
			return err
		}
	}
	// Send copies eagerly, so staging buffers recycle immediately.
	for _, w := range s.staged {
		d.unstage(w)
	}
	s.staged = s.staged[:0]
	issued := time.Now()
	rt.Pack = issued.Sub(packStart)

	// Receive phase. Delivery is eager and buffered — every peer's send
	// has already been accepted by the transport — so receiving in plan
	// order cannot deadlock, and the uncancellable path uses blocking
	// receives with no request bookkeeping.
	s.datas = s.datas[:0]
	if ctx == nil {
		for _, peer := range p.recvPeers[round] {
			var waitStart time.Time
			if o.tracing() {
				waitStart = time.Now()
			}
			data, _, _, err := c.Recv(peer, tag)
			if err != nil {
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(round), Peer: int32(peer)},
					waitStart, time.Now())
			}
			if err := d.acceptRound(o, round, peer, data, need); err != nil {
				return err
			}
		}
	} else {
		s.reqs = s.reqs[:0]
		for _, peer := range p.recvPeers[round] {
			if ps.isLost(peer) {
				// Nothing is coming: our own send already failed or the
				// peer was lost in an earlier round.
				s.reqs = append(s.reqs, nil)
				continue
			}
			s.reqs = append(s.reqs, c.Irecv(peer, tag))
		}
		for i, peer := range p.recvPeers[round] {
			if s.reqs[i] == nil {
				continue
			}
			var waitStart time.Time
			if o.tracing() {
				waitStart = time.Now()
			}
			data, _, _, err := s.reqs[i].WaitCtx(ctx)
			if err != nil {
				if ps.degrade(peer, round, err) {
					continue
				}
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(round), Peer: int32(peer)},
					waitStart, time.Now())
			}
			if err := d.acceptRound(o, round, peer, data, need); err != nil {
				return err
			}
		}
	}
	wireDone := time.Now()
	rt.Wire = wireDone.Sub(issued)
	d.eng.run(o)
	for _, data := range s.datas {
		d.releaseRecv(data)
	}
	s.datas = s.datas[:0]
	rt.Unpack = time.Since(wireDone)
	return nil
}

// acceptFused consumes one received fused payload, splitting it back into
// its per-round segments in round order.
func (d *Descriptor) acceptFused(o *exchObs, i, peer int, data, need []byte) error {
	p := d.plan
	if len(data) != p.fusedRecvBytes[i] {
		return fmt.Errorf("core: expected %d fused bytes from rank %d, got %d",
			p.fusedRecvBytes[i], peer, len(data))
	}
	off := 0
	for r := 0; r < p.rounds; r++ {
		rt, sp := p.recvE.at(r, peer)
		n := rt.PackedSize()
		if n == 0 {
			continue
		}
		if d.zcRecv && sp.ok {
			directUnpack(o, need[sp.off:sp.off+sp.n], data[off:off+n], peer)
		} else {
			d.eng.add(exchJob{t: rt, local: need, wire: data[off : off+n], unpack: true, peer: peer})
		}
		off += n
	}
	d.scratch.datas = append(d.scratch.datas, data)
	return nil
}

// exchangeFused performs the whole redistribution in one message per peer
// pair: each peer's per-round overlaps are concatenated in round order on
// the sending side and unpacked in the same order on the receiving side.
// When a single round contributes a contiguous region to a peer, the
// message is the owned buffer's sub-slice and no staging happens at all.
// rt receives the exchange's pack/wire/unpack sub-durations.
func (d *Descriptor) exchangeFused(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState, rt *RoundTiming) error {
	p := d.plan
	const tag = ddrTagBase
	packStart := time.Now()

	// Local contribution.
	for r := 0; r < len(p.myChunks); r++ {
		d.selfExchange(r, own[r], need)
	}

	s := &d.scratch
	s.wires = s.wires[:0]
	s.staged = s.staged[:0]
	for i, peer := range p.fusedSendPeers {
		if r := p.fusedSendOne[i]; d.zcSend && r >= 0 {
			if _, sp := p.sendE.at(r, peer); sp.ok {
				s.wires = append(s.wires, own[r][sp.off:sp.off+sp.n])
				continue
			}
		}
		wire := d.stage(p.fusedSendBytes[i])
		off := 0
		for r := 0; r < len(p.myChunks); r++ {
			st, sp := p.sendE.at(r, peer)
			n := st.PackedSize()
			if n == 0 {
				continue
			}
			if d.zcSend && sp.ok {
				copy(wire[off:off+n], own[r][sp.off:sp.off+n])
			} else {
				d.eng.add(exchJob{t: st, local: own[r], wire: wire[off : off+n], peer: peer})
			}
			off += n
		}
		s.wires = append(s.wires, wire)
		s.staged = append(s.staged, wire)
	}
	d.eng.run(o)
	for i, peer := range p.fusedSendPeers {
		if ps.isLost(peer) {
			continue
		}
		var err error
		if ctx == nil {
			err = c.Send(peer, tag, s.wires[i])
		} else {
			err = c.SendCtx(ctx, peer, tag, s.wires[i])
		}
		if err != nil {
			if ps.degrade(peer, 0, err) {
				continue
			}
			return err
		}
	}
	for _, w := range s.staged {
		d.unstage(w)
	}
	s.staged = s.staged[:0]
	issued := time.Now()
	rt.Pack = issued.Sub(packStart)

	s.datas = s.datas[:0]
	if ctx == nil {
		for i, peer := range p.fusedRecvPeers {
			var waitStart time.Time
			if o.tracing() {
				waitStart = time.Now()
			}
			data, _, _, err := c.Recv(peer, tag)
			if err != nil {
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: -1, Peer: int32(peer)},
					waitStart, time.Now())
			}
			if err := d.acceptFused(o, i, peer, data, need); err != nil {
				return err
			}
		}
	} else {
		s.reqs = s.reqs[:0]
		for _, peer := range p.fusedRecvPeers {
			if ps.isLost(peer) {
				s.reqs = append(s.reqs, nil)
				continue
			}
			s.reqs = append(s.reqs, c.Irecv(peer, tag))
		}
		for i, peer := range p.fusedRecvPeers {
			if s.reqs[i] == nil {
				continue
			}
			var waitStart time.Time
			if o.tracing() {
				waitStart = time.Now()
			}
			data, _, _, err := s.reqs[i].WaitCtx(ctx)
			if err != nil {
				if ps.degrade(peer, 0, err) {
					continue
				}
				return err
			}
			if o.tracing() {
				o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", peer),
					Bytes: int64(len(data)), Exchange: d.lastExchID, Round: -1, Peer: int32(peer)},
					waitStart, time.Now())
			}
			if err := d.acceptFused(o, i, peer, data, need); err != nil {
				return err
			}
		}
	}
	wireDone := time.Now()
	rt.Wire = wireDone.Sub(issued)
	d.eng.run(o)
	for _, data := range s.datas {
		d.releaseRecv(data)
	}
	s.datas = s.datas[:0]
	rt.Unpack = time.Since(wireDone)
	return nil
}

// alltoallwRows materializes round r's dense send/recv type rows — the
// alltoallw collective's wire format — from the plan's sparse tables
// into the descriptor's reusable scratch. resetAlltoallwRows must run
// after the collective returns to restore the Empty sentinels, so the
// rows are clean for the next round at O(entries) cost.
func (d *Descriptor) alltoallwRows(p *Plan, r int) (rowSend, rowRecv []datatype.Type) {
	s := &d.scratch
	if len(s.rowSend) != p.nProcs {
		s.rowSend = make([]datatype.Type, p.nProcs)
		s.rowRecv = make([]datatype.Type, p.nProcs)
		fillEmpty(s.rowSend)
		fillEmpty(s.rowRecv)
	}
	for i := p.sendE.off[r]; i < p.sendE.off[r+1]; i++ {
		s.rowSend[p.sendE.peers[i]] = p.sendE.types[i]
	}
	for i := p.recvE.off[r]; i < p.recvE.off[r+1]; i++ {
		s.rowRecv[p.recvE.peers[i]] = p.recvE.types[i]
	}
	return s.rowSend, s.rowRecv
}

// resetAlltoallwRows restores the Empty sentinel in the slots round r
// populated.
func (d *Descriptor) resetAlltoallwRows(p *Plan, r int) {
	s := &d.scratch
	for i := p.sendE.off[r]; i < p.sendE.off[r+1]; i++ {
		s.rowSend[p.sendE.peers[i]] = datatype.Empty{}
	}
	for i := p.recvE.off[r]; i < p.recvE.off[r+1]; i++ {
		s.rowRecv[p.recvE.peers[i]] = datatype.Empty{}
	}
}

// Chunk pairs an owned box with its data buffer, for the one-shot
// Redistribute helper.
type Chunk struct {
	Box  grid.Box
	Data []byte
}

// Redistribute is a convenience wrapper that performs descriptor creation,
// mapping setup, and a single data exchange in one call, returning the
// freshly allocated need buffer. Applications redistributing repeatedly
// should keep the Descriptor and call ReorganizeData themselves.
func Redistribute(c *mpi.Comm, layout Layout, elem ElemType, own []Chunk, need grid.Box, opts ...Option) ([]byte, error) {
	return RedistributeCtx(nil, c, layout, elem, own, need, opts...)
}

// RedistributeCtx is Redistribute with cancellation, following the
// ReorganizeDataCtx contract: the mapping setup is not cancellable, the
// exchange is.
func RedistributeCtx(ctx context.Context, c *mpi.Comm, layout Layout, elem ElemType, own []Chunk, need grid.Box, opts ...Option) ([]byte, error) {
	d, err := NewDescriptor(c.Size(), layout, elem, opts...)
	if err != nil {
		return nil, err
	}
	boxes := make([]grid.Box, len(own))
	bufs := make([][]byte, len(own))
	for i, ch := range own {
		boxes[i] = ch.Box
		bufs[i] = ch.Data
	}
	if err := d.SetupDataMapping(c, boxes, need); err != nil {
		return nil, err
	}
	out := make([]byte, need.Volume()*d.ElemSize())
	if err := d.ReorganizeDataCtx(ctx, c, bufs, out); err != nil {
		return nil, err
	}
	return out, nil
}
