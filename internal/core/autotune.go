package core

import (
	"sync"
	"sync/atomic"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// Pack-strategy autotuning. The exchange paths can move a region three
// ways: hand contiguous sub-slices straight to the transport and gather
// strided rows with the Subarray's stride loop (zerocopy), the same but
// gathering through a compiled run-list offset table (pack), or stage
// everything through wire buffers with the Subarray loop, fast paths off
// (datatype). Which gather wins depends on the region geometry — row
// length, row count, cache footprint — and on the transport underneath,
// none of which are visible statically. Instead of hardcoding the
// choice, the first exchange on a plan runs a microprobe: it times each
// candidate on the plan's own representative region and picks the
// fastest per direction (packing sends and scattering receives have
// different geometries and different winners).
//
// Decisions are cached process-wide, keyed by (plan fingerprint,
// transport, direction) — the probe runs at most once per key even when
// many ranks share the process, since ranks are goroutines here and
// their plans share the collectively agreed fingerprint. A nil-safe
// metrics counter exports every selection, so /metrics shows which
// strategy each geometry landed on.

// PackStrategy selects how exchange regions are gathered and scattered.
type PackStrategy int

const (
	// StrategyAuto probes at first use and picks the measured winner.
	StrategyAuto PackStrategy = iota
	// StrategyZeroCopy keeps contiguous fast paths on and gathers strided
	// regions with the Subarray stride loop (the historical default).
	StrategyZeroCopy
	// StrategyPack keeps contiguous fast paths on and gathers strided
	// regions through compiled run-list offset tables.
	StrategyPack
	// StrategyDatatype stages every region through wire buffers with the
	// Subarray loop, contiguous fast paths off — the fully staged path
	// MPI datatypes would take.
	StrategyDatatype
)

func (s PackStrategy) String() string {
	switch s {
	case StrategyZeroCopy:
		return "zerocopy"
	case StrategyPack:
		return "pack"
	case StrategyDatatype:
		return "datatype"
	default:
		return "auto"
	}
}

// WithPackStrategy forces one strategy for both directions, bypassing
// the probe. StrategyAuto (the default) restores measured selection.
func WithPackStrategy(s PackStrategy) Option {
	return func(d *Descriptor) { d.forcedStrat = s }
}

// WithAutotune toggles the measured pack-strategy probe (default on).
// Off, the descriptor keeps the static choice implied by WithZeroCopy.
func WithAutotune(enabled bool) Option {
	return func(d *Descriptor) { d.autotune = enabled }
}

// tuneKey identifies one cached decision: the collectively agreed plan
// fingerprint (geometry × topology), the transport the exchange rides,
// and the direction being gathered.
type tuneKey struct {
	fp        uint64
	transport string
	send      bool
}

// tuneEntry holds one decision; the Once guarantees a single probe per
// key no matter how many ranks race to the first exchange.
type tuneEntry struct {
	once  sync.Once
	strat PackStrategy
}

var (
	tuneCache  sync.Map // tuneKey -> *tuneEntry
	tuneProbes atomic.Int64
)

// AutotuneProbeCount reports how many microprobes have run in this
// process across all descriptors.
func AutotuneProbeCount() int64 { return tuneProbes.Load() }

// ResetAutotuneCache drops every cached pack-strategy decision, forcing
// the next exchange of each (plan, transport, direction) to re-probe.
// Intended for tests and measurement harnesses.
func ResetAutotuneCache() {
	tuneCache.Range(func(k, _ any) bool { tuneCache.Delete(k); return true })
}

// PackDecision reports the strategies the most recent exchange used for
// its send and receive directions (StrategyAuto before the first
// exchange resolves them).
func (d *Descriptor) PackDecision() (send, recv PackStrategy) {
	return d.sendStrat, d.recvStrat
}

// ensureTuned resolves the effective pack strategy for both directions
// of plan p over communicator c, probing on first use when autotuning is
// active. Runs on every exchange but is two comparisons in steady state.
func (d *Descriptor) ensureTuned(c *mpi.Comm, p *Plan) {
	tn := c.TransportName()
	if d.tunedFP == p.fp && d.tunedTransport == tn && d.sendStrat != StrategyAuto {
		return
	}
	switch {
	case d.forcedStrat != StrategyAuto:
		d.sendStrat, d.recvStrat = d.forcedStrat, d.forcedStrat
	case !d.autotune || !d.zeroCopy:
		// Static behaviour: WithZeroCopy decides, no measurement.
		s := StrategyZeroCopy
		if !d.zeroCopy {
			s = StrategyDatatype
		}
		d.sendStrat, d.recvStrat = s, s
	default:
		d.sendStrat = tuneDecision(tuneKey{fp: p.fp, transport: tn, send: true}, &p.sendE, d)
		d.recvStrat = tuneDecision(tuneKey{fp: p.fp, transport: tn, send: false}, &p.recvE, d)
	}
	d.tunedFP, d.tunedTransport = p.fp, tn
	d.applyStrategy(p)
}

// applyStrategy translates the resolved strategies into the flags and
// plan state the exchange paths consume: the per-direction fast-path
// gates, run-list compilation for pack, and the selection counters.
func (d *Descriptor) applyStrategy(p *Plan) {
	d.zcSend = d.sendStrat != StrategyDatatype
	d.zcRecv = d.recvStrat != StrategyDatatype
	if d.sendStrat == StrategyPack {
		compilePlanRuns(&p.sendE)
	}
	if d.recvStrat == StrategyPack {
		compilePlanRuns(&p.recvE)
	}
	if d.metrics != nil {
		rl := obs.RankLabel(p.rank)
		const name = "ddr_pack_strategy_selected_total"
		const help = "Exchanges that resolved a pack strategy, by strategy and direction."
		d.metrics.Counter(name, help, rl,
			obs.Label{Key: "strategy", Value: d.sendStrat.String()},
			obs.Label{Key: "direction", Value: "send"}).Add(1)
		d.metrics.Counter(name, help, rl,
			obs.Label{Key: "strategy", Value: d.recvStrat.String()},
			obs.Label{Key: "direction", Value: "recv"}).Add(1)
	}
}

// compilePlanRuns swaps every strided Subarray entry of one direction's
// table for its compiled run list, in place. Run lists pack the same
// bytes in the same order, so a plan whose types were compiled stays
// valid for every strategy — a descriptor that later resolves zerocopy
// on another transport simply gathers through the table it already has.
func compilePlanRuns(e *planEntries) {
	for i, t := range e.types {
		if e.spans[i].ok {
			continue
		}
		if rl, ok := datatype.CompileRuns(t); ok {
			e.types[i] = rl
		}
	}
}

// tuneDecision returns the cached strategy for key, probing exactly once
// per key process-wide.
func tuneDecision(key tuneKey, e *planEntries, d *Descriptor) PackStrategy {
	v, _ := tuneCache.LoadOrStore(key, &tuneEntry{})
	ent := v.(*tuneEntry)
	ent.once.Do(func() {
		tuneProbes.Add(1)
		ent.strat = probeStrategy(e, !key.send, d)
	})
	return ent.strat
}

// probeBudget bounds the bytes one candidate moves during a probe; the
// iteration count is derived from it so small regions are averaged over
// many repetitions and huge ones timed once.
const probeBudget = 4 << 20

// probeStrategy times the three candidates on the direction's largest
// strided region and returns the winner. The cost model per candidate:
// zerocopy and datatype gather strided bytes with the Subarray loop,
// pack with the compiled run list; datatype additionally stages the
// direction's contiguous bytes (one memmove) that the other two hand to
// the transport untouched. Pack must beat zerocopy by a margin to win —
// measured noise should not flip the default.
func probeStrategy(e *planEntries, unpack bool, d *Descriptor) PackStrategy {
	// Representative region: the largest strided Subarray in the table.
	var rep *datatype.Subarray
	repBytes, contigBytes := 0, 0
	for i, t := range e.types {
		n := t.PackedSize()
		if e.spans[i].ok {
			contigBytes += n
			continue
		}
		if s, ok := t.(*datatype.Subarray); ok && n > repBytes {
			rep, repBytes = s, n
		}
	}
	if rep == nil {
		// Nothing strided: fast paths cover everything.
		return StrategyZeroCopy
	}
	rl, ok := datatype.CompileRuns(rep)
	if !ok {
		return StrategyZeroCopy
	}

	localBytes := rep.Array.Volume() * rep.ElemSize
	local := d.stage(localBytes)
	wire := d.stage(repBytes)
	defer d.unstage(local)
	defer d.unstage(wire)
	iters := probeBudget / repBytes
	if iters < 1 {
		iters = 1
	}
	if iters > 64 {
		iters = 64
	}
	move := func(t datatype.Type) time.Duration {
		// One warm-up pass faults the pages in so the first candidate is
		// not charged for them.
		if unpack {
			t.Unpack(wire, local)
		} else {
			t.Pack(local, wire)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if unpack {
				t.Unpack(wire, local)
			} else {
				t.Pack(local, wire)
			}
		}
		return time.Since(start)
	}
	subNs := float64(move(rep))
	rlNs := float64(move(rl))

	// Staging cost of the contiguous bytes the datatype strategy gives
	// up, charged at the measured per-byte gather rate.
	datatypeNs := subNs
	if contigBytes > 0 {
		datatypeNs += subNs / float64(iters*repBytes) * float64(iters*contigBytes)
	}

	best := StrategyZeroCopy
	if rlNs < subNs*0.95 { // pack must win by >5% to displace the default
		best = StrategyPack
	}
	if datatypeNs < subNs && datatypeNs < rlNs {
		best = StrategyDatatype
	}
	return best
}
