package core

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Differential tests of the pipelined exchange engine. The ground truth
// is the same brute-force oracle the bounded sweep uses: pipelining only
// reschedules the rounds, so every (depth, mode, budget) point must stay
// byte-identical to the serial output — and, when a budget is armed, the
// measured peak staging must stay under the ceiling even with k rounds
// of receive payloads in flight.

// runPipeWorld runs one (case, mode, depth, budget) configuration and
// byte-compares every rank's output against the brute oracle. budget 0
// runs unmetered; mutate, when non-nil, runs on rank 0's descriptor
// after mapping setup. Returns the number of ranks whose output diverged
// (0 for a healthy run; planted-bug tests expect > 0).
func (bc *boundedCase) runPipeWorld(t *testing.T, mode ExchangeMode, depth, budget int,
	mutate func(*Descriptor), checkRank func(rank int, d *Descriptor) error) int {
	t.Helper()
	own := bc.ownData()
	oracle := make([][]byte, bc.nProcs)
	for r := 0; r < bc.nProcs; r++ {
		oracle[r] = bc.oracleNeed(t, r, own)
	}
	diverged := make([]bool, bc.nProcs)
	err := mpi.Launch(bc.nProcs, func(c *mpi.Comm) error {
		rank := c.Rank()
		opts := []Option{
			WithExchangeMode(mode), WithElemSize(bc.elemSize), WithPipelineDepth(depth),
		}
		if budget > 0 {
			opts = append(opts, WithMemoryBudget(budget))
		}
		d, err := NewDescriptor(bc.nProcs, bc.layout, Uint8, opts...)
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, bc.chunks[rank], bc.needs[rank]); err != nil {
			return err
		}
		if rank == 0 && mutate != nil {
			mutate(d)
		}
		out := make([]byte, bc.needs[rank].Volume()*bc.elemSize)
		for i := range out {
			out[i] = boundedSentinel
		}
		bufs := make([][]byte, len(bc.chunks[rank]))
		for i := range bufs {
			bufs[i] = append([]byte(nil), own[rank][i]...)
		}
		if err := d.ReorganizeData(c, bufs, out); err != nil {
			return err
		}
		if !bytes.Equal(out, oracle[rank]) {
			diverged[rank] = true
		}
		if checkRank != nil {
			return checkRank(rank, d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, bad := range diverged {
		if bad {
			n++
		}
	}
	return n
}

// TestPipelineDifferentialSweep is the pipelined engine's acceptance
// sweep: seeded geometries × all three exchange modes × depths 1/2/4 ×
// budget tiers (none, half the single-shot footprint — which composes
// pipelining with the bounded step backend — and the one-class minimum),
// every output byte-compared against the brute oracle, the effective
// depth asserted within the configured depth, and the measured peak
// staging under the ceiling wherever one was set.
func TestPipelineDifferentialSweep(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	modes := []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused}
	for seed := int64(0); seed < int64(seeds); seed++ {
		bc := genBoundedCase(seed)
		for _, mode := range modes {
			fp := bc.footprint(t, mode)
			if fp == 0 {
				continue
			}
			budgets := []int{0, max(fp/2, 1<<minStagingShift), 1 << minStagingShift}
			for _, depth := range []int{1, 2, 4} {
				for _, budget := range budgets {
					name := fmt.Sprintf("seed%d/%v/depth%d/budget%d", seed, mode, depth, budget)
					t.Run(name, func(t *testing.T) {
						bad := bc.runPipeWorld(t, mode, depth, budget, nil, func(rank int, d *Descriptor) error {
							if got := d.LastPipelineDepth(); got < 1 || got > depth {
								return fmt.Errorf("rank %d: effective depth %d outside [1, %d]", rank, got, depth)
							}
							if budget > 0 {
								if peak := d.LastPeakStaging(); peak > int64(budget) {
									return fmt.Errorf("rank %d: peak staging %d exceeds budget %d", rank, peak, budget)
								}
							}
							return nil
						})
						if bad != 0 {
							t.Errorf("%s: %d ranks diverged from the brute oracle", name, bad)
						}
					})
				}
			}
		}
	}
}

// pipePlantWorld is the crafted geometry the planted-bug test needs to
// manifest deterministically: two ranks, five half-width row-pair chunks
// each (so the point-to-point exchange runs five rounds, more than the
// default depth), with needs whose overlap with every active remote
// chunk is a two-row strict sub-box — strided on both the pack and the
// unpack side, so each active round both holds its received payload
// across the pipeline window and stages its sends through the arena.
// That is exactly the collision the early-recycle perturbation needs: a
// held payload of round r freed early is drawn back out as round r+k's
// pack staging and overwritten before its unpack runs.
func pipePlantWorld() boundedCase {
	bc := boundedCase{nProcs: 2, layout: Layout2D, elemSize: 4}
	bc.chunks = make([][]grid.Box, 2)
	for i := 0; i < 5; i++ {
		bc.chunks[0] = append(bc.chunks[0], grid.Box2(0, 2*i, 4, 2))
		bc.chunks[1] = append(bc.chunks[1], grid.Box2(4, 2*i, 4, 2))
	}
	bc.needs = []grid.Box{grid.Box2(1, 2, 6, 6), grid.Box2(1, 2, 6, 6)}
	return bc
}

// TestPipelineHarnessCatchesPlantedBug proves the differential sweep has
// teeth against buffer-lifetime bugs: arming PerturbPipelineForTest —
// every round's held payloads recycled to the arena one iteration early,
// so the next round's pack staging draws them back out and overwrites
// them before the unpack batch reads them — must surface as a byte
// divergence on the perturbed rank. The same geometry runs clean first
// to prove the divergence comes from the perturbation alone.
func TestPipelineHarnessCatchesPlantedBug(t *testing.T) {
	if raceEnabled {
		t.Skip("the planted bug is a real buffer-lifetime data race; the detector fires before the divergence check can prove its teeth — make verify runs this test without -race")
	}
	bc := pipePlantWorld()
	if bad := bc.runPipeWorld(t, ModePointToPoint, 2, 0, nil, nil); bad != 0 {
		t.Fatalf("unperturbed run diverged on %d ranks; geometry is broken", bad)
	}
	bad := bc.runPipeWorld(t, ModePointToPoint, 2, 0, (*Descriptor).PerturbPipelineForTest, nil)
	if bad == 0 {
		t.Error("early-recycle perturbation produced oracle-identical output — the harness is blind to pipelined buffer-lifetime bugs")
	}
	// Depth 1 never holds a payload across an issue, so the planted bug
	// must be inert there — this pins that the bug (and the harness's
	// sensitivity) is specific to the pipelined window.
	if bad := bc.runPipeWorld(t, ModePointToPoint, 1, 0, (*Descriptor).PerturbPipelineForTest, nil); bad != 0 {
		t.Errorf("perturbation diverged %d ranks at depth 1; the serial path should never hold payloads across rounds", bad)
	}
}

// TestPipelineDepthClampedByBudget verifies the lease model's clamp: a
// budget of three single-shot footprints admits at most two rounds in
// flight (k+1 footprints must fit), however deep the configuration asks
// to go — and the measured peak proves the clamped window really stayed
// under the ceiling.
func TestPipelineDepthClampedByBudget(t *testing.T) {
	const procs, side, chunksPerRank = 4, 32, 6
	ownAll, needAll := stripWorld(procs, side, chunksPerRank, true)
	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		rank := c.Rank()
		probe, err := NewPlanFromGeometry(rank, 4, ownAll, needAll)
		if err != nil {
			return err
		}
		fp := probe.SingleShotFootprint(ModePointToPoint)
		if fp == 0 {
			return fmt.Errorf("strided strip world has zero footprint; the clamp has nothing to bite on")
		}
		d, err := NewDescriptor(procs, Layout2D, Float32,
			WithExchangeMode(ModePointToPoint), WithPipelineDepth(8), WithMemoryBudget(3*fp))
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, box := range ownAll[rank] {
			bufs[i] = fillBox(box, 4)
		}
		dst := make([]byte, needAll[rank].Volume()*4)
		if err := d.ReorganizeData(c, bufs, dst); err != nil {
			return err
		}
		if got := d.LastPipelineDepth(); got > 2 {
			return fmt.Errorf("budget %d (3 footprints of %d) ran depth %d, want at most 2", 3*fp, fp, got)
		}
		if peak := d.LastPeakStaging(); peak > int64(3*fp) {
			return fmt.Errorf("peak staging %d exceeds budget %d", d.LastPeakStaging(), 3*fp)
		}
		return checkBox(dst, needAll[rank], 4, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPipelineTimingsSubDurations pins the RoundTiming contract the
// overlap metric depends on: every round reports non-negative pack,
// wire, and unpack sub-durations, pack+unpack never exceeds the round's
// duration (the remainder is the unhidden wire time), and OverlapRatio
// computed from LastTimings alone lands in [0,1] and matches the
// descriptor's own LastOverlapRatio.
func TestPipelineTimingsSubDurations(t *testing.T) {
	const procs, side, chunksPerRank = 4, 32, 3
	ownAll, needAll := stripWorld(procs, side, chunksPerRank, true)
	for _, depth := range []int{1, 2} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			err := mpi.Launch(procs, func(c *mpi.Comm) error {
				rank := c.Rank()
				d, err := NewDescriptor(procs, Layout2D, Float32,
					WithExchangeMode(ModePointToPoint), WithPipelineDepth(depth))
				if err != nil {
					return err
				}
				if err := d.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
					return err
				}
				bufs := make([][]byte, len(ownAll[rank]))
				for i, box := range ownAll[rank] {
					bufs[i] = fillBox(box, 4)
				}
				dst := make([]byte, needAll[rank].Volume()*4)
				if err := d.ReorganizeData(c, bufs, dst); err != nil {
					return err
				}
				if got := d.LastPipelineDepth(); got != depth {
					return fmt.Errorf("effective depth %d, want %d", got, depth)
				}
				ts := d.LastTimings()
				if len(ts) != chunksPerRank {
					return fmt.Errorf("got %d round timings, want %d", len(ts), chunksPerRank)
				}
				const slack = time.Millisecond
				for i, rt := range ts {
					if rt.Round != i {
						return fmt.Errorf("timing %d reports round %d; retires must stay in round order", i, rt.Round)
					}
					if rt.Pack < 0 || rt.Wire < 0 || rt.Unpack < 0 || rt.Duration < 0 {
						return fmt.Errorf("round %d has a negative sub-duration: %+v", i, rt)
					}
					if rt.Pack+rt.Unpack > rt.Duration+slack {
						return fmt.Errorf("round %d pack %v + unpack %v exceeds duration %v", i, rt.Pack, rt.Unpack, rt.Duration)
					}
					if rt.WireBytes <= 0 {
						return fmt.Errorf("round %d reports %d wire bytes on an all-strided exchange", i, rt.WireBytes)
					}
				}
				ratio := OverlapRatio(ts)
				if ratio < 0 || ratio > 1 {
					return fmt.Errorf("OverlapRatio = %v, want within [0,1]", ratio)
				}
				if got := d.LastOverlapRatio(); got != ratio {
					return fmt.Errorf("LastOverlapRatio %v != OverlapRatio(LastTimings) %v", got, ratio)
				}
				return checkBox(dst, needAll[rank], 4, nil, 0)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipelineZeroAllocSteadyState proves the depth-2 pipelined path
// reaches the same steady state as the serial one: slot rings, job
// batches, and staging all recycle, so a replayed pipelined exchange
// allocates nothing.
func TestPipelineZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector allocates per cross-goroutine sync event; the pipelined path's race coverage comes from the differential sweep")
	}
	const procs, side, chunksPerRank = 2, 16, 4
	ownAll, needAll := stripWorld(procs, side, chunksPerRank, true)
	err := mpi.Launch(procs, func(c *mpi.Comm) error {
		rank := c.Rank()
		d, err := NewDescriptor(procs, Layout2D, Float32,
			WithExchangeMode(ModePointToPoint), WithPipelineDepth(2), WithParallelism(1))
		if err != nil {
			return err
		}
		if err := d.SetupDataMapping(c, ownAll[rank], needAll[rank]); err != nil {
			return err
		}
		bufs := make([][]byte, len(ownAll[rank]))
		for i, box := range ownAll[rank] {
			bufs[i] = fillBox(box, 4)
		}
		dst := make([]byte, needAll[rank].Volume()*4)
		for i := 0; i < 3; i++ { // reach steady state
			if err := d.ReorganizeData(c, bufs, dst); err != nil {
				return err
			}
		}
		if got := d.LastPipelineDepth(); got != 2 {
			return fmt.Errorf("effective depth %d, want 2", got)
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		// Only rank 0 measures: AllocsPerRun reads the process-wide malloc
		// counter, so a second concurrent measurement would count its own
		// bookkeeping into this rank's window. Rank 1 paces the same
		// number of exchanges (AllocsPerRun's warmup call plus its runs)
		// to keep the lockstep.
		if rank == 0 {
			allocs := testing.AllocsPerRun(50, func() {
				if err := d.ReorganizeData(c, bufs, dst); err != nil {
					t.Error(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%.1f allocs per steady-state pipelined ReorganizeData, want 0", allocs)
			}
		} else {
			for i := 0; i < 51; i++ {
				if err := d.ReorganizeData(c, bufs, dst); err != nil {
					return err
				}
			}
		}
		return checkBox(dst, needAll[rank], 4, nil, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWithPipelineDepthValidation pins the option's contract: the
// default is DefaultPipelineDepth, explicit depths echo back through the
// accessor, and a non-positive depth is rejected at construction.
func TestWithPipelineDepthValidation(t *testing.T) {
	d, err := NewDescriptor(2, Layout2D, Float32)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.PipelineDepth(); got != DefaultPipelineDepth {
		t.Errorf("default depth = %d, want DefaultPipelineDepth (%d)", got, DefaultPipelineDepth)
	}
	d, err = NewDescriptor(2, Layout2D, Float32, WithPipelineDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.PipelineDepth(); got != 4 {
		t.Errorf("configured depth = %d, want 4", got)
	}
	if _, err := NewDescriptor(2, Layout2D, Float32, WithPipelineDepth(0)); err == nil {
		t.Error("depth 0 accepted; want a construction error")
	}
}
