package core

import (
	"context"
	"fmt"
	"time"

	"ddr/internal/mpi"
	"ddr/internal/trace"
)

// Execution of the bounded step schedule (see bounded.go for the
// compiler). Each step runs in two phases that never overlap on a rank:
// first every send slice of the step is packed — through metered staging
// buffers unless the zero-copy fast path applies — and handed to the
// transport (whose sends copy eagerly, so staging recycles before any
// receive posts); then every receive slice's payload is taken from the
// transport, charged against the meter while held, and placed into the
// need buffer. The step packer charged each slice's class-rounded size
// to both its source and destination rank within a step, so the measured
// high-water mark of either phase stays under the configured budget.
//
// The staging arena is always used on this path regardless of
// WithBufferPooling: the budget is defined in terms of the arena's class
// sizes, and bypassing the pool would change what the meter measures
// without changing what the process allocates.

// stageBounded takes a metered staging buffer from the arena.
func (d *Descriptor) stageBounded(n int) []byte {
	return mpi.GetBufferMetered(n, &d.meter)
}

// unstageBounded releases a metered staging buffer back to the arena.
func (d *Descriptor) unstageBounded(b []byte) {
	mpi.PutBufferMetered(b, &d.meter)
}

// chargeRecv charges a received payload's full capacity (its arena class)
// against the meter for as long as the exchange holds it.
func (d *Descriptor) chargeRecv(b []byte) {
	d.meter.Acquire(cap(b))
}

// releaseRecvBounded drops a received payload's charge and recycles it.
func (d *Descriptor) releaseRecvBounded(b []byte) {
	d.meter.Release(cap(b))
	mpi.PutBuffer(b)
}

// selfSlice moves one slice whose source and destination are both this
// rank, without touching the transport.
func (d *Descriptor) selfSlice(sl *boundedSlice, src, need []byte) {
	n := sl.bytes
	switch {
	case d.zcSend && d.zcRecv && sl.sendSpan.ok && sl.recvSpan.ok:
		copy(need[sl.recvSpan.off:sl.recvSpan.off+n], src[sl.sendSpan.off:sl.sendSpan.off+n])
	case d.zcSend && sl.sendSpan.ok:
		sl.recvT.Unpack(src[sl.sendSpan.off:sl.sendSpan.off+n], need)
	case d.zcRecv && sl.recvSpan.ok:
		sl.sendT.Pack(src, need[sl.recvSpan.off:sl.recvSpan.off+n])
	default:
		wire := d.stageBounded(n)
		sl.sendT.Pack(src, wire)
		sl.recvT.Unpack(wire, need)
		d.unstageBounded(wire)
	}
}

// exchangeBounded performs the whole redistribution as the plan's bounded
// step sequence. Semantically identical to the one-shot exchanges — the
// union of all slices is exactly the set of (chunk × need) overlaps — but
// with per-rank staging bounded by the descriptor's budget.
func (d *Descriptor) exchangeBounded(ctx context.Context, o *exchObs, c *mpi.Comm, own [][]byte, need []byte, ps *partialState) error {
	p := d.plan
	b := p.bounded
	s := &d.scratch
	d.meter.ResetPeak()
	traced := o.tracing() || d.flight != nil

	for step := 0; step < b.steps; step++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				if ps == nil || (ps.uctx != nil && ps.uctx.Err() != nil) {
					return err
				}
				// The exchange deadline is spent: give up on every source
				// still owed data in the remaining steps and report what
				// landed rather than abort with the buffer state unknown.
				for _, idx := range b.recvIdx[b.recvOff[step]:] {
					sl := &b.slices[idx]
					ps.markLost(sl.src, sl.step)
				}
				if ps.cause == nil {
					ps.cause = fmt.Errorf("core: exchange deadline %v exhausted after step %d: %w",
						d.deadline, step, mpi.ErrExchangeTimeout)
				}
				break
			}
		}
		if traced {
			c.SetTraceContext(mpi.TraceContext{Exchange: d.lastExchID, Round: uint32(step)})
		}
		stepStart := time.Now()
		var stepWire int64

		// Send phase: self slices place immediately; remote slices pack
		// (staged through the meter unless contiguous and zero-copy) and
		// go to the transport. All of the step's staging is held at once
		// — that simultaneity is exactly what the packer budgeted.
		s.wires = s.wires[:0]
		s.staged = s.staged[:0]
		sends := b.sendIdx[b.sendOff[step]:b.sendOff[step+1]]
		for _, idx := range sends {
			sl := &b.slices[idx]
			if sl.dst == p.rank {
				d.selfSlice(sl, own[sl.chunk], need)
				continue
			}
			if d.zcSend && sl.sendSpan.ok {
				s.wires = append(s.wires, own[sl.chunk][sl.sendSpan.off:sl.sendSpan.off+sl.bytes])
				continue
			}
			wire := d.stageBounded(sl.bytes)
			d.eng.add(exchJob{t: sl.sendT, local: own[sl.chunk], wire: wire, peer: sl.dst})
			s.wires = append(s.wires, wire)
			s.staged = append(s.staged, wire)
		}
		d.eng.run(o)
		w := 0
		for _, idx := range sends {
			sl := &b.slices[idx]
			if sl.dst == p.rank {
				continue
			}
			wire := s.wires[w]
			w++
			stepWire += int64(sl.bytes)
			if ps.isLost(sl.dst) {
				continue
			}
			var err error
			if ctx == nil {
				err = c.Send(sl.dst, sl.tag, wire)
			} else {
				// Context-bound sends always copy eagerly, so the staging
				// recycle below stays unconditional.
				err = c.SendCtx(ctx, sl.dst, sl.tag, wire)
			}
			if err != nil {
				if ps.degrade(sl.dst, sl.step, err) {
					continue
				}
				return err
			}
		}
		// Send copies eagerly, so staging buffers recycle before any
		// receive payload is held — the phases never stack on the meter.
		for _, wire := range s.staged {
			d.unstageBounded(wire)
		}
		s.staged = s.staged[:0]
		issued := time.Now()

		// Receive phase: every payload is charged against the meter from
		// delivery until placement. Slices carry unique tags, so delivery
		// order across steps cannot mismatch a receive.
		s.datas = s.datas[:0]
		recvs := b.recvIdx[b.recvOff[step]:b.recvOff[step+1]]
		if ctx == nil {
			for _, idx := range recvs {
				sl := &b.slices[idx]
				var waitStart time.Time
				if o.tracing() {
					waitStart = time.Now()
				}
				data, _, _, err := c.Recv(sl.src, sl.tag)
				if err != nil {
					return err
				}
				if o.tracing() {
					o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", sl.src),
						Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(step), Peer: int32(sl.src)},
						waitStart, time.Now())
				}
				if err := d.acceptSlice(o, sl, data, need); err != nil {
					return err
				}
			}
		} else {
			s.reqs = s.reqs[:0]
			for _, idx := range recvs {
				sl := &b.slices[idx]
				if ps.isLost(sl.src) {
					// Nothing is coming: our own send already failed or the
					// source was lost in an earlier step.
					s.reqs = append(s.reqs, nil)
					continue
				}
				s.reqs = append(s.reqs, c.Irecv(sl.src, sl.tag))
			}
			for i, idx := range recvs {
				if s.reqs[i] == nil {
					continue
				}
				sl := &b.slices[idx]
				var waitStart time.Time
				if o.tracing() {
					waitStart = time.Now()
				}
				data, _, _, err := s.reqs[i].WaitCtx(ctx)
				if err != nil {
					if ps.degrade(sl.src, sl.step, err) {
						continue
					}
					return err
				}
				if o.tracing() {
					o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("wait<-%d", sl.src),
						Bytes: int64(len(data)), Exchange: d.lastExchID, Round: int32(step), Peer: int32(sl.src)},
						waitStart, time.Now())
				}
				if err := d.acceptSlice(o, sl, data, need); err != nil {
					return err
				}
			}
		}
		wireDone := time.Now()
		d.eng.run(o)
		for _, data := range s.datas {
			d.releaseRecvBounded(data)
		}
		s.datas = s.datas[:0]

		end := time.Now()
		d.timings = append(d.timings, RoundTiming{
			Round:     step,
			Duration:  end.Sub(stepStart),
			Pack:      issued.Sub(stepStart),
			Wire:      wireDone.Sub(issued),
			Unpack:    end.Sub(wireDone),
			WireBytes: stepWire,
		})
		if o.on() {
			o.roundLat.Observe(end.Sub(stepStart).Seconds())
		}
		if o.tracing() {
			o.rec.StampSpan(trace.Event{Rank: o.rank, Name: fmt.Sprintf("step-%d", step),
				Exchange: d.lastExchID, Round: int32(step), Peer: -1}, stepStart, end)
		}
	}
	d.lastPeakStaging = d.meter.Peak()
	return nil
}

// acceptSlice consumes one received slice payload: contiguous
// destinations copy straight into the need buffer and recycle the
// payload; strided ones are batched for the unpack phase (and recycled
// after the batch runs). The payload's charge is held either way until
// its bytes have landed.
func (d *Descriptor) acceptSlice(o *exchObs, sl *boundedSlice, data, need []byte) error {
	d.chargeRecv(data)
	if len(data) != sl.bytes {
		d.releaseRecvBounded(data)
		return fmt.Errorf("core: expected %d bytes from rank %d (slice tag %d), got %d",
			sl.bytes, sl.src, sl.tag, len(data))
	}
	if d.zcRecv && sl.recvSpan.ok {
		directUnpack(o, need[sl.recvSpan.off:sl.recvSpan.off+sl.recvSpan.n], data, sl.src)
		d.releaseRecvBounded(data)
		return nil
	}
	d.eng.add(exchJob{t: sl.recvT, local: need, wire: data, unpack: true, peer: sl.src})
	d.scratch.datas = append(d.scratch.datas, data)
	return nil
}
