package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/mpi"
)

// The pack/unpack engine: every staging copy of an exchange is expressed
// as an exchJob, batched per phase, and executed by a per-descriptor
// worker pool. Jobs address disjoint byte regions — packs read immutable
// owned buffers into distinct wire buffers, unpacks scatter distinct wire
// buffers into disjoint need regions (DDR's exclusive-ownership
// precondition) — so a batch executes correctly at any parallelism.

// exchJob is one pack or unpack between a local array and a wire buffer.
type exchJob struct {
	t      datatype.Type
	local  []byte
	wire   []byte
	unpack bool
	peer   int // trace label only
}

// do executes the copy, recording the per-peer span and latency when
// observation is attached. Trace recorders and histograms are
// goroutine-safe, so do may run on a pool worker.
func (j *exchJob) do(o *exchObs) {
	if !o.on() {
		if j.unpack {
			j.t.Unpack(j.wire, j.local)
		} else {
			j.t.Pack(j.local, j.wire)
		}
		return
	}
	start := time.Now()
	if j.unpack {
		j.t.Unpack(j.wire, j.local)
	} else {
		j.t.Pack(j.local, j.wire)
	}
	now := time.Now()
	if o.rec != nil {
		name := fmt.Sprintf("pack->%d", j.peer)
		if j.unpack {
			name = fmt.Sprintf("unpack<-%d", j.peer)
		}
		o.rec.AddSpan(o.rank, name, start, now, int64(len(j.wire)))
	}
	if j.unpack {
		o.unpackLat.Observe(now.Sub(start).Seconds())
	} else {
		o.packLat.Observe(now.Sub(start).Seconds())
	}
}

// engine batches jobs for one exchange phase and runs them across the
// descriptor's worker pool. The job slice is reused across calls, so the
// steady state adds nothing to the garbage collector.
type engine struct {
	par  int // worker count; <= 0 means GOMAXPROCS
	jobs []exchJob
}

func (e *engine) reset() { e.jobs = e.jobs[:0] }

func (e *engine) add(j exchJob) { e.jobs = append(e.jobs, j) }

// run executes the batched jobs and resets the batch. Workers claim jobs
// from a shared atomic cursor so imbalanced region sizes still spread
// across the pool; a single worker (or single job) runs inline on the
// calling goroutine with no synchronization.
func (e *engine) run(o *exchObs) {
	e.runJobs(o, e.jobs)
	e.reset()
}

// runJobs executes an externally owned job batch on the same worker
// pool, leaving the engine's own batch untouched. Pipelined exchanges
// keep per-round job lists alive across several loop iterations (round
// r's unpack batch outlives round r+1's pack batch), so they cannot
// share the engine's single reusable slice.
func (e *engine) runJobs(o *exchObs, jobs []exchJob) {
	n := len(jobs)
	if n == 0 {
		return
	}
	par := e.par
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par == 1 {
		for i := range jobs {
			jobs[i].do(o)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				jobs[i].do(o)
			}
		}()
	}
	wg.Wait()
}

// exchScratch is the per-call working state ReorganizeData reuses across
// calls so a replayed plan's exchanges are allocation-free.
type exchScratch struct {
	wires  [][]byte       // per-send-peer outgoing wire (staged or zero-copy alias)
	staged [][]byte       // staged wires to recycle once sent
	datas  [][]byte       // received payloads pending the unpack batch
	reqs   []*mpi.Request // cancellable-path receive requests
	slots  []pipeSlot     // pipelined-mode ring of in-flight round state

	// Dense alltoallw rows, materialized per round from the plan's sparse
	// tables (the collective's wire format wants one slot per peer).
	// Allocated once per descriptor and reset to the Empty sentinel after
	// each call, so the steady state allocates nothing.
	rowSend []datatype.Type
	rowRecv []datatype.Type
}

// parallelism resolves the configured worker count, defaulting to
// GOMAXPROCS.
func (d *Descriptor) parallelism() int {
	if d.eng.par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return d.eng.par
}

// stage returns a wire buffer of n bytes, drawn from the shared arena
// when pooling is enabled.
func (d *Descriptor) stage(n int) []byte {
	if d.pooled {
		return mpi.GetBuffer(n)
	}
	return make([]byte, n)
}

// unstage recycles a staging buffer obtained from stage.
func (d *Descriptor) unstage(b []byte) {
	if d.pooled {
		mpi.PutBuffer(b)
	}
}

// releaseRecv returns a received message payload to the staging arena.
// Unlike unstage it is unconditional: every payload a Recv hands out is
// arena-backed (the in-process transport's eager copy and the TCP read
// loop both draw from the arena), so the consumer returns it regardless
// of how this descriptor stages its own sends. This is the ownership
// hand-off that keeps the zero-copy TCP receive path allocation-free.
func (d *Descriptor) releaseRecv(b []byte) {
	mpi.PutBuffer(b)
}

// directUnpack copies an already-contiguous payload straight into the
// destination span, bypassing the scatter loop, while still reporting the
// copy as an unpack (it is one — just a fast one).
func directUnpack(o *exchObs, dst, src []byte, peer int) {
	if !o.on() {
		copy(dst, src)
		return
	}
	start := time.Now()
	copy(dst, src)
	now := time.Now()
	if o.rec != nil {
		o.rec.AddSpan(o.rank, fmt.Sprintf("unpack<-%d", peer), start, now, int64(len(src)))
	}
	o.unpackLat.Observe(now.Sub(start).Seconds())
}
