package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// stripGeometry returns a transpose layout for 4 ranks over a 16x16
// domain: horizontal owned strips redistributed into vertical need
// strips. Every send region is strided in the owned buffer (4-wide rows
// of a 16-wide array), exercising the gather paths the autotuner
// chooses between; receives land contiguously. transposed swaps the
// roles so receives are the strided side instead.
func stripGeometry(rank int, transposed bool) (own []grid.Box, need grid.Box) {
	horizontal := grid.Box2(0, 4*rank, 16, 4)
	vertical := grid.Box2(4*rank, 0, 4, 16)
	if transposed {
		return []grid.Box{vertical}, horizontal
	}
	return []grid.Box{horizontal}, vertical
}

// TestPackStrategiesByteIdentical proves the three pack strategies (and
// the measured auto selection) produce byte-identical results: every
// element of the need buffer matches the canonical pattern regardless
// of how regions were gathered and scattered, across all exchange modes
// and both strided directions.
func TestPackStrategiesByteIdentical(t *testing.T) {
	strategies := []PackStrategy{StrategyAuto, StrategyZeroCopy, StrategyPack, StrategyDatatype}
	for _, mode := range []ExchangeMode{ModeAlltoallw, ModePointToPoint, ModePointToPointFused} {
		for _, strat := range strategies {
			for _, transposed := range []bool{false, true} {
				name := fmt.Sprintf("%v/%v/transposed=%v", mode, strat, transposed)
				t.Run(name, func(t *testing.T) {
					err := mpi.Launch(4, func(c *mpi.Comm) error {
						own, need := stripGeometry(c.Rank(), transposed)
						desc, err := NewDescriptor(4, Layout2D, Float32,
							WithExchangeMode(mode), WithPackStrategy(strat))
						if err != nil {
							return err
						}
						if err := desc.SetupDataMapping(c, own, need); err != nil {
							return err
						}
						ownBufs := [][]byte{fillBox(own[0], 4)}
						needBuf := make([]byte, need.Volume()*4)
						if err := desc.ReorganizeData(c, ownBufs, needBuf); err != nil {
							return err
						}
						return checkBox(needBuf, need, 4, nil, 0)
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestForcedStrategyResolves checks WithPackStrategy pins both
// directions and that compiled run lists replace the strided entries
// only under the pack strategy.
func TestForcedStrategyResolves(t *testing.T) {
	for _, strat := range []PackStrategy{StrategyZeroCopy, StrategyPack, StrategyDatatype} {
		err := mpi.Launch(2, func(c *mpi.Comm) error {
			own := []grid.Box{grid.Box2(0, 4*c.Rank(), 8, 4)}
			need := grid.Box2(4*c.Rank(), 0, 4, 8)
			desc, err := NewDescriptor(2, Layout2D, Uint8, WithPackStrategy(strat))
			if err != nil {
				return err
			}
			if err := desc.SetupDataMapping(c, own, need); err != nil {
				return err
			}
			needBuf := make([]byte, need.Volume())
			if err := desc.ReorganizeData(c, [][]byte{fillBox(own[0], 1)}, needBuf); err != nil {
				return err
			}
			s, r := desc.PackDecision()
			if s != strat || r != strat {
				return fmt.Errorf("decision (%v,%v), want %v", s, r, strat)
			}
			zc := strat != StrategyDatatype
			if desc.zcSend != zc || desc.zcRecv != zc {
				return fmt.Errorf("gates (%v,%v) for %v", desc.zcSend, desc.zcRecv, strat)
			}
			return checkBox(needBuf, need, 1, nil, 0)
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

// TestAutotuneOffKeepsStaticChoice verifies WithAutotune(false) restores
// the WithZeroCopy-implied static behaviour without probing.
func TestAutotuneOffKeepsStaticChoice(t *testing.T) {
	ResetAutotuneCache()
	before := AutotuneProbeCount()
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		ownB := []grid.Box{grid.Box2(0, 8*c.Rank(), 16, 8)}
		needB := grid.Box2(8*c.Rank(), 0, 8, 16)
		for _, zc := range []bool{true, false} {
			desc, err := NewDescriptor(2, Layout2D, Uint8, WithAutotune(false), WithZeroCopy(zc))
			if err != nil {
				return err
			}
			if err := desc.SetupDataMapping(c, ownB, needB); err != nil {
				return err
			}
			needBuf := make([]byte, needB.Volume())
			if err := desc.ReorganizeData(c, [][]byte{fillBox(ownB[0], 1)}, needBuf); err != nil {
				return err
			}
			want := StrategyZeroCopy
			if !zc {
				want = StrategyDatatype
			}
			if s, r := desc.PackDecision(); s != want || r != want {
				return fmt.Errorf("zeroCopy=%v resolved (%v,%v)", zc, s, r)
			}
			if err := checkBox(needBuf, needB, 1, nil, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := AutotuneProbeCount() - before; got != 0 {
		t.Fatalf("static selection ran %d probes", got)
	}
}

// TestAutotuneProbesOnce asserts the acceptance property: the microprobe
// runs at most once per (geometry, transport, direction), no matter how
// many ranks share the process, how many exchanges replay the plan, or
// how many descriptors map the same geometry — and the decision is
// visible in the metrics registry.
func TestAutotuneProbesOnce(t *testing.T) {
	ResetAutotuneCache()
	before := AutotuneProbeCount()
	reg := obs.NewRegistry()
	run := func() error {
		return mpi.Launch(4, func(c *mpi.Comm) error {
			own, need := stripGeometry(c.Rank(), false)
			desc, err := NewDescriptor(4, Layout2D, Float32, WithMetrics(reg))
			if err != nil {
				return err
			}
			if err := desc.SetupDataMapping(c, own, need); err != nil {
				return err
			}
			ownBufs := [][]byte{fillBox(own[0], 4)}
			needBuf := make([]byte, need.Volume()*4)
			for i := 0; i < 3; i++ { // replays must not re-probe
				if err := desc.ReorganizeData(c, ownBufs, needBuf); err != nil {
					return err
				}
			}
			if s, r := desc.PackDecision(); s == StrategyAuto || r == StrategyAuto {
				return fmt.Errorf("exchange left strategies unresolved (%v,%v)", s, r)
			}
			return checkBox(needBuf, need, 4, nil, 0)
		})
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	probes := AutotuneProbeCount() - before
	if probes > 2 {
		t.Fatalf("first use ran %d probes, want at most 2 (one per direction)", probes)
	}
	// A second world mapping the same geometry over the same transport
	// reuses every decision.
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if again := AutotuneProbeCount() - before; again != probes {
		t.Fatalf("replayed geometry re-probed: %d -> %d", probes, again)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ddr_pack_strategy_selected_total") {
		t.Error("pack-strategy decisions missing from metrics output")
	}
}

// TestTopologyKeyedPlanFingerprint proves the plan-cache key includes
// the node topology: one geometry mapped on a flat world and on a
// hierarchical two-node world must fingerprint differently, while two
// identical placements agree.
func TestTopologyKeyedPlanFingerprint(t *testing.T) {
	fpFor := func(launch func(int, func(*mpi.Comm) error) error) uint64 {
		t.Helper()
		var fp uint64
		err := launch(4, func(c *mpi.Comm) error {
			own, need := stripGeometry(c.Rank(), false)
			desc, err := NewDescriptor(4, Layout2D, Float32)
			if err != nil {
				return err
			}
			if err := desc.SetupDataMapping(c, own, need); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fp = desc.plan.fp
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	flat := fpFor(mpi.RunShm)
	hier := fpFor(func(n int, body func(*mpi.Comm) error) error {
		return mpi.RunHier(n, mpi.NodesOf(n, 2), body)
	})
	hier2 := fpFor(func(n int, body func(*mpi.Comm) error) error {
		return mpi.RunHier(n, mpi.NodesOf(n, 2), body)
	})
	if flat == hier {
		t.Fatalf("flat and hierarchical placements share fingerprint %016x", flat)
	}
	if hier != hier2 {
		t.Fatalf("identical placements disagree: %016x vs %016x", hier, hier2)
	}
}
