// Execution of delta plans: one exchange round that carries only the
// changed-ownership bytes of an elastic resize. The executor mirrors the
// point-to-point engine in reorganize.go — eager buffered sends so the
// sequential send-then-receive order cannot deadlock, and the same
// graceful-degradation contract: with a deadline armed, peer-loss and
// timeout failures park the peer on a lost list and the call completes
// with a *PartialError naming the new-need regions that never arrived
// (their cells stay untouched, per the paper's incomplete-receive rule).
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// deltaTag is the tag of the resize exchange round. It sits in the DDR
// reserved range above the per-round exchange tags so a resize can be
// in flight on a communicator without colliding with steady-state
// redistribution traffic (or with fault schedules that target it).
const deltaTag = ddrTagBase + (1 << 19)

// DeltaExchangeTag exports the resize round's tag so fault-injection
// schedules can target (or spare) resize traffic specifically.
const DeltaExchangeTag = deltaTag

// Exchange executes the resize move fail-fast: oldData holds this rank's
// old need box, newData receives the new one (nil for an empty side).
// Cells of the new need covered by no old rank are left untouched.
func (p *DeltaPlan) Exchange(c *mpi.Comm, oldData, newData []byte) error {
	return p.ExchangeCtx(nil, c, oldData, newData, 0)
}

// ExchangeCtx is Exchange with cancellation and graceful degradation: a
// positive deadline bounds the whole exchange, and within it peer-loss
// or timeout failures degrade the move instead of aborting — the call
// returns a *PartialError whose Missing boxes are the new-need regions
// whose old holder was lost. ctx cancellation always aborts.
func (p *DeltaPlan) ExchangeCtx(ctx context.Context, c *mpi.Comm, oldData, newData []byte, deadline time.Duration) error {
	if ctx != nil {
		if ctx.Done() == nil {
			ctx = nil
		} else if err := ctx.Err(); err != nil {
			return err
		}
	}
	if c.Size() != p.nRanks || c.Rank() != p.rank {
		return fmt.Errorf("core: communicator does not match the one the delta plan was compiled for: %w", ErrCommMismatch)
	}
	if want := p.volBytes(p.oldNeed); len(oldData) != want {
		return fmt.Errorf("core: old buffer has %d bytes, box %v needs %d: %w", len(oldData), p.oldNeed, want, ErrBufferSize)
	}
	if want := p.volBytes(p.newNeed); len(newData) != want {
		return fmt.Errorf("core: new buffer has %d bytes, box %v needs %d: %w", len(newData), p.newNeed, want, ErrBufferSize)
	}

	var ps *partialState
	if deadline > 0 {
		ps = &partialState{uctx: ctx, lost: make(map[int]int)}
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, deadline)
		defer cancel()
	}

	// Local retention first: the bytes that never touch the wire.
	p.copyKeeps(oldData, newData)

	// Send phase: one concatenated message per peer, segments in the
	// plan's grouped order (identical on both sides by construction).
	var staged [][]byte
	for i, peer := range p.sendPeers {
		lo, hi := p.sendOff[i], p.sendOff[i+1]
		n := 0
		for j := lo; j < hi; j++ {
			n += p.sendTypes[j].PackedSize()
		}
		wire := mpi.GetBuffer(n)
		off := 0
		for j := lo; j < hi; j++ {
			off += p.sendTypes[j].Pack(oldData, wire[off:])
		}
		staged = append(staged, wire)
		if ps.isLost(peer) {
			continue
		}
		var err error
		if ctx == nil {
			err = c.Send(peer, deltaTag, wire)
		} else {
			err = c.SendCtx(ctx, peer, deltaTag, wire)
		}
		if err != nil {
			if ps.degrade(peer, 0, err) {
				continue
			}
			for _, w := range staged {
				mpi.PutBuffer(w)
			}
			return err
		}
	}
	// Sends copy eagerly, so the staging buffers recycle immediately.
	for _, w := range staged {
		mpi.PutBuffer(w)
	}

	// Receive phase: delivery is eager and buffered, so receiving in
	// plan order cannot deadlock.
	if ctx == nil {
		for i, peer := range p.recvPeers {
			data, _, _, err := c.Recv(peer, deltaTag)
			if err != nil {
				return err
			}
			if err := p.acceptDelta(i, peer, data, newData); err != nil {
				return err
			}
		}
	} else {
		reqs := make([]*mpi.Request, len(p.recvPeers))
		for i, peer := range p.recvPeers {
			if ps.isLost(peer) {
				continue
			}
			reqs[i] = c.Irecv(peer, deltaTag)
		}
		for i, peer := range p.recvPeers {
			if reqs[i] == nil {
				continue
			}
			data, _, _, err := reqs[i].WaitCtx(ctx)
			if err != nil {
				if ps.degrade(peer, 0, err) {
					continue
				}
				return err
			}
			if err := p.acceptDelta(i, peer, data, newData); err != nil {
				return err
			}
		}
	}
	return p.partialError(ps)
}

func (p *DeltaPlan) volBytes(b grid.Box) int {
	if boxEmpty(b) {
		return 0
	}
	return b.Volume() * p.elemSize
}

// copyKeeps moves the retained regions from the old buffer to the new
// one through a single staging buffer (the boxes may be strided in both
// layouts, and old and new buffers can alias only when the need boxes
// are identical — in which case there is nothing else to move).
func (p *DeltaPlan) copyKeeps(oldData, newData []byte) {
	max := 0
	for _, t := range p.keepSrc {
		if n := t.PackedSize(); n > max {
			max = n
		}
	}
	if max == 0 {
		return
	}
	stage := mpi.GetBuffer(max)
	for i, src := range p.keepSrc {
		n := src.Pack(oldData, stage)
		p.keepDst[i].Unpack(stage[:n], newData)
	}
	mpi.PutBuffer(stage)
}

// acceptDelta consumes one received per-peer payload, splitting it into
// its region segments in the grouped order the sender packed them.
func (p *DeltaPlan) acceptDelta(i, peer int, data, newData []byte) error {
	lo, hi := p.recvOff[i], p.recvOff[i+1]
	want := 0
	for j := lo; j < hi; j++ {
		want += p.recvTypes[j].PackedSize()
	}
	if len(data) != want {
		return fmt.Errorf("core: expected %d resize bytes from rank %d, got %d", want, peer, len(data))
	}
	off := 0
	for j := lo; j < hi; j++ {
		off += p.recvTypes[j].Unpack(data[off:], newData)
	}
	return nil
}

// partialError builds the resize completion report: the sorted lost-peer
// set plus the new-need regions whose old holder was lost. Those regions
// were never unpacked, so their cells hold whatever newData held before.
func (p *DeltaPlan) partialError(ps *partialState) error {
	if ps == nil || len(ps.lost) == 0 {
		return nil
	}
	lost := make([]int, 0, len(ps.lost))
	for r := range ps.lost {
		lost = append(lost, r)
	}
	sort.Ints(lost)
	var missing []grid.Box
	for _, r := range p.recvs {
		if _, ok := ps.lost[r.Peer]; ok {
			missing = append(missing, r.Region)
		}
	}
	return &PartialError{LostPeers: lost, Missing: missing, Cause: ps.cause}
}
