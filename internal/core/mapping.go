package core

import (
	"fmt"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Plan is the compiled communication schedule produced by
// SetupDataMapping. It is immutable and may be replayed by
// ReorganizeData any number of times while the data layout stays the
// same — only the data values need to be fresh (the paper's "dynamic
// data" property).
type Plan struct {
	elemSize int
	rank     int
	nProcs   int
	rounds   int

	myChunks []grid.Box
	need     grid.Box

	allChunks [][]grid.Box // [rank][chunk]
	allNeeds  []grid.Box   // [rank]

	send [][]datatype.Type // [round][peer], packing from the round's chunk buffer
	recv [][]datatype.Type // [round][peer], scattering into the need buffer

	sendPeers [][]int // [round] peers with non-empty sends (excluding self)
	recvPeers [][]int // [round] peers with non-empty receives (excluding self)

	// Contiguity of each entry in its local array, detected at compile
	// time so the exchange fast paths pay no per-call analysis. A
	// contiguous send needs no pack (the wire bytes are a sub-slice of the
	// owned buffer); a contiguous receive needs no scatter (the payload is
	// copied straight into the need buffer).
	sendSpan [][]contigSpan // [round][peer]
	recvSpan [][]contigSpan // [round][peer]

	// Fused-mode schedule, precomputed so the fused exchange allocates
	// nothing per call: the peers this rank exchanges fused messages with,
	// the total fused bytes per peer, and — when exactly one round
	// contributes to a peer's message — that round's index (enabling the
	// zero-copy send/receive of a single contiguous region).
	fusedSendPeers []int
	fusedRecvPeers []int
	fusedSendBytes []int // [peer]
	fusedRecvBytes []int // [peer]
	fusedSendOne   []int // [peer] sole contributing round, or -1
	fusedRecvOne   []int // [peer] sole contributing round, or -1
}

// contigSpan records whether a plan entry is contiguous in its local
// array and, if so, where.
type contigSpan struct {
	off, n int
	ok     bool
}

// Rounds returns the number of exchange rounds, which equals the maximum
// number of chunks owned by any single rank (paper §III-C).
func (p *Plan) Rounds() int { return p.rounds }

// Need returns the box this rank receives.
func (p *Plan) Need() grid.Box { return p.need }

// MyChunks returns the boxes this rank contributed as owned data.
func (p *Plan) MyChunks() []grid.Box { return p.myChunks }

// SetupDataMapping computes the data mapping between all ranks. It is a
// collective call: every rank passes the chunks it currently owns (any
// number, including zero) and the single contiguous box it needs after
// redistribution. It corresponds to DDR_SetupDataMapping(rank, nProcs,
// nChunks, ownDims, ownOffsets, needDims, needOffsets, desc) — rank and
// nProcs come from the communicator and each (dims, offset) pair is a
// grid.Box.
//
// Owned chunks must be mutually exclusive across ranks and collectively
// complete over the domain; need boxes may overlap and need not cover the
// domain (paper §III-B). With WithValidation the exclusivity/completeness
// precondition is checked collectively and violations are reported.
func (d *Descriptor) SetupDataMapping(c *mpi.Comm, own []grid.Box, need grid.Box) error {
	if c.Size() != d.nProcs {
		return fmt.Errorf("core: descriptor is for %d processes but communicator has %d: %w",
			d.nProcs, c.Size(), ErrCommMismatch)
	}
	if err := d.checkBoxDims(need, "need"); err != nil {
		return err
	}
	for i, b := range own {
		if err := d.checkBoxDims(b, fmt.Sprintf("owned chunk %d", i)); err != nil {
			return err
		}
	}

	d.buildObs(c.WorldRank(c.Rank()))
	o := d.obsv
	var mapStart time.Time
	if o.on() {
		mapStart = time.Now()
	}
	endSpan := d.tracer.Span(o.Rank(c), "mapping", 0)
	defer endSpan()
	packed, err := c.Allgather(encodeGeometry(need, own))
	if err != nil {
		return fmt.Errorf("core: geometry exchange: %w", err)
	}
	allChunks := make([][]grid.Box, c.Size())
	allNeeds := make([]grid.Box, c.Size())
	for r, buf := range packed {
		allNeeds[r], allChunks[r], err = decodeGeometry(buf)
		if err != nil {
			return fmt.Errorf("core: geometry from rank %d: %w", r, err)
		}
	}

	if d.validate {
		if err := validateOwnership(allChunks); err != nil {
			return err
		}
	}

	var compileStart time.Time
	if o.on() {
		compileStart = time.Now()
	}
	plan, err := compilePlan(c.Rank(), d.elemSize, allChunks, allNeeds)
	if err != nil {
		return err
	}
	if o.on() {
		now := time.Now()
		o.rec.AddSpan(o.rank, "compile", compileStart, now, 0)
		o.planCompile.Observe(now.Sub(mapStart).Seconds())
	}
	d.plan = plan
	return nil
}

// Rank returns the trace lane for spans recorded against the
// communicator: the world rank when observation is attached, the local
// rank otherwise (matching the pre-telemetry behaviour).
func (o *exchObs) Rank(c *mpi.Comm) int {
	if o == nil {
		return c.Rank()
	}
	return o.rank
}

// validateOwnership enforces the paper's sending-side precondition: the
// owned chunks of all ranks are pairwise disjoint and tile their bounding
// box exactly.
func validateOwnership(allChunks [][]grid.Box) error {
	var flat []grid.Box
	owner := make([]int, 0)
	for r, chunks := range allChunks {
		for _, b := range chunks {
			flat = append(flat, b)
			owner = append(owner, r)
		}
	}
	domain, ok := grid.BoundingBox(flat)
	if !ok {
		return fmt.Errorf("core: no rank owns any data")
	}
	if err := grid.VerifyTiling(domain, flat); err != nil {
		if ce, ok := err.(*grid.CoverageError); ok && ce.Overlap != nil {
			return fmt.Errorf("core: owned data is not mutually exclusive: rank %d chunk %v overlaps rank %d chunk %v",
				owner[ce.Overlap[0]], flat[ce.Overlap[0]], owner[ce.Overlap[1]], flat[ce.Overlap[1]])
		}
		return fmt.Errorf("core: owned data does not tile the domain %v: %w", domain, err)
	}
	return nil
}

// NewPlanFromGeometry compiles a communication plan directly from a full
// global geometry description without any communication: allChunks[r]
// lists the chunks rank r owns and allNeeds[r] the box it needs. This is
// the offline twin of SetupDataMapping, used for schedule analysis (the
// paper's Table III) and capacity planning at scales larger than the
// running world.
func NewPlanFromGeometry(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", elemSize)
	}
	if len(allChunks) != len(allNeeds) {
		return nil, fmt.Errorf("core: %d chunk lists for %d need boxes", len(allChunks), len(allNeeds))
	}
	if rank < 0 || rank >= len(allNeeds) {
		return nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, len(allNeeds))
	}
	return compilePlan(rank, elemSize, allChunks, allNeeds)
}

// compilePlan builds the per-round send/recv datatypes from the gathered
// global geometry.
func compilePlan(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	nProcs := len(allNeeds)
	rounds := 0
	for _, chunks := range allChunks {
		rounds = max(rounds, len(chunks))
	}
	p := &Plan{
		elemSize:  elemSize,
		rank:      rank,
		nProcs:    nProcs,
		rounds:    rounds,
		myChunks:  allChunks[rank],
		need:      allNeeds[rank],
		allChunks: allChunks,
		allNeeds:  allNeeds,
		send:      make([][]datatype.Type, rounds),
		recv:      make([][]datatype.Type, rounds),
		sendPeers: make([][]int, rounds),
		recvPeers: make([][]int, rounds),
		sendSpan:  make([][]contigSpan, rounds),
		recvSpan:  make([][]contigSpan, rounds),
	}
	for r := 0; r < rounds; r++ {
		p.send[r] = make([]datatype.Type, nProcs)
		p.recv[r] = make([]datatype.Type, nProcs)
		p.sendSpan[r] = make([]contigSpan, nProcs)
		p.recvSpan[r] = make([]contigSpan, nProcs)
		for peer := 0; peer < nProcs; peer++ {
			p.send[r][peer] = datatype.Empty{}
			p.recv[r][peer] = datatype.Empty{}
		}
		// Sends: the overlap of my round-r chunk with each peer's need.
		if r < len(p.myChunks) {
			chunk := p.myChunks[r]
			for peer := 0; peer < nProcs; peer++ {
				ov, ok := chunk.Intersect(allNeeds[peer])
				if !ok {
					continue
				}
				st, err := datatype.NewSubarray(elemSize, chunk, ov)
				if err != nil {
					return nil, fmt.Errorf("core: send type to rank %d: %w", peer, err)
				}
				p.send[r][peer] = st
				if peer != rank {
					p.sendPeers[r] = append(p.sendPeers[r], peer)
				}
			}
		}
		// Receives: the overlap of each peer's round-r chunk with my need.
		for peer := 0; peer < nProcs; peer++ {
			if r >= len(allChunks[peer]) {
				continue
			}
			ov, ok := allChunks[peer][r].Intersect(p.need)
			if !ok {
				continue
			}
			rt, err := datatype.NewSubarray(elemSize, p.need, ov)
			if err != nil {
				return nil, fmt.Errorf("core: recv type from rank %d: %w", peer, err)
			}
			p.recv[r][peer] = rt
			if peer != rank {
				p.recvPeers[r] = append(p.recvPeers[r], peer)
			}
		}
	}
	// Contiguity detection and fused-mode precomputation.
	for r := 0; r < rounds; r++ {
		for peer := 0; peer < nProcs; peer++ {
			if p.send[r][peer].PackedSize() > 0 {
				off, n, ok := p.send[r][peer].ContiguousSpan()
				p.sendSpan[r][peer] = contigSpan{off: off, n: n, ok: ok}
			}
			if p.recv[r][peer].PackedSize() > 0 {
				off, n, ok := p.recv[r][peer].ContiguousSpan()
				p.recvSpan[r][peer] = contigSpan{off: off, n: n, ok: ok}
			}
		}
	}
	p.fusedSendBytes = make([]int, nProcs)
	p.fusedRecvBytes = make([]int, nProcs)
	p.fusedSendOne = make([]int, nProcs)
	p.fusedRecvOne = make([]int, nProcs)
	for peer := 0; peer < nProcs; peer++ {
		p.fusedSendOne[peer] = -1
		p.fusedRecvOne[peer] = -1
		sendRounds, recvRounds := 0, 0
		for r := 0; r < rounds; r++ {
			if n := p.send[r][peer].PackedSize(); n > 0 {
				p.fusedSendBytes[peer] += n
				p.fusedSendOne[peer] = r
				sendRounds++
			}
			if n := p.recv[r][peer].PackedSize(); n > 0 {
				p.fusedRecvBytes[peer] += n
				p.fusedRecvOne[peer] = r
				recvRounds++
			}
		}
		if sendRounds != 1 {
			p.fusedSendOne[peer] = -1
		}
		if recvRounds != 1 {
			p.fusedRecvOne[peer] = -1
		}
		if peer != rank {
			if p.fusedSendBytes[peer] > 0 {
				p.fusedSendPeers = append(p.fusedSendPeers, peer)
			}
			if p.fusedRecvBytes[peer] > 0 {
				p.fusedRecvPeers = append(p.fusedRecvPeers, peer)
			}
		}
	}
	return p, nil
}
