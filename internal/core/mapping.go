package core

import (
	"fmt"
	"sort"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// Plan is the compiled communication schedule produced by
// SetupDataMapping. It is immutable and may be replayed by
// ReorganizeData any number of times while the data layout stays the
// same — only the data values need to be fresh (the paper's "dynamic
// data" property). Because it is immutable it may also be shared: the
// plan cache hands the same *Plan back to repeated setups of one
// geometry.
type Plan struct {
	elemSize int
	rank     int
	nProcs   int
	rounds   int

	// fp is the collectively agreed fingerprint of the global geometry the
	// plan was compiled for. Exchange trace IDs are minted from it, so the
	// timelines of repeated exchanges on one layout correlate across ranks
	// (and across runs) without any extra communication.
	fp uint64

	myChunks []grid.Box
	need     grid.Box

	allChunks [][]grid.Box // [rank][chunk]
	allNeeds  []grid.Box   // [rank]

	// The per-round exchange tables, stored sparsely: one entry per
	// actual overlap instead of a dense (round, peer) matrix. A rank's
	// plan at P processes holds O(overlaps) state rather than O(R·P) —
	// the dense tables were >99% Empty sentinels at scale, and their
	// allocation and zeroing dominated plan compilation long before the
	// overlap math did. Entries carry the packing type and its contiguity
	// span together (a contiguous send needs no pack, a contiguous
	// receive no scatter — detected at compile time so the exchange fast
	// paths pay no per-call analysis). The alltoallw exchange, whose wire
	// format is a dense row per round, materializes rows into reusable
	// descriptor scratch.
	sendE planEntries // packing from the round's chunk buffer
	recvE planEntries // scattering into the need buffer

	sendPeers [][]int // [round] peers with non-empty sends (excluding self)
	recvPeers [][]int // [round] peers with non-empty receives (excluding self)

	// Fused-mode schedule, precomputed so the fused exchange allocates
	// nothing per call: the peers this rank exchanges fused messages
	// with, and — parallel to those peer lists — the total fused bytes
	// per peer plus, when exactly one round contributes to a peer's
	// message, that round's index (enabling the zero-copy send/receive
	// of a single contiguous region).
	fusedSendPeers []int
	fusedRecvPeers []int
	fusedSendBytes []int // parallel to fusedSendPeers
	fusedRecvBytes []int // parallel to fusedRecvPeers
	fusedSendOne   []int // parallel to fusedSendPeers; sole round, or -1
	fusedRecvOne   []int // parallel to fusedRecvPeers; sole round, or -1

	// bounded is the memory-bounded step schedule, attached by
	// ensureBounded when a WithMemoryBudget descriptor maps a geometry
	// whose single-shot footprint exceeds the budget, nil otherwise (see
	// bounded.go).
	bounded *boundedPlan
}

// planEntries is one direction's sparse exchange table: the overlap
// entries of all rounds concatenated round-major, peers ascending within
// each round (self included), with off[r]..off[r+1] delimiting round r.
type planEntries struct {
	off   []int // [rounds+1]
	peers []int
	types []datatype.Type
	spans []contigSpan

	left []int // compile-time scratch: unassigned slots per round
}

// at returns round r's entry for peer, or the Empty sentinel when the
// pair exchanges nothing. Peers are sorted within a round, so the lookup
// is a binary search over that round's few entries.
func (e *planEntries) at(r, peer int) (datatype.Type, contigSpan) {
	lo, hi := e.off[r], e.off[r+1]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.peers[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < e.off[r+1] && e.peers[lo] == peer {
		return e.types[lo], e.spans[lo]
	}
	return datatype.Empty{}, contigSpan{}
}

// contigSpan records whether a plan entry is contiguous in its local
// array and, if so, where.
type contigSpan struct {
	off, n int
	ok     bool
}

// Rounds returns the number of exchange rounds, which equals the maximum
// number of chunks owned by any single rank (paper §III-C).
func (p *Plan) Rounds() int { return p.rounds }

// Need returns the box this rank receives.
func (p *Plan) Need() grid.Box { return p.need }

// MyChunks returns the boxes this rank contributed as owned data.
func (p *Plan) MyChunks() []grid.Box { return p.myChunks }

// SetupDataMapping computes the data mapping between all ranks. It is a
// collective call: every rank passes the chunks it currently owns (any
// number, including zero) and the single contiguous box it needs after
// redistribution. It corresponds to DDR_SetupDataMapping(rank, nProcs,
// nChunks, ownDims, ownOffsets, needDims, needOffsets, desc) — rank and
// nProcs come from the communicator and each (dims, offset) pair is a
// grid.Box.
//
// Owned chunks must be mutually exclusive across ranks and collectively
// complete over the domain; need boxes may overlap and need not cover the
// domain (paper §III-B). With WithValidation the exclusivity/completeness
// precondition is checked collectively and violations are reported.
//
// When the plan cache is enabled (the default, see WithPlanCache), the
// ranks first agree collectively on a fingerprint of the global geometry;
// if every rank holds a cached plan for it, the geometry allgather,
// validation, and compilation are all skipped and the cached plan is
// replayed — the steady-state cost of re-establishing a mapping whose
// layout did not change (the in-transit reconnect cycle) is two tiny
// collectives.
func (d *Descriptor) SetupDataMapping(c *mpi.Comm, own []grid.Box, need grid.Box) error {
	if c.Size() != d.nProcs {
		return fmt.Errorf("core: descriptor is for %d processes but communicator has %d: %w",
			d.nProcs, c.Size(), ErrCommMismatch)
	}
	if err := d.checkBoxDims(need, "need"); err != nil {
		return err
	}
	for i, b := range own {
		if err := d.checkBoxDims(b, fmt.Sprintf("owned chunk %d", i)); err != nil {
			return err
		}
	}

	wr := c.WorldRank(c.Rank())
	d.buildObs(wr)
	o := d.obsv
	var mapStart time.Time
	if o.on() {
		mapStart = time.Now()
	}
	endSpan := d.tracer.Span(o.Rank(c), "mapping", 0)
	defer endSpan()

	enc := encodeGeometry(need, own)
	if d.cache != nil {
		cached, ok, err := d.cache.lookup(c, enc, d.fpSalt(), func(p *Plan) bool {
			return planMatchesLocal(p, c.Rank(), own, need)
		})
		if err != nil {
			return fmt.Errorf("core: plan cache agreement: %w", err)
		}
		if ok {
			if err := d.ensureBounded(cached); err != nil {
				return err
			}
			d.plan = cached
			d.cacheHits.Add(1)
			if o.on() {
				o.cacheHits.Inc()
			}
			d.flight.Record(obs.FlightEvent{Kind: obs.FlightCacheHit, Rank: int32(wr), Peer: -1})
			return nil
		}
		d.cacheMisses.Add(1)
		if o.on() {
			o.cacheMisses.Inc()
		}
		d.flight.Record(obs.FlightEvent{Kind: obs.FlightCacheMiss, Rank: int32(wr), Peer: -1})
	}

	packed, err := c.Allgather(enc)
	if err != nil {
		return fmt.Errorf("core: geometry exchange: %w", err)
	}
	allChunks := make([][]grid.Box, c.Size())
	allNeeds := make([]grid.Box, c.Size())
	for r, buf := range packed {
		allNeeds[r], allChunks[r], err = decodeGeometry(buf)
		if err != nil {
			return fmt.Errorf("core: geometry from rank %d: %w", r, err)
		}
	}

	if d.validate {
		if err := validateOwnership(allChunks); err != nil {
			return err
		}
	}

	var compileStart time.Time
	if o.on() {
		compileStart = time.Now()
	}
	plan, err := compilePlan(c.Rank(), d.elemSize, allChunks, allNeeds, d.parallelism())
	if err != nil {
		return err
	}
	if o.on() {
		now := time.Now()
		o.rec.AddSpan(o.rank, "compile", compileStart, now, 0)
		o.planCompile.Observe(now.Sub(mapStart).Seconds())
		o.compilePar.Observe(float64(d.parallelism()))
	}
	if err := d.ensureBounded(plan); err != nil {
		return err
	}
	if d.cache != nil {
		// The cache lookup already agreed on the fingerprint collectively;
		// reuse it so the stored plan replays with the same identity.
		plan.fp = d.cache.lastKey.fp
		d.cache.store(plan)
	} else {
		plan.fp = saltHash(topoHash(geometryFingerprint(packed), c), d.fpSalt())
	}
	d.plan = plan
	return nil
}

// planMatchesLocal confirms a cached plan was compiled from exactly this
// rank's current contribution — the local half of the defense against a
// fingerprint collision handing back a plan for a different geometry. A
// rank whose contribution differs reports a cache miss, and the collective
// agreement then routes every rank through the full compile path.
func planMatchesLocal(p *Plan, rank int, own []grid.Box, need grid.Box) bool {
	if p.rank != rank || !p.need.Equal(need) || len(p.myChunks) != len(own) {
		return false
	}
	for i, b := range own {
		if !p.myChunks[i].Equal(b) {
			return false
		}
	}
	return true
}

// Rank returns the trace lane for spans recorded against the
// communicator: the world rank when observation is attached, the local
// rank otherwise (matching the pre-telemetry behaviour).
func (o *exchObs) Rank(c *mpi.Comm) int {
	if o == nil {
		return c.Rank()
	}
	return o.rank
}

// validateOwnership enforces the paper's sending-side precondition: the
// owned chunks of all ranks are pairwise disjoint and tile their bounding
// box exactly. Overlap reports carry the owning ranks and every
// conflicting pair (bounded), so a broken layout at scale is diagnosable
// from one error.
func validateOwnership(allChunks [][]grid.Box) error {
	var flat []grid.Box
	owner := make([]int, 0)
	for r, chunks := range allChunks {
		for _, b := range chunks {
			flat = append(flat, b)
			owner = append(owner, r)
		}
	}
	domain, ok := grid.BoundingBox(flat)
	if !ok {
		return fmt.Errorf("core: no rank owns any data")
	}
	if err := grid.VerifyTilingOwned(domain, flat, owner); err != nil {
		if ce, ok := err.(*grid.CoverageError); ok && len(ce.Overlaps) > 0 {
			return fmt.Errorf("core: owned data is not mutually exclusive: %w", ce)
		}
		return fmt.Errorf("core: owned data does not tile the domain %v: %w", domain, err)
	}
	return nil
}

// NewPlanFromGeometry compiles a communication plan directly from a full
// global geometry description without any communication: allChunks[r]
// lists the chunks rank r owns and allNeeds[r] the box it needs. This is
// the offline twin of SetupDataMapping, used for schedule analysis (the
// paper's Table III) and capacity planning at scales larger than the
// running world.
func NewPlanFromGeometry(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) (*Plan, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", elemSize)
	}
	if len(allChunks) != len(allNeeds) {
		return nil, fmt.Errorf("core: %d chunk lists for %d need boxes", len(allChunks), len(allNeeds))
	}
	if rank < 0 || rank >= len(allNeeds) {
		return nil, fmt.Errorf("core: rank %d out of range [0,%d)", rank, len(allNeeds))
	}
	return compilePlan(rank, elemSize, allChunks, allNeeds, 0)
}

// typeJob is one subarray-type construction the compiler fans across the
// worker pool: a (round, peer, direction) slot plus the geometry the type
// is built from. Slots are unique per job, so the batch runs at any
// parallelism with no synchronization beyond the join.
type typeJob struct {
	r, peer int
	base    grid.Box // the array the type addresses (chunk or need box)
	region  grid.Box // the overlap packed/scattered
	recv    bool
	pos     int // the entry slot in the plan's sparse table
}

// scheduleCompiler holds the geometry-wide state of plan compilation: the
// spatial index over the need boxes (driving send discovery), the
// flattened chunk list with its index (driving receive discovery), and
// the round count. Building it costs O(C log C) in the total chunk count;
// compiling one rank against it costs only that rank's overlaps. The
// separation is what makes whole-schedule analysis (CompileSchedule, the
// ddrplan sweeps) scale: the indexes are built once and shared across all
// P rank compiles instead of being rebuilt — or worse, replaced by P
// brute-force scans of all P peers — per rank.
type scheduleCompiler struct {
	elemSize  int
	allChunks [][]grid.Box
	allNeeds  []grid.Box
	rounds    int

	needIx    *grid.Index
	chunkIx   *grid.Index
	flat      []grid.Box // all chunks, peer-major, round ascending
	flatPeer  []int
	flatRound []int
}

func newScheduleCompiler(elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box) *scheduleCompiler {
	sc := &scheduleCompiler{elemSize: elemSize, allChunks: allChunks, allNeeds: allNeeds}
	totalChunks := 0
	for _, chunks := range allChunks {
		sc.rounds = max(sc.rounds, len(chunks))
		totalChunks += len(chunks)
	}
	sc.flat = make([]grid.Box, 0, totalChunks)
	sc.flatPeer = make([]int, 0, totalChunks)
	sc.flatRound = make([]int, 0, totalChunks)
	for peer, chunks := range allChunks {
		for r, b := range chunks {
			sc.flat = append(sc.flat, b)
			sc.flatPeer = append(sc.flatPeer, peer)
			sc.flatRound = append(sc.flatRound, r)
		}
	}
	sc.needIx = grid.NewIndex(allNeeds)
	sc.chunkIx = grid.NewIndex(sc.flat)
	return sc
}

// fillEmpty stamps the Empty sentinel into every slot by doubling copy —
// memmove speed instead of an interface store per element.
func fillEmpty(ts []datatype.Type) {
	if len(ts) == 0 {
		return
	}
	ts[0] = datatype.Empty{}
	for n := 1; n < len(ts); n *= 2 {
		copy(ts[n:], ts[:n])
	}
}

// compile builds rank's plan against the shared indexes. Subarray
// construction and contiguity analysis fan out across par workers
// (datatype.ForkJoin); the result is byte-identical to the brute-force
// reference at any parallelism.
func (sc *scheduleCompiler) compile(rank, par int) (*Plan, error) {
	nProcs := len(sc.allNeeds)
	rounds := sc.rounds
	p := &Plan{
		elemSize:  sc.elemSize,
		rank:      rank,
		nProcs:    nProcs,
		rounds:    rounds,
		myChunks:  sc.allChunks[rank],
		need:      sc.allNeeds[rank],
		allChunks: sc.allChunks,
		allNeeds:  sc.allNeeds,
		sendPeers: make([][]int, rounds),
		recvPeers: make([][]int, rounds),
	}

	// Discovery: collect the (round, peer) pairs that actually overlap.
	// Candidate sets come back from the indexes ascending, preserving the
	// peer ordering the brute-force compiler produced.
	var jobs []typeJob
	var hits []int

	// Sends: my round-r chunk against the indexed need boxes. Jobs arrive
	// round-major with peers ascending inside each round â already the
	// entry order of the sparse table.
	for r, chunk := range p.myChunks {
		hits = sc.needIx.QueryAppend(hits[:0], chunk)
		for _, peer := range hits {
			ov, ok := chunk.Intersect(sc.allNeeds[peer])
			if !ok {
				continue
			}
			jobs = append(jobs, typeJob{r: r, peer: peer, base: chunk, region: ov})
			if peer != rank {
				p.sendPeers[r] = append(p.sendPeers[r], peer)
			}
		}
	}
	nSend := len(jobs)

	// Receives: my need box against the indexed flattened chunk list.
	// Flat order is peer-major, so hits arrive with ascending peers and
	// recvPeers[r] stays sorted without an extra pass; the sparse table is
	// round-major, so these jobs are bucketed by round below.
	hits = sc.chunkIx.QueryAppend(hits[:0], p.need)
	for _, id := range hits {
		peer, r := sc.flatPeer[id], sc.flatRound[id]
		ov, ok := sc.flat[id].Intersect(p.need)
		if !ok {
			continue
		}
		jobs = append(jobs, typeJob{r: r, peer: peer, base: p.need, region: ov, recv: true})
		if peer != rank {
			p.recvPeers[r] = append(p.recvPeers[r], peer)
		}
	}

	// Lay out the sparse tables: prefix-sum the per-round entry counts
	// into offsets and assign each job its slot. Send jobs are already
	// round-major; receive jobs land at their round's next free slot,
	// which keeps peers ascending because they arrived peer-major.
	p.sendE = newPlanEntries(rounds, jobs[:nSend])
	p.recvE = newPlanEntries(rounds, jobs[nSend:])
	for i := range jobs {
		j := &jobs[i]
		e := &p.sendE
		if j.recv {
			e = &p.recvE
		}
		j.pos = e.off[j.r+1] - e.left[j.r]
		e.left[j.r]--
		e.peers[j.pos] = j.peer
	}
	p.sendE.left, p.recvE.left = nil, nil

	// Construction: build the subarray types and their contiguity spans
	// across the pool. Each job owns its slot, and errors are reported by
	// the lowest failing job for determinism.
	errs := make([]error, len(jobs))
	datatype.ForkJoin(len(jobs), par, func(i int) {
		j := &jobs[i]
		t, err := datatype.NewSubarray(sc.elemSize, j.base, j.region)
		if err != nil {
			dir := "send type to"
			if j.recv {
				dir = "recv type from"
			}
			errs[i] = fmt.Errorf("core: %s rank %d: %w", dir, j.peer, err)
			return
		}
		off, n, ok := t.ContiguousSpan()
		e := &p.sendE
		if j.recv {
			e = &p.recvE
		}
		e.types[j.pos] = t
		e.spans[j.pos] = contigSpan{off: off, n: n, ok: ok}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sc.precomputeFusedFromJobs(p, jobs, nSend)
	return p, nil
}

// newPlanEntries sizes one direction's sparse table for a job batch:
// counts per round become the off prefix sums, and left temporarily
// tracks each round's unassigned slots while jobs claim positions.
func newPlanEntries(rounds int, jobs []typeJob) planEntries {
	e := planEntries{off: make([]int, rounds+1), left: make([]int, rounds)}
	for i := range jobs {
		e.left[jobs[i].r]++
	}
	for r := 0; r < rounds; r++ {
		e.off[r+1] = e.off[r] + e.left[r]
	}
	n := len(jobs)
	e.peers = make([]int, n)
	e.types = make([]datatype.Type, n)
	e.spans = make([]contigSpan, n)
	return e
}

// precomputeFusedFromJobs derives the fused-mode schedule straight from
// the discovered overlap jobs — O(entries log entries) — instead of the
// reference compiler's O(R·P) sweep of PackedSize calls over dense
// tables. The output is identical: per peer, the byte total sums that
// peer's rounds, and the sole-round election matches the sweep's
// last-nonempty-then-reset rule because rounds ascend within each run.
func (sc *scheduleCompiler) precomputeFusedFromJobs(p *Plan, jobs []typeJob, nSend int) {
	// Send jobs arrive round-major; regroup them peer-major for the
	// per-peer runs. Receive jobs arrived peer-major already.
	send := jobs[:nSend]
	order := make([]int, nSend)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := &send[order[a]], &send[order[b]]
		if ja.peer != jb.peer {
			return ja.peer < jb.peer
		}
		return ja.r < jb.r
	})
	p.fusedSendPeers, p.fusedSendBytes, p.fusedSendOne = fusedRuns(send, order, p.rank, sc.elemSize)
	p.fusedRecvPeers, p.fusedRecvBytes, p.fusedRecvOne = fusedRuns(jobs[nSend:], nil, p.rank, sc.elemSize)
}

// fusedRuns walks peer-major jobs (through order when the batch needs
// reindexing) and folds each peer's run into one fused entry. Self is
// skipped: the fused exchange moves local data through selfExchange.
func fusedRuns(jobs []typeJob, order []int, rank, elemSize int) (peers, bytes, one []int) {
	get := func(i int) *typeJob {
		if order != nil {
			return &jobs[order[i]]
		}
		return &jobs[i]
	}
	for i := 0; i < len(jobs); {
		peer := get(i).peer
		total, count, last := 0, 0, -1
		for ; i < len(jobs); i++ {
			j := get(i)
			if j.peer != peer {
				break
			}
			total += j.region.Volume() * elemSize
			count++
			last = j.r
		}
		if peer == rank {
			continue
		}
		peers = append(peers, peer)
		bytes = append(bytes, total)
		if count == 1 {
			one = append(one, last)
		} else {
			one = append(one, -1)
		}
	}
	return peers, bytes, one
}

// compilePlan builds one rank's plan from the gathered global geometry —
// the path SetupDataMapping takes after its allgather. Overlap discovery
// runs through the spatial indexes of a fresh scheduleCompiler.
func compilePlan(rank, elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box, par int) (*Plan, error) {
	return newScheduleCompiler(elemSize, allChunks, allNeeds).compile(rank, par)
}

// CompileSchedule compiles every rank's plan from a full global geometry
// with one shared set of spatial indexes — the whole-schedule analogue of
// NewPlanFromGeometry for offline analysis (ddrplan sweeps, capacity
// planning, the paper's Table II at arbitrary scale). Sharing the indexes
// is what removes the O(P²) cost of constructing all P schedules by
// brute-force peer scans. par bounds the construction parallelism per
// rank compile; <= 0 means GOMAXPROCS.
func CompileSchedule(elemSize int, allChunks [][]grid.Box, allNeeds []grid.Box, par int) ([]*Plan, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("core: element size %d must be positive", elemSize)
	}
	if len(allChunks) != len(allNeeds) {
		return nil, fmt.Errorf("core: %d chunk lists for %d need boxes", len(allChunks), len(allNeeds))
	}
	sc := newScheduleCompiler(elemSize, allChunks, allNeeds)
	plans := make([]*Plan, len(allNeeds))
	errs := make([]error, len(allNeeds))
	// Ranks compile independently against the shared read-only indexes, so
	// the schedule fans out rank-per-worker; each rank's own construction
	// then runs serially (par 1) to avoid nested pools. Errors surface from
	// the lowest failing rank for determinism.
	datatype.ForkJoin(len(plans), par, func(rank int) {
		plans[rank], errs[rank] = sc.compile(rank, 1)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plans, nil
}
