// Package lbm3d implements a three-dimensional Lattice-Boltzmann (D3Q19)
// fluid solver, the volumetric extension of the paper's 2D use case: a
// channel flow past a spherical obstacle, slab-decomposed along z with
// halo exchange, whose fields stream in-transit into the DDR + DVR
// pipeline (slabs regrid into rendering bricks). This joins the paper's
// two use cases — in-transit streaming and distributed volume rendering —
// into one workflow.
package lbm3d

import (
	"fmt"
	"math"
)

// D3Q19 lattice: the rest vector, 6 face neighbors, and 12 edge
// neighbors.
var (
	ex = [19]int{0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0}
	ey = [19]int{0, 0, 0, 1, -1, 0, 0, 1, -1, -1, 1, 0, 0, 0, 0, 1, -1, 1, -1}
	ez = [19]int{0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, -1, -1, 1, 1, -1, -1, 1}
	wt [19]float64
	// opp[i] is the direction opposite to i.
	opp [19]int
)

func init() {
	for i := 0; i < 19; i++ {
		switch ex[i]*ex[i] + ey[i]*ey[i] + ez[i]*ez[i] {
		case 0:
			wt[i] = 1.0 / 3
		case 1:
			wt[i] = 1.0 / 18
		default:
			wt[i] = 1.0 / 36
		}
		for j := 0; j < 19; j++ {
			if ex[j] == -ex[i] && ey[j] == -ey[i] && ez[j] == -ez[i] {
				opp[i] = j
			}
		}
	}
}

// Params configures a simulation.
type Params struct {
	Width, Height, Depth int // x, y, z extents
	Viscosity            float64
	InletVelocity        float64 // fixed +x flow at the domain boundary
	// Barrier marks solid cells in global coordinates; nil = open flow.
	Barrier func(x, y, z int) bool
}

func (p Params) validate() error {
	if p.Width < 3 || p.Height < 3 || p.Depth < 3 {
		return fmt.Errorf("lbm3d: domain %dx%dx%d too small", p.Width, p.Height, p.Depth)
	}
	if p.Viscosity <= 0 {
		return fmt.Errorf("lbm3d: viscosity %f must be positive", p.Viscosity)
	}
	if math.Abs(p.InletVelocity) > 0.3 {
		return fmt.Errorf("lbm3d: inlet velocity %f exceeds the low-Mach validity range", p.InletVelocity)
	}
	return nil
}

// SphereBarrier returns a Params.Barrier placing a solid ball of radius r
// at (cx, cy, cz).
func SphereBarrier(cx, cy, cz, r int) func(x, y, z int) bool {
	r2 := r * r
	return func(x, y, z int) bool {
		dx, dy, dz := x-cx, y-cy, z-cz
		return dx*dx+dy*dy+dz*dz <= r2
	}
}

// Slab simulates global z-planes [Z0, Z0+NZ) with one ghost plane on each
// side. A serial simulation is a single slab covering the whole depth.
type Slab struct {
	P      Params
	Z0, NZ int

	omega   float64
	f, fs   [19][]float64 // (NZ+2) planes of Width*Height cells
	barrier []bool

	rho, ux, uy, uz []float64 // slab planes only, from the last Collide
}

// NewSlab builds the slab simulator for planes [z0, z0+nz), initialized
// to equilibrium at density 1 and the inlet velocity.
func NewSlab(p Params, z0, nz int) (*Slab, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if z0 < 0 || nz < 1 || z0+nz > p.Depth {
		return nil, fmt.Errorf("lbm3d: slab planes [%d,%d) outside depth %d", z0, z0+nz, p.Depth)
	}
	s := &Slab{P: p, Z0: z0, NZ: nz, omega: 1.0 / (3*p.Viscosity + 0.5)}
	plane := p.Width * p.Height
	n := (nz + 2) * plane
	for i := range s.f {
		s.f[i] = make([]float64, n)
		s.fs[i] = make([]float64, n)
	}
	s.barrier = make([]bool, n)
	s.rho = make([]float64, nz*plane)
	s.ux = make([]float64, nz*plane)
	s.uy = make([]float64, nz*plane)
	s.uz = make([]float64, nz*plane)

	for r := 0; r < nz+2; r++ {
		gz := z0 - 1 + r
		for y := 0; y < p.Height; y++ {
			for x := 0; x < p.Width; x++ {
				idx := r*plane + y*p.Width + x
				if p.Barrier != nil && gz >= 0 && gz < p.Depth && p.Barrier(x, y, gz) {
					s.barrier[idx] = true
				}
				for i := 0; i < 19; i++ {
					s.f[i][idx] = equilibrium(i, 1.0, p.InletVelocity, 0, 0)
				}
			}
		}
	}
	return s, nil
}

// equilibrium returns the D3Q19 equilibrium distribution.
func equilibrium(i int, rho, ux, uy, uz float64) float64 {
	eu := float64(ex[i])*ux + float64(ey[i])*uy + float64(ez[i])*uz
	u2 := ux*ux + uy*uy + uz*uz
	return wt[i] * rho * (1 + 3*eu + 4.5*eu*eu - 1.5*u2)
}

// Collide applies BGK collision to the slab's own planes.
func (s *Slab) Collide() {
	plane := s.P.Width * s.P.Height
	for r := 1; r <= s.NZ; r++ {
		base := r * plane
		for c := 0; c < plane; c++ {
			idx := base + c
			if s.barrier[idx] {
				continue
			}
			var rho, mx, my, mz float64
			for i := 0; i < 19; i++ {
				v := s.f[i][idx]
				rho += v
				mx += v * float64(ex[i])
				my += v * float64(ey[i])
				mz += v * float64(ez[i])
			}
			ux, uy, uz := mx/rho, my/rho, mz/rho
			for i := 0; i < 19; i++ {
				s.f[i][idx] += s.omega * (equilibrium(i, rho, ux, uy, uz) - s.f[i][idx])
			}
			out := (r-1)*plane + c
			s.rho[out], s.ux[out], s.uy[out], s.uz[out] = rho, ux, uy, uz
		}
	}
}

// haloFloats is the float count of one exchanged boundary plane.
func (s *Slab) haloFloats() int { return 19 * s.P.Width * s.P.Height }

// EdgePlanes returns copies of the post-collision boundary planes: low is
// global plane Z0, high is Z0+NZ-1. Layout: 19 sub-planes of
// Width*Height.
func (s *Slab) EdgePlanes() (low, high []float64) {
	plane := s.P.Width * s.P.Height
	low = make([]float64, s.haloFloats())
	high = make([]float64, s.haloFloats())
	for i := 0; i < 19; i++ {
		copy(low[i*plane:(i+1)*plane], s.f[i][plane:2*plane])
		copy(high[i*plane:(i+1)*plane], s.f[i][s.NZ*plane:(s.NZ+1)*plane])
	}
	return
}

// SetHalo installs neighbor boundary planes into the ghost planes; nil
// leaves a ghost at its fixed equilibrium (correct at domain faces).
func (s *Slab) SetHalo(low, high []float64) error {
	plane := s.P.Width * s.P.Height
	if low != nil {
		if len(low) != s.haloFloats() {
			return fmt.Errorf("lbm3d: low halo has %d floats, want %d", len(low), s.haloFloats())
		}
		for i := 0; i < 19; i++ {
			copy(s.f[i][0:plane], low[i*plane:(i+1)*plane])
		}
	}
	if high != nil {
		if len(high) != s.haloFloats() {
			return fmt.Errorf("lbm3d: high halo has %d floats, want %d", len(high), s.haloFloats())
		}
		for i := 0; i < 19; i++ {
			copy(s.f[i][(s.NZ+1)*plane:(s.NZ+2)*plane], high[i*plane:(i+1)*plane])
		}
	}
	return nil
}

// Stream propagates post-collision distributions with half-way
// bounce-back at barriers, then re-imposes the fixed condition on the
// global domain faces.
func (s *Slab) Stream() {
	w, h := s.P.Width, s.P.Height
	plane := w * h
	for i := 0; i < 19; i++ {
		dxi, dyi, dzi := ex[i], ey[i], ez[i]
		for r := 1; r <= s.NZ; r++ {
			for y := 0; y < h; y++ {
				sy := y - dyi
				if sy < 0 {
					sy = 0
				}
				if sy >= h {
					sy = h - 1
				}
				for x := 0; x < w; x++ {
					sx := x - dxi
					if sx < 0 {
						sx = 0
					}
					if sx >= w {
						sx = w - 1
					}
					idx := r*plane + y*w + x
					src := (r-dzi)*plane + sy*w + sx
					if s.barrier[src] {
						s.fs[i][idx] = s.f[opp[i]][idx]
					} else {
						s.fs[i][idx] = s.f[i][src]
					}
				}
			}
		}
	}
	for i := 0; i < 19; i++ {
		copy(s.f[i][plane:(s.NZ+1)*plane], s.fs[i][plane:(s.NZ+1)*plane])
	}
	s.applyFaces()
}

// applyFaces holds the global boundary faces at equilibrium inflow.
func (s *Slab) applyFaces() {
	w, h := s.P.Width, s.P.Height
	plane := w * h
	set := func(idx int) {
		for i := 0; i < 19; i++ {
			s.f[i][idx] = equilibrium(i, 1.0, s.P.InletVelocity, 0, 0)
		}
	}
	for r := 1; r <= s.NZ; r++ {
		gz := s.Z0 - 1 + r
		base := r * plane
		if gz == 0 || gz == s.P.Depth-1 {
			for c := 0; c < plane; c++ {
				set(base + c)
			}
			continue
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if x == 0 || x == w-1 || y == 0 || y == h-1 {
					set(base + y*w + x)
				}
			}
		}
	}
}

// Step advances one iteration in serial mode (no neighbors).
func (s *Slab) Step() {
	s.Collide()
	s.Stream()
}

// Macroscopic returns the density and velocity fields from the last
// Collide, each NZ*Width*Height values starting at global plane Z0.
func (s *Slab) Macroscopic() (rho, ux, uy, uz []float64) {
	return s.rho, s.ux, s.uy, s.uz
}

// SpeedField returns |u| per slab cell as float32 — the streamed variable
// of interest for volume rendering.
func (s *Slab) SpeedField() []float32 {
	out := make([]float32, len(s.ux))
	for i := range out {
		out[i] = float32(math.Sqrt(s.ux[i]*s.ux[i] + s.uy[i]*s.uy[i] + s.uz[i]*s.uz[i]))
	}
	return out
}

// Diagnostics summarizes the slab's macroscopic state from the last
// Collide: total mass, kinetic energy, and density extrema over fluid
// cells (barrier cells are excluded; cells that have never collided
// report zero and are skipped).
func (s *Slab) Diagnostics() (mass, kineticEnergy, minRho, maxRho float64, fluidCells int) {
	minRho, maxRho = math.Inf(1), math.Inf(-1)
	plane := s.P.Width * s.P.Height
	for r := 0; r < s.NZ; r++ {
		for c := 0; c < plane; c++ {
			if s.barrier[(r+1)*plane+c] {
				continue
			}
			idx := r*plane + c
			rho := s.rho[idx]
			if rho == 0 {
				continue
			}
			mass += rho
			kineticEnergy += 0.5 * rho * (s.ux[idx]*s.ux[idx] + s.uy[idx]*s.uy[idx] + s.uz[idx]*s.uz[idx])
			minRho = math.Min(minRho, rho)
			maxRho = math.Max(maxRho, rho)
			fluidCells++
		}
	}
	if fluidCells == 0 {
		minRho, maxRho = 0, 0
	}
	return
}

// DensityField returns rho per slab cell as float32.
func (s *Slab) DensityField() []float32 {
	out := make([]float32, len(s.rho))
	for i := range out {
		out[i] = float32(s.rho[i])
	}
	return out
}
