package lbm3d

import (
	"fmt"

	"ddr/internal/fielddata"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Reserved tags for 3D halo traffic (distinct from the 2D solver's).
const (
	tagHaloUp   = 9101
	tagHaloDown = 9102
)

// Parallel couples one z-slab per rank, exchanging ghost planes with at
// most two neighbors per iteration.
type Parallel struct {
	Comm *mpi.Comm
	Slab *Slab
}

// NewParallel decomposes the domain of p into comm.Size() z-slabs and
// returns this rank's simulator.
func NewParallel(c *mpi.Comm, p Params) (*Parallel, error) {
	if c.Size() > p.Depth {
		return nil, fmt.Errorf("lbm3d: %d ranks for %d planes", c.Size(), p.Depth)
	}
	starts := grid.SplitEven(p.Depth, c.Size())
	z0 := starts[c.Rank()]
	nz := starts[c.Rank()+1] - z0
	slab, err := NewSlab(p, z0, nz)
	if err != nil {
		return nil, err
	}
	return &Parallel{Comm: c, Slab: slab}, nil
}

// Step advances the global simulation one iteration.
func (ps *Parallel) Step() error {
	s := ps.Slab
	c := ps.Comm
	s.Collide()

	low, high := s.EdgePlanes()
	var reqs []*mpi.Request
	var recvLow, recvHigh *mpi.Request
	if c.Rank() > 0 {
		reqs = append(reqs, c.Isend(c.Rank()-1, tagHaloDown, fielddata.Float64Bytes(low)))
		recvLow = c.Irecv(c.Rank()-1, tagHaloUp)
	}
	if c.Rank() < c.Size()-1 {
		reqs = append(reqs, c.Isend(c.Rank()+1, tagHaloUp, fielddata.Float64Bytes(high)))
		recvHigh = c.Irecv(c.Rank()+1, tagHaloDown)
	}
	if err := mpi.WaitAll(reqs...); err != nil {
		return err
	}
	var haloLow, haloHigh []float64
	if recvLow != nil {
		data, _, _, err := recvLow.Wait()
		if err != nil {
			return err
		}
		haloLow = fielddata.BytesFloat64(data)
	}
	if recvHigh != nil {
		data, _, _, err := recvHigh.Wait()
		if err != nil {
			return err
		}
		haloHigh = fielddata.BytesFloat64(data)
	}
	if err := s.SetHalo(haloLow, haloHigh); err != nil {
		return err
	}
	s.Stream()
	return nil
}

// SlabBox returns the global box this rank's slab covers, the owned-chunk
// geometry handed to DDR when streaming fields.
func (ps *Parallel) SlabBox() grid.Box {
	return grid.Box3(0, 0, ps.Slab.Z0, ps.Slab.P.Width, ps.Slab.P.Height, ps.Slab.NZ)
}
