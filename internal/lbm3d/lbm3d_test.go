package lbm3d

import (
	"fmt"
	"math"
	"testing"

	"ddr/internal/mpi"
)

func testParams(w, h, d int) Params {
	return Params{
		Width: w, Height: h, Depth: d,
		Viscosity:     0.03,
		InletVelocity: 0.08,
		Barrier:       SphereBarrier(w/4, h/2, d/2, h/6),
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Width: 2, Height: 8, Depth: 8, Viscosity: 0.1, InletVelocity: 0.1},
		{Width: 8, Height: 8, Depth: 8, Viscosity: 0, InletVelocity: 0.1},
		{Width: 8, Height: 8, Depth: 8, Viscosity: 0.1, InletVelocity: 0.5},
	}
	for i, p := range bad {
		if _, err := NewSlab(p, 0, max(p.Depth, 1)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSlab(testParams(8, 8, 8), 4, 8); err == nil {
		t.Error("out-of-range slab accepted")
	}
}

func TestLatticeInvariants(t *testing.T) {
	var wsum float64
	for i := 0; i < 19; i++ {
		wsum += wt[i]
		j := opp[i]
		if ex[j] != -ex[i] || ey[j] != -ey[i] || ez[j] != -ez[i] {
			t.Errorf("direction %d: opposite %d not a reflection", i, j)
		}
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Errorf("weights sum to %g", wsum)
	}
	// Equilibrium moments.
	for _, u := range [][3]float64{{0, 0, 0}, {0.08, 0, 0}, {0.02, -0.05, 0.04}} {
		rho := 1.1
		var sum, mx, my, mz float64
		for i := 0; i < 19; i++ {
			f := equilibrium(i, rho, u[0], u[1], u[2])
			sum += f
			mx += f * float64(ex[i])
			my += f * float64(ey[i])
			mz += f * float64(ez[i])
		}
		if math.Abs(sum-rho) > 1e-12 {
			t.Errorf("u=%v: density %g", u, sum)
		}
		if math.Abs(mx-rho*u[0]) > 1e-12 || math.Abs(my-rho*u[1]) > 1e-12 || math.Abs(mz-rho*u[2]) > 1e-12 {
			t.Errorf("u=%v: momentum (%g,%g,%g)", u, mx, my, mz)
		}
	}
}

func TestUniformFlowIsSteady(t *testing.T) {
	p := Params{Width: 8, Height: 6, Depth: 6, Viscosity: 0.05, InletVelocity: 0.06}
	s, err := NewSlab(p, 0, p.Depth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Step()
	}
	rho, ux, uy, uz := s.Macroscopic()
	for i := range rho {
		if math.Abs(rho[i]-1) > 1e-9 || math.Abs(ux[i]-0.06) > 1e-9 ||
			math.Abs(uy[i]) > 1e-9 || math.Abs(uz[i]) > 1e-9 {
			t.Fatalf("cell %d drifted: %g %g %g %g", i, rho[i], ux[i], uy[i], uz[i])
		}
	}
}

func TestSphereDisturbsFlow(t *testing.T) {
	p := testParams(24, 12, 12)
	s, err := NewSlab(p, 0, p.Depth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		s.Step()
	}
	speed := s.SpeedField()
	var spread float64
	for _, v := range speed {
		spread = math.Max(spread, math.Abs(float64(v)-0.08))
	}
	if spread < 1e-3 {
		t.Errorf("speed field flat (max deviation %g); obstacle had no effect", spread)
	}
	rho, _, _, _ := s.Macroscopic()
	for i, r := range rho {
		if math.IsNaN(r) || (r != 0 && (r < 0.2 || r > 5)) {
			t.Fatalf("cell %d density %g unstable", i, r)
		}
	}
	if len(s.DensityField()) != len(speed) {
		t.Error("field lengths differ")
	}
}

// TestParallelMatchesSerial: the 3D halo exchange must reproduce the
// serial run bit-for-bit.
func TestParallelMatchesSerial(t *testing.T) {
	p := testParams(16, 10, 12)
	const iters = 25

	serial, err := NewSlab(p, 0, p.Depth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		serial.Step()
	}
	sRho, sUx, _, sUz := serial.Macroscopic()

	for _, n := range []int{2, 3, 4} {
		n := n
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			err := mpi.Launch(n, func(c *mpi.Comm) error {
				ps, err := NewParallel(c, p)
				if err != nil {
					return err
				}
				for i := 0; i < iters; i++ {
					if err := ps.Step(); err != nil {
						return err
					}
				}
				rho, ux, _, uz := ps.Slab.Macroscopic()
				base := ps.Slab.Z0 * p.Width * p.Height
				for i := range rho {
					if rho[i] != sRho[base+i] || ux[i] != sUx[base+i] || uz[i] != sUz[base+i] {
						return fmt.Errorf("rank %d cell %d diverged", c.Rank(), i)
					}
				}
				box := ps.SlabBox()
				if box.Volume() != len(rho) {
					return fmt.Errorf("slab box %v volume %d for %d cells", box, box.Volume(), len(rho))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDiagnostics3D(t *testing.T) {
	p := Params{Width: 8, Height: 6, Depth: 6, Viscosity: 0.05, InletVelocity: 0.06}
	s, err := NewSlab(p, 0, p.Depth)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	mass, ke, lo, hi, cells := s.Diagnostics()
	if cells != 8*6*6 {
		t.Errorf("fluid cells %d", cells)
	}
	if math.Abs(mass-float64(cells)) > 1e-6 {
		t.Errorf("mass %f", mass)
	}
	wantKE := float64(cells) * 0.5 * 0.06 * 0.06
	if math.Abs(ke-wantKE) > 1e-6 {
		t.Errorf("ke %f, want %f", ke, wantKE)
	}
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("rho range [%f,%f]", lo, hi)
	}
	// With a barrier, cells shrink and mass stays bounded across a run.
	pb := testParams(16, 10, 10)
	sb, err := NewSlab(pb, 0, pb.Depth)
	if err != nil {
		t.Fatal(err)
	}
	sb.Step()
	m0, _, _, _, c0 := sb.Diagnostics()
	if c0 >= 16*10*10 {
		t.Errorf("barrier did not remove cells: %d", c0)
	}
	for i := 0; i < 120; i++ {
		sb.Step()
	}
	m1, _, lo1, hi1, _ := sb.Diagnostics()
	if rel := math.Abs(m1-m0) / m0; rel > 0.05 {
		t.Errorf("mass drifted %.2f%%", 100*rel)
	}
	if lo1 < 0.2 || hi1 > 5 {
		t.Errorf("density unstable: [%f,%f]", lo1, hi1)
	}
}

func TestSphereBarrier(t *testing.T) {
	b := SphereBarrier(5, 5, 5, 2)
	if !b(5, 5, 5) || !b(7, 5, 5) {
		t.Error("inside excluded")
	}
	if b(8, 5, 5) || b(5, 8, 8) {
		t.Error("outside included")
	}
}

func BenchmarkStep3D(b *testing.B) {
	p := testParams(32, 24, 24)
	s, err := NewSlab(p, 0, p.Depth)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.Width * p.Height * p.Depth))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
