package fieldcompress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = (rng.Float32() - 0.5) * 100
		}
		maxErr := []float64{1e-4, 1e-2, 0.5}[rng.Intn(3)]
		buf, err := Compress(vals, maxErr)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := Decompress(buf)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range vals {
			// Allow the documented bound: maxErr plus one float32 ulp of
			// the value for the final float32 rounding.
			ulp := math.Abs(float64(vals[i])) * math.Pow(2, -23)
			if math.Abs(float64(got[i])-float64(vals[i])) > maxErr+ulp {
				t.Logf("seed %d: value %d error %g exceeds %g", seed, i,
					math.Abs(float64(got[i])-float64(vals[i])), maxErr+ulp)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSmoothFieldCompressesWell(t *testing.T) {
	// A smooth vorticity-like field must compress far below 4 B/value.
	const w, h = 200, 100
	vals := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vals[y*w+x] = float32(0.05 * math.Sin(float64(x)/15) * math.Cos(float64(y)/11))
		}
	}
	buf, err := Compress(vals, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if r := Ratio(len(vals), len(buf)); r < 3 {
		t.Errorf("smooth field ratio %.1fx, expected > 3x", r)
	}
	// A mostly-zero field (quiet flow regions) must collapse dramatically.
	zeros := make([]float32, w*h)
	for i := 0; i < 50; i++ {
		zeros[i*37] = 0.25
	}
	buf, err = Compress(zeros, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if r := Ratio(len(zeros), len(buf)); r < 50 {
		t.Errorf("sparse field ratio %.1fx, expected > 50x", r)
	}
}

func TestCompressValidation(t *testing.T) {
	if _, err := Compress([]float32{1}, 0); err == nil {
		t.Error("zero error bound accepted")
	}
	if _, err := Compress([]float32{1}, math.Inf(1)); err == nil {
		t.Error("infinite error bound accepted")
	}
	if _, err := Compress([]float32{float32(math.NaN())}, 0.1); err == nil {
		t.Error("NaN value accepted")
	}
	if _, err := Compress([]float32{math.MaxFloat32}, 1e-30); err == nil {
		t.Error("quantizer overflow accepted")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{magic},
		{0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, // wrong magic
	}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Truncated valid stream.
	good, err := Compress([]float32{1, 2, 3, 4, 5}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(good[:len(good)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Decompress(append(good, 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEmptyField(t *testing.T) {
	buf, err := Compress(nil, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d values", len(got))
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag roundtrip failed for %d", v)
		}
	}
}

func BenchmarkCompressSmooth(b *testing.B) {
	const n = 1 << 16
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) / 500))
	}
	b.SetBytes(4 * n)
	for i := 0; i < b.N; i++ {
		if _, err := Compress(vals, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}
