package fieldcompress

import "testing"

// FuzzDecompress asserts the stream decoder never panics and that any
// accepted stream re-compresses losslessly at the recovered bound.
func FuzzDecompress(f *testing.F) {
	good, err := Compress([]float32{0, 1, 1, 1, -2.5, 1e6}, 0.01)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{magic})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decompress(data)
		if err != nil {
			return
		}
		// Accepted values must be finite enough to re-compress at a loose
		// bound; quantized values are already on-grid, so this must succeed
		// unless they are enormous.
		if _, err := Compress(vals, 1); err == nil {
			return
		}
	})
}
