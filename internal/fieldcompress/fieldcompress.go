// Package fieldcompress implements an error-bounded lossy compressor for
// float32 science fields: uniform quantization to a caller-chosen
// absolute error bound, raster-order delta encoding, and zigzag varint
// coding with zero-run collapsing. It is the numerical alternative to the
// paper's render-to-JPEG reduction: where JPEG preserves appearance,
// fieldcompress preserves every value to within maxError, so downstream
// analysis (not just viewing) stays possible.
package fieldcompress

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies the stream format version.
const magic = 0xD7

// Compress encodes vals so that every reconstructed value differs from
// the original by at most maxError plus half a float32 ulp of the value
// (the unavoidable rounding of storing the reconstruction as float32).
// All values must be finite.
func Compress(vals []float32, maxError float64) ([]byte, error) {
	if maxError <= 0 || math.IsNaN(maxError) || math.IsInf(maxError, 0) {
		return nil, fmt.Errorf("fieldcompress: error bound %g must be positive and finite", maxError)
	}
	step := 2 * maxError
	out := make([]byte, 0, 16+len(vals)/4)
	out = append(out, magic)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], math.Float64bits(maxError))
	out = append(out, hdr[:]...)
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(vals)))
	out = append(out, cnt[:]...)

	var prev int64
	zeroRun := 0
	flushZeros := func() {
		for zeroRun > 0 {
			// A zero delta is encoded as varint 0 followed by a varint
			// count of additional zeros collapsed into it.
			out = append(out, 0)
			extra := zeroRun - 1
			out = binary.AppendUvarint(out, uint64(extra))
			zeroRun = 0
		}
	}
	for i, v := range vals {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("fieldcompress: value %d is not finite", i)
		}
		q := int64(math.Round(f / step))
		if q > 1<<61 || q < -(1<<61) {
			return nil, fmt.Errorf("fieldcompress: value %g too large for error bound %g", f, maxError)
		}
		delta := q - prev
		prev = q
		if delta == 0 {
			zeroRun++
			continue
		}
		flushZeros()
		out = binary.AppendUvarint(out, zigzag(delta))
	}
	flushZeros()
	return out, nil
}

// Decompress reverses Compress.
func Decompress(buf []byte) ([]float32, error) {
	if len(buf) < 13 || buf[0] != magic {
		return nil, fmt.Errorf("fieldcompress: bad header")
	}
	maxError := math.Float64frombits(binary.LittleEndian.Uint64(buf[1:]))
	if maxError <= 0 || math.IsNaN(maxError) || math.IsInf(maxError, 0) {
		return nil, fmt.Errorf("fieldcompress: corrupt error bound %g", maxError)
	}
	n := int(binary.LittleEndian.Uint32(buf[9:]))
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("fieldcompress: implausible count %d", n)
	}
	step := 2 * maxError
	buf = buf[13:]
	out := make([]float32, 0, n)
	var prev int64
	for len(out) < n {
		u, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, fmt.Errorf("fieldcompress: truncated stream at value %d", len(out))
		}
		buf = buf[k:]
		delta := unzigzag(u)
		if delta == 0 {
			// Zero delta carries a run count of additional zeros.
			extra, k2 := binary.Uvarint(buf)
			if k2 <= 0 {
				return nil, fmt.Errorf("fieldcompress: truncated zero run at value %d", len(out))
			}
			buf = buf[k2:]
			run := int(extra) + 1
			if len(out)+run > n {
				return nil, fmt.Errorf("fieldcompress: zero run overflows count")
			}
			v := float32(float64(prev) * step)
			for i := 0; i < run; i++ {
				out = append(out, v)
			}
			continue
		}
		prev += delta
		out = append(out, float32(float64(prev)*step))
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("fieldcompress: %d trailing bytes", len(buf))
	}
	return out, nil
}

// zigzag maps signed to unsigned preserving small magnitudes.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Ratio reports the compression ratio (raw float32 bytes over compressed
// bytes) for reporting.
func Ratio(nValues, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return 0
	}
	return float64(4*nValues) / float64(compressedBytes)
}
