// Package tiff implements the subset of TIFF 6.0 the paper's medical-
// imaging use case depends on: single-plane grayscale images with 8, 16,
// or 32 bits per sample (unsigned integer or IEEE float), uncompressed,
// strip-based, in either byte order. CT slice stacks at Argonne's APS are
// stored exactly this way.
//
// The decoder deliberately mirrors the constraint the paper discusses:
// reading any pixel requires decoding the full image, which is what makes
// naive parallel loading so expensive and DDR's single-reader-per-image
// strategy so effective.
package tiff

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// SampleFormat describes how sample bits are interpreted.
type SampleFormat int

// Supported sample formats (TIFF tag 339 values).
const (
	FormatUint  SampleFormat = 1
	FormatFloat SampleFormat = 3
)

func (f SampleFormat) String() string {
	switch f {
	case FormatUint:
		return "uint"
	case FormatFloat:
		return "float"
	}
	return fmt.Sprintf("SampleFormat(%d)", int(f))
}

// Image is a decoded grayscale image. Pixels holds Width*Height samples
// row-major, each BitsPerSample/8 bytes in little-endian order regardless
// of the byte order of the file it came from.
type Image struct {
	Width         int
	Height        int
	BitsPerSample int
	SampleFormat  SampleFormat
	Pixels        []byte
}

// BytesPerSample returns the byte size of one sample.
func (im *Image) BytesPerSample() int { return im.BitsPerSample / 8 }

// Validate checks structural consistency.
func (im *Image) Validate() error {
	switch im.BitsPerSample {
	case 8, 16, 32:
	default:
		return fmt.Errorf("tiff: unsupported bits per sample %d", im.BitsPerSample)
	}
	if im.SampleFormat == FormatFloat && im.BitsPerSample != 32 {
		return fmt.Errorf("tiff: float samples must be 32-bit, got %d", im.BitsPerSample)
	}
	if im.SampleFormat != FormatUint && im.SampleFormat != FormatFloat {
		return fmt.Errorf("tiff: unsupported sample format %v", im.SampleFormat)
	}
	if im.Width <= 0 || im.Height <= 0 {
		return fmt.Errorf("tiff: invalid dimensions %dx%d", im.Width, im.Height)
	}
	if want := im.Width * im.Height * im.BytesPerSample(); len(im.Pixels) != want {
		return fmt.Errorf("tiff: pixel buffer has %d bytes, want %d", len(im.Pixels), want)
	}
	return nil
}

// TIFF tag numbers used by this codec.
const (
	tagImageWidth    = 256
	tagImageLength   = 257
	tagBitsPerSample = 258
	tagCompression   = 259
	tagPhotometric   = 262
	tagStripOffsets  = 273
	tagRowsPerStrip  = 278
	tagStripCounts   = 279
	tagSampleFormat  = 339
)

// TIFF field types.
const (
	typeShort = 3
	typeLong  = 4
)

// Compression identifies the strip compression scheme (TIFF tag 259).
type Compression int

// Supported compression schemes.
const (
	CompressionNone     Compression = 1
	CompressionPackBits Compression = 32773
)

func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionPackBits:
		return "packbits"
	}
	return fmt.Sprintf("Compression(%d)", int(c))
}

// EncodeOptions configures Encode's strip layout and compression.
type EncodeOptions struct {
	// Compression defaults to CompressionNone.
	Compression Compression
	// RowsPerStrip defaults to 64.
	RowsPerStrip int
}

// Encode writes img as a little-endian, strip-based, uncompressed TIFF.
// Strips hold up to 64 rows each, mirroring common scientific writers.
func Encode(w io.Writer, img *Image) error {
	return EncodeWithOptions(w, img, EncodeOptions{})
}

// EncodeWithOptions writes img with explicit strip and compression
// settings.
func EncodeWithOptions(w io.Writer, img *Image, opts EncodeOptions) error {
	if err := img.Validate(); err != nil {
		return err
	}
	if opts.Compression == 0 {
		opts.Compression = CompressionNone
	}
	if opts.Compression != CompressionNone && opts.Compression != CompressionPackBits {
		return fmt.Errorf("tiff: unsupported compression %v", opts.Compression)
	}
	rowsPerStrip := opts.RowsPerStrip
	if rowsPerStrip <= 0 {
		rowsPerStrip = 64
	}
	bps := img.BytesPerSample()
	rowBytes := img.Width * bps
	nStrips := (img.Height + rowsPerStrip - 1) / rowsPerStrip

	// Build strip payloads (compressing per row, as the spec requires).
	strips := make([][]byte, nStrips)
	for s := 0; s < nStrips; s++ {
		rows := rowsPerStrip
		if r := img.Height - s*rowsPerStrip; r < rows {
			rows = r
		}
		raw := img.Pixels[s*rowsPerStrip*rowBytes : (s*rowsPerStrip+rows)*rowBytes]
		if opts.Compression == CompressionNone {
			strips[s] = raw
			continue
		}
		var enc []byte
		for r := 0; r < rows; r++ {
			enc = packBitsEncodeRow(enc, raw[r*rowBytes:(r+1)*rowBytes])
		}
		strips[s] = enc
	}

	// Layout: 8-byte header, pixel strips, then the IFD and its overflow
	// arrays at the end of the file.
	entries := []struct {
		tag   uint16
		typ   uint16
		count uint32
		value uint32
	}{
		{tagImageWidth, typeLong, 1, uint32(img.Width)},
		{tagImageLength, typeLong, 1, uint32(img.Height)},
		{tagBitsPerSample, typeShort, 1, uint32(img.BitsPerSample)},
		{tagCompression, typeShort, 1, uint32(opts.Compression)},
		{tagPhotometric, typeShort, 1, 1}, // BlackIsZero
		{tagStripOffsets, typeLong, uint32(nStrips), 0},
		{tagRowsPerStrip, typeLong, 1, uint32(rowsPerStrip)},
		{tagStripCounts, typeLong, uint32(nStrips), 0},
		{tagSampleFormat, typeShort, 1, uint32(img.SampleFormat)},
	}

	dataStart := uint32(8)
	stripOffsets := make([]uint32, nStrips)
	stripCounts := make([]uint32, nStrips)
	off := dataStart
	for s := 0; s < nStrips; s++ {
		stripOffsets[s] = off
		stripCounts[s] = uint32(len(strips[s]))
		off += stripCounts[s]
	}
	ifdOffset := off
	// IFD: count + entries + next pointer; overflow arrays follow.
	overflow := ifdOffset + 2 + uint32(len(entries))*12 + 4
	var offsetsPos, countsPos uint32
	if nStrips > 1 {
		offsetsPos = overflow
		countsPos = overflow + uint32(nStrips)*4
	}
	for i := range entries {
		switch entries[i].tag {
		case tagStripOffsets:
			if nStrips == 1 {
				entries[i].value = stripOffsets[0]
			} else {
				entries[i].value = offsetsPos
			}
		case tagStripCounts:
			if nStrips == 1 {
				entries[i].value = stripCounts[0]
			} else {
				entries[i].value = countsPos
			}
		}
	}

	le := binary.LittleEndian
	hdr := make([]byte, 8)
	hdr[0], hdr[1] = 'I', 'I'
	le.PutUint16(hdr[2:], 42)
	le.PutUint32(hdr[4:], ifdOffset)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, strip := range strips {
		if _, err := w.Write(strip); err != nil {
			return err
		}
	}
	ifd := make([]byte, 2+len(entries)*12+4)
	le.PutUint16(ifd, uint16(len(entries)))
	for i, e := range entries {
		base := 2 + i*12
		le.PutUint16(ifd[base:], e.tag)
		le.PutUint16(ifd[base+2:], e.typ)
		le.PutUint32(ifd[base+4:], e.count)
		if e.typ == typeShort && e.count == 1 {
			le.PutUint16(ifd[base+8:], uint16(e.value))
		} else {
			le.PutUint32(ifd[base+8:], e.value)
		}
	}
	if _, err := w.Write(ifd); err != nil {
		return err
	}
	if nStrips > 1 {
		arrays := make([]byte, nStrips*8)
		for s := 0; s < nStrips; s++ {
			le.PutUint32(arrays[s*4:], stripOffsets[s])
			le.PutUint32(arrays[(nStrips+s)*4:], stripCounts[s])
		}
		if _, err := w.Write(arrays); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses a TIFF produced by this package or any uncompressed
// single-plane grayscale writer, in either byte order. Multi-byte samples
// are normalized to little-endian.
func Decode(data []byte) (*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("tiff: file too short")
	}
	var bo binary.ByteOrder
	switch {
	case data[0] == 'I' && data[1] == 'I':
		bo = binary.LittleEndian
	case data[0] == 'M' && data[1] == 'M':
		bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("tiff: bad byte-order mark %q", data[:2])
	}
	if bo.Uint16(data[2:]) != 42 {
		return nil, fmt.Errorf("tiff: bad magic")
	}
	img, _, err := decodeIFD(data, bo, bo.Uint32(data[4:]))
	return img, err
}

// decodeIFD parses one image file directory and its pixel data, returning
// the image and the offset of the next IFD in the chain (0 = last).
func decodeIFD(data []byte, bo binary.ByteOrder, ifdOff uint32) (*Image, uint32, error) {
	if int64(ifdOff)+2 > int64(len(data)) {
		return nil, 0, fmt.Errorf("tiff: IFD offset out of range")
	}
	n := int(bo.Uint16(data[ifdOff:]))
	if int64(ifdOff)+2+int64(n)*12+4 > int64(len(data)) {
		return nil, 0, fmt.Errorf("tiff: truncated IFD")
	}
	nextIFD := bo.Uint32(data[int64(ifdOff)+2+int64(n)*12:])

	img := &Image{BitsPerSample: 8, SampleFormat: FormatUint}
	rowsPerStrip := int64(1) << 31
	var stripOffsets, stripCounts []uint32
	compression := 1

	readArray := func(typ uint16, count, value uint32, raw []byte) ([]uint32, error) {
		elemSize := 2
		if typ == typeLong {
			elemSize = 4
		} else if typ != typeShort {
			return nil, fmt.Errorf("tiff: unsupported field type %d", typ)
		}
		out := make([]uint32, count)
		total := int(count) * elemSize
		var src []byte
		if total <= 4 {
			src = raw // the inline value bytes
		} else {
			if int64(value)+int64(total) > int64(len(data)) {
				return nil, fmt.Errorf("tiff: array out of range")
			}
			src = data[value:]
		}
		for i := range out {
			if elemSize == 2 {
				out[i] = uint32(bo.Uint16(src[i*2:]))
			} else {
				out[i] = bo.Uint32(src[i*4:])
			}
		}
		return out, nil
	}

	for i := 0; i < n; i++ {
		base := ifdOff + 2 + uint32(i)*12
		tag := bo.Uint16(data[base:])
		typ := bo.Uint16(data[base+2:])
		count := bo.Uint32(data[base+4:])
		rawValue := data[base+8 : base+12]
		value := bo.Uint32(rawValue)
		scalar := func() uint32 {
			if typ == typeShort {
				return uint32(bo.Uint16(rawValue))
			}
			return value
		}
		switch tag {
		case tagImageWidth:
			img.Width = int(scalar())
		case tagImageLength:
			img.Height = int(scalar())
		case tagBitsPerSample:
			if count != 1 {
				return nil, 0, fmt.Errorf("tiff: %d samples per pixel unsupported", count)
			}
			img.BitsPerSample = int(scalar())
		case tagCompression:
			compression = int(scalar())
		case tagSampleFormat:
			img.SampleFormat = SampleFormat(scalar())
		case tagRowsPerStrip:
			rowsPerStrip = int64(scalar())
		case tagStripOffsets:
			var err error
			if stripOffsets, err = readArray(typ, count, value, rawValue); err != nil {
				return nil, 0, err
			}
		case tagStripCounts:
			var err error
			if stripCounts, err = readArray(typ, count, value, rawValue); err != nil {
				return nil, 0, err
			}
		}
	}
	if Compression(compression) != CompressionNone && Compression(compression) != CompressionPackBits {
		return nil, 0, fmt.Errorf("tiff: compression %d unsupported", compression)
	}
	if len(stripOffsets) == 0 || len(stripOffsets) != len(stripCounts) {
		return nil, 0, fmt.Errorf("tiff: inconsistent strip tables (%d offsets, %d counts)",
			len(stripOffsets), len(stripCounts))
	}
	bps := img.BitsPerSample / 8
	if bps == 0 {
		return nil, 0, fmt.Errorf("tiff: unsupported bits per sample %d", img.BitsPerSample)
	}
	if img.Width <= 0 || img.Height <= 0 {
		return nil, 0, fmt.Errorf("tiff: invalid dimensions %dx%d", img.Width, img.Height)
	}
	img.Pixels = make([]byte, img.Width*img.Height*bps)
	rowBytes := img.Width * bps
	if rowsPerStrip <= 0 {
		return nil, 0, fmt.Errorf("tiff: invalid rows per strip %d", rowsPerStrip)
	}
	written := 0
	for s := range stripOffsets {
		off, cnt := int64(stripOffsets[s]), int64(stripCounts[s])
		if off+cnt > int64(len(data)) {
			return nil, 0, fmt.Errorf("tiff: strip %d out of range", s)
		}
		rowsLeft := int64(img.Height) - int64(s)*rowsPerStrip
		if rowsLeft <= 0 {
			return nil, 0, fmt.Errorf("tiff: strip %d beyond image height", s)
		}
		if rowsLeft > rowsPerStrip {
			rowsLeft = rowsPerStrip
		}
		expect := int(rowsLeft) * rowBytes
		if written+expect > len(img.Pixels) {
			return nil, 0, fmt.Errorf("tiff: strips exceed image size")
		}
		src := data[off : off+cnt]
		if Compression(compression) == CompressionPackBits {
			if err := packBitsDecode(img.Pixels[written:written+expect], src); err != nil {
				return nil, 0, fmt.Errorf("tiff: strip %d: %w", s, err)
			}
		} else {
			if int(cnt) != expect {
				return nil, 0, fmt.Errorf("tiff: strip %d holds %d bytes, want %d", s, cnt, expect)
			}
			copy(img.Pixels[written:], src)
		}
		written += expect
	}
	if written != len(img.Pixels) {
		return nil, 0, fmt.Errorf("tiff: strips cover %d of %d pixel bytes", written, len(img.Pixels))
	}
	// Normalize sample byte order.
	if bo == binary.BigEndian && bps > 1 {
		for i := 0; i < len(img.Pixels); i += bps {
			for a, b := i, i+bps-1; a < b; a, b = a+1, b-1 {
				img.Pixels[a], img.Pixels[b] = img.Pixels[b], img.Pixels[a]
			}
		}
	}
	if err := img.Validate(); err != nil {
		return nil, 0, err
	}
	return img, nextIFD, nil
}

// WriteFile encodes img to path.
func WriteFile(path string, img *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads and decodes the TIFF at path. Like all common TIFF
// readers it must ingest the whole file even when the caller wants only a
// few pixels — the cost DDR's load balancing amortizes.
func ReadFile(path string) (*Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return img, nil
}
