package tiff

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts the TIFF decoder never panics and that anything it
// accepts re-encodes and decodes to identical pixels.
func FuzzDecode(f *testing.F) {
	// Seed with a valid little-endian file and a valid big-endian header.
	img, err := GenerateSlice(8, 6, 2, 0, 16, FormatUint)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var packed bytes.Buffer
	if err := EncodeWithOptions(&packed, img, EncodeOptions{Compression: CompressionPackBits}); err != nil {
		f.Fatal(err)
	}
	f.Add(packed.Bytes())
	f.Add([]byte("II\x2a\x00\x08\x00\x00\x00"))
	f.Add([]byte("MM\x00\x2a\x00\x00\x00\x08"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := Encode(&re, got); err != nil {
			t.Fatalf("accepted image fails to encode: %v", err)
		}
		back, err := Decode(re.Bytes())
		if err != nil {
			t.Fatalf("re-encoded image fails to decode: %v", err)
		}
		if !bytes.Equal(back.Pixels, got.Pixels) {
			t.Fatal("pixels changed across re-encode")
		}
	})
}

// FuzzPackBits asserts the PackBits decoder never panics or overruns.
func FuzzPackBits(f *testing.F) {
	f.Add([]byte{0x00, 0xAA}, 1)
	f.Add([]byte{0xFE, 0x7}, 3)
	f.Fuzz(func(t *testing.T, src []byte, n int) {
		if n < 0 || n > 1<<16 {
			return
		}
		dst := make([]byte, n)
		_ = packBitsDecode(dst, src) //nolint:errcheck // looking for panics only
	})
}
