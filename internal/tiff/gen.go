package tiff

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// SyntheticDensity evaluates a smooth synthetic CT-like density field at
// normalized coordinates in [0,1]^3. The field is a dense two-lobed core
// (dentin) wrapped in a thin high-density shell (enamel) over a softer
// background, loosely resembling the paper's primate-tooth data set. The
// value lies in [0,1].
func SyntheticDensity(x, y, z float64) float64 {
	lobe := func(cx, cy, cz, rx, ry, rz float64) float64 {
		dx, dy, dz := (x-cx)/rx, (y-cy)/ry, (z-cz)/rz
		return math.Exp(-(dx*dx + dy*dy + dz*dz))
	}
	core := 0.75*lobe(0.42, 0.5, 0.45, 0.22, 0.28, 0.3) +
		0.65*lobe(0.6, 0.48, 0.62, 0.18, 0.24, 0.22)
	// Enamel shell: a ridge where the core falls through 0.35.
	shell := math.Exp(-math.Pow((core-0.35)/0.06, 2)) * 0.5
	// Faint embedding medium with a slow gradient.
	medium := 0.05 + 0.04*z
	v := medium + core + shell
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// GenerateSlice renders slice zi of a w×h×d synthetic volume as an Image
// with the requested sample depth and format.
func GenerateSlice(w, h, d, zi, bits int, format SampleFormat) (*Image, error) {
	img := &Image{
		Width:         w,
		Height:        h,
		BitsPerSample: bits,
		SampleFormat:  format,
		Pixels:        make([]byte, w*h*bits/8),
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	z := 0.5
	if d > 1 {
		z = float64(zi) / float64(d-1)
	}
	bps := bits / 8
	i := 0
	for yi := 0; yi < h; yi++ {
		y := 0.5
		if h > 1 {
			y = float64(yi) / float64(h-1)
		}
		for xi := 0; xi < w; xi++ {
			x := 0.5
			if w > 1 {
				x = float64(xi) / float64(w-1)
			}
			v := SyntheticDensity(x, y, z)
			switch {
			case format == FormatFloat:
				binary.LittleEndian.PutUint32(img.Pixels[i:], math.Float32bits(float32(v)))
			case bits == 8:
				img.Pixels[i] = byte(v*254 + 0.5)
			case bits == 16:
				binary.LittleEndian.PutUint16(img.Pixels[i:], uint16(v*65534+0.5))
			default: // 32-bit uint
				binary.LittleEndian.PutUint32(img.Pixels[i:], uint32(v*float64(math.MaxUint32-1)))
			}
			i += bps
		}
	}
	return img, nil
}

// SlicePath returns the canonical file name of slice index within dir,
// matching the zero-padded naming CT acquisition software emits.
func SlicePath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("slice_%05d.tif", index))
}

// WriteStack generates a full synthetic stack of d slices of a w×h×d
// volume into dir, one TIFF per slice.
func WriteStack(dir string, w, h, d, bits int, format SampleFormat) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for zi := 0; zi < d; zi++ {
		img, err := GenerateSlice(w, h, d, zi, bits, format)
		if err != nil {
			return err
		}
		if err := WriteFile(SlicePath(dir, zi), img); err != nil {
			return err
		}
	}
	return nil
}

// StackInfo describes a slice stack on disk.
type StackInfo struct {
	Dir           string
	Width, Height int
	Depth         int
	BitsPerSample int
	SampleFormat  SampleFormat
}

// BytesPerSample returns the sample byte size.
func (s StackInfo) BytesPerSample() int { return s.BitsPerSample / 8 }

// ProbeStack inspects dir, counting consecutive slice files from index 0
// and reading the first one for geometry.
func ProbeStack(dir string) (StackInfo, error) {
	depth := 0
	for {
		if _, err := os.Stat(SlicePath(dir, depth)); err != nil {
			break
		}
		depth++
	}
	if depth == 0 {
		return StackInfo{}, fmt.Errorf("tiff: no slices found in %s", dir)
	}
	first, err := ReadFile(SlicePath(dir, 0))
	if err != nil {
		return StackInfo{}, err
	}
	return StackInfo{
		Dir:           dir,
		Width:         first.Width,
		Height:        first.Height,
		Depth:         depth,
		BitsPerSample: first.BitsPerSample,
		SampleFormat:  first.SampleFormat,
	}, nil
}
