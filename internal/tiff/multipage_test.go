package tiff

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestMultiPageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pages := []*Image{
		randomImage(rng, 12, 7, 8, FormatUint),
		randomImage(rng, 12, 7, 8, FormatUint),
		randomImage(rng, 12, 7, 8, FormatUint),
	}
	var buf bytes.Buffer
	if err := EncodeMulti(&buf, pages); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d pages", len(got))
	}
	for i := range pages {
		if !bytes.Equal(got[i].Pixels, pages[i].Pixels) {
			t.Errorf("page %d pixels differ", i)
		}
	}
	// The first page must also be readable through the single-image API.
	first, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Pixels, pages[0].Pixels) {
		t.Error("Decode does not return page 0")
	}
}

func TestMultiPageHeterogeneousPages(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pages := []*Image{
		randomImage(rng, 6, 4, 16, FormatUint),
		randomImage(rng, 10, 3, 32, FormatFloat),
	}
	var buf bytes.Buffer
	if err := EncodeMulti(&buf, pages); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].BitsPerSample != 16 || got[1].SampleFormat != FormatFloat {
		t.Errorf("page metadata lost: %+v %+v", got[0], got[1])
	}
}

func TestDecodeAllSinglePageFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	img := randomImage(rng, 20, 9, 16, FormatUint)
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	pages, err := DecodeAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || !bytes.Equal(pages[0].Pixels, img.Pixels) {
		t.Error("single-page file mishandled by DecodeAll")
	}
}

func TestDecodeAllRejectsCycles(t *testing.T) {
	// Build a two-page file, then patch page 1's next pointer back to
	// page 0's IFD to form a cycle.
	rng := rand.New(rand.NewSource(12))
	pages := []*Image{
		randomImage(rng, 4, 4, 8, FormatUint),
		randomImage(rng, 4, 4, 8, FormatUint),
	}
	var buf bytes.Buffer
	if err := EncodeMulti(&buf, pages); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	le := binary.LittleEndian
	firstIFD := le.Uint32(data[4:])
	// Page layout: [hdr][pix0][ifd0][pix1][ifd1]; ifd1's next pointer is the
	// last 4 bytes of the file.
	le.PutUint32(data[len(data)-4:], firstIFD)
	if _, err := DecodeAll(data); err == nil {
		t.Error("IFD cycle accepted")
	}
}

func TestEncodeMultiValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeMulti(&buf, nil); err == nil {
		t.Error("empty page list accepted")
	}
	bad := &Image{Width: 2, Height: 2, BitsPerSample: 8, SampleFormat: FormatUint, Pixels: make([]byte, 1)}
	if err := EncodeMulti(&buf, []*Image{bad}); err == nil {
		t.Error("invalid page accepted")
	}
}
