package tiff

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func packBitsRoundTrip(row []byte) ([]byte, error) {
	enc := packBitsEncodeRow(nil, row)
	dec := make([]byte, len(row))
	if err := packBitsDecode(dec, enc); err != nil {
		return nil, err
	}
	return dec, nil
}

func TestPackBitsKnownVectors(t *testing.T) {
	// The classic Apple TN1023 example.
	src := []byte{
		0xAA, 0xAA, 0xAA, 0x80, 0x00, 0x2A, 0xAA, 0xAA, 0xAA, 0xAA,
		0x80, 0x00, 0x2A, 0x22, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA,
		0xAA, 0xAA, 0xAA, 0xAA,
	}
	dec, err := packBitsRoundTrip(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Errorf("roundtrip mismatch:\n got %x\nwant %x", dec, src)
	}
}

func TestPackBitsRunsCompress(t *testing.T) {
	row := bytes.Repeat([]byte{7}, 300)
	enc := packBitsEncodeRow(nil, row)
	if len(enc) > 8 {
		t.Errorf("300-byte run encoded to %d bytes", len(enc))
	}
	dec := make([]byte, 300)
	if err := packBitsDecode(dec, enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, row) {
		t.Error("run roundtrip mismatch")
	}
}

func TestPackBitsLiteralWorstCase(t *testing.T) {
	row := make([]byte, 257)
	for i := range row {
		row[i] = byte(i * 37)
	}
	enc := packBitsEncodeRow(nil, row)
	// Worst case adds one control byte per 128 literals.
	if len(enc) > len(row)+3 {
		t.Errorf("literal row of %d encoded to %d bytes", len(row), len(enc))
	}
	dec, err := packBitsRoundTrip(row)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, row) {
		t.Error("literal roundtrip mismatch")
	}
}

func TestPackBitsRoundTripProperty(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1000)
		row := make([]byte, n)
		switch mode % 3 {
		case 0: // random
			rng.Read(row)
		case 1: // runs
			for i := 0; i < n; {
				v := byte(rng.Intn(4))
				l := 1 + rng.Intn(200)
				for j := 0; j < l && i < n; j++ {
					row[i] = v
					i++
				}
			}
		default: // alternating pairs (stress literal/run boundary logic)
			for i := range row {
				row[i] = byte((i / 2) % 3)
			}
		}
		dec, err := packBitsRoundTrip(row)
		if err != nil {
			t.Logf("seed %d mode %d: %v", seed, mode, err)
			return false
		}
		return bytes.Equal(dec, row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackBitsDecodeRejectsMalformed(t *testing.T) {
	// Literal overruns input.
	if err := packBitsDecode(make([]byte, 10), []byte{5, 1, 2}); err == nil {
		t.Error("truncated literal accepted")
	}
	// Run missing value byte.
	if err := packBitsDecode(make([]byte, 10), []byte{0xFE}); err == nil {
		t.Error("truncated run accepted")
	}
	// Output overflow.
	if err := packBitsDecode(make([]byte, 2), []byte{0xFD, 9}); err == nil {
		t.Error("overflow accepted")
	}
	// Short output.
	if err := packBitsDecode(make([]byte, 10), []byte{0x00, 9}); err == nil {
		t.Error("underfull output accepted")
	}
	// No-op control byte is skipped harmlessly.
	if err := packBitsDecode(make([]byte, 1), []byte{0x80, 0x00, 7}); err != nil {
		t.Errorf("no-op byte: %v", err)
	}
}

func TestEncodePackBitsTIFF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A smooth-ish image with long runs compresses well and exercises the
	// full encode/decode path.
	img := &Image{Width: 200, Height: 90, BitsPerSample: 8, SampleFormat: FormatUint,
		Pixels: make([]byte, 200*90)}
	for y := 0; y < 90; y++ {
		for x := 0; x < 200; x++ {
			img.Pixels[y*200+x] = byte(y / 8)
		}
	}
	var plain, packed bytes.Buffer
	if err := Encode(&plain, img); err != nil {
		t.Fatal(err)
	}
	if err := EncodeWithOptions(&packed, img, EncodeOptions{Compression: CompressionPackBits}); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len()/10 {
		t.Errorf("packbits %d bytes vs plain %d: expected >10x on runs", packed.Len(), plain.Len())
	}
	got, err := Decode(packed.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pixels, img.Pixels) {
		t.Error("packbits TIFF roundtrip mismatch")
	}

	// Random 16-bit data (incompressible) must still roundtrip.
	img2 := randomImage(rng, 63, 41, 16, FormatUint)
	var buf2 bytes.Buffer
	if err := EncodeWithOptions(&buf2, img2, EncodeOptions{Compression: CompressionPackBits, RowsPerStrip: 7}); err != nil {
		t.Fatal(err)
	}
	got2, err := Decode(buf2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Pixels, img2.Pixels) {
		t.Error("random packbits roundtrip mismatch")
	}
}

func TestEncodeWithOptionsValidation(t *testing.T) {
	img := &Image{Width: 2, Height: 2, BitsPerSample: 8, SampleFormat: FormatUint, Pixels: make([]byte, 4)}
	var buf bytes.Buffer
	if err := EncodeWithOptions(&buf, img, EncodeOptions{Compression: Compression(5)}); err == nil {
		t.Error("unknown compression accepted")
	}
	if CompressionNone.String() != "none" || CompressionPackBits.String() != "packbits" {
		t.Error("compression names")
	}
}
