package tiff

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Multi-page TIFF support: CT acquisitions frequently store the whole
// slice stack as one file with a chain of IFDs rather than thousands of
// single-image files. DecodeAll walks the chain; EncodeMulti writes one.
// The paper's cost argument is unchanged — each page still decodes in
// full even when only a few pixels are needed.

// DecodeAll parses every page of a TIFF file in IFD-chain order. Files
// written by Encode contain exactly one page.
func DecodeAll(data []byte) ([]*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("tiff: file too short")
	}
	var bo binary.ByteOrder
	switch {
	case data[0] == 'I' && data[1] == 'I':
		bo = binary.LittleEndian
	case data[0] == 'M' && data[1] == 'M':
		bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("tiff: bad byte-order mark %q", data[:2])
	}
	if bo.Uint16(data[2:]) != 42 {
		return nil, fmt.Errorf("tiff: bad magic")
	}
	var pages []*Image
	seen := map[uint32]bool{}
	off := bo.Uint32(data[4:])
	for off != 0 {
		if seen[off] {
			return nil, fmt.Errorf("tiff: IFD cycle at offset %d", off)
		}
		seen[off] = true
		if len(pages) > 1<<16 {
			return nil, fmt.Errorf("tiff: more than %d pages", 1<<16)
		}
		img, next, err := decodeIFD(data, bo, off)
		if err != nil {
			return nil, fmt.Errorf("tiff: page %d: %w", len(pages), err)
		}
		pages = append(pages, img)
		off = next
	}
	if len(pages) == 0 {
		return nil, fmt.Errorf("tiff: no pages")
	}
	return pages, nil
}

// EncodeMulti writes pages as one little-endian multi-page TIFF. All
// pages are written uncompressed with a single strip each (the layout is
// simple because offsets must be known up front).
func EncodeMulti(w io.Writer, pages []*Image) error {
	if len(pages) == 0 {
		return fmt.Errorf("tiff: no pages to encode")
	}
	for i, img := range pages {
		if err := img.Validate(); err != nil {
			return fmt.Errorf("tiff: page %d: %w", i, err)
		}
	}
	le := binary.LittleEndian
	const nEntries = 9
	ifdBytes := uint32(2 + nEntries*12 + 4)

	// Layout: header, then per page [pixels, IFD].
	offsets := make([]uint32, len(pages))   // pixel data offset per page
	ifdOffset := make([]uint32, len(pages)) // IFD offset per page
	pos := uint32(8)
	for i, img := range pages {
		offsets[i] = pos
		pos += uint32(len(img.Pixels))
		ifdOffset[i] = pos
		pos += ifdBytes
	}

	hdr := make([]byte, 8)
	hdr[0], hdr[1] = 'I', 'I'
	le.PutUint16(hdr[2:], 42)
	le.PutUint32(hdr[4:], ifdOffset[0])
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for i, img := range pages {
		if _, err := w.Write(img.Pixels); err != nil {
			return err
		}
		next := uint32(0)
		if i+1 < len(pages) {
			next = ifdOffset[i+1]
		}
		ifd := make([]byte, ifdBytes)
		le.PutUint16(ifd, nEntries)
		entries := []struct {
			tag, typ uint16
			value    uint32
		}{
			{tagImageWidth, typeLong, uint32(img.Width)},
			{tagImageLength, typeLong, uint32(img.Height)},
			{tagBitsPerSample, typeShort, uint32(img.BitsPerSample)},
			{tagCompression, typeShort, 1},
			{tagPhotometric, typeShort, 1},
			{tagStripOffsets, typeLong, offsets[i]},
			{tagRowsPerStrip, typeLong, uint32(img.Height)},
			{tagStripCounts, typeLong, uint32(len(img.Pixels))},
			{tagSampleFormat, typeShort, uint32(img.SampleFormat)},
		}
		for j, e := range entries {
			base := 2 + j*12
			le.PutUint16(ifd[base:], e.tag)
			le.PutUint16(ifd[base+2:], e.typ)
			le.PutUint32(ifd[base+4:], 1)
			if e.typ == typeShort {
				le.PutUint16(ifd[base+8:], uint16(e.value))
			} else {
				le.PutUint32(ifd[base+8:], e.value)
			}
		}
		le.PutUint32(ifd[2+nEntries*12:], next)
		if _, err := w.Write(ifd); err != nil {
			return err
		}
	}
	return nil
}
