package tiff

import "fmt"

// PackBits is the byte-oriented run-length scheme of TIFF compression
// type 32773 (Apple PackBits). TIFF requires the encoder to restart
// compression at every row boundary; packBitsEncode therefore operates on
// one row at a time and strips concatenate encoded rows.

// packBitsEncodeRow compresses one row, appending to dst.
func packBitsEncodeRow(dst, row []byte) []byte {
	i := 0
	for i < len(row) {
		// Find a run of equal bytes.
		run := 1
		for i+run < len(row) && run < 128 && row[i+run] == row[i] {
			run++
		}
		if run >= 2 {
			dst = append(dst, byte(257-run), row[i])
			i += run
			continue
		}
		// Literal segment: until the next run of >= 3 (runs of 2 are not
		// worth breaking a literal for) or 128 bytes.
		start := i
		i++
		for i < len(row) && i-start < 128 {
			if i+2 < len(row) && row[i] == row[i+1] && row[i] == row[i+2] {
				break
			}
			// A trailing pair at the very end is cheaper inside the literal.
			if i+2 == len(row) && row[i] == row[i+1] {
				i += 2
				if i-start > 128 {
					i = start + 128
				}
				break
			}
			i++
		}
		n := i - start
		dst = append(dst, byte(n-1))
		dst = append(dst, row[start:start+n]...)
	}
	return dst
}

// packBitsDecode expands src into dst, which must be exactly the expected
// decompressed size. It returns an error on malformed or overlong input.
func packBitsDecode(dst, src []byte) error {
	d := 0
	for i := 0; i < len(src); {
		ctrl := int8(src[i])
		i++
		switch {
		case ctrl >= 0:
			n := int(ctrl) + 1
			if i+n > len(src) {
				return fmt.Errorf("tiff: packbits literal of %d bytes overruns input", n)
			}
			if d+n > len(dst) {
				return fmt.Errorf("tiff: packbits output overflow at byte %d", d)
			}
			copy(dst[d:], src[i:i+n])
			i += n
			d += n
		case ctrl == -128:
			// No-op per spec.
		default:
			n := 1 - int(ctrl)
			if i >= len(src) {
				return fmt.Errorf("tiff: packbits run missing value byte")
			}
			if d+n > len(dst) {
				return fmt.Errorf("tiff: packbits output overflow at byte %d", d)
			}
			v := src[i]
			i++
			for k := 0; k < n; k++ {
				dst[d+k] = v
			}
			d += n
		}
	}
	if d != len(dst) {
		return fmt.Errorf("tiff: packbits produced %d of %d bytes", d, len(dst))
	}
	return nil
}
