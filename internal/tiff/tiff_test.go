package tiff

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randomImage(rng *rand.Rand, w, h, bits int, format SampleFormat) *Image {
	img := &Image{
		Width:         w,
		Height:        h,
		BitsPerSample: bits,
		SampleFormat:  format,
		Pixels:        make([]byte, w*h*bits/8),
	}
	rng.Read(img.Pixels)
	if format == FormatFloat {
		// Keep floats finite so value-level comparisons are meaningful.
		for i := 0; i < len(img.Pixels); i += 4 {
			binary.LittleEndian.PutUint32(img.Pixels[i:], math.Float32bits(rng.Float32()))
		}
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		w, h, bits int
		format     SampleFormat
	}{
		{1, 1, 8, FormatUint},
		{17, 9, 8, FormatUint},
		{64, 64, 16, FormatUint},
		{33, 200, 32, FormatUint}, // multiple strips (64 rows each)
		{40, 70, 32, FormatFloat},
		{128, 65, 8, FormatUint},
	}
	for _, c := range cases {
		img := randomImage(rng, c.w, c.h, c.bits, c.format)
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			t.Fatalf("%dx%d/%d: encode: %v", c.w, c.h, c.bits, err)
		}
		got, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("%dx%d/%d: decode: %v", c.w, c.h, c.bits, err)
		}
		if got.Width != c.w || got.Height != c.h || got.BitsPerSample != c.bits || got.SampleFormat != c.format {
			t.Fatalf("%dx%d/%d: header mismatch: %+v", c.w, c.h, c.bits, got)
		}
		if !bytes.Equal(got.Pixels, img.Pixels) {
			t.Fatalf("%dx%d/%d: pixels differ", c.w, c.h, c.bits)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(80)
		h := 1 + rng.Intn(150)
		bits := []int{8, 16, 32}[rng.Intn(3)]
		format := FormatUint
		if bits == 32 && rng.Intn(2) == 1 {
			format = FormatFloat
		}
		img := randomImage(rng, w, h, bits, format)
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			return false
		}
		got, err := Decode(buf.Bytes())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Pixels, img.Pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecodeBigEndian(t *testing.T) {
	// Hand-build a minimal big-endian TIFF: 2x2, 16-bit gray, one strip.
	pixels := []byte{0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0} // BE samples
	be := binary.BigEndian
	var buf bytes.Buffer
	hdr := make([]byte, 8)
	hdr[0], hdr[1] = 'M', 'M'
	be.PutUint16(hdr[2:], 42)
	be.PutUint32(hdr[4:], 16) // IFD after header+pixels
	buf.Write(hdr)
	buf.Write(pixels)
	type entry struct {
		tag, typ uint16
		count    uint32
		value    uint32
		short    bool
	}
	entries := []entry{
		{256, 3, 1, 2, true},
		{257, 3, 1, 2, true},
		{258, 3, 1, 16, true},
		{259, 3, 1, 1, true},
		{262, 3, 1, 1, true},
		{273, 4, 1, 8, false},
		{278, 3, 1, 2, true},
		{279, 4, 1, 8, false},
	}
	ifd := make([]byte, 2+len(entries)*12+4)
	be.PutUint16(ifd, uint16(len(entries)))
	for i, e := range entries {
		base := 2 + i*12
		be.PutUint16(ifd[base:], e.tag)
		be.PutUint16(ifd[base+2:], e.typ)
		be.PutUint32(ifd[base+4:], e.count)
		if e.short {
			be.PutUint16(ifd[base+8:], uint16(e.value))
		} else {
			be.PutUint32(ifd[base+8:], e.value)
		}
	}
	buf.Write(ifd)

	img, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if img.Width != 2 || img.Height != 2 || img.BitsPerSample != 16 {
		t.Fatalf("header: %+v", img)
	}
	// Samples must be normalized to little-endian.
	want := []uint16{0x1234, 0x5678, 0x9ABC, 0xDEF0}
	for i, w := range want {
		if got := binary.LittleEndian.Uint16(img.Pixels[i*2:]); got != w {
			t.Errorf("sample %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XX\x2a\x00\x08\x00\x00\x00"), // bad byte order
		[]byte{'I', 'I', 41, 0, 8, 0, 0, 0},  // bad magic
		[]byte{'I', 'I', 42, 0, 0xFF, 0xFF, 0xFF, 0x7F},    // IFD out of range
		append([]byte{'I', 'I', 42, 0, 8, 0, 0, 0}, 99, 0), // IFD count beyond EOF
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestValidate(t *testing.T) {
	img := &Image{Width: 2, Height: 2, BitsPerSample: 12, SampleFormat: FormatUint, Pixels: make([]byte, 6)}
	if err := img.Validate(); err == nil {
		t.Error("12-bit accepted")
	}
	img = &Image{Width: 2, Height: 2, BitsPerSample: 16, SampleFormat: FormatFloat, Pixels: make([]byte, 8)}
	if err := img.Validate(); err == nil {
		t.Error("16-bit float accepted")
	}
	img = &Image{Width: 2, Height: 2, BitsPerSample: 8, SampleFormat: FormatUint, Pixels: make([]byte, 3)}
	if err := img.Validate(); err == nil {
		t.Error("short pixel buffer accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	img := randomImage(rng, 31, 17, 32, FormatUint)
	path := filepath.Join(dir, "x.tif")
	if err := WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Pixels, img.Pixels) {
		t.Error("file round trip lost pixels")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.tif")); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestSyntheticDensityRange(t *testing.T) {
	for _, p := range [][3]float64{{0, 0, 0}, {0.5, 0.5, 0.5}, {1, 1, 1}, {0.42, 0.5, 0.45}} {
		v := SyntheticDensity(p[0], p[1], p[2])
		if v < 0 || v > 1 {
			t.Errorf("density(%v) = %f out of range", p, v)
		}
	}
	// The core must be denser than the background corner.
	if SyntheticDensity(0.42, 0.5, 0.45) <= SyntheticDensity(0.02, 0.02, 0.02) {
		t.Error("core not denser than background")
	}
}

func TestGenerateSliceAndStack(t *testing.T) {
	img, err := GenerateSlice(16, 12, 8, 3, 32, FormatUint)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateSlice(4, 4, 4, 0, 12, FormatUint); err == nil {
		t.Error("12-bit slice accepted")
	}

	dir := t.TempDir()
	if err := WriteStack(dir, 8, 6, 5, 8, FormatUint); err != nil {
		t.Fatal(err)
	}
	info, err := ProbeStack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Width != 8 || info.Height != 6 || info.Depth != 5 || info.BitsPerSample != 8 {
		t.Errorf("probe: %+v", info)
	}
	if info.BytesPerSample() != 1 {
		t.Errorf("bytes per sample %d", info.BytesPerSample())
	}
	if _, err := ProbeStack(t.TempDir()); err == nil {
		t.Error("empty stack probed successfully")
	}
}

func BenchmarkDecode32bit(b *testing.B) {
	img, err := GenerateSlice(512, 256, 4, 1, 32, FormatUint)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(img.Pixels)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
