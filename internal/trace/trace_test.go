package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsEvents(t *testing.T) {
	r := NewRecorder()
	end := r.Span(2, "work", 128)
	time.Sleep(time.Millisecond)
	end()
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	e := events[0]
	if e.Rank != 2 || e.Name != "work" || e.Bytes != 128 {
		t.Errorf("event %+v", e)
	}
	if e.Dur < time.Millisecond/2 {
		t.Errorf("duration %v too short", e.Dur)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	end := r.Span(0, "noop", 0)
	end()
	r.Add(Event{})
}

func TestEventsSorted(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{Rank: 1, Name: "b", Start: 5})
	r.Add(Event{Rank: 0, Name: "a", Start: 9})
	r.Add(Event{Rank: 1, Name: "c", Start: 2})
	ev := r.Events()
	if ev[0].Rank != 0 || ev[1].Name != "c" || ev[2].Name != "b" {
		t.Errorf("order: %+v", ev)
	}
}

// Spans complete (and are appended) in the opposite order of their
// starts, interleaved with Add; export must still come out sorted by
// (rank, start) because no renderer may assume insertion order.
func TestOutOfOrderCompletionSorted(t *testing.T) {
	r := NewRecorder()
	endOuter := r.Span(0, "outer", 0)
	time.Sleep(time.Millisecond)
	endInner := r.Span(0, "inner", 0)
	r.Add(Event{Rank: 0, Name: "added", Start: 50 * time.Millisecond})
	endInner()
	endOuter() // outer started first but is appended last
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("%d events", len(ev))
	}
	if ev[0].Name != "outer" || ev[1].Name != "inner" || ev[2].Name != "added" {
		t.Errorf("order: %v %v %v", ev[0].Name, ev[1].Name, ev[2].Name)
	}
	// A second export without new appends must stay sorted (cached path).
	ev = r.Events()
	if ev[0].Name != "outer" {
		t.Errorf("cached sort broken: %v", ev[0].Name)
	}
	// New appends invalidate the cache.
	r.Add(Event{Rank: 0, Name: "early", Start: 0, Dur: time.Microsecond})
	ev = r.Events()
	if len(ev) != 4 || ev[0].Name != "early" || ev[1].Name != "outer" {
		t.Errorf("resort after append: %+v", ev)
	}
}

func TestAddSpan(t *testing.T) {
	r := NewRecorder()
	start := time.Now()
	time.Sleep(time.Millisecond)
	r.AddSpan(3, "op", start, time.Now(), 77)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Rank != 3 || ev[0].Bytes != 77 {
		t.Fatalf("events %+v", ev)
	}
	if ev[0].Dur < time.Millisecond/2 {
		t.Errorf("duration %v too short", ev[0].Dur)
	}
	var nilRec *Recorder
	nilRec.AddSpan(0, "noop", start, time.Now(), 0) // must not panic
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Span(rank, "s", 1)()
			}
		}(rank)
	}
	wg.Wait()
	if got := len(r.Events()); got != 400 {
		t.Errorf("%d events, want 400", got)
	}
}

func TestWriteTimeline(t *testing.T) {
	r := NewRecorder()
	r.Add(Event{Rank: 0, Name: "mapping", Start: 0, Dur: 10 * time.Millisecond})
	r.Add(Event{Rank: 1, Name: "round-0", Start: 10 * time.Millisecond, Dur: 20 * time.Millisecond, Bytes: 4096})
	var sb strings.Builder
	r.WriteTimeline(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "rank 0") || !strings.Contains(out, "rank 1") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "m") || !strings.Contains(out, "r") {
		t.Errorf("missing span marks:\n%s", out)
	}
	if !strings.Contains(out, "4096 bytes") {
		t.Errorf("missing byte legend:\n%s", out)
	}

	var empty strings.Builder
	NewRecorder().WriteTimeline(&empty, 40)
	if !strings.Contains(empty.String(), "no events") {
		t.Error("empty recorder timeline")
	}
}
