package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestEncodeDecodeEventsRoundTrip(t *testing.T) {
	events := []Event{
		{Rank: 0, Name: "exchange", Start: 10 * time.Microsecond, Dur: 90 * time.Microsecond,
			Exchange: 0xdeadbeefcafef00d, Round: -1, Peer: -1},
		{Rank: 3, Name: "round-2", Start: 15 * time.Microsecond, Dur: 40 * time.Microsecond,
			Bytes: 4096, Exchange: 0xdeadbeefcafef00d, Round: 2, Peer: -1},
		{Rank: 3, Name: "wait<-1", Start: 20 * time.Microsecond, Dur: 30 * time.Microsecond,
			Bytes: 4096, Exchange: 0xdeadbeefcafef00d, Round: 2, Peer: 1},
		{Rank: 7, Name: "", Start: 0, Dur: 0}, // empty name, no exchange
	}
	got, err := DecodeEvents(EncodeEvents(events))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", events, got)
	}
}

func TestDecodeEventsEmpty(t *testing.T) {
	got, err := DecodeEvents(EncodeEvents(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty set", len(got))
	}
}

func TestDecodeEventsRejectsGarbage(t *testing.T) {
	enc := EncodeEvents([]Event{{Rank: 1, Name: "span"}})
	cases := map[string][]byte{
		"empty":     {},
		"short":     enc[:3],
		"bad magic": append([]byte{'x', 'y', 'z', 9}, enc[4:]...),
		"truncated": enc[:len(enc)-5],
		"trailing":  append(append([]byte{}, enc...), 0),
	}
	for name, buf := range cases {
		if _, err := DecodeEvents(buf); err == nil {
			t.Errorf("%s input decoded without error", name)
		}
	}
}

// TestStragglerReport checks critical-path attribution: the slowest
// rank's round span wins, and its longest peer wait names the straggler.
func TestStragglerReport(t *testing.T) {
	const exch = uint64(0x1111)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []Event{
		// Round 0: rank 2 is slowest and spent most of it waiting on rank 0.
		{Rank: 0, Name: "round-0", Dur: ms(2), Exchange: exch, Round: 0, Peer: -1},
		{Rank: 1, Name: "round-0", Dur: ms(3), Exchange: exch, Round: 0, Peer: -1},
		{Rank: 2, Name: "round-0", Dur: ms(10), Exchange: exch, Round: 0, Peer: -1},
		{Rank: 2, Name: "wait<-0", Dur: ms(8), Exchange: exch, Round: 0, Peer: 0},
		{Rank: 2, Name: "wait<-1", Dur: ms(1), Exchange: exch, Round: 0, Peer: 1},
		// A wait on the non-critical rank must not win.
		{Rank: 1, Name: "wait<-2", Dur: ms(9), Exchange: exch, Round: 0, Peer: 2},
		// Round 1: rank 0 slowest, no waits recorded.
		{Rank: 0, Name: "round-1", Dur: ms(5), Exchange: exch, Round: 1, Peer: -1},
		{Rank: 1, Name: "round-1", Dur: ms(1), Exchange: exch, Round: 1, Peer: -1},
		// Unrelated span without an exchange ID is ignored.
		{Rank: 0, Name: "round-0", Dur: ms(99)},
	}
	report := StragglerReport(events)
	if len(report) != 2 {
		t.Fatalf("report has %d rounds, want 2: %+v", len(report), report)
	}
	r0 := report[0]
	if r0.Round != 0 || r0.CriticalRank != 2 || r0.RoundDur != ms(10) {
		t.Fatalf("round 0 critical = %+v", r0)
	}
	if r0.DominantPeer != 0 || r0.WaitDur != ms(8) {
		t.Fatalf("round 0 dominant wait = %+v", r0)
	}
	if f := r0.WaitFrac(); f < 0.79 || f > 0.81 {
		t.Fatalf("round 0 wait fraction = %v, want 0.8", f)
	}
	r1 := report[1]
	if r1.Round != 1 || r1.CriticalRank != 0 || r1.DominantPeer != -1 {
		t.Fatalf("round 1 critical = %+v", r1)
	}
}

// Fused exchanges carry no round spans; the whole-exchange span keyed
// round -1 must group them, including their waits.
func TestStragglerReportFused(t *testing.T) {
	const exch = uint64(0x2222)
	events := []Event{
		{Rank: 0, Name: "exchange", Dur: 2 * time.Millisecond, Exchange: exch, Round: -1, Peer: -1},
		{Rank: 1, Name: "exchange", Dur: 9 * time.Millisecond, Exchange: exch, Round: -1, Peer: -1},
		{Rank: 1, Name: "wait<-0", Dur: 7 * time.Millisecond, Exchange: exch, Round: -1, Peer: 0},
	}
	report := StragglerReport(events)
	if len(report) != 1 {
		t.Fatalf("report has %d entries, want 1", len(report))
	}
	rc := report[0]
	if rc.Round != -1 || rc.CriticalRank != 1 || rc.DominantPeer != 0 {
		t.Fatalf("fused report = %+v", rc)
	}

	var buf bytes.Buffer
	WriteStragglerReport(&buf, report)
	out := buf.String()
	if !strings.Contains(out, "exchange") || !strings.Contains(out, "wait<-0") {
		t.Fatalf("rendered report missing fields:\n%s", out)
	}
}
