package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Cross-rank trace assembly: a compact binary codec for shipping span
// summaries over the collectives, and the straggler analysis that turns a
// merged multi-rank timeline into per-round critical-path attribution.

// mergeMagic guards the codec against garbage: version byte 1 after the
// three magic bytes.
var mergeMagic = [4]byte{'d', 't', 'r', 1}

// EncodeEvents serializes events into the compact little-endian form
// exchanged during trace gathering. Span names are length-prefixed UTF-8;
// everything else is fixed-width.
func EncodeEvents(events []Event) []byte {
	n := len(mergeMagic) + 4
	for _, e := range events {
		n += 4 + len(e.Name) + 8*4 + 4*3
	}
	buf := make([]byte, 0, n)
	buf = append(buf, mergeMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	for _, e := range events {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Name)))
		buf = append(buf, e.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.Rank)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Dur))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Bytes))
		buf = binary.LittleEndian.AppendUint64(buf, e.Exchange)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Round))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Peer))
	}
	return buf
}

// DecodeEvents is the inverse of EncodeEvents.
func DecodeEvents(buf []byte) ([]Event, error) {
	if len(buf) < len(mergeMagic)+4 {
		return nil, fmt.Errorf("trace: encoded events truncated (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != mergeMagic {
		return nil, fmt.Errorf("trace: bad encoded-events magic %x", buf[:4])
	}
	count := binary.LittleEndian.Uint32(buf[4:])
	buf = buf[8:]
	events := make([]Event, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("trace: encoded event %d truncated", i)
		}
		nameLen := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		const fixed = 8*4 + 4*3
		if uint64(len(buf)) < uint64(nameLen)+fixed {
			return nil, fmt.Errorf("trace: encoded event %d truncated", i)
		}
		name := string(buf[:nameLen])
		buf = buf[nameLen:]
		e := Event{
			Name:     name,
			Rank:     int(int32(binary.LittleEndian.Uint32(buf))),
			Start:    time.Duration(binary.LittleEndian.Uint64(buf[4:])),
			Dur:      time.Duration(binary.LittleEndian.Uint64(buf[12:])),
			Bytes:    int64(binary.LittleEndian.Uint64(buf[20:])),
			Exchange: binary.LittleEndian.Uint64(buf[28:]),
			Round:    int32(binary.LittleEndian.Uint32(buf[36:])),
			Peer:     int32(binary.LittleEndian.Uint32(buf[40:])),
		}
		buf = buf[fixed:]
		events = append(events, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after encoded events", len(buf))
	}
	return events, nil
}

// RoundCritical attributes one exchange round's critical path: the rank
// whose round span was longest, and the peer that rank spent the most
// time waiting on within the round.
type RoundCritical struct {
	Exchange     uint64
	Round        int32 // -1 groups whole-exchange (fused-mode) spans
	CriticalRank int
	RoundDur     time.Duration // critical rank's span duration
	DominantPeer int           // -1 when the critical rank recorded no waits
	WaitDur      time.Duration // time blocked on the dominant peer
}

// WaitFrac is the share of the critical rank's round spent blocked on the
// dominant peer.
func (rc RoundCritical) WaitFrac() float64 {
	if rc.RoundDur <= 0 {
		return 0
	}
	return float64(rc.WaitDur) / float64(rc.RoundDur)
}

// StragglerReport derives per-round critical-path attribution from a
// merged multi-rank event set. Round spans (names "round-N", or
// "exchange" for fused-mode exchanges that have no rounds) define each
// (exchange, round) group's duration per rank; "wait<-P" spans on the
// slowest rank identify the peer that dominated its blocking time.
// Events without an exchange ID are ignored.
func StragglerReport(events []Event) []RoundCritical {
	type key struct {
		exch  uint64
		round int32
	}
	rounds := map[key]*RoundCritical{}  // longest round span so far
	hasRounds := map[uint64]bool{}      // exchange has explicit round spans
	var order []key

	consider := func(k key, e Event) {
		rc := rounds[k]
		if rc == nil {
			rc = &RoundCritical{Exchange: k.exch, Round: k.round, CriticalRank: e.Rank, RoundDur: e.Dur, DominantPeer: -1}
			rounds[k] = rc
			order = append(order, k)
			return
		}
		if e.Dur > rc.RoundDur {
			rc.CriticalRank, rc.RoundDur = e.Rank, e.Dur
		}
	}
	for _, e := range events {
		if e.Exchange == 0 {
			continue
		}
		if strings.HasPrefix(e.Name, "round-") {
			hasRounds[e.Exchange] = true
			consider(key{e.Exchange, e.Round}, e)
		}
	}
	for _, e := range events {
		if e.Exchange == 0 || hasRounds[e.Exchange] || e.Name != "exchange" {
			continue
		}
		consider(key{e.Exchange, -1}, e)
	}
	// Second pass: on each round's critical rank, find the dominant wait.
	for _, e := range events {
		if e.Exchange == 0 || !strings.HasPrefix(e.Name, "wait<-") || e.Peer < 0 {
			continue
		}
		round := e.Round
		if !hasRounds[e.Exchange] {
			round = -1
		}
		rc := rounds[key{e.Exchange, round}]
		if rc == nil || e.Rank != rc.CriticalRank {
			continue
		}
		if e.Dur > rc.WaitDur {
			rc.WaitDur, rc.DominantPeer = e.Dur, int(e.Peer)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].exch != order[j].exch {
			return order[i].exch < order[j].exch
		}
		return order[i].round < order[j].round
	})
	out := make([]RoundCritical, 0, len(order))
	for _, k := range order {
		out = append(out, *rounds[k])
	}
	return out
}

// WriteStragglerReport renders the report as one line per round.
func WriteStragglerReport(w io.Writer, report []RoundCritical) {
	if len(report) == 0 {
		fmt.Fprintln(w, "straggler report: no exchange-scoped spans recorded")
		return
	}
	fmt.Fprintln(w, "straggler report (critical path per exchange round):")
	for _, rc := range report {
		label := fmt.Sprintf("round %d", rc.Round)
		if rc.Round < 0 {
			label = "exchange"
		}
		line := fmt.Sprintf("  exch %016x %-9s critical rank %-3d %-12v", rc.Exchange, label, rc.CriticalRank, rc.RoundDur)
		if rc.DominantPeer >= 0 {
			line += fmt.Sprintf("  dominant wait<-%-3d %v (%.0f%%)", rc.DominantPeer, rc.WaitDur, 100*rc.WaitFrac())
		} else {
			line += "  no peer waits recorded"
		}
		fmt.Fprintln(w, line)
	}
}
