// Package trace records timestamped spans from concurrent ranks and
// renders per-rank timelines — the lightweight observability layer used
// to inspect where redistribution time goes (mapping setup vs rounds vs
// waiting) without attaching a profiler.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one completed span. The trailing fields carry the distributed
// trace context: Exchange is the cluster-wide 64-bit exchange ID minted
// by core.ReorganizeData (0 means the span predates tracing or is not
// part of an exchange), Round is the exchange round the span belongs to
// (-1 for whole-exchange spans), and Peer is the remote rank a wait span
// blocked on (-1 when not peer-directed). Round and Peer are only
// meaningful when Exchange is nonzero.
type Event struct {
	Rank  int
	Name  string
	Start time.Duration // offset from the recorder's origin
	Dur   time.Duration
	Bytes int64 // payload attributed to the span (0 if not applicable)

	Exchange uint64
	Round    int32
	Peer     int32
}

// Recorder collects events from any number of goroutines. Events are
// appended in completion order, which is not start order: Span captures
// its start timestamp before the recording lock is taken, so a span that
// began earlier can be appended after one that began later (and after
// arbitrary Add calls). The events slice is therefore unordered; Events
// sorts once at export and renderers must never assume insertion order.
type Recorder struct {
	mu     sync.Mutex
	origin time.Time
	events []Event
	sorted bool // events is currently sorted by (rank, start)
}

// NewRecorder starts a recorder whose origin is now.
func NewRecorder() *Recorder {
	return &Recorder{origin: time.Now()}
}

// NewRecorderAt starts a recorder with an explicit origin. Tests use it
// to model ranks whose clocks disagree; production code wants NewRecorder.
func NewRecorderAt(origin time.Time) *Recorder {
	return &Recorder{origin: origin}
}

// Now returns the recorder's current clock reading: the elapsed time
// since its origin. This is the per-rank timebase the distributed clock
// sync exchanges — two recorders with skewed origins report skewed Nows,
// and the ping-pong estimate in mpi.GatherTrace measures exactly that
// skew. Returns 0 on a nil recorder.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.origin)
}

// Span begins a span and returns its completion function; call it when
// the work finishes. Safe for concurrent use.
func (r *Recorder) Span(rank int, name string, bytes int64) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		r.mu.Lock()
		r.events = append(r.events, Event{
			Rank:  rank,
			Name:  name,
			Start: start.Sub(r.origin),
			Dur:   end.Sub(start),
			Bytes: bytes,
		})
		r.sorted = false
		r.mu.Unlock()
	}
}

// Add records an already-measured span.
func (r *Recorder) Add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.sorted = false
	r.mu.Unlock()
}

// AddSpan records a span measured with wall-clock timestamps, translating
// them to the recorder's origin. It is the bridge for instrumentation
// that must time an operation before knowing its byte attribution.
func (r *Recorder) AddSpan(rank int, name string, start, end time.Time, bytes int64) {
	if r == nil {
		return
	}
	r.Add(Event{
		Rank:  rank,
		Name:  name,
		Start: start.Sub(r.origin),
		Dur:   end.Sub(start),
		Bytes: bytes,
	})
}

// StampSpan fills e.Start and e.Dur from wall-clock endpoints translated
// to the recorder's origin and records the event. It is AddSpan for
// callers that carry trace context (Exchange/Round/Peer) on the event.
func (r *Recorder) StampSpan(e Event, start, end time.Time) {
	if r == nil {
		return
	}
	e.Start = start.Sub(r.origin)
	e.Dur = end.Sub(start)
	r.Add(e)
}

// Events returns a copy of the recorded events sorted by (rank, start).
// The sort happens at most once per batch of appends: repeated exports of
// an idle recorder are O(copy).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	if !r.sorted {
		sort.SliceStable(r.events, func(i, j int) bool {
			if r.events[i].Rank != r.events[j].Rank {
				return r.events[i].Rank < r.events[j].Rank
			}
			return r.events[i].Start < r.events[j].Start
		})
		r.sorted = true
	}
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	return out
}

// WriteTimeline renders the events as one ASCII lane per rank, scaled to
// the given width in characters.
func (r *Recorder) WriteTimeline(w io.Writer, width int) {
	events := r.Events()
	if len(events) == 0 {
		fmt.Fprintln(w, "trace: no events")
		return
	}
	if width < 20 {
		width = 20
	}
	var horizon time.Duration
	maxRank := 0
	for _, e := range events {
		if end := e.Start + e.Dur; end > horizon {
			horizon = end
		}
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	if horizon <= 0 {
		horizon = time.Nanosecond
	}
	scale := func(d time.Duration) int {
		return int(int64(d) * int64(width) / int64(horizon))
	}
	fmt.Fprintf(w, "timeline over %v (1 char = %v)\n", horizon, horizon/time.Duration(width))
	for rank := 0; rank <= maxRank; rank++ {
		lane := []byte(strings.Repeat(".", width))
		for _, e := range events {
			if e.Rank != rank {
				continue
			}
			lo, hi := scale(e.Start), scale(e.Start+e.Dur)
			if hi <= lo {
				hi = lo + 1
			}
			mark := byte('#')
			if len(e.Name) > 0 {
				mark = e.Name[0]
			}
			for i := lo; i < hi && i < width; i++ {
				lane[i] = mark
			}
		}
		fmt.Fprintf(w, "rank %-3d |%s|\n", rank, lane)
	}
	// Legend with aggregate durations per span name.
	agg := map[string]time.Duration{}
	bytes := map[string]int64{}
	for _, e := range events {
		agg[e.Name] += e.Dur
		bytes[e.Name] += e.Bytes
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %c = %-20s total %-12v %d bytes\n", n[0], n, agg[n], bytes[n])
	}
}
