package transit

import (
	"errors"
	"fmt"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// sessionState tracks a Regridder's lifecycle across connection epochs
// and elastic resizes.
type sessionState int

const (
	// stateActive is the normal state: the current mapping (if any) is
	// trustworthy and Connect/Regrid/Resize may all run.
	stateActive sessionState = iota
	// stateStale marks a session whose last collective operation failed
	// partway: ranks may disagree about the current mapping, so Regrid is
	// refused until a successful Connect re-establishes agreement.
	stateStale
	// stateAbandoned is terminal: this rank resized out of the consumer
	// group and handed its data off; the session accepts no further
	// operations.
	stateAbandoned
)

// Regridder owns the consumer-side DDR state of an in-transit coupling
// across connection epochs. In the paper's use case B the producer
// application comes and goes — it restarts from a checkpoint, rescales to
// a different rank count, or simply opens a new stream epoch — and each
// (re)connection requires the consumer group to re-establish the mapping
// from the producers' current chunk layout to the analysis layout.
//
// Most reconnects are steady-state: the producers return with the
// geometry they had before (a restart at the same scale), or cycle
// through a small set of layouts (alternating compute and I/O phases).
// The Regridder routes every Connect through one long-lived Descriptor so
// its plan cache recognizes those recurrences; a warm reconnect skips the
// geometry allgather, validation, and plan compilation entirely and costs
// two small collectives.
//
// The consumer side can itself rescale mid-stream: Resize moves the
// session from N to N′ consumer ranks without tearing the coupling down,
// shipping only the bytes whose ownership changed (see core.CompileDelta).
type Regridder struct {
	desc *core.Descriptor
	need grid.Box

	epochs  int
	resizes int
	own     []grid.Box // chunk layout of the current epoch
	state   sessionState

	deltas *core.DeltaCompiler // lazily built on first Resize

	// Resize telemetry, registered lazily against the descriptor's
	// metrics registry (nil when none is attached).
	mResizes   *obs.Counter
	mMoved     *obs.Counter
	mRetained  *obs.Counter
	mNeed      *obs.Counter
	mMovedPct  *obs.Gauge
	metricsSet bool
}

// NewRegridder wraps a descriptor and the analysis-side need box. The
// descriptor should have its plan cache enabled (the default); every
// consumer rank must construct its Regridder collectively and call
// Connect/Regrid/Resize in lockstep. A rank that will join the group at
// a later Resize passes a zero-extent need box.
func NewRegridder(desc *core.Descriptor, need grid.Box) *Regridder {
	return &Regridder{desc: desc, need: need}
}

// Connect establishes (or re-establishes) the mapping for the chunk
// layout the producers declared for this epoch: own lists the producer
// chunks this consumer rank receives, in stream order. Collective over
// the consumer communicator. Reconnecting with a previously seen global
// geometry is satisfied from the plan cache without recompiling.
//
// A failed Connect leaves the session stale: the descriptor's mapping is
// reset so a Regrid against the dead epoch's plan cannot silently move
// data with a geometry other ranks may not share, and the chunk layout
// is cleared. The next successful Connect returns the session to active;
// cached plans survive, so recovering onto a known geometry stays warm.
func (rg *Regridder) Connect(c *mpi.Comm, own []grid.Box) error {
	if rg.state == stateAbandoned {
		return fmt.Errorf("transit: Connect on an abandoned session")
	}
	if err := rg.desc.SetupDataMapping(c, own, rg.need); err != nil {
		rg.state = stateStale
		rg.own = rg.own[:0]
		rg.desc.ResetMapping()
		return fmt.Errorf("transit: reconnect epoch %d: %w", rg.epochs, err)
	}
	rg.own = append(rg.own[:0], own...)
	rg.epochs++
	rg.state = stateActive
	return nil
}

// Regrid redistributes one step's payloads — one buffer per chunk passed
// to the latest Connect, in the same order — into the need buffer.
func (rg *Regridder) Regrid(c *mpi.Comm, bufs [][]byte, needBuf []byte) error {
	switch rg.state {
	case stateAbandoned:
		return fmt.Errorf("transit: Regrid on an abandoned session")
	case stateStale:
		return fmt.Errorf("transit: Regrid on a stale session (reconnect first)")
	}
	if rg.epochs == 0 {
		return fmt.Errorf("transit: Regrid before Connect")
	}
	return rg.desc.ReorganizeData(c, bufs, needBuf)
}

// ResizeReport describes what one elastic resize moved.
type ResizeReport struct {
	Resize        int   // 1-based resize ordinal of this session
	NewGroupSize  int   // consumer ranks after the resize (N′)
	MovedBytes    int64 // received over the wire by this rank
	RetainedBytes int64 // satisfied by the local old→new copy
	NeedBytes     int64 // total size of the new need buffer

	// Lost and Missing are non-empty when the resize completed partially:
	// the peers given up on, and the new-need regions their data would
	// have filled (those cells keep whatever newData held before).
	Lost    []int
	Missing []grid.Box
}

// Resize rescales the consumer group from N to N′ ranks without tearing
// the session down. It is collective over c, which must span the union
// of old and new participants (the resize collective); newNeed is this
// rank's need box after the resize — zero-extent for a rank leaving the
// group — and a rank joining the group has no old need (it simply calls
// Resize on its zero-extent session). oldData holds the current need box
// and newData receives the new one (nil for an empty side).
//
// The move is incremental: the delta compiler diffs the old and new
// global geometries and ships only the bytes whose ownership changed;
// everything still resident locally is copied buffer-to-buffer. A repeat
// of a previously seen (old, new) geometry pair replays the cached delta
// plan — oscillating between two scales costs two small collectives per
// swing.
//
// On success the session re-targets the descriptor at newSize ranks
// (newSize = the number of ranks with a non-empty new need) and clears
// the producer mapping: the next Connect must run on the new consumer
// communicator, and opens the first epoch of the resized session. A
// leaver's session becomes abandoned once its data is handed off.
//
// Peer loss during the move degrades rather than aborts when the
// descriptor has an exchange deadline: the resize commits on the
// surviving ranks and the report (and a *core.PartialError wrapped in
// the returned error) names the lost peers and the regions they never
// filled. Any other failure marks the session stale.
func (rg *Regridder) Resize(c *mpi.Comm, newNeed grid.Box, oldData, newData []byte) (*ResizeReport, error) {
	if rg.state == stateAbandoned {
		return nil, fmt.Errorf("transit: Resize on an abandoned session")
	}
	if rg.deltas == nil {
		dc, err := core.NewDeltaCompiler(rg.desc.ElemSize(), 8)
		if err != nil {
			return nil, fmt.Errorf("transit: resize: %w", err)
		}
		rg.deltas = dc
	}
	oldNeed := rg.normalNeed(rg.need)
	plan, err := rg.deltas.Compile(c, oldNeed, rg.normalNeed(newNeed))
	if err != nil {
		rg.state = stateStale
		return nil, fmt.Errorf("transit: resize %d compile: %w", rg.resizes+1, err)
	}

	exErr := plan.ExchangeCtx(nil, c, oldData, newData, rg.desc.ExchangeDeadline())
	var pe *core.PartialError
	if exErr != nil && !errors.As(exErr, &pe) {
		rg.state = stateStale
		rg.desc.ResetMapping()
		return nil, fmt.Errorf("transit: resize %d exchange: %w", rg.resizes+1, exErr)
	}

	// Commit: the session now owns the new need box. The producer mapping
	// is gone — the consumer communicator changed shape — so the next
	// Connect reopens the coupling at the new scale.
	rg.resizes++
	rg.need = newNeed
	rg.own = rg.own[:0]
	rg.state = stateActive
	report := &ResizeReport{
		Resize:        rg.resizes,
		NewGroupSize:  plan.NewGroupSize(),
		MovedBytes:    plan.ReceivedBytes(),
		RetainedBytes: plan.RetainedBytes(),
		NeedBytes:     plan.NeedBytes(),
	}
	if pe != nil {
		report.Lost = pe.LostPeers
		report.Missing = pe.Missing
	}
	rg.recordResize(report)
	if rg.normalNeed(newNeed).Empty() {
		rg.state = stateAbandoned
		rg.desc.ResetMapping()
	} else if err := rg.desc.Reshape(plan.NewGroupSize()); err != nil {
		rg.state = stateStale
		return nil, fmt.Errorf("transit: resize %d: %w", rg.resizes, err)
	}
	if pe != nil {
		return report, fmt.Errorf("transit: resize %d completed partially: %w", rg.resizes, pe)
	}
	return report, nil
}

// normalNeed gives a zero-value need box the descriptor's
// dimensionality, so "not in the group" encodes as a zero-extent box the
// geometry codec accepts.
func (rg *Regridder) normalNeed(b grid.Box) grid.Box {
	if b.NDims != 0 {
		return b
	}
	nd := rg.desc.Layout().NDims()
	dims := make([]int, nd)
	return grid.MustBox(make([]int, nd), dims)
}

// recordResize publishes resize telemetry when the descriptor carries a
// metrics registry: cumulative moved / retained / total byte counters
// and a moved-vs-total gauge (per mille of the new need that crossed the
// wire in the latest resize — the quantity an incremental plan
// minimizes).
func (rg *Regridder) recordResize(rep *ResizeReport) {
	reg := rg.desc.MetricsRegistry()
	if reg == nil {
		return
	}
	if !rg.metricsSet {
		rg.mResizes = reg.Counter("ddr_resize_total", "Elastic resizes completed by this session.")
		rg.mMoved = reg.Counter("ddr_resize_moved_bytes_total", "Bytes received over the wire by elastic resizes.")
		rg.mRetained = reg.Counter("ddr_resize_retained_bytes_total", "Bytes satisfied locally by elastic resizes.")
		rg.mNeed = reg.Counter("ddr_resize_need_bytes_total", "Total new-need bytes across elastic resizes.")
		rg.mMovedPct = reg.Gauge("ddr_resize_moved_per_mille", "Share of the latest resize's need that crossed the wire, in 1/1000.")
		rg.metricsSet = true
	}
	rg.mResizes.Add(1)
	rg.mMoved.Add(rep.MovedBytes)
	rg.mRetained.Add(rep.RetainedBytes)
	rg.mNeed.Add(rep.NeedBytes)
	if rep.NeedBytes > 0 {
		rg.mMovedPct.Set(rep.MovedBytes * 1000 / rep.NeedBytes)
	}
}

// Epochs returns how many Connect calls have completed.
func (rg *Regridder) Epochs() int { return rg.epochs }

// Resizes returns how many elastic resizes have committed.
func (rg *Regridder) Resizes() int { return rg.resizes }

// Need returns the session's current need box (it changes on Resize).
func (rg *Regridder) Need() grid.Box { return rg.need }

// Stale reports whether the session needs a successful Connect before it
// can Regrid again (a prior collective operation failed partway).
func (rg *Regridder) Stale() bool { return rg.state == stateStale }

// Abandoned reports whether this rank has resized out of the consumer
// group; an abandoned session accepts no further operations.
func (rg *Regridder) Abandoned() bool { return rg.state == stateAbandoned }

// Chunks returns the chunk layout of the current epoch, in the order
// Regrid expects its buffers.
func (rg *Regridder) Chunks() []grid.Box { return rg.own }

// CacheStats reports the underlying descriptor's plan-cache hits and
// misses — in steady state every epoch past the first is a hit.
func (rg *Regridder) CacheStats() (hits, misses int64) {
	return rg.desc.PlanCacheStats()
}

// ResizeCacheStats reports the delta-plan cache's hits and misses (both
// zero before the first Resize).
func (rg *Regridder) ResizeCacheStats() (hits, misses int64) {
	if rg.deltas == nil {
		return 0, 0
	}
	return rg.deltas.CacheStats()
}

// LastExchangeID returns the trace exchange ID of the most recent Regrid
// (0 before the first), identical on every rank of the coupling — the
// key for correlating this transfer's spans and flight events across the
// merged timeline.
func (rg *Regridder) LastExchangeID() uint64 {
	return rg.desc.LastExchangeID()
}
