package transit

import (
	"fmt"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// Regridder owns the consumer-side DDR state of an in-transit coupling
// across connection epochs. In the paper's use case B the producer
// application comes and goes — it restarts from a checkpoint, rescales to
// a different rank count, or simply opens a new stream epoch — and each
// (re)connection requires the consumer group to re-establish the mapping
// from the producers' current chunk layout to the analysis layout.
//
// Most reconnects are steady-state: the producers return with the
// geometry they had before (a restart at the same scale), or cycle
// through a small set of layouts (alternating compute and I/O phases).
// The Regridder routes every Connect through one long-lived Descriptor so
// its plan cache recognizes those recurrences; a warm reconnect skips the
// geometry allgather, validation, and plan compilation entirely and costs
// two small collectives.
type Regridder struct {
	desc *core.Descriptor
	need grid.Box

	epochs int
	own    []grid.Box // chunk layout of the current epoch
}

// NewRegridder wraps a descriptor and the fixed analysis-side need box.
// The descriptor should have its plan cache enabled (the default); every
// consumer rank must construct its Regridder collectively and call
// Connect/Regrid in lockstep.
func NewRegridder(desc *core.Descriptor, need grid.Box) *Regridder {
	return &Regridder{desc: desc, need: need}
}

// Connect establishes (or re-establishes) the mapping for the chunk
// layout the producers declared for this epoch: own lists the producer
// chunks this consumer rank receives, in stream order. Collective over
// the consumer communicator. Reconnecting with a previously seen global
// geometry is satisfied from the plan cache without recompiling.
func (rg *Regridder) Connect(c *mpi.Comm, own []grid.Box) error {
	if err := rg.desc.SetupDataMapping(c, own, rg.need); err != nil {
		return fmt.Errorf("transit: reconnect epoch %d: %w", rg.epochs, err)
	}
	rg.own = append(rg.own[:0], own...)
	rg.epochs++
	return nil
}

// Regrid redistributes one step's payloads — one buffer per chunk passed
// to the latest Connect, in the same order — into the need buffer.
func (rg *Regridder) Regrid(c *mpi.Comm, bufs [][]byte, needBuf []byte) error {
	if rg.epochs == 0 {
		return fmt.Errorf("transit: Regrid before Connect")
	}
	return rg.desc.ReorganizeData(c, bufs, needBuf)
}

// Epochs returns how many Connect calls have completed.
func (rg *Regridder) Epochs() int { return rg.epochs }

// Chunks returns the chunk layout of the current epoch, in the order
// Regrid expects its buffers.
func (rg *Regridder) Chunks() []grid.Box { return rg.own }

// CacheStats reports the underlying descriptor's plan-cache hits and
// misses — in steady state every epoch past the first is a hit.
func (rg *Regridder) CacheStats() (hits, misses int64) {
	return rg.desc.PlanCacheStats()
}

// LastExchangeID returns the trace exchange ID of the most recent Regrid
// (0 before the first), identical on every rank of the coupling — the
// key for correlating this transfer's spans and flight events across the
// merged timeline.
func (rg *Regridder) LastExchangeID() uint64 {
	return rg.desc.LastExchangeID()
}
