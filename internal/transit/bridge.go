package transit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The Coupling type couples producer and consumer groups inside one
// world. Real deployments of the paper's use case B run the simulation
// and the analysis as two separate applications, with data crossing
// between them over the network (the GLEAN/ADIOS role, or the
// socket-level redistribution of Esnard et al. in §II-B). The bridge
// implements that: each analysis rank listens on a socket, each
// simulation rank dials its assigned analysis rank, and framed steps flow
// producer → consumer with no shared communicator at all.

// bridgeFrame header: producer u32, step u32, len u32 (little endian).
const bridgeHeader = 12

// BridgeListener is one analysis rank's receiving endpoint.
type BridgeListener struct {
	ln net.Listener

	mu     sync.Mutex
	cond   *sync.Cond
	queue  map[[2]int][]byte // (step, producer) -> payload
	closed bool
	err    error
}

// ListenBridge binds a listener (e.g. "127.0.0.1:0") for one analysis
// rank and starts accepting producer connections.
func ListenBridge(bind string) (*BridgeListener, error) {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transit: bridge listen: %w", err)
	}
	l := &BridgeListener{ln: ln, queue: map[[2]int][]byte{}}
	l.cond = sync.NewCond(&l.mu)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the address producers should dial.
func (l *BridgeListener) Addr() string { return l.ln.Addr().String() }

func (l *BridgeListener) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.readLoop(conn)
	}
}

func (l *BridgeListener) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [bridgeHeader]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		producer := int(binary.LittleEndian.Uint32(hdr[0:]))
		step := int(binary.LittleEndian.Uint32(hdr[4:]))
		n := binary.LittleEndian.Uint32(hdr[8:])
		if n > 1<<30 {
			l.fail(fmt.Errorf("transit: bridge frame of %d bytes exceeds limit", n))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		l.mu.Lock()
		if !l.closed {
			l.queue[[2]int{step, producer}] = data
		}
		l.mu.Unlock()
		l.cond.Broadcast()
	}
}

func (l *BridgeListener) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Recv blocks until the payload for (step, producer) arrives and returns
// it. Each payload is delivered exactly once.
func (l *BridgeListener) Recv(step, producer int) ([]byte, error) {
	key := [2]int{step, producer}
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if data, ok := l.queue[key]; ok {
			delete(l.queue, key)
			return data, nil
		}
		if l.err != nil {
			return nil, l.err
		}
		if l.closed {
			return nil, errors.New("transit: bridge listener closed")
		}
		l.cond.Wait()
	}
}

// Close shuts the listener down; pending and future Recv calls fail.
func (l *BridgeListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
	return l.ln.Close()
}

// BridgeSender is one simulation rank's connection to its assigned
// analysis rank.
type BridgeSender struct {
	producer int
	mu       sync.Mutex
	conn     net.Conn
}

// DialBridge connects producer `producerRank` to the analysis rank
// listening at addr.
func DialBridge(addr string, producerRank int) (*BridgeSender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transit: bridge dial %s: %w", addr, err)
	}
	return &BridgeSender{producer: producerRank, conn: conn}, nil
}

// Send streams one step's payload.
func (s *BridgeSender) Send(step int, payload []byte) error {
	if step < 0 {
		return fmt.Errorf("transit: negative step %d", step)
	}
	var hdr [bridgeHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.producer))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(step))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transit: bridge send header: %w", err)
	}
	if _, err := s.conn.Write(payload); err != nil {
		return fmt.Errorf("transit: bridge send payload: %w", err)
	}
	return nil
}

// Close closes the producer's connection.
func (s *BridgeSender) Close() error { return s.conn.Close() }
