package transit

import "testing"

// FuzzDecodeFields asserts the field-frame parser never panics and that
// accepted frames round-trip.
func FuzzDecodeFields(f *testing.F) {
	good, err := EncodeFields([]string{"vorticity", "speed"}, [][]float32{{1, 2}, {3}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{1, 0, 0, 0, 1, 'x', 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		names, fields, err := DecodeFields(data)
		if err != nil {
			return
		}
		re, err := EncodeFields(names, fields)
		if err != nil {
			// Duplicate names can decode but not re-encode; that is the
			// only admissible reason.
			seen := map[string]bool{}
			for _, n := range names {
				if seen[n] {
					return
				}
				seen[n] = true
			}
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		names2, fields2, err := DecodeFields(re)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if len(names2) != len(names) || len(fields2) != len(fields) {
			t.Fatal("shape changed across round trip")
		}
	})
}
