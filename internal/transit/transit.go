// Package transit implements the paper's in-transit coupling: M producer
// ranks (a running simulation) stream intermediate data to N consumer
// ranks (an analysis application) inside one world, with no uniformity
// requirement between M and N (Figure 4 shows 10 producers feeding 4
// consumers). Consumers then use DDR to regrid what arrived into the
// layout the analysis needs (Figure 5).
package transit

import (
	"fmt"

	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// transitTagBase reserves a tag range for streamed steps, below the DDR
// point-to-point range.
const (
	transitTagBase = 1 << 16
	transitTagMod  = 1 << 12
)

// Role distinguishes the two sides of a coupling.
type Role int

// Coupling roles.
const (
	Producer Role = iota
	Consumer
)

func (r Role) String() string {
	if r == Producer {
		return "producer"
	}
	return "consumer"
}

// Coupling connects the first M ranks of a world (producers) to the last
// N ranks (consumers). Producers are assigned to consumers in contiguous
// blocks of near-equal size, the layout in the paper's Figure 4.
type Coupling struct {
	World *mpi.Comm
	Local *mpi.Comm // sub-communicator of my own group
	Role  Role
	M, N  int

	blocks []int // SplitEven(M, N): producer block boundaries per consumer
}

// NewCoupling splits the world into an M-producer and an N-consumer group.
// It is collective over the world communicator.
func NewCoupling(world *mpi.Comm, m, n int) (*Coupling, error) {
	if m < 1 || n < 1 || m+n != world.Size() {
		return nil, fmt.Errorf("transit: world of %d cannot host %d producers + %d consumers",
			world.Size(), m, n)
	}
	if n > m {
		return nil, fmt.Errorf("transit: more consumers (%d) than producers (%d) leaves idle consumers", n, m)
	}
	role := Producer
	if world.Rank() >= m {
		role = Consumer
	}
	local, err := world.Split(int(role), world.Rank())
	if err != nil {
		return nil, err
	}
	return &Coupling{
		World:  world,
		Local:  local,
		Role:   role,
		M:      m,
		N:      n,
		blocks: grid.SplitEven(m, n),
	}, nil
}

// ConsumerOf returns the consumer (local rank in the consumer group) that
// producer p streams to.
func (cp *Coupling) ConsumerOf(p int) int {
	for c := 0; c < cp.N; c++ {
		if p >= cp.blocks[c] && p < cp.blocks[c+1] {
			return c
		}
	}
	return -1
}

// ProducersOf returns the half-open range [lo, hi) of producer local ranks
// streaming to consumer c.
func (cp *Coupling) ProducersOf(c int) (lo, hi int) {
	return cp.blocks[c], cp.blocks[c+1]
}

func stepTag(step int) int {
	if step < 0 {
		step = -step
	}
	return transitTagBase + step%transitTagMod
}

// Send streams this producer's payload for the given step to its consumer.
// Must be called on the producer side.
func (cp *Coupling) Send(step int, payload []byte) error {
	if cp.Role != Producer {
		return fmt.Errorf("transit: Send called on a %v rank", cp.Role)
	}
	me := cp.Local.Rank()
	consumerWorld := cp.M + cp.ConsumerOf(me)
	return cp.World.Send(consumerWorld, stepTag(step), payload)
}

// Message is one producer's payload for a step.
type Message struct {
	ProducerRank int // local rank within the producer group
	Data         []byte
}

// Recv collects the step's payloads from every producer assigned to this
// consumer, returned in ascending producer rank. Must be called on the
// consumer side.
func (cp *Coupling) Recv(step int) ([]Message, error) {
	if cp.Role != Consumer {
		return nil, fmt.Errorf("transit: Recv called on a %v rank", cp.Role)
	}
	lo, hi := cp.ProducersOf(cp.Local.Rank())
	out := make([]Message, 0, hi-lo)
	for p := lo; p < hi; p++ {
		data, _, _, err := cp.World.Recv(p, stepTag(step))
		if err != nil {
			return nil, err
		}
		out = append(out, Message{ProducerRank: p, Data: data})
	}
	return out, nil
}
