package transit

import (
	"bytes"
	"fmt"
	"testing"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
	"ddr/internal/obs"
)

// resizeValue is the closed-form cell pattern for the resize tests.
func resizeValue(x, y int) byte { return byte(5*x + 11*y + 3) }

func fillNeed(b grid.Box) []byte {
	buf := make([]byte, b.Volume())
	k := 0
	for y := 0; y < b.Dims[1]; y++ {
		for x := 0; x < b.Dims[0]; x++ {
			buf[k] = resizeValue(b.Offset[0]+x, b.Offset[1]+y)
			k++
		}
	}
	return buf
}

func checkNeed(b grid.Box, buf []byte) error {
	k := 0
	for y := 0; y < b.Dims[1]; y++ {
		for x := 0; x < b.Dims[0]; x++ {
			if want := resizeValue(b.Offset[0]+x, b.Offset[1]+y); buf[k] != want {
				return fmt.Errorf("cell (%d,%d) = %d, want %d", b.Offset[0]+x, b.Offset[1]+y, buf[k], want)
			}
			k++
		}
	}
	return nil
}

// TestRegridderResizeGrowShrink walks one session through the full
// elastic lifecycle: 4 consumers grow to 5 (rank 4 joins with no old
// data), the resized group reconnects and regrids, then shrinks back to
// 4 (rank 4 leaves and its session is abandoned), and the survivors
// reconnect on a split communicator.
func TestRegridderResizeGrowShrink(t *testing.T) {
	const world = 5
	domain := grid.Box2(0, 0, 40, 20)
	oldSlabs := grid.Slabs(domain, 0, 4)
	newSlabs := grid.Slabs(domain, 0, 5)

	err := mpi.Launch(world, func(c *mpi.Comm) error {
		me := c.Rank()
		joiner := me == 4
		nProcs := 4
		if joiner {
			nProcs = 1 // re-targeted by the first Resize
		}
		desc, err := core.NewDescriptor(nProcs, core.Layout2D, core.Uint8)
		if err != nil {
			return err
		}
		var rg *Regridder
		var oldData []byte
		if joiner {
			rg = NewRegridder(desc, grid.Box{})
		} else {
			rg = NewRegridder(desc, oldSlabs[me])
			oldData = fillNeed(oldSlabs[me])
		}

		// Grow 4 → 5.
		newData := bytes.Repeat([]byte{0xEE}, newSlabs[me].Volume())
		rep, err := rg.Resize(c, newSlabs[me], oldData, newData)
		if err != nil {
			return fmt.Errorf("rank %d grow: %w", me, err)
		}
		if rep.NewGroupSize != 5 || rep.Resize != 1 {
			return fmt.Errorf("rank %d grow report: %+v", me, rep)
		}
		if err := checkNeed(newSlabs[me], newData); err != nil {
			return fmt.Errorf("rank %d after grow: %w", me, err)
		}
		if desc.NProcs() != 5 {
			return fmt.Errorf("rank %d: descriptor targets %d ranks after grow, want 5", me, desc.NProcs())
		}
		if joiner && rep.MovedBytes != rep.NeedBytes {
			return fmt.Errorf("joiner moved %d of %d bytes; a joiner receives everything", rep.MovedBytes, rep.NeedBytes)
		}
		if !joiner && rep.RetainedBytes == 0 {
			return fmt.Errorf("rank %d retained nothing across an overlapping resize", me)
		}

		// The resized group reconnects (identity producer layout) and
		// regrids one step — the session is live at the new scale.
		if err := rg.Connect(c, []grid.Box{newSlabs[me]}); err != nil {
			return err
		}
		if err := rg.Regrid(c, [][]byte{fillNeed(newSlabs[me])}, newData); err != nil {
			return err
		}

		// Shrink 5 → 4: rank 4 leaves.
		var backNeed grid.Box
		var backData []byte
		if !joiner {
			backNeed = oldSlabs[me]
			backData = bytes.Repeat([]byte{0xEE}, backNeed.Volume())
		}
		rep, err = rg.Resize(c, backNeed, newData, backData)
		if err != nil {
			return fmt.Errorf("rank %d shrink: %w", me, err)
		}
		if rep.NewGroupSize != 4 || rep.Resize != 2 {
			return fmt.Errorf("rank %d shrink report: %+v", me, rep)
		}

		// Survivors continue on a split communicator; the leaver's session
		// is terminally abandoned.
		sub, err := c.Split(boolColor(joiner), me)
		if err != nil {
			return err
		}
		if joiner {
			if !rg.Abandoned() {
				return fmt.Errorf("leaver's session not abandoned")
			}
			if err := rg.Connect(sub, nil); err == nil {
				return fmt.Errorf("Connect on an abandoned session succeeded")
			}
			if _, err := rg.Resize(sub, grid.Box{}, nil, nil); err == nil {
				return fmt.Errorf("Resize on an abandoned session succeeded")
			}
			return nil
		}
		if err := checkNeed(oldSlabs[me], backData); err != nil {
			return fmt.Errorf("rank %d after shrink: %w", me, err)
		}
		if err := rg.Connect(sub, []grid.Box{oldSlabs[me]}); err != nil {
			return err
		}
		if err := rg.Regrid(sub, [][]byte{fillNeed(oldSlabs[me])}, backData); err != nil {
			return err
		}
		if rg.Epochs() != 2 || rg.Resizes() != 2 {
			return fmt.Errorf("rank %d: epochs %d resizes %d, want 2/2", me, rg.Epochs(), rg.Resizes())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func boolColor(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestRegridderResizeOscillation pins the delta-plan cache: a consumer
// group that swings between two scales replays cached delta plans after
// the first full swing.
func TestRegridderResizeOscillation(t *testing.T) {
	domain := grid.Box2(0, 0, 24, 12)
	layoutA := grid.Slabs(domain, 0, 2)
	layoutB := grid.Slabs(domain, 1, 2)

	err := mpi.Launch(2, func(c *mpi.Comm) error {
		me := c.Rank()
		desc, err := core.NewDescriptor(2, core.Layout2D, core.Uint8)
		if err != nil {
			return err
		}
		rg := NewRegridder(desc, layoutA[me])
		cur := fillNeed(layoutA[me])
		layouts := [][]grid.Box{layoutB, layoutA, layoutB, layoutA}
		for i, l := range layouts {
			next := bytes.Repeat([]byte{0xEE}, l[me].Volume())
			if _, err := rg.Resize(c, l[me], cur, next); err != nil {
				return fmt.Errorf("swing %d: %w", i, err)
			}
			if err := checkNeed(l[me], next); err != nil {
				return fmt.Errorf("swing %d: %w", i, err)
			}
			cur = next
		}
		hits, misses := rg.ResizeCacheStats()
		if hits != 2 || misses != 2 {
			return fmt.Errorf("delta cache stats %d hits / %d misses, want 2 / 2", hits, misses)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegridderConnectFailureResetsState is the regression test for the
// stale-session bug: a Connect that fails after a successful one must
// poison the session — mapping reset, Regrid refused — instead of
// leaving the prior epoch's plan silently live, and a subsequent good
// Connect must recover (warm, from the surviving cache entry).
func TestRegridderConnectFailureResetsState(t *testing.T) {
	err := mpi.Launch(2, func(c *mpi.Comm) error {
		me := c.Rank()
		desc, err := core.NewDescriptor(2, core.Layout1D, core.Uint8, core.WithValidation())
		if err != nil {
			return err
		}
		need := grid.Box1(8*me, 8)
		rg := NewRegridder(desc, need)
		good := []grid.Box{grid.Box1(8*me, 8)}
		// Overlapping chunks fail WithValidation's ownership check.
		bad := []grid.Box{grid.Box1(0, 16)}

		if err := rg.Connect(c, good); err != nil {
			return err
		}
		needBuf := make([]byte, 8)
		if err := rg.Regrid(c, [][]byte{make([]byte, 8)}, needBuf); err != nil {
			return err
		}

		if err := rg.Connect(c, bad); err == nil {
			return fmt.Errorf("overlapping chunk layout accepted")
		}
		if !rg.Stale() {
			return fmt.Errorf("failed Connect left the session active")
		}
		if desc.Plan() != nil {
			return fmt.Errorf("failed Connect left the dead epoch's plan installed")
		}
		if err := rg.Regrid(c, [][]byte{make([]byte, 8)}, needBuf); err == nil {
			return fmt.Errorf("Regrid on a stale session succeeded")
		}
		if n := desc.PlanCacheLen(); n != 1 {
			return fmt.Errorf("plan cache holds %d entries after failed connect, want the 1 good epoch", n)
		}

		// Recovery: the good geometry reconnects warm and regrids.
		if err := rg.Connect(c, good); err != nil {
			return err
		}
		if rg.Stale() {
			return fmt.Errorf("successful Connect left the session stale")
		}
		if err := rg.Regrid(c, [][]byte{make([]byte, 8)}, needBuf); err != nil {
			return err
		}
		hits, misses := rg.CacheStats()
		if hits != 1 || misses != 2 {
			return fmt.Errorf("cache stats %d hits / %d misses, want 1 / 2", hits, misses)
		}
		if rg.Epochs() != 2 {
			return fmt.Errorf("epochs = %d, want 2 (failed connect opens no epoch)", rg.Epochs())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegridderResizeMetrics checks the resize telemetry lands in the
// descriptor's metrics registry.
func TestRegridderResizeMetrics(t *testing.T) {
	domain := grid.Box2(0, 0, 16, 8)
	layoutA := grid.Slabs(domain, 0, 2)
	layoutB := grid.Slabs(domain, 1, 2)
	regs := make([]*obs.Registry, 2)

	err := mpi.Launch(2, func(c *mpi.Comm) error {
		me := c.Rank()
		regs[me] = obs.NewRegistry()
		desc, err := core.NewDescriptor(2, core.Layout2D, core.Uint8, core.WithMetrics(regs[me]))
		if err != nil {
			return err
		}
		rg := NewRegridder(desc, layoutA[me])
		next := make([]byte, layoutB[me].Volume())
		_, err = rg.Resize(c, layoutB[me], fillNeed(layoutA[me]), next)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for me, reg := range regs {
		if got := reg.Counter("ddr_resize_total", "").Value(); got != 1 {
			t.Errorf("rank %d: ddr_resize_total = %d, want 1", me, got)
		}
		moved := reg.Counter("ddr_resize_moved_bytes_total", "").Value()
		retained := reg.Counter("ddr_resize_retained_bytes_total", "").Value()
		total := reg.Counter("ddr_resize_need_bytes_total", "").Value()
		if moved+retained != total || total != int64(layoutB[me].Volume()) {
			t.Errorf("rank %d: moved %d + retained %d != need %d", me, moved, retained, total)
		}
	}
}
