package transit

import (
	"encoding/binary"
	"fmt"

	"ddr/internal/fielddata"
)

// Field framing: in-transit messages often carry several variables of the
// same spatial extent per step (the paper names velocity and density
// alongside vorticity). EncodeFields packs named float32 fields into one
// payload so a step costs one message regardless of variable count.

// EncodeFields packs the named fields (parallel slices) into one buffer.
// Field names must be non-empty, at most 255 bytes, and unique.
func EncodeFields(names []string, fields [][]float32) ([]byte, error) {
	if len(names) != len(fields) {
		return nil, fmt.Errorf("transit: %d names for %d fields", len(names), len(fields))
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("transit: no fields")
	}
	seen := map[string]bool{}
	size := 4
	for i, n := range names {
		if n == "" || len(n) > 255 {
			return nil, fmt.Errorf("transit: invalid field name %q", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("transit: duplicate field %q", n)
		}
		seen[n] = true
		size += 1 + len(n) + 4 + 4*len(fields[i])
	}
	out := make([]byte, 0, size)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(names)))
	out = append(out, tmp[:]...)
	for i, n := range names {
		out = append(out, byte(len(n)))
		out = append(out, n...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(fields[i])))
		out = append(out, tmp[:]...)
		out = append(out, fielddata.Float32Bytes(fields[i])...)
	}
	return out, nil
}

// DecodeFields reverses EncodeFields.
func DecodeFields(buf []byte) (names []string, fields [][]float32, err error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("transit: truncated field frame")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 1 || n > 1024 {
		return nil, nil, fmt.Errorf("transit: implausible field count %d", n)
	}
	names = make([]string, 0, n)
	fields = make([][]float32, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) < 1 {
			return nil, nil, fmt.Errorf("transit: truncated name length")
		}
		nl := int(buf[0])
		buf = buf[1:]
		if nl == 0 {
			return nil, nil, fmt.Errorf("transit: empty field name")
		}
		if len(buf) < nl+4 {
			return nil, nil, fmt.Errorf("transit: truncated field %d header", i)
		}
		name := string(buf[:nl])
		buf = buf[nl:]
		fl := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < 4*fl {
			return nil, nil, fmt.Errorf("transit: truncated field %q data", name)
		}
		names = append(names, name)
		fields = append(fields, fielddata.BytesFloat32(buf[:4*fl]))
		buf = buf[4*fl:]
	}
	if len(buf) != 0 {
		return nil, nil, fmt.Errorf("transit: %d trailing bytes", len(buf))
	}
	return names, fields, nil
}
