package transit

import (
	"testing"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// reconnectGeometry is the producers' chunk layout for the reconnect
// benchmark: a 3-D brick stack along z, each consumer rank owning
// chunksPer z-slabs of its brick and needing the brick shifted by half —
// the same halo-style regrid the mapping benchmarks use, sized so a cold
// Connect does a realistic amount of compilation work per rank.
func reconnectGeometry(procs, chunksPer int) ([][]grid.Box, []grid.Box) {
	const w, h, slab = 64, 64, 8
	bd := slab * chunksPer
	chunks := make([][]grid.Box, procs)
	needs := make([]grid.Box, procs)
	for r := 0; r < procs; r++ {
		z0 := r * bd
		for c := 0; c < chunksPer; c++ {
			chunks[r] = append(chunks[r], grid.Box3(0, 0, z0+c*slab, w, h, slab))
		}
		needs[r] = grid.Box3(0, 0, z0+bd/2, w, h, bd)
	}
	return chunks, needs
}

// benchReconnect times one full Connect epoch across the consumer group,
// with Regridders (and their descriptors' plan caches) persisting across
// epochs exactly as a long-lived coupling would hold them. cacheCap 0
// disables the plan cache, so every epoch is a cold compile; a positive
// cap makes every epoch after the priming one a warm cache hit.
func benchReconnect(b *testing.B, procs, chunksPer, cacheCap int) {
	chunks, needs := reconnectGeometry(procs, chunksPer)
	rgs := make([]*Regridder, procs)
	for r := 0; r < procs; r++ {
		desc, err := core.NewDescriptor(procs, core.Layout3D, core.Uint8,
			core.WithElemSize(4), core.WithPlanCache(cacheCap))
		if err != nil {
			b.Fatal(err)
		}
		rgs[r] = NewRegridder(desc, needs[r])
	}
	epoch := func() error {
		return mpi.Run(procs, func(c *mpi.Comm) error {
			return rgs[c.Rank()].Connect(c, chunks[c.Rank()])
		})
	}
	// Priming epoch: populates the cache in the warm configuration and
	// puts both configurations in the same steady state before timing.
	if err := epoch(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegridderReconnect measures use case B's steady-state
// reconnect: the producers return with a geometry the consumers have seen
// before. cold disables the plan cache so the epoch pays the full
// geometry exchange, validation, and compile; warm is the same epoch
// satisfied from the cache — two small collectives and a fingerprint.
func BenchmarkRegridderReconnect(b *testing.B) {
	const procs, chunksPer = 64, 16
	b.Run("cold", func(b *testing.B) { benchReconnect(b, procs, chunksPer, 0) })
	b.Run("warm", func(b *testing.B) { benchReconnect(b, procs, chunksPer, 8) })
}
