package transit

import (
	"testing"
	"time"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// reconnectGeometry is the producers' chunk layout for the reconnect
// benchmark: a 3-D brick stack along z, each consumer rank owning
// chunksPer z-slabs of its brick and needing the brick shifted by half —
// the same halo-style regrid the mapping benchmarks use, sized so a cold
// Connect does a realistic amount of compilation work per rank.
func reconnectGeometry(procs, chunksPer int) ([][]grid.Box, []grid.Box) {
	const w, h, slab = 64, 64, 8
	bd := slab * chunksPer
	chunks := make([][]grid.Box, procs)
	needs := make([]grid.Box, procs)
	for r := 0; r < procs; r++ {
		z0 := r * bd
		for c := 0; c < chunksPer; c++ {
			chunks[r] = append(chunks[r], grid.Box3(0, 0, z0+c*slab, w, h, slab))
		}
		needs[r] = grid.Box3(0, 0, z0+bd/2, w, h, bd)
	}
	return chunks, needs
}

// benchReconnect times one full Connect epoch across the consumer group,
// with Regridders (and their descriptors' plan caches) persisting across
// epochs exactly as a long-lived coupling would hold them. cacheCap 0
// disables the plan cache, so every epoch is a cold compile; a positive
// cap makes every epoch after the priming one a warm cache hit.
func benchReconnect(b *testing.B, procs, chunksPer, cacheCap int) {
	chunks, needs := reconnectGeometry(procs, chunksPer)
	rgs := make([]*Regridder, procs)
	for r := 0; r < procs; r++ {
		desc, err := core.NewDescriptor(procs, core.Layout3D, core.Uint8,
			core.WithElemSize(4), core.WithPlanCache(cacheCap))
		if err != nil {
			b.Fatal(err)
		}
		rgs[r] = NewRegridder(desc, needs[r])
	}
	epoch := func() error {
		return mpi.Launch(procs, func(c *mpi.Comm) error {
			return rgs[c.Rank()].Connect(c, chunks[c.Rank()])
		})
	}
	// Priming epoch: populates the cache in the warm configuration and
	// puts both configurations in the same steady state before timing.
	if err := epoch(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegridderReconnect measures use case B's steady-state
// reconnect: the producers return with a geometry the consumers have seen
// before. cold disables the plan cache so the epoch pays the full
// geometry exchange, validation, and compile; warm is the same epoch
// satisfied from the cache — two small collectives and a fingerprint.
func BenchmarkRegridderReconnect(b *testing.B) {
	const procs, chunksPer = 64, 16
	b.Run("cold", func(b *testing.B) { benchReconnect(b, procs, chunksPer, 0) })
	b.Run("warm", func(b *testing.B) { benchReconnect(b, procs, chunksPer, 8) })
}

// resizeGeometry is the elastic grow the resize benchmark measures: 64
// consumer ranks hold vertical slabs of a 2-D field, and the group grows
// to 65 by splitting the last slab between the old rank 63 and the
// joining rank 64. Ranks 0..62 keep their needs bit-identical, so the
// ownership delta is half of one slab — the geometry regime the
// incremental compiler exists for.
func resizeGeometry() (oldNeeds, newNeeds []grid.Box) {
	const oldProcs, w, h = 64, 8, 256
	oldNeeds = make([]grid.Box, oldProcs)
	for r := 0; r < oldProcs; r++ {
		oldNeeds[r] = grid.Box2(r*w, 0, w, h)
	}
	newNeeds = make([]grid.Box, oldProcs+1)
	copy(newNeeds, oldNeeds[:oldProcs-1])
	last := oldNeeds[oldProcs-1]
	newNeeds[oldProcs-1] = grid.Box2(last.Offset[0], 0, w/2, h)
	newNeeds[oldProcs] = grid.Box2(last.Offset[0]+w/2, 0, w/2, h)
	// The joiner holds nothing before the resize: a zero-extent old need.
	oldNeeds = append(oldNeeds, grid.Box2(0, 0, 0, 0))
	return oldNeeds, newNeeds
}

// BenchmarkRegridderResize quantifies what the incremental plan compiler
// buys over recompiling and re-exchanging from scratch on a 64→65 grow:
//
//	delta-compile   CompileDelta over the diffed geometries; reports
//	                moved_frac, the share of the new need that crosses
//	                the wire (a cold full re-exchange ships every byte,
//	                so moved_frac is also the moved-bytes ratio against
//	                that baseline).
//	full-compile    from-scratch CompileSchedule of the same geometry.
//	compile-speedup both compilers back to back; reports the ratio.
//	exchange        the complete collective Resize through Regridder
//	                sessions, delta compile + wire + local copies.
func BenchmarkRegridderResize(b *testing.B) {
	const elemSize = 4
	oldNeeds, newNeeds := resizeGeometry()
	nOld, nNew := len(oldNeeds)-1, len(newNeeds)

	// allChunks is what a teardown would hand the from-scratch compiler:
	// the data as the old group actually holds it, chunked — each old
	// rank's slab arrives as 16 producer chunks, exactly as the reconnect
	// path sees it (the joiner contributes no chunk). The delta compiler
	// never looks at chunks; it diffs the two need geometries.
	const chunksPer = 16
	allChunks := make([][]grid.Box, nNew)
	for r := 0; r < nOld; r++ {
		allChunks[r] = grid.Slabs(oldNeeds[r], 1, chunksPer)
	}

	b.Run("delta-compile", func(b *testing.B) {
		var plans []*core.DeltaPlan
		for i := 0; i < b.N; i++ {
			var err error
			plans, err = core.CompileDelta(elemSize, oldNeeds, newNeeds)
			if err != nil {
				b.Fatal(err)
			}
		}
		var moved, need int64
		for _, p := range plans {
			moved += p.ReceivedBytes()
			need += p.NeedBytes()
		}
		b.ReportMetric(float64(moved)/float64(need), "moved_frac")
	})

	b.Run("full-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.CompileSchedule(elemSize, allChunks, newNeeds, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("compile-speedup", func(b *testing.B) {
		var dFull, dDelta time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := core.CompileSchedule(elemSize, allChunks, newNeeds, 0); err != nil {
				b.Fatal(err)
			}
			dFull += time.Since(t0)
			t1 := time.Now()
			if _, err := core.CompileDelta(elemSize, oldNeeds, newNeeds); err != nil {
				b.Fatal(err)
			}
			dDelta += time.Since(t1)
		}
		b.ReportMetric(float64(dFull)/float64(dDelta), "compile_speedup")
	})

	b.Run("exchange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rgs := make([]*Regridder, nNew)
			for r := range rgs {
				desc, err := core.NewDescriptor(nOld, core.Layout2D, core.Uint8,
					core.WithElemSize(elemSize))
				if err != nil {
					b.Fatal(err)
				}
				need := grid.Box{}
				if r < nOld {
					need = oldNeeds[r]
				}
				rgs[r] = NewRegridder(desc, need)
			}
			err := mpi.Launch(nNew, func(c *mpi.Comm) error {
				r := c.Rank()
				var oldData []byte
				if r < nOld {
					oldData = make([]byte, oldNeeds[r].Volume()*elemSize)
				}
				newData := make([]byte, newNeeds[r].Volume()*elemSize)
				_, err := rgs[r].Resize(c, newNeeds[r], oldData, newData)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
