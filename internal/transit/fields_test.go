package transit

import (
	"testing"
)

func TestEncodeDecodeFields(t *testing.T) {
	names := []string{"vorticity", "speed"}
	fields := [][]float32{{1, 2, 3}, {0.5, -0.5, 0}}
	buf, err := EncodeFields(names, fields)
	if err != nil {
		t.Fatal(err)
	}
	gotNames, gotFields, err := DecodeFields(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "vorticity" || gotNames[1] != "speed" {
		t.Fatalf("names %v", gotNames)
	}
	for i := range fields {
		for j := range fields[i] {
			if gotFields[i][j] != fields[i][j] {
				t.Fatalf("field %d[%d] = %f", i, j, gotFields[i][j])
			}
		}
	}
}

func TestEncodeFieldsValidation(t *testing.T) {
	if _, err := EncodeFields([]string{"a"}, nil); err == nil {
		t.Error("count mismatch accepted")
	}
	if _, err := EncodeFields(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := EncodeFields([]string{""}, [][]float32{{1}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := EncodeFields([]string{"a", "a"}, [][]float32{{1}, {2}}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestDecodeFieldsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 0, 0, 0},                     // truncated name length
		{1, 0, 0, 0, 3, 'a'},             // truncated name
		{1, 0, 0, 0, 1, 'a', 9, 0, 0, 0}, // truncated data
		{0, 0, 0, 0},                     // zero fields
	}
	for i, c := range cases {
		if _, _, err := DecodeFields(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Trailing bytes rejected.
	good, err := EncodeFields([]string{"x"}, [][]float32{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFields(append(good, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestFieldsEmptyData(t *testing.T) {
	buf, err := EncodeFields([]string{"empty"}, [][]float32{nil})
	if err != nil {
		t.Fatal(err)
	}
	names, fields, err := DecodeFields(buf)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "empty" || len(fields[0]) != 0 {
		t.Errorf("got %v %v", names, fields)
	}
}
