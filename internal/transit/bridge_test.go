package transit

import (
	"fmt"
	"sync"
	"testing"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func TestBridgeBasic(t *testing.T) {
	l, err := ListenBridge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s0, err := DialBridge(l.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	s1, err := DialBridge(l.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	// Out-of-order arrival across steps and producers.
	if err := s1.Send(1, []byte("p1s1")); err != nil {
		t.Fatal(err)
	}
	if err := s0.Send(0, []byte("p0s0")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(0, []byte("p1s0")); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		step, prod int
		want       string
	}{{0, 0, "p0s0"}, {0, 1, "p1s0"}, {1, 1, "p1s1"}} {
		got, err := l.Recv(c.step, c.prod)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != c.want {
			t.Errorf("step %d producer %d: %q", c.step, c.prod, got)
		}
	}
	if err := s0.Send(-1, nil); err == nil {
		t.Error("negative step accepted")
	}
}

func TestBridgeCloseUnblocksRecv(t *testing.T) {
	l, err := ListenBridge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Recv(0, 0)
		done <- err
	}()
	l.Close()
	if err := <-done; err == nil {
		t.Error("Recv returned without error after Close")
	}
}

// TestBridgeTwoApplications is the real two-application scenario: a
// 4-rank simulation world and a 2-rank analysis world run as separate
// mpi.Launch worlds (no shared communicator) connected only by the bridge.
// The analysis world regrids the arriving slabs with DDR and verifies
// every element.
func TestBridgeTwoApplications(t *testing.T) {
	const m, n, steps = 4, 2, 3
	domain := grid.Box2(0, 0, 16, 12)
	slabs := grid.Slabs(domain, 1, m)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)
	blocks := grid.SplitEven(m, n)
	consumerOf := func(p int) int {
		for c := 0; c < n; c++ {
			if p >= blocks[c] && p < blocks[c+1] {
				return c
			}
		}
		return -1
	}
	value := func(x, y, step int) byte { return byte(x + 5*y + 31*step) }

	// Analysis world publishes its listener addresses here.
	addrs := make(chan []string, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 2)

	// Analysis application.
	wg.Add(1)
	go func() {
		defer wg.Done()
		listeners := make([]*BridgeListener, n)
		list := make([]string, n)
		for i := range listeners {
			l, err := ListenBridge("127.0.0.1:0")
			if err != nil {
				errs <- err
				addrs <- nil
				return
			}
			listeners[i] = l
			list[i] = l.Addr()
		}
		addrs <- list
		defer func() {
			for _, l := range listeners {
				l.Close()
			}
		}()
		errs <- mpi.Launch(n, func(c *mpi.Comm) error {
			me := c.Rank()
			lo, hi := blocks[me], blocks[me+1]
			myChunks := make([]grid.Box, 0, hi-lo)
			for p := lo; p < hi; p++ {
				myChunks = append(myChunks, slabs[p])
			}
			desc, err := core.NewDescriptor(n, core.Layout2D, core.Uint8, core.WithElemSize(1))
			if err != nil {
				return err
			}
			need := squares[me]
			if err := desc.SetupDataMapping(c, myChunks, need); err != nil {
				return err
			}
			needBuf := make([]byte, need.Volume())
			for step := 0; step < steps; step++ {
				bufs := make([][]byte, len(myChunks))
				for i, p := 0, lo; p < hi; i, p = i+1, p+1 {
					data, err := listeners[me].Recv(step, p)
					if err != nil {
						return err
					}
					bufs[i] = data
				}
				if err := desc.ReorganizeData(c, bufs, needBuf); err != nil {
					return err
				}
				i := 0
				for y := 0; y < need.Dims[1]; y++ {
					for x := 0; x < need.Dims[0]; x++ {
						want := value(need.Offset[0]+x, need.Offset[1]+y, step)
						if needBuf[i] != want {
							return fmt.Errorf("analysis rank %d step %d (%d,%d): %d != %d",
								me, step, x, y, needBuf[i], want)
						}
						i++
					}
				}
			}
			return nil
		})
	}()

	// Simulation application.
	wg.Add(1)
	go func() {
		defer wg.Done()
		list := <-addrs
		if list == nil {
			errs <- fmt.Errorf("no listener addresses")
			return
		}
		errs <- mpi.Launch(m, func(c *mpi.Comm) error {
			me := c.Rank()
			sender, err := DialBridge(list[consumerOf(me)], me)
			if err != nil {
				return err
			}
			defer sender.Close()
			slab := slabs[me]
			for step := 0; step < steps; step++ {
				buf := make([]byte, slab.Volume())
				i := 0
				for y := 0; y < slab.Dims[1]; y++ {
					for x := 0; x < slab.Dims[0]; x++ {
						buf[i] = value(slab.Offset[0]+x, slab.Offset[1]+y, step)
						i++
					}
				}
				if err := sender.Send(step, buf); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
