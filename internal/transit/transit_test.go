package transit

import (
	"errors"
	"fmt"
	"testing"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

func TestNewCouplingValidation(t *testing.T) {
	err := mpi.Launch(4, func(c *mpi.Comm) error {
		if _, err := NewCoupling(c, 3, 2); err == nil {
			return errors.New("m+n != world accepted")
		}
		if _, err := NewCoupling(c, 1, 3); err == nil {
			return errors.New("more consumers than producers accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentFigure4(t *testing.T) {
	// The paper's Figure 4: 10 producers to 4 consumers means blocks of
	// 3,3,2,2.
	cp := &Coupling{M: 10, N: 4, blocks: grid.SplitEven(10, 4)}
	wantCounts := []int{3, 3, 2, 2}
	for c := 0; c < 4; c++ {
		lo, hi := cp.ProducersOf(c)
		if hi-lo != wantCounts[c] {
			t.Errorf("consumer %d serves %d producers, want %d", c, hi-lo, wantCounts[c])
		}
		for p := lo; p < hi; p++ {
			if cp.ConsumerOf(p) != c {
				t.Errorf("producer %d mapped to %d, want %d", p, cp.ConsumerOf(p), c)
			}
		}
	}
	if cp.ConsumerOf(99) != -1 {
		t.Error("out-of-range producer mapped")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	const m, n = 5, 2
	err := mpi.Launch(m+n, func(world *mpi.Comm) error {
		cp, err := NewCoupling(world, m, n)
		if err != nil {
			return err
		}
		const steps = 3
		if cp.Role == Producer {
			if cp.Local.Size() != m {
				return fmt.Errorf("producer group size %d", cp.Local.Size())
			}
			for s := 0; s < steps; s++ {
				payload := []byte{byte(cp.Local.Rank()), byte(s)}
				if err := cp.Send(s, payload); err != nil {
					return err
				}
			}
			// Role misuse must fail.
			if _, err := cp.Recv(0); err == nil {
				return errors.New("producer Recv accepted")
			}
			return nil
		}
		if cp.Local.Size() != n {
			return fmt.Errorf("consumer group size %d", cp.Local.Size())
		}
		for s := 0; s < steps; s++ {
			msgs, err := cp.Recv(s)
			if err != nil {
				return err
			}
			lo, hi := cp.ProducersOf(cp.Local.Rank())
			if len(msgs) != hi-lo {
				return fmt.Errorf("step %d: %d messages, want %d", s, len(msgs), hi-lo)
			}
			for i, msg := range msgs {
				if msg.ProducerRank != lo+i {
					return fmt.Errorf("step %d: message %d from producer %d", s, i, msg.ProducerRank)
				}
				if msg.Data[0] != byte(lo+i) || msg.Data[1] != byte(s) {
					return fmt.Errorf("step %d: payload %v", s, msg.Data)
				}
			}
		}
		if err := cp.Send(0, nil); err == nil {
			return errors.New("consumer Send accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInTransitRegrid is the full use-case-B pipeline in miniature:
// producers own horizontal slabs of a 2D field, stream them to consumers,
// and the consumers use DDR inside their own group to regrid the received
// slabs into near-square rectangles (the paper's Figure 5).
func TestInTransitRegrid(t *testing.T) {
	const m, n = 6, 2
	domain := grid.Box2(0, 0, 24, 18)
	slabs := grid.Slabs(domain, 1, m)
	rows, cols := grid.Factor2(n)
	squares := grid.Grid2D(domain, rows, cols)

	value := func(x, y int) byte { return byte(3*x + 7*y) }

	err := mpi.Launch(m+n, func(world *mpi.Comm) error {
		cp, err := NewCoupling(world, m, n)
		if err != nil {
			return err
		}
		if cp.Role == Producer {
			slab := slabs[cp.Local.Rank()]
			buf := make([]byte, slab.Volume())
			i := 0
			for y := 0; y < slab.Dims[1]; y++ {
				for x := 0; x < slab.Dims[0]; x++ {
					buf[i] = value(slab.Offset[0]+x, slab.Offset[1]+y)
					i++
				}
			}
			return cp.Send(0, buf)
		}

		msgs, err := cp.Recv(0)
		if err != nil {
			return err
		}
		own := make([]core.Chunk, len(msgs))
		for i, msg := range msgs {
			own[i] = core.Chunk{Box: slabs[msg.ProducerRank], Data: msg.Data}
		}
		need := squares[cp.Local.Rank()]
		out, err := core.Redistribute(cp.Local, core.Layout2D, core.Uint8, own, need,
			core.WithValidation())
		if err != nil {
			return err
		}
		i := 0
		for y := 0; y < need.Dims[1]; y++ {
			for x := 0; x < need.Dims[0]; x++ {
				want := value(need.Offset[0]+x, need.Offset[1]+y)
				if out[i] != want {
					return fmt.Errorf("consumer %d element (%d,%d) = %d, want %d",
						cp.Local.Rank(), need.Offset[0]+x, need.Offset[1]+y, out[i], want)
				}
				i++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProducerRunsAhead verifies the coupling's buffering: producers may
// stream many steps before the consumer starts draining (eager delivery
// queues in the consumer's mailbox; nothing deadlocks or reorders).
func TestProducerRunsAhead(t *testing.T) {
	const m, n, steps = 2, 1, 50
	err := mpi.Launch(m+n, func(world *mpi.Comm) error {
		cp, err := NewCoupling(world, m, n)
		if err != nil {
			return err
		}
		if cp.Role == Producer {
			// Blast everything without waiting for the consumer.
			for s := 0; s < steps; s++ {
				if err := cp.Send(s, []byte{byte(s), byte(cp.Local.Rank())}); err != nil {
					return err
				}
			}
			return nil
		}
		// Drain in order after all sends are likely queued.
		for s := 0; s < steps; s++ {
			msgs, err := cp.Recv(s)
			if err != nil {
				return err
			}
			if len(msgs) != m {
				return fmt.Errorf("step %d: %d messages", s, len(msgs))
			}
			for _, msg := range msgs {
				if msg.Data[0] != byte(s) || int(msg.Data[1]) != msg.ProducerRank {
					return fmt.Errorf("step %d: payload %v from %d", s, msg.Data, msg.ProducerRank)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepTagWraps(t *testing.T) {
	if stepTag(0) != stepTag(transitTagMod) {
		t.Error("tag does not wrap at modulus")
	}
	if stepTag(-3) != stepTag(3) {
		t.Error("negative step not normalized")
	}
	if stepTag(5) == stepTag(6) {
		t.Error("adjacent steps share a tag")
	}
}
