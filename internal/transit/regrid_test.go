package transit

import (
	"fmt"
	"testing"

	"ddr/internal/core"
	"ddr/internal/grid"
	"ddr/internal/mpi"
)

// TestRegridderReconnectCycles drives the consumer side of use case B
// through four connection epochs: a cold connect, a steady-state
// reconnect with identical geometry, a producer rescale, and a return to
// the original layout. The first and third must compile; the second and
// fourth must be plan-cache hits that replay the exact cached plan.
func TestRegridderReconnectCycles(t *testing.T) {
	const n = 2
	domain := grid.Box2(0, 0, 24, 16)
	squares := grid.Grid2D(domain, 1, n)

	value := func(x, y, epoch int) byte { return byte(3*x + 7*y + 41*epoch) }

	err := mpi.Launch(n, func(c *mpi.Comm) error {
		me := c.Rank()
		desc, err := core.NewDescriptor(n, core.Layout2D, core.Uint8)
		if err != nil {
			return err
		}
		rg := NewRegridder(desc, squares[me])

		// chunksFor assigns m producer slabs to the n consumers in
		// contiguous blocks, as the coupling does.
		chunksFor := func(m, rank int) []grid.Box {
			slabs := grid.Slabs(domain, 1, m)
			blocks := grid.SplitEven(m, n)
			return slabs[blocks[rank]:blocks[rank+1]]
		}
		runEpoch := func(epoch int, own []grid.Box) error {
			if err := rg.Connect(c, own); err != nil {
				return err
			}
			bufs := make([][]byte, len(own))
			for i, b := range own {
				buf := make([]byte, b.Volume())
				k := 0
				for y := 0; y < b.Dims[1]; y++ {
					for x := 0; x < b.Dims[0]; x++ {
						buf[k] = value(b.Offset[0]+x, b.Offset[1]+y, epoch)
						k++
					}
				}
				bufs[i] = buf
			}
			need := squares[me]
			needBuf := make([]byte, need.Volume())
			if err := rg.Regrid(c, bufs, needBuf); err != nil {
				return err
			}
			k := 0
			for y := 0; y < need.Dims[1]; y++ {
				for x := 0; x < need.Dims[0]; x++ {
					if want := value(need.Offset[0]+x, need.Offset[1]+y, epoch); needBuf[k] != want {
						return fmt.Errorf("epoch %d rank %d (%d,%d): %d != %d",
							epoch, me, x, y, needBuf[k], want)
					}
					k++
				}
			}
			return nil
		}
		expectStats := func(when string, hits, misses int64) error {
			h, m := rg.CacheStats()
			if h != hits || m != misses {
				return fmt.Errorf("%s: cache stats %d hits / %d misses, want %d / %d", when, h, m, hits, misses)
			}
			return nil
		}

		// Epoch 0: cold connect at m = 4 producers.
		if err := runEpoch(0, chunksFor(4, me)); err != nil {
			return err
		}
		if err := expectStats("cold connect", 0, 1); err != nil {
			return err
		}
		coldPlan := desc.Plan()

		// Epoch 1: the producers restart with the same layout — the
		// steady-state reconnect. Must replay the identical cached plan.
		if err := runEpoch(1, chunksFor(4, me)); err != nil {
			return err
		}
		if err := expectStats("warm reconnect", 1, 1); err != nil {
			return err
		}
		if desc.Plan() != coldPlan {
			return fmt.Errorf("warm reconnect compiled a new plan instead of replaying the cached one")
		}

		// Epoch 2: the producers rescale from 4 to 2 ranks — new geometry,
		// new compile.
		if err := runEpoch(2, chunksFor(2, me)); err != nil {
			return err
		}
		if err := expectStats("rescale", 1, 2); err != nil {
			return err
		}

		// Epoch 3: back to the original scale; both layouts fit the LRU, so
		// this is a hit again.
		if err := runEpoch(3, chunksFor(4, me)); err != nil {
			return err
		}
		if err := expectStats("return to original scale", 2, 2); err != nil {
			return err
		}
		if desc.Plan() != coldPlan {
			return fmt.Errorf("returning layout did not replay its cached plan")
		}
		if rg.Epochs() != 4 {
			return fmt.Errorf("epochs = %d, want 4", rg.Epochs())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegridderGuards covers the misuse paths.
func TestRegridderGuards(t *testing.T) {
	err := mpi.Launch(1, func(c *mpi.Comm) error {
		desc, err := core.NewDescriptor(1, core.Layout1D, core.Uint8)
		if err != nil {
			return err
		}
		rg := NewRegridder(desc, grid.Box1(0, 8))
		if err := rg.Regrid(c, nil, make([]byte, 8)); err == nil {
			return fmt.Errorf("Regrid before Connect succeeded")
		}
		if err := rg.Connect(c, []grid.Box{grid.Box1(0, 8)}); err != nil {
			return err
		}
		if got := len(rg.Chunks()); got != 1 {
			return fmt.Errorf("Chunks() has %d entries, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
