package datatype

import (
	"bytes"
	"math/rand"
	"testing"

	"ddr/internal/grid"
)

// regionMask scatters 0xFF through the region into a zeroed local array,
// yielding the exact byte footprint of the type.
func regionMask(t Type, localBytes int) []byte {
	local := make([]byte, localBytes)
	wire := make([]byte, t.PackedSize())
	for i := range wire {
		wire[i] = 0xFF
	}
	t.Unpack(wire, local)
	return local
}

// TestContiguousSpanProperty checks ContiguousSpan against ground truth
// on random subarrays: ok must hold exactly when the region's byte
// footprint is one contiguous interval, and when it does, the packed wire
// must equal local[off : off+n] verbatim.
func TestContiguousSpanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(6)
		}
		array := grid.MustBox(make([]int, nd), dims)
		sub := grid.RandomBoxIn(rng, array)
		elemSize := 1 + rng.Intn(4)
		s, err := NewSubarray(elemSize, array, sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		localBytes := array.Volume() * elemSize
		mask := regionMask(s, localBytes)
		// Ground truth: is the footprint one contiguous interval?
		first, last, count := -1, -1, 0
		for i, b := range mask {
			if b == 0xFF {
				if first < 0 {
					first = i
				}
				last = i
				count++
			}
		}
		contiguous := count > 0 && last-first+1 == count
		off, n, ok := s.ContiguousSpan()
		if ok != contiguous {
			t.Fatalf("trial %d: %v reports ok=%v, footprint contiguous=%v", trial, s, ok, contiguous)
		}
		if !ok {
			continue
		}
		if off != first || n != count {
			t.Fatalf("trial %d: %v span (%d,%d), footprint (%d,%d)", trial, s, off, n, first, count)
		}
		// The wire representation is the local sub-slice verbatim.
		local := make([]byte, localBytes)
		for i := range local {
			local[i] = byte(rng.Intn(256))
		}
		wire := make([]byte, s.PackedSize())
		s.Pack(local, wire)
		if !bytes.Equal(wire, local[off:off+n]) {
			t.Fatalf("trial %d: %v packed wire differs from local[%d:%d]", trial, s, off, off+n)
		}
	}
}

func TestContiguousSpanKnownCases(t *testing.T) {
	array := grid.Box2(0, 0, 8, 6)
	cases := []struct {
		sub grid.Box
		ok  bool
	}{
		{grid.Box2(0, 0, 8, 6), true},  // whole array
		{grid.Box2(0, 2, 8, 3), true},  // full-width band
		{grid.Box2(2, 3, 5, 1), true},  // single row segment
		{grid.Box2(2, 0, 5, 1), true},  // segment of first row
		{grid.Box2(0, 0, 4, 6), false}, // column strip
		{grid.Box2(1, 1, 6, 4), false}, // interior box
		{grid.Box2(2, 3, 5, 2), false}, // two partial rows
	}
	for _, tc := range cases {
		s, err := NewSubarray(4, array, tc.sub)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := s.ContiguousSpan(); ok != tc.ok {
			t.Errorf("%v: ContiguousSpan ok=%v, want %v", tc.sub, ok, tc.ok)
		}
	}
	if off, n, ok := (Contiguous{Bytes: 40}).ContiguousSpan(); !ok || off != 0 || n != 40 {
		t.Errorf("Contiguous span (%d,%d,%v)", off, n, ok)
	}
	if _, _, ok := (Empty{}).ContiguousSpan(); !ok {
		t.Error("Empty must be contiguous")
	}
}

// TestRunJobs verifies the fork-join runner matches serial execution for
// every pool size, with jobs of uneven size in both directions.
func TestRunJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	array := grid.Box2(0, 0, 64, 64)
	local := make([]byte, array.Volume())
	for i := range local {
		local[i] = byte(rng.Intn(256))
	}
	var jobs []CopyJob
	var wires [][]byte
	for i := 0; i < 13; i++ {
		sub := grid.RandomBoxIn(rng, array)
		s, err := NewSubarray(1, array, sub)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]byte, s.PackedSize())
		wires = append(wires, w)
		jobs = append(jobs, CopyJob{T: s, Local: local, Wire: w})
	}
	serial := make([][]byte, len(jobs))
	for i := range jobs {
		jobs[i].Do()
		serial[i] = append([]byte(nil), wires[i]...)
	}
	for _, par := range []int{0, 1, 2, 8, 100} {
		for i := range wires {
			for j := range wires[i] {
				wires[i][j] = 0
			}
		}
		RunJobs(jobs, par)
		for i := range wires {
			if !bytes.Equal(wires[i], serial[i]) {
				t.Fatalf("par %d: job %d output differs from serial", par, i)
			}
		}
	}
	RunJobs(nil, 4) // empty batch is a no-op
}
