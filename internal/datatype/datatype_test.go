package datatype

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"ddr/internal/grid"
)

// fillPattern writes a distinct byte pattern derived from the element's
// global coordinates into a local array buffer.
func fillPattern(buf []byte, array grid.Box, elemSize int) {
	w := array.Dims[0]
	h := array.Dims[1]
	idx := 0
	for z := 0; z < array.Dims[2]; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				gx := array.Offset[0] + x
				gy := array.Offset[1] + y
				gz := array.Offset[2] + z
				v := uint32(gx + 1000*gy + 1000000*gz)
				for b := 0; b < elemSize; b++ {
					buf[idx*elemSize+b] = byte(v >> (8 * (b % 4)))
				}
				idx++
			}
		}
	}
}

func TestNewSubarrayValidation(t *testing.T) {
	arr := grid.Box2(0, 0, 8, 8)
	if _, err := NewSubarray(0, arr, grid.Box2(0, 0, 2, 2)); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := NewSubarray(4, arr, grid.Box1(0, 2)); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
	if _, err := NewSubarray(4, arr, grid.Box2(6, 6, 4, 4)); err == nil {
		t.Error("out-of-bounds sub-region accepted")
	}
	s, err := NewSubarray(4, arr, grid.Box2(4, 0, 4, 4))
	if err != nil {
		t.Fatalf("NewSubarray: %v", err)
	}
	if s.PackedSize() != 4*4*4 {
		t.Errorf("PackedSize = %d, want 64", s.PackedSize())
	}
}

func TestPackE1Row(t *testing.T) {
	// E1 from the paper: rank 0 owns row y=0 of an 8x8 float32 domain and
	// must send its right half (x in [4,8)) to rank 1.
	chunk := grid.Box2(0, 0, 8, 1)
	overlap := grid.Box2(4, 0, 4, 1)
	s, err := NewSubarray(4, chunk, overlap)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]byte, 8*4)
	for x := 0; x < 8; x++ {
		binary.LittleEndian.PutUint32(local[4*x:], uint32(x))
	}
	wire := make([]byte, s.PackedSize())
	if n := s.Pack(local, wire); n != 16 {
		t.Fatalf("Pack wrote %d bytes, want 16", n)
	}
	for i := 0; i < 4; i++ {
		if got := binary.LittleEndian.Uint32(wire[4*i:]); got != uint32(4+i) {
			t.Errorf("wire[%d] = %d, want %d", i, got, 4+i)
		}
	}
}

func TestUnpackIntoQuadrant(t *testing.T) {
	// Receiving side of E1: rank 0 needs quadrant (0,0)+(4,4) and receives
	// the sub-row (0,1)+(4,1) from rank 1.
	need := grid.Box2(0, 0, 4, 4)
	overlap := grid.Box2(0, 1, 4, 1)
	s, err := NewSubarray(1, need, overlap)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]byte, need.Volume())
	wire := []byte{0xA, 0xB, 0xC, 0xD}
	if n := s.Unpack(wire, local); n != 4 {
		t.Fatalf("Unpack consumed %d bytes, want 4", n)
	}
	// Row y=1 of the 4x4 buffer is elements 4..7.
	if !bytes.Equal(local[4:8], wire) {
		t.Errorf("row 1 = %v, want %v", local[4:8], wire)
	}
	for _, i := range []int{0, 3, 8, 15} {
		if local[i] != 0 {
			t.Errorf("element %d disturbed: %d", i, local[i])
		}
	}
}

func TestPackUnpackRoundTrip3D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		elemSize := []int{1, 2, 4, 8}[rng.Intn(4)]
		array := grid.Box3(rng.Intn(5), rng.Intn(5), rng.Intn(5),
			1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9))
		sub := grid.RandomBoxIn(rng, array)
		s, err := NewSubarray(elemSize, array, sub)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		src := make([]byte, array.Volume()*elemSize)
		fillPattern(src, array, elemSize)
		wire := make([]byte, s.PackedSize())
		if s.Pack(src, wire) != s.PackedSize() {
			return false
		}
		// Unpack into a zeroed buffer of the same geometry; the sub-region
		// must match src exactly and everything else must stay zero.
		dst := make([]byte, len(src))
		if s.Unpack(wire, dst) != s.PackedSize() {
			return false
		}
		w, h := array.Dims[0], array.Dims[1]
		for z := 0; z < array.Dims[2]; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					idx := (((z*h)+y)*w + x) * elemSize
					p := [3]int{array.Offset[0] + x, array.Offset[1] + y, array.Offset[2] + z}
					inside := sub.ContainsPoint(p)
					for b := 0; b < elemSize; b++ {
						if inside && dst[idx+b] != src[idx+b] {
							return false
						}
						if !inside && dst[idx+b] != 0 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPackFullArrayIsIdentity(t *testing.T) {
	array := grid.Box2(2, 3, 7, 5)
	s, err := NewSubarray(2, array, array)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, array.Volume()*2)
	fillPattern(src, array, 2)
	wire := make([]byte, s.PackedSize())
	s.Pack(src, wire)
	if !bytes.Equal(wire, src) {
		t.Error("packing the whole array should be a straight copy")
	}
}

func TestEmptySubarray(t *testing.T) {
	array := grid.Box1(0, 10)
	s, err := NewSubarray(4, array, grid.Box1(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s.PackedSize() != 0 {
		t.Errorf("PackedSize = %d, want 0", s.PackedSize())
	}
	if n := s.Pack(make([]byte, 40), nil); n != 0 {
		t.Errorf("Pack = %d, want 0", n)
	}
}

func TestContiguous(t *testing.T) {
	c := Contiguous{Bytes: 6}
	src := []byte{1, 2, 3, 4, 5, 6, 7}
	wire := make([]byte, 6)
	if n := c.Pack(src, wire); n != 6 {
		t.Fatalf("Pack = %d", n)
	}
	dst := make([]byte, 7)
	if n := c.Unpack(wire, dst); n != 6 {
		t.Fatalf("Unpack = %d", n)
	}
	if !bytes.Equal(dst[:6], src[:6]) || dst[6] != 0 {
		t.Errorf("dst = %v", dst)
	}
}

func TestEmptyType(t *testing.T) {
	var e Empty
	if e.PackedSize() != 0 || e.Pack(nil, nil) != 0 || e.Unpack(nil, nil) != 0 {
		t.Error("Empty type moved bytes")
	}
}

func BenchmarkPackSubarray2D(b *testing.B) {
	array := grid.Box2(0, 0, 2048, 1024)
	sub := grid.Box2(512, 256, 1024, 512)
	s, err := NewSubarray(4, array, sub)
	if err != nil {
		b.Fatal(err)
	}
	local := make([]byte, array.Volume()*4)
	wire := make([]byte, s.PackedSize())
	b.SetBytes(int64(s.PackedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pack(local, wire)
	}
}
