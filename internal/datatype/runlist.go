package datatype

import "fmt"

// maxCompiledRuns bounds the memory a compiled run list may spend. A 3D
// subarray of a large array can decompose into millions of rows; past
// this point the flattened offset table costs more cache traffic than
// the nested row loop it replaces, so compilation declines and the
// caller keeps the original type.
const maxCompiledRuns = 1 << 16

// RunList is a Type compiled down to an explicit table of byte runs: one
// starting offset per contiguous row of the region, all rows the same
// length. It is the "manual pack" strategy of the exchange autotuner —
// Pack and Unpack degenerate to a single flat loop of fixed-size copies,
// trading the Subarray's per-call stride arithmetic for a precomputed
// offset table that the branch predictor and prefetcher handle well.
//
// A RunList is semantically interchangeable with the Type it was
// compiled from: it packs the same bytes in the same order, so the wire
// format is identical and either side of an exchange may use either
// representation.
type RunList struct {
	offs []int // starting byte offset of each run in the local array
	run  int   // length of every run in bytes
	span contigSpan
}

// contigSpan mirrors the source type's ContiguousSpan result.
type contigSpan struct {
	off, n int
	ok     bool
}

// CompileRuns flattens t into a RunList when t is a *Subarray whose
// region decomposes into at most maxCompiledRuns equal-length rows.
// It returns (nil, false) for any other type — including already
// contiguous or empty regions, which have nothing to gain.
func CompileRuns(t Type) (*RunList, bool) {
	s, ok := t.(*Subarray)
	if !ok || s.Sub.Empty() {
		return nil, false
	}
	start, run, strideY, strideZ, ny, nz := s.rowGeometry()
	if run <= 0 || ny*nz > maxCompiledRuns {
		return nil, false
	}
	rl := &RunList{offs: make([]int, 0, ny*nz), run: run}
	for z := 0; z < nz; z++ {
		rowBase := start + z*strideZ
		for y := 0; y < ny; y++ {
			rl.offs = append(rl.offs, rowBase)
			rowBase += strideY
		}
	}
	rl.span.off, rl.span.n, rl.span.ok = s.ContiguousSpan()
	return rl, true
}

// PackedSize implements Type.
func (rl *RunList) PackedSize() int { return len(rl.offs) * rl.run }

// Pack implements Type.
func (rl *RunList) Pack(local []byte, wire []byte) int {
	w, run := 0, rl.run
	for _, off := range rl.offs {
		copy(wire[w:w+run], local[off:off+run])
		w += run
	}
	return w
}

// Unpack implements Type.
func (rl *RunList) Unpack(wire []byte, local []byte) int {
	r, run := 0, rl.run
	for _, off := range rl.offs {
		copy(local[off:off+run], wire[r:r+run])
		r += run
	}
	return r
}

// ContiguousSpan implements Type, reporting the span of the source type.
func (rl *RunList) ContiguousSpan() (off, n int, ok bool) {
	return rl.span.off, rl.span.n, rl.span.ok
}

// String describes the run list for diagnostics.
func (rl *RunList) String() string {
	return fmt.Sprintf("runlist{%d runs × %dB}", len(rl.offs), rl.run)
}
