package datatype

import (
	"bytes"
	"math/rand"
	"testing"

	"ddr/internal/grid"
)

// randomSubarray builds a valid random Subarray within a small 3D array.
func randomSubarray(rng *rand.Rand) *Subarray {
	dims := [3]int{1 + rng.Intn(12), 1 + rng.Intn(10), 1 + rng.Intn(8)}
	array := grid.Box{NDims: 3, Dims: [grid.MaxDims]int{dims[0], dims[1], dims[2]}}
	var sub grid.Box
	sub.NDims = 3
	for d := 0; d < 3; d++ {
		sub.Offset[d] = rng.Intn(dims[d])
		sub.Dims[d] = 1 + rng.Intn(dims[d]-sub.Offset[d])
	}
	elem := []int{1, 2, 4, 8}[rng.Intn(4)]
	s, err := NewSubarray(elem, array, sub)
	if err != nil {
		panic(err)
	}
	return s
}

// TestRunListMatchesSubarray proves a compiled run list is byte-for-byte
// interchangeable with the Subarray it came from: same packed size, same
// wire bytes from Pack, same scattered bytes from Unpack, same
// contiguity span.
func TestRunListMatchesSubarray(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := randomSubarray(rng)
		rl, ok := CompileRuns(s)
		if !ok {
			t.Fatalf("trial %d: compile declined for %v", trial, s)
		}
		if rl.PackedSize() != s.PackedSize() {
			t.Fatalf("trial %d: packed size %d != %d", trial, rl.PackedSize(), s.PackedSize())
		}
		so, sn, sok := s.ContiguousSpan()
		ro, rn, rok := rl.ContiguousSpan()
		if so != ro || sn != rn || sok != rok {
			t.Fatalf("trial %d: span (%d,%d,%v) != (%d,%d,%v)", trial, ro, rn, rok, so, sn, sok)
		}

		localBytes := s.Array.Volume() * s.ElemSize
		local := make([]byte, localBytes)
		rng.Read(local)
		wantWire := make([]byte, s.PackedSize())
		gotWire := make([]byte, s.PackedSize())
		if n, m := s.Pack(local, wantWire), rl.Pack(local, gotWire); n != m {
			t.Fatalf("trial %d: pack wrote %d vs %d", trial, m, n)
		}
		if !bytes.Equal(wantWire, gotWire) {
			t.Fatalf("trial %d: packed bytes differ for %v", trial, s)
		}

		wantLocal := make([]byte, localBytes)
		gotLocal := make([]byte, localBytes)
		if n, m := s.Unpack(wantWire, wantLocal), rl.Unpack(gotWire, gotLocal); n != m {
			t.Fatalf("trial %d: unpack read %d vs %d", trial, m, n)
		}
		if !bytes.Equal(wantLocal, gotLocal) {
			t.Fatalf("trial %d: unpacked bytes differ for %v", trial, s)
		}
	}
}

// TestCompileRunsDeclines covers the inputs compilation must refuse:
// non-Subarray types and empty regions.
func TestCompileRunsDeclines(t *testing.T) {
	if _, ok := CompileRuns(Contiguous{Bytes: 64}); ok {
		t.Error("compiled a Contiguous type")
	}
	if _, ok := CompileRuns(Empty{}); ok {
		t.Error("compiled the Empty type")
	}
	array := grid.Box{NDims: 2, Dims: [grid.MaxDims]int{8, 8}}
	empty := grid.Box{NDims: 2, Offset: [grid.MaxDims]int{2, 2}}
	s, err := NewSubarray(4, array, empty)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := CompileRuns(s); ok {
		t.Error("compiled an empty sub-region")
	}
}
