package datatype

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CopyJob is one pack or unpack operation between a strided local array
// and a contiguous wire buffer. Jobs for distinct peers address disjoint
// regions (packs read immutable sources; unpacks write disjoint
// destinations under DDR's exclusive-ownership precondition), so a batch
// of jobs may execute in any order and concurrently.
type CopyJob struct {
	T     Type
	Local []byte // the strided local array
	Wire  []byte // the contiguous wire buffer
	// Unpack selects the direction: false packs Local into Wire, true
	// scatters Wire into Local.
	Unpack bool
}

// Do executes the copy.
func (j *CopyJob) Do() {
	if j.Unpack {
		j.T.Unpack(j.Wire, j.Local)
	} else {
		j.T.Pack(j.Local, j.Wire)
	}
}

// RunJobs executes the jobs with up to par concurrent workers. par <= 0
// means runtime.GOMAXPROCS(0); par == 1 (or a single job) runs inline on
// the calling goroutine with no synchronization. Workers claim jobs from
// a shared atomic cursor, so imbalanced job sizes still spread across the
// pool.
func RunJobs(jobs []CopyJob, par int) {
	ForkJoin(len(jobs), par, func(i int) { jobs[i].Do() })
}

// ForkJoin runs f(0..n-1) with up to par concurrent workers and returns
// when every call has completed — the fork-join engine behind RunJobs,
// exposed so other fixed-size batches of independent work (plan
// compilation, contiguity analysis) share one scheduling idiom. par <= 0
// means runtime.GOMAXPROCS(0); par == 1 (or n == 1) runs inline on the
// calling goroutine with no synchronization. Workers claim indices from a
// shared atomic cursor, so imbalanced item costs still spread across the
// pool. Calls of f must be independent: they may run in any order and
// concurrently.
func ForkJoin(n, par int, f func(i int)) {
	if n == 0 {
		return
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
