// Package datatype implements the sub-array data layouts DDR uses to
// address multidimensional subsets of process-local buffers, playing the
// role MPI derived datatypes (MPI_Type_create_subarray) play in the
// original C implementation.
//
// A Type describes which bytes of a local array participate in a message.
// Pack gathers those bytes into a contiguous wire buffer and Unpack
// scatters a wire buffer back into a local array. All arrays are row-major
// with x fastest, matching the paper's [w], [w,h], [w,h,d] convention.
package datatype

import (
	"fmt"

	"ddr/internal/grid"
)

// Type describes the portion of a process-local buffer that participates
// in a single message.
type Type interface {
	// PackedSize returns the number of bytes the region occupies on the wire.
	PackedSize() int
	// Pack copies the region from the local array into wire, which must be
	// at least PackedSize() bytes. It returns the bytes written.
	Pack(local []byte, wire []byte) int
	// Unpack copies wire (PackedSize() bytes) into the region of the local
	// array. It returns the bytes consumed.
	Unpack(wire []byte, local []byte) int
	// ContiguousSpan reports whether the region occupies a single
	// contiguous byte range of the local array and, if so, its byte offset
	// and length. Contiguous regions need no gather/scatter staging: the
	// wire representation is local[off : off+n] verbatim, which enables the
	// zero-copy fast paths in the exchange engine.
	ContiguousSpan() (off, n int, ok bool)
}

// Subarray addresses a box-shaped sub-region of a local array.
//
// Array describes the full extents of the local buffer; its offset gives
// the buffer's position in the global domain, so a Sub box expressed in
// global coordinates is located within the buffer by subtracting Array's
// offset. ElemSize is the byte size of one element.
type Subarray struct {
	ElemSize int
	Array    grid.Box // full local array (global offset + extents)
	Sub      grid.Box // region to transfer, in global coordinates
}

// NewSubarray validates and builds a Subarray. The sub box must lie within
// the array box and elemSize must be positive.
func NewSubarray(elemSize int, array, sub grid.Box) (*Subarray, error) {
	if elemSize <= 0 {
		return nil, fmt.Errorf("datatype: element size %d must be positive", elemSize)
	}
	if array.NDims != sub.NDims {
		return nil, fmt.Errorf("datatype: array is %dD but sub-region is %dD", array.NDims, sub.NDims)
	}
	if !array.Contains(sub) {
		return nil, fmt.Errorf("datatype: sub-region %v not contained in array %v", sub, array)
	}
	return &Subarray{ElemSize: elemSize, Array: array, Sub: sub}, nil
}

// PackedSize implements Type.
func (s *Subarray) PackedSize() int { return s.Sub.Volume() * s.ElemSize }

// rowGeometry returns the parameters of the row-run copy loop: the byte
// offset of the first element, the length of one contiguous run, the
// strides between consecutive runs along y and z, and the run counts.
func (s *Subarray) rowGeometry() (start, run, strideY, strideZ, ny, nz int) {
	local := s.Sub.LocalTo(s.Array)
	w := s.Array.Dims[0]
	h := 1
	if s.Array.NDims >= 2 {
		h = s.Array.Dims[1]
	}
	start = ((local.Offset[2]*h)+local.Offset[1])*w + local.Offset[0]
	start *= s.ElemSize
	run = local.Dims[0] * s.ElemSize
	strideY = w * s.ElemSize
	strideZ = w * h * s.ElemSize
	ny = local.Dims[1]
	nz = local.Dims[2]
	return
}

// Pack implements Type.
func (s *Subarray) Pack(local []byte, wire []byte) int {
	if s.Sub.Empty() {
		return 0
	}
	start, run, strideY, strideZ, ny, nz := s.rowGeometry()
	w := 0
	for z := 0; z < nz; z++ {
		rowBase := start + z*strideZ
		for y := 0; y < ny; y++ {
			copy(wire[w:w+run], local[rowBase:rowBase+run])
			w += run
			rowBase += strideY
		}
	}
	return w
}

// Unpack implements Type.
func (s *Subarray) Unpack(wire []byte, local []byte) int {
	if s.Sub.Empty() {
		return 0
	}
	start, run, strideY, strideZ, ny, nz := s.rowGeometry()
	r := 0
	for z := 0; z < nz; z++ {
		rowBase := start + z*strideZ
		for y := 0; y < ny; y++ {
			copy(local[rowBase:rowBase+run], wire[r:r+run])
			r += run
			rowBase += strideY
		}
	}
	return r
}

// ContiguousSpan implements Type. A sub-region is contiguous in the
// row-major local array exactly when it spans the full array extent on
// every axis below its first partial axis and is flat (extent 1) on every
// axis above it: full-width row bands in 2D, whole xy-slab stacks in 3D,
// any 1D interval, and the whole array itself.
func (s *Subarray) ContiguousSpan() (off, n int, ok bool) {
	local := s.Sub.LocalTo(s.Array)
	first := -1
	for d := 0; d < grid.MaxDims; d++ {
		if local.Offset[d] == 0 && local.Dims[d] == s.Array.Dims[d] {
			continue
		}
		first = d
		break
	}
	if first >= 0 {
		for d := first + 1; d < grid.MaxDims; d++ {
			if local.Dims[d] != 1 {
				return 0, 0, false
			}
		}
	}
	start, _, _, _, _, _ := s.rowGeometry()
	return start, s.PackedSize(), true
}

// String describes the subarray for diagnostics.
func (s *Subarray) String() string {
	return fmt.Sprintf("subarray{%v of %v, %dB elems}", s.Sub, s.Array, s.ElemSize)
}

// Contiguous is a Type covering an entire contiguous byte range — the
// degenerate datatype used for already-linear payloads such as streamed
// simulation slabs.
type Contiguous struct {
	Bytes int
}

// PackedSize implements Type.
func (c Contiguous) PackedSize() int { return c.Bytes }

// Pack implements Type.
func (c Contiguous) Pack(local []byte, wire []byte) int {
	return copy(wire[:c.Bytes], local[:c.Bytes])
}

// Unpack implements Type.
func (c Contiguous) Unpack(wire []byte, local []byte) int {
	return copy(local[:c.Bytes], wire[:c.Bytes])
}

// ContiguousSpan implements Type.
func (c Contiguous) ContiguousSpan() (off, n int, ok bool) { return 0, c.Bytes, true }

// Empty is a zero-size Type used for peers that exchange no data in a
// given round (the alltoallw slots MPI would fill with zero counts).
type Empty struct{}

// PackedSize implements Type.
func (Empty) PackedSize() int { return 0 }

// Pack implements Type.
func (Empty) Pack([]byte, []byte) int { return 0 }

// Unpack implements Type.
func (Empty) Unpack([]byte, []byte) int { return 0 }

// ContiguousSpan implements Type.
func (Empty) ContiguousSpan() (off, n int, ok bool) { return 0, 0, true }
