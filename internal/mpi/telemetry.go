package mpi

import (
	"ddr/internal/obs"
	"ddr/internal/trace"
)

// Telemetry bundles the observability sinks for one rank: latency
// histograms and wire-byte counters in an obs.Registry, per-operation
// spans in a trace.Recorder, and a pending-message gauge on the rank's
// mailbox. Construct with NewTelemetry and attach with
// Comm.AttachTelemetry; a nil *Telemetry is valid everywhere and costs a
// single pointer check on the hot paths.
type Telemetry struct {
	rank int
	rec  *trace.Recorder

	sendLatency *obs.Histogram
	recvLatency *obs.Histogram
	collLatency *obs.Histogram
	wireSent    *obs.Counter
	wireRecv    *obs.Counter
	pendingMsgs *obs.Gauge

	// TCP frame-level instruments, mirrored by the endpoint when the
	// communicator rides the TCP transport (payload + frame headers).
	tcpOut          *obs.Counter
	tcpIn           *obs.Counter
	tcpCoalesced    *obs.Counter
	tcpChunksOut    *obs.Counter
	tcpChunksIn     *obs.Counter
	tcpBackpressure *obs.Counter
	tcpSendqSat     *obs.Counter
	tcpQueueDepth   *obs.Gauge

	// Shared-memory transport instruments, mirrored by the rank's shm
	// ring producer/consumer, and the leader-relay counter of the
	// hierarchical transport (only moved by ranks that lead their node).
	shmBytesOut    *obs.Counter
	shmBytesIn     *obs.Counter
	shmOccupancy   *obs.Gauge
	hierRelayBytes *obs.Counter

	// Fault-tolerance instruments: chaos-engine verdicts mirrored by the
	// fault transport, TCP reconnect attempts, and peers this rank's
	// mailbox declared lost.
	faultDrops    *obs.Counter
	faultRetries  *obs.Counter
	faultSevers   *obs.Counter
	tcpReconnects *obs.Counter
	peersLost     *obs.Counter

	// flight is the per-rank flight recorder; nil unless attached via
	// WithFlightRecorder. Hot paths gate on the nil check.
	flight *obs.FlightRecorder
}

// NewTelemetry derives a rank's instrument handles from the registry and
// recorder. Either may be nil; when both are nil the result is nil and
// instrumentation stays on its free path.
func NewTelemetry(reg *obs.Registry, rec *trace.Recorder, rank int) *Telemetry {
	if reg == nil && rec == nil {
		return nil
	}
	rl := obs.RankLabel(rank)
	return &Telemetry{
		rank: rank,
		rec:  rec,
		sendLatency: reg.Histogram("mpi_send_latency_seconds",
			"Time spent delivering one message into the transport.", obs.LatencyBuckets, rl),
		recvLatency: reg.Histogram("mpi_recv_latency_seconds",
			"Time blocked in Recv until a matching message arrived.", obs.LatencyBuckets, rl),
		collLatency: reg.Histogram("mpi_alltoallw_latency_seconds",
			"Wall time of one alltoallw collective on this rank.", obs.LatencyBuckets, rl),
		wireSent: reg.Counter("mpi_wire_bytes_sent_total",
			"Payload bytes this rank handed to its transport.", rl),
		wireRecv: reg.Counter("mpi_wire_bytes_recv_total",
			"Payload bytes this rank consumed from its transport.", rl),
		pendingMsgs: reg.Gauge("mpi_pending_messages",
			"Unmatched messages queued in this rank's mailbox.", rl),
		tcpOut: reg.Counter("mpi_tcp_wire_bytes_out_total",
			"Frame bytes (headers included) written to TCP peers.", rl),
		tcpIn: reg.Counter("mpi_tcp_wire_bytes_in_total",
			"Frame bytes (headers included) read from TCP peers.", rl),
		tcpCoalesced: reg.Counter("mpi_tcp_frames_coalesced_total",
			"Frames that shared a vectored write with at least one other frame.", rl),
		tcpChunksOut: reg.Counter("mpi_tcp_chunks_out_total",
			"Chunk sub-frames written for large-message streaming.", rl),
		tcpChunksIn: reg.Counter("mpi_tcp_chunks_in_total",
			"Chunk sub-frames read and reassembled.", rl),
		tcpBackpressure: reg.Counter("mpi_tcp_backpressure_total",
			"Sends that found their peer's queue full and had to block.", rl),
		tcpSendqSat: reg.Counter("mpi_tcp_sendq_saturation_total",
			"Send-queue saturation events per peer writer. The warning log is one-shot per peer; this counter records every recurrence so scrapes see sustained saturation.", rl),
		tcpQueueDepth: reg.Gauge("mpi_tcp_send_queue_depth",
			"Frames enqueued to peer writers and not yet written.", rl),
		shmBytesOut: reg.Counter("mpi_shm_bytes_out_total",
			"Payload bytes this rank published into shared-memory rings.", rl),
		shmBytesIn: reg.Counter("mpi_shm_bytes_in_total",
			"Payload bytes this rank consumed from shared-memory rings.", rl),
		shmOccupancy: reg.Gauge("mpi_shm_ring_occupancy_bytes",
			"Record bytes committed to this rank's inbound rings and not yet consumed.", rl),
		hierRelayBytes: reg.Counter("mpi_hier_leader_relay_bytes_total",
			"Bytes this rank aggregated onto inter-node TCP flows as its node's leader.", rl),
		faultDrops: reg.Counter("mpi_fault_drops_total",
			"Delivery attempts discarded by the fault injector.", rl),
		faultRetries: reg.Counter("mpi_fault_retries_total",
			"Backoff retries after fault-injected drops.", rl),
		faultSevers: reg.Counter("mpi_fault_severed_links_total",
			"Peer links cut by the fault injector.", rl),
		tcpReconnects: reg.Counter("mpi_tcp_reconnects_total",
			"Peer writer reconnect attempts after connection failures.", rl),
		peersLost: reg.Counter("mpi_peers_lost_total",
			"Peer ranks this rank's mailbox declared unreachable.", rl),
	}
}

// Rank returns the rank the telemetry was created for.
func (t *Telemetry) Rank() int {
	if t == nil {
		return -1
	}
	return t.rank
}

// WithFlightRecorder attaches a flight recorder to the bundle, allocating
// the bundle if t is nil (flight recording works without a registry or
// trace recorder). Returns the bundle for chaining; a nil f is a no-op.
func (t *Telemetry) WithFlightRecorder(f *obs.FlightRecorder, rank int) *Telemetry {
	if f == nil {
		return t
	}
	if t == nil {
		t = &Telemetry{rank: rank}
	}
	t.flight = f
	return t
}

// FlightRecorder returns the attached flight recorder (nil when none).
func (t *Telemetry) FlightRecorder() *obs.FlightRecorder {
	if t == nil {
		return nil
	}
	return t.flight
}

// AttachTelemetry hooks the telemetry into this communicator and every
// communicator later derived from it via Split/Dup (spans and counters
// stay attributed to the world rank, giving one unified timeline per
// process). Attach before the communicator gets busy: the hook is read
// without synchronization on the hot paths. Passing nil detaches.
func (c *Comm) AttachTelemetry(t *Telemetry) {
	c.tel = t
	if c.box != nil {
		if t != nil {
			c.box.setDepthGauge(t.pendingMsgs)
			c.box.setLostCounter(t.peersLost)
			c.box.setFlight(t.flight, c.group[c.rank])
		} else {
			c.box.setDepthGauge(nil)
			c.box.setLostCounter(nil)
			c.box.setFlight(nil, c.group[c.rank])
		}
	}
	switch tr := c.tr.(type) {
	case *tcpTransport:
		tr.ep.attachObs(t)
	case *shmTransport:
		tr.attachObs(t)
	case *hierTransport:
		tr.attachObs(t)
	case *faultTransport:
		tr.attachObs(t)
		switch raw := tr.raw.(type) {
		case *tcpTransport:
			raw.ep.attachObs(t)
		case *shmTransport:
			raw.attachObs(t)
		case *hierTransport:
			raw.attachObs(t)
		}
	}
}

// Telemetry returns the attached telemetry (nil when detached).
func (c *Comm) Telemetry() *Telemetry { return c.tel }
