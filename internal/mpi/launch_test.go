package mpi

import (
	"sync/atomic"
	"testing"
)

// countingInjector records how many delivery attempts consulted it while
// injecting nothing.
type countingInjector struct{ calls atomic.Int64 }

func (ci *countingInjector) FaultFor(src, dst, tag int, seq uint64, attempt int) Fault {
	ci.calls.Add(1)
	return Fault{}
}

// launchRing is a minimal world body: every rank sends its rank to the
// next and checks the value received from the previous.
func launchRing(t *testing.T) func(c *Comm) error {
	return func(c *Comm) error {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		if err := c.Send(next, 7, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		data, _, _, err := c.Recv(prev, 7)
		if err != nil {
			return err
		}
		if len(data) != 1 || int(data[0]) != prev {
			t.Errorf("rank %d received %v from %d", c.Rank(), data, prev)
		}
		return nil
	}
}

func TestLaunchDefaultsToInProc(t *testing.T) {
	if err := Launch(4, launchRing(t)); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchTCPTransport(t *testing.T) {
	if err := Launch(4, launchRing(t), WithTransport(TransportTCP)); err != nil {
		t.Fatal(err)
	}
	if err := Launch(4, launchRing(t), WithTCPOptions(DefaultTCPOptions())); err != nil {
		t.Fatal(err)
	}
}

// TestLaunchInjectorPrecedence pins the three-way injector contract:
// omitting WithFaultInjector uses the process default, passing one
// overrides it, and passing an explicit nil runs fault-free even with a
// default installed.
func TestLaunchInjectorPrecedence(t *testing.T) {
	def := &countingInjector{}
	SetDefaultFaultInjector(def)
	defer SetDefaultFaultInjector(nil)

	if err := Launch(2, launchRing(t)); err != nil {
		t.Fatal(err)
	}
	if def.calls.Load() == 0 {
		t.Fatal("default injector not consulted when WithFaultInjector is omitted")
	}

	base := def.calls.Load()
	own := &countingInjector{}
	if err := Launch(2, launchRing(t), WithFaultInjector(own)); err != nil {
		t.Fatal(err)
	}
	if own.calls.Load() == 0 {
		t.Fatal("explicit injector not consulted")
	}
	if def.calls.Load() != base {
		t.Fatal("default injector consulted despite explicit WithFaultInjector")
	}

	if err := Launch(2, launchRing(t), WithFaultInjector(nil)); err != nil {
		t.Fatal(err)
	}
	if def.calls.Load() != base {
		t.Fatal("default injector consulted despite explicit WithFaultInjector(nil)")
	}
}

// TestLaunchDeprecatedWrappers keeps the five legacy entry points
// working until external callers migrate.
func TestLaunchDeprecatedWrappers(t *testing.T) {
	if err := Run(3, launchRing(t)); err != nil {
		t.Fatal(err)
	}
	if err := RunChaos(3, nil, launchRing(t)); err != nil {
		t.Fatal(err)
	}
	if err := RunTCP(3, launchRing(t)); err != nil {
		t.Fatal(err)
	}
	if err := RunTCPOpts(3, DefaultTCPOptions(), launchRing(t)); err != nil {
		t.Fatal(err)
	}
	if err := RunTCPChaos(3, DefaultTCPOptions(), nil, launchRing(t)); err != nil {
		t.Fatal(err)
	}
}
