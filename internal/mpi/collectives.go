package mpi

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"ddr/internal/datatype"
)

// ctxDone projects a possibly-nil context onto an envelope cancel channel.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// nextCollTag returns the reserved (negative) tag for the next collective
// operation on this communicator. Collectives must be invoked by all
// ranks of a communicator in the same order — the standard MPI contract —
// which keeps the per-rank sequence numbers in lockstep.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return -2 - (c.collSeq & 0xFFFFF)
}

// Barrier blocks until every rank in the communicator has entered it.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	// Fan-in to rank 0, then fan-out, both along a binomial tree.
	if err := c.treeGatherSignal(tag); err != nil {
		return err
	}
	_, err := c.bcastInternal(0, nil, tag)
	return err
}

// treeGatherSignal performs an empty-message reduction to rank 0.
func (c *Comm) treeGatherSignal(tag int) error {
	size, rank := len(c.group), c.rank
	for mask := 1; mask < size; mask <<= 1 {
		if rank&mask != 0 {
			dst := rank - mask
			return c.sendInternal(dst, tag, nil)
		}
		src := rank + mask
		if src < size {
			if _, _, _, err := c.Recv(src, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// Bcast distributes root's data to every rank and returns the received
// copy (root receives its own data back unchanged).
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	return c.bcastInternal(root, data, c.nextCollTag())
}

// bcastInternal is a binomial-tree broadcast on an already-allocated tag.
func (c *Comm) bcastInternal(root int, data []byte, tag int) ([]byte, error) {
	size, rank := len(c.group), c.rank
	rel := (rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := rank - mask
			if src < 0 {
				src += size
			}
			got, _, _, err := c.Recv(src, tag)
			if err != nil {
				return nil, err
			}
			data = got
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := rank + mask
			if dst >= size {
				dst -= size
			}
			if err := c.sendInternal(dst, tag, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Gather collects each rank's data at root. At root the returned slice has
// one entry per rank (in rank order); at other ranks it is nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.sendInternal(root, tag, data)
	}
	out := make([][]byte, len(c.group))
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for r := range c.group {
		if r == root {
			continue
		}
		got, _, _, err := c.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Allgather collects each rank's data on every rank (rank order).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.rank == 0 {
		packed = encodeSlices(parts)
	}
	packed, err = c.Bcast(0, packed)
	if err != nil {
		return nil, err
	}
	return decodeSlices(packed, len(c.group))
}

// ReduceOp identifies an elementwise reduction operator.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

// AllreduceFloat64 reduces vals elementwise across all ranks and returns
// the result on every rank. All ranks must pass slices of equal length.
func (c *Comm) AllreduceFloat64(vals []float64, op ReduceOp) ([]float64, error) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	parts, err := c.Gather(0, buf)
	if err != nil {
		return nil, err
	}
	var reduced []byte
	if c.rank == 0 {
		acc := make([]float64, len(vals))
		copy(acc, vals)
		for r, p := range parts {
			if r == 0 {
				continue
			}
			if len(p) != len(buf) {
				return nil, fmt.Errorf("mpi: allreduce length mismatch from rank %d", r)
			}
			for i := range acc {
				v := math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
				switch op {
				case OpSum:
					acc[i] += v
				case OpMin:
					acc[i] = math.Min(acc[i], v)
				case OpMax:
					acc[i] = math.Max(acc[i], v)
				default:
					return nil, fmt.Errorf("mpi: unsupported reduce op %v", op)
				}
			}
		}
		reduced = make([]byte, len(buf))
		for i, v := range acc {
			binary.LittleEndian.PutUint64(reduced[8*i:], math.Float64bits(v))
		}
	}
	reduced, err = c.Bcast(0, reduced)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(reduced[8*i:]))
	}
	return out, nil
}

// AllreduceInt64 reduces vals elementwise across all ranks and returns the
// result on every rank. All ranks must pass slices of equal length.
func (c *Comm) AllreduceInt64(vals []int64, op ReduceOp) ([]int64, error) {
	fs := make([]float64, len(vals))
	for i, v := range vals {
		fs[i] = float64(v)
	}
	// int64 values used by DDR (chunk counts, byte totals) are far below
	// 2^53, so the float64 path is exact for them; guard anyway.
	for _, v := range vals {
		if v > 1<<52 || v < -(1<<52) {
			return nil, fmt.Errorf("mpi: AllreduceInt64 value %d exceeds exact range", v)
		}
	}
	rf, err := c.AllreduceFloat64(fs, op)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range rf {
		out[i] = int64(v)
	}
	return out, nil
}

// Alltoallv sends send[i] to rank i and returns the payloads received from
// every rank (recv[j] comes from rank j). Slice sizes may differ per peer;
// nil entries are delivered as empty messages.
func (c *Comm) Alltoallv(send [][]byte) ([][]byte, error) {
	if len(send) != len(c.group) {
		return nil, fmt.Errorf("mpi: alltoallv send has %d entries for %d ranks", len(send), len(c.group))
	}
	tag := c.nextCollTag()
	recv := make([][]byte, len(c.group))
	cp := make([]byte, len(send[c.rank]))
	copy(cp, send[c.rank])
	recv[c.rank] = cp
	for r := range c.group {
		if r == c.rank {
			continue
		}
		if err := c.sendInternal(r, tag, send[r]); err != nil {
			return nil, err
		}
	}
	for r := range c.group {
		if r == c.rank {
			continue
		}
		got, _, _, err := c.Recv(r, tag)
		if err != nil {
			return nil, err
		}
		recv[r] = got
	}
	return recv, nil
}

// AlltoallwOptions tunes how Alltoallw stages and copies sub-regions.
// The zero value reproduces the historical serial behaviour: one freshly
// allocated staging buffer per peer, packed and unpacked inline.
type AlltoallwOptions struct {
	// Parallelism is the number of concurrent pack/unpack workers; values
	// <= 1 pack serially on the calling goroutine. Parallel staging trades
	// the per-peer trace spans for aggregate a2aw-pack/a2aw-unpack spans.
	Parallelism int
	// Pooled stages wire buffers through the process-wide buffer arena
	// (GetBuffer/PutBuffer) instead of allocating per call.
	Pooled bool
	// ZeroCopy replaces the gather/scatter loops with single memmoves for
	// regions that are contiguous in the local arrays.
	ZeroCopy bool
	// Deadline bounds the whole exchange. When > 0, sends and receives
	// that exceed it fail with ErrExchangeTimeout, and instead of aborting
	// on the first lost or unresponsive peer the exchange degrades
	// gracefully: it skips that peer, finishes with the healthy ones, and
	// returns a *PartialExchangeError naming everyone it gave up on. Zero
	// keeps the historical fail-fast, wait-forever behaviour.
	Deadline time.Duration
}

// Alltoallw exchanges typed sub-regions between all ranks, the analogue of
// MPI_Alltoallw. sendTypes[i] selects the bytes of sendBuf destined for
// rank i; recvTypes[j] scatters the bytes arriving from rank j into
// recvBuf. Peers whose types have zero packed size exchange no message, so
// the send and receive geometries must agree across ranks (DDR constructs
// both sides from the same overlap computation, which guarantees this).
//
// Staging is serial but pooled and contiguity-aware; use AlltoallwOpt for
// explicit control (all ranks must pass equivalent options).
func (c *Comm) Alltoallw(sendBuf []byte, sendTypes []datatype.Type, recvBuf []byte, recvTypes []datatype.Type) error {
	return c.AlltoallwOpt(sendBuf, sendTypes, recvBuf, recvTypes,
		AlltoallwOptions{Parallelism: 1, Pooled: true, ZeroCopy: true})
}

// AlltoallwOpt is Alltoallw with explicit staging options.
func (c *Comm) AlltoallwOpt(sendBuf []byte, sendTypes []datatype.Type, recvBuf []byte, recvTypes []datatype.Type, opt AlltoallwOptions) error {
	if len(sendTypes) != len(c.group) || len(recvTypes) != len(c.group) {
		return fmt.Errorf("mpi: alltoallw needs %d send and recv types, got %d/%d",
			len(c.group), len(sendTypes), len(recvTypes))
	}
	tag := c.nextCollTag()
	tel := c.tel
	var collStart time.Time
	var wireBytes int64
	if tel != nil {
		collStart = time.Now()
	}
	stage := func(n int) []byte {
		if opt.Pooled {
			return GetBuffer(n)
		}
		return make([]byte, n)
	}

	// Graceful degradation under a deadline: peer-loss and timeout errors
	// park the peer on the lost list instead of aborting the collective.
	var dctx context.Context
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(context.Background(), opt.Deadline)
		defer cancel()
	}
	var lostPeers []int
	var lostCause error
	degrade := func(r int, err error) bool {
		if opt.Deadline <= 0 || !IsPeerLoss(err) {
			return false
		}
		lostPeers = append(lostPeers, c.group[r])
		if lostCause == nil {
			lostCause = err
		}
		return true
	}
	isLost := func(r int) bool {
		for _, lr := range lostPeers {
			if lr == c.group[r] {
				return true
			}
		}
		return false
	}

	// Local exchange without touching the transport. One contiguous side
	// is enough to drop the staging buffer: the other side's pack/unpack
	// can target/source the contiguous region directly.
	if n := sendTypes[c.rank].PackedSize(); n != recvTypes[c.rank].PackedSize() {
		return fmt.Errorf("mpi: rank %d self exchange size mismatch (%d vs %d)",
			c.rank, n, recvTypes[c.rank].PackedSize())
	} else if n > 0 {
		sOff, _, sOK := sendTypes[c.rank].ContiguousSpan()
		rOff, _, rOK := recvTypes[c.rank].ContiguousSpan()
		switch {
		case opt.ZeroCopy && sOK && rOK:
			copy(recvBuf[rOff:rOff+n], sendBuf[sOff:sOff+n])
		case opt.ZeroCopy && sOK:
			recvTypes[c.rank].Unpack(sendBuf[sOff:sOff+n], recvBuf)
		case opt.ZeroCopy && rOK:
			sendTypes[c.rank].Pack(sendBuf, recvBuf[rOff:rOff+n])
		default:
			wire := stage(n)
			sendTypes[c.rank].Pack(sendBuf, wire)
			recvTypes[c.rank].Unpack(wire, recvBuf)
			if opt.Pooled {
				PutBuffer(wire)
			}
		}
	}

	// Pack and send. The wire buffer is handed to the transport, which
	// either delivers it to the peer's mailbox (in-process: the receiver
	// recycles it) or writes it to the socket, so the sender never recycles
	// it here. With ZeroCopy a contiguous region skips the gather loop and
	// is copied straight into the wire buffer.
	par := opt.Parallelism
	var packJobs []datatype.CopyJob
	var packWires [][]byte // parallel to packJobs' destination peers
	var packPeers []int
	var packStart time.Time
	if tel != nil && par > 1 {
		packStart = time.Now()
	}
	for r := range c.group {
		if r == c.rank {
			continue
		}
		n := sendTypes[r].PackedSize()
		if n == 0 {
			continue
		}
		var peerStart time.Time
		if tel != nil && par <= 1 {
			peerStart = time.Now()
		}
		wire := stage(n)
		if off, _, ok := sendTypes[r].ContiguousSpan(); opt.ZeroCopy && ok {
			copy(wire, sendBuf[off:off+n])
		} else if par > 1 {
			packJobs = append(packJobs, datatype.CopyJob{T: sendTypes[r], Local: sendBuf, Wire: wire})
			packWires = append(packWires, wire)
			packPeers = append(packPeers, r)
			continue // send after the parallel pack phase
		} else {
			sendTypes[r].Pack(sendBuf, wire)
		}
		c.counters.countSend(c.group[r], len(wire))
		if tel != nil {
			if par <= 1 {
				tel.rec.AddSpan(tel.rank, fmt.Sprintf("a2aw-pack->%d", c.group[r]), peerStart, time.Now(), int64(n))
			}
			tel.wireSent.Add(int64(n))
			wireBytes += int64(n)
		}
		if err := c.tr.send(c.group[r], envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: wire, cancel: ctxDone(dctx)}); err != nil {
			if degrade(r, err) {
				continue
			}
			return err
		}
	}
	if len(packJobs) > 0 {
		datatype.RunJobs(packJobs, par)
		if tel != nil {
			tel.rec.AddSpan(tel.rank, "a2aw-pack", packStart, time.Now(), 0)
		}
		for i, wire := range packWires {
			r := packPeers[i]
			c.counters.countSend(c.group[r], len(wire))
			if tel != nil {
				tel.wireSent.Add(int64(len(wire)))
				wireBytes += int64(len(wire))
			}
			if err := c.tr.send(c.group[r], envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: wire, cancel: ctxDone(dctx)}); err != nil {
				if degrade(r, err) {
					continue
				}
				return err
			}
		}
	}

	// Receive and unpack. Contiguous destinations take a single memmove;
	// strided ones unpack inline (serial) or fan out to workers (parallel).
	var unpackJobs []datatype.CopyJob
	var unpackWires [][]byte
	var unpackStart time.Time
	if tel != nil && par > 1 {
		unpackStart = time.Now()
	}
	for r := range c.group {
		if r == c.rank {
			continue
		}
		want := recvTypes[r].PackedSize()
		if want == 0 {
			continue
		}
		if isLost(r) {
			// Our send to this peer already failed; its reply is not coming.
			continue
		}
		var recvStart time.Time
		if tel != nil {
			recvStart = time.Now()
		}
		got, _, _, err := c.RecvCtx(dctx, r, tag)
		if err != nil {
			if degrade(r, err) {
				continue
			}
			return err
		}
		if len(got) != want {
			return fmt.Errorf("mpi: alltoallw expected %d bytes from rank %d, got %d", want, r, len(got))
		}
		done := true
		if off, _, ok := recvTypes[r].ContiguousSpan(); opt.ZeroCopy && ok {
			copy(recvBuf[off:off+want], got)
		} else if par > 1 {
			unpackJobs = append(unpackJobs, datatype.CopyJob{T: recvTypes[r], Local: recvBuf, Wire: got, Unpack: true})
			unpackWires = append(unpackWires, got)
			done = false
		} else {
			recvTypes[r].Unpack(got, recvBuf)
		}
		if tel != nil {
			if par <= 1 || done {
				tel.rec.AddSpan(tel.rank, fmt.Sprintf("a2aw-unpack<-%d", c.group[r]), recvStart, time.Now(), int64(want))
			}
			wireBytes += int64(want)
		}
		// Received payloads are always arena-backed (the eager send copy and
		// the TCP read loop both draw from the arena), so recycling is not
		// conditional on this call's own staging mode.
		if done {
			PutBuffer(got)
		}
	}
	if len(unpackJobs) > 0 {
		datatype.RunJobs(unpackJobs, par)
		if tel != nil {
			tel.rec.AddSpan(tel.rank, "a2aw-unpack", unpackStart, time.Now(), 0)
		}
		for _, got := range unpackWires {
			PutBuffer(got)
		}
	}
	if tel != nil {
		now := time.Now()
		tel.rec.AddSpan(tel.rank, "alltoallw", collStart, now, wireBytes)
		tel.collLatency.Observe(now.Sub(collStart).Seconds())
	}
	if len(lostPeers) > 0 {
		return newPartialExchangeError(lostPeers, lostCause)
	}
	return nil
}

// encodeSlices frames a list of byte slices into one buffer.
func encodeSlices(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// decodeSlices reverses encodeSlices, validating the expected count.
func decodeSlices(buf []byte, want int) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: truncated slice framing")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n != want {
		return nil, fmt.Errorf("mpi: framing holds %d slices, want %d", n, want)
	}
	buf = buf[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: truncated slice header %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("mpi: truncated slice body %d", i)
		}
		out[i] = buf[:l:l]
		buf = buf[l:]
	}
	return out, nil
}
