package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// TestCollectivesRandomized drives the collectives with randomized sizes
// and roots over the in-process transport: the property checked is that
// every rank observes exactly the bytes the semantics promise.
func TestCollectivesRandomized(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(9)
		root := rng.Intn(n)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = rng.Intn(5000)
		}
		payload := func(rank int) []byte {
			out := make([]byte, sizes[rank])
			for i := range out {
				out[i] = byte(rank*31 + i)
			}
			return out
		}
		err := Run(n, func(c *Comm) error {
			mine := payload(c.Rank())

			// Bcast: everyone must end with root's payload.
			got, err := c.Bcast(root, mine)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload(root)) {
				return fmt.Errorf("bcast mismatch on rank %d", c.Rank())
			}

			// Allgather: rank order preserved, bytes intact.
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			for r, p := range all {
				if !bytes.Equal(p, payload(r)) {
					return fmt.Errorf("allgather rank %d entry %d corrupt", c.Rank(), r)
				}
			}

			// Alltoallv with asymmetric sizes: recv[j] must be what j sent us.
			send := make([][]byte, n)
			for dst := range send {
				l := (c.Rank()*7 + dst*3) % 97
				send[dst] = bytes.Repeat([]byte{byte(c.Rank()<<4 | dst&0xF)}, l)
			}
			recv, err := c.Alltoallv(send)
			if err != nil {
				return err
			}
			for src, p := range recv {
				wantLen := (src*7 + c.Rank()*3) % 97
				if len(p) != wantLen {
					return fmt.Errorf("alltoallv from %d: %d bytes, want %d", src, len(p), wantLen)
				}
				for _, b := range p {
					if b != byte(src<<4|c.Rank()&0xF) {
						return fmt.Errorf("alltoallv from %d: corrupt byte", src)
					}
				}
			}

			// Scatterv: each rank gets its designated slice.
			var parts [][]byte
			if c.Rank() == root {
				parts = make([][]byte, n)
				for r := range parts {
					parts[r] = payload(r)
				}
			}
			sv, err := c.Scatterv(root, parts)
			if err != nil {
				return err
			}
			if !bytes.Equal(sv, mine) {
				return fmt.Errorf("scatterv mismatch on rank %d", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (n=%d root=%d): %v", trial, n, root, err)
		}
	}
}

// TestManyConcurrentWorlds runs several independent worlds at once to
// shake out any accidental global state in the runtime.
func TestManyConcurrentWorlds(t *testing.T) {
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			errs <- Run(3, func(c *Comm) error {
				sum, err := c.AllreduceInt64([]int64{int64(w)}, OpSum)
				if err != nil {
					return err
				}
				if sum[0] != int64(3*w) {
					return fmt.Errorf("world %d sum %d", w, sum[0])
				}
				return c.Barrier()
			})
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterleavedTagsStress posts many sends with shuffled tags and
// receives them in a different order.
func TestInterleavedTagsStress(t *testing.T) {
	const msgs = 200
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			order := rand.New(rand.NewSource(7)).Perm(msgs)
			for _, tag := range order {
				if err := c.Send(1, tag, []byte{byte(tag), byte(tag >> 8)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive in strictly increasing tag order regardless of arrival.
		for tag := 0; tag < msgs; tag++ {
			data, _, _, err := c.Recv(0, tag)
			if err != nil {
				return err
			}
			if int(data[0])|int(data[1])<<8 != tag {
				return fmt.Errorf("tag %d payload mismatch", tag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fuzzSink accepts whatever the decoder delivers and recycles completed
// payloads, tracking pinned (chunk-pending) envelopes like a mailbox
// would so reassembly buffers are not recycled while still being written.
type fuzzSink struct {
	pinned []envelope
}

func (s *fuzzSink) put(e envelope) {
	if e.pend != nil {
		s.pinned = append(s.pinned, e)
		return
	}
	PutBuffer(e.data)
}

func (s *fuzzSink) complete(p *chunkPending) {
	for i, e := range s.pinned {
		if e.pend == p {
			PutBuffer(e.data)
			s.pinned = append(s.pinned[:i], s.pinned[i+1:]...)
			return
		}
	}
}

// removePending unpins a reassembly the decoder abandoned (duplicate
// stream replay or connection teardown); buffer handling matches complete.
func (s *fuzzSink) removePending(p *chunkPending) { s.complete(p) }

// FuzzTCPFrameDecoder feeds arbitrary bytes to the wire-protocol-v2
// decoder. The property is totality: any input either decodes into frames
// or fails with an error — never a panic, hang, or out-of-bounds write.
// Frame and stream limits are kept tiny so the fuzzer cannot make the
// decoder allocate gigabyte reassembly buffers.
func FuzzTCPFrameDecoder(f *testing.F) {
	// Seeds: a valid whole frame, a valid two-chunk stream, and truncated
	// and corrupted variants of each.
	msg := make([]byte, tcpFrameHeader+4)
	msg[0] = frameMsg
	msg[16] = 4 // len = 4, LE
	f.Add(msg)
	f.Add(msg[:tcpFrameHeader-3])
	chunk := make([]byte, tcpFrameHeader+tcpChunkExt+2)
	chunk[0] = frameChunk
	chunk[16] = 2                                       // frame len
	chunk[tcpFrameHeader] = 1                           // stream id
	chunk[tcpFrameHeader+8] = 4                         // total
	f.Add(append(append([]byte{}, chunk...), chunk...)) // complete stream
	f.Add(chunk)                                        // dangling stream
	bad := append([]byte{}, msg...)
	bad[0] = 0xff
	f.Add(bad)
	// Writer-faithful corpus: whole messages with real ctx/src/tag values,
	// a multi-chunk stream, and two streams interleaved with a message —
	// plus truncated and type-corrupted variants of each.
	for _, seed := range realV2Corpus() {
		f.Add(seed)
		f.Add(seed[:len(seed)-3])
		mut := append([]byte{}, seed...)
		mut[0] ^= 0x7
		f.Add(mut)
	}
	for _, seed := range realV3Corpus() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sink := &fuzzSink{}
		dec := newFrameDecoder(sink, 1<<16, 1<<20, 8)
		r := bytes.NewReader(data)
		for {
			if _, _, err := dec.readFrame(r); err != nil {
				break
			}
			if r.Len() == 0 {
				break
			}
		}
		dec.cleanup()
	})
}

// buildWireFrame encodes one frame exactly as the sending writer does,
// giving the fuzz corpus realistic on-the-wire bytes instead of
// hand-poked headers. stream/total are used for chunk types, seq for the
// v3 sequenced types.
func buildWireFrame(typ byte, ctx uint32, src, tag int, payload []byte, stream uint32, total uint64, seq uint64) []byte {
	ext := 0
	chunked := typ == frameChunk || typ == frameChunkSeq
	if chunked {
		ext += tcpChunkExt
	}
	if typ == frameMsgSeq || typ == frameChunkSeq {
		ext += tcpSeqExt
	}
	h := make([]byte, tcpFrameHeader+ext, tcpFrameHeader+ext+len(payload))
	h[0] = typ
	binary.LittleEndian.PutUint32(h[4:], ctx)
	binary.LittleEndian.PutUint32(h[8:], uint32(src))
	binary.LittleEndian.PutUint32(h[12:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(h[16:], uint32(len(payload)))
	if chunked {
		binary.LittleEndian.PutUint32(h[tcpFrameHeader:], stream)
		binary.LittleEndian.PutUint64(h[tcpFrameHeader+8:], total)
		if typ == frameChunkSeq {
			binary.LittleEndian.PutUint64(h[tcpFrameHeader+tcpChunkExt:], seq)
		}
	} else if typ == frameMsgSeq {
		binary.LittleEndian.PutUint64(h[tcpFrameHeader:], seq)
	}
	return append(h, payload...)
}

// realV2Corpus returns writer-faithful v2 byte streams: a whole message,
// a chunked message, and two chunk streams interleaved with a small
// message between their chunks — the shapes a real connection carries.
func realV2Corpus() [][]byte {
	msg := buildWireFrame(frameMsg, 1, 2, 7, []byte("hello-wire"), 0, 0, 0)
	neg := buildWireFrame(frameMsg, 1, 0, -5, []byte{9, 9}, 0, 0, 0)

	var chunked []byte
	payload := []byte("abcdefghijkl")
	for off := 0; off < len(payload); off += 4 {
		chunked = append(chunked, buildWireFrame(frameChunk, 1, 2, 7,
			payload[off:off+4], 3, uint64(len(payload)), 0)...)
	}

	var interleaved []byte
	interleaved = append(interleaved, buildWireFrame(frameChunk, 1, 2, 7, []byte("AAAA"), 10, 8, 0)...)
	interleaved = append(interleaved, buildWireFrame(frameChunk, 1, 2, 8, []byte("BBBB"), 11, 8, 0)...)
	interleaved = append(interleaved, msg...)
	interleaved = append(interleaved, buildWireFrame(frameChunk, 1, 2, 7, []byte("aaaa"), 10, 8, 0)...)
	interleaved = append(interleaved, buildWireFrame(frameChunk, 1, 2, 8, []byte("bbbb"), 11, 8, 0)...)

	return [][]byte{msg, neg, chunked, interleaved}
}

// realV3Corpus returns sequenced (v3) streams: sequenced messages, an
// in-stream duplicate, and a sequenced chunk stream followed by its full
// replay — the shape a post-reconnect retransmission produces.
func realV3Corpus() [][]byte {
	var msgs []byte
	msgs = append(msgs, buildWireFrame(frameMsgSeq, 1, 2, 7, []byte("one"), 0, 0, 1)...)
	msgs = append(msgs, buildWireFrame(frameMsgSeq, 1, 2, 7, []byte("two"), 0, 0, 2)...)
	msgs = append(msgs, buildWireFrame(frameMsgSeq, 1, 2, 7, []byte("one"), 0, 0, 1)...) // replay

	var stream []byte
	for rep := 0; rep < 2; rep++ { // original + full replay under a new stream id
		id := uint32(20 + rep)
		stream = append(stream, buildWireFrame(frameChunkSeq, 1, 2, 9, []byte("CCCC"), id, 8, 5)...)
		stream = append(stream, buildWireFrame(frameChunkSeq, 1, 2, 9, []byte("cccc"), id, 8, 5)...)
	}

	return [][]byte{msgs, stream, append(append([]byte{}, msgs...), stream...)}
}

// countingSink counts deliveries so the fuzz harness can detect
// duplicate delivery through the sequence-dedupe layer.
type countingSink struct {
	fuzzSink
	delivered int
}

func (s *countingSink) put(e envelope) {
	if e.pend == nil {
		s.delivered++
	}
	s.fuzzSink.put(e)
}

func (s *countingSink) complete(p *chunkPending) {
	s.delivered++
	s.fuzzSink.complete(p)
}

// FuzzTCPSeqFrameDecoder drives the v3 (sequence-numbered, retry-enabled)
// decoder path with a shared dedupe table across two decode passes of the
// same bytes — the exact shape of a post-reconnect retransmission. The
// properties: totality (no panic, hang, or out-of-bounds), and
// idempotency — when the first pass consumed the whole input cleanly, a
// full replay must not deliver any sequenced message again.
func FuzzTCPSeqFrameDecoder(f *testing.F) {
	for _, seed := range realV2Corpus() {
		f.Add(seed)
	}
	for _, seed := range realV3Corpus() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		ded := &seqDeduper{}
		decode := func() (clean bool, sink *countingSink, dups int) {
			sink = &countingSink{}
			dec := newFrameDecoder(sink, 1<<16, 1<<20, 8)
			dec.ded = ded
			dec.onDup = func() { dups++ }
			r := bytes.NewReader(data)
			for {
				if _, _, err := dec.readFrame(r); err != nil {
					dec.cleanup()
					return false, sink, dups
				}
				if r.Len() == 0 {
					dec.cleanup()
					return true, sink, dups
				}
			}
		}
		clean, first, _ := decode()
		_, second, _ := decode()
		if clean && countSeqMsgs(data) > 0 && second.delivered >= first.delivered && second.delivered > countUnsequenced(data) {
			t.Fatalf("replay delivered %d messages (first pass %d, unsequenced %d): sequence dedupe leaked",
				second.delivered, first.delivered, countUnsequenced(data))
		}
	})
}

// countSeqMsgs counts well-formed frameMsgSeq frames in a byte stream by
// re-walking it with a throwaway decoder (no dedupe attached).
func countSeqMsgs(data []byte) int {
	return countFrames(data, func(typ byte) bool { return typ == frameMsgSeq })
}

// countUnsequenced counts frames the dedupe layer does not cover: plain
// v2 messages and completed v2 chunk streams redeliver on replay by design.
func countUnsequenced(data []byte) int {
	return countFrames(data, func(typ byte) bool { return typ == frameMsg || typ == frameChunk })
}

func countFrames(data []byte, want func(byte) bool) int {
	sink := &fuzzSink{}
	dec := newFrameDecoder(sink, 1<<16, 1<<20, 8)
	r := bytes.NewReader(data)
	n := 0
	for {
		_, typ, err := dec.readFrame(r)
		if err != nil {
			break
		}
		if want(typ) {
			n++
		}
		if r.Len() == 0 {
			break
		}
	}
	dec.cleanup()
	return n
}
