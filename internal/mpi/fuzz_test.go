package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestCollectivesRandomized drives the collectives with randomized sizes
// and roots over the in-process transport: the property checked is that
// every rank observes exactly the bytes the semantics promise.
func TestCollectivesRandomized(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 1 + rng.Intn(9)
		root := rng.Intn(n)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = rng.Intn(5000)
		}
		payload := func(rank int) []byte {
			out := make([]byte, sizes[rank])
			for i := range out {
				out[i] = byte(rank*31 + i)
			}
			return out
		}
		err := Run(n, func(c *Comm) error {
			mine := payload(c.Rank())

			// Bcast: everyone must end with root's payload.
			got, err := c.Bcast(root, mine)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload(root)) {
				return fmt.Errorf("bcast mismatch on rank %d", c.Rank())
			}

			// Allgather: rank order preserved, bytes intact.
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			for r, p := range all {
				if !bytes.Equal(p, payload(r)) {
					return fmt.Errorf("allgather rank %d entry %d corrupt", c.Rank(), r)
				}
			}

			// Alltoallv with asymmetric sizes: recv[j] must be what j sent us.
			send := make([][]byte, n)
			for dst := range send {
				l := (c.Rank()*7 + dst*3) % 97
				send[dst] = bytes.Repeat([]byte{byte(c.Rank()<<4 | dst&0xF)}, l)
			}
			recv, err := c.Alltoallv(send)
			if err != nil {
				return err
			}
			for src, p := range recv {
				wantLen := (src*7 + c.Rank()*3) % 97
				if len(p) != wantLen {
					return fmt.Errorf("alltoallv from %d: %d bytes, want %d", src, len(p), wantLen)
				}
				for _, b := range p {
					if b != byte(src<<4|c.Rank()&0xF) {
						return fmt.Errorf("alltoallv from %d: corrupt byte", src)
					}
				}
			}

			// Scatterv: each rank gets its designated slice.
			var parts [][]byte
			if c.Rank() == root {
				parts = make([][]byte, n)
				for r := range parts {
					parts[r] = payload(r)
				}
			}
			sv, err := c.Scatterv(root, parts)
			if err != nil {
				return err
			}
			if !bytes.Equal(sv, mine) {
				return fmt.Errorf("scatterv mismatch on rank %d", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (n=%d root=%d): %v", trial, n, root, err)
		}
	}
}

// TestManyConcurrentWorlds runs several independent worlds at once to
// shake out any accidental global state in the runtime.
func TestManyConcurrentWorlds(t *testing.T) {
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			errs <- Run(3, func(c *Comm) error {
				sum, err := c.AllreduceInt64([]int64{int64(w)}, OpSum)
				if err != nil {
					return err
				}
				if sum[0] != int64(3*w) {
					return fmt.Errorf("world %d sum %d", w, sum[0])
				}
				return c.Barrier()
			})
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterleavedTagsStress posts many sends with shuffled tags and
// receives them in a different order.
func TestInterleavedTagsStress(t *testing.T) {
	const msgs = 200
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			order := rand.New(rand.NewSource(7)).Perm(msgs)
			for _, tag := range order {
				if err := c.Send(1, tag, []byte{byte(tag), byte(tag >> 8)}); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive in strictly increasing tag order regardless of arrival.
		for tag := 0; tag < msgs; tag++ {
			data, _, _, err := c.Recv(0, tag)
			if err != nil {
				return err
			}
			if int(data[0])|int(data[1])<<8 != tag {
				return fmt.Errorf("tag %d payload mismatch", tag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// fuzzSink accepts whatever the decoder delivers and recycles completed
// payloads, tracking pinned (chunk-pending) envelopes like a mailbox
// would so reassembly buffers are not recycled while still being written.
type fuzzSink struct {
	pinned []envelope
}

func (s *fuzzSink) put(e envelope) {
	if e.pend != nil {
		s.pinned = append(s.pinned, e)
		return
	}
	PutBuffer(e.data)
}

func (s *fuzzSink) complete(p *chunkPending) {
	for i, e := range s.pinned {
		if e.pend == p {
			PutBuffer(e.data)
			s.pinned = append(s.pinned[:i], s.pinned[i+1:]...)
			return
		}
	}
}

// FuzzTCPFrameDecoder feeds arbitrary bytes to the wire-protocol-v2
// decoder. The property is totality: any input either decodes into frames
// or fails with an error — never a panic, hang, or out-of-bounds write.
// Frame and stream limits are kept tiny so the fuzzer cannot make the
// decoder allocate gigabyte reassembly buffers.
func FuzzTCPFrameDecoder(f *testing.F) {
	// Seeds: a valid whole frame, a valid two-chunk stream, and truncated
	// and corrupted variants of each.
	msg := make([]byte, tcpFrameHeader+4)
	msg[0] = frameMsg
	msg[16] = 4 // len = 4, LE
	f.Add(msg)
	f.Add(msg[:tcpFrameHeader-3])
	chunk := make([]byte, tcpFrameHeader+tcpChunkExt+2)
	chunk[0] = frameChunk
	chunk[16] = 2                                       // frame len
	chunk[tcpFrameHeader] = 1                           // stream id
	chunk[tcpFrameHeader+8] = 4                         // total
	f.Add(append(append([]byte{}, chunk...), chunk...)) // complete stream
	f.Add(chunk)                                        // dangling stream
	bad := append([]byte{}, msg...)
	bad[0] = 0xff
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		sink := &fuzzSink{}
		dec := newFrameDecoder(sink, 1<<16, 1<<20, 8)
		r := bytes.NewReader(data)
		for {
			if _, _, err := dec.readFrame(r); err != nil {
				break
			}
			if r.Len() == 0 {
				break
			}
		}
	})
}
