package mpi

import (
	"encoding/binary"
	"testing"
)

// shmSeedRecord builds a well-formed record header for the fuzz corpus.
func shmSeedRecord(typ, flags byte, n int, payloadPad int) []byte {
	need := shmWordSize + shmRecHeader
	if typ == shmRecChunk {
		need += shmChunkExt
	}
	if flags&shmFlagTrace != 0 {
		need += shmTraceExt
	}
	b := make([]byte, need+payloadPad)
	binary.LittleEndian.PutUint64(b, uint64(uint32(n))|uint64(typ)<<32|uint64(flags)<<40)
	h := b[shmWordSize:]
	binary.LittleEndian.PutUint32(h, 42)         // ctx
	binary.LittleEndian.PutUint32(h[4:], 3)      // src
	binary.LittleEndian.PutUint32(h[8:], 7)      // tag
	binary.LittleEndian.PutUint64(h[16:], 1234)  // seq
	h = h[shmRecHeader:]
	if typ == shmRecChunk {
		binary.LittleEndian.PutUint32(h, 9)          // stream
		binary.LittleEndian.PutUint64(h[8:], 65536)  // total
		h = h[shmChunkExt:]
	}
	if flags&shmFlagTrace != 0 {
		binary.LittleEndian.PutUint64(h, 0xdeadbeef) // exchange
		binary.LittleEndian.PutUint32(h[8:], 2)      // round
		binary.LittleEndian.PutUint32(h[12:], 5)     // span
	}
	return b
}

// FuzzShmRingHeader throws arbitrary bytes at the ring-record decoder.
// The decoder guards the consumer against a corrupted shared region, so
// it must never panic, never report a payload that overruns the input,
// and never accept a record type or flag set it does not know.
func FuzzShmRingHeader(f *testing.F) {
	// Seed corpus: every valid shape, the wrap marker, and truncations.
	f.Add(shmSeedRecord(shmRecMsg, 0, 64, 64))
	f.Add(shmSeedRecord(shmRecMsg, shmFlagTrace, 16, 16))
	f.Add(shmSeedRecord(shmRecChunk, 0, 256, 256))
	f.Add(shmSeedRecord(shmRecChunk, shmFlagTrace, 0, 0))
	wrap := make([]byte, shmWordSize)
	binary.LittleEndian.PutUint64(wrap, shmWrapBit)
	f.Add(wrap)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(shmSeedRecord(shmRecMsg, 0, 1<<30, 0))  // payload overrun
	f.Add(shmSeedRecord(3, 0, 8, 8))              // unknown type
	f.Add(shmSeedRecord(shmRecMsg, 0x80, 8, 8))   // unknown flag
	f.Add(shmSeedRecord(shmRecChunk, 0, 8, 8)[:shmWordSize+shmRecHeader]) // truncated ext

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, wrap, err := decodeShmRecord(b)
		if err != nil {
			return // rejected input: nothing else to hold
		}
		if wrap {
			return // wrap markers carry no record
		}
		if rec.typ != shmRecMsg && rec.typ != shmRecChunk {
			t.Fatalf("accepted unknown record type %d", rec.typ)
		}
		if rec.flags&^shmFlagTrace != 0 {
			t.Fatalf("accepted unknown flags %#x", rec.flags)
		}
		if rec.n < 0 || rec.hdr < shmWordSize || rec.hdr+rec.n > len(b) {
			t.Fatalf("payload window [%d:%d) overruns %d-byte input", rec.hdr, rec.hdr+rec.n, len(b))
		}
		if rec.typ == shmRecChunk && (rec.total == 0 || rec.total > maxChunkTotal) {
			t.Fatalf("accepted chunk total %d out of range", rec.total)
		}
	})
}
