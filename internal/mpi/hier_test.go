package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestTopologyConstruction covers node densification, leader election,
// and fingerprint behaviour.
func TestTopologyConstruction(t *testing.T) {
	// Sparse, out-of-order node ids densify in first-appearance order.
	topo, err := NewTopology(6, func(rank int) int { return []int{7, 7, 2, 2, 9, 7}[rank] })
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 3 || topo.NumRanks() != 6 {
		t.Fatalf("topology %d nodes / %d ranks, want 3/6", topo.NumNodes(), topo.NumRanks())
	}
	wantNode := []int{0, 0, 1, 1, 2, 0}
	for rank, want := range wantNode {
		if topo.NodeOf(rank) != want {
			t.Errorf("NodeOf(%d) = %d, want %d", rank, topo.NodeOf(rank), want)
		}
	}
	if topo.Leader(0) != 0 || topo.Leader(1) != 2 || topo.Leader(2) != 4 {
		t.Errorf("leaders = %d,%d,%d", topo.Leader(0), topo.Leader(1), topo.Leader(2))
	}
	if !topo.IsLeader(0) || topo.IsLeader(1) {
		t.Error("leader predicate wrong")
	}
	if topo.Fingerprint() == 0 {
		t.Error("multi-node fingerprint is zero")
	}
	same, _ := NewTopology(6, func(rank int) int { return []int{1, 1, 4, 4, 5, 1}[rank] })
	if same.Fingerprint() != topo.Fingerprint() {
		t.Error("equivalent placements fingerprint differently")
	}
	other, _ := NewTopology(6, NodesOf(6, 2))
	if other.Fingerprint() == topo.Fingerprint() {
		t.Error("different placements share a fingerprint")
	}
	if (*Topology)(nil).Fingerprint() != 0 {
		t.Error("nil topology fingerprint not zero")
	}
	if _, err := NewTopology(3, nil); err == nil {
		t.Error("nil nodeOf accepted")
	}
}

// TestHierSmoke is the acceptance smoke: 2 nodes × 4 ranks drive a full
// all-to-all storm, every payload arrives intact, and the leader
// endpoint stats prove aggregation — each node's endpoint dials at most
// nodes-1 peers (O(nodes²) flows world-wide) even though all 8 ranks
// exchanged with all 7 others (O(P²) rank pairs), and only leaders
// carry relayed bytes.
func TestHierSmoke(t *testing.T) {
	const (
		ranks = 8
		nodes = 2
		msgs  = 10
		size  = 2048
	)
	err := RunHier(ranks, NodesOf(ranks, nodes), func(c *Comm) error {
		for i := 0; i < msgs; i++ {
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				if err := c.Send(peer, i, shmPattern(c.Rank(), i, peer, size)); err != nil {
					return err
				}
			}
		}
		for i := 0; i < msgs; i++ {
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				data, _, _, err := c.Recv(peer, i)
				if err != nil {
					return err
				}
				if !bytes.Equal(data, shmPattern(peer, i, c.Rank(), size)) {
					return fmt.Errorf("rank %d: corrupt payload from %d round %d", c.Rank(), peer, i)
				}
				PutBuffer(data)
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		ht, ok := c.tr.(*hierTransport)
		if !ok {
			return fmt.Errorf("transport is %T, want *hierTransport", c.tr)
		}
		if c.TransportName() != "hier" {
			return fmt.Errorf("TransportName = %q", c.TransportName())
		}
		// The O(nodes²) assertion: every leader endpoint dialed at most
		// nodes-1 peers, regardless of the O(P²) rank traffic it carried.
		for node, st := range ht.LeaderEndpointStats() {
			if st.PeerConnections > nodes-1 {
				return fmt.Errorf("node %d endpoint holds %d peer links, want <= %d",
					node, st.PeerConnections, nodes-1)
			}
			if st.WireOut == 0 {
				return fmt.Errorf("node %d leader endpoint carried no bytes", node)
			}
		}
		hs := ht.Stats()
		if c.Topology().IsLeader(c.Rank()) {
			if hs.RelayMsgsOut == 0 || hs.RelayMsgsIn == 0 {
				return fmt.Errorf("leader %d relayed nothing: %+v", c.Rank(), hs)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierLargeChunkedRelay pushes payloads above the shm chunk
// threshold across nodes, exercising chunked rings on both shm legs and
// chunked TCP frames on the leader hop.
func TestHierLargeChunkedRelay(t *testing.T) {
	const size = 2 << 20 // 2 MiB: chunked everywhere
	err := RunHier(4, NodesOf(4, 2), func(c *Comm) error {
		peer := (c.Rank() + 2) % 4 // always cross-node under NodesOf(4,2)
		if err := c.Send(peer, 1, shmPattern(c.Rank(), 1, 0, size)); err != nil {
			return err
		}
		data, _, _, err := c.Recv(peer, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(data, shmPattern(peer, 1, 0, size)) {
			return fmt.Errorf("rank %d: cross-node bulk payload corrupt", c.Rank())
		}
		PutBuffer(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierCollectivesAndSplit runs collectives and a communicator split
// over the hierarchical transport — derived communicators must keep the
// topology and keep working across node boundaries.
func TestHierCollectivesAndSplit(t *testing.T) {
	err := RunHier(6, NodesOf(6, 3), func(c *Comm) error {
		sum, err := c.AllreduceInt64([]int64{int64(c.Rank())}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 15 {
			return fmt.Errorf("allreduce sum = %d", sum[0])
		}
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Topology() == nil {
			return errors.New("split dropped the topology")
		}
		all, err := sub.Allgather([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if len(all) != 3 {
			return fmt.Errorf("split world size %d, want 3", len(all))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHierErrorPropagation checks a failing rank unblocks cross-node
// receivers instead of deadlocking the relay.
func TestHierErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	err := RunHier(4, NodesOf(4, 2), func(c *Comm) error {
		if c.Rank() == 3 {
			return boom
		}
		_, _, _, err := c.Recv(3, 0)
		return err
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}
