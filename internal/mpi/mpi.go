// Package mpi is a from-scratch message-passing runtime providing the
// subset of MPI semantics the DDR library depends on: communicators,
// tagged matched point-to-point messaging (blocking and non-blocking),
// and the collectives used by the paper (barrier, broadcast, gather,
// allgather, reduce, allreduce, alltoall, alltoallv, and alltoallw with
// sub-array datatypes).
//
// Ranks are goroutines. Two transports are provided: an in-process
// transport backed by per-rank mailboxes (Run) and a TCP transport that
// exchanges the same frames over real sockets (RunTCP), usable both over
// loopback and across machines. Message delivery is eager and buffered,
// so a Send never blocks on the matching Recv — the same progress
// guarantee a buffered MPI_Send provides.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ddr/internal/obs"
)

// Wildcards for Recv matching, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is reported by operations on a communicator whose world has
// been shut down.
var ErrClosed = errors.New("mpi: communicator closed")

// ErrPeerLost is wrapped by operations that fail because the remote rank
// is unreachable: its connection died and could not be re-established, a
// fault-injected link was severed, or delivery retries were exhausted.
// Match with errors.Is(err, mpi.ErrPeerLost).
var ErrPeerLost = errors.New("mpi: peer lost")

// ErrExchangeTimeout is wrapped by deadline-bounded operations (RecvCtx,
// SendCtx, Alltoallw with a Deadline) that ran out of time before the
// peer produced or accepted the message. Match with errors.Is.
var ErrExchangeTimeout = errors.New("mpi: exchange timeout")

// envelope is one in-flight message. src is a world (global) rank; ctx
// identifies the communicator (sub-communicators derived via Split get
// their own context so their traffic cannot be confused with the
// parent's).
type envelope struct {
	ctx  uint32
	src  int
	tag  int
	data []byte

	// seq is a per-(sender,receiver) link sequence number stamped by the
	// fault-injection layer (zero means unsequenced). Mailboxes discard a
	// second delivery of an already-seen sequence number, which is what
	// makes chaos-injected duplicates harmless.
	seq uint64

	// cancel, when non-nil, aborts a transport enqueue that would
	// otherwise block (TCP backpressure, a saturated fault-injection
	// link). It is the deadline hook SendCtx threads through.
	cancel <-chan struct{}

	// pend is non-nil while the payload is still being reassembled from
	// chunked transport frames. The envelope is inserted into the mailbox
	// when its first chunk arrives — pinning its matching position so a
	// later same-tag message cannot overtake it — but stays unmatchable
	// until the transport marks it ready.
	pend *chunkPending

	// done is non-nil for zero-copy sends: data is borrowed from the
	// caller, the writer must not recycle it, and it signals exactly one
	// error (nil on success) when the payload has been fully written and
	// ownership returns to the caller. Never set on mailbox envelopes.
	done chan<- error

	// tc is the distributed trace context stamped on messages sent while
	// an exchange is being traced (tc.Exchange == 0 means untraced). The
	// TCP transport carries it in an optional frame extension; frames of
	// untraced messages are byte-identical to the pre-tracing format.
	tc TraceContext
}

// TraceContext identifies the logical exchange a message belongs to:
// Exchange is the cluster-wide 64-bit exchange ID minted by
// core.ReorganizeData (0 = no context), Round the exchange round, and
// Span the sender-local span sequence within the exchange.
type TraceContext struct {
	Exchange uint64
	Round    uint32
	Span     uint32
}

// SetTraceContext installs tc as the context stamped on every subsequent
// send from this communicator until the next Set/ClearTraceContext. The
// caller is the exchange driver (one writer); readers are the send paths,
// which load it atomically.
func (c *Comm) SetTraceContext(tc TraceContext) {
	c.curTC.Store(&tc)
}

// ClearTraceContext removes the current trace context.
func (c *Comm) ClearTraceContext() {
	c.curTC.Store(nil)
}

// traceCtx returns the current trace context (zero when none is set).
func (c *Comm) traceCtx() TraceContext {
	if p := c.curTC.Load(); p != nil {
		return *p
	}
	return TraceContext{}
}

// chunkPending tracks the reassembly state of a chunk-streamed message.
// ready is guarded by the owning mailbox's mutex; the payload bytes are
// written by the transport's read loop alone until ready flips, so no
// consumer ever observes a partially filled buffer.
type chunkPending struct {
	ready bool
}

// matches reports whether the envelope satisfies a receive posted on
// communicator context ctx for (src, tag), honouring wildcards. Messages
// still being reassembled from chunks never match.
func (e *envelope) matches(ctx uint32, src, tag int) bool {
	if e.pend != nil && !e.pend.ready {
		return false
	}
	if e.ctx != ctx {
		return false
	}
	if src != AnySource && e.src != src {
		return false
	}
	if tag != AnyTag && e.tag != tag {
		return false
	}
	return true
}

// seqWindow remembers the most recent link sequence numbers delivered by
// one sender so duplicate deliveries (fault-injected or retransmitted)
// can be discarded. A fixed ring bounds memory; the window only needs to
// cover the transport's maximum duplication distance, which is a handful
// of messages.
type seqWindow struct {
	ring [128]uint64
	n    int
}

// seen reports whether seq was already recorded and records it if not.
func (w *seqWindow) seen(seq uint64) bool {
	for i := range w.ring {
		if w.ring[i] == seq {
			return true
		}
	}
	w.ring[w.n%len(w.ring)] = seq
	w.n++
	return false
}

// mailbox holds a rank's unmatched incoming messages. put never blocks;
// get blocks until a matching envelope arrives or the mailbox is closed.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope
	closed bool
	err    error
	depth  *obs.Gauge          // pending-message depth, nil unless telemetry attached
	lost   map[int]error       // world src -> why that peer is unreachable
	seen   map[int]*seqWindow  // world src -> dedupe window for sequenced envelopes
	lostC  *obs.Counter        // peers-lost counter, nil unless telemetry attached
	flight *obs.FlightRecorder // flight recorder, nil unless attached
	self   int                 // world rank owning this mailbox (flight attribution)
}

// setDepthGauge attaches (or detaches, with nil) the pending-message
// gauge. Taken under the mailbox lock so put/get read it safely.
func (m *mailbox) setDepthGauge(g *obs.Gauge) {
	m.mu.Lock()
	m.depth = g
	m.mu.Unlock()
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// lostCtx is the reserved communicator context for in-band peer-loss
// notifications: a control envelope the fault layer sends through the
// ordinary transport when it severs a link, so the loss notice arrives
// at the destination mailbox behind every message delivered before the
// sever. Like relayCtx, split-derived contexts never mint this value in
// any realistic session.
const lostCtx = ^uint32(0) - 1

// inbandLostError is a peer-loss notice reconstructed from an in-band
// control message; it preserves ErrPeerLost identity across the wire.
type inbandLostError struct{ msg string }

func (e *inbandLostError) Error() string { return e.msg }
func (e *inbandLostError) Unwrap() error { return ErrPeerLost }

func (m *mailbox) put(e envelope) {
	if e.ctx == lostCtx {
		err := &inbandLostError{msg: string(e.data)}
		PutBuffer(e.data)
		m.markLost(e.src, err)
		return
	}
	m.mu.Lock()
	if !m.closed {
		if e.seq != 0 {
			if m.seen == nil {
				m.seen = make(map[int]*seqWindow)
			}
			w := m.seen[e.src]
			if w == nil {
				w = &seqWindow{}
				m.seen[e.src] = w
			}
			if w.seen(e.seq) {
				// Duplicate delivery: every sequenced duplicate owns its
				// payload copy, so recycle it here.
				m.mu.Unlock()
				PutBuffer(e.data)
				return
			}
		}
		m.queue = append(m.queue, e)
		m.depth.Add(1)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// markLost records that the given world rank is unreachable and wakes any
// receiver blocked on it. Messages already queued from that rank remain
// deliverable; only a receive that would otherwise wait forever fails.
// The first loss with a flight recorder attached triggers the postmortem
// dump — this is the ErrPeerLost moment the recorder exists for.
func (m *mailbox) markLost(src int, err error) {
	m.mu.Lock()
	first := false
	if m.lost == nil {
		m.lost = make(map[int]error)
	}
	if _, dup := m.lost[src]; !dup {
		m.lost[src] = err
		m.lostC.Add(1)
		first = true
	}
	flight, self := m.flight, m.self
	m.mu.Unlock()
	m.cond.Broadcast()
	if first && flight != nil {
		flight.Record(obs.FlightEvent{Kind: obs.FlightPeerLost, Rank: int32(self), Peer: int32(src)})
		flight.DumpOnce(fmt.Sprintf("rank %d lost peer %d: %v", self, src, err))
	}
}

// setLostCounter attaches (or detaches, with nil) the peers-lost counter.
func (m *mailbox) setLostCounter(c *obs.Counter) {
	m.mu.Lock()
	m.lostC = c
	m.mu.Unlock()
}

// setFlight attaches (or detaches, with nil) the flight recorder, along
// with the world rank owning this mailbox for event attribution.
func (m *mailbox) setFlight(f *obs.FlightRecorder, self int) {
	m.mu.Lock()
	m.flight = f
	m.self = self
	m.mu.Unlock()
}

// removePending unlinks and recycles a still-reassembling envelope whose
// transport stream died before completion, so the pinned slot and its
// staging buffer are not leaked. Safe to call for envelopes that were
// never inserted (no-op).
func (m *mailbox) removePending(p *chunkPending) {
	m.mu.Lock()
	for i := range m.queue {
		if m.queue[i].pend == p {
			data := m.queue[i].data
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.depth.Add(-1)
			m.mu.Unlock()
			if data != nil {
				PutBuffer(data)
			}
			return
		}
	}
	m.mu.Unlock()
}

// get blocks until a matching envelope arrives, the mailbox closes, the
// specific source rank is marked lost, or cancel (optional, may be nil)
// fires. Waiting on AnySource is never failed by a lost peer — other
// senders may still deliver.
// get blocks until an envelope matching (ctx, src, tag) is available.
// group and self describe the communicator the receive runs on (world
// ranks): a wildcard receive fails once every peer in group except self
// is marked lost, instead of waiting for a message that can never come.
func (m *mailbox) get(cancel <-chan struct{}, ctx uint32, src, tag int, group []int, self int) (envelope, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var stopWatch chan struct{}
	defer func() {
		if stopWatch != nil {
			close(stopWatch)
		}
	}()
	for {
		for i := range m.queue {
			if m.queue[i].matches(ctx, src, tag) {
				e := m.queue[i]
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				m.depth.Add(-1)
				return e, nil
			}
		}
		if m.closed {
			err := m.err
			if err == nil {
				err = ErrClosed
			}
			return envelope{}, err
		}
		if src != AnySource {
			if lerr, isLost := m.lost[src]; isLost {
				return envelope{}, lerr
			}
		} else if len(m.lost) > 0 && len(group) > 0 {
			var lerr error
			for _, w := range group {
				if w == self {
					continue
				}
				e, isLost := m.lost[w]
				if !isLost {
					lerr = nil
					break
				}
				lerr = e
			}
			if lerr != nil {
				return envelope{}, lerr
			}
		}
		if cancel != nil {
			select {
			case <-cancel:
				return envelope{}, ErrExchangeTimeout
			default:
			}
			if stopWatch == nil {
				// A watcher turns the cancellation signal into a Broadcast.
				// The Lock/Unlock pair means the Broadcast cannot fire in
				// the gap between this goroutine's check above and its
				// cond.Wait below (it holds m.mu throughout), so no wakeup
				// is ever missed.
				stopWatch = make(chan struct{})
				go func(stop <-chan struct{}) {
					select {
					case <-cancel:
						m.mu.Lock()
						//lint:ignore SA2001 empty critical section orders the Broadcast after the waiter parks
						m.mu.Unlock()
						m.cond.Broadcast()
					case <-stop:
					}
				}(stopWatch)
			}
		}
		m.cond.Wait()
	}
}

// peek blocks until a matching envelope is available and returns its
// metadata without consuming it. When wait is false it returns ok=false
// immediately if nothing matches.
func (m *mailbox) peek(ctx uint32, src, tag int, wait bool) (gotSrc, gotTag, size int, ok bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.queue {
			if m.queue[i].matches(ctx, src, tag) {
				e := &m.queue[i]
				return e.src, e.tag, len(e.data), true, nil
			}
		}
		if m.closed {
			err := m.err
			if err == nil {
				err = ErrClosed
			}
			return 0, 0, 0, false, err
		}
		if src != AnySource {
			if lerr, isLost := m.lost[src]; isLost {
				return 0, 0, 0, false, lerr
			}
		}
		if !wait {
			return 0, 0, 0, false, nil
		}
		m.cond.Wait()
	}
}

// complete marks a chunk-reassembled envelope as matchable and wakes
// receivers blocked on it.
func (m *mailbox) complete(p *chunkPending) {
	m.mu.Lock()
	p.ready = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) close(err error) {
	m.mu.Lock()
	m.closed = true
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// transport moves envelopes between world ranks. Implementations must be
// safe for concurrent Sends and must preserve per-(sender,receiver) order.
type transport interface {
	send(dst int, e envelope) error
	close() error
}

// zeroCopySender is an optional transport capability: send a payload
// without the eager staging copy, blocking until the transport no longer
// needs the caller's buffer. sendZeroCopy returns handled=false when the
// payload does not qualify (too small, feature disabled) and the caller
// must fall back to the eager-copy path.
type zeroCopySender interface {
	sendZeroCopy(dst int, e envelope) (handled bool, err error)
}

// Comm is a communicator: a group of ranks that can exchange point-to-
// point messages and participate in collectives. The zero value is not
// usable; communicators are obtained from Run, RunTCP, or Comm.Split.
type Comm struct {
	rank  int   // rank within this communicator
	group []int // communicator rank -> world rank
	ctx   uint32

	world *Comm // root communicator (self for the world)
	tr    transport
	box   *mailbox

	collSeq  int // per-rank collective sequence number
	splitSeq int // per-rank Split sequence number

	counters *traffic   // shared across communicators derived from one rank
	tel      *Telemetry // shared observability hooks, nil unless attached
	topo     *Topology  // node placement, nil unless launched WithTopology

	// curTC is the trace context stamped on sends while an exchange is in
	// flight on this communicator (nil = untraced). One writer (the
	// exchange driver), read atomically by the send paths.
	curTC atomic.Pointer[TraceContext]
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the world (root communicator) rank of the given rank
// in this communicator.
func (c *Comm) WorldRank(rank int) int { return c.group[rank] }

// Topology returns the node placement the world was launched with, or
// nil for a flat (single-node) world. Derived communicators inherit it.
func (c *Comm) Topology() *Topology { return c.topo }

// TransportName identifies the transport carrying this communicator's
// traffic ("inproc", "tcp", "shm", or "hier"), unwrapping the fault-
// injection layer. Plan caches and the pack autotuner key on it.
func (c *Comm) TransportName() string {
	tr := c.tr
	if ft, ok := tr.(*faultTransport); ok {
		tr = ft.raw
	}
	switch tr.(type) {
	case *tcpTransport:
		return "tcp"
	case *shmTransport:
		return "shm"
	case *hierTransport:
		return "hier"
	default:
		return "inproc"
	}
}

func (c *Comm) checkRank(rank int) error {
	if rank < 0 || rank >= len(c.group) {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, len(c.group))
	}
	return nil
}

// Send delivers data to dst with the given tag. The tag must be
// non-negative (negative tags are reserved for collectives). The caller
// may reuse the buffer as soon as Send returns: small messages are copied
// eagerly, while large messages on a zero-copy transport are streamed
// directly from the caller's buffer with Send blocking until the payload
// is on the wire.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	return c.sendInternal(dst, tag, data)
}

// sendInternal performs the delivery without the user-tag restriction.
// Small messages are copied eagerly into a staging-arena buffer whose
// ownership passes to the receiver (which may recycle it with PutBuffer
// once unpacked). Large messages on a transport with zero-copy support
// skip the copy: the transport streams straight from the caller's buffer
// and sendInternal blocks until it is reusable. Either way the caller may
// touch data again the moment this returns.
func (c *Comm) sendInternal(dst, tag int, data []byte) error {
	dstWorld := c.group[dst]
	tc := c.traceCtx()
	t := c.tel
	var start time.Time
	if t != nil {
		start = time.Now()
		if t.flight != nil {
			t.flight.Record(obs.FlightEvent{
				Kind: obs.FlightSend, Rank: int32(c.group[c.rank]), Peer: int32(dstWorld),
				Tag: int32(tag), Round: int32(tc.Round), Exchange: tc.Exchange, Bytes: int64(len(data)),
			})
		}
	}
	if zc, ok := c.tr.(zeroCopySender); ok {
		if handled, err := zc.sendZeroCopy(dstWorld, envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: data, tc: tc}); handled {
			c.counters.countSend(dstWorld, len(data))
			if t != nil {
				t.sendLatency.ObserveSince(start)
				t.wireSent.Add(int64(len(data)))
			}
			return err
		}
	}
	cp := GetBuffer(len(data))
	copy(cp, data)
	c.counters.countSend(dstWorld, len(cp))
	if t == nil {
		return c.tr.send(dstWorld, envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: cp, tc: tc})
	}
	err := c.tr.send(dstWorld, envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: cp, tc: tc})
	t.sendLatency.ObserveSince(start)
	t.wireSent.Add(int64(len(cp)))
	return err
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload along with the sender's communicator rank and tag. src may be
// AnySource and tag may be AnyTag. If the specific source rank becomes
// unreachable while waiting, Recv fails with an error wrapping
// ErrPeerLost instead of hanging.
func (c *Comm) Recv(src, tag int) (data []byte, from, gotTag int, err error) {
	return c.recvInternal(nil, src, tag)
}

// RecvCtx is Recv bounded by a context: when ctx is cancelled or its
// deadline expires before a matching message arrives, it returns an
// error wrapping ErrExchangeTimeout (and ctx.Err() is available via the
// context). No message is consumed on the timeout path.
func (c *Comm) RecvCtx(ctx context.Context, src, tag int) (data []byte, from, gotTag int, err error) {
	if ctx == nil {
		return c.recvInternal(nil, src, tag)
	}
	return c.recvInternal(ctx.Done(), src, tag)
}

func (c *Comm) recvInternal(cancel <-chan struct{}, src, tag int) (data []byte, from, gotTag int, err error) {
	worldSrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return nil, 0, 0, err
		}
		worldSrc = c.group[src]
	}
	t := c.tel
	var start time.Time
	if t != nil {
		start = time.Now()
	}
	e, err := c.box.get(cancel, c.ctx, worldSrc, tag, c.group, c.group[c.rank])
	if err != nil {
		if errors.Is(err, ErrExchangeTimeout) {
			err = fmt.Errorf("mpi: recv from rank %d tag %d: %w", src, tag, ErrExchangeTimeout)
		}
		return nil, 0, 0, err
	}
	c.counters.countRecv(e.src, len(e.data))
	if t != nil {
		t.recvLatency.ObserveSince(start)
		t.wireRecv.Add(int64(len(e.data)))
		if t.flight != nil {
			t.flight.Record(obs.FlightEvent{
				Kind: obs.FlightRecv, Rank: int32(c.group[c.rank]), Peer: int32(e.src),
				Tag: int32(e.tag), Round: int32(e.tc.Round), Seq: e.seq,
				Exchange: e.tc.Exchange, Bytes: int64(len(e.data)),
			})
		}
	}
	return e.data, c.localRank(e.src), e.tag, nil
}

// SendCtx is Send bounded by a context: if the transport's outbound queue
// to dst stays saturated past the deadline the call fails with an error
// wrapping ErrExchangeTimeout instead of blocking. It always takes the
// eager-copy path (never zero-copy), so the caller's buffer is reusable
// immediately regardless of outcome.
func (c *Comm) SendCtx(ctx context.Context, dst, tag int, data []byte) error {
	if err := c.checkRank(dst); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: negative tag %d is reserved", tag)
	}
	var cancel <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("mpi: send to rank %d tag %d: %w", dst, tag, ErrExchangeTimeout)
		}
		cancel = ctx.Done()
	}
	dstWorld := c.group[dst]
	cp := GetBuffer(len(data))
	copy(cp, data)
	c.counters.countSend(dstWorld, len(cp))
	err := c.tr.send(dstWorld, envelope{ctx: c.ctx, src: c.group[c.rank], tag: tag, data: cp, cancel: cancel, tc: c.traceCtx()})
	if err != nil && errors.Is(err, ErrExchangeTimeout) {
		err = fmt.Errorf("mpi: send to rank %d tag %d: %w", dst, tag, ErrExchangeTimeout)
	}
	return err
}

// Probe blocks until a message matching (src, tag) is available and
// returns its origin, tag, and payload size without consuming it — the
// analogue of MPI_Probe, used to size receive buffers or dispatch on
// message identity before a Recv.
func (c *Comm) Probe(src, tag int) (from, gotTag, size int, err error) {
	worldSrc, err := c.resolveSrc(src)
	if err != nil {
		return 0, 0, 0, err
	}
	s, tg, n, _, err := c.box.peek(c.ctx, worldSrc, tag, true)
	if err != nil {
		return 0, 0, 0, err
	}
	return c.localRank(s), tg, n, nil
}

// Iprobe is the non-blocking Probe: ok reports whether a matching message
// is currently available (MPI_Iprobe).
func (c *Comm) Iprobe(src, tag int) (from, gotTag, size int, ok bool, err error) {
	worldSrc, err := c.resolveSrc(src)
	if err != nil {
		return 0, 0, 0, false, err
	}
	s, tg, n, ok, err := c.box.peek(c.ctx, worldSrc, tag, false)
	if err != nil || !ok {
		return 0, 0, 0, ok, err
	}
	return c.localRank(s), tg, n, true, nil
}

// resolveSrc maps a communicator-relative source (or AnySource) to a
// world rank for mailbox matching.
func (c *Comm) resolveSrc(src int) (int, error) {
	if src == AnySource {
		return AnySource, nil
	}
	if err := c.checkRank(src); err != nil {
		return 0, err
	}
	return c.group[src], nil
}

// localRank translates a world rank into this communicator's numbering.
func (c *Comm) localRank(worldRank int) int {
	for i, g := range c.group {
		if g == worldRank {
			return i
		}
	}
	return -1
}

// identityGroup returns [0,1,...,n).
func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// inprocWorld is the channel-free shared-memory transport: sending is an
// append to the destination mailbox.
type inprocWorld struct {
	boxes []*mailbox
}

type inprocTransport struct {
	w *inprocWorld
}

func (t *inprocTransport) send(dst int, e envelope) error {
	if dst < 0 || dst >= len(t.w.boxes) {
		return fmt.Errorf("mpi: world rank %d out of range", dst)
	}
	t.w.boxes[dst].put(e)
	return nil
}

func (t *inprocTransport) close() error { return nil }

// Run executes body on n in-process ranks.
//
// Deprecated: use Launch(n, body).
func Run(n int, body func(c *Comm) error) error {
	return Launch(n, body)
}

// RunChaos is Run with an explicit fault injector.
//
// Deprecated: use Launch(n, body, WithFaultInjector(inj)).
func RunChaos(n int, inj FaultInjector, body func(c *Comm) error) error {
	return Launch(n, body, WithFaultInjector(inj))
}

// launchInProc runs body on n in-process ranks (one goroutine per rank)
// and blocks until all return; see Launch for the contract. Each rank's
// transport is wrapped with inj when non-nil.
func launchInProc(n int, inj FaultInjector, body func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	w := &inprocWorld{boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	trs := make([]transport, n)
	for rank := 0; rank < n; rank++ {
		var tr transport = &inprocTransport{w: w}
		if inj != nil {
			tr = newFaultTransport(tr, inj, rank, func(dst, src int, err error) {
				if dst >= 0 && dst < len(w.boxes) {
					w.boxes[dst].markLost(src, err)
				}
			})
		}
		trs[rank] = tr
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{
				rank:     rank,
				group:    identityGroup(n),
				tr:       trs[rank],
				box:      w.boxes[rank],
				counters: newTraffic(n),
			}
			c.world = c
			if err := body(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				// Unblock everyone so surviving ranks do not hang forever.
				for _, b := range w.boxes {
					b.close(fmt.Errorf("mpi: rank %d failed: %w", rank, err))
				}
			}
		}(rank)
	}
	wg.Wait()
	for _, tr := range trs {
		tr.close()
	}
	for _, b := range w.boxes {
		b.close(nil)
	}
	return errors.Join(errs...)
}
