package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"ddr/internal/trace"
)

// Distributed trace assembly. After an exchange (or a whole run), every
// rank calls GatherTrace collectively: rank 0 first estimates each peer's
// clock offset with a short ping-pong exchange against the recorders'
// own timebases, then gathers every rank's span summaries over the
// ordinary Gather collective and shifts them into its own timebase. The
// result is one merged timeline whose cross-rank orderings are honest to
// within the measured round-trip noise.

// traceSyncRounds is the number of ping-pong iterations per peer; the
// offset from the minimum-RTT iteration wins (NTP's classic filter — the
// fastest exchange is the one least polluted by queueing).
const traceSyncRounds = 4

// MergedTrace is the rank-0 result of GatherTrace.
type MergedTrace struct {
	// Events holds every rank's spans, with Start shifted into rank 0's
	// timebase. Unsorted; renderers sort.
	Events []trace.Event
	// Offsets[r] estimates rank r's recorder clock minus rank 0's at
	// gather time (Offsets[0] is 0).
	Offsets []time.Duration
	// RTTs[r] is the minimum observed ping-pong round trip against rank
	// r — the uncertainty bound on Offsets[r].
	RTTs []time.Duration
}

// GatherTrace assembles the world's merged timeline at rank 0. Collective
// over c: every rank must call it with its own recorder (recorders may be
// shared between ranks in in-process worlds; each rank contributes only
// the events carrying its world rank, so nothing is double-counted).
// Returns the merged trace at rank 0 and nil elsewhere. A nil recorder
// participates in the sync and contributes no events.
func GatherTrace(c *Comm, rec *trace.Recorder) (*MergedTrace, error) {
	n := c.Size()
	rank := c.Rank()
	tag := c.nextCollTag()

	var merged *MergedTrace
	if rank == 0 {
		merged = &MergedTrace{
			Offsets: make([]time.Duration, n),
			RTTs:    make([]time.Duration, n),
		}
	}

	// Phase 1: clock offsets, rank 0 against each peer in rank order. All
	// other ranks idle through the iterations that are not theirs; the
	// pairwise messages are matched by (src, tag) so no cross-talk is
	// possible on the shared collective tag.
	var pong [8]byte
	for r := 1; r < n; r++ {
		switch rank {
		case 0:
			best := time.Duration(1<<63 - 1)
			var off time.Duration
			for k := 0; k < traceSyncRounds; k++ {
				t0 := rec.Now()
				if err := c.sendInternal(r, tag, nil); err != nil {
					return nil, fmt.Errorf("mpi: trace sync ping to rank %d: %w", r, err)
				}
				data, _, _, err := c.recvInternal(nil, r, tag)
				if err != nil {
					return nil, fmt.Errorf("mpi: trace sync pong from rank %d: %w", r, err)
				}
				t1 := rec.Now()
				if len(data) != 8 {
					return nil, fmt.Errorf("mpi: trace sync pong from rank %d: %d bytes", r, len(data))
				}
				theirs := time.Duration(binary.LittleEndian.Uint64(data))
				PutBuffer(data)
				if rtt := t1 - t0; rtt < best {
					best = rtt
					// Their clock read happened, on average, at our midpoint.
					off = theirs - (t0 + (t1-t0)/2)
				}
			}
			merged.Offsets[r] = off
			merged.RTTs[r] = best
		case r:
			for k := 0; k < traceSyncRounds; k++ {
				data, _, _, err := c.recvInternal(nil, 0, tag)
				if err != nil {
					return nil, fmt.Errorf("mpi: trace sync ping from rank 0: %w", err)
				}
				PutBuffer(data)
				binary.LittleEndian.PutUint64(pong[:], uint64(rec.Now()))
				if err := c.sendInternal(0, tag, pong[:]); err != nil {
					return nil, fmt.Errorf("mpi: trace sync pong to rank 0: %w", err)
				}
			}
		}
	}

	// Phase 2: gather span summaries. Each rank ships only the events
	// attributed to its own world rank — with a shared in-process recorder
	// every rank sees everyone's events, and this filter is what keeps the
	// merge duplicate-free.
	self := c.WorldRank(rank)
	var mine []trace.Event
	if rec != nil {
		for _, e := range rec.Events() {
			if e.Rank == self {
				mine = append(mine, e)
			}
		}
	}
	gathered, err := c.Gather(0, trace.EncodeEvents(mine))
	if err != nil {
		return nil, fmt.Errorf("mpi: trace gather: %w", err)
	}
	if rank != 0 {
		return nil, nil
	}
	for r, buf := range gathered {
		events, err := trace.DecodeEvents(buf)
		if err != nil {
			return nil, fmt.Errorf("mpi: trace gather from rank %d: %w", r, err)
		}
		off := merged.Offsets[r]
		for _, e := range events {
			e.Start -= off // their timebase minus their lead = ours
			merged.Events = append(merged.Events, e)
		}
	}
	return merged, nil
}
