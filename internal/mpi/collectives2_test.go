package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestScatterv(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			parts = make([][]byte, 4)
			for r := range parts {
				parts[r] = bytes.Repeat([]byte{byte(r + 1)}, r+1)
			}
		}
		got, err := c.Scatterv(1, parts)
		if err != nil {
			return err
		}
		want := bytes.Repeat([]byte{byte(c.Rank() + 1)}, c.Rank()+1)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestScattervValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatterv(0, [][]byte{{1}}); err == nil {
				return errors.New("short parts accepted")
			}
			// Unblock rank 1, which posted a receive for the scatter.
			return c.sendInternal(1, -3, nil)
		}
		_, err := c.Scatterv(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(1, func(c *Comm) error {
		if _, err := c.Scatterv(7, nil); err == nil {
			return errors.New("bad root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceFloat64(t *testing.T) {
	forEachTransport(t, 5, func(c *Comm) error {
		r := float64(c.Rank())
		got, err := c.ReduceFloat64(2, []float64{r, -r}, OpSum)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if got != nil {
				return errors.New("non-root received a reduction")
			}
			return nil
		}
		if got[0] != 10 || got[1] != -10 {
			return fmt.Errorf("sum = %v", got)
		}
		return nil
	})
}

func TestSendrecvRingShift(t *testing.T) {
	forEachTransport(t, 5, func(c *Comm) error {
		n := c.Size()
		dst := (c.Rank() + 1) % n
		src := (c.Rank() - 1 + n) % n
		got, err := c.Sendrecv(dst, src, 4, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if int(got[0]) != src {
			return fmt.Errorf("rank %d received %d, want %d", c.Rank(), got[0], src)
		}
		return nil
	})
}

func TestSendrecvSelf(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		got, err := c.Sendrecv(0, 0, 9, []byte("self"))
		if err != nil {
			return err
		}
		if string(got) != "self" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Size() != c.Size() || dup.Rank() != c.Rank() {
			return fmt.Errorf("dup group mismatch: %d/%d", dup.Rank(), dup.Size())
		}
		// Same-tag messages on parent and dup must not cross.
		if c.Rank() == 0 {
			if err := dup.Send(1, 5, []byte("dup")); err != nil {
				return err
			}
			return c.Send(1, 5, []byte("parent"))
		}
		parentMsg, _, _, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		dupMsg, _, _, err := dup.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(parentMsg) != "parent" || string(dupMsg) != "dup" {
			return fmt.Errorf("crossed: %q / %q", parentMsg, dupMsg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
