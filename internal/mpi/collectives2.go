package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Scatterv distributes parts[i] from root to rank i and returns the part
// received by the calling rank (the inverse of Gather). Only root's parts
// argument is consulted; other ranks may pass nil.
func (c *Comm) Scatterv(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(parts) != len(c.group) {
			return nil, fmt.Errorf("mpi: scatterv has %d parts for %d ranks", len(parts), len(c.group))
		}
		for r := range c.group {
			if r == root {
				continue
			}
			if err := c.sendInternal(r, tag, parts[r]); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	data, _, _, err := c.Recv(root, tag)
	return data, err
}

// ReduceFloat64 reduces vals elementwise onto root. Root receives the
// reduction; other ranks receive nil. All ranks must pass equal lengths.
func (c *Comm) ReduceFloat64(root int, vals []float64, op ReduceOp) ([]float64, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	parts, err := c.Gather(root, buf)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	acc := make([]float64, len(vals))
	copy(acc, vals)
	for r, p := range parts {
		if r == root {
			continue
		}
		if len(p) != len(buf) {
			return nil, fmt.Errorf("mpi: reduce length mismatch from rank %d", r)
		}
		for i := range acc {
			v := math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
			switch op {
			case OpSum:
				acc[i] += v
			case OpMin:
				acc[i] = math.Min(acc[i], v)
			case OpMax:
				acc[i] = math.Max(acc[i], v)
			default:
				return nil, fmt.Errorf("mpi: unsupported reduce op %v", op)
			}
		}
	}
	return acc, nil
}

// Sendrecv performs a combined send to dst and receive from src on the
// same tag, the deadlock-free shift primitive (MPI_Sendrecv). src and dst
// may be the same rank or differ (e.g. a ring shift).
func (c *Comm) Sendrecv(dst, src, tag int, data []byte) ([]byte, error) {
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	req := c.Isend(dst, tag, data)
	got, _, _, err := c.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	if _, _, _, serr := req.Wait(); serr != nil {
		return nil, serr
	}
	return got, nil
}

// Dup returns a communicator with the same group but an isolated message
// context (MPI_Comm_dup), so libraries layered over the same ranks cannot
// intercept each other's traffic. It is a collective call.
func (c *Comm) Dup() (*Comm, error) {
	return c.Split(0, c.rank)
}
