package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestProbeThenRecv(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 9, []byte("hello"))
		}
		from, tag, size, err := c.Probe(0, 9)
		if err != nil {
			return err
		}
		if from != 0 || tag != 9 || size != 5 {
			return fmt.Errorf("probe = %d/%d/%d", from, tag, size)
		}
		// Probing does not consume: the message must still be receivable,
		// and probing again must see the same message.
		from2, _, size2, err := c.Probe(AnySource, AnyTag)
		if err != nil {
			return err
		}
		if from2 != 0 || size2 != 5 {
			return fmt.Errorf("second probe = %d/%d", from2, size2)
		}
		data, _, _, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("recv %q", data)
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Nothing has been sent to rank 0 on tag 3 yet.
			_, _, _, ok, err := c.Iprobe(1, 3)
			if err != nil {
				return err
			}
			if ok {
				return errors.New("Iprobe saw a phantom message")
			}
			if err := c.Send(1, 4, nil); err != nil { // release rank 1
				return err
			}
			// Wait for the real message to arrive.
			for {
				_, _, size, ok, err := c.Iprobe(1, 3)
				if err != nil {
					return err
				}
				if ok {
					if size != 2 {
						return fmt.Errorf("size %d", size)
					}
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			_, _, _, rerr := c.Recv(1, 3)
			return rerr
		}
		if _, _, _, err := c.Recv(0, 4); err != nil {
			return err
		}
		return c.Send(0, 3, []byte{1, 2})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if _, _, _, err := c.Probe(5, 0); err == nil {
			return errors.New("bad source accepted")
		}
		if _, _, _, _, err := c.Iprobe(-7, 0); err == nil {
			return errors.New("bad Iprobe source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
