package mpi

import (
	"errors"
	"fmt"
	"testing"

	"ddr/internal/datatype"
	"ddr/internal/grid"
)

func TestSplitGroupsAndRanks(t *testing.T) {
	forEachTransport(t, 6, func(c *Comm) error {
		// Evens and odds, ordered by descending parent rank via negative key.
		sub, err := c.Split(c.Rank()%2, -c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Keys are -rank, so the highest parent rank becomes sub rank 0.
		wantRank := map[int]int{4: 0, 2: 1, 0: 2, 5: 0, 3: 1, 1: 2}[c.Rank()]
		if sub.Rank() != wantRank {
			return fmt.Errorf("parent %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The sub-communicator must work for collectives.
		sum, err := sub.AllreduceInt64([]int64{int64(c.Rank())}, OpSum)
		if err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum[0] != want {
			return fmt.Errorf("group sum %d, want %d", sum[0], want)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("undefined color returned a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d, want 3", sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitContextIsolation(t *testing.T) {
	// A message sent on the parent with tag T must not be received by a
	// Recv on the child with the same tag, even between the same ranks.
	err := Run(2, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 42, []byte("parent")); err != nil {
				return err
			}
			return sub.Send(1, 42, []byte("child"))
		}
		childMsg, _, _, err := sub.Recv(0, 42)
		if err != nil {
			return err
		}
		if string(childMsg) != "child" {
			return fmt.Errorf("child comm received %q", childMsg)
		}
		parentMsg, _, _, err := c.Recv(0, 42)
		if err != nil {
			return err
		}
		if string(parentMsg) != "parent" {
			return fmt.Errorf("parent comm received %q", parentMsg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTranslatesWorldRanks(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		sub, err := c.Split(c.Rank()/2, 0)
		if err != nil {
			return err
		}
		// Group {0,1} and group {2,3}; sub rank i maps to world rank.
		want := (c.Rank()/2)*2 + sub.Rank()
		if sub.WorldRank(sub.Rank()) != want {
			return fmt.Errorf("world rank %d, want %d", sub.WorldRank(sub.Rank()), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAlltoallwE1 drives Alltoallw directly with the paper's E1 geometry:
// four ranks each own rows y=rank and y=rank+4 of an 8x8 byte array and
// need their quadrant. Here we exchange the first chunk (row y=rank) only,
// which populates the top or bottom half of each quadrant.
func TestAlltoallwE1(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		const w, h = 8, 8
		rank := c.Rank()
		chunk := grid.Box2(0, rank, w, 1)
		sendBuf := make([]byte, w)
		for x := 0; x < w; x++ {
			sendBuf[x] = byte(rank*w + x) // value encodes (y*w + x)
		}
		need := grid.Box2(4*(rank%2), 4*(rank/2), 4, 4)
		recvBuf := make([]byte, need.Volume())

		sendTypes := make([]datatype.Type, 4)
		recvTypes := make([]datatype.Type, 4)
		for peer := 0; peer < 4; peer++ {
			peerNeed := grid.Box2(4*(peer%2), 4*(peer/2), 4, 4)
			if ov, ok := chunk.Intersect(peerNeed); ok {
				st, err := datatype.NewSubarray(1, chunk, ov)
				if err != nil {
					return err
				}
				sendTypes[peer] = st
			} else {
				sendTypes[peer] = datatype.Empty{}
			}
			peerChunk := grid.Box2(0, peer, w, 1)
			if ov, ok := peerChunk.Intersect(need); ok {
				rt, err := datatype.NewSubarray(1, need, ov)
				if err != nil {
					return err
				}
				recvTypes[peer] = rt
			} else {
				recvTypes[peer] = datatype.Empty{}
			}
		}
		if err := c.Alltoallw(sendBuf, sendTypes, recvBuf, recvTypes); err != nil {
			return err
		}
		// Rows y in [0,4) live in quadrants 0/1; each rank received the row
		// of its quadrant that some rank owned as chunk 0 (y = 0..3).
		for y := 0; y < 4; y++ {
			gy := need.Offset[1] + y
			if gy >= 4 {
				continue // provided by the second chunk, not exchanged here
			}
			for x := 0; x < 4; x++ {
				gx := need.Offset[0] + x
				want := byte(gy*w + gx)
				if got := recvBuf[y*4+x]; got != want {
					return fmt.Errorf("rank %d element (%d,%d) = %d, want %d", rank, gx, gy, got, want)
				}
			}
		}
		return nil
	})
}

func TestAlltoallwSizeMismatchDetected(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		send := []datatype.Type{datatype.Empty{}, datatype.Empty{}}
		recv := []datatype.Type{datatype.Empty{}, datatype.Empty{}}
		if c.Rank() == 0 {
			send[0] = datatype.Contiguous{Bytes: 4} // self exchange 4 -> 0
		}
		err := c.Alltoallw(make([]byte, 8), send, make([]byte, 8), recv)
		if c.Rank() == 0 && err == nil {
			return errors.New("self size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
