// Staging-buffer arena: a process-wide, size-classed sync.Pool of wire
// buffers shared by the exchange hot paths. Repeated redistributions on a
// fixed plan reach a steady state in which every pack/unpack staging
// buffer — and the transport's eager send copy — is recycled rather than
// allocated, taking the garbage collector off the per-exchange critical
// path.
//
// Ownership rules:
//
//   - A buffer obtained with GetBuffer is owned by the caller until it is
//     passed to PutBuffer or handed to the transport.
//   - Comm.Send / Comm.Isend either copy their argument eagerly or (for
//     large messages on a zero-copy transport) block until the payload is
//     written, so a staging buffer may be recycled as soon as the call
//     returns.
//   - Message payloads returned by Recv/Wait are owned by the receiver;
//     a receiver that is finished with a payload may PutBuffer it (the
//     exchange engine does), but must not if any alias is retained.
package mpi

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Size classes are powers of two from 1<<minClassShift up to
// 1<<maxClassShift bytes; larger requests fall through to the allocator.
// The top classes exist for the TCP transport's chunked-streaming
// reassembly buffers: a steady stream of large redistribution payloads
// recycles its receive storage instead of allocating (and zeroing) tens
// of megabytes per message.
const (
	minClassShift = 8  // 256 B
	maxClassShift = 26 // 64 MiB
	numClasses    = maxClassShift - minClassShift + 1
)

// bufPools[i] holds buffers of exactly 1<<(minClassShift+i) bytes,
// stored as unsafe base pointers so Get and Put stay allocation-free
// (boxing a slice header into an interface would allocate on every Put).
var bufPools [numClasses]sync.Pool

// classFor returns the smallest class whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minClassShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c >= numClasses {
		return -1
	}
	return c
}

// GetBuffer returns a buffer of length n from the arena, allocating only
// when the matching size class is empty. The contents are unspecified;
// callers overwrite the full length. The capacity is the class size, so a
// later PutBuffer finds its way back to the same class.
func GetBuffer(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	size := 1 << (minClassShift + c)
	if p, _ := bufPools[c].Get().(unsafe.Pointer); p != nil {
		return unsafe.Slice((*byte)(p), size)[:n]
	}
	return make([]byte, size)[:n]
}

// PutBuffer returns a buffer to the arena. Only buffers whose capacity is
// exactly a class size are retained (GetBuffer always produces such
// buffers; arbitrary slices are silently dropped for the garbage
// collector). The caller must not touch the buffer afterwards.
func PutBuffer(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 { // not a power of two
		return
	}
	shift := bits.Len(uint(c)) - 1
	if shift < minClassShift || shift > maxClassShift {
		return
	}
	b = b[:c]
	bufPools[shift-minClassShift].Put(unsafe.Pointer(unsafe.SliceData(b)))
}

// BufferClassSize reports the capacity a GetBuffer(n) call actually
// holds: the size of the smallest class covering n, or n itself beyond
// the largest class. Memory-budget accounting rounds through it so
// modeled footprints match what the arena really hands out.
func BufferClassSize(n int) int {
	if n <= 0 {
		return 0
	}
	c := classFor(n)
	if c < 0 {
		return n
	}
	return 1 << (minClassShift + c)
}

// StagingMeter is a live accounting hook over arena traffic: callers that
// acquire and release through it maintain a current-bytes counter and its
// high-water mark. The core package's memory-bounded exchange charges
// every staging buffer and held receive payload it owns against one, so
// tests can assert the measured peak against a configured budget — the
// budget is enforced by measurement, not advised. All methods are safe
// for concurrent use and nil-safe (a nil meter is a no-op).
type StagingMeter struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Acquire charges n bytes and advances the high-water mark.
func (m *StagingMeter) Acquire(n int) {
	if m == nil {
		return
	}
	c := m.cur.Add(int64(n))
	for {
		p := m.peak.Load()
		if c <= p || m.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// Release returns n previously acquired bytes.
func (m *StagingMeter) Release(n int) {
	if m != nil {
		m.cur.Add(int64(-n))
	}
}

// Current reports the bytes currently charged.
func (m *StagingMeter) Current() int64 {
	if m == nil {
		return 0
	}
	return m.cur.Load()
}

// Peak reports the high-water mark since the last ResetPeak.
func (m *StagingMeter) Peak() int64 {
	if m == nil {
		return 0
	}
	return m.peak.Load()
}

// ResetPeak rebases the high-water mark to the current charge, so a
// caller can measure one bounded operation in isolation.
func (m *StagingMeter) ResetPeak() {
	if m != nil {
		m.peak.Store(m.cur.Load())
	}
}

// StagingLease is a reservation of arena bytes held open across a
// multi-buffer lifetime — the accounting primitive of pipelined
// exchanges, where the receive payloads of round r are leased when the
// round is issued and stay charged until the round retires k iterations
// later, with several leases open at once. Reserving up front (rather
// than charging each payload as it is delivered) makes the meter's
// high-water mark an upper bound on what the in-flight window can hold,
// so a measured peak under budget proves the depth clamp sound. The
// zero value is an empty lease; a lease against a nil meter is a no-op.
type StagingLease struct {
	m *StagingMeter
	n int64
}

// Lease opens a reservation of n bytes against the meter (callers pass
// class-rounded sizes so the reservation matches arena reality).
func (m *StagingMeter) Lease(n int) StagingLease {
	m.Acquire(n)
	return StagingLease{m: m, n: int64(n)}
}

// Grow extends the lease by n bytes.
func (l *StagingLease) Grow(n int) {
	if l.m == nil {
		return
	}
	l.m.Acquire(n)
	l.n += int64(n)
}

// Bytes reports the bytes currently reserved by the lease.
func (l *StagingLease) Bytes() int64 { return l.n }

// Close releases the whole reservation. Closing an empty or
// already-closed lease is a no-op, so retiring a round is idempotent.
func (l *StagingLease) Close() {
	if l.m != nil && l.n > 0 {
		l.m.Release(int(l.n))
	}
	l.n = 0
}

// GetBufferMetered is GetBuffer with the buffer's full capacity (the
// class size, not the requested length) charged against m.
func GetBufferMetered(n int, m *StagingMeter) []byte {
	b := GetBuffer(n)
	m.Acquire(cap(b))
	return b
}

// PutBufferMetered releases the charge taken by GetBufferMetered and
// recycles the buffer.
func PutBufferMetered(b []byte, m *StagingMeter) {
	m.Release(cap(b))
	PutBuffer(b)
}
