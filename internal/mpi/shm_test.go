package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"ddr/internal/obs"
)

// shmPattern returns a deterministic payload for (src, tag, index) so
// receivers can verify every byte without coordination.
func shmPattern(src, tag, i, size int) []byte {
	out := make([]byte, size)
	seed := byte(src*31 + tag*17 + i*7 + 1)
	for b := range out {
		out[b] = seed + byte(b)
	}
	return out
}

// TestShmConcurrentStorm hammers the rings from concurrent senders on
// every rank — the transport contract allows concurrent Sends, and the
// ring producer mutex must serialize them without corrupting records or
// breaking per-goroutine tag streams. Run under -race in make verify.
func TestShmConcurrentStorm(t *testing.T) {
	const (
		ranks    = 8
		senders  = 4
		perTag   = 25
		size     = 512
	)
	err := RunShm(ranks, func(c *Comm) error {
		var wg sync.WaitGroup
		errc := make(chan error, senders+1)
		// senders concurrent goroutines per rank, each with its own tag so
		// per-(src,tag) ordering is checkable at the receiver.
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(tag int) {
				defer wg.Done()
				for i := 0; i < perTag; i++ {
					for peer := 0; peer < c.Size(); peer++ {
						if peer == c.Rank() {
							continue
						}
						if err := c.Send(peer, tag, shmPattern(c.Rank(), tag, i, size)); err != nil {
							errc <- err
							return
						}
					}
				}
			}(s)
		}
		// Receive everything: per (src, tag) the i-sequence must arrive in
		// order with intact bytes.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tag := 0; tag < senders; tag++ {
				for i := 0; i < perTag; i++ {
					for peer := 0; peer < c.Size(); peer++ {
						if peer == c.Rank() {
							continue
						}
						data, _, _, err := c.Recv(peer, tag)
						if err != nil {
							errc <- err
							return
						}
						if !bytes.Equal(data, shmPattern(peer, tag, i, size)) {
							errc <- fmt.Errorf("rank %d: corrupt payload from %d tag %d msg %d", c.Rank(), peer, tag, i)
							return
						}
						PutBuffer(data)
					}
				}
			}
		}()
		wg.Wait()
		close(errc)
		return <-errc
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmRingWraparound forces the ring write position to wrap many
// times: a minimum-size ring carrying payloads that never divide the
// ring size evenly, so records repeatedly straddle the end and the
// producer must emit wrap markers the consumer honours.
func TestShmRingWraparound(t *testing.T) {
	const msgs = 300
	err := Launch(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				size := 600 + i%37*13 // co-prime-ish with 4096: wraps at varying offsets
				if err := c.Send(1, 3, shmPattern(0, 3, i, size)); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			data, _, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			size := 600 + i%37*13
			if !bytes.Equal(data, shmPattern(0, 3, i, size)) {
				return fmt.Errorf("message %d corrupt after wraparound", i)
			}
			PutBuffer(data)
		}
		// The schedule must actually have wrapped.
		tr := c.tr.(*shmTransport)
		if st := tr.Stats(); st.Wraps == 0 {
			return errors.New("ring never wrapped")
		}
		return nil
	}, WithShmOptions(ShmOptions{RingSize: minShmRing, ChunkThreshold: -1}))
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmChunkedInterleave streams large chunked payloads from several
// sources at once through tiny rings, with small control messages
// woven between them: stream reassembly is keyed per (source, stream)
// and must not mix sources, and the small messages must not jump their
// link's FIFO order.
func TestShmChunkedInterleave(t *testing.T) {
	const (
		ranks = 4
		big   = 64 << 10 // far above the 2 KiB threshold below: many chunks
		msgs  = 8
	)
	opts := ShmOptions{RingSize: 8 << 10, ChunkThreshold: 2 << 10}
	err := Launch(ranks, func(c *Comm) error {
		if c.Rank() == 0 {
			type rec struct {
				data []byte
				tag  int
			}
			got := make(map[int][]rec)
			for n := 0; n < (ranks-1)*msgs*2; n++ {
				data, src, tag, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				got[src] = append(got[src], rec{data: data, tag: tag})
			}
			for src := 1; src < ranks; src++ {
				seq := got[src]
				if len(seq) != msgs*2 {
					return fmt.Errorf("source %d delivered %d messages, want %d", src, len(seq), msgs*2)
				}
				// Per-link FIFO: each big payload (tag 1) is followed by its
				// small marker (tag 2), in send order.
				for i := 0; i < msgs; i++ {
					bigRec, mark := seq[2*i], seq[2*i+1]
					if bigRec.tag != 1 || mark.tag != 2 {
						return fmt.Errorf("source %d message %d arrived out of order (tags %d,%d)",
							src, i, bigRec.tag, mark.tag)
					}
					if !bytes.Equal(bigRec.data, shmPattern(src, 1, i, big)) {
						return fmt.Errorf("source %d chunked payload %d corrupt", src, i)
					}
					if !bytes.Equal(mark.data, shmPattern(src, 2, i, 16)) {
						return fmt.Errorf("source %d marker %d corrupt", src, i)
					}
					PutBuffer(bigRec.data)
					PutBuffer(mark.data)
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			if err := c.Send(0, 1, shmPattern(c.Rank(), 1, i, big)); err != nil {
				return err
			}
			if err := c.Send(0, 2, shmPattern(c.Rank(), 2, i, 16)); err != nil {
				return err
			}
		}
		return nil
	}, WithShmOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmChaosSchedules runs the fault-injector schedules over the shm
// transport: drop-with-retry must deliver, and a severed link must fail
// the receiver with ErrPeerLost while the healthy direction keeps
// working — the same guarantees the inproc and TCP transports give.
func TestShmChaosSchedules(t *testing.T) {
	t.Run("drop-retry", func(t *testing.T) {
		inj := funcInjector(func(_, _, _ int, _ uint64, attempt int) Fault {
			return Fault{Drop: attempt < 2}
		})
		err := Launch(2, func(c *Comm) error {
			peer := 1 - c.Rank()
			for i := 0; i < 20; i++ {
				if err := c.Send(peer, 7, shmPattern(c.Rank(), 7, i, 128)); err != nil {
					return err
				}
				data, _, _, err := c.Recv(peer, 7)
				if err != nil {
					return err
				}
				if !bytes.Equal(data, shmPattern(peer, 7, i, 128)) {
					return fmt.Errorf("round %d corrupt under drop-retry", i)
				}
				PutBuffer(data)
			}
			return nil
		}, WithTransport(TransportShm), WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("stall-delivers", func(t *testing.T) {
		inj := funcInjector(func(_, _, _ int, seq uint64, _ int) Fault {
			return Fault{Delay: time.Duration(seq%5) * 200 * time.Microsecond}
		})
		err := Launch(3, func(c *Comm) error {
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				for i := 0; i < 10; i++ {
					if err := c.Send(peer, 1, shmPattern(c.Rank(), 1, i, 64)); err != nil {
						return err
					}
				}
			}
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				for i := 0; i < 10; i++ {
					data, _, _, err := c.Recv(peer, 1)
					if err != nil {
						return err
					}
					if !bytes.Equal(data, shmPattern(peer, 1, i, 64)) {
						return fmt.Errorf("stalled message %d from %d corrupt", i, peer)
					}
					PutBuffer(data)
				}
			}
			return nil
		}, WithTransport(TransportShm), WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sever", func(t *testing.T) {
		inj := funcInjector(func(src, dst, _ int, _ uint64, _ int) Fault {
			return Fault{Sever: src == 0 && dst == 1}
		})
		err := Launch(2, func(c *Comm) error {
			if c.Rank() == 0 {
				c.Send(1, 7, []byte("doomed")) //nolint:errcheck // swallowed by the cut
				data, _, _, err := c.Recv(1, 8)
				if err != nil {
					return fmt.Errorf("healthy 1->0 direction failed: %w", err)
				}
				PutBuffer(data)
				return nil
			}
			if err := c.Send(0, 8, []byte("alive")); err != nil {
				return err
			}
			_, _, _, err := c.Recv(0, 7)
			if !errors.Is(err, ErrPeerLost) {
				return fmt.Errorf("recv on severed link: got %v, want ErrPeerLost", err)
			}
			return nil
		}, WithTransport(TransportShm), WithFaultInjector(inj))
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestShmZeroAllocSteadyState guards the steady-state allocation
// profile: with pooled payload recycling, a warmed-up ping-pong must
// not allocate on the send path and at most recycle pooled buffers on
// the receive path. The budget is a small constant, not zero, because
// AllocsPerRun counts the whole process — including the consumer
// goroutine's mailbox bookkeeping on first growth.
func TestShmZeroAllocSteadyState(t *testing.T) {
	err := RunShm(2, func(c *Comm) error {
		const size = 4 << 10
		msg := make([]byte, size)
		peer := 1 - c.Rank()
		// Rank 1 echoes until the stop tag arrives, so rank 0 controls the
		// round count (AllocsPerRun adds its own warm-up invocation).
		if c.Rank() == 1 {
			for {
				data, _, tag, err := c.Recv(peer, AnyTag)
				if err != nil {
					return err
				}
				PutBuffer(data)
				if tag == 9 {
					return nil
				}
				if err := c.Send(peer, 0, msg); err != nil {
					return err
				}
			}
		}
		pingpong := func() error {
			if err := c.Send(peer, 0, msg); err != nil {
				return err
			}
			data, _, _, err := c.Recv(peer, 0)
			if err != nil {
				return err
			}
			PutBuffer(data)
			return nil
		}
		for i := 0; i < 100; i++ { // reach steady state on both sides
			if err := pingpong(); err != nil {
				return err
			}
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		allocs := testing.AllocsPerRun(50, func() {
			if err := pingpong(); err != nil {
				t.Error(err)
			}
		})
		if err := c.Send(peer, 9, nil); err != nil {
			return err
		}
		if allocs > 4 {
			t.Errorf("steady-state shm ping-pong allocates %.1f objects per round trip", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShmScrapeUnderLoad races Prometheus scrapes against ring traffic:
// the shm gauges and counters are updated from producer and consumer
// goroutines while WritePrometheus walks the registry. Run under -race
// in make verify; the assertion here is that the scrape sees the new
// instruments and nothing deadlocks.
func TestShmScrapeUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	err := RunShm(4, func(c *Comm) error {
		c.AttachTelemetry(NewTelemetry(reg, nil, c.Rank()))
		stop := make(chan struct{})
		var scrapes sync.WaitGroup
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var buf bytes.Buffer
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		for i := 0; i < 50; i++ {
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				if err := c.Send(peer, 1, shmPattern(c.Rank(), 1, i, 2048)); err != nil {
					return err
				}
			}
			for peer := 0; peer < c.Size(); peer++ {
				if peer == c.Rank() {
					continue
				}
				data, _, _, err := c.Recv(peer, 1)
				if err != nil {
					return err
				}
				PutBuffer(data)
			}
		}
		close(stop)
		scrapes.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"mpi_shm_bytes_out_total",
		"mpi_shm_bytes_in_total",
		"mpi_shm_ring_occupancy_bytes",
	} {
		if !bytes.Contains([]byte(out), []byte(name)) {
			t.Errorf("scrape output missing %s", name)
		}
	}
}

// TestTransportOptionsValidation covers the typed option errors Launch
// must return before any rank runs: every rejectable TCPOptions and
// ShmOptions field, plus a topology without the shm transport.
func TestTransportOptionsValidation(t *testing.T) {
	body := func(*Comm) error { return errors.New("body must not run") }
	tcpCases := []struct {
		name string
		o    TCPOptions
	}{
		{"SendBufSize", TCPOptions{SendBufSize: -1}},
		{"RecvBufSize", TCPOptions{RecvBufSize: -1}},
		{"ChunkSize", TCPOptions{ChunkSize: -1}},
		{"SendQueueLen", TCPOptions{SendQueueLen: -1}},
		{"WriteBatch", TCPOptions{WriteBatch: -1}},
		{"RetryMax", TCPOptions{RetryMax: -1}},
		{"RetryBackoff", TCPOptions{RetryBackoff: -time.Second}},
	}
	for _, tc := range tcpCases {
		if err := tc.o.Validate(); !errors.Is(err, ErrBadOption) {
			t.Errorf("TCPOptions.%s: Validate = %v, want ErrBadOption", tc.name, err)
		}
		if err := Launch(2, body, WithTCPOptions(tc.o)); !errors.Is(err, ErrBadOption) {
			t.Errorf("TCPOptions.%s: Launch = %v, want ErrBadOption", tc.name, err)
		}
	}
	shmCases := []struct {
		name string
		o    ShmOptions
	}{
		{"RingSize negative", ShmOptions{RingSize: -4096}},
		{"RingSize not power of two", ShmOptions{RingSize: 12345}},
		{"RingSize too small", ShmOptions{RingSize: 1024}},
		{"ChunkSize negative", ShmOptions{ChunkSize: -1}},
	}
	for _, tc := range shmCases {
		if err := tc.o.Validate(); !errors.Is(err, ErrBadOption) {
			t.Errorf("ShmOptions %s: Validate = %v, want ErrBadOption", tc.name, err)
		}
		if err := Launch(2, body, WithShmOptions(tc.o)); !errors.Is(err, ErrBadOption) {
			t.Errorf("ShmOptions %s: Launch = %v, want ErrBadOption", tc.name, err)
		}
	}
	// Chunking disabled is legal, as is the zero value.
	if err := (ShmOptions{ChunkThreshold: -1}).Validate(); err != nil {
		t.Errorf("disabled chunking rejected: %v", err)
	}
	if err := (TCPOptions{ChunkThreshold: -1}).Validate(); err != nil {
		t.Errorf("disabled TCP chunking rejected: %v", err)
	}
	// A topology requires the shm transport.
	if err := Launch(2, body, WithTransport(TransportTCP), WithTopology(NodesOf(2, 2))); !errors.Is(err, ErrBadOption) {
		t.Errorf("topology over TCP accepted: %v", err)
	}
	// Valid options still launch.
	if err := Launch(2, func(*Comm) error { return nil },
		WithShmOptions(ShmOptions{RingSize: 64 << 10, ChunkThreshold: 8 << 10, ChunkSize: 4 << 10})); err != nil {
		t.Errorf("valid shm options rejected: %v", err)
	}
}
