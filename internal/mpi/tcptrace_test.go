package mpi

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ddr/internal/obs"
)

// TestTCPSendqSaturationCounter drives a peer's send queue to saturation
// and checks that, while the log still warns exactly once, every
// recurrence is counted — in the endpoint stats and in the
// mpi_tcp_sendq_saturation_total registry series.
func TestTCPSendqSaturationCounter(t *testing.T) {
	var logbuf bytes.Buffer
	prev := obs.SetWarnOutput(&logbuf)
	defer obs.SetWarnOutput(prev)

	opts := TCPOptions{SendQueueLen: 2, WriteBatch: 2}
	var stats TCPStats
	var counted int64
	err := RunTCPOpts(2, opts, func(c *Comm) error {
		if c.Rank() == 0 {
			reg := obs.NewRegistry()
			tel := NewTelemetry(reg, nil, 0)
			c.AttachTelemetry(tel)
			for i := 0; i < 512; i++ {
				if err := c.Send(1, 0, make([]byte, 4096)); err != nil {
					return err
				}
			}
			if tt, ok := c.tr.(*tcpTransport); ok {
				stats = tt.ep.Stats()
			}
			counted = tel.tcpSendqSat.Value()
			return nil
		}
		for i := 0; i < 512; i++ {
			data, _, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			PutBuffer(data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SendqSaturation == 0 {
		t.Fatal("512 sends through a 2-deep queue never saturated")
	}
	if counted != stats.SendqSaturation {
		t.Fatalf("registry counted %d saturation events, endpoint stats %d", counted, stats.SendqSaturation)
	}
	if n := strings.Count(logbuf.String(), "saturated"); n != 1 {
		t.Fatalf("saturation warned %d times, want exactly 1 (counter carries the recurrences):\n%s",
			n, logbuf.String())
	}
}

// TestTCPTraceContextRoundTrip stamps a trace context on one side of a
// TCP world and checks the receiving side's flight events carry the
// exchange ID and round — i.e. the context really crossed the wire.
func TestTCPTraceContextRoundTrip(t *testing.T) {
	const exch = uint64(0xabcdef0123456789)
	var flights [2]*obs.FlightRecorder
	err := RunTCPOpts(2, TCPOptions{}, func(c *Comm) error {
		rank := c.Rank()
		f := obs.NewFlightRecorder(256)
		flights[rank] = f
		c.AttachTelemetry(NewTelemetry(nil, nil, rank).WithFlightRecorder(f, rank))
		if rank == 0 {
			c.SetTraceContext(TraceContext{Exchange: exch, Round: 3})
			defer c.ClearTraceContext()
			return c.Send(1, 7, []byte("traced payload"))
		}
		data, _, _, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		PutBuffer(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := map[obs.FlightKind]bool{obs.FlightFrameIn: false, obs.FlightRecv: false}
	for _, ev := range flights[1].Snapshot() {
		if _, ok := wantKinds[ev.Kind]; ok && ev.Exchange == exch {
			if ev.Round != 3 {
				t.Fatalf("%v event carries round %d, want 3", ev.Kind, ev.Round)
			}
			if ev.Tag != 7 {
				continue // control traffic
			}
			wantKinds[ev.Kind] = true
		}
	}
	for kind, seen := range wantKinds {
		if !seen {
			t.Errorf("receiver recorded no %v event with exchange %016x:\n%+v",
				kind, exch, flights[1].Snapshot())
		}
	}
	// The sender's side records the send with the same identity.
	found := false
	for _, ev := range flights[0].Snapshot() {
		if ev.Kind == obs.FlightSend && ev.Exchange == exch && ev.Peer == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("sender recorded no FlightSend with exchange %016x", exch)
	}
}

// TestTCPTraceContextChunked streams a message large enough to chunk and
// checks the stream-open flight event carries the exchange context
// (chunk frames repeat the extension so mid-stream observation works).
func TestTCPTraceContextChunked(t *testing.T) {
	const exch = uint64(0x1122334455667788)
	var recvFlight *obs.FlightRecorder
	opts := TCPOptions{ChunkThreshold: 1 << 10, ChunkSize: 1 << 10}
	err := RunTCPOpts(2, opts, func(c *Comm) error {
		rank := c.Rank()
		if rank == 0 {
			c.SetTraceContext(TraceContext{Exchange: exch, Round: 1})
			defer c.ClearTraceContext()
			return c.Send(1, 9, make([]byte, 1<<14))
		}
		f := obs.NewFlightRecorder(256)
		recvFlight = f
		c.AttachTelemetry(NewTelemetry(nil, nil, rank).WithFlightRecorder(f, rank))
		data, _, _, err := c.Recv(0, 9)
		if err != nil {
			return err
		}
		PutBuffer(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var open, done bool
	for _, ev := range recvFlight.Snapshot() {
		switch ev.Kind {
		case obs.FlightChunkStart:
			if ev.Exchange == exch {
				open = true
			}
		case obs.FlightChunkDone:
			done = true
		}
	}
	if !open || !done {
		t.Fatalf("chunk stream events missing (open=%v done=%v):\n%+v",
			open, done, recvFlight.Snapshot())
	}
}

// TestTCPUntracedWireIdentical proves the zero-cost claim on the wire:
// with no trace context the frames carry no extension, so total wire
// bytes match exactly; with a context each message frame grows by the
// 16-byte trace extension and nothing else.
func TestTCPUntracedWireIdentical(t *testing.T) {
	const msgs = 32
	const size = 1024
	run := func(traced bool) int64 {
		var wireOut int64
		err := RunTCPOpts(2, TCPOptions{}, func(c *Comm) error {
			if c.Rank() == 0 {
				if traced {
					c.SetTraceContext(TraceContext{Exchange: 0xbeef, Round: 0})
					defer c.ClearTraceContext()
				}
				for i := 0; i < msgs; i++ {
					if err := c.Send(1, 0, make([]byte, size)); err != nil {
						return err
					}
				}
				// Wait for the ack so every frame has been written before
				// the stats are read.
				ack, _, _, err := c.Recv(1, 1)
				if err != nil {
					return err
				}
				PutBuffer(ack)
				if tt, ok := c.tr.(*tcpTransport); ok {
					// The frames leave in one writev batch and the stats add
					// happens after the syscall returns, so the ack round-trip
					// can overtake the writer goroutine's counter update on a
					// loaded box. Poll until the counter is nonzero and stable.
					prev := int64(-1)
					for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
						wireOut = tt.ep.Stats().WireOut
						if wireOut > 0 && wireOut == prev {
							break
						}
						prev = wireOut
						time.Sleep(time.Millisecond)
					}
				}
				return nil
			}
			for i := 0; i < msgs; i++ {
				data, _, _, err := c.Recv(0, 0)
				if err != nil {
					return err
				}
				PutBuffer(data)
			}
			return c.Send(0, 1, []byte{1})
		})
		if err != nil {
			t.Fatal(err)
		}
		return wireOut
	}
	plain := run(false)
	traced := run(true)
	if plain == 0 {
		t.Fatal("no wire bytes measured")
	}
	if want := plain + msgs*tcpTraceExt; traced != want {
		t.Fatalf("traced run wrote %d wire bytes, want %d (plain %d + %d msgs x %d-byte trace ext)",
			traced, want, plain, msgs, tcpTraceExt)
	}
}
