package mpi

import "context"

// Request is a handle for a non-blocking operation. Wait blocks until the
// operation completes and returns its outcome. A Request must be waited
// on exactly once.
type Request struct {
	done   chan struct{}
	cancel context.CancelFunc // non-nil for receives: releases the mailbox wait
	data   []byte
	from   int
	tag    int
	err    error
}

// Wait blocks until the operation completes. For receives, the returned
// slice is the message payload and from/tag identify the sender.
func (r *Request) Wait() (data []byte, from, tag int, err error) {
	<-r.done
	return r.data, r.from, r.tag, r.err
}

// Isend starts a non-blocking send. Because delivery is eager the data is
// copied immediately and the caller may reuse the buffer as soon as Isend
// returns; Wait only reports the delivery status. On the TCP transport
// the copy is enqueue-only: the per-peer writer goroutine performs the
// socket write asynchronously, so small Isends (and Sends) return without
// waiting for the kernel. Messages above the chunk threshold skip the
// copy and stream straight from the caller's buffer, returning once the
// payload is on the wire.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	r := &Request{done: make(chan struct{})}
	err := c.Send(dst, tag, data)
	r.err = err
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive for a message matching (src, tag).
func (c *Comm) Irecv(src, tag int) *Request {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Request{done: make(chan struct{}), cancel: cancel}
	go func() {
		r.data, r.from, r.tag, r.err = c.RecvCtx(ctx, src, tag)
		cancel()
		close(r.done)
	}()
	return r
}

// WaitAll waits on every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitCtx is Wait with cancellation: it returns early with ctx.Err() when
// the context is cancelled before the operation completes. A cancelled
// receive releases its mailbox slot: the background receive is unblocked
// without consuming a message, so a message that arrives later stays
// matchable by a future Recv and no staging-arena buffer is pinned. If
// the receive had already matched when the cancellation raced in, the
// payload is recycled back to the arena. A nil context behaves like Wait.
func (r *Request) WaitCtx(ctx context.Context) (data []byte, from, tag int, err error) {
	if ctx == nil {
		return r.Wait()
	}
	select {
	case <-r.done:
		return r.data, r.from, r.tag, r.err
	case <-ctx.Done():
		if r.cancel != nil {
			r.cancel()
			// The cancellable mailbox wait returns promptly, so this does
			// not reintroduce the unbounded block WaitCtx exists to avoid.
			<-r.done
			if r.err == nil && r.data != nil {
				// The receive won the race: the message is consumed and the
				// caller is abandoning it, so recycle the payload.
				PutBuffer(r.data)
				r.data = nil
			}
		}
		return nil, 0, 0, ctx.Err()
	}
}

// WaitAllCtx waits on every request until done or the context is
// cancelled, returning the first error encountered. Receives not yet
// complete at cancellation release their mailbox slots (see WaitCtx).
func WaitAllCtx(ctx context.Context, reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, _, err := r.WaitCtx(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
