package mpi

import "context"

// Request is a handle for a non-blocking operation. Wait blocks until the
// operation completes and returns its outcome. A Request must be waited
// on exactly once.
type Request struct {
	done chan struct{}
	data []byte
	from int
	tag  int
	err  error
}

// Wait blocks until the operation completes. For receives, the returned
// slice is the message payload and from/tag identify the sender.
func (r *Request) Wait() (data []byte, from, tag int, err error) {
	<-r.done
	return r.data, r.from, r.tag, r.err
}

// Isend starts a non-blocking send. Because delivery is eager the data is
// copied immediately and the caller may reuse the buffer as soon as Isend
// returns; Wait only reports the delivery status. On the TCP transport
// the copy is enqueue-only: the per-peer writer goroutine performs the
// socket write asynchronously, so small Isends (and Sends) return without
// waiting for the kernel. Messages above the chunk threshold skip the
// copy and stream straight from the caller's buffer, returning once the
// payload is on the wire.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	r := &Request{done: make(chan struct{})}
	err := c.Send(dst, tag, data)
	r.err = err
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive for a message matching (src, tag).
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.data, r.from, r.tag, r.err = c.Recv(src, tag)
		close(r.done)
	}()
	return r
}

// WaitAll waits on every request and returns the first error encountered.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitCtx is Wait with cancellation: it returns early with ctx.Err() when
// the context is cancelled before the operation completes. A cancelled
// request is abandoned, not aborted — the underlying operation keeps
// running and may still consume a matching message from the mailbox, so
// after a cancellation the communicator must not be reused for traffic
// whose matching could collide with the abandoned receive (see the
// cancellation contract in DESIGN.md). A nil context behaves like Wait.
func (r *Request) WaitCtx(ctx context.Context) (data []byte, from, tag int, err error) {
	if ctx == nil {
		return r.Wait()
	}
	select {
	case <-r.done:
		return r.data, r.from, r.tag, r.err
	case <-ctx.Done():
		return nil, 0, 0, ctx.Err()
	}
}

// WaitAllCtx waits on every request until done or the context is
// cancelled, returning the first error encountered. Requests not yet
// complete at cancellation are abandoned (see WaitCtx).
func WaitAllCtx(ctx context.Context, reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, _, err := r.WaitCtx(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
