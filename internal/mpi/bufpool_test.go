package mpi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ddr/internal/datatype"
	"ddr/internal/grid"
	"ddr/internal/obs"
)

func TestBufferPoolClasses(t *testing.T) {
	for _, n := range []int{1, 255, 256, 257, 4096, 1 << 20, 1 << 24, (1 << 26)} {
		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("GetBuffer(%d) has len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 {
			t.Fatalf("GetBuffer(%d) cap %d is not a class size", n, c)
		}
		PutBuffer(b)
	}
	// Above the largest class the allocator takes over.
	big := GetBuffer(1<<26 + 1)
	if len(big) != 1<<26+1 {
		t.Fatalf("oversized GetBuffer has len %d", len(big))
	}
	PutBuffer(big) // silently dropped, must not panic
	// Arbitrary odd-capacity slices are dropped, not corrupted.
	PutBuffer(make([]byte, 300))
	PutBuffer(nil)
	if b := GetBuffer(0); len(b) != 0 {
		t.Fatalf("GetBuffer(0) has len %d", len(b))
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	b := GetBuffer(1000)
	b[0] = 42
	base := &b[:cap(b)][0]
	PutBuffer(b)
	c := GetBuffer(900) // same class (1024)
	if &c[:cap(c)][0] != base {
		t.Skip("pool did not return the same buffer (GC ran); nothing to assert")
	}
	if cap(c) != 1024 || len(c) != 900 {
		t.Fatalf("recycled buffer len %d cap %d", len(c), cap(c))
	}
}

// TestBufferClassSize pins the class-rounding contract memory-budget
// accounting depends on: the reported size is exactly the capacity
// GetBuffer hands out for the same request.
func TestBufferClassSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-5, 0},
		{1, 256}, {255, 256}, {256, 256}, {257, 512},
		{1000, 1024}, {1 << 20, 1 << 20}, {1<<20 + 1, 2 << 20},
		{1 << 26, 1 << 26}, {1<<26 + 1, 1<<26 + 1}, // beyond the top class: allocator, exact
	}
	for _, c := range cases {
		if got := BufferClassSize(c.n); got != c.want {
			t.Errorf("BufferClassSize(%d) = %d, want %d", c.n, got, c.want)
		}
		if c.n <= 0 {
			continue
		}
		b := GetBuffer(c.n)
		if cap(b) != c.want {
			t.Errorf("GetBuffer(%d) cap %d, BufferClassSize says %d", c.n, cap(b), c.want)
		}
		PutBuffer(b)
	}
}

// TestStagingMeter covers the live accounting hook of the bounded
// exchange: charge/release bookkeeping, the high-water mark, ResetPeak
// rebasing, metered Get/Put charging full class capacity, and nil
// safety.
func TestStagingMeter(t *testing.T) {
	var m StagingMeter
	m.Acquire(100)
	m.Acquire(50)
	if cur, peak := m.Current(), m.Peak(); cur != 150 || peak != 150 {
		t.Fatalf("cur=%d peak=%d, want 150/150", cur, peak)
	}
	m.Release(100)
	if cur, peak := m.Current(), m.Peak(); cur != 50 || peak != 150 {
		t.Fatalf("after release: cur=%d peak=%d, want 50/150", cur, peak)
	}
	m.ResetPeak()
	if peak := m.Peak(); peak != 50 {
		t.Fatalf("peak after reset = %d, want 50", peak)
	}
	b := GetBufferMetered(300, &m) // class 512
	if cur := m.Current(); cur != 50+512 {
		t.Fatalf("metered get charges %d, want class capacity 512", cur-50)
	}
	PutBufferMetered(b, &m)
	if cur, peak := m.Current(), m.Peak(); cur != 50 || peak != 562 {
		t.Fatalf("after metered put: cur=%d peak=%d, want 50/562", cur, peak)
	}

	// Concurrent acquire/release never loses a peak raise.
	var c StagingMeter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Acquire(64)
				c.Release(64)
			}
		}()
	}
	wg.Wait()
	if cur := c.Current(); cur != 0 {
		t.Fatalf("concurrent balance = %d, want 0", cur)
	}
	if peak := c.Peak(); peak < 64 || peak > 8*64 {
		t.Fatalf("concurrent peak = %d, want within [64, 512]", peak)
	}

	var nilM *StagingMeter
	nilM.Acquire(10)
	nilM.Release(10)
	nilM.ResetPeak()
	if nilM.Current() != 0 || nilM.Peak() != 0 {
		t.Fatal("nil meter must read zero")
	}
	nb := GetBufferMetered(100, nil)
	PutBufferMetered(nb, nil)
}

// TestAlltoallwOptParity verifies every staging strategy produces the
// byte-identical result of the historical serial path on a random
// subarray exchange, including contiguous regions (zero-copy candidates)
// and strided ones.
func TestAlltoallwOptParity(t *testing.T) {
	options := []AlltoallwOptions{
		{},                             // historical serial behaviour
		{Pooled: true},                 // pooled staging
		{ZeroCopy: true},               // contiguous fast path
		{Pooled: true, ZeroCopy: true}, // the Alltoallw default
		{Parallelism: 4, Pooled: true}, // parallel staging
		{Parallelism: 4, ZeroCopy: true, Pooled: true},
	}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 77))
		const n = 4
		side := 8 + rng.Intn(8)
		domain := grid.Box2(0, 0, side, side)
		// Each rank owns a full-width band (contiguous in its buffer) and
		// needs a random box (usually strided in its buffer).
		bands := grid.Slabs(domain, 1, n)
		needs := make([]grid.Box, n)
		for r := range needs {
			needs[r] = grid.RandomBoxIn(rng, domain)
		}
		var want [][]byte
		for oi, opt := range options {
			outs := make([][]byte, n)
			err := Run(n, func(c *Comm) error {
				rank := c.Rank()
				own := bands[rank]
				sendBuf := make([]byte, own.Volume())
				for i := range sendBuf {
					sendBuf[i] = byte(rank*251 + i)
				}
				need := needs[rank]
				recvBuf := make([]byte, need.Volume())
				sendTypes := make([]datatype.Type, n)
				recvTypes := make([]datatype.Type, n)
				for peer := 0; peer < n; peer++ {
					sendTypes[peer] = datatype.Empty{}
					recvTypes[peer] = datatype.Empty{}
					if ov, ok := own.Intersect(needs[peer]); ok {
						st, err := datatype.NewSubarray(1, own, ov)
						if err != nil {
							return err
						}
						sendTypes[peer] = st
					}
					if ov, ok := bands[peer].Intersect(need); ok {
						rt, err := datatype.NewSubarray(1, need, ov)
						if err != nil {
							return err
						}
						recvTypes[peer] = rt
					}
				}
				if err := c.AlltoallwOpt(sendBuf, sendTypes, recvBuf, recvTypes, opt); err != nil {
					return err
				}
				outs[rank] = recvBuf
				return nil
			})
			if err != nil {
				t.Fatalf("trial %d option %d: %v", trial, oi, err)
			}
			if want == nil {
				want = outs
				continue
			}
			for r := range outs {
				if !bytes.Equal(outs[r], want[r]) {
					t.Fatalf("trial %d option %+v rank %d differs from serial result", trial, opt, r)
				}
			}
		}
	}
}

func TestWaitCtxCancel(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			// Give rank 0 time to cancel, then satisfy the abandoned
			// receive so the world drains cleanly.
			time.Sleep(100 * time.Millisecond)
			return c.Send(0, 7, []byte("late"))
		}
		req := c.Irecv(1, 7)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, _, _, err := req.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("got %v, want context.DeadlineExceeded", err)
		}
		// Cancellation released the mailbox slot without consuming the
		// message: the late send stays matchable by a fresh Recv.
		data, from, tag, err := c.Recv(1, 7)
		if err != nil {
			return err
		}
		if string(data) != "late" || from != 1 || tag != 7 {
			return fmt.Errorf("late message resolved to %q from %d tag %d", data, from, tag)
		}
		PutBuffer(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitCtxNilAndDone(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 9, []byte{1, 2, 3})
		}
		req := c.Irecv(1, 9)
		data, _, _, err := req.WaitCtx(nil)
		if err != nil {
			return err
		}
		if len(data) != 3 {
			return fmt.Errorf("got %d bytes", len(data))
		}
		// With both the request and the cancellation ready, either outcome
		// is legal; anything else is a bug.
		done := c.Isend(1, 9, nil)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := WaitAllCtx(ctx, done); err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitCtxAbandonAccounting is the regression test for the WaitCtx
// abandonment leak: a cancelled wait used to pin its mailbox slot
// forever, so the late message could never be matched and the pending
// depth grew without bound. After many abandon-then-drain cycles the
// mailbox must be empty and the depth gauge back at zero.
func TestWaitCtxAbandonAccounting(t *testing.T) {
	const cycles = 50
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			for i := 0; i < cycles; i++ {
				if _, _, _, err := c.Recv(0, 1); err != nil {
					return err
				}
				if err := c.Send(0, 7, []byte("late")); err != nil {
					return err
				}
			}
			return nil
		}
		g := obs.NewRegistry().Gauge("test_mailbox_depth", "")
		c.box.setDepthGauge(g)
		defer c.box.setDepthGauge(nil)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		for i := 0; i < cycles; i++ {
			// No message can be in flight yet, so the abandoned wait always
			// cancels rather than matching.
			req := c.Irecv(1, 7)
			if _, _, _, err := req.WaitCtx(cancelled); !errors.Is(err, context.Canceled) {
				return fmt.Errorf("cycle %d: got %v, want context.Canceled", i, err)
			}
			if err := c.Send(1, 1, nil); err != nil {
				return err
			}
			data, _, _, err := c.Recv(1, 7)
			if err != nil {
				return fmt.Errorf("cycle %d: late message not matchable: %w", i, err)
			}
			PutBuffer(data)
		}
		if v := g.Value(); v != 0 {
			return fmt.Errorf("depth gauge reads %d after drain, want 0", v)
		}
		c.box.mu.Lock()
		n := len(c.box.queue)
		c.box.mu.Unlock()
		if n != 0 {
			return fmt.Errorf("%d envelopes still queued after drain", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
