package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ddr/internal/obs"
)

// Wire protocol v2. Every frame starts with a 20-byte header:
//
//	off  0  type  u8   frameMsg or frameChunk
//	off  1  flags u8   extension bits (zero before tracing existed)
//	off  2  reserved (2 bytes, zero)
//	off  4  ctx   u32  communicator context
//	off  8  src   u32  sender's world rank
//	off 12  tag   u32  message tag (two's-complement int32)
//	off 16  len   u32  payload bytes following this header (this frame only)
//
// Byte 1 is the flags byte (historically reserved-zero, so old frames
// parse as flags 0). The only defined bit is tcpFlagTrace: the frame
// carries a 16-byte trace-context extension — exchange u64, round u32,
// span u32 — placed after every other extension (chunk and/or seq) and
// before the payload. Frames sent without an active trace context have
// flags 0 and are byte-identical to the pre-tracing format; unknown flag
// bits are a protocol error.
//
// frameMsg carries a complete message. frameChunk carries one slice of a
// chunk-streamed message and inserts a 16-byte extension between header
// and payload:
//
//	off  0  stream u32  per-connection stream id
//	off  4  reserved (4 bytes, zero)
//	off  8  total  u64  full message size in bytes
//
// Chunks of one stream arrive in order (single writer per connection);
// chunks of different streams and whole frames may interleave freely, so
// a large payload never head-of-line-blocks the connection. The receiver
// reassembles chunks directly into an arena buffer pinned in the mailbox
// at first-chunk time, which preserves per-(sender,receiver) matching
// order. All integers are little endian.
const (
	tcpFrameHeader = 20
	tcpChunkExt    = 16
)

// Frame types. The zero value is deliberately invalid so an all-zero or
// desynchronized stream fails fast. The Seq variants are the v3
// extension used when reconnect-retry is enabled: they append an 8-byte
// little-endian sequence number (after the chunk extension, when
// present) stamped by the sending writer, letting the receiver discard
// frames replayed by a post-reconnect retransmission. A retry-enabled
// writer emits only Seq frames; the default configuration emits the v2
// types byte-identically to before.
const (
	frameMsg      byte = 1
	frameChunk    byte = 2
	frameMsgSeq   byte = 3
	frameChunkSeq byte = 4
)

// tcpSeqExt is the size of the v3 sequence-number extension.
const tcpSeqExt = 8

// tcpFlagTrace marks a frame carrying the 16-byte trace-context
// extension (exchange u64, round u32, span u32), appended after the
// chunk and seq extensions when present.
const tcpFlagTrace byte = 0x01

// tcpTraceExt is the size of the trace-context extension.
const tcpTraceExt = 16

// ErrFrameTooLarge reports a message that does not fit the wire format:
// with chunked streaming disabled a single frame's length must fit the
// header's u32 length field.
var ErrFrameTooLarge = errors.New("mpi: tcp message exceeds frame limit")

// errTCPProto classifies malformed incoming frames (unknown type byte,
// impossible lengths, inconsistent chunk streams). A connection that
// produces one is desynchronized beyond recovery and is dropped.
var errTCPProto = errors.New("mpi: tcp protocol error")

// TCPOptions tunes the TCP transport. The zero value selects the
// defaults: TCP_NODELAY on, OS socket buffer sizes, 1 MiB chunk
// threshold, 256-frame send queues, and 64-frame write batches.
type TCPOptions struct {
	// Nagle re-enables Nagle's algorithm. By default the transport sets
	// TCP_NODELAY: frames are already coalesced into vectored writes, so
	// kernel-side batching only adds latency.
	Nagle bool
	// SendBufSize / RecvBufSize set SO_SNDBUF / SO_RCVBUF in bytes on
	// every connection; 0 keeps the OS default.
	SendBufSize int
	RecvBufSize int
	// ChunkThreshold is the payload size in bytes above which a message
	// is split into chunked sub-frames so it cannot head-of-line-block
	// its connection. 0 selects the 1 MiB default; negative disables
	// chunking (single frames up to 4 GiB-1).
	ChunkThreshold int
	// ChunkSize is the payload size of each chunk sub-frame. 0 selects
	// the 8 MiB default — large enough that chunking costs little
	// throughput on a fast link, small enough that a control frame waits
	// at most one chunk's transmission time.
	ChunkSize int
	// SendQueueLen is the per-peer send queue capacity in frames. A full
	// queue applies backpressure: Send blocks until the writer drains.
	// 0 selects the default of 256.
	SendQueueLen int
	// WriteBatch is the maximum number of queued frames coalesced into
	// one vectored write. 0 selects the default of 64.
	WriteBatch int
	// RetryMax enables at-least-once delivery: after a connection
	// failure the peer writer redials up to RetryMax times with
	// exponential backoff and retransmits the interrupted batch (and
	// restarts in-flight chunk streams from offset zero). Frames then
	// carry idempotent sequence numbers so the receiver discards
	// replays. 0 (the default) keeps the fail-fast v2 behaviour.
	RetryMax int
	// RetryBackoff is the base delay of the reconnect backoff; attempt k
	// sleeps RetryBackoff<<k. 0 selects the 50ms default. Only meaningful
	// with RetryMax > 0.
	RetryBackoff time.Duration
}

const (
	defaultChunkThreshold = 1 << 20
	defaultChunkSize      = 8 << 20
	defaultSendQueueLen   = 256
	defaultWriteBatch     = 64
	// readBufSize is the per-connection buffered-reader size: the read
	// loop's counterpart to the writer's vectored batches, it turns a
	// storm of small frames into one read syscall per buffer fill. Large
	// payload reads bypass the buffer entirely (io.ReadFull with a
	// request bigger than the buffer reads straight into the arena).
	readBufSize = 64 << 10
	// tcpFlushTimeout bounds how long Close waits for a writer to drain
	// its queue before force-closing the connection under it.
	tcpFlushTimeout = 5 * time.Second
	// Decoder hard limits for frames produced by well-behaved peers.
	maxSingleFrame   = math.MaxUint32
	maxChunkTotal    = 1 << 34 // 16 GiB reassembled message
	maxInboundChunks = 1 << 10 // concurrent partial streams per connection
)

var defaultTCPOptions atomic.Pointer[TCPOptions]

// SetDefaultTCPOptions installs the process-wide options used by
// NewTCPEndpoint and RunTCP when none are passed explicitly — the hook
// the command-line binaries expose as -tcp-* flags.
func SetDefaultTCPOptions(o TCPOptions) { defaultTCPOptions.Store(&o) }

// DefaultTCPOptions returns the current process-wide TCP options.
func DefaultTCPOptions() TCPOptions {
	if p := defaultTCPOptions.Load(); p != nil {
		return *p
	}
	return TCPOptions{}
}

// Validate rejects option values the transport cannot run with, with a
// typed error (wrapping ErrBadOption) naming the offending field. The
// convention is: 0 selects the default, and only ChunkThreshold admits a
// negative value (it disables chunking); everything else must be
// non-negative. Launch and NewTCPEndpoint call this up front so a bad
// option fails at the API boundary instead of misbehaving inside a
// writer goroutine (resolve used to clamp silently).
func (o TCPOptions) Validate() error {
	if o.SendBufSize < 0 {
		return fmt.Errorf("%w: TCPOptions.SendBufSize %d is negative", ErrBadOption, o.SendBufSize)
	}
	if o.RecvBufSize < 0 {
		return fmt.Errorf("%w: TCPOptions.RecvBufSize %d is negative", ErrBadOption, o.RecvBufSize)
	}
	if o.ChunkSize < 0 {
		return fmt.Errorf("%w: TCPOptions.ChunkSize %d is negative", ErrBadOption, o.ChunkSize)
	}
	if o.SendQueueLen < 0 {
		return fmt.Errorf("%w: TCPOptions.SendQueueLen %d is negative", ErrBadOption, o.SendQueueLen)
	}
	if o.WriteBatch < 0 {
		return fmt.Errorf("%w: TCPOptions.WriteBatch %d is negative", ErrBadOption, o.WriteBatch)
	}
	if o.RetryMax < 0 {
		return fmt.Errorf("%w: TCPOptions.RetryMax %d is negative", ErrBadOption, o.RetryMax)
	}
	if o.RetryBackoff < 0 {
		return fmt.Errorf("%w: TCPOptions.RetryBackoff %v is negative", ErrBadOption, o.RetryBackoff)
	}
	return nil
}

// tcpConfig is a TCPOptions with every default resolved.
type tcpConfig struct {
	nagle          bool
	sndbuf, rcvbuf int
	chunk          bool
	chunkThreshold int
	chunkSize      int
	queueLen       int
	batch          int
	retryMax       int
	retryBackoff   time.Duration
}

func (o TCPOptions) resolve() tcpConfig {
	cfg := tcpConfig{
		nagle:          o.Nagle,
		sndbuf:         o.SendBufSize,
		rcvbuf:         o.RecvBufSize,
		chunk:          o.ChunkThreshold >= 0,
		chunkThreshold: o.ChunkThreshold,
		chunkSize:      o.ChunkSize,
		queueLen:       o.SendQueueLen,
		batch:          o.WriteBatch,
		retryMax:       o.RetryMax,
		retryBackoff:   o.RetryBackoff,
	}
	if cfg.retryMax > 0 && cfg.retryBackoff <= 0 {
		cfg.retryBackoff = 50 * time.Millisecond
	}
	if cfg.chunkThreshold == 0 {
		cfg.chunkThreshold = defaultChunkThreshold
	}
	if cfg.chunkSize <= 0 {
		cfg.chunkSize = defaultChunkSize
	}
	if cfg.chunkSize < 1024 {
		cfg.chunkSize = 1024
	}
	if cfg.queueLen <= 0 {
		cfg.queueLen = defaultSendQueueLen
	}
	if cfg.batch <= 0 {
		cfg.batch = defaultWriteBatch
	}
	return cfg
}

// apply sets the per-connection socket options.
func (c *tcpConfig) apply(conn net.Conn) {
	tc, ok := conn.(*net.TCPConn)
	if !ok {
		return
	}
	tc.SetNoDelay(!c.nagle) //nolint:errcheck // best effort
	if c.sndbuf > 0 {
		tc.SetWriteBuffer(c.sndbuf) //nolint:errcheck
	}
	if c.rcvbuf > 0 {
		tc.SetReadBuffer(c.rcvbuf) //nolint:errcheck
	}
}

// TCPStats is a point-in-time snapshot of an endpoint's transport
// counters, for tests and tooling that run without an obs registry.
type TCPStats struct {
	WireOut, WireIn    int64 // frame bytes incl. headers that crossed the stack
	FramesOut          int64 // frames written (whole messages and chunks)
	FramesCoalesced    int64 // frames that shared a vectored write with others
	Batches            int64 // vectored writes issued
	ChunksOut          int64 // chunk sub-frames written
	ChunksIn           int64 // chunk sub-frames read
	BackpressureEvents int64 // sends that found their queue full
	SendqSaturation    int64 // every send-queue saturation occurrence (the log warns once)
	SendQueueDepth     int64 // frames currently queued across all peers
	Reconnects         int64 // writer redials after connection failures
	DupFramesDropped   int64 // replayed frames discarded by sequence dedupe
	PeerConnections    int64 // outbound peer links this endpoint has dialed
}

// seqDeduper discards frames replayed by post-reconnect retransmission.
// It keys on (communicator ctx, world src) and remembers a bounded FIFO
// window of recently committed sequence numbers — membership, not a
// high-water mark, because interleaved chunk streams commit out of
// sequence-number order.
type seqDeduper struct {
	mu    sync.Mutex
	peers map[uint64]*seqRing
}

const seqRingSize = 1024

type seqRing struct {
	set  map[uint64]struct{}
	fifo [seqRingSize]uint64
	n    int
}

func dedupeKey(ctx uint32, src int) uint64 {
	return uint64(ctx)<<32 | uint64(uint32(src))
}

func (d *seqDeduper) ring(ctx uint32, src int) *seqRing {
	if d.peers == nil {
		d.peers = make(map[uint64]*seqRing)
	}
	k := dedupeKey(ctx, src)
	r := d.peers[k]
	if r == nil {
		r = &seqRing{set: make(map[uint64]struct{}, seqRingSize)}
		d.peers[k] = r
	}
	return r
}

// commit records seq as delivered; it returns false when seq was already
// committed (the frame is a replay and must be dropped).
func (d *seqDeduper) commit(ctx uint32, src int, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := d.ring(ctx, src)
	if _, dup := r.set[seq]; dup {
		return false
	}
	if r.n >= seqRingSize {
		delete(r.set, r.fifo[r.n%seqRingSize])
	}
	r.fifo[r.n%seqRingSize] = seq
	r.n++
	r.set[seq] = struct{}{}
	return true
}

// committed reports whether seq was already delivered, without recording
// it — used at chunk-stream open so an incomplete (and later restarted)
// stream never poisons the window.
func (d *seqDeduper) committed(ctx uint32, src int, seq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, dup := d.ring(ctx, src).set[seq]
	return dup
}

// activityOf returns a monotone count of frames committed from src across
// all communicator contexts — the liveness signal lostAfterGrace polls to
// tell a reconnected peer from a dead one.
func (d *seqDeduper) activityOf(src int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for k, r := range d.peers {
		if uint32(k) == uint32(src) {
			total += uint64(r.n)
		}
	}
	return total
}

// TCPEndpoint is one rank's attachment point to a TCP-transported world.
// Create an endpoint per rank, distribute all endpoint addresses (for
// example through a hostfile or a parent process), then call Join.
//
// Sending is asynchronous: a per-peer writer goroutine drains a bounded
// queue and coalesces pending frames into a single vectored write, so
// Send/Isend return at enqueue time and small control frames batch with
// data frames. Payloads above the chunk threshold are streamed as
// interleavable chunk frames (see the wire protocol above).
type TCPEndpoint struct {
	listener net.Listener
	box      *mailbox
	cfg      tcpConfig
	stop     chan struct{} // closed by Close: writers flush and exit

	// Transport counters, always on — the atomics cost nothing measurable
	// next to a socket write. The obs instruments mirror them into a
	// registry once telemetry is attached.
	wireOut      atomic.Int64
	wireIn       atomic.Int64
	framesOut    atomic.Int64
	coalesced    atomic.Int64
	batches      atomic.Int64
	chunksOut    atomic.Int64
	chunksIn     atomic.Int64
	backpressure atomic.Int64
	sendqSat     atomic.Int64
	queueDepth   atomic.Int64
	reconnects   atomic.Int64
	dupsDropped  atomic.Int64

	// flight is the attached flight recorder (nil = detached) and
	// selfRank the world rank Join assigned this endpoint, for event
	// attribution on the read/write loops.
	flight   atomic.Pointer[obs.FlightRecorder]
	selfRank atomic.Int32

	// ded deduplicates retransmitted frames across this endpoint's inbound
	// connections when peers send with retry enabled.
	ded seqDeduper

	obsOut          atomic.Pointer[obs.Counter]
	obsIn           atomic.Pointer[obs.Counter]
	obsCoalesced    atomic.Pointer[obs.Counter]
	obsChunksOut    atomic.Pointer[obs.Counter]
	obsChunksIn     atomic.Pointer[obs.Counter]
	obsBackpressure atomic.Pointer[obs.Counter]
	obsSendqSat     atomic.Pointer[obs.Counter]
	obsQueueDepth   atomic.Pointer[obs.Gauge]
	obsReconnects   atomic.Pointer[obs.Counter]

	mu      sync.Mutex
	peers   map[int]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool
}

// WireStats returns the frame bytes written to and read from peers since
// the endpoint was created, headers included — the quantity that actually
// crossed the network stack.
func (ep *TCPEndpoint) WireStats() (out, in int64) {
	return ep.wireOut.Load(), ep.wireIn.Load()
}

// Stats snapshots every transport counter.
func (ep *TCPEndpoint) Stats() TCPStats {
	ep.mu.Lock()
	peerConns := int64(len(ep.peers))
	ep.mu.Unlock()
	return TCPStats{
		PeerConnections:    peerConns,
		WireOut:            ep.wireOut.Load(),
		WireIn:             ep.wireIn.Load(),
		FramesOut:          ep.framesOut.Load(),
		FramesCoalesced:    ep.coalesced.Load(),
		Batches:            ep.batches.Load(),
		ChunksOut:          ep.chunksOut.Load(),
		ChunksIn:           ep.chunksIn.Load(),
		BackpressureEvents: ep.backpressure.Load(),
		SendqSaturation:    ep.sendqSat.Load(),
		SendQueueDepth:     ep.queueDepth.Load(),
		Reconnects:         ep.reconnects.Load(),
		DupFramesDropped:   ep.dupsDropped.Load(),
	}
}

// attachObs mirrors future transport activity into the given telemetry's
// instruments (nil detaches).
func (ep *TCPEndpoint) attachObs(t *Telemetry) {
	if t == nil {
		ep.obsOut.Store(nil)
		ep.obsIn.Store(nil)
		ep.obsCoalesced.Store(nil)
		ep.obsChunksOut.Store(nil)
		ep.obsChunksIn.Store(nil)
		ep.obsBackpressure.Store(nil)
		ep.obsSendqSat.Store(nil)
		ep.obsQueueDepth.Store(nil)
		ep.obsReconnects.Store(nil)
		ep.flight.Store(nil)
		return
	}
	ep.obsOut.Store(t.tcpOut)
	ep.obsIn.Store(t.tcpIn)
	ep.obsCoalesced.Store(t.tcpCoalesced)
	ep.obsChunksOut.Store(t.tcpChunksOut)
	ep.obsChunksIn.Store(t.tcpChunksIn)
	ep.obsBackpressure.Store(t.tcpBackpressure)
	ep.obsSendqSat.Store(t.tcpSendqSat)
	ep.obsQueueDepth.Store(t.tcpQueueDepth)
	ep.obsReconnects.Store(t.tcpReconnects)
	ep.flight.Store(t.flight)
}

func (ep *TCPEndpoint) countReconnect() {
	ep.reconnects.Add(1)
	ep.obsReconnects.Load().Add(1)
}

func (ep *TCPEndpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *TCPEndpoint) countWireOut(n int64) {
	ep.wireOut.Add(n)
	ep.obsOut.Load().Add(n)
}

func (ep *TCPEndpoint) countWireIn(n int64) {
	ep.wireIn.Add(n)
	ep.obsIn.Load().Add(n)
}

func (ep *TCPEndpoint) countBatch(frames, chunks int64) {
	ep.framesOut.Add(frames)
	ep.batches.Add(1)
	if frames > 1 {
		ep.coalesced.Add(frames)
		ep.obsCoalesced.Load().Add(frames)
	}
	if chunks > 0 {
		ep.chunksOut.Add(chunks)
		ep.obsChunksOut.Load().Add(chunks)
	}
}

func (ep *TCPEndpoint) countChunkIn() {
	ep.chunksIn.Add(1)
	ep.obsChunksIn.Load().Add(1)
}

func (ep *TCPEndpoint) countBackpressure() {
	ep.backpressure.Add(1)
	ep.obsBackpressure.Load().Add(1)
}

// countSaturation records one send-queue saturation occurrence. Distinct
// from countBackpressure only in what consumes it: the warning log is
// one-shot per peer, so scrapes need a counter that keeps moving while
// saturation persists.
func (ep *TCPEndpoint) countSaturation() {
	ep.sendqSat.Add(1)
	ep.obsSendqSat.Load().Add(1)
}

func (ep *TCPEndpoint) queueDepthAdd(n int64) {
	ep.queueDepth.Add(n)
	ep.obsQueueDepth.Load().Add(n)
}

// NewTCPEndpoint binds a listener on bind (e.g. "127.0.0.1:0") and starts
// accepting peer connections. At most one TCPOptions may be passed; with
// none, the process-wide defaults apply (see SetDefaultTCPOptions).
func NewTCPEndpoint(bind string, opts ...TCPOptions) (*TCPEndpoint, error) {
	o := DefaultTCPOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return newTCPEndpointOn(bind, newMailbox(), o)
}

// newTCPEndpointOn is NewTCPEndpoint delivering into a caller-owned
// mailbox — the hook the hierarchical transport uses to land inter-node
// frames directly in a leader rank's existing mailbox.
func newTCPEndpointOn(bind string, box *mailbox, o TCPOptions) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp listen: %w", err)
	}
	ep := &TCPEndpoint{
		listener: l,
		box:      box,
		cfg:      o.resolve(),
		stop:     make(chan struct{}),
		peers:    map[int]*tcpPeer{},
		inbound:  map[net.Conn]struct{}{},
	}
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's listen address to share with peers.
func (ep *TCPEndpoint) Addr() string { return ep.listener.Addr().String() }

func (ep *TCPEndpoint) acceptLoop() {
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return
		}
		ep.cfg.apply(conn)
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			conn.Close()
			return
		}
		ep.inbound[conn] = struct{}{}
		ep.mu.Unlock()
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	dec := newFrameDecoder(ep.box, maxSingleFrame, maxChunkTotal, maxInboundChunks)
	dec.ded = &ep.ded
	dec.onDup = func() { ep.dupsDropped.Add(1) }
	dec.ep = ep
	defer func() {
		conn.Close()
		ep.mu.Lock()
		delete(ep.inbound, conn)
		closed := ep.closed
		ep.mu.Unlock()
		// Incomplete chunk streams died with the connection: unpin their
		// mailbox slots and recycle the reassembly buffers. A retrying
		// sender restarts its streams from offset zero on a fresh
		// connection, so nothing is lost that the sender still owns.
		dec.cleanup()
		if !closed {
			// The connection died while the endpoint is still live: the
			// ranks it carried are (probably) gone. With retry enabled the
			// verdict is deferred one reconnect window so a sender that
			// redials in time is never declared lost.
			for src := range dec.srcs {
				ep.lostAfterGrace(src, fmt.Errorf(
					"mpi: tcp connection from rank %d (%s) died: %w", src, conn.RemoteAddr(), ErrPeerLost))
			}
		}
	}()
	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		wire, typ, err := dec.readFrame(br)
		if err != nil {
			if errors.Is(err, errTCPProto) {
				obs.Warnf("mpi: tcp read from %s: %v (dropping connection)", conn.RemoteAddr(), err)
			}
			return
		}
		ep.countWireIn(wire)
		if typ == frameChunk || typ == frameChunkSeq {
			ep.countChunkIn()
		}
	}
}

// lostAfterGrace marks src unreachable in this endpoint's mailbox —
// immediately without retry, or after one full reconnect window when
// retry is enabled, cancelled if the peer delivers any frame in the
// meantime.
func (ep *TCPEndpoint) lostAfterGrace(src int, err error) {
	if ep.cfg.retryMax <= 0 {
		ep.box.markLost(src, err)
		return
	}
	grace := ep.cfg.retryBackoff << uint(ep.cfg.retryMax)
	go func() {
		before := ep.ded.activityOf(src)
		timer := time.NewTimer(grace)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ep.stop:
			return
		}
		if ep.isClosed() || ep.ded.activityOf(src) != before {
			return
		}
		ep.box.markLost(src, err)
	}()
}

// Join assembles the world communicator for this endpoint. rank is this
// endpoint's world rank and addrs lists every rank's endpoint address in
// rank order (addrs[rank] should be this endpoint's own address).
func (ep *TCPEndpoint) Join(rank int, addrs []string) (*Comm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("mpi: tcp rank %d out of range for %d addresses", rank, len(addrs))
	}
	ep.selfRank.Store(int32(rank))
	c := &Comm{
		rank:     rank,
		group:    identityGroup(len(addrs)),
		tr:       &tcpTransport{ep: ep, addrs: addrs},
		box:      ep.box,
		counters: newTraffic(len(addrs)),
	}
	c.world = c
	return c, nil
}

// Close shuts the endpoint down: new sends are refused, per-peer writers
// flush their queues (bounded by tcpFlushTimeout each), and the listener
// and all connections are closed, failing any receive still blocked on
// the endpoint.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	peers := make([]*tcpPeer, 0, len(ep.peers))
	for _, p := range ep.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(ep.inbound))
	for c := range ep.inbound {
		inbound = append(inbound, c)
	}
	ep.mu.Unlock()

	// Flush: writers drain what is already queued, then exit. A writer
	// wedged on a peer that stopped reading is force-closed under.
	close(ep.stop)
	timeout := time.After(tcpFlushTimeout)
	for _, p := range peers {
		select {
		case <-p.dead:
		case <-timeout:
			p.closeConn()
			<-p.dead
		}
	}
	err := ep.listener.Close()
	for _, p := range peers {
		p.closeConn()
	}
	for _, c := range inbound {
		c.Close()
	}
	ep.box.close(nil)
	return err
}

// tcpPeer is one outgoing connection: a socket, a bounded frame queue,
// and the writer goroutine that drains it.
type tcpPeer struct {
	ep         *tcpEndpointRef
	rank       int
	addr       string
	queue      chan envelope
	dead       chan struct{} // closed when the writer has exited
	nextStream uint32
	wireSeq    uint64 // writer-goroutine only: last stamped sequence number
	warned     atomic.Bool

	connMu sync.Mutex
	conn   net.Conn // swapped on reconnect; guarded for Close's force-close

	errMu sync.Mutex
	err   error // sticky first write error, ErrClosed after clean shutdown
}

func (p *tcpPeer) getConn() net.Conn {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	return p.conn
}

func (p *tcpPeer) setConn(c net.Conn) {
	p.connMu.Lock()
	p.conn = c
	p.connMu.Unlock()
}

func (p *tcpPeer) closeConn() {
	p.connMu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.connMu.Unlock()
}

// reconnect redials the peer after a write failure with bounded
// exponential backoff, returning true once a fresh connection is
// installed. It gives up when the endpoint closes or attempts run out.
func (p *tcpPeer) reconnect() bool {
	cfg := &p.ep.cfg
	p.closeConn()
	for attempt := 0; attempt < cfg.retryMax; attempt++ {
		if p.ep.isClosed() {
			return false
		}
		conn, err := net.Dial("tcp", p.addr)
		if err == nil {
			cfg.apply(conn)
			p.ep.countReconnect()
			if f := p.ep.flight.Load(); f != nil {
				f.Record(obs.FlightEvent{Kind: obs.FlightReconnect, Rank: p.ep.selfRank.Load(), Peer: int32(p.rank)})
			}
			p.setConn(conn)
			return true
		}
		time.Sleep(cfg.retryBackoff << uint(attempt))
	}
	return false
}

// tcpEndpointRef only exists to keep tcpPeer methods readable.
type tcpEndpointRef = TCPEndpoint

func (p *tcpPeer) fail(err error) {
	p.errMu.Lock()
	if p.err == nil {
		if err == nil {
			err = ErrClosed
		}
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *tcpPeer) error() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if p.err == nil {
		return ErrClosed
	}
	return p.err
}

// enqueue hands a frame to the writer, blocking when the queue is full
// (backpressure). The payload's ownership passes to the writer, which
// recycles it into the arena once written.
func (p *tcpPeer) enqueue(e envelope) error {
	select {
	case <-p.dead:
		return p.error()
	default:
	}
	select {
	case p.queue <- e:
		p.ep.queueDepthAdd(1)
		return nil
	default:
	}
	// Queue saturated: record the event, warn once per peer, then apply
	// backpressure by blocking until the writer drains or dies (or the
	// sender's deadline, when it set one, expires). The saturation counter
	// moves on every occurrence — the log line does not.
	p.ep.countBackpressure()
	p.ep.countSaturation()
	if f := p.ep.flight.Load(); f != nil {
		f.Record(obs.FlightEvent{
			Kind: obs.FlightSaturation, Rank: p.ep.selfRank.Load(), Peer: int32(p.rank),
			Tag: int32(e.tag), Round: int32(e.tc.Round), Exchange: e.tc.Exchange, Bytes: int64(len(e.data)),
		})
	}
	if p.warned.CompareAndSwap(false, true) {
		obs.Warnf("mpi: tcp send queue to rank %d saturated (cap %d frames); backpressure engaged — slow consumer or undersized SendQueueLen",
			p.rank, cap(p.queue))
	}
	if e.cancel != nil {
		select {
		case p.queue <- e:
			p.ep.queueDepthAdd(1)
			return nil
		case <-p.dead:
			return p.error()
		case <-e.cancel:
			PutBuffer(e.data)
			return ErrExchangeTimeout
		}
	}
	select {
	case p.queue <- e:
		p.ep.queueDepthAdd(1)
		return nil
	case <-p.dead:
		return p.error()
	}
}

// outStream is a large message being chunk-streamed to the peer.
type outStream struct {
	e   envelope
	id  uint32
	off int
	seq uint64 // idempotency seq shared by every chunk of the stream
}

// writeLoop drains the queue, coalescing pending frames into vectored
// writes and interleaving chunk sub-frames of large messages so small
// control traffic never waits behind a bulk payload. It exits when the
// endpoint closes (after flushing) or the connection fails.
func (p *tcpPeer) writeLoop() {
	ep := p.ep
	cfg := ep.cfg
	var (
		iov       [][]byte // reused iovec backing
		hdrs      []byte   // reused header arena; pointers into it live in iov
		items     []envelope
		carry     []envelope // whole messages to retransmit after a reconnect
		streams   []*outStream
		batchMsgs []envelope   // whole messages in the current batch (payloads still owned)
		batchDone []*outStream // streams fully emitted in the current batch
		loopErr   error
		draining  bool
	)
	defer func() {
		p.fail(loopErr)
		close(p.dead)
		// Discard anything still queued so blocked senders observe the
		// death instead of a silent hang. Payloads the writer owns go back
		// to the arena; borrowed (zero-copy) payloads belong to a blocked
		// caller, who is released with the loop error instead.
		for {
			select {
			case e := <-p.queue:
				ep.queueDepthAdd(-1)
				if e.done != nil {
					e.done <- p.error()
				} else {
					PutBuffer(e.data)
				}
			default:
				for _, s := range streams {
					if s.e.done != nil {
						s.e.done <- p.error()
					} else {
						PutBuffer(s.e.data)
					}
				}
				return
			}
		}
	}()
	// stamp returns the idempotency sequence number for a message: a
	// fault-injection layer above may have stamped one already (unique per
	// link); otherwise, with retry enabled, the writer assigns its own.
	// Zero means "unsequenced" and selects the v2 frame types.
	stamp := func(e *envelope) uint64 {
		if e.seq != 0 {
			return e.seq
		}
		if cfg.retryMax > 0 {
			p.wireSeq++
			return p.wireSeq
		}
		return 0
	}
	for {
		items = items[:0]
		if len(carry) > 0 {
			// Retransmission after a reconnect: the interrupted batch's
			// whole messages go out again ahead of new queue traffic.
			items = append(items, carry...)
			carry = carry[:0]
		}
		if !draining {
			if len(streams) == 0 && len(items) == 0 {
				// Nothing in flight: block for work or shutdown.
				select {
				case e := <-p.queue:
					ep.queueDepthAdd(-1)
					items = append(items, e)
				case <-p.ep.stop:
					draining = true
				}
			} else {
				select {
				case e := <-p.queue:
					ep.queueDepthAdd(-1)
					items = append(items, e)
				case <-p.ep.stop:
					draining = true
				default:
					// Streams in flight keep the loop spinning.
				}
			}
		}
	collect:
		for len(items) < cfg.batch {
			select {
			case e := <-p.queue:
				ep.queueDepthAdd(-1)
				items = append(items, e)
			default:
				break collect
			}
		}
		if len(items) == 0 && len(streams) == 0 {
			if draining {
				return
			}
			continue
		}

		// Reserve header space up front: growing hdrs mid-batch would
		// invalidate the pointers already appended to the iovec. Each item
		// contributes at most one header+extensions and may open a stream
		// that advances once more in the same batch.
		need := (2*len(items) + len(streams)) * (tcpFrameHeader + tcpChunkExt + tcpSeqExt + tcpTraceExt)
		if cap(hdrs) < need {
			hdrs = make([]byte, 0, need)
		} else {
			hdrs = hdrs[:0]
		}
		iov = iov[:0]
		batchMsgs = batchMsgs[:0]
		batchDone = batchDone[:0]
		var frames, chunks int64

		grab := func(n int) []byte {
			h := hdrs[len(hdrs) : len(hdrs)+n]
			hdrs = hdrs[:len(hdrs)+n]
			return h
		}
		putHeader := func(h []byte, typ, flags byte, e *envelope, n int) {
			h[0], h[1], h[2], h[3] = typ, flags, 0, 0
			binary.LittleEndian.PutUint32(h[4:], e.ctx)
			binary.LittleEndian.PutUint32(h[8:], uint32(e.src))
			binary.LittleEndian.PutUint32(h[12:], uint32(int32(e.tag)))
			binary.LittleEndian.PutUint32(h[16:], uint32(n))
		}
		// putTraceExt appends the trace-context extension at the tail of the
		// header block (after chunk and seq extensions).
		putTraceExt := func(h []byte, tc TraceContext) {
			off := len(h) - tcpTraceExt
			binary.LittleEndian.PutUint64(h[off:], tc.Exchange)
			binary.LittleEndian.PutUint32(h[off+8:], tc.Round)
			binary.LittleEndian.PutUint32(h[off+12:], tc.Span)
		}
		emitChunk := func(s *outStream) {
			n := len(s.e.data) - s.off
			if n > cfg.chunkSize {
				n = cfg.chunkSize
			}
			ext := tcpChunkExt
			typ := frameChunk
			if s.seq != 0 {
				ext += tcpSeqExt
				typ = frameChunkSeq
			}
			flags := byte(0)
			if s.e.tc.Exchange != 0 {
				flags = tcpFlagTrace
				ext += tcpTraceExt
			}
			h := grab(tcpFrameHeader + ext)
			putHeader(h, typ, flags, &s.e, n)
			binary.LittleEndian.PutUint32(h[tcpFrameHeader:], s.id)
			binary.LittleEndian.PutUint32(h[tcpFrameHeader+4:], 0)
			binary.LittleEndian.PutUint64(h[tcpFrameHeader+8:], uint64(len(s.e.data)))
			if s.seq != 0 {
				binary.LittleEndian.PutUint64(h[tcpFrameHeader+tcpChunkExt:], s.seq)
			}
			if flags != 0 {
				putTraceExt(h, s.e.tc)
			}
			iov = append(iov, h, s.e.data[s.off:s.off+n])
			s.off += n
			frames++
			chunks++
		}

		// Queued frames first, in order: a large message opens a stream and
		// emits its first chunk at its queue position, pinning its mailbox
		// slot at the receiver so matching order is preserved.
		for _, e := range items {
			if cfg.chunk && len(e.data) > cfg.chunkThreshold {
				s := &outStream{e: e, id: p.nextStream, seq: stamp(&e)}
				p.nextStream++
				emitChunk(s)
				if s.off < len(s.e.data) {
					streams = append(streams, s)
				} else {
					batchDone = append(batchDone, s)
				}
				continue
			}
			seq := stamp(&e)
			e.seq = seq
			ext := 0
			typ := frameMsg
			if seq != 0 {
				ext += tcpSeqExt
				typ = frameMsgSeq
			}
			flags := byte(0)
			if e.tc.Exchange != 0 {
				flags = tcpFlagTrace
				ext += tcpTraceExt
			}
			h := grab(tcpFrameHeader + ext)
			putHeader(h, typ, flags, &e, len(e.data))
			if seq != 0 {
				binary.LittleEndian.PutUint64(h[tcpFrameHeader:], seq)
			}
			if flags != 0 {
				putTraceExt(h, e.tc)
			}
			iov = append(iov, h)
			if len(e.data) > 0 {
				iov = append(iov, e.data)
			}
			batchMsgs = append(batchMsgs, e)
			frames++
		}
		// Then one more chunk per in-flight stream, round-robin.
		live := streams[:0]
		for _, s := range streams {
			emitChunk(s)
			if s.off < len(s.e.data) {
				live = append(live, s)
			} else {
				batchDone = append(batchDone, s)
			}
		}
		streams = live

		conn := p.getConn()
		if draining {
			conn.SetWriteDeadline(time.Now().Add(tcpFlushTimeout)) //nolint:errcheck
		}
		wb := net.Buffers(iov)
		nw, werr := wb.WriteTo(conn)
		ep.countWireOut(nw)
		ep.countBatch(frames, chunks)
		if werr != nil {
			if cfg.retryMax > 0 && !draining && p.reconnect() {
				// At-least-once retransmission: the whole interrupted batch
				// goes out again on the fresh connection, and in-flight
				// chunk streams restart from offset zero (the receiver's
				// partial reassembly state died with the old connection).
				// Sequence numbers make the replays idempotent.
				carry = append(carry[:0], batchMsgs...)
				for _, s := range batchDone {
					s.off = 0
					streams = append(streams, s)
				}
				for _, s := range streams {
					s.off = 0
				}
				continue
			}
			loopErr = fmt.Errorf("mpi: tcp send to rank %d: %v: %w", p.rank, werr, ErrPeerLost)
			for _, e := range batchMsgs {
				PutBuffer(e.data)
			}
			for _, s := range batchDone {
				if s.e.done != nil {
					s.e.done <- loopErr
				} else {
					PutBuffer(s.e.data)
				}
			}
			return
		}
		for _, e := range batchMsgs {
			PutBuffer(e.data)
		}
		for _, s := range batchDone {
			if s.e.done != nil {
				s.e.done <- nil
			} else {
				PutBuffer(s.e.data)
			}
		}
	}
}

type tcpTransport struct {
	ep    *TCPEndpoint
	addrs []string
}

func (t *tcpTransport) send(dst int, e envelope) error {
	if dst < 0 || dst >= len(t.addrs) {
		return fmt.Errorf("mpi: tcp world rank %d out of range", dst)
	}
	if err := checkFrameSize(len(e.data), &t.ep.cfg); err != nil {
		return err
	}
	p, err := t.ep.dial(dst, t.addrs[dst])
	if err != nil {
		return err
	}
	return p.enqueue(e)
}

// checkFrameSize rejects messages that cannot be expressed on the wire:
// a payload that will travel as a single frame must fit the header's u32
// length field. Chunked messages have no such limit (the decoder's
// maxChunkTotal bounds them instead).
func checkFrameSize(n int, cfg *tcpConfig) error {
	chunked := cfg.chunk && n > cfg.chunkThreshold
	if !chunked && uint64(n) > maxSingleFrame {
		return fmt.Errorf("mpi: %d-byte message with chunked streaming disabled: %w", n, ErrFrameTooLarge)
	}
	return nil
}

// sendZeroCopy implements the zeroCopySender capability for payloads
// above the chunk threshold: the writer streams chunks directly from the
// caller's buffer — no staging copy, no arena allocation — and the call
// blocks until the last chunk is written (or the writer dies). The wait
// preserves Send's contract that the buffer is reusable on return, and
// because the envelope takes its queue position at enqueue time, ordering
// with surrounding sends is untouched.
func (t *tcpTransport) sendZeroCopy(dst int, e envelope) (bool, error) {
	cfg := &t.ep.cfg
	if !cfg.chunk || len(e.data) <= cfg.chunkThreshold {
		return false, nil
	}
	if dst < 0 || dst >= len(t.addrs) {
		return true, fmt.Errorf("mpi: tcp world rank %d out of range", dst)
	}
	p, err := t.ep.dial(dst, t.addrs[dst])
	if err != nil {
		return true, err
	}
	done := make(chan error, 1)
	e.done = done
	if err := p.enqueue(e); err != nil {
		return true, err
	}
	return true, <-done
}

func (t *tcpTransport) close() error { return t.ep.Close() }

// dial returns the peer handle (socket, queue, writer) for dst,
// establishing it on first use. Messages to self also travel through the
// loopback socket so the TCP path is exercised uniformly.
func (ep *TCPEndpoint) dial(dst int, addr string) (*tcpPeer, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, ErrClosed
	}
	if p, ok := ep.peers[dst]; ok {
		return p, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp dial rank %d (%s): %v: %w", dst, addr, err, ErrPeerLost)
	}
	ep.cfg.apply(conn)
	p := &tcpPeer{
		ep:    ep,
		rank:  dst,
		addr:  addr,
		conn:  conn,
		queue: make(chan envelope, ep.cfg.queueLen),
		dead:  make(chan struct{}),
	}
	ep.peers[dst] = p
	go p.writeLoop()
	return p, nil
}

// frameDecoder decodes wire-protocol-v2 frames from a connection and
// reassembles chunk streams. Payload buffers come from the staging arena
// and chunks are read straight into their final reassembly buffer, so
// the steady-state receive path performs no allocation and exactly one
// copy (kernel to arena). Not safe for concurrent use; one per
// connection.
type frameDecoder struct {
	sink       chunkSink
	maxFrame   uint64
	maxTotal   uint64
	maxStreams int
	streams    map[uint32]*inStream
	// ded, when non-nil, drops sequenced frames (v3) whose sequence
	// number was already delivered — the receive half of reconnect-retry.
	ded *seqDeduper
	// onDup, when non-nil, is called once per dropped replay.
	onDup func()
	// srcs records every world rank that delivered at least one frame on
	// this connection, so a dying connection can mark exactly those ranks
	// lost.
	srcs map[int]struct{}
	// ep, when non-nil, is the owning endpoint — the decoder mirrors
	// frame/chunk/dup events into its flight recorder when one is
	// attached. Standalone decoders (tests, fuzzing) leave it nil.
	ep *TCPEndpoint
	// hdr is the header/extension read scratch. A local array would
	// escape through the io.Reader interface and cost one allocation per
	// frame; as a decoder field it is allocated once per connection.
	hdr [tcpFrameHeader + tcpChunkExt + tcpSeqExt + tcpTraceExt]byte
}

// recordFlight mirrors one decode-path event into the endpoint's flight
// recorder. Free when no endpoint or recorder is attached.
func (d *frameDecoder) recordFlight(ev obs.FlightEvent) {
	if d.ep == nil {
		return
	}
	f := d.ep.flight.Load()
	if f == nil {
		return
	}
	ev.Rank = d.ep.selfRank.Load()
	f.Record(ev)
}

// chunkSink is where decoded messages land; satisfied by *mailbox.
type chunkSink interface {
	put(e envelope)
	complete(p *chunkPending)
	removePending(p *chunkPending)
}

// inStream is a chunk stream being reassembled. The envelope (and the
// arena buffer its data field points to) is already pinned in the
// mailbox; fill tracks how much of it has arrived. A discard stream (a
// replay of an already-delivered message) reassembles into a throwaway
// buffer and is never pinned.
type inStream struct {
	env     envelope
	fill    int
	seq     uint64
	discard bool
}

func newFrameDecoder(sink chunkSink, maxFrame, maxTotal uint64, maxStreams int) *frameDecoder {
	return &frameDecoder{
		sink:       sink,
		maxFrame:   maxFrame,
		maxTotal:   maxTotal,
		maxStreams: maxStreams,
		streams:    map[uint32]*inStream{},
	}
}

// readFrame consumes one frame, delivering completed messages to the
// sink. It returns the wire bytes consumed and the frame type. Errors
// wrapping errTCPProto mean the stream is desynchronized and the
// connection must be dropped.
func (d *frameDecoder) readFrame(r io.Reader) (wire int64, typ byte, err error) {
	hdr := d.hdr[:tcpFrameHeader]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, err
	}
	typ = hdr[0]
	flags := hdr[1]
	ctx := binary.LittleEndian.Uint32(hdr[4:])
	src := int(binary.LittleEndian.Uint32(hdr[8:]))
	tag := int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	n := int(binary.LittleEndian.Uint32(hdr[16:]))
	if flags&^tcpFlagTrace != 0 {
		return 0, typ, fmt.Errorf("%w: unknown header flags %#x", errTCPProto, flags)
	}
	traced := flags&tcpFlagTrace != 0
	if _, ok := d.srcs[src]; !ok {
		if d.srcs == nil {
			d.srcs = make(map[int]struct{})
		}
		d.srcs[src] = struct{}{}
	}

	switch typ {
	case frameMsg, frameMsgSeq:
		var seq uint64
		var tc TraceContext
		wire = int64(tcpFrameHeader)
		extLen := 0
		if typ == frameMsgSeq {
			extLen += tcpSeqExt
		}
		if traced {
			extLen += tcpTraceExt
		}
		if extLen > 0 {
			ext := d.hdr[tcpFrameHeader : tcpFrameHeader+extLen]
			if _, err := io.ReadFull(r, ext); err != nil {
				return 0, typ, err
			}
			if typ == frameMsgSeq {
				seq = binary.LittleEndian.Uint64(ext)
				ext = ext[tcpSeqExt:]
			}
			if traced {
				tc = TraceContext{
					Exchange: binary.LittleEndian.Uint64(ext),
					Round:    binary.LittleEndian.Uint32(ext[8:]),
					Span:     binary.LittleEndian.Uint32(ext[12:]),
				}
			}
			wire += int64(extLen)
		}
		if uint64(n) > d.maxFrame {
			return 0, typ, fmt.Errorf("%w: %d-byte frame exceeds limit", errTCPProto, n)
		}
		var data []byte
		if n > 0 {
			data = GetBuffer(n)
			if _, err := io.ReadFull(r, data); err != nil {
				PutBuffer(data)
				return 0, typ, err
			}
		}
		if typ == frameMsgSeq && d.ded != nil && !d.ded.commit(ctx, src, seq) {
			// Replay of a frame already delivered on a previous connection.
			PutBuffer(data)
			if d.onDup != nil {
				d.onDup()
			}
			d.recordFlight(obs.FlightEvent{
				Kind: obs.FlightDup, Peer: int32(src), Tag: int32(tag), Seq: seq,
				Round: int32(tc.Round), Exchange: tc.Exchange, Bytes: int64(n),
			})
			return wire + int64(n), typ, nil
		}
		d.recordFlight(obs.FlightEvent{
			Kind: obs.FlightFrameIn, Peer: int32(src), Tag: int32(tag), Seq: seq,
			Round: int32(tc.Round), Exchange: tc.Exchange, Bytes: int64(n),
		})
		d.sink.put(envelope{ctx: ctx, src: src, tag: tag, data: data, tc: tc})
		return wire + int64(n), typ, nil

	case frameChunk, frameChunkSeq:
		extLen := tcpChunkExt
		if typ == frameChunkSeq {
			extLen += tcpSeqExt
		}
		traceOff := extLen
		if traced {
			extLen += tcpTraceExt
		}
		ext := d.hdr[tcpFrameHeader : tcpFrameHeader+extLen]
		if _, err := io.ReadFull(r, ext); err != nil {
			return 0, typ, err
		}
		stream := binary.LittleEndian.Uint32(ext[0:])
		total := binary.LittleEndian.Uint64(ext[8:])
		var seq uint64
		if typ == frameChunkSeq {
			seq = binary.LittleEndian.Uint64(ext[tcpChunkExt:])
		}
		var tc TraceContext
		if traced {
			tc = TraceContext{
				Exchange: binary.LittleEndian.Uint64(ext[traceOff:]),
				Round:    binary.LittleEndian.Uint32(ext[traceOff+8:]),
				Span:     binary.LittleEndian.Uint32(ext[traceOff+12:]),
			}
		}
		if total == 0 || total > d.maxTotal {
			return 0, typ, fmt.Errorf("%w: chunk stream of %d bytes out of range", errTCPProto, total)
		}
		st, ok := d.streams[stream]
		if !ok {
			if len(d.streams) >= d.maxStreams {
				return 0, typ, fmt.Errorf("%w: more than %d concurrent chunk streams", errTCPProto, d.maxStreams)
			}
			st = &inStream{env: envelope{
				ctx: ctx, src: src, tag: tag,
				data: GetBuffer(int(total)),
				pend: &chunkPending{},
				tc:   tc,
			}, seq: seq}
			if typ == frameChunkSeq && d.ded != nil && d.ded.committed(ctx, src, seq) {
				// Replay of a stream that already completed: reassemble to
				// keep the wire in sync, then throw the payload away.
				st.discard = true
			}
			d.streams[stream] = st
			d.recordFlight(obs.FlightEvent{
				Kind: obs.FlightChunkStart, Peer: int32(src), Tag: int32(tag), Seq: seq,
				Round: int32(tc.Round), Exchange: tc.Exchange, Bytes: int64(total),
			})
			if !st.discard {
				// Pin the message's matching position now; it becomes
				// matchable when the last chunk lands.
				d.sink.put(st.env)
			}
		} else if st.env.ctx != ctx || st.env.src != src || st.env.tag != tag || uint64(len(st.env.data)) != total {
			return 0, typ, fmt.Errorf("%w: chunk stream %d changed identity mid-flight", errTCPProto, stream)
		}
		if uint64(n) > d.maxFrame || uint64(st.fill)+uint64(n) > total {
			return 0, typ, fmt.Errorf("%w: chunk overflows stream %d (%d+%d of %d)", errTCPProto, stream, st.fill, n, total)
		}
		if n > 0 {
			if _, err := io.ReadFull(r, st.env.data[st.fill:st.fill+n]); err != nil {
				return 0, typ, err
			}
			st.fill += n
		}
		if uint64(st.fill) == total {
			d.finishStream(st)
			delete(d.streams, stream)
		}
		return int64(tcpFrameHeader) + int64(extLen) + int64(n), typ, nil

	default:
		return 0, typ, fmt.Errorf("%w: unknown frame type %d", errTCPProto, typ)
	}
}

// finishStream commits a fully reassembled stream: discarded replays are
// recycled, and a replay that raced in through another connection after
// this stream was pinned is unpinned again.
func (d *frameDecoder) finishStream(st *inStream) {
	if st.discard {
		PutBuffer(st.env.data)
		if d.onDup != nil {
			d.onDup()
		}
		d.recordFlight(obs.FlightEvent{
			Kind: obs.FlightDup, Peer: int32(st.env.src), Tag: int32(st.env.tag), Seq: st.seq,
			Round: int32(st.env.tc.Round), Exchange: st.env.tc.Exchange, Bytes: int64(len(st.env.data)),
		})
		return
	}
	if st.seq != 0 && d.ded != nil && !d.ded.commit(st.env.ctx, st.env.src, st.seq) {
		d.sink.removePending(st.env.pend)
		if d.onDup != nil {
			d.onDup()
		}
		d.recordFlight(obs.FlightEvent{
			Kind: obs.FlightDup, Peer: int32(st.env.src), Tag: int32(st.env.tag), Seq: st.seq,
			Round: int32(st.env.tc.Round), Exchange: st.env.tc.Exchange, Bytes: int64(len(st.env.data)),
		})
		return
	}
	d.recordFlight(obs.FlightEvent{
		Kind: obs.FlightChunkDone, Peer: int32(st.env.src), Tag: int32(st.env.tag), Seq: st.seq,
		Round: int32(st.env.tc.Round), Exchange: st.env.tc.Exchange, Bytes: int64(len(st.env.data)),
	})
	d.sink.complete(st.env.pend)
}

// cleanup releases the reassembly state of streams the connection left
// incomplete: pinned mailbox envelopes are unlinked (recycling their
// buffers), discard buffers go straight back to the arena.
func (d *frameDecoder) cleanup() {
	for id, st := range d.streams {
		if st.discard {
			PutBuffer(st.env.data)
		} else {
			d.sink.removePending(st.env.pend)
		}
		delete(d.streams, id)
	}
}

// RunTCP executes body on n ranks over loopback TCP.
//
// Deprecated: use Launch(n, body, WithTransport(TransportTCP)).
func RunTCP(n int, body func(c *Comm) error) error {
	return Launch(n, body, WithTransport(TransportTCP))
}

// RunTCPOpts is RunTCP with explicit transport options.
//
// Deprecated: use Launch(n, body, WithTCPOptions(opts)).
func RunTCPOpts(n int, opts TCPOptions, body func(c *Comm) error) error {
	return Launch(n, body, WithTCPOptions(opts))
}

// RunTCPChaos is RunTCPOpts with an explicit fault injector.
//
// Deprecated: use Launch(n, body, WithTCPOptions(opts), WithFaultInjector(inj)).
func RunTCPChaos(n int, opts TCPOptions, inj FaultInjector, body func(c *Comm) error) error {
	return Launch(n, body, WithTCPOptions(opts), WithFaultInjector(inj))
}

// launchTCP runs body on n ranks, one goroutine per rank, with all
// inter-rank traffic carried over loopback TCP sockets; see Launch for
// the contract. It is the socket-transport twin of launchInProc and
// validates that DDR behaves identically when messages cross a real
// network stack. Outgoing messages pass through inj (when non-nil)
// before reaching the socket, and a severed link notifies the
// destination rank's mailbox so blocked receivers fail with ErrPeerLost
// instead of hanging.
func launchTCP(n int, opts TCPOptions, inj FaultInjector, body func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	eps := make([]*TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := NewTCPEndpoint("127.0.0.1:0", opts)
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return err
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	comms := make([]*Comm, n)
	fts := make([]*faultTransport, 0, n)
	for rank := range comms {
		c, err := eps[rank].Join(rank, addrs)
		if err != nil {
			for _, ep := range eps {
				ep.Close()
			}
			return err
		}
		if inj != nil {
			ft := newFaultTransport(c.tr, inj, rank, func(dst, src int, err error) {
				eps[dst].box.markLost(src, err)
			})
			c.tr = ft
			fts = append(fts, ft)
		}
		comms[rank] = c
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := body(comms[rank]); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				for _, ep := range eps {
					ep.box.close(fmt.Errorf("mpi: rank %d failed: %w", rank, err))
				}
			}
		}(rank)
	}
	wg.Wait()
	// Fault transports flush their queued traffic into the raw transport
	// (and close it) before the endpoints shut down for good.
	for _, ft := range fts {
		ft.close()
	}
	for _, ep := range eps {
		ep.Close()
	}
	return errors.Join(errs...)
}
