package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"ddr/internal/obs"
)

// tcpFrameHeader is ctx(u32) src(u32) tag(i32) len(u32), little endian.
const tcpFrameHeader = 16

// TCPEndpoint is one rank's attachment point to a TCP-transported world.
// Create an endpoint per rank, distribute all endpoint addresses (for
// example through a hostfile or a parent process), then call Join.
type TCPEndpoint struct {
	listener net.Listener
	box      *mailbox

	// Frame-level wire accounting (headers included), always on — the
	// atomics cost nothing measurable next to a socket write. The obs
	// counters mirror them into a registry once telemetry is attached.
	wireOut atomic.Int64
	wireIn  atomic.Int64
	obsOut  atomic.Pointer[obs.Counter]
	obsIn   atomic.Pointer[obs.Counter]

	mu     sync.Mutex
	conns  map[int]*tcpConn
	closed bool
}

// WireStats returns the frame bytes written to and read from peers since
// the endpoint was created, including the 16-byte frame headers — the
// quantity that actually crossed the network stack.
func (ep *TCPEndpoint) WireStats() (out, in int64) {
	return ep.wireOut.Load(), ep.wireIn.Load()
}

// setWireCounters mirrors future wire traffic into the given obs
// counters (nil detaches).
func (ep *TCPEndpoint) setWireCounters(out, in *obs.Counter) {
	ep.obsOut.Store(out)
	ep.obsIn.Store(in)
}

func (ep *TCPEndpoint) countWireOut(n int64) {
	ep.wireOut.Add(n)
	ep.obsOut.Load().Add(n)
}

func (ep *TCPEndpoint) countWireIn(n int64) {
	ep.wireIn.Add(n)
	ep.obsIn.Load().Add(n)
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewTCPEndpoint binds a listener on bind (e.g. "127.0.0.1:0") and starts
// accepting peer connections.
func NewTCPEndpoint(bind string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp listen: %w", err)
	}
	ep := &TCPEndpoint{
		listener: l,
		box:      newMailbox(),
		conns:    map[int]*tcpConn{},
	}
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the endpoint's listen address to share with peers.
func (ep *TCPEndpoint) Addr() string { return ep.listener.Addr().String() }

func (ep *TCPEndpoint) acceptLoop() {
	for {
		conn, err := ep.listener.Accept()
		if err != nil {
			return
		}
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [tcpFrameHeader]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		ctx := binary.LittleEndian.Uint32(hdr[0:])
		src := int(binary.LittleEndian.Uint32(hdr[4:]))
		tag := int(int32(binary.LittleEndian.Uint32(hdr[8:])))
		n := binary.LittleEndian.Uint32(hdr[12:])
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		ep.countWireIn(int64(tcpFrameHeader) + int64(n))
		ep.box.put(envelope{ctx: ctx, src: src, tag: tag, data: data})
	}
}

// Join assembles the world communicator for this endpoint. rank is this
// endpoint's world rank and addrs lists every rank's endpoint address in
// rank order (addrs[rank] should be this endpoint's own address).
func (ep *TCPEndpoint) Join(rank int, addrs []string) (*Comm, error) {
	if rank < 0 || rank >= len(addrs) {
		return nil, fmt.Errorf("mpi: tcp rank %d out of range for %d addresses", rank, len(addrs))
	}
	c := &Comm{
		rank:     rank,
		group:    identityGroup(len(addrs)),
		tr:       &tcpTransport{ep: ep, addrs: addrs},
		box:      ep.box,
		counters: newTraffic(len(addrs)),
	}
	c.world = c
	return c, nil
}

// Close shuts the endpoint down, releasing its listener and connections
// and failing any receive still blocked on it.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	conns := ep.conns
	ep.conns = map[int]*tcpConn{}
	ep.mu.Unlock()

	err := ep.listener.Close()
	for _, tc := range conns {
		tc.conn.Close()
	}
	ep.box.close(nil)
	return err
}

type tcpTransport struct {
	ep    *TCPEndpoint
	addrs []string
}

func (t *tcpTransport) send(dst int, e envelope) error {
	if dst < 0 || dst >= len(t.addrs) {
		return fmt.Errorf("mpi: tcp world rank %d out of range", dst)
	}
	if len(e.data) > 1<<31-1 {
		return fmt.Errorf("mpi: tcp message of %d bytes exceeds frame limit", len(e.data))
	}
	tc, err := t.ep.dial(dst, t.addrs[dst])
	if err != nil {
		return err
	}
	var hdr [tcpFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], e.ctx)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.src))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(e.tag)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(e.data)))

	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("mpi: tcp send header: %w", err)
	}
	if _, err := tc.conn.Write(e.data); err != nil {
		return fmt.Errorf("mpi: tcp send payload: %w", err)
	}
	t.ep.countWireOut(int64(tcpFrameHeader) + int64(len(e.data)))
	return nil
}

func (t *tcpTransport) close() error { return t.ep.Close() }

// dial returns the cached write connection to dst, establishing it on
// first use. Messages to self also travel through the loopback socket so
// the TCP path is exercised uniformly.
func (ep *TCPEndpoint) dial(dst int, addr string) (*tcpConn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, ErrClosed
	}
	if tc, ok := ep.conns[dst]; ok {
		return tc, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: tcp dial rank %d (%s): %w", dst, addr, err)
	}
	tc := &tcpConn{conn: conn}
	ep.conns[dst] = tc
	return tc, nil
}

// RunTCP executes body on n ranks, one goroutine per rank, with all
// inter-rank traffic carried over loopback TCP sockets. It is the
// socket-transport twin of Run and is used to validate that DDR behaves
// identically when messages cross a real network stack.
func RunTCP(n int, body func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size %d must be positive", n)
	}
	eps := make([]*TCPEndpoint, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := NewTCPEndpoint("127.0.0.1:0")
		if err != nil {
			for _, prev := range eps[:i] {
				prev.Close()
			}
			return err
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := eps[rank].Join(rank, addrs)
			if err != nil {
				errs[rank] = err
				return
			}
			if err := body(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				for _, ep := range eps {
					ep.box.close(fmt.Errorf("mpi: rank %d failed: %w", rank, err))
				}
			}
		}(rank)
	}
	wg.Wait()
	for _, ep := range eps {
		ep.Close()
	}
	return errors.Join(errs...)
}
