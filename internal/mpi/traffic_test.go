package mpi

import (
	"fmt"
	"testing"
)

func TestTrafficCountsP2P(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if err := c.Send(1, 2, make([]byte, 50)); err != nil {
				return err
			}
			s := c.Traffic()
			if s.MessagesSent != 2 || s.BytesSent != 150 {
				return fmt.Errorf("sender stats %+v", s)
			}
			return nil
		}
		if _, _, _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if _, _, _, err := c.Recv(0, 2); err != nil {
			return err
		}
		s := c.Traffic()
		if s.MessagesRecv != 2 || s.BytesRecv != 150 {
			return fmt.Errorf("receiver stats %+v", s)
		}
		return nil
	})
}

func TestTrafficSharedAcrossSplit(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		c.ResetTraffic()
		if c.Rank() == 0 {
			if err := sub.Send(1, 3, make([]byte, 64)); err != nil {
				return err
			}
			// The parent sees the sub-communicator's send.
			if s := c.Traffic(); s.BytesSent != 64 {
				return fmt.Errorf("parent stats %+v", s)
			}
			return nil
		}
		_, _, _, err = sub.Recv(0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficCollectivesCounted(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		c.ResetTraffic()
		if _, err := c.Allgather(make([]byte, 10)); err != nil {
			return err
		}
		s := c.Traffic()
		if s.MessagesSent == 0 && s.MessagesRecv == 0 {
			return fmt.Errorf("collective produced no counted traffic on rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficNilSafe(t *testing.T) {
	var c Comm
	s := c.Traffic()
	if s.MessagesSent != 0 || s.BytesSent != 0 || s.MessagesRecv != 0 || s.BytesRecv != 0 {
		t.Errorf("zero comm stats %+v", s)
	}
	if s.PeerBytesSent != nil || s.PeerBytesRecv != nil {
		t.Errorf("zero comm should have no peer matrices: %+v", s)
	}
	c.ResetTraffic() // must not panic
}

func TestTrafficPerPeerMatrix(t *testing.T) {
	forEachTransport(t, 3, func(c *Comm) error {
		// Rank 0 sends distinct sizes to 1 and 2.
		switch c.Rank() {
		case 0:
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if err := c.Send(2, 1, make([]byte, 200)); err != nil {
				return err
			}
			s := c.Traffic()
			if s.PeerBytesSent[1] != 100 || s.PeerBytesSent[2] != 200 || s.PeerBytesSent[0] != 0 {
				return fmt.Errorf("sender matrix %v", s.PeerBytesSent)
			}
			if s.BytesSent != 300 {
				return fmt.Errorf("total %d", s.BytesSent)
			}
		default:
			if _, _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			s := c.Traffic()
			want := int64(100 * c.Rank())
			if s.PeerBytesRecv[0] != want {
				return fmt.Errorf("rank %d recv matrix %v, want %d from rank 0", c.Rank(), s.PeerBytesRecv, want)
			}
		}
		return nil
	})
}

// The per-peer matrices must decompose the collective totals exactly: a
// collective is nothing but point-to-point messages, so on every rank
// sum(PeerBytesSent) == BytesSent (and likewise for receives), and
// across ranks the matrices are transposes of one another.
func TestCollectiveTrafficDecomposes(t *testing.T) {
	const n = 4
	stats := make([]TrafficStats, n)
	err := Run(n, func(c *Comm) error {
		if _, err := c.Allgather(make([]byte, 32*(c.Rank()+1))); err != nil {
			return err
		}
		if _, err := c.Alltoallv(func() [][]byte {
			out := make([][]byte, n)
			for i := range out {
				out[i] = make([]byte, 8+c.Rank()+i)
			}
			return out
		}()); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		stats[c.Rank()] = c.Traffic()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		var sent, recv int64
		for _, b := range s.PeerBytesSent {
			sent += b
		}
		for _, b := range s.PeerBytesRecv {
			recv += b
		}
		if sent != s.BytesSent {
			t.Errorf("rank %d: peer sends sum to %d, total says %d", r, sent, s.BytesSent)
		}
		if recv != s.BytesRecv {
			t.Errorf("rank %d: peer recvs sum to %d, total says %d", r, recv, s.BytesRecv)
		}
	}
	// What a sent to b, b must have received from a. (Everything posted
	// was consumed: Allgather/Alltoallv/Barrier leave no message queued.)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if got, want := stats[b].PeerBytesRecv[a], stats[a].PeerBytesSent[b]; got != want {
				t.Errorf("rank %d -> %d: sent %d but received %d", a, b, want, got)
			}
		}
	}
}
