package mpi

import (
	"fmt"
	"testing"
)

func TestTrafficCountsP2P(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, make([]byte, 100)); err != nil {
				return err
			}
			if err := c.Send(1, 2, make([]byte, 50)); err != nil {
				return err
			}
			s := c.Traffic()
			if s.MessagesSent != 2 || s.BytesSent != 150 {
				return fmt.Errorf("sender stats %+v", s)
			}
			return nil
		}
		if _, _, _, err := c.Recv(0, 1); err != nil {
			return err
		}
		if _, _, _, err := c.Recv(0, 2); err != nil {
			return err
		}
		s := c.Traffic()
		if s.MessagesRecv != 2 || s.BytesRecv != 150 {
			return fmt.Errorf("receiver stats %+v", s)
		}
		return nil
	})
}

func TestTrafficSharedAcrossSplit(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		sub, err := c.Split(0, c.Rank())
		if err != nil {
			return err
		}
		c.ResetTraffic()
		if c.Rank() == 0 {
			if err := sub.Send(1, 3, make([]byte, 64)); err != nil {
				return err
			}
			// The parent sees the sub-communicator's send.
			if s := c.Traffic(); s.BytesSent != 64 {
				return fmt.Errorf("parent stats %+v", s)
			}
			return nil
		}
		_, _, _, err = sub.Recv(0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficCollectivesCounted(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		c.ResetTraffic()
		if _, err := c.Allgather(make([]byte, 10)); err != nil {
			return err
		}
		s := c.Traffic()
		if s.MessagesSent == 0 && s.MessagesRecv == 0 {
			return fmt.Errorf("collective produced no counted traffic on rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficNilSafe(t *testing.T) {
	var c Comm
	if s := c.Traffic(); s != (TrafficStats{}) {
		t.Errorf("zero comm stats %+v", s)
	}
	c.ResetTraffic() // must not panic
}
