package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// transports enumerates the two runtime flavours so every behaviour is
// verified over shared memory and over real sockets.
var transports = []struct {
	name string
	run  func(n int, body func(c *Comm) error) error
}{
	{"inproc", Run},
	{"tcp", RunTCP},
	{"shm", RunShm},
	{"hier", func(n int, body func(c *Comm) error) error {
		// Two ranks per node exercises every hierarchical leg (self, shm
		// sibling, leader relay, leader-to-leader) in every world size.
		return RunHier(n, NodesOf(n, (n+1)/2), body)
	}},
}

func forEachTransport(t *testing.T, n int, body func(c *Comm) error) {
	t.Helper()
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			if err := tr.run(n, body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("world size 0 accepted")
	}
	if err := RunTCP(-1, func(*Comm) error { return nil }); err == nil {
		t.Error("negative TCP world size accepted")
	}
}

func TestSendRecvPingPong(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("ping")); err != nil {
				return err
			}
			data, from, tag, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if string(data) != "pong" || from != 1 || tag != 8 {
				return fmt.Errorf("got %q from %d tag %d", data, from, tag)
			}
		} else {
			data, _, _, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(data) != "ping" {
				return fmt.Errorf("got %q", data)
			}
			return c.Send(0, 8, []byte("pong"))
		}
		return nil
	})
}

func TestSendBufferReusableImmediately(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the delivered message
			return c.Send(1, 1, buf)
		}
		first, _, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if first[0] != 1 {
			return fmt.Errorf("send aliased caller buffer: %v", first)
		}
		_, _, _, err = c.Recv(0, 1)
		return err
	})
}

func TestRecvWildcards(t *testing.T) {
	forEachTransport(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, from, tag, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if int(data[0]) != from || tag != 10+from {
				return fmt.Errorf("mismatched wildcard receive: %v %d %d", data, from, tag)
			}
			seen[from] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("missing senders: %v", seen)
		}
		return nil
	})
}

func TestPerPairOrdering(t *testing.T) {
	const msgs = 100
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			data, _, _, err := c.Recv(0, 3)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order as %d", i, data[0])
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("five")); err != nil {
				return err
			}
			return c.Send(1, 4, []byte("four"))
		}
		// Receive tag 4 first even though tag 5 arrived first.
		data, _, _, err := c.Recv(0, 4)
		if err != nil {
			return err
		}
		if string(data) != "four" {
			return fmt.Errorf("tag 4 returned %q", data)
		}
		data, _, _, err = c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(data) != "five" {
			return fmt.Errorf("tag 5 returned %q", data)
		}
		return nil
	})
}

func TestSendValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, nil); err == nil {
			return errors.New("out-of-range destination accepted")
		}
		if err := c.Send(0, -3, nil); err == nil {
			return errors.New("negative tag accepted")
		}
		if _, _, _, err := c.Recv(9, 0); err == nil {
			return errors.New("out-of-range source accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		n := c.Size()
		reqs := make([]*Request, 0, n-1)
		for dst := 0; dst < n; dst++ {
			if dst == c.Rank() {
				continue
			}
			reqs = append(reqs, c.Isend(dst, 1, []byte{byte(c.Rank())}))
		}
		recvs := make([]*Request, 0, n-1)
		for src := 0; src < n; src++ {
			if src == c.Rank() {
				continue
			}
			recvs = append(recvs, c.Irecv(src, 1))
		}
		if err := WaitAll(reqs...); err != nil {
			return err
		}
		for _, r := range recvs {
			data, from, _, err := r.Wait()
			if err != nil {
				return err
			}
			if int(data[0]) != from {
				return fmt.Errorf("payload %d from %d", data[0], from)
			}
		}
		return nil
	})
}

func TestBarrierPhases(t *testing.T) {
	// No rank may pass the barrier while another rank has yet to enter it.
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			var entered atomic.Int32
			err := tr.run(5, func(c *Comm) error {
				entered.Add(1)
				if err := c.Barrier(); err != nil {
					return err
				}
				if got := entered.Load(); got != 5 {
					return fmt.Errorf("passed barrier with only %d ranks entered", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastAllRootsAndSizes(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		forEachTransport(t, n, func(c *Comm) error {
			for root := 0; root < c.Size(); root++ {
				var payload []byte
				if c.Rank() == root {
					payload = bytes.Repeat([]byte{byte(root + 1)}, 1000*root+1)
				}
				got, err := c.Bcast(root, payload)
				if err != nil {
					return err
				}
				if len(got) != 1000*root+1 || got[0] != byte(root+1) {
					return fmt.Errorf("root %d: got %d bytes first=%d", root, len(got), got[0])
				}
			}
			return nil
		})
	}
}

func TestGatherAndAllgather(t *testing.T) {
	forEachTransport(t, 6, func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
		parts, err := c.Gather(2, mine)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			for r, p := range parts {
				if len(p) != r+1 || (r > 0 && p[0] != byte(r)) {
					return fmt.Errorf("gather rank %d: %v", r, p)
				}
			}
		} else if parts != nil {
			return errors.New("non-root received gather data")
		}
		all, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		for r, p := range all {
			if len(p) != r+1 {
				return fmt.Errorf("allgather rank %d: %d bytes", r, len(p))
			}
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		r := float64(c.Rank())
		sum, err := c.AllreduceFloat64([]float64{r, 2 * r}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 6 || sum[1] != 12 {
			return fmt.Errorf("sum = %v", sum)
		}
		mn, err := c.AllreduceFloat64([]float64{r}, OpMin)
		if err != nil {
			return err
		}
		if mn[0] != 0 {
			return fmt.Errorf("min = %v", mn)
		}
		mx, err := c.AllreduceInt64([]int64{int64(c.Rank())}, OpMax)
		if err != nil {
			return err
		}
		if mx[0] != 3 {
			return fmt.Errorf("max = %v", mx)
		}
		return nil
	})
}

func TestAllreduceInt64RangeGuard(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		_, err := c.AllreduceInt64([]int64{1 << 60}, OpSum)
		if err == nil {
			return errors.New("out-of-range int64 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		send := make([][]byte, c.Size())
		for dst := range send {
			send[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		recv, err := c.Alltoallv(send)
		if err != nil {
			return err
		}
		for src, p := range recv {
			if len(p) != 2 || int(p[0]) != src || int(p[1]) != c.Rank() {
				return fmt.Errorf("from %d: %v", src, p)
			}
		}
		return nil
	})
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			err := tr.run(3, func(c *Comm) error {
				if c.Rank() == 1 {
					return boom
				}
				// These ranks block forever unless the failure unblocks them.
				_, _, _, err := c.Recv(1, 0)
				return err
			})
			if err == nil || !errors.Is(err, boom) {
				t.Fatalf("error not propagated: %v", err)
			}
		})
	}
}

func TestWorldRank(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.WorldRank(c.Rank()) != c.Rank() {
			return fmt.Errorf("world rank mismatch for %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
